#!/usr/bin/env python3
"""Host-perf trajectory tooling for BENCH_perf.json.

BENCH_perf.json is an append-only array of --perf-json snapshots (one or
more per PR), each tagged by (tool, data_mode, placement, adapt). Two
commands:

  delta  BENCH_perf.json NEW.json [NEW2.json ...]
      Compare each new snapshot against the latest checked-in entry with
      the same (tool, data_mode, placement, adapt); snapshots without the
      tenant-only keys default to (block, static), so legacy entries keep
      their identity. Flags events/sec regressions beyond
      --threshold (default 10%). NEVER gates: wall-clock throughput varies
      wildly across runners, so the exit code is always 0 — the output is
      for humans reading the CI log. Snapshots from tools or entries that
      carry no events_per_sec (e.g. dpmlsim tenants, which reports fabric
      metadata instead) are listed and skipped, never treated as a -100%
      regression; unknown extra fields are ignored.

  append BENCH_perf.json NEW.json [NEW2.json ...] [--label TEXT]
      Append the snapshots to the trajectory array in place (converting a
      legacy single-object file to an array first). Run locally when a PR
      regenerates the snapshot; commit the result.

Only the python3 standard library is used.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def as_array(doc):
    return doc if isinstance(doc, list) else [doc]


def key(entry):
    # Legacy entries predate the data plane split and were payload-mode.
    # Tenant snapshots additionally carry placement/adapt: a round-robin
    # adaptive run is a different workload from a block static one, so only
    # like-keyed snapshots are comparable.
    return (entry.get("tool", "?"), entry.get("data_mode", "payload"),
            entry.get("placement", "block"), bool(entry.get("adapt", False)))


def cmd_delta(args):
    baseline = {}
    for entry in as_array(load(args.trajectory)):
        baseline[key(entry)] = entry  # later entries win: latest is baseline
    worst = 0.0
    for path in args.snapshots:
        new = load(path)
        k = key(new)
        old = baseline.get(k)
        tag = f"{k[0]}/{k[1]}/{k[2]}/{'adapt' if k[3] else 'static'}"
        if old is None:
            print(f"[perf-delta] {tag}: no checked-in baseline ({path}); "
                  "first entry for this (tool, data_mode, placement, adapt)")
            continue
        old_eps = old.get("events_per_sec", 0)
        new_eps = new.get("events_per_sec", 0)
        if old_eps <= 0 or new_eps <= 0:
            which = "baseline" if old_eps <= 0 else "snapshot"
            print(f"[perf-delta] {tag}: {which} has no events/sec; skipped")
            continue
        change = (new_eps - old_eps) / old_eps * 100.0
        worst = min(worst, change)
        mark = "REGRESSION" if change < -args.threshold else "ok"
        print(f"[perf-delta] {tag}: {old_eps} -> {new_eps} events/sec "
              f"({change:+.1f}%) {mark}")
        for field in ("events", "peak_queue_depth", "peak_rss_kb",
                      "elided_bytes", "fabric_flows", "max_link_util"):
            if field in new or field in old:
                print(f"[perf-delta]   {field}: {old.get(field, '-')} -> "
                      f"{new.get(field, '-')}")
    if worst < -args.threshold:
        print(f"[perf-delta] worst change {worst:+.1f}% exceeds "
              f"-{args.threshold:.0f}% — informational only, not gating "
              "(runner wall clocks vary)")
    return 0  # never gate


def cmd_append(args):
    trajectory = as_array(load(args.trajectory))
    for path in args.snapshots:
        entry = load(path)
        if args.label:
            entry["label"] = args.label
        trajectory.append(entry)
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(f"{args.trajectory}: {len(trajectory)} entr"
          f"{'y' if len(trajectory) == 1 else 'ies'}")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    d = sub.add_parser("delta", help="compare snapshots to the trajectory")
    d.add_argument("trajectory")
    d.add_argument("snapshots", nargs="+")
    d.add_argument("--threshold", type=float, default=10.0,
                   help="events/sec regression percentage to flag")
    d.set_defaults(fn=cmd_delta)

    a = sub.add_parser("append", help="append snapshots to the trajectory")
    a.add_argument("trajectory")
    a.add_argument("snapshots", nargs="+")
    a.add_argument("--label", default="",
                   help="optional label stored on each appended entry")
    a.set_defaults(fn=cmd_append)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
