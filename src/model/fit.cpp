#include "model/fit.hpp"

#include <algorithm>

#include "simmpi/machine.hpp"
#include "util/error.hpp"

namespace dpml::model {

namespace {

using simmpi::Machine;
using simmpi::Rank;

// Named coroutines rather than lambda coroutines: a coroutine lambda's frame
// refers back to the closure object, so captures dangle if the closure dies
// before the frame does (dpmllint: coro-ref-capture). Parameters of a plain
// coroutine function are copied into the frame and cannot dangle.
sim::CoTask<void> pingpong_rank(Rank& r, std::size_t bytes, int iters) {
  const auto& world = r.machine().world();
  if (r.world_rank() > 1) co_return;  // only the measured pair participates
  for (int i = 0; i < iters; ++i) {
    if (r.world_rank() == 0) {
      co_await r.send(world, 1, 0, bytes);
      co_await r.recv(world, 1, 1, bytes);
    } else {
      co_await r.recv(world, 0, 0, bytes);
      co_await r.send(world, 0, 1, bytes);
    }
  }
}

// One-way latency of a `bytes` message between two ranks, measured by a
// pingpong halved (standard osu_latency methodology).
double p2p_latency(const net::ClusterConfig& cfg, std::size_t bytes,
                   bool intra_node, int iters = 8) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  // Intra-node pairs use two ranks on the same socket (ppn=4 places locals
  // 0 and 1 together under socket-major mapping), matching how the paper's
  // a'/b' constants are defined.
  Machine m(cfg, intra_node ? 1 : 2,
            intra_node ? std::min(4, cfg.max_ppn()) : 1, opt);
  m.run([&](Rank& r) { return pingpong_rank(r, bytes, iters); });
  return sim::to_seconds(m.now()) / (2.0 * iters);
}

sim::CoTask<void> stream_rank(Rank& r, std::size_t bytes, int msgs) {
  const auto& world = r.machine().world();
  if (r.world_rank() > 1) co_return;  // only the measured pair participates
  for (int i = 0; i < msgs; ++i) {
    if (r.world_rank() == 0) {
      co_await r.send(world, 1, 0, bytes);
    } else {
      co_await r.recv(world, 0, 0, bytes);
    }
  }
}

// Per-byte streaming cost: back-to-back sends of a large message, one pair.
double p2p_per_byte(const net::ClusterConfig& cfg, std::size_t bytes,
                    bool intra_node, int msgs = 8) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(cfg, intra_node ? 1 : 2,
            intra_node ? std::min(4, cfg.max_ppn()) : 1, opt);
  m.run([&](Rank& r) { return stream_rank(r, bytes, msgs); });
  return sim::to_seconds(m.now()) / (static_cast<double>(bytes) * msgs);
}

sim::CoTask<void> oversub_rank(Rank& r, std::size_t bytes, int npl,
                               int pairs) {
  const auto& world = r.machine().world();
  const int w = r.world_rank();
  if (w < pairs) {
    // Senders live under leaf 0, receivers under leaf 1 (ppn = 1, so world
    // rank == node id); all pair flows share leaf 0's core uplink pool.
    co_await r.send(world, npl + w, 0, bytes);
  } else if (w >= npl && w < npl + pairs) {
    co_await r.recv(world, w - npl, 0, bytes);
  }
  co_return;
}

// Wall time for `pairs` concurrent cross-leaf streams under the flow fabric.
double cross_leaf_time(const net::ClusterConfig& cfg, std::size_t bytes,
                       int nodes, int npl, int pairs) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  opt.fabric_level = fabric::FabricLevel::links;
  Machine m(cfg, nodes, 1, opt);
  m.run([&](Rank& r) { return oversub_rank(r, bytes, npl, pairs); });
  return sim::to_seconds(m.now());
}

sim::CoTask<void> reduce_compute_rank(Rank& r, std::size_t bytes) {
  co_await r.reduce_compute(bytes);
}

// Reduction cost per byte measured through Rank::reduce_compute.
double reduce_per_byte(const net::ClusterConfig& cfg, std::size_t bytes) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(cfg, 1, 1, opt);
  m.run([&](Rank& r) { return reduce_compute_rank(r, bytes); });
  return sim::to_seconds(m.now()) / static_cast<double>(bytes);
}

}  // namespace

FittedParams fit_from_simulation(const net::ClusterConfig& cfg,
                                 std::size_t probe_bytes) {
  DPML_CHECK(probe_bytes >= 4096);
  FittedParams f;
  // Small-message pingpong gives the startup term directly.
  f.a = p2p_latency(cfg, 1, /*intra_node=*/false);
  // Large-message streaming isolates the per-byte term (startup amortized).
  const double large = p2p_per_byte(cfg, probe_bytes, false);
  const double small = p2p_per_byte(cfg, 4096, false);
  f.b = std::min(large, small);
  // Shared memory: same two measurements within a node.
  f.a2 = p2p_latency(cfg, 1, /*intra_node=*/true);
  f.b2 = p2p_per_byte(cfg, probe_bytes, true);
  f.c = reduce_per_byte(cfg, probe_bytes);
  return f;
}

Params fitted_params(const net::ClusterConfig& cfg, int nodes, int ppn,
                     int leaders, std::size_t bytes, int k) {
  const FittedParams f = fit_from_simulation(cfg);
  Params m;
  m.p = nodes * ppn;
  m.h = nodes;
  m.l = leaders;
  m.n = static_cast<double>(bytes);
  m.k = k;
  m.a = f.a;
  m.b = f.b;
  m.a2 = f.a2;
  m.b2 = f.b2;
  m.c = f.c;
  return m;
}

double fit_oversub_factor(const net::ClusterConfig& cfg, std::size_t bytes) {
  const int npl = cfg.nodes_per_leaf;
  if (npl < 1 || cfg.total_nodes <= npl || cfg.oversubscription <= 1.0) {
    return 1.0;
  }
  const int nodes = std::min(cfg.total_nodes, 2 * npl);
  const int pairs = std::min(npl, nodes - npl);
  DPML_CHECK(pairs >= 1);
  // Baseline: the same streaming pattern on a non-blocking build of the same
  // cluster. The ratio isolates what the thinner core costs those flows.
  net::ClusterConfig nonblocking = cfg;
  nonblocking.oversubscription = 1.0;
  const double ideal = cross_leaf_time(nonblocking, bytes, nodes, npl, pairs);
  if (ideal <= 0.0) return 1.0;
  const double actual = cross_leaf_time(cfg, bytes, nodes, npl, pairs);
  return std::max(1.0, actual / ideal);
}

}  // namespace dpml::model
