// Analytical cost model (paper §5, Equations 1-7).
//
// Rabenseifner's allreduce cost model extended by the paper to treat
// shared-memory copies (a', b') separately from inter-node transfers (a, b).
// All results are in seconds. The model deliberately ignores contention —
// that is what the simulator adds — so the model-vs-simulation bench shows
// agreement in the uncontended regimes and quantifies the divergence where
// contention dominates (flat algorithms at high ppn).
#pragma once

#include <cstddef>

#include "net/cluster.hpp"

namespace dpml::model {

// Table 1 notation.
struct Params {
  int p = 1;        // number of MPI processes
  int h = 1;        // number of nodes
  int l = 1;        // leaders per node
  double n = 0;     // input vector size in bytes
  double a = 0;     // startup time per inter-node message (s)
  double b = 0;     // transfer time per byte, inter-node (s/B)
  double a2 = 0;    // a': startup time per shared-memory copy (s)
  double b2 = 0;    // b': transfer time per byte, shared memory (s/B)
  double c = 0;     // computation cost per byte of reduction (s/B)
  int k = 1;        // sub-partitions in DPML-Pipelined
  // Congested-fabric extension (src/fabric flow model, docs/MODEL.md §7):
  // effective core slowdown felt by a leader flow crossing leaves
  // (demand / capacity of a leaf's core pool, >= 1) and the number of
  // recursive-doubling rounds whose partner lives under another leaf.
  // The defaults (os = 1, cross_rounds = 0) reproduce the paper's
  // contention-free Equations 4-5 exactly.
  double os = 1.0;
  int cross_rounds = 0;
};

// ceil(lg x) for x >= 1.
int ceil_lg(int x);

// Eq (1): flat recursive doubling over p processes.
double t_recursive_doubling(const Params& m);

// Eq (2): phase 1, copy to local leaders.
double t_copy(const Params& m);

// Eq (3): phase 2, intra-node reduction by leaders.
double t_comp(const Params& m);

// Eq (4): phase 3, inter-node allreduce by leaders (recursive doubling).
double t_comm(const Params& m);

// Eq (5): phase 3 with k-way pipelining.
double t_comm_pipelined(const Params& m);

// Eq (6): phase 4, local copy back to individual processes.
double t_bcast(const Params& m);

// Eq (7): total DPML cost (uses Eq (5) when k > 1).
double t_dpml(const Params& m);

// Map a cluster preset's transport constants onto the model's parameters.
// a: one full small-message path (send overhead + worst-case fabric path +
// receive overhead); b: the per-process injection bottleneck; a'/b': the
// shared-memory copy constants; c: the host reduction cost.
Params from_cluster(const net::ClusterConfig& cfg, int nodes, int ppn,
                    int leaders, std::size_t bytes, int k = 1);

// Fill the congested-fabric terms (os, cross_rounds) from the preset's
// nodes_per_leaf / oversubscription. A run that fits under one leaf, or a
// non-oversubscribed core, leaves the params untouched (os stays 1).
void apply_oversubscription(Params& m, const net::ClusterConfig& cfg,
                            int nodes);

}  // namespace dpml::model
