#include "model/model.hpp"

#include <algorithm>
#include <cmath>

#include "sim/time.hpp"
#include "util/error.hpp"

namespace dpml::model {

int ceil_lg(int x) {
  DPML_CHECK(x >= 1);
  int lg = 0;
  int v = 1;
  while (v < x) {
    v *= 2;
    ++lg;
  }
  return lg;
}

double t_recursive_doubling(const Params& m) {
  return ceil_lg(m.p) * (m.a + m.n * m.b + m.n * m.c);
}

double t_copy(const Params& m) {
  return m.l * (m.a2 + m.b2 * (m.n / m.l));
}

double t_comp(const Params& m) {
  const double ppn_over_l = static_cast<double>(m.p) / (m.h * m.l);
  return (ppn_over_l - 1.0) * m.n * m.c;
}

namespace {
// Extra transfer time from core oversubscription: cross-leaf rounds see
// their per-byte cost inflated by the demand/capacity ratio `os` (the
// same-leaf rounds run at full edge bandwidth). Zero when os == 1.
double t_oversub(const Params& m) {
  if (m.os <= 1.0 || m.cross_rounds <= 0) return 0.0;
  return m.cross_rounds * (m.n * m.b / m.l) * (m.os - 1.0);
}
}  // namespace

double t_comm(const Params& m) {
  if (m.h <= 1) return 0.0;
  return ceil_lg(m.h) * (m.a + m.n * m.b / m.l + m.n * m.c / m.l) +
         t_oversub(m);
}

double t_comm_pipelined(const Params& m) {
  if (m.h <= 1) return 0.0;
  // Eq (5): transfer and compute amortize across sub-partitions; only the
  // startup term multiplies by k.
  return ceil_lg(m.h) * (m.a * m.k + m.n * m.b / m.l + m.n * m.c / m.l) +
         t_oversub(m);
}

double t_bcast(const Params& m) {
  return m.l * (m.a2 + m.b2 * (m.n / m.l));
}

double t_dpml(const Params& m) {
  const double comm = m.k > 1 ? t_comm_pipelined(m) : t_comm(m);
  return t_copy(m) + t_comp(m) + comm + t_bcast(m);
}

Params from_cluster(const net::ClusterConfig& cfg, int nodes, int ppn,
                    int leaders, std::size_t bytes, int k) {
  DPML_CHECK(nodes >= 1 && ppn >= 1 && leaders >= 1 && k >= 1);
  Params m;
  m.p = nodes * ppn;
  m.h = nodes;
  m.l = leaders;
  m.n = static_cast<double>(bytes);
  m.k = k;
  const auto& nic = cfg.nic;
  // Worst-case fabric path: node-leaf-core-leaf-node (4 wires, 3 switches).
  const double path = sim::to_seconds(4 * nic.wire_latency +
                                      3 * nic.switch_latency);
  m.a = sim::to_seconds(nic.o_send + nic.o_recv + nic.per_msg_tx) + path;
  m.b = 1.0 / (nic.proc_bw * 1e9);
  m.a2 = sim::to_seconds(cfg.host.copy_startup);
  m.b2 = 1.0 / (cfg.host.copy_bw * 1e9);
  m.c = cfg.host.reduce_ns_per_byte * 1e-9;
  return m;
}

void apply_oversubscription(Params& m, const net::ClusterConfig& cfg,
                            int nodes) {
  DPML_CHECK(nodes >= 1);
  const int npl = cfg.nodes_per_leaf;
  if (npl < 1 || nodes <= npl || cfg.oversubscription <= 1.0) return;
  // Recursive-doubling rounds with distance >= nodes_per_leaf pair nodes
  // under different leaves; those flows share the leaf's core pool.
  m.cross_rounds = std::max(0, ceil_lg(nodes) - ceil_lg(std::min(nodes, npl)));
  // Demand: up to nodes_per_leaf leaders injecting at their per-flow
  // bottleneck (injection pipe vs edge link); capacity: the leaf's core pool.
  const double per_flow =
      std::min(static_cast<double>(m.l) * cfg.nic.proc_bw, cfg.nic.link_bw);
  const double demand = std::min(npl, nodes) * per_flow;
  const double capacity = npl * cfg.nic.link_bw / cfg.oversubscription;
  m.os = std::max(1.0, demand / capacity);
}

}  // namespace dpml::model
