// LogGP-style parameter extraction from the simulated transport.
//
// Mirrors how the paper's lineage measures model constants on real machines
// (Kielmann et al., "Fast Measurement of LogP Parameters"): run pingpong and
// streaming microbenchmarks on the target and fit (a, b, a', b', c). Here
// the "machine" is the simulator, so fitting doubles as a consistency check
// between the configured hardware constants and what the transport actually
// delivers end-to-end (protocol overheads included).
#pragma once

#include "model/model.hpp"
#include "net/cluster.hpp"

namespace dpml::model {

struct FittedParams {
  double a = 0;    // inter-node small-message latency (s)
  double b = 0;    // inter-node per-byte cost (s/B), from large messages
  double a2 = 0;   // shared-memory copy startup (s)
  double b2 = 0;   // shared-memory per-byte cost (s/B)
  double c = 0;    // reduction per-byte cost (s/B)
};

// Measure the transport with microbenchmarks and fit the model constants.
// `probe_bytes` is the large-message size used for the bandwidth fits.
FittedParams fit_from_simulation(const net::ClusterConfig& cfg,
                                 std::size_t probe_bytes = 1 << 20);

// Convenience: a full model Params built from fitted constants.
Params fitted_params(const net::ClusterConfig& cfg, int nodes, int ppn,
                     int leaders, std::size_t bytes, int k = 1);

// Measured core slowdown under the flow-level fabric: the ratio of
// cross-leaf streaming time with min(nodes_per_leaf, nodes - nodes_per_leaf)
// concurrent sender pairs to the single-pair time. Returns 1.0 on clusters
// whose core is not oversubscribed (or that fit under one leaf); compare
// against Params::os from apply_oversubscription.
double fit_oversub_factor(const net::ClusterConfig& cfg,
                          std::size_t bytes = 1 << 20);

}  // namespace dpml::model
