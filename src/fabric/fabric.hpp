// Flow-level congested-fabric model with max-min fair link sharing.
//
// The LogGP transport in simmpi charges per-hop latency and per-resource
// FIFO occupancy, which models endpoint serialization well but treats the
// switched fabric as contention-free wires (src/net/topology.hpp). This
// subsystem adds the missing piece for the paper's §6.1 clusters: every
// in-flight inter-node message becomes a *flow* routed over explicit links
//
//   node --(uplink)--> leaf --(ECMP'd core uplink)--> core
//        --(core downlink)--> leaf --(downlink)--> node
//
// and a progressive-filling max-min fair allocator divides each link's
// capacity among the flows crossing it. Link capacities derive from the
// ClusterConfig: node edge links run at nic.link_bw, and each leaf's core
// uplink/downlink pool carries nodes_per_leaf * link_bw / oversubscription,
// split into ECMP "ways" — so the `oversubscription` factor declared by
// every preset is enforced, not documentation. Concurrent DPML leaders,
// SHArP tree legs and perturbation-degraded links genuinely contend.
//
// Rates are recomputed on every flow arrival and departure (and at
// perturbation rule boundaries); each recompute reschedules every flow's
// completion event through a generation counter, since the engine has no
// event cancellation. All state iterates in deterministic order (std::map
// keyed by flow id, vectors of links), so runs are bitwise reproducible.
//
// Opt-in: a Machine builds a FlowFabric only when
// RunOptions::fabric_level == FabricLevel::links; the default `none` leaves
// every transport path bit-identical to the pre-fabric code (locked by the
// golden tests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dpml::fabric {

// Fabric fidelity. `none` is the classic LogGP path; `links` routes every
// inter-node payload through the flow-level link model.
enum class FabricLevel { none, links };

const char* fabric_level_name(FabricLevel level);
FabricLevel fabric_level_by_name(const std::string& name);

// Link counts and capacities derived from a cluster preset — the enforced
// meaning of `nodes_per_leaf` and `oversubscription`.
struct FabricTopo {
  int nodes = 1;
  int nodes_per_leaf = 1;
  int leaves = 1;
  // Each leaf's aggregate core bandwidth (nodes_per_leaf * link_bw /
  // oversubscription) is carved into equal-capacity ECMP ways of at most
  // one node-link each, matching how a fat tree builds its core out of the
  // same link technology as the edge.
  int ecmp_ways = 1;
  double node_link_gbps = 0.0;  // node<->leaf edge links
  double core_way_gbps = 0.0;   // one leaf<->core ECMP way

  double leaf_core_gbps() const { return core_way_gbps * ecmp_ways; }
  int num_links() const { return 2 * nodes + 2 * leaves * ecmp_ways; }

  // Validates the config's fabric fields (nodes_per_leaf >= 1,
  // oversubscription >= 1, positive bandwidths) and derives the link plan
  // for the first `nodes` nodes.
  static FabricTopo derive(const net::ClusterConfig& cfg, int nodes);
};

class FlowFabric {
 public:
  using FlowId = std::uint64_t;
  // Called (from an engine event at the completion instant) when a flow's
  // last byte has drained from the fabric.
  using Completion = std::function<void(sim::Time)>;

  FlowFabric(sim::Engine& engine, const net::ClusterConfig& cfg, int nodes);

  const FabricTopo& topo() const { return topo_; }
  int num_links() const { return static_cast<int>(links_.size()); }

  // ---- Link ids (dense, stable layout) ----
  // [0, nodes): node->leaf uplinks; [nodes, 2*nodes): leaf->node downlinks;
  // then per-leaf core uplink ways, then per-leaf core downlink ways.
  int uplink(int node) const;
  int downlink(int node) const;
  int leaf_uplink(int leaf, int way) const;
  int leaf_downlink(int leaf, int way) const;
  // Node owning an edge link, or -1 for core links (used to map node-scoped
  // perturbation rules onto link capacities).
  int link_node(int id) const;
  const std::string& link_name(int id) const;
  double link_capacity_gbps(int id) const;

  // Deterministic ECMP: the core way a (src, dst) flow hashes to. The same
  // way indexes the source leaf's uplink and the destination leaf's
  // downlink (both attach to the same core switch).
  static int ecmp_way(int src_node, int dst_node, int ways);
  // ECMP with failures: starts at ecmp_way and linearly probes to the first
  // way whose source-leaf uplink and destination-leaf downlink are both
  // live. Equals ecmp_way when nothing is down (bit-identical fast path).
  int choose_way(int src_node, int dst_node) const;

  // ---- Failure and recovery (multi-tenant fabric) ----
  // Mark one leaf's ECMP way — or, with leaf == kAllLeaves, core switch
  // `way` across every leaf — down or back up. Takes effect immediately:
  // live core-crossing flows are deterministically rerouted onto surviving
  // ways (and rebalanced back on recovery) and rescheduled through the
  // generation counter. Edge (node<->leaf) links never fail in this model.
  static constexpr int kAllLeaves = -1;
  void set_way_down(int leaf, int way, bool down);
  bool way_down(int leaf, int way) const;
  // Failure listener: called from inside set_way_down (after the flip and
  // deterministic reroute) with the event's (leaf, way, down). The adaptive
  // re-planner uses it to mark tenant plans stale mid-run (docs/MODEL.md §12).
  void set_failure_listener(std::function<void(int leaf, int way, bool down)> fn);
  // ECMP ways currently down across all leaves (uplink+downlink pairs).
  int down_ways() const;

  // ---- Tenant attribution ----
  // Flows carry a group id (a tenant job, or the background-traffic class);
  // when accounting is enabled, delivered bytes are attributed per
  // (link, group). kAutoGroup resolves to the source node's group (set via
  // set_node_group; default group 0), so existing call sites attribute
  // correctly without changes.
  static constexpr int kAutoGroup = -1;
  void enable_group_accounting(int num_groups);
  void set_node_group(int node, int group);
  int node_group(int node) const;
  // Bytes delivered over `link` on behalf of `group` (0 when accounting is
  // off or the pair is out of range).
  double link_group_bytes(int link, int group) const;
  // Bytes delivered over `link` across every group (0 when accounting off).
  double link_total_bytes(int link) const;

  // ---- Flows ----
  // Start a flow of `bytes` from src_node to dst_node, rate-capped at
  // `rate_cap_gbps` (the sender-side bottleneck, e.g. nic.link_bw times any
  // pairwise perturbation scale). Must be called at the engine's current
  // time. Zero-byte flows complete immediately (same instant, later event).
  FlowId start_flow(int src_node, int dst_node, std::uint64_t bytes,
                    double rate_cap_gbps, Completion done,
                    int group = kAutoGroup);
  // Single-leg flows for in-network aggregation traffic: node->leaf only
  // (SHArP upload) and leaf->node only (SHArP multicast download).
  FlowId start_uplink_flow(int node, std::uint64_t bytes, double rate_cap_gbps,
                           Completion done);
  FlowId start_downlink_flow(int node, std::uint64_t bytes,
                             double rate_cap_gbps, Completion done);

  // ---- Perturbation hookup ----
  // Per-link capacity scale evaluated at every rate recompute (time-windowed
  // link-degradation rules become per-link capacity scaling).
  void set_capacity_scaler(std::function<double(int link, sim::Time)> fn);
  // Schedule extra reallocation points (rule from/until boundaries), so a
  // window opening or closing mid-flow re-divides bandwidth immediately.
  void schedule_reallocations(const std::vector<sim::Time>& times);

  // ---- Observation ----
  // Congestion listener: called with [start, end) intervals during which a
  // link carried two or more concurrent flows (trace lanes).
  void set_congestion_listener(
      std::function<void(int link, sim::Time, sim::Time)> fn);
  // Flush utilization integrals and close open congestion intervals at the
  // end of a run.
  void finish(sim::Time now);

  int active_flows() const { return static_cast<int>(flows_.size()); }
  std::uint64_t total_flows() const { return next_id_; }
  // Current fair-share rate of a live flow (tests).
  double flow_rate_gbps(FlowId id) const;
  // Worst instantaneous utilization any link ever reached (<= 1 + epsilon:
  // the allocator's conservation invariant).
  double peak_link_utilization() const { return peak_util_; }
  // Time-averaged utilization of one link / the busiest link over [0, now].
  double link_avg_utilization(int id, sim::Time now) const;
  double max_avg_link_utilization(sim::Time now) const;
  // Total time `link` spent congested (>= 2 concurrent flows).
  sim::Time link_congested_time(int id, sim::Time now) const;

 private:
  struct Link {
    std::string name;
    int node = -1;           // owning node for edge links, -1 for core
    double base_gbps = 0.0;  // configured capacity
    double cap = 0.0;        // scaled capacity, bytes/s (last recompute)
    double load = 0.0;       // sum of flow rates, bytes/s (last recompute)
    int nflows = 0;
    double busy_integral = 0.0;   // sum of utilization * dt (picoseconds)
    sim::Time cong_since = -1;    // open congestion interval, -1 when none
    sim::Time cong_time = 0;      // closed congested picoseconds
    bool down = false;            // failed ECMP way (carries no flows)
  };

  struct Flow {
    int links[4] = {0, 0, 0, 0};
    int nlinks = 0;
    int src = -1;            // endpoints, kept for failure rerouting
    int dst = -1;
    int group = 0;           // tenant attribution class
    double remaining = 0.0;  // bytes left on the wire
    double rate = 0.0;       // bytes/s
    double cap = 0.0;        // bytes/s rate ceiling
    std::uint64_t gen = 0;   // completion-event generation (stale detection)
    Completion done;
  };

  int add_link(std::string name, int node, double gbps);
  FlowId launch(const int* links, int nlinks, std::uint64_t bytes,
                double rate_cap_gbps, Completion done, int src, int dst,
                int group);
  // Drain bytes and accumulate link statistics over [last_, now].
  void advance(sim::Time now);
  // Progressive-filling max-min fair allocation over the live flows.
  void recompute(sim::Time now);
  // Bump generations and schedule a completion event per flow.
  void reschedule(sim::Time now);
  void on_completion_event(FlowId id, std::uint64_t gen);
  double scaled_capacity(int link, sim::Time now) const;

  sim::Engine& engine_;
  FabricTopo topo_;
  std::vector<Link> links_;
  std::map<FlowId, Flow> flows_;  // ordered: deterministic allocation
  FlowId next_id_ = 0;
  sim::Time last_ = 0;  // time up to which advance() has accounted
  double peak_util_ = 0.0;
  int down_links_ = 0;  // live count of down links (choose_way fast path)
  std::vector<int> node_group_;                  // empty => every node group 0
  std::vector<std::vector<double>> group_bytes_; // [group][link] delivered
  std::function<double(int, sim::Time)> capacity_scaler_;
  std::function<void(int, sim::Time, sim::Time)> congestion_cb_;
  std::function<void(int, int, bool)> failure_cb_;
};

}  // namespace dpml::fabric
