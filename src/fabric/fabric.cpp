#include "fabric/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace dpml::fabric {

namespace {

constexpr double kGiga = 1e9;           // decimal GB/s -> bytes/s
constexpr double kRelEps = 1e-9;        // water-filling freeze tolerance
constexpr double kDrainedBytes = 1e-6;  // a flow this close to empty is done

double to_bps(double gbps) { return gbps * kGiga; }

}  // namespace

const char* fabric_level_name(FabricLevel level) {
  switch (level) {
    case FabricLevel::none:
      return "none";
    case FabricLevel::links:
      return "links";
  }
  return "?";
}

FabricLevel fabric_level_by_name(const std::string& name) {
  if (name == "none") return FabricLevel::none;
  if (name == "links") return FabricLevel::links;
  DPML_CHECK_MSG(false, "unknown fabric level '" + name +
                            "' (valid: none, links)");
  return FabricLevel::none;
}

FabricTopo FabricTopo::derive(const net::ClusterConfig& cfg, int nodes) {
  DPML_CHECK_MSG(nodes >= 1, "fabric needs at least one node");
  DPML_CHECK_MSG(cfg.nodes_per_leaf >= 1,
                 "cluster '" + cfg.name + "' declares nodes_per_leaf " +
                     std::to_string(cfg.nodes_per_leaf));
  DPML_CHECK_MSG(cfg.oversubscription >= 1.0,
                 "cluster '" + cfg.name +
                     "' declares an oversubscription factor below 1");
  DPML_CHECK_MSG(cfg.nic.link_bw > 0.0,
                 "cluster '" + cfg.name + "' has no link bandwidth");
  FabricTopo t;
  t.nodes = nodes;
  t.nodes_per_leaf = cfg.nodes_per_leaf;
  t.leaves = (nodes + cfg.nodes_per_leaf - 1) / cfg.nodes_per_leaf;
  t.node_link_gbps = cfg.nic.link_bw;
  // A fully-populated leaf offers nodes_per_leaf * link_bw of edge demand;
  // the core carries 1/oversubscription of it, built from ways no faster
  // than one edge link (5:4 oversubscription on a 24-node leaf = 20 core
  // links of edge speed, paper §6.1).
  const double leaf_core =
      cfg.nic.link_bw * cfg.nodes_per_leaf / cfg.oversubscription;
  t.ecmp_ways = std::max(
      1, static_cast<int>(std::ceil(leaf_core / cfg.nic.link_bw - 1e-9)));
  t.core_way_gbps = leaf_core / t.ecmp_ways;
  return t;
}

FlowFabric::FlowFabric(sim::Engine& engine, const net::ClusterConfig& cfg,
                       int nodes)
    : engine_(engine), topo_(FabricTopo::derive(cfg, nodes)) {
  links_.reserve(static_cast<std::size_t>(topo_.num_links()));
  for (int n = 0; n < topo_.nodes; ++n) {
    add_link("node" + std::to_string(n) + ".up", n, topo_.node_link_gbps);
  }
  for (int n = 0; n < topo_.nodes; ++n) {
    add_link("node" + std::to_string(n) + ".down", n, topo_.node_link_gbps);
  }
  for (int l = 0; l < topo_.leaves; ++l) {
    for (int w = 0; w < topo_.ecmp_ways; ++w) {
      add_link("leaf" + std::to_string(l) + ".up" + std::to_string(w), -1,
               topo_.core_way_gbps);
    }
  }
  for (int l = 0; l < topo_.leaves; ++l) {
    for (int w = 0; w < topo_.ecmp_ways; ++w) {
      add_link("leaf" + std::to_string(l) + ".down" + std::to_string(w), -1,
               topo_.core_way_gbps);
    }
  }
}

int FlowFabric::add_link(std::string name, int node, double gbps) {
  Link l;
  l.name = std::move(name);
  l.node = node;
  l.base_gbps = gbps;
  l.cap = to_bps(gbps);
  links_.push_back(std::move(l));
  return static_cast<int>(links_.size()) - 1;
}

int FlowFabric::uplink(int node) const {
  DPML_CHECK(node >= 0 && node < topo_.nodes);
  return node;
}

int FlowFabric::downlink(int node) const {
  DPML_CHECK(node >= 0 && node < topo_.nodes);
  return topo_.nodes + node;
}

int FlowFabric::leaf_uplink(int leaf, int way) const {
  DPML_CHECK(leaf >= 0 && leaf < topo_.leaves);
  DPML_CHECK(way >= 0 && way < topo_.ecmp_ways);
  return 2 * topo_.nodes + leaf * topo_.ecmp_ways + way;
}

int FlowFabric::leaf_downlink(int leaf, int way) const {
  return leaf_uplink(leaf, way) + topo_.leaves * topo_.ecmp_ways;
}

int FlowFabric::link_node(int id) const {
  return links_[static_cast<std::size_t>(id)].node;
}

const std::string& FlowFabric::link_name(int id) const {
  return links_[static_cast<std::size_t>(id)].name;
}

double FlowFabric::link_capacity_gbps(int id) const {
  return links_[static_cast<std::size_t>(id)].base_gbps;
}

int FlowFabric::ecmp_way(int src_node, int dst_node, int ways) {
  DPML_CHECK(ways >= 1);
  // SplitMix64-style finalizer over the (src, dst) pair: stateless, so the
  // same pair always hashes to the same core switch.
  std::uint64_t x =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_node))
       << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_node));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<int>(x % static_cast<std::uint64_t>(ways));
}

int FlowFabric::choose_way(int src_node, int dst_node) const {
  const int ways = topo_.ecmp_ways;
  const int start = ecmp_way(src_node, dst_node, ways);
  if (down_links_ == 0) return start;  // bit-identical pristine fast path
  const int src_leaf = src_node / topo_.nodes_per_leaf;
  const int dst_leaf = dst_node / topo_.nodes_per_leaf;
  for (int k = 0; k < ways; ++k) {
    const int w = (start + k) % ways;
    if (!links_[static_cast<std::size_t>(leaf_uplink(src_leaf, w))].down &&
        !links_[static_cast<std::size_t>(leaf_downlink(dst_leaf, w))].down) {
      return w;
    }
  }
  DPML_CHECK_MSG(false, "no live ECMP way between leaf " +
                            std::to_string(src_leaf) + " and leaf " +
                            std::to_string(dst_leaf));
  return start;
}

void FlowFabric::set_way_down(int leaf, int way, bool down) {
  DPML_CHECK(way >= 0 && way < topo_.ecmp_ways);
  DPML_CHECK(leaf == kAllLeaves || (leaf >= 0 && leaf < topo_.leaves));
  const sim::Time now = engine_.now();
  advance(now);
  const int lo = (leaf == kAllLeaves) ? 0 : leaf;
  const int hi = (leaf == kAllLeaves) ? topo_.leaves - 1 : leaf;
  for (int l = lo; l <= hi; ++l) {
    links_[static_cast<std::size_t>(leaf_uplink(l, way))].down = down;
    links_[static_cast<std::size_t>(leaf_downlink(l, way))].down = down;
  }
  down_links_ = 0;
  for (const Link& l : links_) {
    if (l.down) ++down_links_;
  }
  // Reroute every live core-crossing flow from its stored endpoints.
  // Recomputing from scratch (rather than only moving flows off dead ways)
  // also rebalances flows back onto recovered ways, so recovery restores
  // the exact pristine routing.
  for (auto& [id, f] : flows_) {
    (void)id;
    if (f.nlinks != 4) continue;
    const int w = choose_way(f.src, f.dst);
    f.links[1] = leaf_uplink(f.src / topo_.nodes_per_leaf, w);
    f.links[2] = leaf_downlink(f.dst / topo_.nodes_per_leaf, w);
  }
  recompute(now);
  reschedule(now);
  if (failure_cb_) failure_cb_(leaf, way, down);
}

bool FlowFabric::way_down(int leaf, int way) const {
  return links_[static_cast<std::size_t>(leaf_uplink(leaf, way))].down;
}

void FlowFabric::enable_group_accounting(int num_groups) {
  DPML_CHECK(num_groups >= 1);
  group_bytes_.assign(static_cast<std::size_t>(num_groups),
                      std::vector<double>(links_.size(), 0.0));
}

void FlowFabric::set_node_group(int node, int group) {
  DPML_CHECK(node >= 0 && node < topo_.nodes);
  DPML_CHECK(group >= 0);
  if (node_group_.empty()) {
    node_group_.assign(static_cast<std::size_t>(topo_.nodes), 0);
  }
  node_group_[static_cast<std::size_t>(node)] = group;
}

int FlowFabric::node_group(int node) const {
  DPML_CHECK(node >= 0 && node < topo_.nodes);
  return node_group_.empty() ? 0 : node_group_[static_cast<std::size_t>(node)];
}

double FlowFabric::link_group_bytes(int link, int group) const {
  if (group < 0 || static_cast<std::size_t>(group) >= group_bytes_.size()) {
    return 0.0;
  }
  const auto& row = group_bytes_[static_cast<std::size_t>(group)];
  if (link < 0 || static_cast<std::size_t>(link) >= row.size()) return 0.0;
  return row[static_cast<std::size_t>(link)];
}

double FlowFabric::link_total_bytes(int link) const {
  double total = 0.0;
  for (const auto& row : group_bytes_) {
    if (link >= 0 && static_cast<std::size_t>(link) < row.size()) {
      total += row[static_cast<std::size_t>(link)];
    }
  }
  return total;
}

int FlowFabric::down_ways() const { return down_links_ / 2; }

FlowFabric::FlowId FlowFabric::start_flow(int src_node, int dst_node,
                                          std::uint64_t bytes,
                                          double rate_cap_gbps,
                                          Completion done, int group) {
  DPML_CHECK_MSG(src_node != dst_node, "fabric flows are inter-node");
  const int src_leaf = src_node / topo_.nodes_per_leaf;
  const int dst_leaf = dst_node / topo_.nodes_per_leaf;
  int path[4];
  int n = 0;
  path[n++] = uplink(src_node);
  if (src_leaf != dst_leaf) {
    const int way = choose_way(src_node, dst_node);
    path[n++] = leaf_uplink(src_leaf, way);
    path[n++] = leaf_downlink(dst_leaf, way);
  }
  path[n++] = downlink(dst_node);
  return launch(path, n, bytes, rate_cap_gbps, std::move(done), src_node,
                dst_node, group);
}

FlowFabric::FlowId FlowFabric::start_uplink_flow(int node, std::uint64_t bytes,
                                                 double rate_cap_gbps,
                                                 Completion done) {
  const int path[1] = {uplink(node)};
  return launch(path, 1, bytes, rate_cap_gbps, std::move(done), node, -1,
                kAutoGroup);
}

FlowFabric::FlowId FlowFabric::start_downlink_flow(int node,
                                                   std::uint64_t bytes,
                                                   double rate_cap_gbps,
                                                   Completion done) {
  const int path[1] = {downlink(node)};
  return launch(path, 1, bytes, rate_cap_gbps, std::move(done), node, -1,
                kAutoGroup);
}

FlowFabric::FlowId FlowFabric::launch(const int* links, int nlinks,
                                      std::uint64_t bytes,
                                      double rate_cap_gbps, Completion done,
                                      int src, int dst, int group) {
  DPML_CHECK(rate_cap_gbps > 0.0);
  const sim::Time now = engine_.now();
  const FlowId id = next_id_++;
  if (bytes == 0) {
    // Control-sized flows occupy no bandwidth; complete at the same instant
    // via a fresh event, preserving schedule-order determinism.
    engine_.schedule_call(now, [done = std::move(done), now]() { done(now); });
    return id;
  }
  advance(now);
  Flow f;
  for (int i = 0; i < nlinks; ++i) f.links[i] = links[i];
  f.nlinks = nlinks;
  f.src = src;
  f.dst = dst;
  f.group = (group == kAutoGroup) ? node_group(src) : group;
  f.remaining = static_cast<double>(bytes);
  f.cap = to_bps(rate_cap_gbps);
  f.done = std::move(done);
  flows_.emplace(id, std::move(f));
  recompute(now);
  reschedule(now);
  return id;
}

double FlowFabric::scaled_capacity(int link, sim::Time now) const {
  const Link& l = links_[static_cast<std::size_t>(link)];
  double scale = 1.0;
  if (capacity_scaler_) {
    scale = capacity_scaler_(link, now);
    // A perturbation may choke a link but never disconnect it: a zero or
    // negative scale would stall flows forever (no completion to reschedule
    // around), so clamp to a deeply degraded floor instead.
    scale = std::max(scale, 1e-6);
  }
  return to_bps(l.base_gbps) * scale;
}

void FlowFabric::advance(sim::Time now) {
  DPML_CHECK(now >= last_);
  const sim::Time dt = now - last_;
  if (dt == 0) return;
  const double dt_s = sim::to_seconds(dt);
  for (auto& [id, f] : flows_) {
    (void)id;
    const double drained = std::min(f.remaining, f.rate * dt_s);
    f.remaining -= drained;
    if (!group_bytes_.empty() &&
        static_cast<std::size_t>(f.group) < group_bytes_.size()) {
      auto& row = group_bytes_[static_cast<std::size_t>(f.group)];
      for (int i = 0; i < f.nlinks; ++i) {
        row[static_cast<std::size_t>(f.links[i])] += drained;
      }
    }
  }
  for (Link& l : links_) {
    if (l.cap > 0.0 && l.load > 0.0) {
      l.busy_integral += (l.load / l.cap) * static_cast<double>(dt);
    }
  }
  last_ = now;
}

void FlowFabric::recompute(sim::Time now) {
  // Refresh scaled capacities and close/open congestion intervals against
  // the new flow set.
  for (Link& l : links_) {
    l.cap = scaled_capacity(static_cast<int>(&l - links_.data()), now);
    l.load = 0.0;
    l.nflows = 0;
  }
  for (auto& [id, f] : flows_) {
    (void)id;
    f.rate = -1.0;  // unfrozen
    for (int i = 0; i < f.nlinks; ++i) {
      ++links_[static_cast<std::size_t>(f.links[i])].nflows;
    }
  }

  // Progressive filling: raise one shared water level across all unfrozen
  // flows; each round freezes every flow on a newly-saturated link (at the
  // link's fair share) or at its own rate cap, whichever binds first.
  int unfrozen = static_cast<int>(flows_.size());
  while (unfrozen > 0) {
    double level = std::numeric_limits<double>::infinity();
    for (const Link& l : links_) {
      if (l.nflows > 0) {
        level = std::min(level, (l.cap - l.load) / l.nflows);
      }
    }
    for (const auto& [id, f] : flows_) {
      (void)id;
      if (f.rate < 0.0) level = std::min(level, f.cap);
    }
    DPML_CHECK(level >= 0.0 && std::isfinite(level));
    const double freeze_at = level * (1.0 + kRelEps) + 1.0;
    for (auto& [id, f] : flows_) {
      (void)id;
      if (f.rate >= 0.0) continue;
      bool frozen = f.cap <= freeze_at;
      for (int i = 0; i < f.nlinks && !frozen; ++i) {
        const Link& l = links_[static_cast<std::size_t>(f.links[i])];
        frozen = (l.cap - l.load) / l.nflows <= freeze_at;
      }
      if (!frozen) continue;
      f.rate = std::min(level, f.cap);
      --unfrozen;
    }
    // Commit the frozen rates to their links.
    for (Link& l : links_) {
      l.load = 0.0;
      l.nflows = 0;
    }
    for (const auto& [id, f] : flows_) {
      (void)id;
      for (int i = 0; i < f.nlinks; ++i) {
        Link& l = links_[static_cast<std::size_t>(f.links[i])];
        if (f.rate >= 0.0) {
          l.load += f.rate;
        } else {
          ++l.nflows;
        }
      }
    }
  }

  // Final per-link flow counts (everything is frozen now; the filling loop
  // left nflows at zero).
  for (const auto& [id, f] : flows_) {
    (void)id;
    for (int i = 0; i < f.nlinks; ++i) {
      ++links_[static_cast<std::size_t>(f.links[i])].nflows;
    }
  }

  // Conservation invariant (always on, cheap): no link is allocated beyond
  // its capacity, and the instantaneous peak is recorded.
  for (Link& l : links_) {
    DPML_CHECK_MSG(l.load <= l.cap * (1.0 + 1e-6) + 1.0,
                   "fabric link '" + l.name + "' over-allocated");
    if (l.cap > 0.0) {
      peak_util_ = std::max(peak_util_, l.load / l.cap);
    }
    // Congestion bookkeeping: an interval is open while >= 2 flows share
    // the link.
    if (l.nflows >= 2 && l.cong_since < 0) {
      l.cong_since = now;
    } else if (l.nflows < 2 && l.cong_since >= 0) {
      l.cong_time += now - l.cong_since;
      if (congestion_cb_ && now > l.cong_since) {
        congestion_cb_(static_cast<int>(&l - links_.data()), l.cong_since,
                       now);
      }
      l.cong_since = -1;
    }
  }
}

void FlowFabric::reschedule(sim::Time now) {
  for (auto& [id, f] : flows_) {
    ++f.gen;
    DPML_CHECK(f.rate > 0.0);
    const double eta_s = f.remaining / f.rate;
    const sim::Time eta =
        now + std::max<sim::Time>(
                  1, static_cast<sim::Time>(
                         std::ceil(eta_s * static_cast<double>(sim::kSecond))));
    const FlowId fid = id;
    const std::uint64_t gen = f.gen;
    engine_.schedule_call(eta,
                        [this, fid, gen]() { on_completion_event(fid, gen); });
  }
}

void FlowFabric::on_completion_event(FlowId id, std::uint64_t gen) {
  auto it = flows_.find(id);
  if (it == flows_.end() || it->second.gen != gen) return;  // stale event
  const sim::Time now = engine_.now();
  advance(now);
  if (it->second.remaining > kDrainedBytes) {
    // Rounding drift: the flow is not quite done — reschedule its tail.
    reschedule(now);
    return;
  }
  Completion done = std::move(it->second.done);
  flows_.erase(it);
  recompute(now);
  reschedule(now);
  // Invoked last: the callback may start new flows, which re-enter the
  // allocator on consistent state.
  if (done) done(now);
}

void FlowFabric::set_capacity_scaler(
    std::function<double(int, sim::Time)> fn) {
  capacity_scaler_ = std::move(fn);
}

void FlowFabric::schedule_reallocations(const std::vector<sim::Time>& times) {
  for (sim::Time t : times) {
    engine_.schedule_call(t, [this]() {
      const sim::Time now = engine_.now();
      advance(now);
      recompute(now);
      reschedule(now);
    });
  }
}

void FlowFabric::set_congestion_listener(
    std::function<void(int, sim::Time, sim::Time)> fn) {
  congestion_cb_ = std::move(fn);
}

void FlowFabric::set_failure_listener(
    std::function<void(int, int, bool)> fn) {
  failure_cb_ = std::move(fn);
}

void FlowFabric::finish(sim::Time now) {
  advance(now);
  for (Link& l : links_) {
    if (l.cong_since >= 0) {
      l.cong_time += now - l.cong_since;
      if (congestion_cb_ && now > l.cong_since) {
        congestion_cb_(static_cast<int>(&l - links_.data()), l.cong_since,
                       now);
      }
      l.cong_since = -1;
    }
  }
}

double FlowFabric::flow_rate_gbps(FlowId id) const {
  auto it = flows_.find(id);
  DPML_CHECK_MSG(it != flows_.end(), "querying a completed fabric flow");
  return it->second.rate / kGiga;
}

double FlowFabric::link_avg_utilization(int id, sim::Time now) const {
  if (now <= 0) return 0.0;
  const Link& l = links_[static_cast<std::size_t>(id)];
  double busy = l.busy_integral;
  if (now > last_ && l.cap > 0.0) {
    busy += (l.load / l.cap) * static_cast<double>(now - last_);
  }
  return busy / static_cast<double>(now);
}

double FlowFabric::max_avg_link_utilization(sim::Time now) const {
  double m = 0.0;
  for (int i = 0; i < num_links(); ++i) {
    m = std::max(m, link_avg_utilization(i, now));
  }
  return m;
}

sim::Time FlowFabric::link_congested_time(int id, sim::Time now) const {
  const Link& l = links_[static_cast<std::size_t>(id)];
  sim::Time t = l.cong_time;
  if (l.cong_since >= 0 && now > l.cong_since) t += now - l.cong_since;
  return t;
}

}  // namespace dpml::fabric
