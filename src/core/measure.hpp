// Latency measurement harness (OSU-style, barrier-separated iterations).
//
// Builds a Machine for the requested (cluster, nodes, ppn), runs warmup +
// measured iterations of one allreduce spec on every rank, and reports the
// per-iteration simulated latency. In data mode every rank's result is
// verified bit-for-bit against the serial reference.
#pragma once

#include <cstdint>

#include "core/api.hpp"
#include "net/cluster.hpp"

namespace dpml::core {

struct MeasureOptions {
  int iterations = 5;
  int warmup = 2;
  bool with_data = false;  // metadata-only by default: scales to 10k ranks
  std::uint64_t seed = 1;
  simmpi::Dtype dt = simmpi::Dtype::f32;   // paper: MPI_FLOAT
  simmpi::ReduceOp op = simmpi::ReduceOp::sum;  // paper: MPI_SUM
};

struct MeasureResult {
  double avg_us = 0.0;
  double best_us = 0.0;
  double worst_us = 0.0;
  bool verified = true;        // always true in metadata-only runs
  std::uint64_t events = 0;    // engine events processed (sanity/diagnostics)
};

MeasureResult measure_allreduce(const net::ClusterConfig& cfg, int nodes,
                                int ppn, std::size_t bytes,
                                const AllreduceSpec& spec,
                                const MeasureOptions& opt = {});

}  // namespace dpml::core
