// Latency measurement harness (OSU-style, barrier-separated iterations).
//
// Builds a Machine for the requested (cluster, nodes, ppn), runs warmup +
// measured iterations of one collective spec on every rank, and reports the
// per-iteration simulated latency. In data mode every rank's result is
// verified bit-for-bit against a serial reference for the collective's
// semantics (allreduce/reduce: the reference reduction; bcast: the root's
// payload; alltoall: the transposed block pattern).
#pragma once

#include <cstdint>

#include "check/check.hpp"
#include "core/api.hpp"
#include "fabric/fabric.hpp"
#include "net/cluster.hpp"
#include "perturb/spec.hpp"
#include "sim/dataplane.hpp"

namespace dpml::core {

struct MeasureOptions {
  int iterations = 5;
  int warmup = 2;
  // Independent repetitions: each builds a fresh Machine whose perturbation
  // seed is perturb.seed + rep, so distributions over noise realizations can
  // be reported (min/median/p99). With repetitions == 1, rep 0 uses
  // perturb.seed itself and results equal a single run.
  int repetitions = 1;
  bool with_data = false;  // metadata-only by default: scales to 10k ranks
  std::uint64_t seed = 1;
  // Machine perturbations for every repetition (empty => pristine machines
  // on the exact unperturbed code path).
  perturb::PerturbSpec perturb;
  simmpi::Dtype dt = simmpi::Dtype::f32;   // paper: MPI_FLOAT
  simmpi::ReduceOp op = simmpi::ReduceOp::sum;  // paper: MPI_SUM
  int root = 0;  // rooted kinds (reduce/bcast) only
  // MPI-semantics verification for every repetition's machine (simcheck).
  // A checked run's simulated times are identical to an unchecked one.
  check::CheckLevel check = check::CheckLevel::off;
  // Flow-level fabric fidelity for every repetition's machine. The default
  // `none` keeps the classic LogGP transport (bit-identical results);
  // `links` enforces per-link capacities with max-min fair sharing.
  fabric::FabricLevel fabric = fabric::FabricLevel::none;
  // Host threads for the repetition sweep (0 resolves to
  // core::default_jobs(), i.e. dpmlsim/bench --jobs or DPML_JOBS). Every
  // repetition is an independent Machine with an explicitly derived seed
  // (perturb.seed + rep) committed into its own result slot, so any jobs
  // value produces byte-identical MeasureResults (see docs/MODEL.md §8).
  int jobs = 0;
  // Data plane for every repetition's machine. `timeonly` elides payload
  // storage entirely (simulated times stay bit-identical); it conflicts
  // with with_data and check, which is rejected up front.
  sim::DataMode data_mode = sim::DataMode::payload;
  // Event-queue choice, forwarded to every repetition's engine. `automatic`
  // picks the calendar queue for time-only runs, the binary heap otherwise.
  sim::SchedulerKind scheduler = sim::SchedulerKind::automatic;
};

// Host-side performance counters for one measure_collective call, aggregated
// over all repetitions. Every field except the wall-clock-derived ones
// (wall_ms, events_per_sec, wall_ms_per_sim_ms, jobs) is a deterministic
// function of the simulation and stays identical across jobs counts.
struct MeasurePerf {
  std::uint64_t events = 0;            // engine events, summed over reps
  std::uint64_t peak_live_events = 0;  // event-heap high-water mark (max)
  std::uint64_t peak_queue_depth = 0;  // whole-backlog high-water mark (max)
  std::uint64_t peak_rss_kb = 0;       // process peak RSS in KB (host-side)
  std::uint64_t elided_bytes = 0;      // payload bytes elided (time-only)
  double callback_pool_hit_rate = 0.0; // pooled event records served warm
  double payload_pool_hit_rate = 0.0;  // recycled message payload buffers
  double sim_ms = 0.0;                 // simulated time, summed over reps
  // Host wall clock for the whole repetition sweep (not deterministic).
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double wall_ms_per_sim_ms = 0.0;
  int jobs = 1;                        // resolved worker count used
};

struct MeasureResult {
  double avg_us = 0.0;
  double best_us = 0.0;
  double worst_us = 0.0;
  double median_us = 0.0;      // over all iterations of all repetitions
  double p99_us = 0.0;
  bool verified = true;        // always true in metadata-only runs
  std::uint64_t events = 0;    // engine events processed (sanity/diagnostics)
  // Collective-entry imbalance aggregated over every repetition's machine
  // (all zero on pristine, untraced runs; see simmpi::ImbalanceStats).
  std::uint64_t imbalance_ops = 0;
  double entry_skew_avg_us = 0.0;  // mean per-op (max - min) entry skew
  double exit_skew_avg_us = 0.0;   // mean per-op (max - min) exit skew
  double wait_avg_us = 0.0;        // mean per-op summed early-arriver wait
  // Fabric run metadata (fabric == links only): the cluster's declared
  // oversubscription and the busiest link's time-averaged utilization
  // (worst repetition).
  bool fabric_links = false;
  double oversubscription = 1.0;
  double max_link_util = 0.0;
  std::uint64_t fabric_flows = 0;  // flows launched, summed over reps
  // Host-side performance counters (dpmlsim --perf, bench summaries).
  MeasurePerf perf;
};

// Measure any registered collective. `bytes` is the message size per rank;
// for alltoall it is the per-destination block size (each rank moves
// world_size * bytes in total).
MeasureResult measure_collective(CollKind kind, const net::ClusterConfig& cfg,
                                 int nodes, int ppn, std::size_t bytes,
                                 const coll::CollSpec& spec,
                                 const MeasureOptions& opt = {});

// Compatibility shim over measure_collective(CollKind::allreduce, ...).
MeasureResult measure_allreduce(const net::ClusterConfig& cfg, int nodes,
                                int ppn, std::size_t bytes,
                                const AllreduceSpec& spec,
                                const MeasureOptions& opt = {});

}  // namespace dpml::core
