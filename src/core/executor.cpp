#include "core/executor.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace dpml::core {

namespace {

// 0 means "not resolved yet": the first default_jobs() call reads DPML_JOBS.
std::atomic<int> g_default_jobs{0};

// Set while the calling thread runs inside Executor::run's worker loop, so
// nested sweeps degrade to serial instead of oversubscribing the host.
thread_local bool t_in_worker = false;

int jobs_from_env() {
  const char* env = std::getenv("DPML_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 1;
  return static_cast<int>(v);
}

}  // namespace

int default_jobs() {
  int v = g_default_jobs.load(std::memory_order_acquire);
  if (v == 0) {
    v = jobs_from_env();
    g_default_jobs.store(v, std::memory_order_release);
  }
  return v;
}

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs < 1 ? 1 : jobs, std::memory_order_release);
}

bool in_executor_worker() { return t_in_worker; }

Executor::Executor(int jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
  if (jobs_ < 1) jobs_ = 1;
}

void Executor::run(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1 || t_in_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Indexes are claimed through a monotone counter, so when any index has
  // been claimed every lower index has been claimed too. That makes the
  // first-error semantics serial-equivalent: every job below a recorded
  // failure runs to completion, and the error that propagates is the one
  // with the lowest index — exactly what the serial loop would have thrown.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> first_error{n};  // min failing index so far
  std::mutex err_mu;
  std::exception_ptr err;
  std::size_t err_index = n;

  auto worker = [&]() {
    t_in_worker = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      // Cancellation: indexes above the first recorded failure never start.
      if (i > first_error.load(std::memory_order_acquire)) break;
      try {
        fn(i);
      } catch (...) {
        std::size_t cur = first_error.load(std::memory_order_acquire);
        while (i < cur && !first_error.compare_exchange_weak(
                              cur, i, std::memory_order_acq_rel)) {
        }
        std::lock_guard<std::mutex> lock(err_mu);
        if (i < err_index) {
          err_index = i;
          err = std::current_exception();
        }
      }
    }
    t_in_worker = false;
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace dpml::core
