// Public entry point: one dispatcher over every allreduce design in the
// repository. This is the API the examples, tests, and benches program
// against; it mirrors what an MPI library's collective-selection layer does.
#pragma once

#include <string>

#include "coll/baselines.hpp"
#include "coll/coll.hpp"
#include "coll/dpml.hpp"
#include "coll/sharp_coll.hpp"
#include "sharp/sharp.hpp"

namespace dpml::core {

enum class Algorithm {
  // Flat baselines
  recursive_doubling,
  reduce_scatter_allgather,
  ring,
  binomial,
  gather_bcast,
  // Hierarchical designs
  single_leader,
  dpml,            // paper §4.1 (pipeline_k > 1 => DPML-Pipelined, §4.2)
  // SHArP designs (paper §4.3; need a SharpFabric)
  sharp_node_leader,
  sharp_socket_leader,
  // Library-like selection stacks (paper §6.4 baselines)
  mvapich2,
  intelmpi,
  // Tuned DPML selection (paper's "proposed" line; see tuner.hpp)
  dpml_auto,
};

const char* algorithm_name(Algorithm algo);
Algorithm algorithm_by_name(const std::string& name);

struct AllreduceSpec {
  Algorithm algo = Algorithm::dpml;
  int leaders = 4;
  int pipeline_k = 1;
  coll::InterAlgo inter = coll::InterAlgo::automatic;
  sharp::SharpFabric* fabric = nullptr;  // required by the sharp_* designs

  // Human-readable label for tables, e.g. "dpml(l=16,k=4)".
  std::string label() const;
};

// Run one allreduce with the given spec. SPMD: every rank of args.comm
// calls this with identical arguments.
sim::CoTask<void> run_allreduce(coll::CollArgs args, const AllreduceSpec& spec);

// Non-blocking variant (MPI_Iallreduce-style): starts the collective as a
// background sub-operation of the calling rank and returns its completion
// flag (co_await flag->wait(), or sim::wait_all for a waitall). The paper's
// future work names non-blocking collectives; DPML-Pipelined already uses
// this machinery internally.
std::shared_ptr<sim::Flag> start_allreduce(coll::CollArgs args,
                                           const AllreduceSpec& spec);

// True if the algorithm requires a SHArP fabric.
bool needs_fabric(Algorithm algo);

}  // namespace dpml::core
