// Public entry point: one registry-backed dispatcher over every collective
// in the repository. This is the API the examples, tests, and benches
// program against; it mirrors what an MPI library's collective-selection
// layer does, generalized over the whole reduction-collective family
// (allreduce, rooted reduce, bcast, alltoall).
//
// The generic path is run_collective(kind, args, spec): the (kind,
// spec.algo) pair resolves to a coll::CollDescriptor in the registry, the
// spec is validated against the descriptor's capability flags (clear
// failures at dispatch instead of deep inside a phase), and the
// descriptor's coroutine factory runs. run_allreduce and the Algorithm
// enum remain as source-compatible shims over the allreduce kind.
#pragma once

#include <string>

#include "coll/baselines.hpp"
#include "coll/coll.hpp"
#include "coll/dpml.hpp"
#include "coll/registry.hpp"
#include "coll/sharp_coll.hpp"
#include "sharp/sharp.hpp"

namespace dpml::core {

using CollKind = coll::CollKind;
using CollSpec = coll::CollSpec;

enum class Algorithm {
  // Flat baselines
  recursive_doubling,
  reduce_scatter_allgather,
  ring,
  binomial,
  gather_bcast,
  // Hierarchical designs
  single_leader,
  dpml,            // paper §4.1 (pipeline_k > 1 => DPML-Pipelined, §4.2)
  // SHArP designs (paper §4.3; need a SharpFabric)
  sharp_node_leader,
  sharp_socket_leader,
  // Library-like selection stacks (paper §6.4 baselines)
  mvapich2,
  intelmpi,
  // Tuned DPML selection (paper's "proposed" line; see tuner.hpp)
  dpml_auto,
};

const char* algorithm_name(Algorithm algo);
// Throws util::InvariantError listing every valid name on an unknown name.
Algorithm algorithm_by_name(const std::string& name);

struct AllreduceSpec {
  Algorithm algo = Algorithm::dpml;
  int leaders = 4;
  int pipeline_k = 1;
  coll::InterAlgo inter = coll::InterAlgo::automatic;
  sharp::SharpFabric* fabric = nullptr;  // required by the sharp_* designs

  // Human-readable label for tables, e.g. "dpml(l=16,k=4)".
  std::string label() const;
};

// Conversions between the enum-era allreduce spec and the registry's
// generic spec. to_allreduce_spec throws if spec.algo is not a registered
// allreduce algorithm name.
CollSpec to_generic(const AllreduceSpec& spec);
AllreduceSpec to_allreduce_spec(const CollSpec& spec);

// Run one collective of `kind` with the given spec. SPMD: every rank of
// args.comm calls this with identical arguments. Spec validation (unknown
// algorithm, leaders/pipeline_k < 1, missing fabric) throws
// util::InvariantError synchronously, before the coroutine starts; leaders
// beyond the machine's ppn are clamped with a warning. When tracing is
// enabled on the machine, every rank's participation is recorded as a
// "<kind>" span labelled spec.label(kind), and per-(kind, algorithm)
// counters accumulate in Machine::collective_stats().
sim::CoTask<void> run_collective(CollKind kind, coll::CollArgs args,
                                 const CollSpec& spec);

// Non-blocking variant: starts the collective as a background sub-operation
// of the calling rank and returns its completion flag.
std::shared_ptr<sim::Flag> start_collective(CollKind kind, coll::CollArgs args,
                                            const CollSpec& spec);

// Compatibility shim over run_collective(CollKind::allreduce, ...).
sim::CoTask<void> run_allreduce(coll::CollArgs args, const AllreduceSpec& spec);

// Non-blocking allreduce shim (MPI_Iallreduce-style): co_await flag->wait(),
// or sim::wait_all for a waitall.
std::shared_ptr<sim::Flag> start_allreduce(coll::CollArgs args,
                                           const AllreduceSpec& spec);

// True if the algorithm requires a SHArP fabric.
bool needs_fabric(Algorithm algo);

}  // namespace dpml::core
