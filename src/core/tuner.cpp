#include "core/tuner.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dpml::core {

std::vector<AllreduceSpec> default_candidates(int ppn, bool has_sharp,
                                              std::size_t bytes) {
  std::vector<AllreduceSpec> out;
  int prev = 0;
  for (int l : {1, 2, 4, 8, 16}) {
    const int eff = std::min(l, ppn);
    if (eff == prev) continue;
    prev = eff;
    AllreduceSpec s;
    s.algo = Algorithm::dpml;
    s.leaders = eff;
    out.push_back(s);
    // Pipelined variants only make sense when the per-leader partition is
    // still large (paper §4.2).
    if (bytes / static_cast<std::size_t>(eff) >= 64 * 1024) {
      for (int k : {2, 4, 8}) {
        AllreduceSpec sp = s;
        sp.pipeline_k = k;
        out.push_back(sp);
      }
    }
  }
  if (has_sharp && bytes <= 4096) {
    AllreduceSpec nl;
    nl.algo = Algorithm::sharp_node_leader;
    out.push_back(nl);
    AllreduceSpec sl;
    sl.algo = Algorithm::sharp_socket_leader;
    out.push_back(sl);
  }
  return out;
}

TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes,
                          const std::vector<AllreduceSpec>& candidates,
                          const MeasureOptions& opt) {
  DPML_CHECK_MSG(!candidates.empty(), "empty candidate set");
  TuneResult result;
  for (const AllreduceSpec& cand : candidates) {
    if (needs_fabric(cand.algo) && !cfg.has_sharp()) continue;
    const MeasureResult m = measure_allreduce(cfg, nodes, ppn, bytes, cand, opt);
    result.all.push_back(TunedEntry{cand, m.avg_us});
  }
  DPML_CHECK_MSG(!result.all.empty(), "no runnable candidates");
  std::sort(result.all.begin(), result.all.end(),
            [](const TunedEntry& a, const TunedEntry& b) {
              return a.avg_us < b.avg_us;
            });
  result.best = result.all.front();
  return result;
}

TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes, const MeasureOptions& opt) {
  return tune_allreduce(cfg, nodes, ppn, bytes,
                        default_candidates(ppn, cfg.has_sharp(), bytes), opt);
}

}  // namespace dpml::core
