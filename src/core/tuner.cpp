#include "core/tuner.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dpml::core {

namespace {

// Expand one tunable descriptor into concrete candidate specs.
void expand_candidates(const coll::CollDescriptor& d, int ppn,
                       std::size_t bytes, std::vector<coll::CollSpec>* out) {
  if (!d.caps.uses_leaders) {
    coll::CollSpec s;
    s.algo = d.name;
    out->push_back(s);
    return;
  }
  int prev = 0;
  for (int l : {1, 2, 4, 8, 16}) {
    const int eff = std::min(l, ppn);
    if (eff == prev) continue;
    prev = eff;
    coll::CollSpec s;
    s.algo = d.name;
    s.leaders = eff;
    s.pipeline_k = 1;
    out->push_back(s);
    // Pipelined variants only make sense when the per-leader partition is
    // still large (paper §4.2).
    if (d.caps.supports_pipelining &&
        bytes / static_cast<std::size_t>(eff) >= 64 * 1024) {
      for (int k : {2, 4, 8}) {
        coll::CollSpec sp = s;
        sp.pipeline_k = k;
        out->push_back(sp);
      }
    }
  }
}

}  // namespace

std::vector<coll::CollSpec> registry_candidates(CollKind kind, int ppn,
                                                bool has_sharp,
                                                std::size_t bytes) {
  std::vector<coll::CollSpec> out;
  const auto descs = coll::CollRegistry::instance().list(kind);
  // Host-level designs first, fabric-offloaded ones after, mirroring the
  // paper's sweep order (DPML configurations, then SHArP designs).
  for (const coll::CollDescriptor* d : descs) {
    if (d->caps.tunable && !d->caps.needs_fabric) {
      expand_candidates(*d, ppn, bytes, &out);
    }
  }
  for (const coll::CollDescriptor* d : descs) {
    if (d->caps.tunable && d->caps.needs_fabric && has_sharp &&
        bytes <= d->caps.max_tune_bytes) {
      expand_candidates(*d, ppn, bytes, &out);
    }
  }
  return out;
}

GenericTuneResult tune_collective(CollKind kind, const net::ClusterConfig& cfg,
                                  int nodes, int ppn, std::size_t bytes,
                                  const std::vector<coll::CollSpec>& candidates,
                                  const MeasureOptions& opt) {
  DPML_CHECK_MSG(!candidates.empty(), "empty candidate set");
  const auto& reg = coll::CollRegistry::instance();
  GenericTuneResult result;
  for (const coll::CollSpec& cand : candidates) {
    const coll::CollDescriptor& d = reg.at(kind, cand.algo);
    if (d.caps.needs_fabric && !cfg.has_sharp()) continue;
    const MeasureResult m =
        measure_collective(kind, cfg, nodes, ppn, bytes, cand, opt);
    result.all.push_back(GenericTunedEntry{cand, m.avg_us});
  }
  DPML_CHECK_MSG(!result.all.empty(), "no runnable candidates");
  std::sort(result.all.begin(), result.all.end(),
            [](const GenericTunedEntry& a, const GenericTunedEntry& b) {
              return a.avg_us < b.avg_us;
            });
  result.best = result.all.front();
  return result;
}

GenericTuneResult tune_collective(CollKind kind, const net::ClusterConfig& cfg,
                                  int nodes, int ppn, std::size_t bytes,
                                  const MeasureOptions& opt) {
  return tune_collective(kind, cfg, nodes, ppn, bytes,
                         registry_candidates(kind, ppn, cfg.has_sharp(), bytes),
                         opt);
}

std::vector<AllreduceSpec> default_candidates(int ppn, bool has_sharp,
                                              std::size_t bytes) {
  std::vector<AllreduceSpec> out;
  for (const coll::CollSpec& s :
       registry_candidates(CollKind::allreduce, ppn, has_sharp, bytes)) {
    out.push_back(to_allreduce_spec(s));
  }
  return out;
}

TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes,
                          const std::vector<AllreduceSpec>& candidates,
                          const MeasureOptions& opt) {
  std::vector<coll::CollSpec> generic;
  generic.reserve(candidates.size());
  for (const AllreduceSpec& c : candidates) generic.push_back(to_generic(c));
  const GenericTuneResult g = tune_collective(CollKind::allreduce, cfg, nodes,
                                              ppn, bytes, generic, opt);
  TuneResult result;
  for (const GenericTunedEntry& e : g.all) {
    result.all.push_back(TunedEntry{to_allreduce_spec(e.spec), e.avg_us});
  }
  result.best = result.all.front();
  return result;
}

TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes, const MeasureOptions& opt) {
  return tune_allreduce(cfg, nodes, ppn, bytes,
                        default_candidates(ppn, cfg.has_sharp(), bytes), opt);
}

}  // namespace dpml::core
