// Deterministic parallel sweep executor.
//
// Every paper figure is a sweep over (message size x leader count x cluster
// x repetitions): fully independent, deterministic simulations. The
// Executor fans those jobs out across threads while guaranteeing results
// that are byte-identical to the serial loop:
//
//   * No work stealing, no shared simulation state: each job constructs its
//     own Machine/Engine with an explicitly derived seed (e.g. measure's
//     perturb.seed + rep), so a job's output is a pure function of its
//     index.
//   * Results are committed into pre-sized slots owned by the caller
//     (run(n, fn) invokes fn(i) exactly once per index; map() writes
//     out[i]), so no ordering race can reach the results.
//   * Errors are serial-equivalent: the exception rethrown is the one the
//     serial loop would have hit first — the lowest-index failing job.
//     Jobs with lower indexes always run to completion; jobs above the
//     first failure are cancelled (never started) where possible.
//
// Nesting: an Executor used from inside another Executor's worker runs its
// jobs serially, so the outermost sweep level owns the parallelism and the
// total thread count stays bounded by --jobs.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dpml::core {

// Process-wide default job count used when an Executor (or MeasureOptions)
// leaves `jobs` at 0. Initialized from the DPML_JOBS environment variable
// (when set to an integer >= 1), otherwise 1; dpmlsim/bench `--jobs N`
// overrides it via set_default_jobs.
int default_jobs();
void set_default_jobs(int jobs);

// True while the calling thread is an Executor worker (used to serialize
// nested sweeps; exposed for tests).
bool in_executor_worker();

class Executor {
 public:
  // jobs == 0 resolves to default_jobs(); anything below 1 clamps to 1.
  explicit Executor(int jobs = 0);

  int jobs() const { return jobs_; }

  // Run fn(0) .. fn(n-1), committing whatever fn writes into caller-owned
  // slots. Serial when jobs() == 1, n <= 1, or already inside a worker.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  // Convenience: evaluate fn(i) into a pre-sized result vector, in slot
  // order. T must be default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t n, Fn&& fn) const {
    std::vector<T> out(n);
    run(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  int jobs_;
};

}  // namespace dpml::core
