#include "core/api.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace dpml::core {

const char* algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::recursive_doubling: return "rd";
    case Algorithm::reduce_scatter_allgather: return "rsa";
    case Algorithm::ring: return "ring";
    case Algorithm::binomial: return "binomial";
    case Algorithm::gather_bcast: return "gather-bcast";
    case Algorithm::single_leader: return "single-leader";
    case Algorithm::dpml: return "dpml";
    case Algorithm::sharp_node_leader: return "sharp-node-leader";
    case Algorithm::sharp_socket_leader: return "sharp-socket-leader";
    case Algorithm::mvapich2: return "mvapich2";
    case Algorithm::intelmpi: return "intelmpi";
    case Algorithm::dpml_auto: return "dpml-auto";
  }
  return "?";
}

Algorithm algorithm_by_name(const std::string& name) {
  for (Algorithm a :
       {Algorithm::recursive_doubling, Algorithm::reduce_scatter_allgather,
        Algorithm::ring, Algorithm::binomial, Algorithm::gather_bcast,
        Algorithm::single_leader, Algorithm::dpml,
        Algorithm::sharp_node_leader, Algorithm::sharp_socket_leader,
        Algorithm::mvapich2, Algorithm::intelmpi, Algorithm::dpml_auto}) {
    if (name == algorithm_name(a)) return a;
  }
  DPML_CHECK_MSG(false, "unknown algorithm: " + name);
  return Algorithm::dpml;
}

std::string AllreduceSpec::label() const {
  std::string s = algorithm_name(algo);
  if (algo == Algorithm::dpml) {
    s += "(l=" + std::to_string(leaders);
    if (pipeline_k > 1) s += ",k=" + std::to_string(pipeline_k);
    s += ")";
  }
  return s;
}

bool needs_fabric(Algorithm algo) {
  return algo == Algorithm::sharp_node_leader ||
         algo == Algorithm::sharp_socket_leader;
}

namespace {

// The tuned selection table behind Algorithm::dpml_auto: the paper's
// "proposed" configuration chosen per message size and platform (§6.4).
// Small messages use SHArP when the fabric offers it; otherwise leader
// counts grow with message size, and on fabrics whose large-message
// throughput does not scale with concurrency (Omni-Path Zone C) the
// inter-node phase is pipelined.
AllreduceSpec auto_spec(const coll::CollArgs& args,
                        sharp::SharpFabric* fabric) {
  const auto& m = args.rank->machine();
  const std::size_t bytes = args.bytes();
  const int ppn = m.ppn();

  if (fabric != nullptr && bytes <= 2048 && fabric->supports(bytes)) {
    AllreduceSpec s;
    s.algo = m.config().node.sockets > 1 ? Algorithm::sharp_socket_leader
                                         : Algorithm::sharp_node_leader;
    s.fabric = fabric;
    return s;
  }

  AllreduceSpec s;
  s.algo = Algorithm::dpml;
  if (bytes <= 1024) {
    s.leaders = 1;
  } else if (bytes <= 8 * 1024) {
    s.leaders = 4;
  } else if (bytes <= 64 * 1024) {
    s.leaders = 8;
  } else {
    s.leaders = 16;
  }
  s.leaders = std::min(s.leaders, ppn);

  // Omni-Path-like fabric: a single stream already saturates the link for
  // large messages, so pipeline the per-leader partitions (paper §4.2).
  const auto& nic = m.config().nic;
  const bool message_rate_fabric = nic.proc_bw > nic.link_bw / 2.0;
  const std::size_t per_leader = bytes / static_cast<std::size_t>(s.leaders);
  if (message_rate_fabric && per_leader > 64 * 1024) {
    s.pipeline_k = static_cast<int>(
        std::min<std::size_t>(8, per_leader / (32 * 1024)));
  }
  return s;
}

}  // namespace

std::shared_ptr<sim::Flag> start_allreduce(coll::CollArgs args,
                                           const AllreduceSpec& spec) {
  sim::Engine& engine = args.rank->engine();
  return engine.spawn_sub(run_allreduce(std::move(args), spec));
}

sim::CoTask<void> run_allreduce(coll::CollArgs args,
                                const AllreduceSpec& spec) {
  switch (spec.algo) {
    case Algorithm::recursive_doubling:
      return coll::allreduce_recursive_doubling(std::move(args));
    case Algorithm::reduce_scatter_allgather:
      return coll::allreduce_reduce_scatter_allgather(std::move(args));
    case Algorithm::ring:
      return coll::allreduce_ring(std::move(args));
    case Algorithm::binomial:
      return coll::allreduce_binomial(std::move(args));
    case Algorithm::gather_bcast:
      return coll::allreduce_gather_bcast(std::move(args));
    case Algorithm::single_leader:
      return coll::allreduce_single_leader(std::move(args), spec.inter);
    case Algorithm::dpml: {
      coll::DpmlParams p;
      p.leaders = spec.leaders;
      p.pipeline_k = spec.pipeline_k;
      p.inter = spec.inter;
      return coll::allreduce_dpml(std::move(args), p);
    }
    case Algorithm::sharp_node_leader:
      DPML_CHECK_MSG(spec.fabric != nullptr,
                     "sharp_node_leader requires an attached SharpFabric");
      return coll::allreduce_sharp(std::move(args), *spec.fabric,
                                   coll::SharpDesign::node_leader);
    case Algorithm::sharp_socket_leader:
      DPML_CHECK_MSG(spec.fabric != nullptr,
                     "sharp_socket_leader requires an attached SharpFabric");
      return coll::allreduce_sharp(std::move(args), *spec.fabric,
                                   coll::SharpDesign::socket_leader);
    case Algorithm::mvapich2:
      return coll::allreduce_mvapich2(std::move(args));
    case Algorithm::intelmpi:
      return coll::allreduce_intelmpi(std::move(args));
    case Algorithm::dpml_auto: {
      AllreduceSpec resolved = auto_spec(args, spec.fabric);
      return run_allreduce(std::move(args), resolved);
    }
  }
  DPML_CHECK_MSG(false, "unreachable algorithm");
  return {};
}

}  // namespace dpml::core
