#include "core/api.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/error.hpp"
#include "util/log.hpp"

namespace dpml::core {

const char* algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::recursive_doubling: return "rd";
    case Algorithm::reduce_scatter_allgather: return "rsa";
    case Algorithm::ring: return "ring";
    case Algorithm::binomial: return "binomial";
    case Algorithm::gather_bcast: return "gather-bcast";
    case Algorithm::single_leader: return "single-leader";
    case Algorithm::dpml: return "dpml";
    case Algorithm::sharp_node_leader: return "sharp-node-leader";
    case Algorithm::sharp_socket_leader: return "sharp-socket-leader";
    case Algorithm::mvapich2: return "mvapich2";
    case Algorithm::intelmpi: return "intelmpi";
    case Algorithm::dpml_auto: return "dpml-auto";
  }
  return "?";
}

namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::recursive_doubling, Algorithm::reduce_scatter_allgather,
    Algorithm::ring, Algorithm::binomial, Algorithm::gather_bcast,
    Algorithm::single_leader, Algorithm::dpml, Algorithm::sharp_node_leader,
    Algorithm::sharp_socket_leader, Algorithm::mvapich2, Algorithm::intelmpi,
    Algorithm::dpml_auto};

}  // namespace

Algorithm algorithm_by_name(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    if (name == algorithm_name(a)) return a;
  }
  std::string valid;
  for (Algorithm a : kAllAlgorithms) {
    if (!valid.empty()) valid += ", ";
    valid += algorithm_name(a);
  }
  DPML_CHECK_MSG(false,
                 "unknown algorithm '" + name + "'; valid names: " + valid);
  return Algorithm::dpml;
}

std::string AllreduceSpec::label() const {
  std::string s = algorithm_name(algo);
  if (algo == Algorithm::dpml) {
    s += "(l=" + std::to_string(leaders);
    if (pipeline_k > 1) s += ",k=" + std::to_string(pipeline_k);
    s += ")";
  }
  return s;
}

bool needs_fabric(Algorithm algo) {
  return algo == Algorithm::sharp_node_leader ||
         algo == Algorithm::sharp_socket_leader;
}

CollSpec to_generic(const AllreduceSpec& spec) {
  CollSpec s;
  s.algo = algorithm_name(spec.algo);
  s.leaders = spec.leaders;
  s.pipeline_k = spec.pipeline_k;
  s.inter = spec.inter;
  s.fabric = spec.fabric;
  return s;
}

AllreduceSpec to_allreduce_spec(const CollSpec& spec) {
  AllreduceSpec s;
  s.algo = algorithm_by_name(spec.algo);
  s.leaders = spec.leaders;
  s.pipeline_k = spec.pipeline_k;
  s.inter = spec.inter;
  s.fabric = spec.fabric;
  return s;
}

namespace {

// The tuned selection table behind "dpml-auto": the paper's "proposed"
// configuration chosen per message size and platform (§6.4). Small
// messages use SHArP when the fabric offers it; otherwise leader counts
// grow with message size, and on fabrics whose large-message throughput
// does not scale with concurrency (Omni-Path Zone C) the inter-node phase
// is pipelined.
AllreduceSpec auto_spec(const coll::CollArgs& args,
                        sharp::SharpFabric* fabric) {
  const auto& m = args.rank->machine();
  const std::size_t bytes = args.bytes();
  const int ppn = m.ppn();

  if (fabric != nullptr && bytes <= 2048 && fabric->supports(bytes)) {
    AllreduceSpec s;
    s.algo = m.config().node.sockets > 1 ? Algorithm::sharp_socket_leader
                                         : Algorithm::sharp_node_leader;
    s.fabric = fabric;
    return s;
  }

  AllreduceSpec s;
  s.algo = Algorithm::dpml;
  if (bytes <= 1024) {
    s.leaders = 1;
  } else if (bytes <= 8 * 1024) {
    s.leaders = 4;
  } else if (bytes <= 64 * 1024) {
    s.leaders = 8;
  } else {
    s.leaders = 16;
  }
  s.leaders = std::min(s.leaders, ppn);

  // Omni-Path-like fabric: a single stream already saturates the link for
  // large messages, so pipeline the per-leader partitions (paper §4.2).
  const auto& nic = m.config().nic;
  const bool message_rate_fabric = nic.proc_bw > nic.link_bw / 2.0;
  const std::size_t per_leader = bytes / static_cast<std::size_t>(s.leaders);
  if (message_rate_fabric && per_leader > 64 * 1024) {
    s.pipeline_k = static_cast<int>(
        std::min<std::size_t>(8, per_leader / (32 * 1024)));
  }
  return s;
}

// "dpml-auto" lives here rather than in src/coll because its resolution
// policy (auto_spec) is a core-layer concern. api.cpp defines
// run_collective itself, so this TU's statics are guaranteed initialized
// before any dispatch can happen.
const coll::CollRegistration reg_dpml_auto{{
    "dpml-auto",
    CollKind::allreduce,
    coll::CollCaps{},
    [](coll::CollArgs a, const CollSpec& s) {
      AllreduceSpec resolved = auto_spec(a, s.fabric);
      return run_allreduce(std::move(a), resolved);
    }}};

// Warn at most once per distinct clamp configuration; measurement loops
// dispatch per rank per iteration and would otherwise flood stderr.
void warn_leader_clamp(CollKind kind, const std::string& algo, int requested,
                       int ppn) {
  static std::set<std::string> warned;
  const std::string key = std::string(coll::coll_kind_name(kind)) + "/" +
                          algo + "/" + std::to_string(requested) + ">" +
                          std::to_string(ppn);
  if (!warned.insert(key).second) return;
  DPML_WARN("clamping " << coll::coll_kind_name(kind) << "/" << algo
                        << " leaders from " << requested << " to ppn=" << ppn);
}

// simcheck's view of a collective kind (the checker sits below src/coll and
// defines its own mirror enum).
check::CollOp to_check_op(CollKind kind) {
  switch (kind) {
    case CollKind::allreduce: return check::CollOp::allreduce;
    case CollKind::reduce: return check::CollOp::reduce;
    case CollKind::bcast: return check::CollOp::bcast;
    case CollKind::alltoall: return check::CollOp::alltoall;
    case CollKind::allgather: return check::CollOp::allgather;
    case CollKind::reduce_scatter: return check::CollOp::reduce_scatter;
    case CollKind::gather: return check::CollOp::gather;
    case CollKind::scatter: return check::CollOp::scatter;
    case CollKind::barrier: return check::CollOp::barrier;
  }
  return check::CollOp::allreduce;
}

// The span a rank contributes to a collective (what a serial reference
// reduction folds or a placement reference concatenates): allreduce/reduce
// read send (or recv when in-place), bcast reads the root's buffer,
// alltoall/reduce_scatter read the p send blocks, allgather/gather read the
// rank's one block (in-place allgather reads it out of recv), scatter reads
// the root's p blocks, barrier moves no data.
coll::ConstBytes check_input_of(CollKind kind, const coll::CollArgs& args,
                                int comm_rank) {
  switch (kind) {
    case CollKind::allreduce:
    case CollKind::reduce:
      return args.inplace ? coll::as_const(args.recv) : args.send;
    case CollKind::bcast:
      return coll::as_const(args.recv);
    case CollKind::alltoall:
    case CollKind::reduce_scatter:
      return args.send;
    case CollKind::gather:
      return args.send;
    case CollKind::allgather:
      if (!args.inplace) return args.send;
      if (comm_rank < 0 || args.recv.empty()) return {};
      return coll::sub(coll::as_const(args.recv),
                       static_cast<std::size_t>(comm_rank) * args.bytes(),
                       args.bytes());
    case CollKind::scatter:
      return comm_rank == args.root ? args.send : coll::ConstBytes{};
    case CollKind::barrier:
      return {};
  }
  return {};
}

// Tracing/perturbation/checking wrapper: applies arrival skew before the
// rank's outermost collective entry, records the participation as a span,
// accumulates per-(kind, label) latency and imbalance stats, and notifies
// the semantics checker of entry/exit (with input/output snapshots). Only
// instantiated while the machine traces, perturbs, or checks, so the common
// path pays nothing for attribution.
sim::CoTask<void> run_attributed(const coll::CollDescriptor& d,
                                 coll::CollArgs args, CollSpec spec,
                                 std::string label) {
  simmpi::Rank& r = *args.rank;
  simmpi::Machine& m = r.machine();
  const int world_rank = r.world_rank();
  const int parties = args.comm->size();
  const int comm_rank = args.comm->rank_of_world(world_rank);

  // Snapshot the spans before `args` is moved into the algorithm coroutine.
  check::Checker* ck = comm_rank >= 0 ? m.checker() : nullptr;
  const coll::ConstBytes check_in = check_input_of(d.kind, args, comm_rank);
  const coll::ConstBytes check_out = coll::as_const(args.recv);
  std::uint64_t check_token = 0;
  if (ck != nullptr) {
    check_token = ck->begin_collective(
        to_check_op(d.kind), world_rank, args.comm->context(), label, parties,
        comm_rank, args.root, args.count, args.dt, args.op, check_in);
  }

  // Arrival skew delays this rank's entry into its *outermost* collective
  // only: algorithms dispatched from inside another collective (dpml-auto,
  // the library selection stacks) enter at depth > 1 and are not re-skewed.
  perturb::Perturbation* pt = m.perturbation();
  const bool top = pt != nullptr && pt->enter_collective(world_rank);
  if (top) {
    const sim::Time off = pt->arrival_offset(world_rank);
    if (off > 0) {
      const sim::Time t0 = m.now();
      co_await r.engine().delay(off);
      m.trace("arrival-skew", "perturb", world_rank, t0, m.now());
    }
  }

  const sim::Time start = m.now();
  co_await d.make(std::move(args), spec);
  const sim::Time end = m.now();
  if (pt != nullptr) pt->exit_collective(world_rank);
  if (ck != nullptr) ck->end_collective(world_rank, check_token, check_out);
  const char* kind = coll::coll_kind_name(d.kind);
  m.trace(label.c_str(), kind, world_rank, start, end);
  const std::string key = std::string(kind) + "/" + label;
  m.note_collective(key, end - start);
  m.note_imbalance(key, parties, world_rank, start, end);
}

}  // namespace

sim::CoTask<void> run_collective(CollKind kind, coll::CollArgs args,
                                 const CollSpec& spec) {
  DPML_CHECK_MSG(args.rank != nullptr && args.comm != nullptr,
                 "CollArgs missing rank/comm");
  const coll::CollDescriptor& d =
      coll::CollRegistry::instance().at(kind, spec.algo);

  // Validate the spec against the descriptor's capabilities here, before
  // the coroutine starts, so misconfiguration fails with a clear message
  // instead of deep inside a phase.
  DPML_CHECK_MSG(spec.leaders >= 1,
                 "spec.leaders must be >= 1 for " + d.name);
  DPML_CHECK_MSG(spec.pipeline_k >= 1,
                 "spec.pipeline_k must be >= 1 for " + d.name);
  if (kind == CollKind::reduce || kind == CollKind::bcast ||
      kind == CollKind::gather || kind == CollKind::scatter) {
    DPML_CHECK_MSG(args.root >= 0 && args.root < args.comm->size(),
                   "root out of range for " + d.name);
  }
  if (d.caps.needs_fabric) {
    DPML_CHECK_MSG(spec.fabric != nullptr,
                   d.name + " requires an attached SharpFabric");
  }
  simmpi::Machine& m = args.rank->machine();
  DPML_CHECK_MSG(args.comm->size() >= d.caps.min_comm_size,
                 d.name + " needs a communicator of at least " +
                     std::to_string(d.caps.min_comm_size) + " ranks");
  if (d.caps.needs_payload) {
    DPML_CHECK_MSG(m.data_mode() != sim::DataMode::timeonly,
                   d.name + " inspects payload bytes (needs_payload) and "
                   "cannot run on the time-only data plane; run "
                   "data_mode=payload (drop --time-only) or pick an "
                   "algorithm without the needs-payload capability");
  }

  CollSpec s = spec;
  // Hierarchical (world_only) designs spawn `leaders` processes per node, so
  // more than ppn is meaningless; flat leader-parameterized designs (e.g. the
  // multi-channel ring, where leaders = concurrent channels) are not bound by
  // ppn and clamp internally.
  if (d.caps.uses_leaders && d.caps.world_only && s.leaders > m.ppn()) {
    warn_leader_clamp(kind, d.name, s.leaders, m.ppn());
    s.leaders = m.ppn();
  }

  if (!m.tracing() && m.perturbation() == nullptr && m.checker() == nullptr) {
    // Direct hand-off: the descriptor's coroutine is the collective, with
    // no wrapper frame — simulated times are identical to calling the
    // src/coll implementation directly.
    return d.make(std::move(args), s);
  }
  std::string label = s.label(kind);
  return run_attributed(d, std::move(args), std::move(s), std::move(label));
}

std::shared_ptr<sim::Flag> start_collective(CollKind kind, coll::CollArgs args,
                                            const CollSpec& spec) {
  sim::Engine& engine = args.rank->engine();
  return engine.spawn_sub(run_collective(kind, std::move(args), spec));
}

sim::CoTask<void> run_allreduce(coll::CollArgs args,
                                const AllreduceSpec& spec) {
  return run_collective(CollKind::allreduce, std::move(args),
                        to_generic(spec));
}

std::shared_ptr<sim::Flag> start_allreduce(coll::CollArgs args,
                                           const AllreduceSpec& spec) {
  return start_collective(CollKind::allreduce, std::move(args),
                          to_generic(spec));
}

}  // namespace dpml::core
