#include "core/selection.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace dpml::core {

namespace {
constexpr std::size_t kCatchAll = std::numeric_limits<std::size_t>::max();
}

SelectionTable::SelectionTable(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  validate();
}

void SelectionTable::validate() const {
  DPML_CHECK_MSG(!entries_.empty(), "selection table has no entries");
  std::size_t prev = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (i + 1 == entries_.size()) {
      DPML_CHECK_MSG(e.max_bytes == kCatchAll,
                     "selection table must end with a catch-all entry");
    } else {
      DPML_CHECK_MSG(e.max_bytes != kCatchAll,
                     "catch-all entry must be last");
      DPML_CHECK_MSG(i == 0 || e.max_bytes > prev,
                     "selection thresholds must be strictly ascending");
    }
    prev = e.max_bytes;
  }
}

const AllreduceSpec& SelectionTable::select(std::size_t bytes) const {
  DPML_CHECK_MSG(!entries_.empty(), "selecting from an empty table");
  for (const Entry& e : entries_) {
    if (bytes <= e.max_bytes) return e.spec;
  }
  return entries_.back().spec;
}

std::string SelectionTable::serialize() const {
  std::ostringstream os;
  os << "# dpml allreduce selection table\n";
  for (const Entry& e : entries_) {
    if (e.max_bytes == kCatchAll) {
      os << "*";
    } else {
      os << "<=" << e.max_bytes;
    }
    os << "  " << algorithm_name(e.spec.algo);
    if (e.spec.algo == Algorithm::dpml) {
      os << " " << e.spec.leaders << " " << e.spec.pipeline_k;
    }
    os << "\n";
  }
  return os.str();
}

SelectionTable SelectionTable::parse(const std::string& text) {
  std::vector<Entry> entries;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string bound;
    if (!(ls >> bound)) continue;  // blank line
    Entry e;
    if (bound == "*") {
      e.max_bytes = kCatchAll;
    } else {
      DPML_CHECK_MSG(bound.rfind("<=", 0) == 0,
                     "selection entry must start with '<=' or '*': " + bound);
      e.max_bytes = std::stoull(bound.substr(2));
    }
    std::string algo;
    DPML_CHECK_MSG(static_cast<bool>(ls >> algo),
                   "selection entry missing algorithm: " + line);
    e.spec.algo = algorithm_by_name(algo);
    int leaders = 0;
    if (ls >> leaders) {
      e.spec.leaders = leaders;
      int k = 0;
      if (ls >> k) e.spec.pipeline_k = k;
    }
    entries.push_back(e);
  }
  return SelectionTable(std::move(entries));
}

SelectionTable SelectionTable::tune(const net::ClusterConfig& cfg, int nodes,
                                    int ppn,
                                    const std::vector<std::size_t>& probe_sizes,
                                    const MeasureOptions& opt) {
  DPML_CHECK_MSG(!probe_sizes.empty(), "no probe sizes");
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < probe_sizes.size(); ++i) {
    const auto best = tune_allreduce(cfg, nodes, ppn, probe_sizes[i], opt).best;
    Entry e;
    e.max_bytes =
        i + 1 == probe_sizes.size() ? kCatchAll : probe_sizes[i];
    e.spec = best.spec;
    e.spec.fabric = nullptr;  // tables are machine-independent
    entries.push_back(e);
  }
  // Merge adjacent entries with identical specs (keeps tables small).
  std::vector<Entry> merged;
  for (const Entry& e : entries) {
    if (!merged.empty() &&
        merged.back().spec.algo == e.spec.algo &&
        merged.back().spec.leaders == e.spec.leaders &&
        merged.back().spec.pipeline_k == e.spec.pipeline_k) {
      merged.back().max_bytes = e.max_bytes;
    } else {
      merged.push_back(e);
    }
  }
  return SelectionTable(std::move(merged));
}

sim::CoTask<void> run_allreduce(coll::CollArgs args,
                                const SelectionTable& table,
                                sharp::SharpFabric* fabric) {
  AllreduceSpec spec = table.select(args.bytes());
  if (needs_fabric(spec.algo) || spec.algo == Algorithm::dpml_auto) {
    spec.fabric = fabric;
  }
  if (needs_fabric(spec.algo) && spec.fabric == nullptr) {
    // Graceful degradation on fabric-less platforms: fall back to the tuned
    // host design family.
    spec.algo = Algorithm::dpml;
    spec.leaders = 1;
  }
  return run_allreduce(std::move(args), spec);
}

}  // namespace dpml::core
