#include "core/selection.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace dpml::core {

namespace {
constexpr std::size_t kCatchAll = std::numeric_limits<std::size_t>::max();

// Whether serialize() should persist leaders/pipeline_k for this spec:
// exactly the algorithms whose descriptor declares a leader parameter.
bool persists_params(CollKind kind, const std::string& algo) {
  const coll::CollDescriptor* d =
      coll::CollRegistry::instance().find(kind, algo);
  return d != nullptr && d->caps.uses_leaders;
}

}  // namespace

SelectionTable::SelectionTable(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  validate();
}

void SelectionTable::validate() const {
  DPML_CHECK_MSG(!entries_.empty(), "selection table has no entries");
  // Per collective kind: thresholds strictly ascending, catch-all present
  // and last. Kinds may interleave freely in the entry list.
  for (CollKind kind : coll::kAllCollKinds) {
    const Entry* last = nullptr;
    std::size_t prev = 0;
    bool first = true;
    for (const Entry& e : entries_) {
      if (e.kind != kind) continue;
      if (last != nullptr) {
        DPML_CHECK_MSG(last->max_bytes != kCatchAll,
                       "catch-all entry must be last");
        DPML_CHECK_MSG(first || last->max_bytes > prev,
                       "selection thresholds must be strictly ascending");
        prev = last->max_bytes;
        first = false;
      }
      last = &e;
    }
    if (last != nullptr) {
      DPML_CHECK_MSG(last->max_bytes == kCatchAll,
                     "selection table must end with a catch-all entry");
    }
  }
}

bool SelectionTable::has_kind(CollKind kind) const {
  for (const Entry& e : entries_) {
    if (e.kind == kind) return true;
  }
  return false;
}

const coll::CollSpec& SelectionTable::select(CollKind kind,
                                             std::size_t bytes) const {
  DPML_CHECK_MSG(!entries_.empty(), "selecting from an empty table");
  const coll::CollSpec* catch_all = nullptr;
  for (const Entry& e : entries_) {
    if (e.kind != kind) continue;
    if (bytes <= e.max_bytes) return e.spec;
    catch_all = &e.spec;
  }
  DPML_CHECK_MSG(catch_all != nullptr,
                 std::string("selection table has no entries for ") +
                     coll::coll_kind_name(kind));
  return *catch_all;
}

AllreduceSpec SelectionTable::select(std::size_t bytes) const {
  return to_allreduce_spec(select(CollKind::allreduce, bytes));
}

std::string SelectionTable::serialize() const {
  std::ostringstream os;
  os << "# dpml collective selection table\n";
  for (const Entry& e : entries_) {
    if (e.kind != CollKind::allreduce) {
      os << coll::coll_kind_name(e.kind) << " ";
    }
    if (e.max_bytes == kCatchAll) {
      os << "*";
    } else {
      os << "<=" << e.max_bytes;
    }
    os << "  " << e.spec.algo;
    if (persists_params(e.kind, e.spec.algo)) {
      os << " " << e.spec.leaders << " " << e.spec.pipeline_k;
    }
    os << "\n";
  }
  return os.str();
}

SelectionTable SelectionTable::parse(const std::string& text) {
  std::vector<Entry> entries;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string bound;
    if (!(ls >> bound)) continue;  // blank line
    Entry e;
    // Optional leading collective kind; bare lines are allreduce entries
    // (the legacy format).
    if (coll::is_coll_kind_name(bound)) {
      e.kind = coll::coll_kind_by_name(bound);
      DPML_CHECK_MSG(static_cast<bool>(ls >> bound),
                     "selection entry missing size bound: " + line);
    }
    if (bound == "*") {
      e.max_bytes = kCatchAll;
    } else {
      DPML_CHECK_MSG(bound.rfind("<=", 0) == 0,
                     "selection entry must start with '<=' or '*': " + bound);
      e.max_bytes = std::stoull(bound.substr(2));
    }
    std::string algo;
    DPML_CHECK_MSG(static_cast<bool>(ls >> algo),
                   "selection entry missing algorithm: " + line);
    // Resolve through the registry: unknown names fail here, with the
    // error listing every registered algorithm of the entry's kind.
    e.spec.algo = coll::CollRegistry::instance().at(e.kind, algo).name;
    int leaders = 0;
    if (ls >> leaders) {
      e.spec.leaders = leaders;
      int k = 0;
      if (ls >> k) e.spec.pipeline_k = k;
    }
    entries.push_back(e);
  }
  return SelectionTable(std::move(entries));
}

SelectionTable SelectionTable::tune(CollKind kind,
                                    const net::ClusterConfig& cfg, int nodes,
                                    int ppn,
                                    const std::vector<std::size_t>& probe_sizes,
                                    const MeasureOptions& opt) {
  DPML_CHECK_MSG(!probe_sizes.empty(), "no probe sizes");
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < probe_sizes.size(); ++i) {
    const auto best =
        tune_collective(kind, cfg, nodes, ppn, probe_sizes[i], opt).best;
    Entry e;
    e.kind = kind;
    e.max_bytes =
        i + 1 == probe_sizes.size() ? kCatchAll : probe_sizes[i];
    e.spec = best.spec;
    e.spec.fabric = nullptr;  // tables are machine-independent
    entries.push_back(e);
  }
  // Merge adjacent entries with identical specs (keeps tables small).
  std::vector<Entry> merged;
  for (const Entry& e : entries) {
    if (!merged.empty() &&
        merged.back().spec.algo == e.spec.algo &&
        merged.back().spec.leaders == e.spec.leaders &&
        merged.back().spec.pipeline_k == e.spec.pipeline_k) {
      merged.back().max_bytes = e.max_bytes;
    } else {
      merged.push_back(e);
    }
  }
  return SelectionTable(std::move(merged));
}

SelectionTable SelectionTable::tune(const net::ClusterConfig& cfg, int nodes,
                                    int ppn,
                                    const std::vector<std::size_t>& probe_sizes,
                                    const MeasureOptions& opt) {
  return tune(CollKind::allreduce, cfg, nodes, ppn, probe_sizes, opt);
}

sim::CoTask<void> run_collective(CollKind kind, coll::CollArgs args,
                                 const SelectionTable& table,
                                 sharp::SharpFabric* fabric) {
  coll::CollSpec spec = table.select(kind, args.bytes());
  const coll::CollDescriptor& d =
      coll::CollRegistry::instance().at(kind, spec.algo);
  if (d.caps.needs_fabric || spec.algo == "dpml-auto") {
    spec.fabric = fabric;
  }
  if (d.caps.needs_fabric && spec.fabric == nullptr &&
      kind == CollKind::allreduce) {
    // Graceful degradation on fabric-less platforms: fall back to the tuned
    // host design family.
    spec.algo = "dpml";
    spec.leaders = 1;
    spec.pipeline_k = 1;
  }
  return run_collective(kind, std::move(args), spec);
}

sim::CoTask<void> run_allreduce(coll::CollArgs args,
                                const SelectionTable& table,
                                sharp::SharpFabric* fabric) {
  return run_collective(CollKind::allreduce, std::move(args), table, fabric);
}

}  // namespace dpml::core
