// Empirical configuration tuner (paper §6.4).
//
// "We performed empirical evaluation of different configurations on the four
// clusters and chose the best configuration for each message size." This
// tuner does exactly that: sweep a candidate set (leader counts, pipeline
// depths, SHArP designs) at a given shape and message size and return the
// fastest. The Figure 9/10 benches use it to produce the paper's "proposed"
// line; it is also part of the public API so downstream users can tune for
// their own simulated platforms.
#pragma once

#include <vector>

#include "core/measure.hpp"

namespace dpml::core {

struct TunedEntry {
  AllreduceSpec spec;
  double avg_us = 0.0;
};

struct TuneResult {
  TunedEntry best;
  std::vector<TunedEntry> all;  // every candidate, fastest first
};

// Candidate set mirroring the paper's sweep: DPML with leaders in
// {1,2,4,8,16} (clamped to ppn, deduplicated), pipelined variants of the
// largest leader count, and both SHArP designs when a fabric exists.
std::vector<AllreduceSpec> default_candidates(int ppn, bool has_sharp,
                                              std::size_t bytes);

TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes,
                          const std::vector<AllreduceSpec>& candidates,
                          const MeasureOptions& opt = {});

// Convenience: default candidate set.
TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes, const MeasureOptions& opt = {});

}  // namespace dpml::core
