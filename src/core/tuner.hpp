// Empirical configuration tuner (paper §6.4).
//
// "We performed empirical evaluation of different configurations on the four
// clusters and chose the best configuration for each message size." This
// tuner does exactly that: sweep a candidate set (leader counts, pipeline
// depths, SHArP designs) at a given shape and message size and return the
// fastest. The Figure 9/10 benches use it to produce the paper's "proposed"
// line; it is also part of the public API so downstream users can tune for
// their own simulated platforms.
//
// Candidates come from the collective registry: every descriptor of the
// requested kind whose caps mark it tunable contributes, expanded through
// its capability flags (uses_leaders -> leader sweep, supports_pipelining ->
// pipelined variants, needs_fabric/max_tune_bytes -> fabric gating). The
// allreduce entry points are kept as source-compatible shims.
#pragma once

#include <vector>

#include "core/measure.hpp"

namespace dpml::core {

// ---- Generic (any collective kind) ----

struct GenericTunedEntry {
  coll::CollSpec spec;
  double avg_us = 0.0;
};

struct GenericTuneResult {
  GenericTunedEntry best;
  std::vector<GenericTunedEntry> all;  // every candidate, fastest first
};

// Candidate sweep for `kind` built from the registry's tunable descriptors.
// For allreduce this reproduces the paper's sweep exactly: DPML with
// leaders in {1,2,4,8,16} (clamped to ppn, deduplicated), pipelined
// variants when the per-leader partition is still >= 64 KiB, and both
// SHArP designs when a fabric exists and the message fits their tuning
// range.
std::vector<coll::CollSpec> registry_candidates(CollKind kind, int ppn,
                                                bool has_sharp,
                                                std::size_t bytes);

GenericTuneResult tune_collective(CollKind kind, const net::ClusterConfig& cfg,
                                  int nodes, int ppn, std::size_t bytes,
                                  const std::vector<coll::CollSpec>& candidates,
                                  const MeasureOptions& opt = {});

// Convenience: registry candidate set.
GenericTuneResult tune_collective(CollKind kind, const net::ClusterConfig& cfg,
                                  int nodes, int ppn, std::size_t bytes,
                                  const MeasureOptions& opt = {});

// ---- Allreduce compatibility shims ----

struct TunedEntry {
  AllreduceSpec spec;
  double avg_us = 0.0;
};

struct TuneResult {
  TunedEntry best;
  std::vector<TunedEntry> all;  // every candidate, fastest first
};

// Candidate set mirroring the paper's sweep (see registry_candidates).
std::vector<AllreduceSpec> default_candidates(int ppn, bool has_sharp,
                                              std::size_t bytes);

TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes,
                          const std::vector<AllreduceSpec>& candidates,
                          const MeasureOptions& opt = {});

// Convenience: default candidate set.
TuneResult tune_allreduce(const net::ClusterConfig& cfg, int nodes, int ppn,
                          std::size_t bytes, const MeasureOptions& opt = {});

}  // namespace dpml::core
