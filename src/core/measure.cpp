#include "core/measure.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "core/executor.hpp"
#include "simmpi/verify.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace dpml::core {

namespace {

struct Shared {
  Shared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time iter_start = 0;
  std::vector<sim::Time> samples;
};

sim::CoTask<void> bench_rank(CollKind kind, simmpi::Rank& r,
                             const coll::CollSpec& spec,
                             const MeasureOptions& opt, std::size_t count,
                             simmpi::ConstBytes send, simmpi::MutBytes recv,
                             std::shared_ptr<Shared> sh) {
  const auto& world = r.machine().world();
  for (int it = 0; it < opt.warmup + opt.iterations; ++it) {
    co_await sh->barrier.arrive_and_wait();
    if (r.world_rank() == 0) sh->iter_start = r.engine().now();
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &world;
    a.count = count;
    a.dt = opt.dt;
    a.op = opt.op;
    a.root = opt.root;
    a.send = send;
    a.recv = recv;
    co_await run_collective(kind, a, spec);
    co_await sh->barrier.arrive_and_wait();
    if (r.world_rank() == 0 && it >= opt.warmup) {
      sh->samples.push_back(r.engine().now() - sh->iter_start);
    }
  }
}

// Per-destination operand index for alltoall block (src -> dst): every block
// carries a distinct deterministic pattern so misrouted blocks are caught.
int alltoall_block_id(int src, int dst, int world) { return src * world + dst; }

}  // namespace

namespace {

// Everything one repetition produces, committed into its own slot by the
// sweep executor and merged serially in rep order afterwards — so the merged
// MeasureResult is a pure function of (options, rep count), independent of
// how many host threads ran the sweep.
struct RepOutcome {
  std::vector<sim::Time> samples;
  std::uint64_t events = 0;
  bool verified = true;
  bool fabric_links = false;
  double max_link_util = 0.0;
  std::uint64_t fabric_flows = 0;
  std::uint64_t imbalance_ops = 0;
  sim::Time imb_entry = 0;
  sim::Time imb_exit = 0;
  sim::Time imb_wait = 0;
  sim::Time sim_end = 0;  // final simulated time of this machine
  sim::EnginePerf engine_perf;
  std::uint64_t elided_bytes = 0;  // payload bytes elided (time-only plane)
};

// One repetition: fresh machine (perturbation seed shifted by `rep`), warmup
// + measured iterations, data verification. Pure function of its arguments:
// touches no state outside the returned RepOutcome, so repetitions can run
// on any thread in any order.
RepOutcome measure_rep(CollKind kind, const net::ClusterConfig& cfg,
                       int nodes, int ppn, std::size_t bytes,
                       const coll::CollSpec& spec, const MeasureOptions& opt,
                       int rep) {
  RepOutcome out;
  const std::size_t esize = simmpi::dtype_size(opt.dt);
  // Barrier moves no data: count is 0 by convention (`bytes` only names the
  // sweep point it rode in on).
  const std::size_t count = kind == CollKind::barrier ? 0 : bytes / esize;
  const coll::CollDescriptor& desc =
      coll::CollRegistry::instance().at(kind, spec.algo);

  simmpi::RunOptions ropt;
  ropt.with_data = opt.with_data;
  ropt.seed = opt.seed;
  ropt.check_level = opt.check;
  ropt.fabric_level = opt.fabric;
  ropt.data_mode = opt.data_mode;
  ropt.scheduler = opt.scheduler;
  ropt.perturb = opt.perturb;
  ropt.perturb.seed = opt.perturb.seed + static_cast<std::uint64_t>(rep);
  simmpi::Machine machine(cfg, nodes, ppn, ropt);

  // Attach an in-network aggregation fabric when the design needs it (or
  // when dpml-auto could route small messages through it).
  std::optional<sharp::SharpFabric> fabric;
  coll::CollSpec used = spec;
  if ((desc.caps.needs_fabric || spec.algo == "dpml-auto") &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(machine);
    used.fabric = &*fabric;
  }
  if (desc.caps.needs_fabric) {
    DPML_CHECK_MSG(used.fabric != nullptr,
                   "SHArP design requested on a fabric-less cluster");
  }

  const int world = machine.world_size();
  DPML_CHECK_MSG(opt.root >= 0 && opt.root < world, "measure root out of range");

  // Data-mode buffers, shaped per collective kind. `bytes` is the per-rank
  // payload; alltoall moves one `bytes` block per (src, dst) pair.
  std::vector<std::vector<std::byte>> sendbufs;
  std::vector<std::vector<std::byte>> recvbufs(
      static_cast<std::size_t>(world));
  if (opt.with_data) {
    sendbufs.resize(static_cast<std::size_t>(world));
    for (int w = 0; w < world; ++w) {
      auto& sb = sendbufs[static_cast<std::size_t>(w)];
      auto& rb = recvbufs[static_cast<std::size_t>(w)];
      switch (kind) {
        case CollKind::allreduce:
        case CollKind::reduce:
          sb = simmpi::make_operand(opt.dt, count, w, opt.op, opt.seed);
          rb.resize(bytes);
          break;
        case CollKind::bcast:
          // In-place payload buffer: the root starts with the operand, the
          // others start zeroed and must end with a bit-exact copy.
          rb.resize(bytes);
          if (w == opt.root) {
            rb = simmpi::make_operand(opt.dt, count, opt.root, opt.op,
                                      opt.seed);
          }
          break;
        case CollKind::alltoall:
          sb.reserve(static_cast<std::size_t>(world) * bytes);
          for (int dst = 0; dst < world; ++dst) {
            auto block = simmpi::make_operand(
                opt.dt, count, alltoall_block_id(w, dst, world), opt.op,
                opt.seed);
            sb.insert(sb.end(), block.begin(), block.end());
          }
          rb.resize(static_cast<std::size_t>(world) * bytes);
          break;
        case CollKind::allgather:
          sb = simmpi::make_operand(opt.dt, count, w, opt.op, opt.seed);
          rb.resize(static_cast<std::size_t>(world) * bytes);
          break;
        case CollKind::reduce_scatter:
          // Per-(owner, block) operands, like alltoall: rank w sends world
          // blocks, block dst is folded into rank dst's result.
          sb.reserve(static_cast<std::size_t>(world) * bytes);
          for (int dst = 0; dst < world; ++dst) {
            auto block = simmpi::make_operand(
                opt.dt, count, alltoall_block_id(w, dst, world), opt.op,
                opt.seed);
            sb.insert(sb.end(), block.begin(), block.end());
          }
          rb.resize(bytes);
          break;
        case CollKind::gather:
          sb = simmpi::make_operand(opt.dt, count, w, opt.op, opt.seed);
          if (w == opt.root) rb.resize(static_cast<std::size_t>(world) * bytes);
          break;
        case CollKind::scatter:
          if (w == opt.root) {
            sb.reserve(static_cast<std::size_t>(world) * bytes);
            for (int dst = 0; dst < world; ++dst) {
              auto block = simmpi::make_operand(
                  opt.dt, count, alltoall_block_id(opt.root, dst, world),
                  opt.op, opt.seed);
              sb.insert(sb.end(), block.begin(), block.end());
            }
          }
          rb.resize(bytes);
          break;
        case CollKind::barrier:
          break;  // no payload
      }
    }
  }

  auto sh = std::make_shared<Shared>(machine.engine(), world);
  machine.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    simmpi::ConstBytes send =
        opt.with_data ? simmpi::ConstBytes{sendbufs[w]} : simmpi::ConstBytes{};
    simmpi::MutBytes recv =
        opt.with_data ? simmpi::MutBytes{recvbufs[w]} : simmpi::MutBytes{};
    return bench_rank(kind, r, used, opt, count, send, recv, sh);
  });

  DPML_CHECK(static_cast<int>(sh->samples.size()) == opt.iterations);
  out.samples = std::move(sh->samples);
  out.events = machine.engine().events_processed();
  out.sim_end = machine.engine().now();
  out.engine_perf = machine.engine().perf();
  out.elided_bytes = machine.data_plane().elided_bytes();
  if (const fabric::FlowFabric* ff = machine.flow_fabric()) {
    out.fabric_links = true;
    out.max_link_util = ff->max_avg_link_utilization(machine.engine().now());
    out.fabric_flows = ff->total_flows();
  }
  for (const auto& [key, st] : machine.imbalance_stats()) {
    (void)key;
    out.imbalance_ops += st.ops;
    out.imb_entry += st.entry_skew_total;
    out.imb_exit += st.exit_skew_total;
    out.imb_wait += st.wait_total;
  }

  if (opt.with_data) {
    switch (kind) {
      case CollKind::allreduce: {
        const auto ref = simmpi::reference_allreduce(opt.dt, count, world,
                                                     opt.op, opt.seed);
        for (int w = 0; w < world; ++w) {
          if (recvbufs[static_cast<std::size_t>(w)] != ref) {
            out.verified = false;
            break;
          }
        }
        break;
      }
      case CollKind::reduce: {
        const auto ref = simmpi::reference_allreduce(opt.dt, count, world,
                                                     opt.op, opt.seed);
        out.verified = recvbufs[static_cast<std::size_t>(opt.root)] == ref;
        break;
      }
      case CollKind::bcast: {
        const auto payload =
            simmpi::make_operand(opt.dt, count, opt.root, opt.op, opt.seed);
        for (int w = 0; w < world; ++w) {
          if (recvbufs[static_cast<std::size_t>(w)] != payload) {
            out.verified = false;
            break;
          }
        }
        break;
      }
      case CollKind::alltoall: {
        for (int w = 0; w < world && out.verified; ++w) {
          const auto& rb = recvbufs[static_cast<std::size_t>(w)];
          for (int src = 0; src < world; ++src) {
            const auto block = simmpi::make_operand(
                opt.dt, count, alltoall_block_id(src, w, world), opt.op,
                opt.seed);
            if (std::memcmp(rb.data() + static_cast<std::size_t>(src) * bytes,
                            block.data(), bytes) != 0) {
              out.verified = false;
              break;
            }
          }
        }
        break;
      }
      case CollKind::allgather:
      case CollKind::gather: {
        // Placement reference: the per-rank operands in rank order.
        std::vector<std::byte> expect;
        expect.reserve(static_cast<std::size_t>(world) * bytes);
        for (int src = 0; src < world; ++src) {
          const auto block =
              simmpi::make_operand(opt.dt, count, src, opt.op, opt.seed);
          expect.insert(expect.end(), block.begin(), block.end());
        }
        if (kind == CollKind::gather) {
          out.verified = recvbufs[static_cast<std::size_t>(opt.root)] == expect;
        } else {
          for (int w = 0; w < world; ++w) {
            if (recvbufs[static_cast<std::size_t>(w)] != expect) {
              out.verified = false;
              break;
            }
          }
        }
        break;
      }
      case CollKind::reduce_scatter: {
        // Rank w's block: fold block w of every rank's send vector in
        // ascending rank order (exact for make_operand values).
        const simmpi::Op fold{opt.op};
        for (int w = 0; w < world && out.verified; ++w) {
          auto ref = simmpi::make_operand(
              opt.dt, count, alltoall_block_id(0, w, world), opt.op, opt.seed);
          for (int src = 1; src < world; ++src) {
            const auto block = simmpi::make_operand(
                opt.dt, count, alltoall_block_id(src, w, world), opt.op,
                opt.seed);
            fold.apply(opt.dt, count, simmpi::MutBytes{ref},
                       simmpi::ConstBytes{block});
          }
          out.verified = recvbufs[static_cast<std::size_t>(w)] == ref;
        }
        break;
      }
      case CollKind::scatter: {
        for (int w = 0; w < world && out.verified; ++w) {
          const auto block = simmpi::make_operand(
              opt.dt, count, alltoall_block_id(opt.root, w, world), opt.op,
              opt.seed);
          out.verified = recvbufs[static_cast<std::size_t>(w)] == block;
        }
        break;
      }
      case CollKind::barrier:
        break;  // arrival semantics only; nothing to verify
    }
  }
  return out;
}

}  // namespace

MeasureResult measure_collective(CollKind kind, const net::ClusterConfig& cfg,
                                 int nodes, int ppn, std::size_t bytes,
                                 const coll::CollSpec& spec,
                                 const MeasureOptions& opt) {
  const std::size_t esize = simmpi::dtype_size(opt.dt);
  DPML_CHECK_MSG(bytes % esize == 0,
                 "message size must be a multiple of the datatype size");
  DPML_CHECK(opt.iterations >= 1 && opt.warmup >= 0);
  DPML_CHECK_MSG(opt.repetitions >= 1, "measure needs at least one repetition");
  // Time-only conflicts fail here, before any Machine is built, so a whole
  // repetition sweep cannot die halfway through on the same error.
  if (opt.data_mode == sim::DataMode::timeonly) {
    DPML_CHECK_MSG(!opt.with_data,
                   "data verification needs payload buffers: "
                   "MeasureOptions::with_data conflicts with "
                   "data_mode=timeonly; clear with_data or run "
                   "data_mode=payload");
    DPML_CHECK_MSG(opt.check == check::CheckLevel::off,
                   "simcheck needs payload spans: MeasureOptions::check=" +
                       std::string(check::check_level_name(opt.check)) +
                       " conflicts with data_mode=timeonly; set check=off or "
                       "run data_mode=payload");
    const coll::CollDescriptor& desc =
        coll::CollRegistry::instance().at(kind, spec.algo);
    DPML_CHECK_MSG(!desc.caps.needs_payload,
                   desc.name + " inspects payload bytes (needs_payload) and "
                   "cannot run on the time-only data plane; run "
                   "data_mode=payload or pick an algorithm without the "
                   "needs-payload capability");
  }

  MeasureResult res;

  // Fan the independent repetitions out across the sweep executor. Each rep
  // builds its own Machine/Engine from an explicitly derived seed
  // (perturb.seed + rep) and commits into its own pre-sized slot; the merge
  // below runs serially in rep order, so the result is byte-identical for
  // any jobs count (locked by tests/executor_test.cpp).
  const Executor executor(opt.jobs);
  const auto wall_start = std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const std::vector<RepOutcome> reps = executor.map<RepOutcome>(
      static_cast<std::size_t>(opt.repetitions), [&](std::size_t rep) {
        return measure_rep(kind, cfg, nodes, ppn, bytes, spec, opt,
                           static_cast<int>(rep));
      });
  const auto wall_end = std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)

  std::vector<sim::Time> samples;
  samples.reserve(static_cast<std::size_t>(opt.repetitions) *
                  static_cast<std::size_t>(opt.iterations));
  sim::Time imb_entry = 0, imb_exit = 0, imb_wait = 0;
  sim::Time sim_total = 0;
  sim::PoolStats callback_pool, payload_pool;
  for (const RepOutcome& rep : reps) {
    samples.insert(samples.end(), rep.samples.begin(), rep.samples.end());
    res.events += rep.events;
    res.verified = res.verified && rep.verified;
    if (rep.fabric_links) {
      res.fabric_links = true;
      res.oversubscription = cfg.oversubscription;
      res.max_link_util = std::max(res.max_link_util, rep.max_link_util);
      res.fabric_flows += rep.fabric_flows;
    }
    res.imbalance_ops += rep.imbalance_ops;
    imb_entry += rep.imb_entry;
    imb_exit += rep.imb_exit;
    imb_wait += rep.imb_wait;
    sim_total += rep.sim_end;
    res.perf.peak_live_events =
        std::max(res.perf.peak_live_events, rep.engine_perf.peak_live_events);
    res.perf.peak_queue_depth =
        std::max(res.perf.peak_queue_depth, rep.engine_perf.peak_queue_depth);
    res.perf.peak_rss_kb =
        std::max(res.perf.peak_rss_kb, rep.engine_perf.peak_rss_kb);
    res.perf.elided_bytes += rep.elided_bytes;
    callback_pool.merge(rep.engine_perf.callback_pool);
    payload_pool.merge(rep.engine_perf.payload_pool);
  }
  res.perf.events = res.events;
  res.perf.callback_pool_hit_rate = callback_pool.hit_rate();
  res.perf.payload_pool_hit_rate = payload_pool.hit_rate();
  res.perf.sim_ms = sim::to_us(sim_total) / 1e3;
  res.perf.jobs = executor.jobs();
  res.perf.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  if (res.perf.wall_ms > 0.0) {
    res.perf.events_per_sec =
        static_cast<double>(res.events) / (res.perf.wall_ms / 1e3);
    if (res.perf.sim_ms > 0.0) {
      res.perf.wall_ms_per_sim_ms = res.perf.wall_ms / res.perf.sim_ms;
    }
  }

  sim::Time total = 0;
  sim::Time best = samples.front();
  sim::Time worst = samples.front();
  std::vector<double> us;
  us.reserve(samples.size());
  for (sim::Time t : samples) {
    total += t;
    best = std::min(best, t);
    worst = std::max(worst, t);
    us.push_back(sim::to_us(t));
  }
  res.avg_us = sim::to_us(total) / static_cast<double>(samples.size());
  res.best_us = sim::to_us(best);
  res.worst_us = sim::to_us(worst);
  res.median_us = util::percentile(us, 50.0);
  res.p99_us = util::percentile(std::move(us), 99.0);
  if (res.imbalance_ops > 0) {
    const double ops = static_cast<double>(res.imbalance_ops);
    res.entry_skew_avg_us = sim::to_us(imb_entry) / ops;
    res.exit_skew_avg_us = sim::to_us(imb_exit) / ops;
    res.wait_avg_us = sim::to_us(imb_wait) / ops;
  }
  return res;
}

MeasureResult measure_allreduce(const net::ClusterConfig& cfg, int nodes,
                                int ppn, std::size_t bytes,
                                const AllreduceSpec& spec,
                                const MeasureOptions& opt) {
  return measure_collective(CollKind::allreduce, cfg, nodes, ppn, bytes,
                            to_generic(spec), opt);
}

}  // namespace dpml::core
