#include "core/measure.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "simmpi/verify.hpp"
#include "util/error.hpp"

namespace dpml::core {

namespace {

struct Shared {
  Shared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time iter_start = 0;
  std::vector<sim::Time> samples;
};

sim::CoTask<void> bench_rank(simmpi::Rank& r, const AllreduceSpec& spec,
                             const MeasureOptions& opt, std::size_t count,
                             simmpi::ConstBytes send, simmpi::MutBytes recv,
                             std::shared_ptr<Shared> sh) {
  const auto& world = r.machine().world();
  for (int it = 0; it < opt.warmup + opt.iterations; ++it) {
    co_await sh->barrier.arrive_and_wait();
    if (r.world_rank() == 0) sh->iter_start = r.engine().now();
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &world;
    a.count = count;
    a.dt = opt.dt;
    a.op = opt.op;
    a.send = send;
    a.recv = recv;
    co_await run_allreduce(a, spec);
    co_await sh->barrier.arrive_and_wait();
    if (r.world_rank() == 0 && it >= opt.warmup) {
      sh->samples.push_back(r.engine().now() - sh->iter_start);
    }
  }
}

}  // namespace

MeasureResult measure_allreduce(const net::ClusterConfig& cfg, int nodes,
                                int ppn, std::size_t bytes,
                                const AllreduceSpec& spec,
                                const MeasureOptions& opt) {
  const std::size_t esize = simmpi::dtype_size(opt.dt);
  DPML_CHECK_MSG(bytes % esize == 0,
                 "message size must be a multiple of the datatype size");
  const std::size_t count = bytes / esize;
  DPML_CHECK(opt.iterations >= 1 && opt.warmup >= 0);

  simmpi::RunOptions ropt;
  ropt.with_data = opt.with_data;
  ropt.seed = opt.seed;
  simmpi::Machine machine(cfg, nodes, ppn, ropt);

  // Attach an in-network aggregation fabric when the design needs it (or
  // when dpml_auto could route small messages through it).
  std::optional<sharp::SharpFabric> fabric;
  AllreduceSpec used = spec;
  if ((needs_fabric(spec.algo) || spec.algo == Algorithm::dpml_auto) &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(machine);
    used.fabric = &*fabric;
  }
  if (needs_fabric(used.algo)) {
    DPML_CHECK_MSG(used.fabric != nullptr,
                   "SHArP design requested on a fabric-less cluster");
  }

  const int world = machine.world_size();
  std::vector<std::vector<std::byte>> sendbufs;
  std::vector<std::vector<std::byte>> recvbufs(
      static_cast<std::size_t>(world));
  if (opt.with_data) {
    sendbufs.reserve(static_cast<std::size_t>(world));
    for (int w = 0; w < world; ++w) {
      sendbufs.push_back(
          simmpi::make_operand(opt.dt, count, w, opt.op, opt.seed));
      recvbufs[static_cast<std::size_t>(w)].resize(bytes);
    }
  }

  auto sh = std::make_shared<Shared>(machine.engine(), world);
  machine.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    simmpi::ConstBytes send =
        opt.with_data ? simmpi::ConstBytes{sendbufs[w]} : simmpi::ConstBytes{};
    simmpi::MutBytes recv =
        opt.with_data ? simmpi::MutBytes{recvbufs[w]} : simmpi::MutBytes{};
    return bench_rank(r, used, opt, count, send, recv, sh);
  });

  MeasureResult res;
  DPML_CHECK(static_cast<int>(sh->samples.size()) == opt.iterations);
  sim::Time total = 0;
  sim::Time best = sh->samples.front();
  sim::Time worst = sh->samples.front();
  for (sim::Time t : sh->samples) {
    total += t;
    best = std::min(best, t);
    worst = std::max(worst, t);
  }
  res.avg_us = sim::to_us(total) / opt.iterations;
  res.best_us = sim::to_us(best);
  res.worst_us = sim::to_us(worst);
  res.events = machine.engine().events_processed();

  if (opt.with_data) {
    const auto ref =
        simmpi::reference_allreduce(opt.dt, count, world, opt.op, opt.seed);
    for (int w = 0; w < world; ++w) {
      if (recvbufs[static_cast<std::size_t>(w)] != ref) {
        res.verified = false;
        break;
      }
    }
  }
  return res;
}

}  // namespace dpml::core
