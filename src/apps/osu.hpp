// osu_mbw_mr-style multi-pair bandwidth / message-rate microbenchmark
// (paper §3, Figure 1). Measures aggregate throughput of `pairs` concurrent
// sender/receiver pairs, either within one node or across two nodes.
#pragma once

#include <cstddef>

#include "net/cluster.hpp"

namespace dpml::apps {

struct MbwMrOptions {
  int pairs = 1;
  std::size_t bytes = 1;
  int window = 16;       // messages per pair per iteration
  int iterations = 4;
  bool intra_node = false;
};

struct MbwMrResult {
  double mb_per_s = 0.0;       // aggregate bandwidth (decimal MB/s)
  double msg_per_s = 0.0;      // aggregate message rate
  double seconds = 0.0;        // simulated wall-clock of the measured phase
};

MbwMrResult osu_mbw_mr(const net::ClusterConfig& cfg, const MbwMrOptions& opt);

// Relative throughput of `pairs` pairs vs one pair (the quantity Figure 1
// plots).
double relative_throughput(const net::ClusterConfig& cfg, int pairs,
                           std::size_t bytes, bool intra_node);

// osu_latency-style pingpong: one-way latency in seconds between two ranks
// (same socket when intra_node, otherwise across two nodes).
double osu_latency(const net::ClusterConfig& cfg, std::size_t bytes,
                   bool intra_node = false, int iterations = 16);

}  // namespace dpml::apps
