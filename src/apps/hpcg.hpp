// HPCG-like conjugate-gradient kernel (paper §6.5, Figure 11a).
//
// HPCG's communication-relevant structure for this experiment is the DDOT:
// each CG iteration performs three global dot products — a local
// multiply-accumulate over the rank's rows followed by an 8-byte MPI_SUM
// allreduce over MPI_DOUBLE. The paper times the DDOT component under weak
// scaling (fixed rows per rank, growing process count) and compares the
// host-based reduction against the SHArP node-/socket-leader designs.
//
// The SpMV/WAXPBY compute phases are charged as local time (they shape how
// allreduce arrivals skew) but involve no communication, matching the
// experiment's focus.
#pragma once

#include <cstdint>

#include "core/api.hpp"
#include "net/cluster.hpp"

namespace dpml::apps {

struct HpcgOptions {
  int nodes = 2;
  int ppn = 28;
  int iterations = 50;            // CG iterations
  std::size_t rows_per_rank = 16 * 16 * 16;  // weak-scaling local problem
  core::AllreduceSpec spec;       // reduction design for the DDOTs
  std::uint64_t seed = 1;
};

struct HpcgResult {
  double total_s = 0.0;       // simulated wall-clock of the CG loop
  double ddot_s = 0.0;        // time inside DDOT (local dot + allreduce)
  double ddot_avg_us = 0.0;   // average per-DDOT latency
  int ddots = 0;
};

HpcgResult run_hpcg(const net::ClusterConfig& cfg, const HpcgOptions& opt);

}  // namespace dpml::apps
