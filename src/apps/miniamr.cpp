#include "apps/miniamr.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpml::apps {

using simmpi::Machine;
using simmpi::Rank;

namespace {

struct AmrShared {
  explicit AmrShared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time refine_total = 0;
  std::size_t total_blocks = 0;  // updated by rank 0 each step
};

sim::CoTask<void> amr_rank(Rank& r, const MiniAmrOptions& opt,
                           const core::AllreduceSpec& spec,
                           std::shared_ptr<AmrShared> sh) {
  Machine& m = r.machine();
  const int p = m.world_size();
  util::SplitMix64 rng(opt.seed, static_cast<std::uint64_t>(r.world_rank()));
  int my_blocks = opt.blocks_per_rank;

  for (int step = 0; step < opt.refine_steps; ++step) {
    // Tagging: stencil pass over each block's cells (local compute).
    co_await r.compute(sim::us(2.0) * my_blocks);

    co_await sh->barrier.arrive_and_wait();
    const sim::Time t0 = r.engine().now();

    // Global refinement vote: one i32 tag per block across the whole mesh.
    // The vector grows with process count — the paper's reason miniAMR
    // rewards DPML's medium/large-message designs.
    const std::size_t tag_count =
        static_cast<std::size_t>(p) * opt.blocks_per_rank;
    {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = tag_count;
      a.dt = simmpi::Dtype::i32;
      a.op = simmpi::ReduceOp::max;
      a.inplace = true;
      co_await core::run_allreduce(a, spec);
    }
    // Two small redistribution reductions: total block count, max load.
    for (auto op : {simmpi::ReduceOp::sum, simmpi::ReduceOp::max}) {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 1;
      a.dt = simmpi::Dtype::i64;
      a.op = op;
      a.inplace = true;
      co_await core::run_allreduce(a, spec);
    }

    co_await sh->barrier.arrive_and_wait();
    if (r.world_rank() == 0) sh->refine_total += r.engine().now() - t0;

    // Deterministic refine/coarsen evolution.
    const auto roll = rng.next_below(100);
    if (roll < 30 && my_blocks * 2 <= opt.max_blocks_per_rank) {
      my_blocks *= 2;  // refine: split blocks into octants (capped)
    } else if (roll > 85 && my_blocks >= 2) {
      my_blocks /= 2;  // coarsen
    }
  }

  // Final census (cheap, outside the timed phase).
  co_await sh->barrier.arrive_and_wait();
  sh->total_blocks += static_cast<std::size_t>(my_blocks);
}

}  // namespace

MiniAmrResult run_miniamr(const net::ClusterConfig& cfg,
                          const MiniAmrOptions& opt) {
  DPML_CHECK(opt.refine_steps >= 1 && opt.blocks_per_rank >= 1);
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  ropt.seed = opt.seed;
  Machine m(cfg, opt.nodes, opt.ppn, ropt);

  std::optional<sharp::SharpFabric> fabric;
  core::AllreduceSpec spec = opt.spec;
  if ((core::needs_fabric(spec.algo) ||
       spec.algo == core::Algorithm::dpml_auto) &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  auto sh = std::make_shared<AmrShared>(m.engine(), m.world_size());
  m.run([&](Rank& r) -> sim::CoTask<void> {
    return amr_rank(r, opt, spec, sh);
  });

  MiniAmrResult res;
  res.total_s = sim::to_seconds(m.now());
  res.refine_s = sim::to_seconds(sh->refine_total);
  res.per_step_us = sim::to_us(sh->refine_total) / opt.refine_steps;
  res.final_blocks = sh->total_blocks;
  return res;
}

}  // namespace dpml::apps
