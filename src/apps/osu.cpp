#include "apps/osu.hpp"

#include <algorithm>

#include "simmpi/machine.hpp"
#include "util/error.hpp"

namespace dpml::apps {

using simmpi::Machine;
using simmpi::Rank;

namespace {

// Named coroutines rather than lambda coroutines: a coroutine lambda's frame
// refers back to the closure object, so captures dangle if the closure dies
// before the frame does (dpmllint: coro-ref-capture). Parameters of a plain
// coroutine function are copied into the frame and cannot dangle.
sim::CoTask<void> mbw_mr_rank(Rank& r, MbwMrOptions opt, int total_msgs) {
  Machine& m = r.machine();
  // Sender i pairs with receiver i: on one node (senders = even locals
  // paired with odd) or across two nodes (local i -> local i).
  const int pairs = opt.pairs;
  int peer = -1;
  bool sender = false;
  if (opt.intra_node) {
    sender = r.local_rank() < pairs;
    peer = sender ? r.local_rank() + pairs : r.local_rank() - pairs;
  } else {
    sender = r.node_id() == 0;
    peer = sender ? m.ppn() + r.local_rank() : r.local_rank();
  }
  if (sender) {
    for (int i = 0; i < total_msgs; ++i) {
      co_await r.send(m.world(), peer, 0, opt.bytes);
    }
  } else {
    for (int i = 0; i < total_msgs; ++i) {
      co_await r.recv(m.world(), peer, 0, opt.bytes);
    }
  }
}

sim::CoTask<void> pingpong_rank(Rank& r, std::size_t bytes, int iterations) {
  Machine& m = r.machine();
  if (r.world_rank() > 1) co_return;
  for (int i = 0; i < iterations; ++i) {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 1, 0, bytes);
      co_await r.recv(m.world(), 1, 1, bytes);
    } else {
      co_await r.recv(m.world(), 0, 0, bytes);
      co_await r.send(m.world(), 0, 1, bytes);
    }
  }
}

}  // namespace

MbwMrResult osu_mbw_mr(const net::ClusterConfig& cfg, const MbwMrOptions& opt) {
  DPML_CHECK(opt.pairs >= 1 && opt.window >= 1 && opt.iterations >= 1);
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  const int nodes = opt.intra_node ? 1 : 2;
  const int ppn = opt.intra_node ? 2 * opt.pairs : opt.pairs;
  DPML_CHECK_MSG(ppn <= cfg.max_ppn(),
                 "too many pairs for this cluster's node width");
  Machine m(cfg, nodes, ppn, ropt);
  const int total_msgs = opt.window * opt.iterations;

  m.run([&](Rank& r) { return mbw_mr_rank(r, opt, total_msgs); });

  MbwMrResult res;
  res.seconds = sim::to_seconds(m.now());
  const double total_bytes = static_cast<double>(opt.bytes) * total_msgs *
                             opt.pairs;
  res.mb_per_s = total_bytes / res.seconds / 1e6;
  res.msg_per_s = static_cast<double>(total_msgs) * opt.pairs / res.seconds;
  return res;
}

double osu_latency(const net::ClusterConfig& cfg, std::size_t bytes,
                   bool intra_node, int iterations) {
  DPML_CHECK(iterations >= 1);
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  // Intra-node pairs sit on the same socket (locals 0 and 1 at ppn >= 4).
  Machine m(cfg, intra_node ? 1 : 2,
            intra_node ? std::min(4, cfg.max_ppn()) : 1, ropt);
  m.run([&](Rank& r) { return pingpong_rank(r, bytes, iterations); });
  return sim::to_seconds(m.now()) / (2.0 * iterations);
}

double relative_throughput(const net::ClusterConfig& cfg, int pairs,
                           std::size_t bytes, bool intra_node) {
  MbwMrOptions one;
  one.pairs = 1;
  one.bytes = bytes;
  one.intra_node = intra_node;
  MbwMrOptions many = one;
  many.pairs = pairs;
  return osu_mbw_mr(cfg, many).mb_per_s / osu_mbw_mr(cfg, one).mb_per_s;
}

}  // namespace dpml::apps
