// 3D stencil / halo-exchange kernel with global convergence checks.
//
// The classic traditional-HPC workload from the paper's motivation
// ("small message allreduce is popular in traditional scientific MPI
// applications"): a 3D Jacobi-style iteration on a block-decomposed grid.
// Each sweep exchanges six face halos with neighbours (point-to-point,
// exercising the transport's densest nearest-neighbour pattern) and every
// `check_every` sweeps performs an 8-byte MPI_SUM allreduce for the
// residual — the small-message reduction SHArP accelerates.
#pragma once

#include <array>
#include <cstdint>

#include "core/api.hpp"
#include "net/cluster.hpp"

namespace dpml::apps {

struct StencilOptions {
  int nodes = 4;
  int ppn = 8;
  int sweeps = 20;
  int check_every = 4;              // residual allreduce cadence
  std::size_t local_dim = 64;       // local subdomain edge (cells)
  std::size_t elem_bytes = 8;       // f64 cells
  core::AllreduceSpec spec;         // design for the residual allreduce
};

struct StencilResult {
  double total_s = 0.0;
  double halo_s = 0.0;       // time in halo exchanges (rank 0)
  double allreduce_s = 0.0;  // time in residual reductions (rank 0)
  int residual_checks = 0;
  std::array<int, 3> grid{};  // process grid used
};

// Factor `p` into a near-cubic 3D process grid.
std::array<int, 3> process_grid(int p);

StencilResult run_stencil(const net::ClusterConfig& cfg,
                          const StencilOptions& opt);

}  // namespace dpml::apps
