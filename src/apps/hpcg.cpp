#include "apps/hpcg.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace dpml::apps {

using simmpi::Machine;
using simmpi::Rank;

namespace {

struct HpcgShared {
  explicit HpcgShared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time ddot_total = 0;  // accumulated by rank 0
  int ddots = 0;
};

// Local compute charges, derived from the 27-point stencil shape: SpMV
// touches ~27 nonzeros per row; DDOT streams two vectors of 8-byte values.
sim::Time spmv_time(const net::ClusterConfig& cfg, std::size_t rows) {
  const double bytes = static_cast<double>(rows) * 27.0 * 12.0;  // val+col
  return sim::from_seconds(bytes / (cfg.host.mem_agg_bw * 1e9 / 4.0));
}

sim::Time local_dot_time(const net::ClusterConfig& cfg, std::size_t rows) {
  const double bytes = static_cast<double>(rows) * 2.0 * 8.0;
  return sim::from_seconds(bytes / (cfg.host.copy_bw * 1e9));
}

sim::CoTask<void> hpcg_rank(Rank& r, const HpcgOptions& opt,
                            const core::AllreduceSpec& spec,
                            std::shared_ptr<HpcgShared> sh, double* recv_buf) {
  Machine& m = r.machine();
  const auto& cfg = m.config();
  const sim::Time t_spmv = spmv_time(cfg, opt.rows_per_rank);
  const sim::Time t_dot = local_dot_time(cfg, opt.rows_per_rank);

  for (int it = 0; it < opt.iterations; ++it) {
    // SpMV + vector updates: local work only.
    co_await r.compute(t_spmv);
    // Three DDOTs per CG iteration (rtz, pAp, convergence norm).
    for (int d = 0; d < 3; ++d) {
      co_await sh->barrier.arrive_and_wait();
      const sim::Time t0 = r.engine().now();
      co_await r.compute(t_dot);
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 1;
      a.dt = simmpi::Dtype::f64;
      a.op = simmpi::ReduceOp::sum;
      a.recv = recv_buf != nullptr
                   ? simmpi::MutBytes{reinterpret_cast<std::byte*>(recv_buf), 8}
                   : simmpi::MutBytes{};
      a.inplace = true;
      co_await core::run_allreduce(a, spec);
      co_await sh->barrier.arrive_and_wait();
      if (r.world_rank() == 0) {
        sh->ddot_total += r.engine().now() - t0;
        ++sh->ddots;
      }
    }
  }
}

}  // namespace

HpcgResult run_hpcg(const net::ClusterConfig& cfg, const HpcgOptions& opt) {
  DPML_CHECK(opt.iterations >= 1);
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  ropt.seed = opt.seed;
  Machine m(cfg, opt.nodes, opt.ppn, ropt);

  std::optional<sharp::SharpFabric> fabric;
  core::AllreduceSpec spec = opt.spec;
  if ((core::needs_fabric(spec.algo) ||
       spec.algo == core::Algorithm::dpml_auto) &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  auto sh = std::make_shared<HpcgShared>(m.engine(), m.world_size());
  m.run([&](Rank& r) -> sim::CoTask<void> {
    return hpcg_rank(r, opt, spec, sh, nullptr);
  });

  HpcgResult res;
  res.total_s = sim::to_seconds(m.now());
  res.ddot_s = sim::to_seconds(sh->ddot_total);
  res.ddots = sh->ddots;
  res.ddot_avg_us = res.ddots > 0 ? sim::to_us(sh->ddot_total) / res.ddots : 0;
  return res;
}

}  // namespace dpml::apps
