#include "apps/replay.hpp"

#include <memory>
#include <optional>
#include <sstream>

#include "coll/bcast.hpp"
#include "coll/group_coll.hpp"
#include "coll/reduce.hpp"
#include "util/error.hpp"

namespace dpml::apps {

using simmpi::Machine;
using simmpi::Rank;

std::vector<TraceOp> parse_trace(const std::string& text) {
  std::vector<TraceOp> ops;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    TraceOp op;
    if (kind == "allreduce") {
      op.kind = TraceOp::Kind::allreduce;
    } else if (kind == "reduce") {
      op.kind = TraceOp::Kind::reduce;
    } else if (kind == "bcast") {
      op.kind = TraceOp::Kind::bcast;
    } else if (kind == "barrier") {
      op.kind = TraceOp::Kind::barrier;
      ls >> op.compute_us;
      ops.push_back(op);
      continue;
    } else {
      DPML_CHECK_MSG(false, "trace line " + std::to_string(lineno) +
                                ": unknown op '" + kind + "'");
    }
    DPML_CHECK_MSG(static_cast<bool>(ls >> op.bytes),
                   "trace line " + std::to_string(lineno) + ": missing size");
    ls >> op.compute_us;
    ops.push_back(op);
  }
  return ops;
}

std::string example_trace() {
  // Production-like mix: dominated by small allreduces with periodic
  // medium/large reductions (checkpoint norms, IO prep) — paper [24].
  std::ostringstream os;
  for (int i = 0; i < 10; ++i) {
    os << "allreduce 8 50\n";
    os << "allreduce 8 50\n";
    os << "allreduce 64 120\n";
    if (i % 2 == 0) os << "allreduce 16384 400\n";
    if (i % 5 == 0) {
      os << "allreduce 1048576 800\n";
      os << "bcast 4096 100\n";
    }
  }
  os << "barrier\n";
  os << "reduce 262144 200\n";
  return os.str();
}

namespace {

struct ReplayShared {
  explicit ReplayShared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time comm = 0;
  int ops = 0;
};

sim::CoTask<void> replay_rank(Rank& r, const std::vector<TraceOp>& trace,
                              const ReplayOptions& opt,
                              const core::AllreduceSpec& spec,
                              std::shared_ptr<ReplayShared> sh) {
  Machine& m = r.machine();
  for (int rep = 0; rep < opt.repetitions; ++rep) {
    for (const TraceOp& op : trace) {
      if (op.compute_us > 0) co_await r.compute(sim::us(op.compute_us));
      const sim::Time t0 = r.engine().now();
      switch (op.kind) {
        case TraceOp::Kind::allreduce: {
          coll::CollArgs a;
          a.rank = &r;
          a.comm = &m.world();
          a.count = op.bytes / 4;
          a.inplace = true;
          co_await core::run_allreduce(a, spec);
          break;
        }
        case TraceOp::Kind::reduce: {
          coll::ReduceArgs a;
          a.rank = &r;
          a.comm = &m.world();
          a.root = 0;
          a.count = op.bytes / 4;
          a.inplace = true;
          co_await coll::reduce(a, coll::ReduceAlgo::automatic);
          break;
        }
        case TraceOp::Kind::bcast: {
          coll::BcastArgs a;
          a.rank = &r;
          a.comm = &m.world();
          a.bytes = op.bytes;
          co_await coll::bcast(a);
          break;
        }
        case TraceOp::Kind::barrier: {
          coll::BarrierArgs a;
          a.rank = &r;
          a.comm = &m.world();
          co_await coll::barrier(a);
          break;
        }
      }
      if (r.world_rank() == 0) {
        sh->comm += r.engine().now() - t0;
        ++sh->ops;
      }
    }
  }
  co_await sh->barrier.arrive_and_wait();
}

}  // namespace

ReplayResult replay_trace(const net::ClusterConfig& cfg,
                          const std::vector<TraceOp>& trace,
                          const ReplayOptions& opt) {
  DPML_CHECK(opt.repetitions >= 1);
  DPML_CHECK_MSG(!trace.empty(), "empty trace");
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  Machine m(cfg, opt.nodes, opt.ppn, ropt);

  std::optional<sharp::SharpFabric> fabric;
  core::AllreduceSpec spec = opt.spec;
  if ((core::needs_fabric(spec.algo) ||
       spec.algo == core::Algorithm::dpml_auto) &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  auto sh = std::make_shared<ReplayShared>(m.engine(), m.world_size());
  m.run([&](Rank& r) -> sim::CoTask<void> {
    return replay_rank(r, trace, opt, spec, sh);
  });

  ReplayResult res;
  res.total_s = sim::to_seconds(m.now());
  res.comm_s = sim::to_seconds(sh->comm);
  res.ops = sh->ops;
  return res;
}

}  // namespace dpml::apps
