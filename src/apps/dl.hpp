// Data-parallel deep-learning gradient synchronization kernel.
//
// The paper's introduction motivates medium/large-message allreduce with
// deep learning ("many applications in newer fields such as deep learning
// applications extensively use medium and large message reductions"). This
// kernel models synchronous data-parallel SGD the way DL frameworks drive
// MPI: backpropagation produces gradient buckets back-to-front; each bucket
// is allreduced as soon as it is ready — non-blocking and overlapped with
// the remaining backprop compute when `overlap` is set — followed by a
// waitall and the optimizer step.
#pragma once

#include <cstdint>

#include "core/api.hpp"
#include "net/cluster.hpp"

namespace dpml::apps {

struct DlOptions {
  int nodes = 4;
  int ppn = 28;
  int steps = 4;                       // training iterations
  int buckets = 16;                    // gradient fusion buckets
  std::size_t bucket_bytes = 4 << 20;  // f32 gradient bytes per bucket
  sim::Time backprop_per_bucket = sim::us(300.0);  // compute per bucket
  sim::Time optimizer_time = sim::us(500.0);
  bool overlap = true;                 // iallreduce during backprop
  core::AllreduceSpec spec;
};

struct DlResult {
  double step_s = 0.0;        // average time per training step
  double total_s = 0.0;
  double exposed_comm_s = 0.0;  // per-step communication not hidden by compute
};

DlResult run_dl_training(const net::ClusterConfig& cfg, const DlOptions& opt);

}  // namespace dpml::apps
