// miniAMR-like adaptive mesh refinement kernel (paper §6.6, Figure 11b/c).
//
// Reproduces the communication pattern of miniAMR's mesh-refinement phase,
// which the paper configures to dominate (>98% of) runtime: every
// refinement step, each rank evaluates its blocks' refinement tags (local
// compute), then the job performs
//   * a large MPI_Allreduce over the per-block tag vector, whose size grows
//     with the total number of blocks (i.e. with the process count — this is
//     why miniAMR exercises DPML's medium/large-message strength), and
//   * two small allreduces (global block count, max load) used for
//     redistribution decisions.
// Block counts evolve with a seeded, deterministic refine/coarsen process.
#pragma once

#include <cstdint>

#include "core/api.hpp"
#include "net/cluster.hpp"

namespace dpml::apps {

struct MiniAmrOptions {
  int nodes = 2;
  int ppn = 28;
  int refine_steps = 20;
  int blocks_per_rank = 8;     // initial blocks per rank
  int max_blocks_per_rank = 64;
  core::AllreduceSpec spec;
  std::uint64_t seed = 7;
};

struct MiniAmrResult {
  double total_s = 0.0;         // simulated wall-clock
  double refine_s = 0.0;        // time in the refinement phase (the paper's
                                // "overall Mesh Refinement time")
  double per_step_us = 0.0;
  std::size_t final_blocks = 0;  // total blocks after the run
};

MiniAmrResult run_miniamr(const net::ClusterConfig& cfg,
                          const MiniAmrOptions& opt);

}  // namespace dpml::apps
