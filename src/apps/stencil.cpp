#include "apps/stencil.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace dpml::apps {

using simmpi::Machine;
using simmpi::Rank;

std::array<int, 3> process_grid(int p) {
  DPML_CHECK(p >= 1);
  // Greedy near-cubic factorization: repeatedly divide by the largest
  // factor <= cube root of the remainder.
  std::array<int, 3> dims{1, 1, 1};
  int rem = p;
  for (int axis = 0; axis < 3; ++axis) {
    const int want = static_cast<int>(
        std::round(std::pow(static_cast<double>(rem), 1.0 / (3 - axis))));
    int best = 1;
    for (int f = 1; f <= rem && f <= want + 1; ++f) {
      if (rem % f == 0) best = f;
    }
    dims[static_cast<std::size_t>(axis)] = best;
    rem /= best;
  }
  dims[2] *= rem;  // anything left (primes) goes to the last axis
  return dims;
}

namespace {

struct StencilShared {
  explicit StencilShared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time halo = 0;
  sim::Time allreduce = 0;
  int checks = 0;
};

sim::CoTask<void> stencil_rank(Rank& r, const StencilOptions& opt,
                               const core::AllreduceSpec& spec,
                               std::array<int, 3> grid,
                               std::shared_ptr<StencilShared> sh) {
  Machine& m = r.machine();
  const int me = r.world_rank();
  const int gx = grid[0];
  const int gy = grid[1];
  const int gz = grid[2];
  const int x = me % gx;
  const int y = (me / gx) % gy;
  const int z = me / (gx * gy);
  const std::size_t face_bytes =
      opt.local_dim * opt.local_dim * opt.elem_bytes;
  // Jacobi sweep: 7-point stencil over local_dim^3 cells, memory bound.
  const double sweep_bytes = 8.0 * static_cast<double>(opt.local_dim) *
                             static_cast<double>(opt.local_dim) *
                             static_cast<double>(opt.local_dim) *
                             static_cast<double>(opt.elem_bytes) / 4.0;
  const sim::Time sweep_compute =
      sim::from_seconds(sweep_bytes / (m.config().host.copy_bw * 1e9));

  auto rank_at = [&](int xx, int yy, int zz) {
    return xx + gx * (yy + gy * zz);
  };

  for (int sweep = 0; sweep < opt.sweeps; ++sweep) {
    // Halo exchange: up to 6 neighbours, non-blocking both ways, waitall.
    const sim::Time t_halo0 = r.engine().now();
    std::vector<std::shared_ptr<sim::Flag>> pending;
    int dir = 0;
    const int deltas[6][3] = {{-1, 0, 0}, {1, 0, 0},  {0, -1, 0},
                              {0, 1, 0},  {0, 0, -1}, {0, 0, 1}};
    for (const auto& d : deltas) {
      const int nx = x + d[0];
      const int ny = y + d[1];
      const int nz = z + d[2];
      ++dir;
      if (nx < 0 || nx >= gx || ny < 0 || ny >= gy || nz < 0 || nz >= gz) {
        continue;  // physical boundary
      }
      const int peer = rank_at(nx, ny, nz);
      // Tag by direction so opposite faces do not cross-match; the peer's
      // matching recv uses the mirrored direction index.
      const int mirrored = dir % 2 == 0 ? dir - 1 : dir + 1;
      pending.push_back(r.isend(m.world(), peer, 8000 + dir, face_bytes));
      auto h = r.irecv(m.world(), peer, 8000 + mirrored, face_bytes);
      pending.push_back(h.done);
    }
    co_await sim::wait_all(std::move(pending));
    if (me == 0) sh->halo += r.engine().now() - t_halo0;

    co_await r.compute(sweep_compute);

    if ((sweep + 1) % opt.check_every == 0) {
      const sim::Time t_ar0 = r.engine().now();
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 1;
      a.dt = simmpi::Dtype::f64;
      a.op = simmpi::ReduceOp::sum;
      a.inplace = true;
      co_await core::run_allreduce(a, spec);
      if (me == 0) {
        sh->allreduce += r.engine().now() - t_ar0;
        ++sh->checks;
      }
    }
  }
  co_await sh->barrier.arrive_and_wait();
}

}  // namespace

StencilResult run_stencil(const net::ClusterConfig& cfg,
                          const StencilOptions& opt) {
  DPML_CHECK(opt.sweeps >= 1 && opt.check_every >= 1);
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  Machine m(cfg, opt.nodes, opt.ppn, ropt);
  const auto grid = process_grid(m.world_size());
  DPML_CHECK(grid[0] * grid[1] * grid[2] == m.world_size());

  std::optional<sharp::SharpFabric> fabric;
  core::AllreduceSpec spec = opt.spec;
  if ((core::needs_fabric(spec.algo) ||
       spec.algo == core::Algorithm::dpml_auto) &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  auto sh = std::make_shared<StencilShared>(m.engine(), m.world_size());
  m.run([&](Rank& r) -> sim::CoTask<void> {
    return stencil_rank(r, opt, spec, grid, sh);
  });

  StencilResult res;
  res.total_s = sim::to_seconds(m.now());
  res.halo_s = sim::to_seconds(sh->halo);
  res.allreduce_s = sim::to_seconds(sh->allreduce);
  res.residual_checks = sh->checks;
  res.grid = grid;
  return res;
}

}  // namespace dpml::apps
