#include "apps/dl.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace dpml::apps {

using simmpi::Machine;
using simmpi::Rank;

namespace {

struct DlShared {
  explicit DlShared(sim::Engine& e, int parties) : barrier(e, parties) {}
  sim::Barrier barrier;
  sim::Time step_total = 0;
  sim::Time exposed_comm = 0;
};

sim::CoTask<void> dl_rank(Rank& r, const DlOptions& opt,
                          const core::AllreduceSpec& spec,
                          std::shared_ptr<DlShared> sh) {
  Machine& m = r.machine();
  const std::size_t count = opt.bucket_bytes / 4;

  for (int step = 0; step < opt.steps; ++step) {
    co_await sh->barrier.arrive_and_wait();
    const sim::Time t0 = r.engine().now();

    std::vector<std::shared_ptr<sim::Flag>> pending;
    pending.reserve(static_cast<std::size_t>(opt.buckets));
    for (int b = 0; b < opt.buckets; ++b) {
      // Backprop for this bucket's layers.
      co_await r.compute(opt.backprop_per_bucket);
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = count;
      a.inplace = true;
      a.tag_base = (b % 128) * 256;  // disjoint tag space per in-flight op
      if (opt.overlap) {
        pending.push_back(core::start_allreduce(a, spec));
      } else {
        co_await core::run_allreduce(a, spec);
      }
    }
    if (opt.overlap) {
      co_await sim::wait_all(std::move(pending));
      pending.clear();
    }
    const sim::Time grads_done = r.engine().now();
    // Optimizer update once all gradients are global.
    co_await r.compute(opt.optimizer_time);

    co_await sh->barrier.arrive_and_wait();
    if (r.world_rank() == 0) {
      sh->step_total += r.engine().now() - t0;
      // Communication not hidden by backprop compute.
      sh->exposed_comm +=
          (grads_done - t0) - opt.backprop_per_bucket * opt.buckets;
    }
  }
}

}  // namespace

DlResult run_dl_training(const net::ClusterConfig& cfg, const DlOptions& opt) {
  DPML_CHECK(opt.steps >= 1 && opt.buckets >= 1);
  DPML_CHECK_MSG(opt.bucket_bytes % 4 == 0, "bucket bytes must be f32-sized");
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  Machine m(cfg, opt.nodes, opt.ppn, ropt);

  std::optional<sharp::SharpFabric> fabric;
  core::AllreduceSpec spec = opt.spec;
  if ((core::needs_fabric(spec.algo) ||
       spec.algo == core::Algorithm::dpml_auto) &&
      cfg.has_sharp() && spec.fabric == nullptr) {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  auto sh = std::make_shared<DlShared>(m.engine(), m.world_size());
  m.run([&](Rank& r) -> sim::CoTask<void> {
    return dl_rank(r, opt, spec, sh);
  });

  DlResult res;
  res.total_s = sim::to_seconds(m.now());
  res.step_s = sim::to_seconds(sh->step_total) / opt.steps;
  res.exposed_comm_s = sim::to_seconds(sh->exposed_comm) / opt.steps;
  return res;
}

}  // namespace dpml::apps
