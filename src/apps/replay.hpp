// Collective-trace replay.
//
// Rabenseifner's production profiling (paper [24]: 37% of MPI time in
// MPI_Allreduce across five years of production jobs) motivates replaying
// *measured* collective mixes rather than synthetic sweeps. A trace is a
// plain-text script of collective operations with message sizes and
// inter-op compute gaps; the replayer runs it under any allreduce design so
// users can evaluate DPML on their own application's mix.
//
// Trace format (one op per line, '#' comments):
//   allreduce <bytes> [compute_us]
//   reduce    <bytes> [compute_us]
//   bcast     <bytes> [compute_us]
//   barrier   [compute_us]
// `compute_us` is local work charged before the operation (default 0).
#pragma once

#include <string>
#include <vector>

#include "core/api.hpp"
#include "net/cluster.hpp"

namespace dpml::apps {

struct TraceOp {
  enum class Kind { allreduce, reduce, bcast, barrier };
  Kind kind = Kind::allreduce;
  std::size_t bytes = 0;
  double compute_us = 0.0;
};

// Parse a trace script. Throws util::InvariantError on malformed lines.
std::vector<TraceOp> parse_trace(const std::string& text);

// A synthetic production-like mix (allreduce-heavy, per the paper's [24]):
// many small allreduces, some medium, occasional large, sprinkled with
// bcasts and barriers.
std::string example_trace();

struct ReplayOptions {
  int nodes = 4;
  int ppn = 8;
  int repetitions = 1;          // replay the trace this many times
  core::AllreduceSpec spec;     // design used for the reductions
};

struct ReplayResult {
  double total_s = 0.0;
  double comm_s = 0.0;  // time in collectives (rank 0)
  int ops = 0;
};

ReplayResult replay_trace(const net::ClusterConfig& cfg,
                          const std::vector<TraceOp>& trace,
                          const ReplayOptions& opt);

}  // namespace dpml::apps
