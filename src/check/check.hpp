// simcheck: MUST-style runtime MPI-semantics verification.
//
// A Checker is owned by a simmpi::Machine when RunOptions::check_level is
// not `off`. It observes the transport (sends, receives, shared-memory
// copies) and the core dispatch layer (collective entry/exit with argument
// and buffer snapshots) as pure host-side bookkeeping — no simulated time is
// ever charged, so a checked run's simulated clock is bit-identical to an
// unchecked one. Detected violations throw CheckError with an actionable,
// rank-attributed report and fail the run fast.
//
// What it catches (see docs/CHECKING.md for the rule catalogue):
//   - unmatched sends (message delivered but never received)
//   - leaked posted receives / wait-cycle deadlock, with a per-rank report
//     of every blocked request and every queued-but-unreceived message
//   - send/recv count- and datatype-mismatches inside reduction collectives
//   - overlapping live communication buffers (send/recv/shm aliasing)
//   - per-collective result verification against a serial reference fold in
//     ascending comm-rank order — including non-commutative user ops
//   - SPMD argument divergence across the ranks of one collective
//   - (strict) capacity/bytes exactness, leaked collective slots, and
//     unbalanced tracer begin/end spans
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "simmpi/datatype.hpp"
#include "simmpi/message.hpp"

namespace dpml::check {

enum class CheckLevel : std::uint8_t { off, basic, strict };

const char* check_level_name(CheckLevel level);
// Accepts "off", "basic", "strict"; throws util::InvariantError otherwise.
CheckLevel check_level_by_name(const std::string& name);

// The collective kinds the checker verifies results for. Mirrors
// coll::CollKind without depending on the coll layer (src/check sits below
// it; core maps between the two at dispatch time).
enum class CollOp : std::uint8_t {
  allreduce,
  reduce,
  bcast,
  alltoall,
  allgather,
  reduce_scatter,
  gather,
  scatter,
  barrier,
};

const char* coll_op_name(CollOp op);

struct Violation {
  std::string rule;     // e.g. "unmatched-send", "result-mismatch"
  int rank = -1;        // world rank, -1 when not rank-specific
  std::string context;  // op/callsite context, e.g. "allreduce/dpml(l=4)"
  std::string message;  // one actionable sentence

  std::string format() const;
};

// One blocked endpoint in a deadlock: world rank `rank` is stuck on a
// posted receive for (ctx, src, tag). src/tag are -1 for wildcards.
struct BlockedEdge {
  int rank = -1;
  int ctx = 0;
  int src = -1;
  int tag = -1;
  std::size_t capacity = 0;
};

// Structured deadlock report: {"blocked": [edge...], "cycle": [rank...]}.
// The cycle is the rank -> awaited-rank chain the blocked edges form
// (empty when acyclic, e.g. a rank waiting on a message nobody sends).
// One format shared by --check deadlock reports and dpmlmc counterexample
// traces (docs/CHECKING.md).
std::string deadlock_report_json(const std::vector<BlockedEdge>& edges);

class CheckError : public std::runtime_error {
 public:
  CheckError(std::string report, std::vector<Violation> violations,
             std::string deadlock_json = "");

  const std::vector<Violation>& violations() const { return violations_; }
  // Structured wait-cycle JSON (deadlock_report_json) when this error
  // reports a deadlock; empty otherwise.
  const std::string& deadlock_json() const { return deadlock_json_; }

 private:
  std::vector<Violation> violations_;
  std::string deadlock_json_;
};

// RAII registration of a live communication buffer (the span a send is
// reading or a receive is writing). Released on destruction, so coroutine
// frames release at co_return/unwind automatically.
class Checker;
class BufferLease {
 public:
  BufferLease() = default;
  BufferLease(Checker* ck, int rank, int id) : ck_(ck), rank_(rank), id_(id) {}
  BufferLease(const BufferLease&) = delete;
  BufferLease& operator=(const BufferLease&) = delete;
  BufferLease(BufferLease&& o) noexcept { *this = std::move(o); }
  BufferLease& operator=(BufferLease&& o) noexcept;
  ~BufferLease() { release(); }
  void release();

 private:
  Checker* ck_ = nullptr;
  int rank_ = -1;
  int id_ = -1;
};

class Checker {
 public:
  Checker(CheckLevel level, bool with_data, int world_size);

  CheckLevel level() const { return level_; }
  bool strict() const { return level_ == CheckLevel::strict; }

  // ---- transport hooks (simmpi::Machine) ----

  // Called at blocking-send entry. Validates count integrity against the
  // sender's current reduction dtype (if any).
  void on_send(int src, int dst, int ctx, int tag, std::size_t bytes);

  // Register a live buffer span; conflicts (overlap with another live span
  // where either side writes) throw. Empty spans return an inert lease.
  BufferLease acquire_read(int rank, simmpi::ConstBytes span, const char* what,
                           int ctx, int tag);
  BufferLease acquire_write(int rank, simmpi::MutBytes span, const char* what,
                            int ctx, int tag);

  // Called when a receive completes (payload delivered, before the receive
  // returns). Validates datatype agreement between sender and receiver and
  // count integrity; strict additionally requires the posted capacity to
  // equal the delivered byte count.
  void on_recv_complete(int rank, int ctx, const simmpi::PostedRecv& pr);

  // The sender-side dtype annotation stamped into envelopes: the innermost
  // reduction collective this rank is currently inside, or -1.
  int current_dtype(int rank) const;

  // ---- collective hooks (core::run_collective) ----

  // Registers this rank's entry into a collective on `ctx` and snapshots its
  // input vector. Returns a token to pass to end_collective. Invocations are
  // matched across ranks by per-(rank, ctx) call sequence, which SPMD
  // execution keeps consistent; argument divergence between ranks of one
  // invocation is itself a violation.
  std::uint64_t begin_collective(CollOp op_kind, int world_rank, int ctx,
                                 const std::string& label, int parties,
                                 int comm_rank, int root, std::size_t count,
                                 simmpi::Dtype dt, const simmpi::Op& op,
                                 simmpi::ConstBytes input);
  // Registers exit; when the last party exits, the invocation's outputs are
  // verified against a serial reference computed from the entry snapshots.
  void end_collective(int world_rank, std::uint64_t token,
                      simmpi::ConstBytes output);

  // ---- end-of-run hooks (simmpi::Machine::run) ----

  // Record one rank's matcher state after the engine drained (or
  // deadlocked): leaked unexpected envelopes and still-posted receives.
  void note_endpoint_state(int rank, const simmpi::Matcher& matcher);

  // Final verdict. `deadlocked` augments the engine's deadlock error with
  // the per-rank blocked-request report; `live_slots` and
  // `open_trace_spans` feed the strict-only leak checks. Throws CheckError
  // if any violation accumulated.
  void finalize(bool deadlocked, const std::string& deadlock_what,
                std::size_t live_slots, std::size_t open_trace_spans);

  // Blocked receives recorded by note_endpoint_state (deadlock reports).
  const std::vector<BlockedEdge>& blocked_edges() const {
    return blocked_edges_;
  }

  // Immediately fail the run with one violation (fail-fast path).
  [[noreturn]] void fail(Violation v) const;

 private:
  struct LiveBuffer {
    const std::byte* lo = nullptr;
    const std::byte* hi = nullptr;
    bool writable = false;
    const char* what = "";
    int ctx = 0;
    int tag = 0;
    bool active = false;
  };

  struct OpenColl {
    int ctx = 0;
    std::uint64_t seq = 0;
    int dtype = -1;  // annotation for p2p traffic; -1 for byte-oblivious kinds
  };

  struct Party {
    bool entered = false;
    bool exited = false;
    int world_rank = -1;
    std::vector<std::byte> input;
    std::vector<std::byte> output;
  };

  struct CollRecord {
    CollOp op_kind = CollOp::allreduce;
    std::string label;
    int parties = 0;
    int root = 0;
    std::size_t count = 0;
    simmpi::Dtype dt = simmpi::Dtype::f32;
    simmpi::Op op = simmpi::ReduceOp::sum;
    std::vector<Party> party;
    int entered = 0;
    int exited = 0;
  };

  friend class BufferLease;
  void release_buffer(int rank, int id);

  BufferLease acquire(int rank, const std::byte* data, std::size_t size,
                      bool writable, const char* what, int ctx, int tag);
  std::string label_of(int rank) const;  // innermost collective label or ""
  void verify_collective(int ctx, std::uint64_t seq, const CollRecord& rec);

  CheckLevel level_;
  bool with_data_;
  int world_size_;

  std::vector<std::vector<LiveBuffer>> live_;       // per rank
  std::vector<std::vector<OpenColl>> open_;         // per rank, nesting stack
  std::map<std::pair<int, int>, std::uint64_t> enter_seq_;  // (ctx, rank)
  std::map<std::pair<int, std::uint64_t>, CollRecord> records_;
  std::vector<Violation> deferred_;  // finalize-time accumulation
  std::vector<BlockedEdge> blocked_edges_;
};

}  // namespace dpml::check
