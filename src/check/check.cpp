#include "check/check.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace dpml::check {

using simmpi::ConstBytes;
using simmpi::Dtype;
using simmpi::MutBytes;

const char* check_level_name(CheckLevel level) {
  switch (level) {
    case CheckLevel::off: return "off";
    case CheckLevel::basic: return "basic";
    case CheckLevel::strict: return "strict";
  }
  return "?";
}

CheckLevel check_level_by_name(const std::string& name) {
  for (CheckLevel l :
       {CheckLevel::off, CheckLevel::basic, CheckLevel::strict}) {
    if (name == check_level_name(l)) return l;
  }
  DPML_CHECK_MSG(false, "unknown check level '" + name +
                            "'; valid: off, basic, strict");
  return CheckLevel::off;
}

const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::allreduce: return "allreduce";
    case CollOp::reduce: return "reduce";
    case CollOp::bcast: return "bcast";
    case CollOp::alltoall: return "alltoall";
    case CollOp::allgather: return "allgather";
    case CollOp::reduce_scatter: return "reduce_scatter";
    case CollOp::gather: return "gather";
    case CollOp::scatter: return "scatter";
    case CollOp::barrier: return "barrier";
  }
  return "?";
}

std::string Violation::format() const {
  std::string s = "[" + rule + "]";
  if (rank >= 0) s += " rank " + std::to_string(rank);
  if (!context.empty()) s += " in " + context;
  s += ": " + message;
  return s;
}

namespace {

std::string build_report(const std::vector<Violation>& vs) {
  std::string s = "simcheck: " + std::to_string(vs.size()) +
                  " violation(s) detected\n";
  for (const Violation& v : vs) s += "  " + v.format() + "\n";
  return s;
}

// Render element `idx` of a raw buffer for mismatch messages.
std::string format_element(Dtype dt, const std::vector<std::byte>& buf,
                           std::size_t idx) {
  const std::size_t esize = simmpi::dtype_size(dt);
  if ((idx + 1) * esize > buf.size()) return "?";
  const std::byte* p = buf.data() + idx * esize;
  std::ostringstream os;
  switch (dt) {
    case Dtype::f32: {
      float v;
      std::memcpy(&v, p, sizeof v);
      os << v;
      break;
    }
    case Dtype::f64: {
      double v;
      std::memcpy(&v, p, sizeof v);
      os << v;
      break;
    }
    case Dtype::i32: {
      std::int32_t v;
      std::memcpy(&v, p, sizeof v);
      os << v;
      break;
    }
    case Dtype::i64: {
      std::int64_t v;
      std::memcpy(&v, p, sizeof v);
      os << v;
      break;
    }
    case Dtype::u8: {
      os << static_cast<int>(std::to_integer<unsigned>(p[0]));
      break;
    }
  }
  return os.str();
}

// First differing element index between two equally-sized buffers, or
// npos when bit-identical.
std::size_t first_mismatch(const std::vector<std::byte>& a,
                           const std::vector<std::byte>& b,
                           std::size_t esize) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i / esize;
  }
  if (a.size() != b.size()) return n / esize;
  return static_cast<std::size_t>(-1);
}

}  // namespace

CheckError::CheckError(std::string report, std::vector<Violation> violations,
                       std::string deadlock_json)
    : std::runtime_error(std::move(report)),
      violations_(std::move(violations)),
      deadlock_json_(std::move(deadlock_json)) {}

std::string deadlock_report_json(const std::vector<BlockedEdge>& edges) {
  std::ostringstream os;
  os << "{\"blocked\": [";
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const BlockedEdge& e = edges[i];
    if (i > 0) os << ", ";
    os << "{\"rank\": " << e.rank << ", \"ctx\": " << e.ctx
       << ", \"src\": " << e.src << ", \"tag\": " << e.tag
       << ", \"capacity\": " << e.capacity << "}";
  }
  os << "], \"cycle\": [";
  // Follow the rank -> awaited-rank chain (each blocked rank's first
  // concrete-source edge). A wildcard source (-1) ends the chain: that rank
  // could be satisfied by anyone, so it anchors no cycle edge.
  std::map<int, int> waits_on;
  for (const BlockedEdge& e : edges) {
    if (e.src >= 0 && waits_on.find(e.rank) == waits_on.end()) {
      waits_on.emplace(e.rank, e.src);
    }
  }
  std::vector<int> cycle;
  for (const auto& [start, first] : waits_on) {
    (void)first;
    std::vector<int> path;
    std::map<int, std::size_t> pos;
    int cur = start;
    while (waits_on.find(cur) != waits_on.end() &&
           pos.find(cur) == pos.end()) {
      pos.emplace(cur, path.size());
      path.push_back(cur);
      cur = waits_on.at(cur);
    }
    if (pos.find(cur) != pos.end()) {
      cycle.assign(path.begin() + static_cast<std::ptrdiff_t>(pos.at(cur)),
                   path.end());
      break;  // waits_on is sorted: the first cycle found is canonical
    }
  }
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i > 0) os << ", ";
    os << cycle[i];
  }
  os << "]}";
  return os.str();
}

BufferLease& BufferLease::operator=(BufferLease&& o) noexcept {
  if (this != &o) {
    release();
    ck_ = o.ck_;
    rank_ = o.rank_;
    id_ = o.id_;
    o.ck_ = nullptr;
    o.id_ = -1;
  }
  return *this;
}

void BufferLease::release() {
  if (ck_ != nullptr && id_ >= 0) ck_->release_buffer(rank_, id_);
  ck_ = nullptr;
  id_ = -1;
}

Checker::Checker(CheckLevel level, bool with_data, int world_size)
    : level_(level), with_data_(with_data), world_size_(world_size) {
  DPML_CHECK(level != CheckLevel::off && world_size >= 1);
  live_.resize(static_cast<std::size_t>(world_size));
  open_.resize(static_cast<std::size_t>(world_size));
}

void Checker::fail(Violation v) const {
  std::vector<Violation> vs = deferred_;
  vs.push_back(std::move(v));
  // Build the report before handing `vs` to the exception: argument
  // evaluation order is unspecified, and a move-first order would report
  // from an emptied vector.
  std::string report = build_report(vs);
  throw CheckError(std::move(report), std::move(vs));
}

std::string Checker::label_of(int rank) const {
  const auto& stack = open_[static_cast<std::size_t>(rank)];
  if (stack.empty()) return "";
  const OpenColl& oc = stack.back();
  auto it = records_.find({oc.ctx, oc.seq});
  return it == records_.end() ? "" : it->second.label;
}

int Checker::current_dtype(int rank) const {
  const auto& stack = open_[static_cast<std::size_t>(rank)];
  return stack.empty() ? -1 : stack.back().dtype;
}

void Checker::on_send(int src, int dst, int ctx, int tag, std::size_t bytes) {
  (void)dst;
  const int dt = current_dtype(src);
  if (dt < 0) return;
  const std::size_t esize = simmpi::dtype_size(static_cast<Dtype>(dt));
  if (bytes % esize != 0) {
    fail(Violation{
        "count-mismatch", src, label_of(src),
        "send of " + std::to_string(bytes) + " bytes (ctx=" +
            std::to_string(ctx) + ", tag=" + std::to_string(tag) +
            ") is not a whole number of " +
            simmpi::dtype_name(static_cast<Dtype>(dt)) + " elements"});
  }
}

BufferLease Checker::acquire(int rank, const std::byte* data, std::size_t size,
                             bool writable, const char* what, int ctx,
                             int tag) {
  if (data == nullptr || size == 0) return BufferLease{};
  auto& bufs = live_[static_cast<std::size_t>(rank)];
  const std::byte* lo = data;
  const std::byte* hi = data + size;
  for (const LiveBuffer& b : bufs) {
    if (!b.active) continue;
    if (lo < b.hi && b.lo < hi && (writable || b.writable)) {
      fail(Violation{
          "buffer-overlap", rank, label_of(rank),
          std::string(what) + " buffer (ctx=" + std::to_string(ctx) +
              ", tag=" + std::to_string(tag) + ", " + std::to_string(size) +
              " bytes) overlaps a live " + b.what + " buffer (ctx=" +
              std::to_string(b.ctx) + ", tag=" + std::to_string(b.tag) +
              "); MPI forbids reusing a buffer while an operation on it is "
              "in flight"});
    }
  }
  int id = -1;
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].active) {
      id = static_cast<int>(i);
      break;
    }
  }
  if (id < 0) {
    id = static_cast<int>(bufs.size());
    bufs.emplace_back();
  }
  bufs[static_cast<std::size_t>(id)] =
      LiveBuffer{lo, hi, writable, what, ctx, tag, true};
  return BufferLease{this, rank, id};
}

BufferLease Checker::acquire_read(int rank, ConstBytes span, const char* what,
                                  int ctx, int tag) {
  return acquire(rank, span.data(), span.size(), /*writable=*/false, what, ctx,
                 tag);
}

BufferLease Checker::acquire_write(int rank, MutBytes span, const char* what,
                                   int ctx, int tag) {
  return acquire(rank, span.data(), span.size(), /*writable=*/true, what, ctx,
                 tag);
}

void Checker::release_buffer(int rank, int id) {
  live_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(id)].active =
      false;
}

void Checker::on_recv_complete(int rank, int ctx, const simmpi::PostedRecv& pr) {
  const int my_dt = current_dtype(rank);
  if (my_dt >= 0 && pr.recv_dtype >= 0 && pr.recv_dtype != my_dt) {
    fail(Violation{
        "dtype-mismatch", rank, label_of(rank),
        "received a message sent as " +
            std::string(simmpi::dtype_name(static_cast<Dtype>(pr.recv_dtype))) +
            " from rank " + std::to_string(pr.recv_src) + " (ctx=" +
            std::to_string(ctx) + ", tag=" + std::to_string(pr.recv_tag) +
            ") while reducing " +
            simmpi::dtype_name(static_cast<Dtype>(my_dt)) + " elements"});
  }
  if (my_dt >= 0) {
    const std::size_t esize = simmpi::dtype_size(static_cast<Dtype>(my_dt));
    if (pr.recv_bytes % esize != 0) {
      fail(Violation{
          "count-mismatch", rank, label_of(rank),
          "received " + std::to_string(pr.recv_bytes) + " bytes from rank " +
              std::to_string(pr.recv_src) + " (ctx=" + std::to_string(ctx) +
              ", tag=" + std::to_string(pr.recv_tag) +
              "), not a whole number of " +
              simmpi::dtype_name(static_cast<Dtype>(my_dt)) + " elements"});
    }
  }
  if (strict() && pr.capacity != pr.recv_bytes) {
    fail(Violation{
        "capacity-mismatch", rank, label_of(rank),
        "posted a receive of " + std::to_string(pr.capacity) +
            " bytes but rank " + std::to_string(pr.recv_src) + " sent " +
            std::to_string(pr.recv_bytes) + " (ctx=" + std::to_string(ctx) +
            ", tag=" + std::to_string(pr.recv_tag) +
            "); strict mode requires exact counts"});
  }
}

std::uint64_t Checker::begin_collective(CollOp op_kind, int world_rank,
                                        int ctx, const std::string& label,
                                        int parties, int comm_rank, int root,
                                        std::size_t count, Dtype dt,
                                        const simmpi::Op& op,
                                        ConstBytes input) {
  DPML_CHECK(world_rank >= 0 && world_rank < world_size_);
  DPML_CHECK(comm_rank >= 0 && comm_rank < parties);
  const std::uint64_t seq = enter_seq_[{ctx, world_rank}]++;
  CollRecord& rec = records_[{ctx, seq}];
  const std::string where =
      std::string(coll_op_name(op_kind)) + "/" + label;
  if (rec.entered == 0) {
    rec.op_kind = op_kind;
    rec.label = label;
    rec.parties = parties;
    rec.root = root;
    rec.count = count;
    rec.dt = dt;
    rec.op = op;
    rec.party.resize(static_cast<std::size_t>(parties));
  } else if (rec.op_kind != op_kind || rec.label != label ||
             rec.parties != parties || rec.root != root ||
             rec.count != count || rec.dt != dt) {
    fail(Violation{
        "collective-argument-mismatch", world_rank, where,
        "entered invocation #" + std::to_string(seq) + " on context " +
            std::to_string(ctx) + " with (kind=" + coll_op_name(op_kind) +
            ", label=" + label + ", parties=" + std::to_string(parties) +
            ", root=" + std::to_string(root) + ", count=" +
            std::to_string(count) + ", dtype=" + simmpi::dtype_name(dt) +
            ") but an earlier rank entered with (kind=" +
            coll_op_name(rec.op_kind) + ", label=" +
            rec.label + ", parties=" + std::to_string(rec.parties) +
            ", root=" + std::to_string(rec.root) + ", count=" +
            std::to_string(rec.count) + ", dtype=" +
            simmpi::dtype_name(rec.dt) + "); SPMD ranks must agree"});
  }
  Party& p = rec.party[static_cast<std::size_t>(comm_rank)];
  if (p.entered) {
    fail(Violation{"collective-reentry", world_rank, where,
                   "comm rank " + std::to_string(comm_rank) +
                       " entered invocation #" + std::to_string(seq) +
                       " on context " + std::to_string(ctx) + " twice"});
  }
  p.entered = true;
  p.world_rank = world_rank;
  if (with_data_ && !input.empty()) {
    p.input.assign(input.begin(), input.end());
  }
  rec.entered += 1;

  // Annotate this rank's p2p traffic with the reduction dtype; the pure
  // data-movement kinds (bcast, alltoall, allgather, gather, scatter) move
  // byte ranges that need not be element-aligned, so they stay unannotated.
  const bool reduction = op_kind == CollOp::allreduce ||
                         op_kind == CollOp::reduce ||
                         op_kind == CollOp::reduce_scatter;
  open_[static_cast<std::size_t>(world_rank)].push_back(
      OpenColl{ctx, seq, reduction ? static_cast<int>(dt) : -1});
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ctx)) << 32) |
         (seq & 0xffffffffull);
}

void Checker::end_collective(int world_rank, std::uint64_t token,
                             ConstBytes output) {
  const int ctx = static_cast<int>(token >> 32);
  const std::uint64_t seq = token & 0xffffffffull;
  auto& stack = open_[static_cast<std::size_t>(world_rank)];
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->ctx == ctx && it->seq == seq) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  auto rit = records_.find({ctx, seq});
  DPML_CHECK_MSG(rit != records_.end(),
                 "end_collective without matching begin");
  CollRecord& rec = rit->second;
  Party* party = nullptr;
  for (Party& p : rec.party) {
    if (p.world_rank == world_rank && p.entered && !p.exited) {
      party = &p;
      break;
    }
  }
  DPML_CHECK_MSG(party != nullptr, "end_collective from a non-member rank");
  party->exited = true;
  if (with_data_ && !output.empty()) {
    party->output.assign(output.begin(), output.end());
  }
  rec.exited += 1;
  if (rec.exited == rec.parties) {
    verify_collective(ctx, seq, rec);
    records_.erase(rit);
  }
}

void Checker::verify_collective(int ctx, std::uint64_t seq,
                                const CollRecord& rec) {
  (void)ctx;
  (void)seq;
  // Barrier has arrival semantics only (count == 0); nothing to verify.
  if (!with_data_ || rec.count == 0) return;
  const std::size_t esize = simmpi::dtype_size(rec.dt);
  const std::size_t vec_bytes = rec.count * esize;
  const std::size_t all_bytes =
      vec_bytes * static_cast<std::size_t>(rec.parties);
  // Expected input-snapshot size per comm rank (`count` is the per-block
  // element count for the blocked kinds, see coll/registry.hpp); 0 means the
  // rank contributes no data (e.g. scatter non-roots).
  auto in_bytes_of = [&](int cr) -> std::size_t {
    switch (rec.op_kind) {
      case CollOp::alltoall:
      case CollOp::reduce_scatter:
        return all_bytes;
      case CollOp::scatter:
        return cr == rec.root ? all_bytes : 0;
      case CollOp::barrier:
        return 0;
      case CollOp::allreduce:
      case CollOp::reduce:
      case CollOp::bcast:
      case CollOp::allgather:
      case CollOp::gather:
        break;
    }
    return vec_bytes;
  };
  const std::string where =
      std::string(coll_op_name(rec.op_kind)) + "/" + rec.label;
  for (int cr = 0; cr < rec.parties; ++cr) {
    const Party& p = rec.party[static_cast<std::size_t>(cr)];
    const std::size_t expect_in = in_bytes_of(cr);
    if (expect_in == 0) continue;  // this rank contributes no data
    if (p.input.empty()) return;  // metadata-only participant: nothing to fold
    if (p.input.size() != expect_in) {
      fail(Violation{"collective-buffer-size", p.world_rank, where,
                     "input buffer holds " + std::to_string(p.input.size()) +
                         " bytes; expected " + std::to_string(expect_in)});
    }
  }

  // Serial reference in ascending comm-rank order — the fold order MPI
  // guarantees for non-commutative ops (associativity may be exploited, the
  // operand sequence may not be reordered). The data-movement kinds use a
  // placement reference (blocks concatenated in comm-rank order) instead.
  std::vector<std::byte> ref;
  switch (rec.op_kind) {
    case CollOp::allreduce:
    case CollOp::reduce: {
      ref = rec.party[0].input;
      for (int cr = 1; cr < rec.parties; ++cr) {
        rec.op.apply(rec.dt, rec.count, MutBytes{ref},
                     ConstBytes{rec.party[static_cast<std::size_t>(cr)].input});
      }
      break;
    }
    case CollOp::reduce_scatter: {
      // Fold the full p-block vectors; comm rank cr receives block cr.
      ref = rec.party[0].input;
      for (int cr = 1; cr < rec.parties; ++cr) {
        rec.op.apply(rec.dt,
                     rec.count * static_cast<std::size_t>(rec.parties),
                     MutBytes{ref},
                     ConstBytes{rec.party[static_cast<std::size_t>(cr)].input});
      }
      break;
    }
    case CollOp::bcast:
    case CollOp::scatter:
      ref = rec.party[static_cast<std::size_t>(rec.root)].input;
      break;
    case CollOp::allgather:
    case CollOp::gather:
      ref.resize(all_bytes);
      for (int cr = 0; cr < rec.parties; ++cr) {
        std::memcpy(ref.data() + static_cast<std::size_t>(cr) * vec_bytes,
                    rec.party[static_cast<std::size_t>(cr)].input.data(),
                    vec_bytes);
      }
      break;
    case CollOp::alltoall:
    case CollOp::barrier:
      break;  // alltoall: per-receiver expectation computed below
  }

  auto check_output = [&](int cr, const std::vector<std::byte>& expect) {
    const Party& p = rec.party[static_cast<std::size_t>(cr)];
    if (p.output == expect) return;
    const std::size_t idx = first_mismatch(p.output, expect, esize);
    fail(Violation{
        "result-mismatch", p.world_rank, where,
        "comm rank " + std::to_string(cr) + " finished with a wrong result: "
            "element " + std::to_string(idx) + " (" +
            simmpi::dtype_name(rec.dt) + ", op=" + rec.op.name() + ") is " +
            format_element(rec.dt, p.output, idx) + ", serial reference says " +
            format_element(rec.dt, expect, idx)});
  };

  // One block of `ref` for the kinds that scatter it per receiver.
  auto block_of = [&](int cr) {
    const auto lo = static_cast<std::ptrdiff_t>(
        static_cast<std::size_t>(cr) * vec_bytes);
    return std::vector<std::byte>(
        ref.begin() + lo, ref.begin() + lo + static_cast<std::ptrdiff_t>(
                                                 vec_bytes));
  };

  switch (rec.op_kind) {
    case CollOp::allreduce:
    case CollOp::bcast:
    case CollOp::allgather:
      for (int cr = 0; cr < rec.parties; ++cr) check_output(cr, ref);
      break;
    case CollOp::reduce:
    case CollOp::gather:
      check_output(rec.root, ref);
      break;
    case CollOp::reduce_scatter:
    case CollOp::scatter:
      for (int cr = 0; cr < rec.parties; ++cr) check_output(cr, block_of(cr));
      break;
    case CollOp::alltoall: {
      std::vector<std::byte> expect(all_bytes);
      for (int cr = 0; cr < rec.parties; ++cr) {
        for (int src = 0; src < rec.parties; ++src) {
          const std::byte* blk =
              rec.party[static_cast<std::size_t>(src)].input.data() +
              static_cast<std::size_t>(cr) * vec_bytes;
          std::memcpy(expect.data() + static_cast<std::size_t>(src) * vec_bytes,
                      blk, vec_bytes);
        }
        check_output(cr, expect);
      }
      break;
    }
    case CollOp::barrier:
      break;
  }
}

void Checker::note_endpoint_state(int rank, const simmpi::Matcher& matcher) {
  for (const simmpi::Envelope& env : matcher.unexpected()) {
    deferred_.push_back(Violation{
        env.rendezvous ? "unmatched-rendezvous" : "unmatched-send", rank, "",
        "holds an undelivered message from rank " + std::to_string(env.src) +
            " (ctx=" + std::to_string(env.ctx) + ", tag=" +
            std::to_string(env.tag) + ", " + std::to_string(env.bytes) +
            " bytes): the send was never matched by a receive"});
  }
  for (const simmpi::PostedRecv* pr : matcher.posted()) {
    blocked_edges_.push_back(
        BlockedEdge{rank, pr->ctx, pr->src, pr->tag, pr->capacity});
    deferred_.push_back(Violation{
        "blocked-recv", rank, "",
        "is blocked on a posted receive (ctx=" + std::to_string(pr->ctx) +
            ", src=" +
            (pr->src < 0 ? std::string("any") : std::to_string(pr->src)) +
            ", tag=" +
            (pr->tag < 0 ? std::string("any") : std::to_string(pr->tag)) +
            ", capacity=" + std::to_string(pr->capacity) +
            " bytes) that no message can ever match"});
  }
}

void Checker::finalize(bool deadlocked, const std::string& deadlock_what,
                       std::size_t live_slots,
                       std::size_t open_trace_spans) {
  // Collectives some ranks entered but not every party finished: in a
  // deadlock this names the operation the machine is stuck inside.
  for (const auto& [key, rec] : records_) {
    std::string inside;
    for (const Party& p : rec.party) {
      if (p.entered && !p.exited) {
        if (!inside.empty()) inside += ", ";
        inside += std::to_string(p.world_rank);
      }
    }
    std::string missing;
    int missing_n = 0;
    for (std::size_t cr = 0; cr < rec.party.size(); ++cr) {
      if (!rec.party[cr].entered) {
        if (!missing.empty()) missing += ", ";
        missing += std::to_string(cr);
        missing_n += 1;
      }
    }
    std::string msg = "invocation #" + std::to_string(key.second) +
                      " on context " + std::to_string(key.first) +
                      " never completed";
    if (!inside.empty()) msg += "; world ranks still inside: " + inside;
    if (missing_n > 0) msg += "; comm ranks that never entered: " + missing;
    deferred_.push_back(Violation{"unbalanced-collective", -1,
                                  std::string(coll_op_name(rec.op_kind)) +
                                      "/" + rec.label,
                                  std::move(msg)});
  }
  if (strict() && live_slots > 0) {
    deferred_.push_back(Violation{
        "leaked-coll-slot", -1, "",
        std::to_string(live_slots) +
            " collective slot(s) (shared windows/latches) were never "
            "released; a rank skipped release_slot or parties disagreed"});
  }
  if (strict() && open_trace_spans > 0) {
    deferred_.push_back(Violation{
        "unbalanced-trace-span", -1, "",
        std::to_string(open_trace_spans) +
            " tracer span(s) were begun but never ended; every "
            "Tracer::begin needs a matching Tracer::end"});
  }
  std::string dl_json;
  if (deadlocked) {
    dl_json = deadlock_report_json(blocked_edges_);
    deferred_.push_back(Violation{
        "wait-cycle-deadlock", -1, "",
        deadlock_what +
            " — the blocked-request report above lists what each rank was "
            "waiting for; structured wait-cycle: " + dl_json});
  }
  if (deferred_.empty()) return;
  std::vector<Violation> vs = std::move(deferred_);
  deferred_.clear();
  std::string report = build_report(vs);  // before the move, see fail()
  throw CheckError(std::move(report), std::move(vs), std::move(dl_json));
}

}  // namespace dpml::check
