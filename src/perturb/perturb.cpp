#include "perturb/perturb.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dpml::perturb {

Perturbation::Perturbation(PerturbSpec spec, int world_size)
    : spec_(std::move(spec)),
      straggler_scale_(static_cast<std::size_t>(world_size), 1.0),
      jitter_op_(static_cast<std::size_t>(world_size), 0),
      skew_op_(static_cast<std::size_t>(world_size), 0),
      coll_depth_(static_cast<std::size_t>(world_size), 0) {
  DPML_CHECK_MSG(world_size >= 1, "perturbation needs a non-empty world");
  jitter_seed_ = util::SplitMix64(spec_.seed, kJitter).next_u64();
  skew_seed_ = util::SplitMix64(spec_.seed, kSkew).next_u64();

  // Seeded straggler choice: partial Fisher-Yates over the world ranks.
  const int k = std::min(spec_.stragglers.count, world_size);
  if (k > 0 && spec_.stragglers.scale != 1.0) {
    util::SplitMix64 g(spec_.seed, kStragglers);
    std::vector<int> ranks(static_cast<std::size_t>(world_size));
    for (int i = 0; i < world_size; ++i) ranks[static_cast<std::size_t>(i)] = i;
    for (int i = 0; i < k; ++i) {
      const auto j = i + static_cast<int>(g.next_below(
                             static_cast<std::uint64_t>(world_size - i)));
      std::swap(ranks[static_cast<std::size_t>(i)],
                ranks[static_cast<std::size_t>(j)]);
      straggler_ranks_.push_back(ranks[static_cast<std::size_t>(i)]);
      straggler_scale_[static_cast<std::size_t>(
          ranks[static_cast<std::size_t>(i)])] = spec_.stragglers.scale;
    }
    std::sort(straggler_ranks_.begin(), straggler_ranks_.end());
  }
}

util::SplitMix64 Perturbation::stream(std::uint64_t purpose_seed, int rank,
                                      std::uint64_t op) {
  return util::SplitMix64(
      purpose_seed,
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32) |
          (op & 0xffffffffull));
}

double Perturbation::jitter_factor(int rank, std::uint64_t op) const {
  util::SplitMix64 g = stream(jitter_seed_, rank, op);
  switch (spec_.jitter.kind) {
    case JitterKind::none:
      return 1.0;
    case JitterKind::uniform:
      return 1.0 + spec_.jitter.frac * (2.0 * g.next_double() - 1.0);
    case JitterKind::lognormal: {
      // Box-Muller; mean-1 normalization so jitter does not shift the
      // average cost, only spreads it.
      const double u1 = std::max(g.next_double(), 1e-12);
      const double u2 = g.next_double();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
      const double s = spec_.jitter.sigma;
      return std::exp(s * z - 0.5 * s * s);
    }
    case JitterKind::spike:
      return g.next_double() < spec_.jitter.prob ? spec_.jitter.scale : 1.0;
  }
  return 1.0;
}

double Perturbation::compute_factor(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  double f = straggler_scale_[r];
  if (spec_.jitter.kind != JitterKind::none) {
    f *= jitter_factor(rank, jitter_op_[r]++);
  }
  return f;
}

sim::Time Perturbation::arrival_offset(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  switch (spec_.skew.kind) {
    case SkewKind::none:
      return 0;
    case SkewKind::uniform: {
      util::SplitMix64 g = stream(skew_seed_, rank, skew_op_[r]++);
      return static_cast<sim::Time>(g.next_double() *
                                    static_cast<double>(spec_.skew.max));
    }
    case SkewKind::fixed:
      return spec_.skew.offsets[r % spec_.skew.offsets.size()];
  }
  return 0;
}

bool Perturbation::enter_collective(int rank) {
  return ++coll_depth_[static_cast<std::size_t>(rank)] == 1;
}

void Perturbation::exit_collective(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  DPML_CHECK_MSG(coll_depth_[r] > 0, "unbalanced collective exit");
  --coll_depth_[r];
}

namespace {
// Symmetric wildcard match of one rule against a node pair at `now`.
bool matches(const LinkSpec& l, int a, int b, sim::Time now) {
  if (now < l.from) return false;
  if (l.until != 0 && now >= l.until) return false;
  const auto ends_match = [](int rs, int rd, int x, int y) {
    return (rs < 0 || rs == x) && (rd < 0 || rd == y);
  };
  return ends_match(l.src, l.dst, a, b) || ends_match(l.src, l.dst, b, a);
}
}  // namespace

double Perturbation::link_bw_scale(int a, int b, sim::Time now) const {
  double scale = 1.0;
  for (const LinkSpec& l : spec_.links) {
    if (matches(l, a, b, now)) scale *= l.bw_scale;
  }
  return scale;
}

sim::Time Perturbation::link_extra_latency(int a, int b, sim::Time now) const {
  sim::Time extra = 0;
  for (const LinkSpec& l : spec_.links) {
    if (matches(l, a, b, now)) extra += l.extra_latency;
  }
  return extra;
}

namespace {
bool in_window(const LinkSpec& l, sim::Time now) {
  if (now < l.from) return false;
  if (l.until != 0 && now >= l.until) return false;
  return true;
}
}  // namespace

double Perturbation::fabric_pair_scale(int a, int b, sim::Time now) const {
  double scale = 1.0;
  for (const LinkSpec& l : spec_.links) {
    if (l.src >= 0 && l.dst >= 0 && matches(l, a, b, now)) scale *= l.bw_scale;
  }
  return scale;
}

double Perturbation::fabric_node_scale(int node, sim::Time now) const {
  double scale = 1.0;
  for (const LinkSpec& l : spec_.links) {
    if ((l.src >= 0) == (l.dst >= 0)) continue;  // pairwise or global
    const int named = l.src >= 0 ? l.src : l.dst;
    if (named == node && in_window(l, now)) scale *= l.bw_scale;
  }
  return scale;
}

double Perturbation::fabric_global_scale(sim::Time now) const {
  double scale = 1.0;
  for (const LinkSpec& l : spec_.links) {
    if (l.src < 0 && l.dst < 0 && in_window(l, now)) scale *= l.bw_scale;
  }
  return scale;
}

std::vector<sim::Time> Perturbation::link_rule_boundaries() const {
  std::vector<sim::Time> edges;
  for (const LinkSpec& l : spec_.links) {
    if (l.from > 0) edges.push_back(l.from);
    if (l.until > 0) edges.push_back(l.until);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace dpml::perturb
