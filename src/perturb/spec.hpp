// Perturbation specification.
//
// A PerturbSpec describes the deterministic "dirty machine" effects a run
// should be subjected to: per-rank compute jitter, process arrival skew
// before each collective, per-link bandwidth/latency degradation (optionally
// time-windowed), and straggler ranks whose every charge is scaled. The spec
// is plain data; the runtime that consults it lives in perturb/perturb.hpp.
//
// Specs parse from a compact CLI string of ';'-separated injector clauses:
//
//   jitter=uniform:frac=0.1            factor ~ U[1-frac, 1+frac] per charge
//   jitter=lognormal:sigma=0.2         factor ~ LogNormal(mean 1) per charge
//   jitter=spike:prob=0.01,scale=4     factor = scale w.p. prob, else 1
//   skew=uniform:max_us=50             per-rank entry offset ~ U[0, max_us],
//                                      redrawn for every collective
//   skew=fixed:us=0/10/20/30           fixed per-rank offsets (index mod n)
//   link=bw=0.5,lat_us=5[,src=A][,dst=B][,from_us=T0][,until_us=T1]
//                                      repeatable; wildcard node when omitted
//   stragglers=k=2,scale=3             k seeded ranks, all charges x scale
//   seed=7                             base seed for every stochastic draw
//
// An empty spec ("" or PerturbSpec{}) is the contract for a pristine
// machine: the simulator takes the exact unperturbed code path and produces
// bit-identical simulated times (locked by tests/perturb_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dpml::perturb {

enum class JitterKind { none, uniform, lognormal, spike };

struct JitterSpec {
  JitterKind kind = JitterKind::none;
  double frac = 0.1;    // uniform: half-width of the factor interval
  double sigma = 0.2;   // lognormal: shape (mean-1 normalization)
  double prob = 0.01;   // spike: Bernoulli probability per charge
  double scale = 4.0;   // spike: factor applied when the spike fires
};

enum class SkewKind { none, uniform, fixed };

struct SkewSpec {
  SkewKind kind = SkewKind::none;
  sim::Time max = 0;                // uniform: offsets drawn from [0, max]
  std::vector<sim::Time> offsets;   // fixed: per-rank (indexed rank mod size)
};

// One link-degradation rule. Applies to inter-node messages whose
// (src node, dst node) pair matches {src, dst} in either direction; -1 is a
// wildcard. Active during [from, until), where until == 0 means forever.
// Multiple matching rules compose: bandwidth scales multiply, latencies add.
struct LinkSpec {
  int src = -1;
  int dst = -1;
  double bw_scale = 1.0;        // multiplies the NIC link bandwidth
  sim::Time extra_latency = 0;  // added to the fabric head latency
  sim::Time from = 0;
  sim::Time until = 0;
};

struct StragglerSpec {
  int count = 0;       // ranks chosen by a seeded draw over the world
  double scale = 1.0;  // every charge made by a chosen rank is scaled
};

struct PerturbSpec {
  JitterSpec jitter;
  SkewSpec skew;
  std::vector<LinkSpec> links;
  StragglerSpec stragglers;
  std::uint64_t seed = 1;

  // True when no injector is configured; the Machine then builds no
  // Perturbation at all and every charge path stays untouched.
  bool empty() const;

  // Parse the CLI syntax above. "" parses to an empty spec. Throws
  // util::InvariantError naming the offending clause and listing every
  // supported injector (or, for a known injector, its parameters).
  static PerturbSpec parse(const std::string& text);

  // Canonical round-trippable form ("" for an empty spec).
  std::string to_string() const;
};

}  // namespace dpml::perturb
