// Perturbation runtime: the object the Machine consults on charge paths.
//
// Built once per Machine from a non-empty PerturbSpec. Every stochastic
// decision flows through util::SplitMix64 under one documented derivation
// scheme, so a (spec.seed, rank, op) triple fully determines each draw and
// identical seeds reproduce identical simulated times run-to-run:
//
//   purpose seed   P_s = SplitMix64(seed, purpose).next_u64()
//                  (purpose: 1 = jitter, 2 = skew, 3 = stragglers)
//   sub-stream     SplitMix64(P_s, rank * 2^32 + op)
//
// `op` is a per-rank counter advanced once per draw site (one compute
// charge for jitter, one top-level collective entry for skew), so draws are
// independent across ranks and across operations, and stable under any
// event interleaving of other ranks.
//
// The Machine holds a Perturbation only when the spec is non-empty; a null
// pointer is the pristine-machine fast path, keeping zero-spec runs
// bit-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <vector>

#include "perturb/spec.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dpml::perturb {

class Perturbation {
 public:
  // Purposes anchoring independent draw streams (see header comment).
  enum Purpose : std::uint64_t { kJitter = 1, kSkew = 2, kStragglers = 3 };

  Perturbation(PerturbSpec spec, int world_size);

  const PerturbSpec& spec() const { return spec_; }

  // Multiplier for one compute/reduction charge by `rank`: the jitter draw
  // (advancing the rank's jitter sub-stream) times the straggler scale.
  double compute_factor(int rank);

  // Deterministic scale applied to every charge made by `rank`
  // (1.0 for non-stragglers).
  double charge_scale(int rank) const {
    return straggler_scale_[static_cast<std::size_t>(rank)];
  }

  // Entry offset for this rank's next top-level collective. Uniform skew
  // advances the rank's skew sub-stream; fixed skew indexes the offset
  // vector (rank mod size).
  sim::Time arrival_offset(int rank);

  // Top-level collective tracking: algorithms dispatched from inside another
  // collective (dpml-auto, library selection stacks) must not re-apply
  // arrival skew. Returns true when this entry is the rank's outermost one.
  bool enter_collective(int rank);
  void exit_collective(int rank);

  // ---- Link degradation ----
  bool has_link_rules() const { return !spec_.links.empty(); }
  // Combined bandwidth scale / extra head latency for a message between
  // nodes `a` and `b` whose head enters the fabric at `now`. Rules match
  // symmetrically; several matching rules multiply scales and add latencies.
  double link_bw_scale(int a, int b, sim::Time now) const;
  sim::Time link_extra_latency(int a, int b, sim::Time now) const;

  // Flow-fabric decomposition of the same rules (fabric_level == links):
  // pairwise rules (both endpoints named) cap the individual flow's rate,
  // one-sided rules scale the named node's edge-link capacities, and fully
  // wildcarded rules scale every link. Products over matching in-window
  // rules, like link_bw_scale.
  double fabric_pair_scale(int a, int b, sim::Time now) const;
  double fabric_node_scale(int node, sim::Time now) const;
  double fabric_global_scale(sim::Time now) const;
  // Sorted unique positive from/until edges of windowed link rules — the
  // instants where the fabric must re-divide bandwidth.
  std::vector<sim::Time> link_rule_boundaries() const;

  // The seeded straggler choice (sorted world ranks), for reporting.
  const std::vector<int>& straggler_ranks() const { return straggler_ranks_; }

 private:
  // The documented sub-stream: generator for (purpose seed, rank, op).
  static util::SplitMix64 stream(std::uint64_t purpose_seed, int rank,
                                 std::uint64_t op);
  double jitter_factor(int rank, std::uint64_t op) const;

  PerturbSpec spec_;
  std::uint64_t jitter_seed_ = 0;
  std::uint64_t skew_seed_ = 0;
  std::vector<double> straggler_scale_;    // per world rank
  std::vector<int> straggler_ranks_;
  std::vector<std::uint64_t> jitter_op_;   // per-rank draw counters
  std::vector<std::uint64_t> skew_op_;
  std::vector<int> coll_depth_;            // per-rank collective nesting
};

}  // namespace dpml::perturb
