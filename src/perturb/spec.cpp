#include "perturb/spec.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace dpml::perturb {

namespace {

constexpr const char* kInjectors = "jitter, skew, link, stragglers, seed";

[[noreturn]] void bad_clause(const std::string& what) {
  throw util::InvariantError("bad --perturb spec: " + what);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

double parse_double(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    bad_clause("parameter '" + key + "' needs a number, got '" + text + "'");
  }
  return v;
}

long long parse_int(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    bad_clause("parameter '" + key + "' needs an integer, got '" + text + "'");
  }
  return v;
}

// "a=1,b=2" -> [(a,"1"), (b,"2")]; bare tokens get an empty value.
std::vector<std::pair<std::string, std::string>> params(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  if (trim(text).empty()) return out;
  for (const std::string& tok : split(text, ',')) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(trim(tok), "");
    } else {
      out.emplace_back(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
    }
  }
  return out;
}

JitterSpec parse_jitter(const std::string& value) {
  JitterSpec j;
  const std::size_t colon = value.find(':');
  const std::string kind = trim(value.substr(0, colon));
  const std::string rest =
      colon == std::string::npos ? "" : value.substr(colon + 1);
  if (kind == "uniform") {
    j.kind = JitterKind::uniform;
  } else if (kind == "lognormal") {
    j.kind = JitterKind::lognormal;
  } else if (kind == "spike") {
    j.kind = JitterKind::spike;
  } else {
    bad_clause("unknown jitter distribution '" + kind +
               "'; valid: uniform, lognormal, spike");
  }
  for (const auto& [k, v] : params(rest)) {
    if (k == "frac") {
      j.frac = parse_double(k, v);
    } else if (k == "sigma") {
      j.sigma = parse_double(k, v);
    } else if (k == "prob") {
      j.prob = parse_double(k, v);
    } else if (k == "scale") {
      j.scale = parse_double(k, v);
    } else {
      bad_clause("unknown jitter parameter '" + k +
                 "'; valid: frac, sigma, prob, scale");
    }
  }
  if (j.frac < 0.0 || j.frac >= 1.0) bad_clause("jitter frac must be in [0,1)");
  if (j.sigma < 0.0) bad_clause("jitter sigma must be >= 0");
  if (j.prob < 0.0 || j.prob > 1.0) bad_clause("jitter prob must be in [0,1]");
  if (j.scale <= 0.0) bad_clause("jitter scale must be > 0");
  return j;
}

SkewSpec parse_skew(const std::string& value) {
  SkewSpec s;
  const std::size_t colon = value.find(':');
  const std::string kind = trim(value.substr(0, colon));
  const std::string rest =
      colon == std::string::npos ? "" : value.substr(colon + 1);
  if (kind == "uniform") {
    s.kind = SkewKind::uniform;
  } else if (kind == "fixed") {
    s.kind = SkewKind::fixed;
  } else {
    bad_clause("unknown skew kind '" + kind + "'; valid: uniform, fixed");
  }
  for (const auto& [k, v] : params(rest)) {
    if (k == "max_us") {
      s.max = sim::us(parse_double(k, v));
    } else if (k == "us") {
      for (const std::string& off : split(v, '/')) {
        s.offsets.push_back(sim::us(parse_double(k, trim(off))));
      }
    } else {
      bad_clause("unknown skew parameter '" + k + "'; valid: max_us, us");
    }
  }
  if (s.kind == SkewKind::uniform && s.max < 0) {
    bad_clause("skew max_us must be >= 0");
  }
  if (s.kind == SkewKind::fixed && s.offsets.empty()) {
    bad_clause("skew=fixed needs us=A/B/... offsets");
  }
  return s;
}

LinkSpec parse_link(const std::string& value) {
  LinkSpec l;
  for (const auto& [k, v] : params(value)) {
    if (k == "bw") {
      l.bw_scale = parse_double(k, v);
    } else if (k == "lat_us") {
      l.extra_latency = sim::us(parse_double(k, v));
    } else if (k == "src") {
      l.src = static_cast<int>(parse_int(k, v));
    } else if (k == "dst") {
      l.dst = static_cast<int>(parse_int(k, v));
    } else if (k == "from_us") {
      l.from = sim::us(parse_double(k, v));
    } else if (k == "until_us") {
      l.until = sim::us(parse_double(k, v));
    } else {
      bad_clause("unknown link parameter '" + k +
                 "'; valid: bw, lat_us, src, dst, from_us, until_us");
    }
  }
  if (l.bw_scale <= 0.0) bad_clause("link bw scale must be > 0");
  if (l.extra_latency < 0) bad_clause("link lat_us must be >= 0");
  if (l.until != 0 && l.until <= l.from) {
    bad_clause("link window needs until_us > from_us");
  }
  return l;
}

StragglerSpec parse_stragglers(const std::string& value) {
  StragglerSpec s;
  for (const auto& [k, v] : params(value)) {
    if (k == "k") {
      s.count = static_cast<int>(parse_int(k, v));
    } else if (k == "scale") {
      s.scale = parse_double(k, v);
    } else {
      bad_clause("unknown stragglers parameter '" + k + "'; valid: k, scale");
    }
  }
  if (s.count < 0) bad_clause("stragglers k must be >= 0");
  if (s.scale <= 0.0) bad_clause("stragglers scale must be > 0");
  return s;
}

std::string format_us(sim::Time t) {
  std::ostringstream os;
  os << sim::to_us(t);
  return os.str();
}

}  // namespace

bool PerturbSpec::empty() const {
  return jitter.kind == JitterKind::none && skew.kind == SkewKind::none &&
         links.empty() && (stragglers.count == 0 || stragglers.scale == 1.0);
}

PerturbSpec PerturbSpec::parse(const std::string& text) {
  PerturbSpec spec;
  if (trim(text).empty()) return spec;
  for (const std::string& raw : split(text, ';')) {
    const std::string clause = trim(raw);
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    const std::string key = trim(clause.substr(0, eq));
    const std::string value =
        eq == std::string::npos ? "" : clause.substr(eq + 1);
    if (key == "jitter") {
      spec.jitter = parse_jitter(value);
    } else if (key == "skew") {
      spec.skew = parse_skew(value);
    } else if (key == "link") {
      spec.links.push_back(parse_link(value));
    } else if (key == "stragglers") {
      spec.stragglers = parse_stragglers(value);
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_int(key, trim(value)));
    } else {
      bad_clause("unknown perturbation injector '" + key +
                 "'; valid injectors: " + kInjectors);
    }
  }
  return spec;
}

std::string PerturbSpec::to_string() const {
  if (empty()) return "";
  std::ostringstream os;
  const char* sep = "";
  switch (jitter.kind) {
    case JitterKind::none:
      break;
    case JitterKind::uniform:
      os << sep << "jitter=uniform:frac=" << jitter.frac;
      sep = ";";
      break;
    case JitterKind::lognormal:
      os << sep << "jitter=lognormal:sigma=" << jitter.sigma;
      sep = ";";
      break;
    case JitterKind::spike:
      os << sep << "jitter=spike:prob=" << jitter.prob
         << ",scale=" << jitter.scale;
      sep = ";";
      break;
  }
  switch (skew.kind) {
    case SkewKind::none:
      break;
    case SkewKind::uniform:
      os << sep << "skew=uniform:max_us=" << format_us(skew.max);
      sep = ";";
      break;
    case SkewKind::fixed: {
      os << sep << "skew=fixed:us=";
      const char* slash = "";
      for (sim::Time t : skew.offsets) {
        os << slash << format_us(t);
        slash = "/";
      }
      sep = ";";
      break;
    }
  }
  for (const LinkSpec& l : links) {
    os << sep << "link=bw=" << l.bw_scale;
    if (l.extra_latency != 0) os << ",lat_us=" << format_us(l.extra_latency);
    if (l.src >= 0) os << ",src=" << l.src;
    if (l.dst >= 0) os << ",dst=" << l.dst;
    if (l.from != 0) os << ",from_us=" << format_us(l.from);
    if (l.until != 0) os << ",until_us=" << format_us(l.until);
    sep = ";";
  }
  if (stragglers.count > 0 && stragglers.scale != 1.0) {
    os << sep << "stragglers=k=" << stragglers.count
       << ",scale=" << stragglers.scale;
    sep = ";";
  }
  os << sep << "seed=" << seed;
  return os.str();
}

}  // namespace dpml::perturb
