// Cluster presets matching the paper's evaluation platforms (§6.1).
//
//   A: 40  × dual-socket 14-core Haswell,  EDR InfiniBand, SHArP switches
//   B: 648 × dual-socket 14-core Broadwell, EDR InfiniBand
//   C: 752 × dual-socket 14-core Haswell,  Omni-Path
//   D: 508 × 68-core KNL (cache mode),     Omni-Path
//
// Constants are calibrated so the simulated transport reproduces the
// qualitative communication characteristics of Figure 1 (see DESIGN.md §1);
// absolute latencies are in the right order of magnitude but are not claimed
// to match the original testbeds.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/models.hpp"

namespace dpml::net {

struct ClusterConfig {
  std::string name;
  int total_nodes = 1;
  NodeShape node;
  HostModel host;
  NicModel nic;
  int nodes_per_leaf = 24;
  // Fat-tree core oversubscription factor (1.0 = non-blocking). Each leaf's
  // uplink pool carries nodes_per_leaf * link_bw / oversubscription of
  // cross-leaf traffic (paper §6.1: cluster D has a 5/4-oversubscribed
  // fat tree).
  double oversubscription = 1.0;
  std::optional<SharpModel> sharp;  // set only for SHArP-capable fabrics

  int max_ppn() const { return node.cores(); }
  bool has_sharp() const { return sharp.has_value(); }
};

// The four evaluation clusters.
ClusterConfig cluster_a();  // Xeon + IB + SHArP
ClusterConfig cluster_b();  // Xeon + IB
ClusterConfig cluster_c();  // Xeon + Omni-Path
ClusterConfig cluster_d();  // KNL + Omni-Path

// Lookup by single-letter or full name ("A", "a", "cluster_a"). Throws
// util::InvariantError for unknown names.
ClusterConfig cluster_by_name(const std::string& name);

// All presets, for sweeps.
std::vector<ClusterConfig> all_clusters();

// A tiny laptop-scale config for unit tests (fast, 2x2-core nodes, SHArP on).
ClusterConfig test_cluster(int total_nodes = 8);

// Multi-rail variant: same cluster with `hcas` HCAs per node (one per socket
// group). Models the multi-HCA machines of paper §4.3, where leader
// placement is HCA-aware.
ClusterConfig with_rails(ClusterConfig cfg, int hcas);

// Scaled-out variant: the same per-node/per-NIC model with at least `nodes`
// nodes (a no-op when the preset is already big enough). Extrapolation for
// fig10-style extreme-scale sweeps: the leaf shape and oversubscription stay
// those of the preset, only the node count grows.
ClusterConfig with_nodes(ClusterConfig cfg, int nodes);

}  // namespace dpml::net
