// Fat-tree fabric topology.
//
// Two-level fat tree: nodes attach to leaf switches (`nodes_per_leaf` each),
// leaf switches attach to a core layer. This class only answers structural
// questions (leaf membership, hop counts, path latency); link *capacity* and
// core contention are modelled elsewhere. Under the default LogGP transport
// the core is approximated by per-leaf FIFO pools when oversubscribed; with
// RunOptions::fabric_level == links, src/fabric/fabric.hpp enforces every
// edge and ECMP'd core link with max-min fair flow sharing (paper §6.1's
// 5/4-oversubscribed fat trees).
#pragma once

#include "net/models.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace dpml::net {

class FabricTopology {
 public:
  FabricTopology(int num_nodes, int nodes_per_leaf)
      : num_nodes_(num_nodes), nodes_per_leaf_(nodes_per_leaf) {
    DPML_CHECK(num_nodes >= 1);
    DPML_CHECK(nodes_per_leaf >= 1);
  }

  int num_nodes() const { return num_nodes_; }
  int nodes_per_leaf() const { return nodes_per_leaf_; }
  int num_leaves() const {
    return (num_nodes_ + nodes_per_leaf_ - 1) / nodes_per_leaf_;
  }

  int leaf_of(int node) const {
    DPML_CHECK(node >= 0 && node < num_nodes_);
    return node / nodes_per_leaf_;
  }

  // Number of physical links traversed between two nodes (0 if same node):
  // same leaf -> node-leaf-node (2 links); otherwise node-leaf-core-leaf-node
  // (4 links).
  int links_between(int a, int b) const {
    if (a == b) return 0;
    return leaf_of(a) == leaf_of(b) ? 2 : 4;
  }

  // One-way wire+switch latency between two nodes for the given NIC model.
  sim::Time path_latency(int a, int b, const NicModel& nic) const {
    const int links = links_between(a, b);
    if (links == 0) return 0;
    const int switches = links - 1;
    return links * nic.wire_latency + switches * nic.switch_latency;
  }

  // Depth of the switch aggregation tree above a set of nodes: 1 level if
  // they all share a leaf switch, 2 (leaf + core) otherwise.
  int aggregation_levels(int lowest_node, int highest_node) const {
    return leaf_of(lowest_node) == leaf_of(highest_node) ? 1 : 2;
  }

 private:
  int num_nodes_;
  int nodes_per_leaf_;
};

}  // namespace dpml::net
