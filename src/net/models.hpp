// Hardware model parameters.
//
// These structs hold the constants of the performance model described in
// DESIGN.md §3. They are plain data: the charging rules live in simmpi (for
// host/NIC paths) and sharp (for in-network aggregation). Units: simulated
// picoseconds (sim::Time) for latencies, decimal GB/s for bandwidths,
// ns-per-byte for compute costs.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace dpml::net {

// Per-node host-side costs: memory copies, reductions, intra-node signalling.
struct HostModel {
  // Reduction compute cost per byte (one elementwise combine of two operands).
  double reduce_ns_per_byte = 0.20;
  // Per-process streaming copy bandwidth through shared memory (GB/s).
  double copy_bw = 5.0;
  // Copy bandwidth when source and destination are on different sockets.
  double copy_bw_xsocket = 3.0;
  // Startup cost of a shared-memory copy (the model's a').
  sim::Time copy_startup = sim::ns(150);
  // Extra one-way latency for crossing the socket interconnect (QPI/UPI).
  sim::Time xsocket_latency = sim::ns(300);
  // Aggregate memory bandwidth of the node (GB/s); concurrent copies queue
  // on this pipe once per-process bandwidth no longer binds.
  double mem_agg_bw = 60.0;
  // Cost of signalling another local process via a shared-memory flag.
  sim::Time flag_latency = sim::ns(100);
  // Leader-side per-contributor collection cost: checking a peer's flag and
  // pulling its cache lines when gathering contributions. Paid serially per
  // contributor by the gathering leader; crossing the socket interconnect
  // costs more (the overhead the socket-leader SHArP design avoids).
  sim::Time gather_poll = sim::ns(50);
  sim::Time gather_poll_xsocket = sim::ns(150);
};

// NIC / fabric endpoint model (LogGP-flavoured, see DESIGN.md §3).
struct NicModel {
  sim::Time o_send = sim::ns(300);   // per-message sender CPU overhead
  sim::Time o_recv = sim::ns(300);   // per-message receiver CPU overhead
  double proc_bw = 2.5;              // per-process injection bandwidth (GB/s)
  double link_bw = 12.0;             // node link bandwidth (GB/s)
  sim::Time per_msg_tx = sim::ns(10);  // NIC per-message processing (TX/RX)
  sim::Time wire_latency = sim::ns(150);   // per-link flight time
  sim::Time switch_latency = sim::ns(120); // per-switch forwarding delay
  std::size_t rendezvous_threshold = 16 * 1024;  // eager/rendezvous switch
};

// In-network aggregation (SHArP-like switch reduction trees).
struct SharpModel {
  // Fixed processing cost per aggregation-tree level per operation.
  sim::Time level_overhead = sim::ns(500);
  // Streaming aggregation cost per byte per tree level. SHArP hardware is
  // built for latency-sensitive small payloads; per-byte cost is well above
  // host-CPU reduction cost, which produces the observed ~4KB crossover.
  double agg_ns_per_byte = 2.0;
  // Maximum payload accepted per operation; larger vectors are rejected by
  // the runtime (the paper only evaluates SHArP for small messages).
  std::size_t max_payload = 1 << 20;
  // Bounded concurrency: number of simultaneously outstanding operations the
  // fabric supports. This is why DPML cannot simply give every leader its
  // own SHArP communicator (paper §4.3).
  int max_outstanding_ops = 4;
  // Maximum number of SHArP communicators (groups) the fabric can host.
  int max_groups = 8;
};

// Physical shape of one compute node.
struct NodeShape {
  int sockets = 2;
  int cores_per_socket = 14;
  int hcas = 1;

  int cores() const { return sockets * cores_per_socket; }
};

}  // namespace dpml::net
