#include "net/cluster.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace dpml::net {

namespace {

HostModel xeon_host() {
  HostModel h;
  h.reduce_ns_per_byte = 0.20;  // ~5 GB/s summation throughput per core
  h.copy_bw = 5.0;
  h.copy_bw_xsocket = 3.0;
  h.copy_startup = sim::ns(150);
  h.xsocket_latency = sim::ns(300);
  h.mem_agg_bw = 60.0;
  h.flag_latency = sim::ns(100);
  h.gather_poll = sim::ns(50);
  h.gather_poll_xsocket = sim::ns(150);
  return h;
}

HostModel knl_host() {
  // KNL cores are individually much weaker: lower per-core copy bandwidth,
  // higher reduction cost, slower signalling. Aggregate (MCDRAM) bandwidth
  // is high.
  HostModel h;
  h.reduce_ns_per_byte = 0.60;
  h.copy_bw = 2.0;
  h.copy_bw_xsocket = 2.0;  // single socket; field unused in practice
  h.copy_startup = sim::ns(400);
  h.xsocket_latency = sim::ns(0);
  // Effective bandwidth for the strided shared-memory access patterns of
  // gather/reduce phases; well below peak MCDRAM streaming bandwidth
  // (cache-mode misses, 64 concurrent accessors).
  h.mem_agg_bw = 30.0;
  h.flag_latency = sim::ns(200);
  h.gather_poll = sim::ns(100);  // slow cores poll slowly
  h.gather_poll_xsocket = sim::ns(100);  // single socket
  return h;
}

NicModel edr_ib() {
  // ConnectX-4 EDR via verbs: a single process does not saturate the link
  // (proc_bw << link_bw), so concurrent senders scale throughput at all
  // message sizes — Figure 1(b).
  NicModel n;
  n.o_send = sim::ns(300);
  n.o_recv = sim::ns(300);
  n.proc_bw = 2.5;
  n.link_bw = 12.0;
  n.per_msg_tx = sim::ns(10);
  n.wire_latency = sim::ns(150);
  n.switch_latency = sim::ns(120);
  n.rendezvous_threshold = 16 * 1024;
  return n;
}

NicModel opa_xeon() {
  // Omni-Path with PSM2 onload: high message rate for small messages
  // (o_send bound, scales with senders — Zone A) but a single sender gets
  // close to link bandwidth for large messages, so concurrency stops
  // helping — Zone C. Figure 1(c).
  NicModel n;
  n.o_send = sim::ns(250);
  n.o_recv = sim::ns(250);
  n.proc_bw = 10.5;
  n.link_bw = 11.0;
  n.per_msg_tx = sim::ns(15);
  n.wire_latency = sim::ns(150);
  n.switch_latency = sim::ns(110);
  n.rendezvous_threshold = 64 * 1024;
  return n;
}

NicModel opa_knl() {
  // Same fabric driven by slow KNL cores: higher per-message overheads and
  // lower per-process injection bandwidth — Figure 1(d).
  NicModel n = opa_xeon();
  n.o_send = sim::ns(800);
  n.o_recv = sim::ns(800);
  n.proc_bw = 3.0;
  return n;
}

SharpModel sharp_edr() {
  SharpModel s;
  s.level_overhead = sim::ns(500);
  s.agg_ns_per_byte = 2.0;
  s.max_payload = 1 << 20;
  s.max_outstanding_ops = 4;
  s.max_groups = 8;
  return s;
}

}  // namespace

ClusterConfig cluster_a() {
  ClusterConfig c;
  c.name = "A";
  c.total_nodes = 40;
  c.node = NodeShape{2, 14, 1};
  c.host = xeon_host();
  c.nic = edr_ib();
  c.nodes_per_leaf = 24;
  c.sharp = sharp_edr();
  return c;
}

ClusterConfig cluster_b() {
  ClusterConfig c;
  c.name = "B";
  c.total_nodes = 648;
  c.node = NodeShape{2, 14, 1};
  c.host = xeon_host();
  c.nic = edr_ib();
  c.nodes_per_leaf = 24;
  return c;
}

ClusterConfig cluster_c() {
  ClusterConfig c;
  c.name = "C";
  c.total_nodes = 752;
  c.node = NodeShape{2, 14, 1};
  c.host = xeon_host();
  c.nic = opa_xeon();
  c.nodes_per_leaf = 24;
  return c;
}

ClusterConfig cluster_d() {
  ClusterConfig c;
  c.name = "D";
  c.total_nodes = 508;
  c.node = NodeShape{1, 68, 1};
  c.host = knl_host();
  c.nic = opa_knl();
  c.nodes_per_leaf = 2;  // 320 leaf switches for 508 nodes (paper §6.1)
  c.oversubscription = 1.25;  // 5/4 oversubscribed fat tree (paper §6.1)
  return c;
}

ClusterConfig cluster_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (key == "a" || key == "cluster_a") return cluster_a();
  if (key == "b" || key == "cluster_b") return cluster_b();
  if (key == "c" || key == "cluster_c") return cluster_c();
  if (key == "d" || key == "cluster_d") return cluster_d();
  if (key == "test" || key == "t") return test_cluster();
  DPML_CHECK_MSG(false, "unknown cluster preset: " + name);
  return {};
}

std::vector<ClusterConfig> all_clusters() {
  return {cluster_a(), cluster_b(), cluster_c(), cluster_d()};
}

ClusterConfig with_rails(ClusterConfig cfg, int hcas) {
  DPML_CHECK(hcas >= 1);
  cfg.node.hcas = hcas;
  cfg.name += "+rail" + std::to_string(hcas);
  return cfg;
}

ClusterConfig with_nodes(ClusterConfig cfg, int nodes) {
  DPML_CHECK(nodes >= 1);
  if (nodes <= cfg.total_nodes) return cfg;
  cfg.total_nodes = nodes;
  cfg.name += "@" + std::to_string(nodes);
  return cfg;
}

ClusterConfig test_cluster(int total_nodes) {
  ClusterConfig c;
  c.name = "test";
  c.total_nodes = total_nodes;
  c.node = NodeShape{2, 2, 1};
  c.host = xeon_host();
  c.nic = edr_ib();
  c.nic.rendezvous_threshold = 4 * 1024;  // exercise both protocols in tests
  c.nodes_per_leaf = 4;
  c.sharp = sharp_edr();
  c.sharp->max_outstanding_ops = 2;
  c.sharp->max_groups = 4;
  return c;
}

}  // namespace dpml::net
