// AdaptiveTable: the selection-table text format extended with a
// contention-level dimension (docs/MODEL.md §12).
#include "adapt/adapt.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "core/selection.hpp"
#include "util/error.hpp"

namespace dpml::adapt {

namespace {

constexpr std::size_t kCatchAll = std::numeric_limits<std::size_t>::max();

// Persist leaders/pipeline_k exactly when the registered descriptor honours
// them (same rule as core::SelectionTable::serialize).
bool persists_params(coll::CollKind kind, const std::string& algo) {
  const coll::CollDescriptor* d =
      coll::CollRegistry::instance().find(kind, algo);
  return d != nullptr && d->caps.uses_leaders;
}

}  // namespace

AdaptiveTable::AdaptiveTable(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  validate();
}

void AdaptiveTable::validate() const {
  // Per (kind, level): thresholds strictly ascending, catch-all present and
  // last. Pairs may interleave freely in the entry list.
  for (const Entry& probe : entries_) {
    DPML_CHECK_MSG(probe.level >= 0 && probe.level < kLevels,
                   "adaptive table level out of range [0, " +
                       std::to_string(kLevels) + "): " +
                       std::to_string(probe.level));
  }
  for (coll::CollKind kind : coll::kAllCollKinds) {
    for (int level = 0; level < kLevels; ++level) {
      const Entry* last = nullptr;
      std::size_t prev = 0;
      bool first = true;
      for (const Entry& e : entries_) {
        if (e.kind != kind || e.level != level) continue;
        if (last != nullptr) {
          DPML_CHECK_MSG(last->max_bytes != kCatchAll,
                         "catch-all entry must be last per (kind, level)");
          DPML_CHECK_MSG(first || last->max_bytes > prev,
                         "adaptive thresholds must be strictly ascending "
                         "per (kind, level)");
          prev = last->max_bytes;
          first = false;
        }
        last = &e;
      }
      if (last != nullptr) {
        DPML_CHECK_MSG(last->max_bytes == kCatchAll,
                       "every populated (kind, level) needs a catch-all "
                       "entry");
      }
    }
  }
}

AdaptiveTable AdaptiveTable::defaults() {
  std::vector<Entry> entries;
  // Channel ladder for congested allreduce jobs: under max-min fair sharing
  // a job's aggregate share of a contended link grows with its concurrent
  // flow count, so rising contention buys more cring channels. No level-0
  // entries: a quiet fabric keeps the job's static plan.
  const int ladder[kLevels] = {0, 2, 4, 8};
  for (int level = 1; level < kLevels; ++level) {
    Entry e;
    e.kind = coll::CollKind::allreduce;
    e.level = level;
    e.max_bytes = kCatchAll;
    e.spec.algo = "cring";
    e.spec.leaders = ladder[level];
    e.spec.pipeline_k = 1;
    entries.push_back(e);
  }
  return AdaptiveTable(std::move(entries));
}

AdaptiveTable AdaptiveTable::from_selection(const core::SelectionTable& table) {
  std::vector<Entry> entries;
  for (const core::SelectionTable::Entry& s : table.entries()) {
    Entry e;
    e.kind = s.kind;
    e.level = 0;
    e.max_bytes = s.max_bytes;
    e.spec = s.spec;
    entries.push_back(e);
  }
  return AdaptiveTable(std::move(entries));
}

AdaptiveTable AdaptiveTable::parse(const std::string& text) {
  std::vector<Entry> entries;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank line
    Entry e;
    // Optional leading collective kind (bare lines are allreduce, the
    // legacy convention).
    if (coll::is_coll_kind_name(tok)) {
      e.kind = coll::coll_kind_by_name(tok);
      DPML_CHECK_MSG(static_cast<bool>(ls >> tok),
                     "adaptive entry missing size bound: " + line);
    }
    // Optional contention-level qualifier; plain lines are level 0, so
    // legacy selection tables parse unchanged.
    if (tok.rfind("@c", 0) == 0) {
      const std::string digits = tok.substr(2);
      DPML_CHECK_MSG(!digits.empty() &&
                         digits.find_first_not_of("0123456789") ==
                             std::string::npos,
                     "bad contention qualifier (want @c<level>): " + tok);
      e.level = std::stoi(digits);
      DPML_CHECK_MSG(static_cast<bool>(ls >> tok),
                     "adaptive entry missing size bound: " + line);
    }
    if (tok == "*") {
      e.max_bytes = kCatchAll;
    } else {
      DPML_CHECK_MSG(tok.rfind("<=", 0) == 0,
                     "adaptive entry must bound size with '<=' or '*': " +
                         tok);
      e.max_bytes = std::stoull(tok.substr(2));
    }
    std::string algo;
    DPML_CHECK_MSG(static_cast<bool>(ls >> algo),
                   "adaptive entry missing algorithm: " + line);
    e.spec.algo = coll::CollRegistry::instance().at(e.kind, algo).name;
    int leaders = 0;
    if (ls >> leaders) {
      e.spec.leaders = leaders;
      int k = 0;
      if (ls >> k) e.spec.pipeline_k = k;
    }
    entries.push_back(e);
  }
  return AdaptiveTable(std::move(entries));
}

std::string AdaptiveTable::serialize() const {
  std::ostringstream os;
  // The banner names the extension, so emit it only when the extension is
  // used: level-0-only tables serialize as plain legacy selection tables.
  bool leveled = false;
  for (const Entry& e : entries_) leveled = leveled || e.level != 0;
  if (leveled) {
    os << "# dpml adaptive selection table (@cN = contention level)\n";
  }
  for (const Entry& e : entries_) {
    if (e.kind != coll::CollKind::allreduce) {
      os << coll::coll_kind_name(e.kind) << " ";
    }
    // Level 0 serializes without a qualifier, so level-0-only tables
    // round-trip in the legacy selection-table format.
    if (e.level != 0) os << "@c" << e.level << " ";
    if (e.max_bytes == kCatchAll) {
      os << "*";
    } else {
      os << "<=" << e.max_bytes;
    }
    os << "  " << e.spec.algo;
    if (persists_params(e.kind, e.spec.algo)) {
      os << " " << e.spec.leaders << " " << e.spec.pipeline_k;
    }
    os << "\n";
  }
  return os.str();
}

const AdaptiveTable::Entry* AdaptiveTable::select(coll::CollKind kind,
                                                  std::size_t bytes,
                                                  int level) const {
  if (level >= kLevels) level = kLevels - 1;
  for (int lv = level; lv >= 0; --lv) {
    const Entry* catch_all = nullptr;
    for (const Entry& e : entries_) {
      if (e.kind != kind || e.level != lv) continue;
      if (bytes <= e.max_bytes) return &e;
      catch_all = &e;
    }
    // validate() guarantees a populated (kind, level) ends with a
    // catch-all, so reaching here with entries seen means bytes matched
    // nothing only if the level is unpopulated.
    if (catch_all != nullptr) return catch_all;
  }
  return nullptr;
}

void AdaptiveTable::record(coll::CollKind kind, int level,
                           const coll::CollSpec& spec) {
  DPML_CHECK_MSG(level >= 0 && level < kLevels,
                 "record: level out of range");
  for (Entry& e : entries_) {
    if (e.kind == kind && e.level == level && e.max_bytes == kCatchAll) {
      e.spec = spec;
      e.spec.fabric = nullptr;  // tables are machine-independent
      return;
    }
  }
  Entry e;
  e.kind = kind;
  e.level = level;
  e.max_bytes = kCatchAll;
  e.spec = spec;
  e.spec.fabric = nullptr;
  entries_.push_back(e);
}

}  // namespace dpml::adapt
