// Congestion-aware adaptive re-planning (docs/MODEL.md §12).
//
// PR 9's multi-tenant fabric measures what congestion does to a job —
// slowdown vs a solo baseline, barrier stall time, hot-link byte shares,
// failure events — but the selection layer still picked (algorithm,
// leader_count) from offline tables tuned on a pristine, solo cluster. This
// subsystem closes that loop: between collective iterations a job's observed
// signals are quantized to a discrete *contention level*, and an
// AdaptiveTable — the selection-table text format extended with a contention
// dimension — re-selects the job's (algorithm, leader_count) for the next
// iteration. Level 0 always reproduces the job's static plan (with the
// default table), so adaptive runs under zero background load and no
// failures stay bit-identical to static selection (golden-locked).
//
// Everything here is pure bookkeeping over numbers the tenant layer hands
// in; no clocks, no RNG, no engine state — re-planning is a deterministic
// function of the simulation, so adaptive runs remain byte-identical across
// reruns and sweep-executor widths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "coll/registry.hpp"

namespace dpml::core {
class SelectionTable;
}

namespace dpml::adapt {

// Discrete contention severity: 0 = pristine .. kLevels-1 = saturated.
constexpr int kLevels = 4;

// One observation window's feedback signals, as measured by the tenant
// layer between consecutive iteration barriers of one job.
struct Signals {
  // Foreign (other jobs + background) delivered bytes on the job's hottest
  // link, as a fraction of that link's capacity over the window.
  double foreign_util = 0.0;
  // Barrier stall time as a fraction of parties * window (arrival skew).
  double stall_frac = 0.0;
  // An ECMP way the job's flows may cross is down (failure observed).
  bool degraded = false;
};

// Quantize signals to a contention level. The stronger of foreign_util and
// stall_frac picks the base level (thresholds 0.05 / 0.25 / 0.55); an
// observed failure bumps the level by one (the degraded fabric has less
// core capacity than the utilization numbers alone suggest).
int classify(const Signals& s);

// A congestion-keyed selection table. The text format extends the
// core::SelectionTable grammar with an optional contention-level qualifier:
//
//   [KIND] [@cLEVEL] <=BYTES  ALGO [leaders] [pipeline_k]
//   [KIND] [@cLEVEL] *        ALGO [leaders] [pipeline_k]
//
// e.g.
//   *                ring            # legacy line: level 0
//   @c1 *            cring 2         # mild contention: 2 channels
//   allreduce @c3 *  cring 8
//
// Lines without @c parse as level 0, so every legacy selection table is a
// valid adaptive table (schema migration, docs/MODEL.md §12); level-0-only
// tables serialize back without qualifiers, i.e. in the legacy format.
// Per (kind, level): thresholds strictly ascending, catch-all required last.
class AdaptiveTable {
 public:
  struct Entry {
    coll::CollKind kind = coll::CollKind::allreduce;
    int level = 0;
    std::size_t max_bytes = 0;  // inclusive bound; SIZE_MAX = catch-all
    coll::CollSpec spec;
  };

  AdaptiveTable() = default;
  explicit AdaptiveTable(std::vector<Entry> entries);

  // The built-in ladder: no level-0 entries (the job's static plan stays in
  // charge when the fabric is quiet) and progressively more multi-channel
  // ring channels for congested allreduce jobs.
  static AdaptiveTable defaults();

  // Migration: every entry of a legacy selection table becomes a level-0
  // adaptive entry.
  static AdaptiveTable from_selection(const core::SelectionTable& table);

  // Parse / serialize the text format above. parse() throws
  // util::InvariantError on malformed input or unregistered algorithms.
  static AdaptiveTable parse(const std::string& text);
  std::string serialize() const;

  // Entry for (kind, bytes) at the highest populated level <= level;
  // nullptr when no level down to 0 covers the kind.
  const Entry* select(coll::CollKind kind, std::size_t bytes, int level) const;

  // Persist an observed choice: replace the catch-all spec for
  // (kind, level), appending the entry if absent. Recording the spec the
  // table itself selected is a no-op, so persisted tables are stable under
  // repeated runs.
  void record(coll::CollKind kind, int level, const coll::CollSpec& spec);

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  void validate() const;
  std::vector<Entry> entries_;
};

// A job's (algorithm, leader_count) plan.
struct Plan {
  std::string algo;
  int leaders = 1;

  friend bool operator==(const Plan& a, const Plan& b) {
    return a.algo == b.algo && a.leaders == b.leaders;
  }
  friend bool operator!=(const Plan& a, const Plan& b) { return !(a == b); }
};

// Per-job re-planning state machine. The tenant layer feeds one Signals
// observation per iteration barrier; replan() returns the plan for the next
// iteration. Re-plan trigger rules (docs/MODEL.md §12): the plan changes
// only when the classified level changes or the plan was marked stale by a
// failure event; the new plan is the table's entry for the level (falling
// back level-by-level), or the static plan when no entry covers it.
class Replanner {
 public:
  Replanner(const AdaptiveTable* table, coll::CollKind kind, Plan static_plan,
            std::size_t bytes);

  const Plan& replan(const Signals& s);
  // A failure/recovery event invalidated the current plan; the next
  // replan() re-selects even at an unchanged level.
  void mark_stale() { stale_ = true; }

  const Plan& plan() const { return plan_; }
  int level() const { return level_; }
  int replans() const { return replans_; }
  int max_level() const { return max_level_; }

  // Persistence feed: whether a plan was chosen at `level` this run, and
  // the last plan chosen there (AdaptiveTable::record folds these back into
  // the table — including level 0, which migrates the static plan in).
  bool observed(int level) const;
  const Plan& observed_plan(int level) const;

 private:
  const AdaptiveTable* table_;  // not owned; may be nullptr (static only)
  coll::CollKind kind_;
  Plan static_plan_;
  std::size_t bytes_;
  Plan plan_;
  int level_ = 0;
  int replans_ = 0;
  int max_level_ = 0;
  bool stale_ = false;
  bool seen_[kLevels] = {};
  Plan observed_[kLevels];
};

}  // namespace dpml::adapt
