// Signal quantization and the per-job re-planning state machine
// (docs/MODEL.md §12).
#include "adapt/adapt.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace dpml::adapt {

int classify(const Signals& s) {
  const double x = std::max(s.foreign_util, s.stall_frac);
  int level = 0;
  if (x >= 0.55) {
    level = 3;
  } else if (x >= 0.25) {
    level = 2;
  } else if (x >= 0.05) {
    level = 1;
  }
  // A failed way shrinks the core capacity under the job, which the
  // utilization ratios (measured against nominal capacities) understate.
  if (s.degraded && level < kLevels - 1) ++level;
  return level;
}

Replanner::Replanner(const AdaptiveTable* table, coll::CollKind kind,
                     Plan static_plan, std::size_t bytes)
    : table_(table),
      kind_(kind),
      static_plan_(std::move(static_plan)),
      bytes_(bytes),
      plan_(static_plan_) {
  DPML_CHECK_MSG(static_plan_.leaders >= 1,
                 "replanner: static plan needs leaders >= 1");
  // The job starts on its static plan at level 0 — itself an observation
  // worth persisting (migrates the static selection into the table).
  seen_[0] = true;
  observed_[0] = plan_;
}

const Plan& Replanner::replan(const Signals& s) {
  const int level = classify(s);
  if (level != level_ || stale_) {
    const AdaptiveTable::Entry* e =
        table_ != nullptr ? table_->select(kind_, bytes_, level) : nullptr;
    Plan next = e != nullptr ? Plan{e->spec.algo, e->spec.leaders}
                             : static_plan_;
    if (next != plan_) {
      plan_ = std::move(next);
      ++replans_;
    }
    level_ = level;
    stale_ = false;
  }
  seen_[level_] = true;
  observed_[level_] = plan_;
  max_level_ = std::max(max_level_, level);
  return plan_;
}

bool Replanner::observed(int level) const {
  DPML_CHECK_MSG(level >= 0 && level < kLevels, "observed: bad level");
  return seen_[level];
}

const Plan& Replanner::observed_plan(int level) const {
  DPML_CHECK_MSG(observed(level), "observed_plan: level never planned");
  return observed_[level];
}

}  // namespace dpml::adapt
