// Schedule-sensitivity probe algorithms (test-only, registered on demand).
//
// Two deliberately wildcard-heavy allreduce variants that make the
// explorer's job concrete:
//
//   mc-probe-arrival   PLANTED BUG: the root gathers contributions with
//                      MPI_ANY_SOURCE and folds them in *arrival* order.
//                      The canonical schedule happens to deliver in
//                      ascending comm-rank order, so single-schedule
//                      checking (simcheck alone) passes — but any reordered
//                      match or same-instant delivery swap produces a wrong
//                      non-commutative result. The explorer must find this
//                      within a small schedule budget (tests/mc_test.cpp).
//
//   mc-probe-sorted    The correct twin: identical wildcard communication
//                      pattern, but contributions land in per-source slots
//                      (indexed by comm rank) and fold in ascending order
//                      after all arrive. Passes under every schedule.
//
// Registration is imperative, NOT static-init: linking dpml_mc must not
// change the registry the default tools and golden tests see. dpmlmc
// --probe and dpmlsim --mc-replay call ensure_probe_algorithms() before
// touching the registry.
#pragma once

namespace dpml::mc {

void ensure_probe_algorithms();

}  // namespace dpml::mc
