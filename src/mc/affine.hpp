// The explorer's non-commutative reduction: affine-map composition.
//
// Each element packs an affine map x -> m*x + c into one integer (m in the
// high half, c in the low half, arithmetic mod 2^half). The reduction is
// function composition,
//
//   (m_l, c_l) op (m_r, c_r) = (m_l * m_r,  m_l * c_r + c_l)
//
// i.e. acc = acc ∘ in. Composition is associative but not commutative, and
// — unlike subtraction-style examples — it detects arbitrary transpositions
// of the operand sequence, not just parity. i32 and i64 only. This is the
// MPICH allreduce verification challenge's property op: under exhaustive
// schedule exploration any operand reordering flips the result
// (docs/CHECKING.md). tests/test_ops.hpp re-exports these helpers.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "simmpi/datatype.hpp"

namespace dpml::mc {

template <typename U>
U affine_pack(U m, U c) {
  constexpr int kHalf = static_cast<int>(sizeof(U)) * 4;
  const U mask = (U{1} << kHalf) - 1;
  return ((m & mask) << kHalf) | (c & mask);
}

template <typename U>
U affine_combine(U l, U r) {
  constexpr int kHalf = static_cast<int>(sizeof(U)) * 4;
  const U mask = (U{1} << kHalf) - 1;
  const U ml = (l >> kHalf) & mask;
  const U cl = l & mask;
  const U mr = (r >> kHalf) & mask;
  const U cr = r & mask;
  return affine_pack<U>(ml * mr, ml * cr + cl);
}

template <typename U>
void affine_fold(std::size_t count, simmpi::MutBytes acc,
                 simmpi::ConstBytes in) {
  for (std::size_t j = 0; j < count; ++j) {
    U a, b;
    std::memcpy(&a, acc.data() + j * sizeof(U), sizeof(U));
    std::memcpy(&b, in.data() + j * sizeof(U), sizeof(U));
    const U r = affine_combine<U>(a, b);
    std::memcpy(acc.data() + j * sizeof(U), &r, sizeof(U));
  }
}

// The Op handle (MPI_Op_create with commute = false).
inline simmpi::Op affine_op() {
  return simmpi::Op(
      [](simmpi::Dtype dt, std::size_t count, simmpi::MutBytes acc,
         simmpi::ConstBytes in) {
        if (acc.empty() || in.empty()) return;  // metadata-only
        if (dt == simmpi::Dtype::i32) {
          affine_fold<std::uint32_t>(count, acc, in);
        } else if (dt == simmpi::Dtype::i64) {
          affine_fold<std::uint64_t>(count, acc, in);
        } else {
          throw std::logic_error("affine_op supports i32/i64 only");
        }
      },
      /*commutative=*/false);
}

// Rank `rank`'s operand vector: per-element maps distinct in both rank and
// element index, with odd multipliers so no operand collapses the product.
inline std::vector<std::byte> affine_operand(simmpi::Dtype dt,
                                             std::size_t count, int rank) {
  const std::size_t esize = simmpi::dtype_size(dt);
  std::vector<std::byte> buf(count * esize);
  for (std::size_t j = 0; j < count; ++j) {
    const auto r = static_cast<std::uint64_t>(rank);
    const std::uint64_t m = 2 * (5 * r + 7 * j) + 3;
    const std::uint64_t c = 11 * r + 13 * j + 1;
    if (dt == simmpi::Dtype::i32) {
      const std::uint32_t v = affine_pack<std::uint32_t>(
          static_cast<std::uint32_t>(m), static_cast<std::uint32_t>(c));
      std::memcpy(buf.data() + j * esize, &v, esize);
    } else if (dt == simmpi::Dtype::i64) {
      const std::uint64_t v = affine_pack<std::uint64_t>(m, c);
      std::memcpy(buf.data() + j * esize, &v, esize);
    } else {
      throw std::logic_error("affine_operand supports i32/i64 only");
    }
  }
  return buf;
}

// Serial left-fold in ascending rank order — the reduction order MPI
// guarantees for non-commutative ops.
inline std::vector<std::byte> affine_reference(simmpi::Dtype dt,
                                               std::size_t count, int world) {
  std::vector<std::byte> ref = affine_operand(dt, count, 0);
  const simmpi::Op op = affine_op();
  for (int r = 1; r < world; ++r) {
    const auto in = affine_operand(dt, count, r);
    op.apply(dt, count, simmpi::MutBytes{ref}, simmpi::ConstBytes{in});
  }
  return ref;
}

}  // namespace dpml::mc
