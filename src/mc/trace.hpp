// Replayable schedule traces (dpmlmc counterexamples, dpmlsim --mc-replay).
//
// A trace is everything needed to deterministically re-execute one explored
// schedule: the run configuration, the frozen wildcard-channel set the
// explorer's independence relation used, and the choice vector (one entry
// per oracle choice point; trailing canonical zeros are trimmed, so the
// counterexample is the minimal divergence from the default schedule). The
// failure fields record what the schedule did — replay recomputes them and
// must observe the same outcome. JSON, hand-rolled both ways (no external
// dependencies; the writer and the parser live in trace.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "coll/registry.hpp"
#include "simmpi/datatype.hpp"

namespace dpml::mc {

// One (cluster, shape, collective) configuration the explorer runs. The op
// is always the affine non-commutative composition for reduction kinds
// (mc/affine.hpp) and the deterministic builtin pattern otherwise.
struct McConfig {
  std::string cluster = "test";
  int nodes = 1;
  int ppn = 2;
  coll::CollKind kind = coll::CollKind::allreduce;
  std::string algo = "auto";
  std::size_t count = 16;  // per-rank (per-block) element count
  simmpi::Dtype dt = simmpi::Dtype::i32;
  int leaders = 2;
  int root = 0;

  int np() const { return nodes * ppn; }
  std::string label() const;
};

struct Trace {
  McConfig config;
  // Choice-point decisions, in oracle-call order; index k picks alts[k]
  // (0 = canonical). Shorter than the run's choice-point count: every
  // unlisted choice is canonical.
  std::vector<int> choices;
  // Frozen wildcard channels (rank, ctx) the independence relation used;
  // replay seeds the oracle with these so choice points align exactly.
  std::vector<std::pair<int, int>> wild;
  // Observed outcome: "" (passed), "check", "deadlock", or "error".
  std::string failure_type;
  std::string failure_report;
  // Structured wait-cycle JSON (check::deadlock_report_json) when the
  // failure was a deadlock; empty otherwise.
  std::string deadlock_json;
};

std::string trace_json(const Trace& t);
void save_trace(const Trace& t, const std::string& path);
// Throws util::InvariantError on malformed input.
Trace parse_trace(const std::string& json);
Trace load_trace(const std::string& path);

}  // namespace dpml::mc
