#include "mc/probes.hpp"

#include <cstddef>
#include <utility>
#include <vector>

#include "coll/coll.hpp"
#include "coll/registry.hpp"
#include "sim/time.hpp"
#include "simmpi/machine.hpp"
#include "util/error.hpp"

namespace dpml::mc {

namespace {

using coll::CollArgs;
using coll::CollKind;
using coll::CollSpec;
using simmpi::Comm;
using simmpi::MutBytes;
using simmpi::Rank;
using simmpi::RecvResult;

// Root-gathered allreduce over MPI_ANY_SOURCE receives. `sorted` selects
// the correct fold (per-comm-rank slots, ascending order); the arrival
// variant folds each contribution as it matches — the planted
// schedule-sensitive bug (see probes.hpp).
sim::CoTask<void> allreduce_probe(CollArgs a, bool sorted) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await coll::copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const std::size_t nbytes = a.bytes();

  if (me != 0) {
    co_await r.send(c, 0, a.tag_base, nbytes, coll::as_const(a.recv));
    co_await r.recv(c, 0, a.tag_base + 1, nbytes, a.recv);
    co_return;
  }

  // Root. Let every contribution land in the unexpected queue before the
  // first wildcard receive posts: the source-matching race is then a real
  // choice point rather than an artifact of posting order.
  co_await r.engine().delay(sim::ms(1));
  auto slots = a.scratch(nbytes * static_cast<std::size_t>(p - 1));
  std::vector<int> slot_rank(static_cast<std::size_t>(p - 1), -1);
  for (int i = 0; i < p - 1; ++i) {
    MutBytes slot{};
    if (!slots.empty()) {
      slot = MutBytes{slots.data() + static_cast<std::size_t>(i) * nbytes,
                      nbytes};
    }
    const RecvResult res =
        co_await r.recv(c, simmpi::kAnySource, a.tag_base, nbytes, slot);
    slot_rank[static_cast<std::size_t>(i)] = c.rank_of_world(res.src);
    if (!sorted) {
      // BUG (by design): arrival order is not comm-rank order under every
      // schedule, so a non-commutative op folds operands transposed.
      co_await r.reduce_compute(nbytes);
      a.op.apply(a.dt, a.count, a.recv, coll::as_const(slot));
    }
  }
  if (sorted) {
    for (int cr = 1; cr < p; ++cr) {
      for (std::size_t i = 0; i < slot_rank.size(); ++i) {
        if (slot_rank[i] != cr) continue;
        MutBytes slot{};
        if (!slots.empty()) {
          slot = MutBytes{slots.data() + i * nbytes, nbytes};
        }
        co_await r.reduce_compute(nbytes);
        a.op.apply(a.dt, a.count, a.recv, coll::as_const(slot));
      }
    }
  }
  for (int dst = 1; dst < p; ++dst) {
    co_await r.send(c, dst, a.tag_base + 1, nbytes, coll::as_const(a.recv));
  }
}

}  // namespace

void ensure_probe_algorithms() {
  coll::ensure_builtin_collectives();
  auto& reg = coll::CollRegistry::instance();
  if (reg.find(CollKind::allreduce, "mc-probe-arrival") != nullptr) return;
  coll::CollCaps caps;
  // Below three ranks the root gathers a single contribution: no matching
  // race exists, so the planted bug is unreachable by any schedule.
  caps.min_comm_size = 3;
  reg.add(coll::CollDescriptor{
      "mc-probe-arrival", CollKind::allreduce, caps,
      [](CollArgs a, const CollSpec&) {
        return allreduce_probe(std::move(a), /*sorted=*/false);
      }});
  reg.add(coll::CollDescriptor{
      "mc-probe-sorted", CollKind::allreduce, caps,
      [](CollArgs a, const CollSpec&) {
        return allreduce_probe(std::move(a), /*sorted=*/true);
      }});
}

}  // namespace dpml::mc
