#include "mc/trace.hpp"

#include <cctype>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace dpml::mc {

namespace {

// ---------------------------------------------------------------------------
// JSON writer helpers.

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader — just enough for trace files.

struct JsonValue {
  enum class Type { null, boolean, number, string, array, object };
  Type type = Type::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    DPML_CHECK_MSG(pos_ == text_.size(), "mc trace: trailing JSON content");
    return v;
  }

 private:
  void ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    ws();
    DPML_CHECK_MSG(pos_ < text_.size(), "mc trace: truncated JSON");
    return text_[pos_];
  }

  void expect(char c) {
    DPML_CHECK_MSG(peek() == c, std::string("mc trace: expected '") + c +
                                    "' at offset " + std::to_string(pos_));
    ++pos_;
  }

  bool consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.type = JsonValue::Type::object;
        expect('{');
        if (peek() == '}') {
          expect('}');
          return v;
        }
        for (;;) {
          JsonValue key = value();
          DPML_CHECK_MSG(key.type == JsonValue::Type::string,
                         "mc trace: object key must be a string");
          expect(':');
          v.obj.emplace_back(key.str, value());
          if (peek() == ',') {
            expect(',');
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = JsonValue::Type::array;
        expect('[');
        if (peek() == ']') {
          expect(']');
          return v;
        }
        for (;;) {
          v.arr.push_back(value());
          if (peek() == ',') {
            expect(',');
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"': {
        v.type = JsonValue::Type::string;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
          char c = text_[pos_++];
          if (c == '\\') {
            DPML_CHECK_MSG(pos_ < text_.size(), "mc trace: truncated escape");
            const char e = text_[pos_++];
            switch (e) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case 'u': {
                DPML_CHECK_MSG(pos_ + 4 <= text_.size(),
                               "mc trace: truncated \\u escape");
                unsigned code = 0;
                std::size_t used = 0;
                try {
                  code = static_cast<unsigned>(
                      std::stoul(text_.substr(pos_, 4), &used, 16));
                } catch (const std::exception&) {
                  used = 0;
                }
                DPML_CHECK_MSG(used == 4, "mc trace: malformed \\u escape");
                pos_ += 4;
                c = static_cast<char>(code & 0xFF);
                break;
              }
              default: c = e; break;  // \" \\ \/ and friends
            }
          }
          v.str += c;
        }
        expect('"');
        return v;
      }
      default: {
        if (consume("true")) {
          v.type = JsonValue::Type::boolean;
          v.b = true;
          return v;
        }
        if (consume("false")) {
          v.type = JsonValue::Type::boolean;
          return v;
        }
        if (consume("null")) return v;
        v.type = JsonValue::Type::number;
        std::size_t used = 0;
        try {
          v.num = std::stod(text_.substr(pos_), &used);
        } catch (const std::exception&) {
          used = 0;
        }
        DPML_CHECK_MSG(used > 0, "mc trace: malformed JSON number at offset " +
                                     std::to_string(pos_));
        pos_ += used;
        return v;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  DPML_CHECK_MSG(v != nullptr, "mc trace: missing field '" + key + "'");
  return *v;
}

int as_int(const JsonValue& v, const std::string& what) {
  DPML_CHECK_MSG(v.type == JsonValue::Type::number,
                 "mc trace: field '" + what + "' must be a number");
  return static_cast<int>(v.num);
}

std::string as_str(const JsonValue& v, const std::string& what) {
  DPML_CHECK_MSG(v.type == JsonValue::Type::string,
                 "mc trace: field '" + what + "' must be a string");
  return v.str;
}

simmpi::Dtype dtype_by_name(const std::string& name) {
  constexpr simmpi::Dtype kAll[] = {simmpi::Dtype::f32, simmpi::Dtype::f64,
                                    simmpi::Dtype::i32, simmpi::Dtype::i64,
                                    simmpi::Dtype::u8};
  for (const simmpi::Dtype dt : kAll) {
    if (name == simmpi::dtype_name(dt)) return dt;
  }
  DPML_CHECK_MSG(false, "mc trace: unknown dtype '" + name + "'");
  return simmpi::Dtype::i32;
}

}  // namespace

std::string McConfig::label() const {
  std::ostringstream os;
  os << coll::coll_kind_name(kind) << "/" << algo << " np=" << np() << " ("
     << nodes << "x" << ppn << ") count=" << count << " dt="
     << simmpi::dtype_name(dt) << " leaders=" << leaders;
  return os.str();
}

std::string trace_json(const Trace& t) {
  std::ostringstream os;
  os << "{\n  \"mc_trace\": 1,\n  \"config\": {";
  os << "\"cluster\": \"" << escape(t.config.cluster) << "\", ";
  os << "\"nodes\": " << t.config.nodes << ", ";
  os << "\"ppn\": " << t.config.ppn << ", ";
  os << "\"kind\": \"" << coll::coll_kind_name(t.config.kind) << "\", ";
  os << "\"algo\": \"" << escape(t.config.algo) << "\", ";
  os << "\"count\": " << t.config.count << ", ";
  os << "\"dtype\": \"" << simmpi::dtype_name(t.config.dt) << "\", ";
  os << "\"leaders\": " << t.config.leaders << ", ";
  os << "\"root\": " << t.config.root << ", ";
  os << "\"op\": \"affine\", \"check\": \"strict\"},\n";
  os << "  \"choices\": [";
  for (std::size_t i = 0; i < t.choices.size(); ++i) {
    if (i > 0) os << ", ";
    os << t.choices[i];
  }
  os << "],\n  \"wild\": [";
  for (std::size_t i = 0; i < t.wild.size(); ++i) {
    if (i > 0) os << ", ";
    os << "[" << t.wild[i].first << ", " << t.wild[i].second << "]";
  }
  os << "],\n";
  os << "  \"failure\": {\"type\": \"" << escape(t.failure_type)
     << "\", \"report\": \"" << escape(t.failure_report) << "\"}";
  if (!t.deadlock_json.empty()) {
    os << ",\n  \"deadlock\": " << t.deadlock_json;
  }
  os << "\n}\n";
  return os.str();
}

void save_trace(const Trace& t, const std::string& path) {
  std::ofstream out(path);
  DPML_CHECK_MSG(out.good(), "cannot write mc trace to '" + path + "'");
  out << trace_json(t);
  DPML_CHECK_MSG(out.good(), "failed writing mc trace to '" + path + "'");
}

Trace parse_trace(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  DPML_CHECK_MSG(root.type == JsonValue::Type::object &&
                     root.find("mc_trace") != nullptr,
                 "not an mc trace (missing \"mc_trace\" marker)");
  Trace t;
  const JsonValue& cfg = require(root, "config");
  t.config.cluster = as_str(require(cfg, "cluster"), "cluster");
  t.config.nodes = as_int(require(cfg, "nodes"), "nodes");
  t.config.ppn = as_int(require(cfg, "ppn"), "ppn");
  t.config.kind = coll::coll_kind_by_name(as_str(require(cfg, "kind"), "kind"));
  t.config.algo = as_str(require(cfg, "algo"), "algo");
  t.config.count =
      static_cast<std::size_t>(as_int(require(cfg, "count"), "count"));
  t.config.dt = dtype_by_name(as_str(require(cfg, "dtype"), "dtype"));
  t.config.leaders = as_int(require(cfg, "leaders"), "leaders");
  t.config.root = as_int(require(cfg, "root"), "root");
  for (const JsonValue& c : require(root, "choices").arr) {
    t.choices.push_back(as_int(c, "choices[]"));
  }
  for (const JsonValue& w : require(root, "wild").arr) {
    DPML_CHECK_MSG(w.type == JsonValue::Type::array && w.arr.size() == 2,
                   "mc trace: wild entries are [rank, ctx] pairs");
    t.wild.emplace_back(as_int(w.arr[0], "wild[0]"),
                        as_int(w.arr[1], "wild[1]"));
  }
  if (const JsonValue* f = root.find("failure")) {
    if (const JsonValue* ty = f->find("type")) t.failure_type = ty->str;
    if (const JsonValue* rp = f->find("report")) t.failure_report = rp->str;
  }
  return t;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  DPML_CHECK_MSG(in.good(), "cannot read mc trace '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_trace(buf.str());
}

}  // namespace dpml::mc
