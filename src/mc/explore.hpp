// Replay-based schedule explorer over the deterministic engine.
//
// State-space model: a schedule is the vector of decisions taken at the
// oracle's choice points (sim/oracle.hpp) — same-instant message-delivery
// pops and MPI_ANY_SOURCE unexpected-queue matches. The engine is
// deterministic between choice points, so a schedule is replayed exactly by
// re-running the collective with the recorded prefix; the explorer never
// snapshots simulator state (SimGrid-MC style stateless search).
//
// Independence relation (pruned, counted in McStats::pruned):
//   - deliveries into distinct (rank, ctx) channels commute — they touch
//     disjoint Matcher queues;
//   - same-source deliveries into one channel are FIFO — never
//     alternatives;
//   - delivery order into a channel that never posts a wildcard receive is
//     unobservable (matching is then deterministic per source).
// The wildcard-channel set is collected on a canonical pre-pass and frozen,
// so every schedule sees identical choice points and recorded prefixes
// align (the freeze is conservative: a schedule-dependent wildcard post on
// a brand-new channel would be missed — no in-tree algorithm does that).
//
// Every schedule runs under simcheck strict with real data; a CheckError
// (wrong non-commutative result, semantics violation, or wait-cycle
// deadlock) becomes a minimal counterexample Trace (mc/trace.hpp) that
// `dpmlsim --mc-replay` reproduces. Search is DFS over the choice tree with
// schedule-count and wall-clock budgets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mc/trace.hpp"

namespace dpml::mc {

struct McBudget {
  std::uint64_t max_schedules = 4096;
  std::uint64_t max_millis = 0;  // wall-clock cap; 0 = unlimited
};

struct McStats {
  std::uint64_t schedules = 0;      // schedules actually executed
  std::uint64_t choice_points = 0;  // oracle calls, summed over schedules
  std::uint64_t branches = 0;       // alternative schedules enqueued
  std::uint64_t pruned = 0;         // equivalent siblings not expanded
  std::uint64_t max_frontier = 0;   // peak DFS stack size
  bool budget_exhausted = false;

  // Share of the naive branch space cut by the independence relation.
  double pruned_pct() const {
    const double total = static_cast<double>(pruned + branches);
    return total > 0 ? 100.0 * static_cast<double>(pruned) / total : 0.0;
  }
};

struct McOutcome {
  bool ok = true;  // every explored schedule passed strict checking
  McStats stats;
  std::optional<Trace> counterexample;  // first failing schedule
};

// Explore all non-equivalent schedules of one configured collective run
// (or as many as the budget allows). Stops at the first failure.
McOutcome explore(const McConfig& cfg, const McBudget& budget);

// Re-execute exactly one schedule: the trace's choice vector with its
// frozen wildcard set. Returns the observed outcome (failure fields filled
// the same way explore() fills a counterexample).
Trace run_schedule(const Trace& t);

}  // namespace dpml::mc
