#include "mc/explore.hpp"

#include <chrono>
#include <cstring>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "coll/coll.hpp"
#include "coll/registry.hpp"
#include "core/api.hpp"
#include "mc/affine.hpp"
#include "mc/probes.hpp"
#include "net/cluster.hpp"
#include "sharp/sharp.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/verify.hpp"
#include "util/error.hpp"

namespace dpml::mc {

namespace {

using coll::CollKind;

// Wildcard channels seen across the exploration: (world rank, ctx).
using WildSet = std::set<std::pair<int, int>>;

// The oracle explore()/run_schedule() drive: replays a choice prefix
// (canonical-0 beyond it), records every choice point, and answers the
// independence relation from the frozen wildcard set. In collect mode it
// gathers wildcard channels instead (canonical pre-pass; no pop branching,
// so the frozen set is complete before any branch executes).
class RecordingOracle final : public sim::ScheduleOracle {
 public:
  struct Rec {
    std::size_t nalts = 0;
    std::size_t chosen = 0;
  };

  RecordingOracle(const std::vector<int>& prefix, WildSet* wild, bool collect)
      : prefix_(prefix), wild_(wild), collect_(collect) {}

  std::size_t choose(sim::ChoiceKind,
                     const std::vector<sim::ChoiceAlt>& alts) override {
    std::size_t pick = 0;
    if (depth_ < prefix_.size()) {
      const int want = prefix_[depth_];
      DPML_CHECK_MSG(
          want >= 0 && static_cast<std::size_t>(want) < alts.size(),
          "mc schedule diverged: choice point " + std::to_string(depth_) +
              " asks for alternative " + std::to_string(want) + " of " +
              std::to_string(alts.size()) +
              " (trace does not match this build/configuration)");
      pick = static_cast<std::size_t>(want);
    }
    recs_.push_back({alts.size(), pick});
    ++depth_;
    return pick;
  }

  void note_wildcard_recv(int rank, int ctx) override {
    if (collect_) wild_->insert({rank, ctx});
  }

  bool race_matters(int rank, int ctx) override {
    return !collect_ && wild_->count({rank, ctx}) != 0;
  }

  void note_pruned(std::uint64_t n) override { pruned_ += n; }

  const std::vector<Rec>& recs() const { return recs_; }
  std::uint64_t pruned() const { return pruned_; }

 private:
  const std::vector<int>& prefix_;
  WildSet* wild_;
  bool collect_;
  std::size_t depth_ = 0;
  std::vector<Rec> recs_;
  std::uint64_t pruned_ = 0;
};

// The per-rank coroutine: takes everything by value so no lambda capture
// has to live across a suspension point.
sim::CoTask<void> rank_main(coll::CollArgs a, CollKind kind,
                            coll::CollSpec spec) {
  co_await core::run_collective(kind, a, spec);
}

struct RunResult {
  std::vector<RecordingOracle::Rec> recs;
  std::uint64_t pruned = 0;
  std::string failure_type;  // "" | "check" | "deadlock" | "error"
  std::string failure_report;
  std::string deadlock_json;
};

// Execute one schedule of the configured collective under strict checking.
RunResult run_one(const McConfig& cfg, const std::vector<int>& prefix,
                  WildSet* wild, bool collect) {
  RunResult out;
  RecordingOracle oracle(prefix, wild, collect);

  net::ClusterConfig cluster = net::cluster_by_name(cfg.cluster);
  if (cluster.total_nodes < cfg.nodes) {
    cluster = net::with_nodes(cluster, cfg.nodes);
  }
  simmpi::RunOptions ropt;
  ropt.with_data = true;
  ropt.check_level = check::CheckLevel::strict;
  ropt.oracle = &oracle;

  try {
    simmpi::Machine m(cluster, cfg.nodes, cfg.ppn, ropt);
    const int world = m.world_size();
    DPML_CHECK_MSG(cfg.root >= 0 && cfg.root < world, "mc root out of range");
    const coll::CollDescriptor& d =
        coll::CollRegistry::instance().at(cfg.kind, cfg.algo);
    coll::CollSpec spec;
    spec.algo = cfg.algo;
    spec.leaders = cfg.leaders;
    std::optional<sharp::SharpFabric> fabric;
    if ((d.caps.needs_fabric || cfg.algo == "dpml-auto") &&
        cluster.has_sharp()) {
      fabric.emplace(m);
      spec.fabric = &*fabric;
    }

    // Buffers, shaped per kind (mirrors core/measure): the reduction kinds
    // carry the affine non-commutative operands, everything else the
    // deterministic builtin pattern. Barrier moves no data.
    const std::size_t count = cfg.kind == CollKind::barrier ? 0 : cfg.count;
    const std::size_t esize = simmpi::dtype_size(cfg.dt);
    const std::size_t bytes = count * esize;
    const auto uworld = static_cast<std::size_t>(world);
    std::vector<std::vector<std::byte>> sendb(uworld), recvb(uworld);
    for (int w = 0; w < world; ++w) {
      auto& sb = sendb[static_cast<std::size_t>(w)];
      auto& rb = recvb[static_cast<std::size_t>(w)];
      switch (cfg.kind) {
        case CollKind::allreduce:
        case CollKind::reduce:
          sb = affine_operand(cfg.dt, count, w);
          rb.resize(bytes);
          break;
        case CollKind::reduce_scatter:
          // Full count*world input per rank; each keeps its own block.
          sb = affine_operand(cfg.dt, count * uworld, w);
          rb.resize(bytes);
          break;
        case CollKind::bcast:
          rb.resize(bytes);
          if (w == cfg.root) {
            rb = simmpi::make_operand(cfg.dt, count, cfg.root,
                                      simmpi::ReduceOp::sum, 1);
          }
          break;
        case CollKind::alltoall:
          sb.reserve(uworld * bytes);
          for (int dst = 0; dst < world; ++dst) {
            const auto block = simmpi::make_operand(
                cfg.dt, count, w * world + dst, simmpi::ReduceOp::sum, 1);
            sb.insert(sb.end(), block.begin(), block.end());
          }
          rb.resize(uworld * bytes);
          break;
        case CollKind::allgather:
          sb = simmpi::make_operand(cfg.dt, count, w, simmpi::ReduceOp::sum,
                                    1);
          rb.resize(uworld * bytes);
          break;
        case CollKind::gather:
          sb = simmpi::make_operand(cfg.dt, count, w, simmpi::ReduceOp::sum,
                                    1);
          if (w == cfg.root) rb.resize(uworld * bytes);
          break;
        case CollKind::scatter:
          if (w == cfg.root) {
            sb.reserve(uworld * bytes);
            for (int dst = 0; dst < world; ++dst) {
              const auto block = simmpi::make_operand(
                  cfg.dt, count, cfg.root * world + dst,
                  simmpi::ReduceOp::sum, 1);
              sb.insert(sb.end(), block.begin(), block.end());
            }
          }
          rb.resize(bytes);
          break;
        case CollKind::barrier:
          break;
      }
    }

    const bool reduction = cfg.kind == CollKind::allreduce ||
                           cfg.kind == CollKind::reduce ||
                           cfg.kind == CollKind::reduce_scatter;
    m.run([&](simmpi::Rank& r) {
      const auto w = static_cast<std::size_t>(r.world_rank());
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = count;
      a.dt = cfg.dt;
      a.op = reduction ? affine_op() : simmpi::Op(simmpi::ReduceOp::sum);
      a.root = cfg.root;
      a.send = sendb[w];
      a.recv = recvb[w];
      return rank_main(std::move(a), cfg.kind, spec);
    });
  } catch (const check::CheckError& e) {
    out.failure_type = e.deadlock_json().empty() ? "check" : "deadlock";
    out.failure_report = e.what();
    out.deadlock_json = e.deadlock_json();
  } catch (const util::DeadlockError& e) {
    // Only reachable without a checker; kept for robustness.
    out.failure_type = "deadlock";
    out.failure_report = e.what();
  }
  out.recs = oracle.recs();
  out.pruned = oracle.pruned();
  return out;
}

std::vector<int> executed_choices(const RunResult& r) {
  std::vector<int> choices;
  choices.reserve(r.recs.size());
  for (const auto& rec : r.recs) {
    choices.push_back(static_cast<int>(rec.chosen));
  }
  // Trailing canonical zeros are implicit: trimming them yields the minimal
  // divergence from the default schedule.
  while (!choices.empty() && choices.back() == 0) choices.pop_back();
  return choices;
}

Trace make_trace(const McConfig& cfg, std::vector<int> choices,
                 const WildSet& wild, const RunResult& r) {
  Trace t;
  t.config = cfg;
  t.choices = std::move(choices);
  t.wild.assign(wild.begin(), wild.end());
  t.failure_type = r.failure_type;
  t.failure_report = r.failure_report;
  t.deadlock_json = r.deadlock_json;
  return t;
}

}  // namespace

McOutcome explore(const McConfig& cfg, const McBudget& budget) {
  McOutcome out;
  WildSet wild;
  const auto t0 = std::chrono::steady_clock::now();  // dpmllint: allow(wall-clock)
  const auto expired = [&] {
    if (budget.max_millis == 0) return false;
    const auto dt = std::chrono::steady_clock::now() - t0;  // dpmllint: allow(wall-clock)
    return std::chrono::duration_cast<std::chrono::milliseconds>(dt).count() >=
           static_cast<long long>(budget.max_millis);
  };

  // Canonical pre-pass: collect (and freeze) the wildcard-channel set, so
  // every subsequent schedule sees identical choice points.
  const std::vector<int> empty;
  RunResult first = run_one(cfg, empty, &wild, /*collect=*/true);
  ++out.stats.schedules;
  out.stats.pruned += first.pruned;
  out.stats.choice_points += first.recs.size();
  if (!first.failure_type.empty()) {
    out.ok = false;
    out.counterexample = make_trace(cfg, {}, wild, first);
    return out;
  }

  std::vector<std::vector<int>> frontier;
  frontier.push_back({});
  while (!frontier.empty()) {
    if (out.stats.schedules >= budget.max_schedules || expired()) {
      out.stats.budget_exhausted = true;
      break;
    }
    const std::vector<int> prefix = std::move(frontier.back());
    frontier.pop_back();
    const RunResult r = run_one(cfg, prefix, &wild, /*collect=*/false);
    ++out.stats.schedules;
    out.stats.pruned += r.pruned;
    out.stats.choice_points += r.recs.size();
    if (!r.failure_type.empty()) {
      out.ok = false;
      out.counterexample = make_trace(cfg, executed_choices(r), wild, r);
      return out;
    }
    // Branch at every choice point this schedule reached beyond its prefix:
    // each unexplored alternative becomes a new prefix (sleep-set style —
    // alternatives before the prefix were enqueued by ancestor schedules
    // and are never re-expanded here).
    for (std::size_t d = prefix.size(); d < r.recs.size(); ++d) {
      for (std::size_t k = 1; k < r.recs[d].nalts; ++k) {
        std::vector<int> child;
        child.reserve(d + 1);
        for (std::size_t i = 0; i < d; ++i) {
          child.push_back(static_cast<int>(r.recs[i].chosen));
        }
        child.push_back(static_cast<int>(k));
        frontier.push_back(std::move(child));
        ++out.stats.branches;
      }
    }
    if (frontier.size() > out.stats.max_frontier) {
      out.stats.max_frontier = frontier.size();
    }
  }
  return out;
}

Trace run_schedule(const Trace& t) {
  ensure_probe_algorithms();
  WildSet wild(t.wild.begin(), t.wild.end());
  const RunResult r = run_one(t.config, t.choices, &wild, /*collect=*/false);
  Trace obs = make_trace(t.config, executed_choices(r), wild, r);
  return obs;
}

}  // namespace dpml::mc
