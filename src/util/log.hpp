// Minimal leveled logging. Off by default so benchmarks stay quiet;
// tests and examples flip the level when diagnosing.
#pragma once

#include <sstream>
#include <string>

namespace dpml::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

}  // namespace dpml::util

#define DPML_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::dpml::util::log_level())) {              \
      std::ostringstream dpml_log_ss;                               \
      dpml_log_ss << expr;                                          \
      ::dpml::util::log_message(level, dpml_log_ss.str());          \
    }                                                               \
  } while (0)

#define DPML_DEBUG(expr) DPML_LOG(::dpml::util::LogLevel::kDebug, expr)
#define DPML_INFO(expr) DPML_LOG(::dpml::util::LogLevel::kInfo, expr)
#define DPML_WARN(expr) DPML_LOG(::dpml::util::LogLevel::kWarn, expr)
#define DPML_ERROR(expr) DPML_LOG(::dpml::util::LogLevel::kError, expr)
