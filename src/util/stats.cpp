#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dpml::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  DPML_CHECK(q >= 0.0 && q <= 100.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double geomean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples) {
    if (s <= 0.0) return 0.0;
    acc += std::log(s);
  }
  return std::exp(acc / static_cast<double>(samples.size()));
}

}  // namespace dpml::util
