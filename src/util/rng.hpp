// Deterministic random number generation.
//
// Every stochastic choice in the repository flows through SplitMix64 so that
// a (seed, stream) pair fully determines a run. The simulator itself is
// deterministic; randomness is only used to fill data buffers and to drive
// synthetic workloads (miniAMR refinement decisions).
#pragma once

#include <cstdint>

namespace dpml::util {

// SplitMix64: tiny, fast, statistically solid for our purposes, and trivially
// seedable per (rank, stream) without correlation concerns.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  // Derive an independent stream: mixes `stream` into the seed.
  SplitMix64(std::uint64_t seed, std::uint64_t stream)
      : SplitMix64(seed ^ (0xbf58476d1ce4e5b9ull * (stream + 1))) {}

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

 private:
  std::uint64_t state_;
};

}  // namespace dpml::util
