// Deterministic random number generation.
//
// Every stochastic choice in the repository flows through SplitMix64 so that
// a (seed, stream) pair fully determines a run. The simulator itself is
// deterministic; randomness is used to fill data buffers, to drive synthetic
// workloads (miniAMR refinement decisions), and to realize machine
// perturbations (src/perturb).
//
// Seed-derivation scheme. Subsystems that need many independent draw
// streams from one user-facing seed derive them in two documented steps
// rather than ad hoc:
//
//   purpose seed  P = SplitMix64(seed, purpose).next_u64()
//   sub-stream    SplitMix64(P, (uint64(uint32(rank)) << 32) | uint32(op))
//
// where `purpose` is a small per-subsystem enum constant (e.g.
// perturb::Perturbation::Purpose: 1 = jitter, 2 = skew, 3 = stragglers) and
// `op` is a per-rank draw counter. Each (seed, purpose, rank, op) tuple thus
// names exactly one draw, independent of the event interleaving of other
// ranks — the property the run-to-run reproducibility tests lock in.
#pragma once

#include <cstdint>

namespace dpml::util {

// SplitMix64: tiny, fast, statistically solid for our purposes, and trivially
// seedable per (rank, stream) without correlation concerns.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  // Derive an independent stream: mixes `stream` into the seed.
  SplitMix64(std::uint64_t seed, std::uint64_t stream)
      : SplitMix64(seed ^ (0xbf58476d1ce4e5b9ull * (stream + 1))) {}

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

 private:
  std::uint64_t state_;
};

}  // namespace dpml::util
