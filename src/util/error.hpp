// Error handling primitives shared by all dpml modules.
//
// Simulation code distinguishes two failure classes:
//  * programming errors (bad arguments, broken invariants) -> DPML_CHECK,
//    throws dpml::util::InvariantError; tests assert on these.
//  * simulated-runtime errors (truncation, deadlock, resource exhaustion)
//    -> dedicated exception types so failure-injection tests can match them.
#pragma once

#include <stdexcept>
#include <string>

namespace dpml::util {

// Thrown when a DPML_CHECK invariant fails.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

// Thrown by the simulated MPI runtime for message-level errors
// (e.g. receiving into a too-small buffer).
class MessageError : public std::runtime_error {
 public:
  explicit MessageError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when the event queue drains while simulated processes are still
// blocked: the simulated program has deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": check failed: " + expr +
                       (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace dpml::util

#define DPML_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::dpml::util::raise_invariant(#expr, __FILE__, __LINE__, "");   \
    }                                                                 \
  } while (0)

#define DPML_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::dpml::util::raise_invariant(#expr, __FILE__, __LINE__, msg);  \
    }                                                                 \
  } while (0)
