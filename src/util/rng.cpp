#include "util/rng.hpp"

#include "util/error.hpp"

namespace dpml::util {

std::uint64_t SplitMix64::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double SplitMix64::next_double() {
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

std::int64_t SplitMix64::next_in(std::int64_t lo, std::int64_t hi) {
  DPML_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

}  // namespace dpml::util
