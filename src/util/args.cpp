#include "util/args.hpp"

#include <cctype>

#include "util/error.hpp"

namespace dpml::util {

Args::Args(int argc, char** argv) {
  DPML_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& key) const {
  used_[key] = true;
  return flags_.count(key) != 0;
}

std::string Args::get(const std::string& key, const std::string& def) const {
  used_[key] = true;
  auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

long long Args::get_int(const std::string& key, long long def) const {
  const std::string v = get(key);
  return v.empty() ? def : std::stoll(v);
}

double Args::get_double(const std::string& key, double def) const {
  const std::string v = get(key);
  return v.empty() ? def : std::stod(v);
}

bool Args::get_bool(const std::string& key, bool def) const {
  const std::string v = get(key);
  if (v.empty()) return def;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::size_t Args::parse_bytes(const std::string& text) {
  DPML_CHECK_MSG(!text.empty(), "empty size");
  std::size_t mult = 1;
  std::string digits = text;
  const char suffix =
      static_cast<char>(std::toupper(static_cast<unsigned char>(text.back())));
  if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
    mult = suffix == 'K' ? (1ull << 10)
                         : suffix == 'M' ? (1ull << 20) : (1ull << 30);
    digits.pop_back();
  }
  DPML_CHECK_MSG(!digits.empty(), "bad size: " + text);
  return std::stoull(digits) * mult;
}

std::size_t Args::get_bytes(const std::string& key, std::size_t def) const {
  const std::string v = get(key);
  return v.empty() ? def : parse_bytes(v);
}

std::vector<std::size_t> Args::parse_size_range(const std::string& text) {
  std::vector<std::string> parts;
  std::string cur;
  for (char ch : text) {
    if (ch == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  parts.push_back(cur);
  DPML_CHECK_MSG(parts.size() == 2 || parts.size() == 3,
                 "size range must be lo:hi[:factor]: " + text);
  const std::size_t lo = parse_bytes(parts[0]);
  const std::size_t hi = parse_bytes(parts[1]);
  const std::size_t factor =
      parts.size() == 3 ? std::stoull(parts[2]) : 4;
  DPML_CHECK_MSG(lo >= 1 && hi >= lo && factor >= 2, "bad size range: " + text);
  std::vector<std::size_t> out;
  for (std::size_t b = lo; b <= hi; b *= factor) out.push_back(b);
  return out;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : flags_) {
    (void)v;
    if (!used_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace dpml::util
