#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace dpml::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  DPML_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return cell(ss.str());
}

Table& Table::cell(std::size_t v) { return cell(std::to_string(v)); }
Table& Table::cell(long long v) { return cell(std::to_string(v)); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& v = i < r.size() ? r[i] : std::string{};
      if (looks_numeric(v)) {
        os << std::setw(static_cast<int>(widths[i])) << std::right << v;
      } else {
        os << std::setw(static_cast<int>(widths[i])) << std::left << v;
      }
      os << (i + 1 == widths.size() ? "" : "  ");
    }
    os << "\n";
  };
  emit(header_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 != widths.size()) rule += "  ";
  }
  os << rule << "\n";
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << r[i] << (i + 1 == r.size() ? "" : ",");
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string format_bytes(std::size_t bytes) {
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

std::string format_seconds(double s) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(2);
  if (s < 1e-6) {
    ss << s * 1e9 << "ns";
  } else if (s < 1e-3) {
    ss << s * 1e6 << "us";
  } else if (s < 1.0) {
    ss << s * 1e3 << "ms";
  } else {
    ss << s << "s";
  }
  return ss.str();
}

}  // namespace dpml::util
