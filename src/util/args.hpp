// Minimal command-line flag parser for the tools and examples.
//
// Supports "--key value", "--key=value", and bare positional arguments.
// Typed getters with defaults; unknown-flag detection for helpful errors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dpml::util {

class Args {
 public:
  Args(int argc, char** argv);

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def = "") const;
  long long get_int(const std::string& key, long long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def = false) const;

  // Parse a byte size with optional K/M/G suffix ("64K" -> 65536).
  static std::size_t parse_bytes(const std::string& text);
  std::size_t get_bytes(const std::string& key, std::size_t def) const;

  // Parse a size range "4:1M[:4]" (lo:hi[:factor]) into a geometric sweep.
  static std::vector<std::size_t> parse_size_range(const std::string& text);

  // Keys that were provided but never queried (typo detection).
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  // Ordered: unused() reports typos in deterministic (sorted) order.
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace dpml::util
