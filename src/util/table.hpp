// Aligned console tables and CSV emission for the benchmark harness.
//
// Every figure-reproduction bench prints two artifacts:
//   1. a human-readable aligned table (what the paper's figure plots), and
//   2. a CSV block (machine-readable, for replotting).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dpml::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Begin a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(double v, int precision = 2);
  Table& cell(std::size_t v);
  Table& cell(long long v);

  // Render with column alignment (numbers right-aligned heuristically).
  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format byte counts the way the paper's x-axes do: 4, 1K, 64K, 1M.
std::string format_bytes(std::size_t bytes);

// Format a duration in seconds with an adaptive unit (ns/us/ms/s).
std::string format_seconds(double s);

}  // namespace dpml::util
