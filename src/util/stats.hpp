// Small statistics helpers used by the benchmark harness and the tuner.
#pragma once

#include <cstddef>
#include <vector>

namespace dpml::util {

// Online accumulator (Welford) for mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile over a copy of the samples (linear interpolation, q in [0,100]).
double percentile(std::vector<double> samples, double q);

// Geometric mean; returns 0 if any sample <= 0 or the set is empty.
double geomean(const std::vector<double>& samples);

}  // namespace dpml::util
