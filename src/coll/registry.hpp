// Op-generic collective registry.
//
// Every collective algorithm in the library self-describes through a
// CollDescriptor — a (kind, name) identity, capability flags, and a
// coroutine factory — and registers itself at static-init time from its own
// translation unit (see the CollRegistration objects at the bottom of the
// src/coll/*.cpp implementation files). The layers above (core dispatch,
// selection tables, the tuner, dpmlsim, the benches) enumerate and dispatch
// through the registry instead of per-op switch ladders, so adding an
// algorithm — or a whole collective kind — never touches the dispatcher.
//
// The nine collective kinds share one entry currency: CollArgs (vector
// length, dtype, op, buffers, root) plus a CollSpec naming the algorithm and
// its runtime parameters. `count` is interpreted per kind (see coll.hpp):
// the full vector for allreduce/reduce/bcast, the per-block element count
// for alltoall/allgather/reduce_scatter/gather/scatter, and 0 for barrier.
// Factories adapt CollArgs to the per-op argument structs (ReduceArgs,
// BcastArgs, AlltoallArgs, GatherArgs, ...).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "coll/coll.hpp"

namespace dpml::sharp {
class SharpFabric;
}

namespace dpml::coll {

enum class CollKind {
  allreduce,
  reduce,
  bcast,
  alltoall,
  allgather,
  reduce_scatter,
  gather,
  scatter,
  barrier,
};

inline constexpr CollKind kAllCollKinds[] = {
    CollKind::allreduce,      CollKind::reduce,  CollKind::bcast,
    CollKind::alltoall,       CollKind::allgather,
    CollKind::reduce_scatter, CollKind::gather,  CollKind::scatter,
    CollKind::barrier};

const char* coll_kind_name(CollKind k);
// Throws util::InvariantError listing the valid kind names.
CollKind coll_kind_by_name(const std::string& name);
bool is_coll_kind_name(const std::string& name);

// Generic runtime parameters for one collective invocation. `algo` is a
// registered descriptor name for the kind being dispatched; the remaining
// fields are interpreted per the descriptor's capability flags (a design
// without leaders simply ignores `leaders`, etc.).
struct CollSpec {
  std::string algo = "auto";
  int leaders = 4;
  int pipeline_k = 1;
  InterAlgo inter = InterAlgo::automatic;
  sharp::SharpFabric* fabric = nullptr;  // required by needs_fabric designs

  // Human-readable label, e.g. "dpml(l=16,k=4)"; consults the registry's
  // capability flags to decide which parameters are significant.
  std::string label(CollKind kind) const;
};

// Capability flags: what a design needs from the platform and which CollSpec
// parameters it honours. The tuner and selection layers drive sweeps and
// serialization off these instead of hardcoded per-algorithm knowledge.
struct CollCaps {
  bool needs_fabric = false;        // requires an attached SharpFabric
  bool uses_leaders = false;        // honours CollSpec::leaders
  bool supports_pipelining = false; // honours CollSpec::pipeline_k
  bool world_only = false;          // hierarchical: needs the world comm
  bool tunable = false;             // part of the default tuning sweep
  // Inspects payload bytes (not just metadata): incompatible with the
  // time-only data plane, rejected at dispatch. No in-tree design sets this;
  // it exists for algorithms whose control flow depends on data values.
  bool needs_payload = false;
  int min_comm_size = 1;
  // Only tuned at or below this payload (e.g. the SHArP designs' useful
  // range); dispatching larger payloads explicitly is still allowed.
  std::size_t max_tune_bytes = std::numeric_limits<std::size_t>::max();
};

struct CollDescriptor {
  std::string name;                      // unique within the kind
  CollKind kind = CollKind::allreduce;
  CollCaps caps;
  std::function<sim::CoTask<void>(CollArgs, const CollSpec&)> make;
};

class CollRegistry {
 public:
  static CollRegistry& instance();

  // Throws util::InvariantError on a duplicate (kind, name).
  void add(CollDescriptor d);

  // nullptr when (kind, name) is not registered.
  const CollDescriptor* find(CollKind kind, const std::string& name) const;
  // Throws util::InvariantError listing every registered name of `kind`.
  const CollDescriptor& at(CollKind kind, const std::string& name) const;

  // Registration order (stable across runs: built-ins are anchored in a
  // fixed sequence).
  std::vector<const CollDescriptor*> list(CollKind kind) const;
  std::vector<std::string> names(CollKind kind) const;

 private:
  // deque: descriptor addresses stay valid across add().
  std::deque<CollDescriptor> entries_;
};

// Registers a descriptor; declare as a namespace-scope static in the
// algorithm's translation unit:
//   static const CollRegistration reg{{"ring", CollKind::allreduce, {},
//       [](CollArgs a, const CollSpec&) { return allreduce_ring(std::move(a)); }}};
struct CollRegistration {
  explicit CollRegistration(CollDescriptor d);
};

// Forces the built-in algorithm translation units (and their static
// CollRegistration objects) into the link; every registry accessor calls it,
// so user code never needs to. The core layer's selection stacks (e.g.
// "dpml-auto") register from src/core and ride along with any core usage.
void ensure_builtin_collectives();

// Link anchors, one per registering translation unit.
void link_flat_collectives();
void link_dpml_collectives();
void link_baseline_collectives();
void link_sharp_collectives();
void link_reduce_collectives();
void link_bcast_collectives();
void link_alltoall_collectives();
void link_group_collectives();

}  // namespace dpml::coll
