#include "coll/registry.hpp"

#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace dpml::coll {

const char* coll_kind_name(CollKind k) {
  switch (k) {
    case CollKind::allreduce: return "allreduce";
    case CollKind::reduce: return "reduce";
    case CollKind::bcast: return "bcast";
    case CollKind::alltoall: return "alltoall";
    case CollKind::allgather: return "allgather";
    case CollKind::reduce_scatter: return "reduce_scatter";
    case CollKind::gather: return "gather";
    case CollKind::scatter: return "scatter";
    case CollKind::barrier: return "barrier";
  }
  return "?";
}

CollKind coll_kind_by_name(const std::string& name) {
  for (CollKind k : kAllCollKinds) {
    if (name == coll_kind_name(k)) return k;
  }
  std::ostringstream os;
  os << "unknown collective kind '" << name << "'; valid kinds:";
  for (CollKind k : kAllCollKinds) os << " " << coll_kind_name(k);
  DPML_CHECK_MSG(false, os.str());
  return CollKind::allreduce;
}

bool is_coll_kind_name(const std::string& name) {
  for (CollKind k : kAllCollKinds) {
    if (name == coll_kind_name(k)) return true;
  }
  return false;
}

std::string CollSpec::label(CollKind kind) const {
  std::string s = algo;
  const CollDescriptor* d = CollRegistry::instance().find(kind, algo);
  if (d != nullptr && d->caps.uses_leaders) {
    s += "(l=" + std::to_string(leaders);
    if (d->caps.supports_pipelining && pipeline_k > 1) {
      s += ",k=" + std::to_string(pipeline_k);
    }
    s += ")";
  }
  return s;
}

CollRegistry& CollRegistry::instance() {
  static CollRegistry registry;
  return registry;
}

void CollRegistry::add(CollDescriptor d) {
  DPML_CHECK_MSG(!d.name.empty(), "collective descriptor needs a name");
  DPML_CHECK_MSG(static_cast<bool>(d.make),
                 "collective descriptor '" + d.name + "' needs a factory");
  for (const CollDescriptor& e : entries_) {
    DPML_CHECK_MSG(
        e.kind != d.kind || e.name != d.name,
        std::string("duplicate collective registration: ") +
            coll_kind_name(d.kind) + "/" + d.name);
  }
  entries_.push_back(std::move(d));
}

const CollDescriptor* CollRegistry::find(CollKind kind,
                                         const std::string& name) const {
  ensure_builtin_collectives();
  for (const CollDescriptor& e : entries_) {
    if (e.kind == kind && e.name == name) return &e;
  }
  return nullptr;
}

const CollDescriptor& CollRegistry::at(CollKind kind,
                                       const std::string& name) const {
  const CollDescriptor* d = find(kind, name);
  if (d == nullptr) {
    std::ostringstream os;
    os << "unknown " << coll_kind_name(kind) << " algorithm '" << name
       << "'; registered:";
    for (const std::string& n : names(kind)) os << " " << n;
    // A kind/algorithm mix-up (e.g. --collective bcast --algorithm dpml) is
    // far more common than a typo; say which kinds do register the name.
    std::string others;
    for (CollKind k : kAllCollKinds) {
      if (k != kind && find(k, name) != nullptr) {
        if (!others.empty()) others += ", ";
        others += coll_kind_name(k);
      }
    }
    if (!others.empty()) {
      os << " ('" << name << "' is a registered algorithm of: " << others
         << ")";
    }
    DPML_CHECK_MSG(false, os.str());
  }
  return *d;
}

std::vector<const CollDescriptor*> CollRegistry::list(CollKind kind) const {
  ensure_builtin_collectives();
  std::vector<const CollDescriptor*> out;
  for (const CollDescriptor& e : entries_) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

std::vector<std::string> CollRegistry::names(CollKind kind) const {
  std::vector<std::string> out;
  for (const CollDescriptor* d : list(kind)) out.push_back(d->name);
  return out;
}

CollRegistration::CollRegistration(CollDescriptor d) {
  CollRegistry::instance().add(std::move(d));
}

void ensure_builtin_collectives() {
  // Touching one symbol per implementation TU forces those archive members
  // (and their static CollRegistration objects) into the link, in a fixed
  // order so registry enumeration is deterministic.
  static const bool once = [] {
    link_flat_collectives();
    link_dpml_collectives();
    link_sharp_collectives();
    link_baseline_collectives();
    link_reduce_collectives();
    link_bcast_collectives();
    link_alltoall_collectives();
    link_group_collectives();
    return true;
  }();
  (void)once;
}

}  // namespace dpml::coll
