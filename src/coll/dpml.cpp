#include "coll/dpml.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;
using simmpi::ShmWindow;

namespace {

ConstBytes input_of(const CollArgs& a) {
  return a.inplace ? as_const(a.recv) : a.send;
}

// Tag namespace for the inter-node phase, derived from the collective's
// per-(rank,context) sequence number so concurrent invocations (e.g.
// several outstanding non-blocking allreduces) never cross-match on the
// shared leader communicators. 2048 tags per invocation covers the
// pipelined variant's k*128 chunk space.
int inner_tag_base(std::int64_t slot_key) {
  return static_cast<int>((slot_key & 0x3ff)) * 2048;
}

void require_world(const CollArgs& a) {
  DPML_CHECK_MSG(a.comm->context() == a.rank->machine().world().context(),
                 "hierarchical allreduce designs run on the world "
                 "communicator (leaders are per-node entities)");
}

}  // namespace

sim::CoTask<void> allreduce_single_leader(CollArgs a, InterAlgo inter) {
  a.check();
  require_world(a);
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int h = m.num_nodes();
  const std::size_t nbytes = a.bytes();

  if (ppn == 1) {
    // Degenerate hierarchy: every rank is its own leader.
    co_await inter_allreduce(std::move(a), inter);
    co_return;
  }

  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    // windows[0]: gather staging for the ppn-1 non-leader vectors;
    // windows[1]: the broadcast buffer holding the final result.
    slot.windows.emplace_back(static_cast<std::size_t>(ppn - 1) * nbytes,
                              m.socket_of_local(0), m.with_data());
    slot.windows.emplace_back(nbytes, m.socket_of_local(0), m.with_data());
    slot.latches.emplace_back(r.engine(), ppn - 1);
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }
  ShmWindow& gather = slot.windows[0];
  ShmWindow& result = slot.windows[1];
  sim::Latch& gathered = slot.latches[0];
  sim::Flag& published = slot.flags[0];

  if (r.local_rank() == 0) {
    co_await copy_in(a);  // leader's own contribution lands in recv
    co_await gathered.wait();
    co_await r.compute(m.collection_cost(0, 0, ppn));
    co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * nbytes);
    if (gather.has_data() && !a.recv.empty()) {
      for (int i = 0; i < ppn - 1; ++i) {
        a.op.apply(a.dt, a.count, a.recv,
                   gather.data().subspan(static_cast<std::size_t>(i) * nbytes,
                                         nbytes));
      }
    }
    if (h > 1) {
      CollArgs ia = a;
      ia.comm = &m.leader_comm(0, 1);
      ia.send = {};
      ia.inplace = true;
      ia.tag_base = inner_tag_base(key);
      co_await inter_allreduce(std::move(ia), inter);
    }
    co_await r.shm_put(result, 0, nbytes, as_const(a.recv));
    co_await r.signal(published);
  } else {
    co_await r.shm_put(gather,
                       static_cast<std::size_t>(r.local_rank() - 1) * nbytes,
                       nbytes, input_of(a));
    co_await r.signal(gathered);
    co_await published.wait();
    co_await r.shm_get(result, 0, nbytes, a.recv);
  }
  r.node().release_slot(key, ppn);
}

sim::CoTask<void> allreduce_dpml(CollArgs a, DpmlParams params) {
  a.check();
  require_world(a);
  DPML_CHECK_MSG(params.pipeline_k >= 1, "pipeline_k must be >= 1");
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int h = m.num_nodes();
  const int l = std::clamp(params.leaders, 1, ppn);
  const int k = params.pipeline_k;
  const std::size_t esize = simmpi::dtype_size(a.dt);

  if (ppn == 1) {
    co_await inter_allreduce(std::move(a), params.inter);
    co_return;
  }

  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    // Per leader j: windows[2j] = gather staging (ppn stripes of the j-th
    // partition), windows[2j+1] = result buffer; flags[j] = result ready.
    for (int j = 0; j < l; ++j) {
      const Part pj = partition(a.count, l, j);
      const std::size_t pbytes = pj.count * esize;
      const int owner = m.socket_of_local(m.leader_local_rank(j, l));
      slot.windows.emplace_back(static_cast<std::size_t>(ppn) * pbytes, owner,
                                m.with_data());
      slot.windows.emplace_back(pbytes, owner, m.with_data());
      slot.flags.emplace_back(r.engine());
    }
    // One latch: every rank arrives once after writing all l partitions.
    slot.latches.emplace_back(r.engine(), ppn);
    slot.initialized = true;
  }
  sim::Latch& gathered = slot.latches[0];

  // ---- Phase 1: partition the input and copy into each leader's window.
  const ConstBytes input = input_of(a);
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    co_await r.shm_put(slot.windows[2 * j],
                       static_cast<std::size_t>(r.local_rank()) * pbytes,
                       pbytes, sub(input, pj.offset * esize, pbytes));
  }
  co_await r.signal(gathered);

  const int my_leader = m.leader_index_of_local(r.local_rank(), l);
  std::vector<std::byte> part_store;
  if (my_leader >= 0) {
    const int j = my_leader;
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    ShmWindow& gather = slot.windows[2 * j];
    ShmWindow& result = slot.windows[2 * j + 1];

    // ---- Phase 2: reduce the ppn stripes of partition j in parallel with
    // the other leaders. The leader pays a per-contributor collection cost
    // (the stripes were written by every local rank, both sockets).
    co_await gathered.wait();
    co_await r.compute(m.collection_cost(r.local_rank(), 0, ppn));
    part_store = a.scratch(pbytes);
    MutBytes part{part_store};
    if (gather.has_data() && pbytes > 0) {
      std::memcpy(part.data(), gather.data().data(), pbytes);
      for (int i = 1; i < ppn; ++i) {
        a.op.apply(a.dt, pj.count, part,
                   gather.data().subspan(static_cast<std::size_t>(i) * pbytes,
                                         pbytes));
      }
    }
    co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * pbytes);

    // ---- Phase 3: concurrent inter-node allreduce per leader group.
    if (h > 1) {
      CollArgs ia = a;
      ia.comm = &m.leader_comm(j, l);
      ia.count = pj.count;
      ia.send = {};
      ia.recv = part;
      ia.inplace = true;
      if (k == 1) {
        ia.tag_base = inner_tag_base(key);
        co_await inter_allreduce(std::move(ia), params.inter);
      } else {
        // DPML-Pipelined: k concurrent non-blocking sub-allreduces.
        std::vector<std::shared_ptr<sim::Flag>> pending;
        pending.reserve(static_cast<std::size_t>(k));
        for (int q = 0; q < k; ++q) {
          const Part cq = partition(pj.count, k, q);
          CollArgs ca = ia;
          ca.count = cq.count;
          ca.recv = sub(part, cq.offset * esize, cq.count * esize);
          ca.tag_base = inner_tag_base(key) + q * 128;
          pending.push_back(r.engine().spawn_sub(
              inter_allreduce(std::move(ca), params.inter)));
        }
        co_await sim::wait_all(std::move(pending));
      }
    }

    // Publish the fully reduced partition for phase 4.
    co_await r.shm_put(result, 0, pbytes, as_const(part));
    co_await r.signal(slot.flags[j]);
  }

  // ---- Phase 4: every rank copies each partition's result back.
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    co_await slot.flags[j].wait();
    co_await r.shm_get(slot.windows[2 * j + 1], 0, pbytes,
                       sub(a.recv, pj.offset * esize, pbytes));
  }
  r.node().release_slot(key, ppn);
}

// ---- Registry entries ----

namespace {

const CollRegistration reg_single_leader{{
    "single-leader",
    CollKind::allreduce,
    CollCaps{.world_only = true},
    [](CollArgs a, const CollSpec& s) {
      return allreduce_single_leader(std::move(a), s.inter);
    },
}};

const CollRegistration reg_dpml{{
    "dpml",
    CollKind::allreduce,
    CollCaps{.uses_leaders = true,
             .supports_pipelining = true,
             .world_only = true,
             .tunable = true},
    [](CollArgs a, const CollSpec& s) {
      DpmlParams p;
      p.leaders = s.leaders;
      p.pipeline_k = s.pipeline_k;
      p.inter = s.inter;
      return allreduce_dpml(std::move(a), p);
    },
}};

}  // namespace

void link_dpml_collectives() {}

}  // namespace dpml::coll
