#include "coll/dpml.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "coll/group_coll.hpp"
#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;
using simmpi::ShmWindow;

namespace {

ConstBytes input_of(const CollArgs& a) {
  return a.inplace ? as_const(a.recv) : a.send;
}

// Tag namespace for the inter-node phase, derived from the collective's
// per-(rank,context) sequence number so concurrent invocations (e.g.
// several outstanding non-blocking allreduces) never cross-match on the
// shared leader communicators. 2048 tags per invocation covers the
// pipelined variant's k*128 chunk space.
int inner_tag_base(std::int64_t slot_key) {
  return static_cast<int>((slot_key & 0x3ff)) * 2048;
}

void require_world(const CollArgs& a) {
  DPML_CHECK_MSG(a.comm->context() == a.rank->machine().world().context(),
                 "hierarchical collective designs run on the world "
                 "communicator (leaders are per-node entities)");
}

// Shared-slot layout for the data-partitioned reduction phases. Per leader
// j: windows[2j] = gather staging (ppn stripes of the j-th partition),
// windows[2j+1] = result buffer; flags[j] = result ready. One latch: every
// rank arrives once after writing all l partitions.
void dpml_slot_init(Rank& r, CollSlot& slot, std::size_t count,
                    std::size_t esize, int l, int ppn) {
  if (slot.initialized) return;
  Machine& m = r.machine();
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(count, l, j);
    const std::size_t pbytes = pj.count * esize;
    const int owner = m.socket_of_local(m.leader_local_rank(j, l));
    slot.windows.emplace_back(static_cast<std::size_t>(ppn) * pbytes, owner,
                              m.with_data());
    slot.windows.emplace_back(pbytes, owner, m.with_data());
    slot.flags.emplace_back(r.engine());
  }
  slot.latches.emplace_back(r.engine(), ppn);
  slot.initialized = true;
}

// Phases 1-3 of the paper's design over an a.count-element vector: stripe
// the input across the l leaders' gather windows, fold the ppn stripes of
// each partition in local-rank order, and run one inter-node allreduce per
// leader group concurrently. This IS the data-partitioned multi-leader
// reduce-scatter: on return, leader j's result window (windows[2j+1]) holds
// the fully reduced j-th partition and flags[j] is signalled. The caller
// owns slot setup (dpml_slot_init) and release.
sim::CoTask<void> dpml_reduce_scatter_phases(const CollArgs& a,
                                             const DpmlParams& params, int l,
                                             std::int64_t key,
                                             CollSlot& slot) {
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int h = m.num_nodes();
  const int k = params.pipeline_k;
  const std::size_t esize = simmpi::dtype_size(a.dt);
  sim::Latch& gathered = slot.latches[0];

  // ---- Phase 1: partition the input and copy into each leader's window.
  const ConstBytes input = input_of(a);
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    co_await r.shm_put(slot.windows[2 * j],
                       static_cast<std::size_t>(r.local_rank()) * pbytes,
                       pbytes, sub(input, pj.offset * esize, pbytes));
  }
  co_await r.signal(gathered);

  const int my_leader = m.leader_index_of_local(r.local_rank(), l);
  std::vector<std::byte> part_store;
  if (my_leader >= 0) {
    const int j = my_leader;
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    ShmWindow& gather = slot.windows[2 * j];
    ShmWindow& result = slot.windows[2 * j + 1];

    // ---- Phase 2: reduce the ppn stripes of partition j in parallel with
    // the other leaders. The leader pays a per-contributor collection cost
    // (the stripes were written by every local rank, both sockets).
    co_await gathered.wait();
    co_await r.compute(m.collection_cost(r.local_rank(), 0, ppn));
    part_store = a.scratch(pbytes);
    MutBytes part{part_store};
    if (gather.has_data() && pbytes > 0) {
      std::memcpy(part.data(), gather.data().data(), pbytes);
      for (int i = 1; i < ppn; ++i) {
        a.op.apply(a.dt, pj.count, part,
                   gather.data().subspan(static_cast<std::size_t>(i) * pbytes,
                                         pbytes));
      }
    }
    co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * pbytes);

    // ---- Phase 3: concurrent inter-node allreduce per leader group.
    if (h > 1) {
      CollArgs ia = a;
      ia.comm = &m.leader_comm(j, l);
      ia.count = pj.count;
      ia.send = {};
      ia.recv = part;
      ia.inplace = true;
      if (k == 1) {
        ia.tag_base = inner_tag_base(key);
        co_await inter_allreduce(std::move(ia), params.inter);
      } else {
        // DPML-Pipelined: k concurrent non-blocking sub-allreduces.
        std::vector<std::shared_ptr<sim::Flag>> pending;
        pending.reserve(static_cast<std::size_t>(k));
        for (int q = 0; q < k; ++q) {
          const Part cq = partition(pj.count, k, q);
          CollArgs ca = ia;
          ca.count = cq.count;
          ca.recv = sub(part, cq.offset * esize, cq.count * esize);
          ca.tag_base = inner_tag_base(key) + q * 128;
          pending.push_back(r.engine().spawn_sub(
              inter_allreduce(std::move(ca), params.inter)));
        }
        co_await sim::wait_all(std::move(pending));
      }
    }

    // Publish the fully reduced partition for the collection phase.
    co_await r.shm_put(result, 0, pbytes, as_const(part));
    co_await r.signal(slot.flags[j]);
  }
}

// Phase 4 generalised over an element range: copy [elem_lo, elem_hi) of the
// reduced a.count-element vector out of the leaders' result windows into
// dest (dest[0] corresponds to element elem_lo). A partition fully
// contained in the range is visited even when empty, so the full-range call
// made by allreduce_dpml — every partition contained — stays operation-for-
// operation identical to the historical monolithic phase 4 (zero-length
// partitions still flag-wait and issue a 0-byte copy), which the golden
// tests lock in.
sim::CoTask<void> dpml_collect_range(const CollArgs& a, CollSlot& slot, int l,
                                     std::size_t elem_lo, std::size_t elem_hi,
                                     MutBytes dest) {
  Rank& r = *a.rank;
  const std::size_t esize = simmpi::dtype_size(a.dt);
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(a.count, l, j);
    const std::size_t lo = std::max(elem_lo, pj.offset);
    const std::size_t hi = std::min(elem_hi, pj.offset + pj.count);
    const bool contained =
        elem_lo <= pj.offset && pj.offset + pj.count <= elem_hi;
    if (hi < lo || (hi == lo && !contained)) continue;
    const std::size_t nbytes = (hi - lo) * esize;
    co_await slot.flags[j].wait();
    co_await r.shm_get(slot.windows[2 * j + 1], (lo - pj.offset) * esize,
                       nbytes, sub(dest, (lo - elem_lo) * esize, nbytes));
  }
}

}  // namespace

sim::CoTask<void> allreduce_single_leader(CollArgs a, InterAlgo inter) {
  a.check();
  require_world(a);
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int h = m.num_nodes();
  const std::size_t nbytes = a.bytes();

  if (ppn == 1) {
    // Degenerate hierarchy: every rank is its own leader.
    co_await inter_allreduce(std::move(a), inter);
    co_return;
  }

  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    // windows[0]: gather staging for the ppn-1 non-leader vectors;
    // windows[1]: the broadcast buffer holding the final result.
    slot.windows.emplace_back(static_cast<std::size_t>(ppn - 1) * nbytes,
                              m.socket_of_local(0), m.with_data());
    slot.windows.emplace_back(nbytes, m.socket_of_local(0), m.with_data());
    slot.latches.emplace_back(r.engine(), ppn - 1);
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }
  ShmWindow& gather = slot.windows[0];
  ShmWindow& result = slot.windows[1];
  sim::Latch& gathered = slot.latches[0];
  sim::Flag& published = slot.flags[0];

  if (r.local_rank() == 0) {
    co_await copy_in(a);  // leader's own contribution lands in recv
    co_await gathered.wait();
    co_await r.compute(m.collection_cost(0, 0, ppn));
    co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * nbytes);
    if (gather.has_data() && !a.recv.empty()) {
      for (int i = 0; i < ppn - 1; ++i) {
        a.op.apply(a.dt, a.count, a.recv,
                   gather.data().subspan(static_cast<std::size_t>(i) * nbytes,
                                         nbytes));
      }
    }
    if (h > 1) {
      CollArgs ia = a;
      ia.comm = &m.leader_comm(0, 1);
      ia.send = {};
      ia.inplace = true;
      ia.tag_base = inner_tag_base(key);
      co_await inter_allreduce(std::move(ia), inter);
    }
    co_await r.shm_put(result, 0, nbytes, as_const(a.recv));
    co_await r.signal(published);
  } else {
    co_await r.shm_put(gather,
                       static_cast<std::size_t>(r.local_rank() - 1) * nbytes,
                       nbytes, input_of(a));
    co_await r.signal(gathered);
    co_await published.wait();
    co_await r.shm_get(result, 0, nbytes, a.recv);
  }
  r.node().release_slot(key, ppn);
}

sim::CoTask<void> allreduce_dpml(CollArgs a, DpmlParams params) {
  a.check();
  require_world(a);
  DPML_CHECK_MSG(params.pipeline_k >= 1, "pipeline_k must be >= 1");
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int l = std::clamp(params.leaders, 1, ppn);
  const std::size_t esize = simmpi::dtype_size(a.dt);

  if (ppn == 1) {
    co_await inter_allreduce(std::move(a), params.inter);
    co_return;
  }

  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  dpml_slot_init(r, slot, a.count, esize, l, ppn);
  // The allreduce is literally the composition the paper exploits:
  // data-partitioned multi-leader reduce-scatter (phases 1-3), then a
  // shared-memory allgather of every partition (phase 4).
  co_await dpml_reduce_scatter_phases(a, params, l, key, slot);
  co_await dpml_collect_range(a, slot, l, 0, a.count, a.recv);
  r.node().release_slot(key, ppn);
}

sim::CoTask<void> reduce_scatter_dpml(CollArgs a, DpmlParams params) {
  require_world(a);
  DPML_CHECK_MSG(params.pipeline_k >= 1, "pipeline_k must be >= 1");
  DPML_CHECK_MSG(!a.inplace,
                 "reduce_scatter/dpml does not support in-place");
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int p = a.comm->size();
  const std::size_t esize = simmpi::dtype_size(a.dt);
  const std::size_t total = a.count * static_cast<std::size_t>(p);
  DPML_CHECK_MSG(a.send.empty() || a.send.size() == total * esize,
                 "reduce_scatter send buffer must span p blocks");
  DPML_CHECK_MSG(a.recv.empty() || a.recv.size() == a.bytes(),
                 "reduce_scatter recv buffer must span one block");

  if (ppn == 1) {
    // Degenerate hierarchy: flat order-aware dispatch.
    ReduceScatterArgs rs;
    rs.rank = a.rank;
    rs.comm = a.comm;
    rs.block_count = a.count;
    rs.dt = a.dt;
    rs.op = a.op;
    rs.send = a.send;
    rs.recv = a.recv;
    rs.tag_base = a.tag_base;
    co_await reduce_scatter(std::move(rs), ReduceScatterAlgo::automatic);
    co_return;
  }

  const int l = std::clamp(params.leaders, 1, ppn);
  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  dpml_slot_init(r, slot, total, esize, l, ppn);
  // View the p per-rank blocks as one contiguous total-element vector for
  // the shared phases; only my block is collected out of the result
  // windows (the allreduce collects all of them).
  CollArgs full = a;
  full.count = total;
  full.recv = {};
  co_await dpml_reduce_scatter_phases(full, params, l, key, slot);
  const std::size_t me = static_cast<std::size_t>(r.world_rank());
  co_await dpml_collect_range(full, slot, l, me * a.count,
                              (me + 1) * a.count, a.recv);
  r.node().release_slot(key, ppn);
}

sim::CoTask<void> allgather_dpml(CollArgs a, DpmlParams params) {
  require_world(a);
  Rank& r = *a.rank;
  Machine& m = r.machine();
  const int ppn = m.ppn();
  const int h = m.num_nodes();
  const std::size_t esize = simmpi::dtype_size(a.dt);
  const std::size_t bbytes = a.bytes();
  const int me = r.world_rank();
  const ConstBytes input =
      a.inplace
          ? sub(as_const(a.recv), static_cast<std::size_t>(me) * bbytes,
                bbytes)
          : a.send;

  if (ppn == 1) {
    // Degenerate hierarchy: flat dispatch.
    AllgatherArgs ag;
    ag.rank = a.rank;
    ag.comm = a.comm;
    ag.block_bytes = bbytes;
    ag.send = input;
    ag.recv = a.recv;
    ag.tag_base = a.tag_base;
    co_await allgather(std::move(ag), AllgatherAlgo::automatic);
    co_return;
  }

  const int l = std::clamp(params.leaders, 1, ppn);
  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  // This node contributes ppn consecutive blocks of the global result;
  // partition that contribution across the l leaders.
  const std::size_t node_count = a.count * static_cast<std::size_t>(ppn);
  if (!slot.initialized) {
    // Per leader j: windows[2j] stages partition j of the node
    // contribution; windows[2j+1] holds that partition for all h nodes
    // after the leaders' inter-node exchange; flags[j] = result ready.
    for (int j = 0; j < l; ++j) {
      const Part pj = partition(node_count, l, j);
      const std::size_t pbytes = pj.count * esize;
      const int owner = m.socket_of_local(m.leader_local_rank(j, l));
      slot.windows.emplace_back(pbytes, owner, m.with_data());
      slot.windows.emplace_back(static_cast<std::size_t>(h) * pbytes, owner,
                                m.with_data());
      slot.flags.emplace_back(r.engine());
    }
    slot.latches.emplace_back(r.engine(), ppn);
    slot.initialized = true;
  }
  sim::Latch& gathered = slot.latches[0];

  // ---- Phase 1: write my block into the node-contribution stripes it
  // spans (a block can straddle a partition boundary when ppn % l != 0).
  const std::size_t my_lo = static_cast<std::size_t>(r.local_rank()) * a.count;
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(node_count, l, j);
    const std::size_t lo = std::max(my_lo, pj.offset);
    const std::size_t hi = std::min(my_lo + a.count, pj.offset + pj.count);
    if (hi <= lo) continue;
    co_await r.shm_put(slot.windows[2 * j], (lo - pj.offset) * esize,
                       (hi - lo) * esize,
                       sub(input, (lo - my_lo) * esize, (hi - lo) * esize));
  }
  co_await r.signal(gathered);

  // ---- Phase 2: each leader allgathers its partition of the node
  // contribution with its peers on the other h-1 nodes, concurrently with
  // the other leaders (one inter-node stream per leader, as in the
  // reduction design).
  const int my_leader = m.leader_index_of_local(r.local_rank(), l);
  std::vector<std::byte> stripe_store;
  std::vector<std::byte> result_store;
  if (my_leader >= 0) {
    const int j = my_leader;
    const Part pj = partition(node_count, l, j);
    const std::size_t pbytes = pj.count * esize;
    co_await gathered.wait();
    co_await r.compute(m.collection_cost(r.local_rank(), 0, ppn));
    stripe_store = a.scratch(pbytes);
    MutBytes stripe{stripe_store};
    co_await r.shm_get(slot.windows[2 * j], 0, pbytes, stripe);
    if (h > 1) {
      result_store = a.scratch(static_cast<std::size_t>(h) * pbytes);
      MutBytes result{result_store};
      AllgatherArgs ia;
      ia.rank = a.rank;
      ia.comm = &m.leader_comm(j, l);
      ia.block_bytes = pbytes;
      ia.send = as_const(stripe);
      ia.recv = result;
      ia.tag_base = inner_tag_base(key);
      co_await allgather(std::move(ia), AllgatherAlgo::automatic);
      co_await r.shm_put(slot.windows[2 * j + 1], 0,
                         static_cast<std::size_t>(h) * pbytes,
                         as_const(result));
    } else {
      co_await r.shm_put(slot.windows[2 * j + 1], 0, pbytes,
                         as_const(stripe));
    }
    co_await r.signal(slot.flags[j]);
  }

  // ---- Phase 3: every rank copies each leader's h per-node pieces home;
  // node n's piece of partition j lands at element n*node_count + pj.offset
  // of the global result.
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(node_count, l, j);
    const std::size_t pbytes = pj.count * esize;
    co_await slot.flags[j].wait();
    for (int n = 0; n < h; ++n) {
      co_await r.shm_get(
          slot.windows[2 * j + 1], static_cast<std::size_t>(n) * pbytes,
          pbytes,
          sub(a.recv,
              (static_cast<std::size_t>(n) * node_count + pj.offset) * esize,
              pbytes));
    }
  }
  r.node().release_slot(key, ppn);
}

// ---- Registry entries ----

namespace {

const CollRegistration reg_single_leader{{
    "single-leader",
    CollKind::allreduce,
    CollCaps{.world_only = true},
    [](CollArgs a, const CollSpec& s) {
      return allreduce_single_leader(std::move(a), s.inter);
    },
}};

const CollRegistration reg_dpml{{
    "dpml",
    CollKind::allreduce,
    CollCaps{.uses_leaders = true,
             .supports_pipelining = true,
             .world_only = true,
             .tunable = true},
    [](CollArgs a, const CollSpec& s) {
      DpmlParams p;
      p.leaders = s.leaders;
      p.pipeline_k = s.pipeline_k;
      p.inter = s.inter;
      return allreduce_dpml(std::move(a), p);
    },
}};

const CollRegistration reg_reduce_scatter_dpml{{
    "dpml",
    CollKind::reduce_scatter,
    CollCaps{.uses_leaders = true,
             .supports_pipelining = true,
             .world_only = true,
             .tunable = true},
    [](CollArgs a, const CollSpec& s) {
      DpmlParams p;
      p.leaders = s.leaders;
      p.pipeline_k = s.pipeline_k;
      p.inter = s.inter;
      return reduce_scatter_dpml(std::move(a), p);
    },
}};

const CollRegistration reg_allgather_dpml{{
    "dpml",
    CollKind::allgather,
    CollCaps{.uses_leaders = true, .world_only = true, .tunable = true},
    [](CollArgs a, const CollSpec& s) {
      DpmlParams p;
      p.leaders = s.leaders;
      return allgather_dpml(std::move(a), p);
    },
}};

}  // namespace

void link_dpml_collectives() {}

}  // namespace dpml::coll
