// Common definitions for collective algorithms.
//
// Every algorithm is a coroutine invoked by all participating ranks with
// identical arguments (SPMD style, like an MPI collective). Buffers may be
// empty in metadata-only runs; simulated time is charged identically either
// way. All reduction operators are assumed associative (as MPI requires);
// ops may be non-commutative (Op::commutative() == false), in which case
// every algorithm folds operands in ascending comm-rank order — either
// directly (Op::apply_left at the order-sensitive folds) or by falling back
// to an order-preserving algorithm, exactly as real MPI libraries do.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/task.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/datatype.hpp"
#include "simmpi/machine.hpp"

namespace dpml::coll {

using simmpi::Comm;
using simmpi::ConstBytes;
using simmpi::Dtype;
using simmpi::MutBytes;
using simmpi::Op;
using simmpi::Rank;

struct CollArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::size_t count = 0;
  Dtype dt = Dtype::f32;
  Op op = simmpi::ReduceOp::sum;
  ConstBytes send{};  // empty in metadata-only runs, or when in-place
  MutBytes recv{};
  int tag_base = 0;     // tag namespace for concurrent sub-collectives
  bool inplace = false; // recv already holds the input vector (MPI_IN_PLACE)
  int root = 0;         // rooted kinds (reduce/bcast) only; ignored otherwise

  std::size_t bytes() const { return count * simmpi::dtype_size(dt); }
  // Allocate a scratch buffer honouring the machine's data mode.
  std::vector<std::byte> scratch(std::size_t nbytes) const;
  // Validate the SPMD invariants; called at algorithm entry.
  void check() const;
};

// Block partition of `count` elements into `parts` pieces; the remainder is
// spread over the first `count % parts` pieces (ragged partitions).
struct Part {
  std::size_t offset = 0;  // element offset
  std::size_t count = 0;   // element count
};
Part partition(std::size_t count, int parts, int index);

// Inter-node allreduce algorithm selector for the hierarchical designs'
// phase 3 (and the flat baselines themselves).
enum class InterAlgo {
  recursive_doubling,
  reduce_scatter_allgather,
  ring,
  binomial,
  automatic,  // library-style choice by message size / comm size
};

const char* inter_algo_name(InterAlgo a);

// Span helpers tolerating empty (metadata-only) spans.
inline ConstBytes sub(ConstBytes b, std::size_t off, std::size_t len) {
  return b.empty() ? b : b.subspan(off, len);
}
inline MutBytes sub(MutBytes b, std::size_t off, std::size_t len) {
  return b.empty() ? b : b.subspan(off, len);
}
inline ConstBytes as_const(MutBytes b) { return ConstBytes{b.data(), b.size()}; }

// Charge (and in data mode perform) the initial sendbuf -> recvbuf copy.
sim::CoTask<void> copy_in(const CollArgs& a);

// ---- Flat algorithms (any communicator; callers not in comm return) ----
sim::CoTask<void> allreduce_recursive_doubling(CollArgs a);
sim::CoTask<void> allreduce_reduce_scatter_allgather(CollArgs a);
sim::CoTask<void> allreduce_ring(CollArgs a);
// Ring with `channels` concurrent chunk-rings in lockstep (registered as
// "cring"; CollSpec::leaders is the channel count). More channels buy a
// larger aggregate max-min share on congested links at the cost of extra
// per-message overheads — the adaptive re-planner's lever (docs/MODEL.md §12).
sim::CoTask<void> allreduce_ring_channels(CollArgs a, int channels);
sim::CoTask<void> allreduce_binomial(CollArgs a);
// Naive gather+reduce+bcast at comm rank 0 (reference baseline).
sim::CoTask<void> allreduce_gather_bcast(CollArgs a);

// Dispatch on InterAlgo (automatic applies the standard size-based choice).
sim::CoTask<void> inter_allreduce(CollArgs a, InterAlgo algo);
// The choice `automatic` resolves to for a given (bytes, comm size).
InterAlgo resolve_auto(std::size_t bytes, int comm_size);

}  // namespace dpml::coll
