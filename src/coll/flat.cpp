// Flat (non-hierarchical) allreduce algorithms.
//
// These are the classic algorithms from Rabenseifner'04 / Thakur'05 that MPI
// libraries ship: recursive doubling, reduce-scatter + allgather (recursive
// halving/doubling), ring, binomial reduce+bcast, and a naive gather+bcast
// reference. They serve three roles in this reproduction: (1) the paper's
// baselines, (2) the inter-node phase-3 building block of DPML, and (3)
// correctness cross-checks for each other.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "coll/coll.hpp"
#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

namespace {

int floor_pow2(int p) {
  int v = 1;
  while (v * 2 <= p) v *= 2;
  return v;
}

// Tag layout within one collective invocation: each algorithm uses
// [tag_base, tag_base + 128) and steps stay well below 128.
constexpr int kEpilogueTag = 120;

// Channel cap for the multi-channel ring: channel k uses tags tag_base + k
// (reduce-scatter) and tag_base + 64 + k (allgather), so 16 stays well
// inside the tag budget.
constexpr int kMaxRingChannels = 16;

// Exchange full vectors with `partner` and fold the incoming one into
// a.recv. `partner_left` says the partner's contribution covers comm ranks
// *preceding* mine, so non-commutative ops fold it on the left. Uses
// isend+recv to avoid rendezvous deadlock on symmetric exchanges.
sim::CoTask<void> exchange_reduce(const CollArgs& a, int partner, int tag,
                                  MutBytes tmp, bool partner_left) {
  Rank& r = *a.rank;
  const std::size_t nbytes = a.bytes();
  auto sf = r.isend(*a.comm, partner, tag, nbytes, as_const(a.recv));
  co_await r.recv(*a.comm, partner, tag, nbytes, tmp);
  co_await sf->wait();
  co_await r.reduce_compute(nbytes);
  if (partner_left) {
    a.op.apply_left(a.dt, a.count, a.recv, as_const(MutBytes{tmp}));
  } else {
    a.op.apply(a.dt, a.count, a.recv, as_const(MutBytes{tmp}));
  }
}

}  // namespace

sim::CoTask<void> allreduce_recursive_doubling(CollArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const std::size_t nbytes = a.bytes();
  auto tmp_store = a.scratch(nbytes);
  MutBytes tmp{tmp_store};

  const int pof2 = floor_pow2(p);
  const int rem = p - pof2;
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      // Fold my vector into my odd neighbour and sit out the core loop.
      co_await r.send(c, me + 1, a.tag_base, nbytes, as_const(a.recv));
      newrank = -1;
    } else {
      co_await r.recv(c, me - 1, a.tag_base, nbytes, tmp);
      co_await r.reduce_compute(nbytes);
      // The neighbour's vector covers comm rank me-1 < me: fold on the left.
      a.op.apply_left(a.dt, a.count, a.recv, as_const(tmp));
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  if (newrank != -1) {
    int step = 1;
    for (int mask = 1; mask < pof2; mask <<= 1, ++step) {
      const int npartner = newrank ^ mask;
      const int partner = npartner < rem ? npartner * 2 + 1 : npartner + rem;
      // newrank order preserves comm-rank block order, so the partner's
      // accumulated block precedes mine iff npartner < newrank.
      co_await exchange_reduce(a, partner, a.tag_base + step, tmp,
                               npartner < newrank);
    }
  }

  if (me < 2 * rem) {
    if (me % 2 == 1) {
      co_await r.send(c, me - 1, a.tag_base + kEpilogueTag, nbytes,
                      as_const(a.recv));
    } else {
      co_await r.recv(c, me + 1, a.tag_base + kEpilogueTag, nbytes, a.recv);
    }
  }
}

sim::CoTask<void> allreduce_reduce_scatter_allgather(CollArgs a) {
  a.check();
  // Recursive vector halving pairs ranks at distance pof2/2 *first*, so
  // after the very first exchange a rank's accumulated operand set is
  // non-contiguous in comm-rank order ({me, me + pof2/2}); no left/right
  // fold discipline can recover the serial order from there. MPICH draws
  // the same line: reduce-scatter + allgather only for commutative ops,
  // recursive doubling (contiguous blocks at every step) otherwise.
  if (!a.op.commutative()) {
    co_await allreduce_recursive_doubling(std::move(a));
    co_return;
  }
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const std::size_t esize = simmpi::dtype_size(a.dt);
  const std::size_t nbytes = a.bytes();
  auto tmp_store = a.scratch(nbytes);
  MutBytes tmp{tmp_store};

  const int pof2 = floor_pow2(p);
  const int rem = p - pof2;
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      co_await r.send(c, me + 1, a.tag_base, nbytes, as_const(a.recv));
      newrank = -1;
    } else {
      co_await r.recv(c, me - 1, a.tag_base, nbytes, tmp);
      co_await r.reduce_compute(nbytes);
      // Only commutative ops reach here (non-commutative forwarded above),
      // so operand order is free.
      a.op.apply(a.dt, a.count, a.recv, as_const(tmp));
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  auto old_rank_of = [&](int nr) {
    return nr < rem ? nr * 2 + 1 : nr + rem;
  };

  if (newrank != -1) {
    // Reduce-scatter by recursive vector halving; the rank with the mask
    // bit clear keeps the lower half of the current range.
    std::size_t lo = 0;
    std::size_t hi = a.count;
    struct Level {
      std::size_t lo, hi;
      int partner;
    };
    std::vector<Level> levels;
    int step = 1;
    for (int mask = pof2 >> 1; mask > 0; mask >>= 1, ++step) {
      const int partner = old_rank_of(newrank ^ mask);
      const std::size_t mid = lo + (hi - lo) / 2;
      std::size_t keep_lo;
      std::size_t keep_hi;
      std::size_t give_lo;
      std::size_t give_hi;
      if ((newrank & mask) == 0) {
        keep_lo = lo;
        keep_hi = mid;
        give_lo = mid;
        give_hi = hi;
      } else {
        keep_lo = mid;
        keep_hi = hi;
        give_lo = lo;
        give_hi = mid;
      }
      const std::size_t keep_bytes = (keep_hi - keep_lo) * esize;
      const std::size_t give_bytes = (give_hi - give_lo) * esize;
      auto sf = r.isend(c, partner, a.tag_base + step, give_bytes,
                        sub(as_const(a.recv), give_lo * esize, give_bytes));
      co_await r.recv(c, partner, a.tag_base + step, keep_bytes,
                      sub(tmp, 0, keep_bytes));
      co_await sf->wait();
      co_await r.reduce_compute(keep_bytes);
      a.op.apply(a.dt, keep_hi - keep_lo,
                 sub(a.recv, keep_lo * esize, keep_bytes),
                 sub(as_const(tmp), 0, keep_bytes));
      levels.push_back(Level{lo, hi, partner});
      lo = keep_lo;
      hi = keep_hi;
    }

    // Allgather by recursive doubling, replaying the halving in reverse.
    int ag_step = 64;
    for (auto it = levels.rbegin(); it != levels.rend(); ++it, ++ag_step) {
      const std::size_t my_bytes = (hi - lo) * esize;
      // Partner holds the complement of my range within [it->lo, it->hi).
      std::size_t plo;
      std::size_t phi;
      if (lo == it->lo) {
        plo = hi;
        phi = it->hi;
      } else {
        plo = it->lo;
        phi = lo;
      }
      const std::size_t p_bytes = (phi - plo) * esize;
      auto sf = r.isend(c, it->partner, a.tag_base + ag_step, my_bytes,
                        sub(as_const(a.recv), lo * esize, my_bytes));
      co_await r.recv(c, it->partner, a.tag_base + ag_step, p_bytes,
                      sub(a.recv, plo * esize, p_bytes));
      co_await sf->wait();
      lo = it->lo;
      hi = it->hi;
    }
  }

  if (me < 2 * rem) {
    if (me % 2 == 1) {
      co_await r.send(c, me - 1, a.tag_base + kEpilogueTag, nbytes,
                      as_const(a.recv));
    } else {
      co_await r.recv(c, me + 1, a.tag_base + kEpilogueTag, nbytes, a.recv);
    }
  }
}

sim::CoTask<void> allreduce_ring(CollArgs a) {
  a.check();
  // The ring's reduce-scatter folds each block in rotation order starting
  // from a different rank per block, which cannot preserve ascending
  // comm-rank operand order. Fall back the way MPICH does for
  // non-commutative ops: recursive doubling keeps every rank's accumulated
  // operand set contiguous in comm-rank order.
  if (!a.op.commutative()) {
    co_await allreduce_recursive_doubling(std::move(a));
    co_return;
  }
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const std::size_t esize = simmpi::dtype_size(a.dt);
  const Part max_part = partition(a.count, p, 0);
  auto tmp_store = a.scratch(max_part.count * esize);
  MutBytes tmp{tmp_store};

  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;

  // Phase 1: reduce-scatter around the ring.
  for (int s = 0; s < p - 1; ++s) {
    const Part give = partition(a.count, p, (me - s + p) % p);
    const Part take = partition(a.count, p, (me - s - 1 + p * 2) % p);
    const std::size_t give_bytes = give.count * esize;
    const std::size_t take_bytes = take.count * esize;
    auto sf = r.isend(c, right, a.tag_base, give_bytes,
                      sub(as_const(a.recv), give.offset * esize, give_bytes));
    co_await r.recv(c, left, a.tag_base, take_bytes,
                    sub(tmp, 0, take_bytes));
    co_await sf->wait();
    co_await r.reduce_compute(take_bytes);
    a.op.apply(a.dt, take.count, sub(a.recv, take.offset * esize, take_bytes),
               sub(as_const(tmp), 0, take_bytes));
  }

  // Phase 2: allgather around the ring.
  for (int s = 0; s < p - 1; ++s) {
    const Part give = partition(a.count, p, (me + 1 - s + p * 2) % p);
    const Part take = partition(a.count, p, (me - s + p) % p);
    const std::size_t give_bytes = give.count * esize;
    const std::size_t take_bytes = take.count * esize;
    auto sf = r.isend(c, right, a.tag_base + 1, give_bytes,
                      sub(as_const(a.recv), give.offset * esize, give_bytes));
    co_await r.recv(c, left, a.tag_base + 1, take_bytes,
                    sub(a.recv, take.offset * esize, take_bytes));
    co_await sf->wait();
  }
}

sim::CoTask<void> allreduce_ring_channels(CollArgs a, int channels) {
  a.check();
  // Same operand-order limitation as the plain ring: fall back for
  // non-commutative ops.
  if (!a.op.commutative()) {
    co_await allreduce_recursive_doubling(std::move(a));
    co_return;
  }
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const int nch = std::max(1, std::min(channels, kMaxRingChannels));
  const std::size_t esize = simmpi::dtype_size(a.dt);

  // The vector splits into `nch` channel sub-vectors, each running its own
  // ring allreduce; every step posts all channel receives, then all channel
  // sends, so up to `nch` flows per rank are on the wire concurrently. Under
  // max-min fair sharing a job's aggregate link share grows with its
  // concurrent flow count, so extra channels buy bandwidth back from
  // background traffic — at the cost of nch per-message overheads per step
  // (the adaptive layer's trade-off; docs/MODEL.md §12).
  struct Chan {
    Part range;           // element range of this channel's sub-vector
    std::size_t tmp_off;  // scratch offset for the in-flight block
  };
  std::vector<Chan> ch(static_cast<std::size_t>(nch));
  std::size_t tmp_bytes = 0;
  for (int k = 0; k < nch; ++k) {
    ch[static_cast<std::size_t>(k)].range = partition(a.count, nch, k);
    ch[static_cast<std::size_t>(k)].tmp_off = tmp_bytes;
    const Part max_part =
        partition(ch[static_cast<std::size_t>(k)].range.count, p, 0);
    tmp_bytes += max_part.count * esize;
  }
  auto tmp_store = a.scratch(tmp_bytes);
  MutBytes tmp{tmp_store};

  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;

  // Phase 1: reduce-scatter, all channels in lockstep per ring step.
  for (int s = 0; s < p - 1; ++s) {
    std::vector<simmpi::RecvHandle> recvs;
    std::vector<std::shared_ptr<sim::Flag>> sends;
    recvs.reserve(static_cast<std::size_t>(nch));
    sends.reserve(static_cast<std::size_t>(nch));
    for (int k = 0; k < nch; ++k) {
      const Chan& cc = ch[static_cast<std::size_t>(k)];
      const Part take = partition(cc.range.count, p, (me - s - 1 + p * 2) % p);
      recvs.push_back(r.irecv(c, left, a.tag_base + k, take.count * esize,
                              sub(tmp, cc.tmp_off, take.count * esize)));
    }
    for (int k = 0; k < nch; ++k) {
      const Chan& cc = ch[static_cast<std::size_t>(k)];
      const Part give = partition(cc.range.count, p, (me - s + p) % p);
      sends.push_back(
          r.isend(c, right, a.tag_base + k, give.count * esize,
                  sub(as_const(a.recv), (cc.range.offset + give.offset) * esize,
                      give.count * esize)));
    }
    std::size_t fold_bytes = 0;
    for (int k = 0; k < nch; ++k) {
      co_await recvs[static_cast<std::size_t>(k)].done->wait();
      fold_bytes +=
          partition(ch[static_cast<std::size_t>(k)].range.count, p,
                    (me - s - 1 + p * 2) % p)
              .count *
          esize;
    }
    co_await sim::wait_all(std::move(sends));
    co_await r.reduce_compute(fold_bytes);
    for (int k = 0; k < nch; ++k) {
      const Chan& cc = ch[static_cast<std::size_t>(k)];
      const Part take = partition(cc.range.count, p, (me - s - 1 + p * 2) % p);
      a.op.apply(a.dt, take.count,
                 sub(a.recv, (cc.range.offset + take.offset) * esize,
                     take.count * esize),
                 sub(as_const(tmp), cc.tmp_off, take.count * esize));
    }
  }

  // Phase 2: allgather, all channels in lockstep per ring step.
  for (int s = 0; s < p - 1; ++s) {
    std::vector<simmpi::RecvHandle> recvs;
    std::vector<std::shared_ptr<sim::Flag>> sends;
    recvs.reserve(static_cast<std::size_t>(nch));
    sends.reserve(static_cast<std::size_t>(nch));
    for (int k = 0; k < nch; ++k) {
      const Chan& cc = ch[static_cast<std::size_t>(k)];
      const Part take = partition(cc.range.count, p, (me - s + p) % p);
      recvs.push_back(
          r.irecv(c, left, a.tag_base + 64 + k, take.count * esize,
                  sub(a.recv, (cc.range.offset + take.offset) * esize,
                      take.count * esize)));
    }
    for (int k = 0; k < nch; ++k) {
      const Chan& cc = ch[static_cast<std::size_t>(k)];
      const Part give = partition(cc.range.count, p, (me + 1 - s + p * 2) % p);
      sends.push_back(
          r.isend(c, right, a.tag_base + 64 + k, give.count * esize,
                  sub(as_const(a.recv), (cc.range.offset + give.offset) * esize,
                      give.count * esize)));
    }
    for (int k = 0; k < nch; ++k) {
      co_await recvs[static_cast<std::size_t>(k)].done->wait();
    }
    co_await sim::wait_all(std::move(sends));
  }
}

sim::CoTask<void> allreduce_binomial(CollArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const std::size_t nbytes = a.bytes();
  auto tmp_store = a.scratch(nbytes);
  MutBytes tmp{tmp_store};

  // Binomial reduce toward comm rank 0.
  {
    int step = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++step) {
      if (me & mask) {
        co_await r.send(c, me - mask, a.tag_base + step, nbytes,
                        as_const(a.recv));
        break;
      }
      const int src = me + mask;
      if (src < p) {
        co_await r.recv(c, src, a.tag_base + step, nbytes, tmp);
        co_await r.reduce_compute(nbytes);
        a.op.apply(a.dt, a.count, a.recv, as_const(tmp));
      }
    }
  }

  // Binomial broadcast from comm rank 0.
  {
    int mask = 1;
    while (mask < p) {
      if (me & mask) {
        co_await r.recv(c, me - mask, a.tag_base + 64, nbytes, a.recv);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (me + mask < p) {
        co_await r.send(c, me + mask, a.tag_base + 64, nbytes,
                        as_const(a.recv));
      }
      mask >>= 1;
    }
  }
}

sim::CoTask<void> allreduce_gather_bcast(CollArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  co_await copy_in(a);
  const int p = c.size();
  if (p == 1) co_return;
  const std::size_t nbytes = a.bytes();

  if (me == 0) {
    auto tmp_store = a.scratch(nbytes);
    MutBytes tmp{tmp_store};
    for (int src = 1; src < p; ++src) {
      co_await r.recv(c, src, a.tag_base, nbytes, tmp);
      co_await r.reduce_compute(nbytes);
      a.op.apply(a.dt, a.count, a.recv, as_const(tmp));
    }
    std::vector<std::shared_ptr<sim::Flag>> sends;
    sends.reserve(static_cast<std::size_t>(p) - 1);
    for (int dst = 1; dst < p; ++dst) {
      sends.push_back(
          r.isend(c, dst, a.tag_base + 1, nbytes, as_const(a.recv)));
    }
    co_await sim::wait_all(std::move(sends));
  } else {
    co_await r.send(c, 0, a.tag_base, nbytes, as_const(a.recv));
    co_await r.recv(c, 0, a.tag_base + 1, nbytes, a.recv);
  }
}

// ---- Registry entries ----

namespace {

CollDescriptor flat_desc(const char* name,
                         sim::CoTask<void> (*fn)(CollArgs)) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::allreduce;
  d.make = [fn](CollArgs a, const CollSpec&) { return fn(std::move(a)); };
  return d;
}

const CollRegistration reg_rd{flat_desc("rd", allreduce_recursive_doubling)};
const CollRegistration reg_rsa{
    flat_desc("rsa", allreduce_reduce_scatter_allgather)};
const CollRegistration reg_ring{flat_desc("ring", allreduce_ring)};
// Multi-channel ring: `leaders` is the concurrent channel count. Works on
// any sub-communicator (not world_only) and is deliberately not part of the
// default tuning sweep — the adaptive re-planning layer (src/adapt/) selects
// its channel count from observed congestion instead.
const CollRegistration reg_cring{{
    "cring",
    CollKind::allreduce,
    CollCaps{.uses_leaders = true},
    [](CollArgs a, const CollSpec& s) {
      return allreduce_ring_channels(std::move(a), s.leaders);
    },
}};
const CollRegistration reg_binomial{flat_desc("binomial", allreduce_binomial)};
const CollRegistration reg_gather_bcast{
    flat_desc("gather-bcast", allreduce_gather_bcast)};

}  // namespace

void link_flat_collectives() {}

}  // namespace dpml::coll
