#include "coll/sharp_coll.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "coll/dpml.hpp"
#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;
using simmpi::ShmWindow;

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

ConstBytes input_of(const CollArgs& a) {
  return a.inplace ? as_const(a.recv) : a.send;
}

// World ranks of the node leaders (local rank 0 on every node).
std::vector<int> node_leader_members(Machine& m) {
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(m.num_nodes()));
  for (int n = 0; n < m.num_nodes(); ++n) members.push_back(n * m.ppn());
  return members;
}

// World ranks of the socket leaders (first local rank of each populated
// socket on every node).
std::vector<int> socket_leader_members(Machine& m) {
  const int per_socket = ceil_div(m.ppn(), m.config().node.sockets);
  const int sockets_used = ceil_div(m.ppn(), per_socket);
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(m.num_nodes()) * sockets_used);
  for (int n = 0; n < m.num_nodes(); ++n) {
    for (int s = 0; s < sockets_used; ++s) {
      members.push_back(n * m.ppn() + s * per_socket);
    }
  }
  return members;
}

}  // namespace

const char* sharp_design_name(SharpDesign d) {
  switch (d) {
    case SharpDesign::node_leader: return "sharp-node-leader";
    case SharpDesign::socket_leader: return "sharp-socket-leader";
  }
  return "?";
}

sim::CoTask<void> allreduce_sharp(CollArgs a, sharp::SharpFabric& fabric,
                                  SharpDesign design) {
  a.check();
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "SHArP designs run on the world communicator");
  const std::size_t nbytes = a.bytes();

  // Payloads beyond the aggregation hardware's limit fall back to the
  // host-based path (the paper only uses SHArP for small messages). The
  // fabric also aggregates contributions in arrival order, which cannot
  // honour the ascending comm-rank fold non-commutative ops require.
  if (!fabric.supports(nbytes) || !a.op.commutative()) {
    co_await allreduce_single_leader(std::move(a), InterAlgo::automatic);
    co_return;
  }

  const int ppn = m.ppn();
  if (ppn == 1) {
    // Designs coincide: every rank is a fabric port.
    const sharp::Group& g =
        fabric.named_group("all_ranks", m.world().ranks());
    co_await copy_in(a);
    co_await fabric.allreduce(r, g, a.count, a.dt, a.op, as_const(a.recv),
                              a.recv);
    co_return;
  }

  if (design == SharpDesign::node_leader) {
    const std::int64_t key = r.next_coll_key(a.comm->context());
    CollSlot& slot = r.node().slot(key);
    if (!slot.initialized) {
      slot.windows.emplace_back(static_cast<std::size_t>(ppn - 1) * nbytes,
                                m.socket_of_local(0), m.with_data());
      slot.windows.emplace_back(nbytes, m.socket_of_local(0), m.with_data());
      slot.latches.emplace_back(r.engine(), ppn - 1);
      slot.flags.emplace_back(r.engine());
      slot.initialized = true;
    }
    if (r.local_rank() == 0) {
      const sharp::Group& g =
          fabric.named_group("node_leaders", node_leader_members(m));
      co_await copy_in(a);
      co_await slot.latches[0].wait();
      // Node leader collects from both sockets: half the contributors pay
      // the cross-socket penalty (the paper's §4.3 bottleneck).
      co_await r.compute(m.collection_cost(0, 0, ppn));
      co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * nbytes);
      if (slot.windows[0].has_data() && !a.recv.empty()) {
        for (int i = 0; i < ppn - 1; ++i) {
          a.op.apply(a.dt, a.count, a.recv,
                     slot.windows[0].data().subspan(
                         static_cast<std::size_t>(i) * nbytes, nbytes));
        }
      }
      co_await fabric.allreduce(r, g, a.count, a.dt, a.op, as_const(a.recv),
                                a.recv);
      co_await r.shm_put(slot.windows[1], 0, nbytes, as_const(a.recv));
      co_await r.signal(slot.flags[0]);
    } else {
      co_await r.shm_put(slot.windows[0],
                         static_cast<std::size_t>(r.local_rank() - 1) * nbytes,
                         nbytes, input_of(a));
      co_await r.signal(slot.latches[0]);
      co_await slot.flags[0].wait();
      co_await r.shm_get(slot.windows[1], 0, nbytes, a.recv);
    }
    r.node().release_slot(key, ppn);
    co_return;
  }

  // Socket-leader design.
  const int per_socket = ceil_div(ppn, m.config().node.sockets);
  const int sockets_used = ceil_div(ppn, per_socket);
  const int s = r.socket();
  const int leader_local = s * per_socket;
  const int socket_count = std::min(per_socket, ppn - leader_local);
  const bool is_leader = r.local_rank() == leader_local;

  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    for (int ss = 0; ss < sockets_used; ++ss) {
      const int cnt = std::min(per_socket, ppn - ss * per_socket);
      slot.windows.emplace_back(static_cast<std::size_t>(cnt - 1) * nbytes, ss,
                                m.with_data());
      slot.windows.emplace_back(nbytes, ss, m.with_data());
      slot.latches.emplace_back(r.engine(), cnt - 1);
      slot.flags.emplace_back(r.engine());
    }
    slot.initialized = true;
  }
  ShmWindow& gather = slot.windows[static_cast<std::size_t>(2 * s)];
  ShmWindow& result = slot.windows[static_cast<std::size_t>(2 * s + 1)];

  if (is_leader) {
    const sharp::Group& g =
        fabric.named_group("socket_leaders", socket_leader_members(m));
    co_await copy_in(a);
    co_await slot.latches[static_cast<std::size_t>(s)].wait();
    // Socket leader only collects within its own socket: no cross-socket
    // polling — the design's point.
    co_await r.compute(
        m.collection_cost(leader_local, leader_local, leader_local + socket_count));
    co_await r.reduce_compute(static_cast<std::size_t>(socket_count - 1) *
                              nbytes);
    if (gather.has_data() && !a.recv.empty()) {
      for (int i = 0; i < socket_count - 1; ++i) {
        a.op.apply(a.dt, a.count, a.recv,
                   gather.data().subspan(static_cast<std::size_t>(i) * nbytes,
                                         nbytes));
      }
    }
    co_await fabric.allreduce(r, g, a.count, a.dt, a.op, as_const(a.recv),
                              a.recv);
    co_await r.shm_put(result, 0, nbytes, as_const(a.recv));
    co_await r.signal(slot.flags[static_cast<std::size_t>(s)]);
  } else {
    const int idx = r.local_rank() - leader_local - 1;
    co_await r.shm_put(gather, static_cast<std::size_t>(idx) * nbytes, nbytes,
                       input_of(a));
    co_await r.signal(slot.latches[static_cast<std::size_t>(s)]);
    co_await slot.flags[static_cast<std::size_t>(s)].wait();
    co_await r.shm_get(result, 0, nbytes, a.recv);
  }
  r.node().release_slot(key, ppn);
}

// ---- Registry entries ----

namespace {

CollDescriptor sharp_desc(const char* name, SharpDesign design) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::allreduce;
  d.caps = CollCaps{.needs_fabric = true,
                    .world_only = true,
                    .tunable = true,
                    // The fabric's useful aggregation range; the tuner only
                    // sweeps the SHArP designs at paper-small sizes.
                    .max_tune_bytes = 4096};
  d.make = [design](CollArgs a, const CollSpec& s) {
    DPML_CHECK_MSG(s.fabric != nullptr,
                   std::string(sharp_design_name(design)) +
                       " requires an attached SharpFabric");
    return allreduce_sharp(std::move(a), *s.fabric, design);
  };
  return d;
}

const CollRegistration reg_sharp_node{
    sharp_desc("sharp-node-leader", SharpDesign::node_leader)};
const CollRegistration reg_sharp_socket{
    sharp_desc("sharp-socket-leader", SharpDesign::socket_leader)};

}  // namespace

void link_sharp_collectives() {}

}  // namespace dpml::coll
