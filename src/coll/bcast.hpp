// Broadcast algorithms.
//
// Substrate for the hierarchical designs (phase-4 of single-leader allreduce
// is a broadcast) and part of the paper's stated future work: applying the
// multi-leader/shared-memory treatment to other collectives. Three designs:
//
//  * binomial            — classic lg(p) tree (small messages)
//  * scatter_allgather   — van de Geijn: binomial scatter + ring allgather
//                          (large messages; bandwidth-optimal)
//  * single_leader       — shm-hierarchical: inter-node bcast among node
//                          leaders, shared-memory broadcast within the node
#pragma once

#include "coll/coll.hpp"

namespace dpml::coll {

struct BcastArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;           // comm rank holding the payload
  std::size_t bytes = 0;
  MutBytes buf{};         // in/out: valid at root, filled elsewhere
  int tag_base = 0;

  void check() const;
};

enum class BcastAlgo { binomial, scatter_allgather, single_leader, automatic };

const char* bcast_algo_name(BcastAlgo a);

sim::CoTask<void> bcast(BcastArgs a, BcastAlgo algo = BcastAlgo::automatic);

sim::CoTask<void> bcast_binomial(BcastArgs a);
sim::CoTask<void> bcast_scatter_allgather(BcastArgs a);
// Requires the world communicator (leaders are per-node); root must be a
// node leader's world rank or the payload is first forwarded to one.
sim::CoTask<void> bcast_single_leader(BcastArgs a);

}  // namespace dpml::coll
