// Rooted reduction (MPI_Reduce).
//
// Includes the DPML extension the paper names as future work (§8): the same
// four-phase data-partitioned multi-leader structure, with phase 3 running a
// rooted inter-node reduce per leader group and phase 4 collecting the
// partitions at the root instead of broadcasting them.
//
// Designs:
//  * binomial        — lg(p) reduction tree (small messages)
//  * rsa_gather      — ring reduce-scatter + segment gather at the root
//                      (bandwidth-optimal for large messages)
//  * single_leader   — shm gather + leader reduce + inter-node rooted reduce
//  * dpml            — multi-leader partitioned (future-work extension)
#pragma once

#include "coll/coll.hpp"
#include "coll/dpml.hpp"

namespace dpml::coll {

struct ReduceArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::size_t count = 0;
  Dtype dt = Dtype::f32;
  Op op = simmpi::ReduceOp::sum;
  ConstBytes send{};
  MutBytes recv{};      // significant only at root
  int tag_base = 0;
  bool inplace = false;

  std::size_t bytes() const { return count * simmpi::dtype_size(dt); }
  std::vector<std::byte> scratch(std::size_t nbytes) const;
  void check() const;
};

enum class ReduceAlgo { binomial, rsa_gather, single_leader, dpml, automatic };

const char* reduce_algo_name(ReduceAlgo a);

sim::CoTask<void> reduce(ReduceArgs a, ReduceAlgo algo = ReduceAlgo::automatic,
                         DpmlParams dpml_params = {});

sim::CoTask<void> reduce_binomial(ReduceArgs a);
sim::CoTask<void> reduce_rsa_gather(ReduceArgs a);
sim::CoTask<void> reduce_single_leader(ReduceArgs a);
sim::CoTask<void> reduce_dpml(ReduceArgs a, DpmlParams params);

}  // namespace dpml::coll
