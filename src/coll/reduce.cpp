#include "coll/reduce.hpp"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;
using simmpi::ShmWindow;

std::vector<std::byte> ReduceArgs::scratch(std::size_t nbytes) const {
  DPML_CHECK(rank != nullptr);
  if (!rank->machine().with_data()) return {};
  return std::vector<std::byte>(nbytes);
}

void ReduceArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "ReduceArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  const std::size_t nbytes = bytes();
  DPML_CHECK_MSG(recv.empty() || recv.size() == nbytes,
                 "recv buffer size mismatch");
  DPML_CHECK_MSG(send.empty() || send.size() == nbytes,
                 "send buffer size mismatch");
  const bool am_root = comm->rank_of_world(rank->world_rank()) == root;
  if (rank->machine().with_data() && nbytes > 0) {
    if (inplace) {
      // In-place: this rank's input (and, at the root, output) is in recv.
      DPML_CHECK_MSG(!recv.empty(), "in-place reduce needs recv buffer");
    } else if (am_root) {
      DPML_CHECK_MSG(!recv.empty(), "data-mode reduce root needs recv buffer");
      DPML_CHECK_MSG(!send.empty(), "data-mode reduce root needs send buffer");
    } else {
      DPML_CHECK_MSG(!send.empty(), "data-mode reduce needs send buffer");
    }
  }
}

const char* reduce_algo_name(ReduceAlgo a) {
  switch (a) {
    case ReduceAlgo::binomial: return "binomial";
    case ReduceAlgo::rsa_gather: return "rsa-gather";
    case ReduceAlgo::single_leader: return "single-leader";
    case ReduceAlgo::dpml: return "dpml";
    case ReduceAlgo::automatic: return "auto";
  }
  return "?";
}

sim::CoTask<void> reduce(ReduceArgs a, ReduceAlgo algo,
                         DpmlParams dpml_params) {
  if (algo == ReduceAlgo::automatic) {
    algo = a.bytes() <= 8 * 1024 ? ReduceAlgo::binomial
                                 : ReduceAlgo::rsa_gather;
  }
  switch (algo) {
    case ReduceAlgo::binomial: return reduce_binomial(std::move(a));
    case ReduceAlgo::rsa_gather: return reduce_rsa_gather(std::move(a));
    case ReduceAlgo::single_leader: return reduce_single_leader(std::move(a));
    case ReduceAlgo::dpml: return reduce_dpml(std::move(a), dpml_params);
    case ReduceAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable reduce algo");
  return {};
}

namespace {

// Prepare the local accumulator. In-place: every rank's input already sits
// in recv (the convention the hierarchical designs use internally), so recv
// is the accumulator. Otherwise the root accumulates into recv and other
// ranks into scratch; the initial copy is charged either way.
sim::CoTask<MutBytes> prepare_acc(const ReduceArgs& a, bool am_root,
                                  std::vector<std::byte>& store) {
  Rank& r = *a.rank;
  const std::size_t nbytes = a.bytes();
  const auto& host = r.machine().config().host;
  if (a.inplace) co_return a.recv;
  co_await r.engine().delay(host.copy_startup +
                            sim::transfer_time(nbytes, host.copy_bw));
  if (am_root) {
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data(), a.send.data(), nbytes);
    }
    co_return a.recv;
  }
  store = a.scratch(nbytes);
  MutBytes acc{store};
  if (!store.empty() && !a.send.empty()) {
    std::memcpy(store.data(), a.send.data(), nbytes);
  }
  co_return acc;
}

}  // namespace

sim::CoTask<void> reduce_binomial(ReduceArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t nbytes = a.bytes();
  const bool am_root = me == a.root;
  std::vector<std::byte> acc_store;
  MutBytes acc = co_await prepare_acc(a, am_root, acc_store);
  if (p == 1) co_return;
  auto tmp_store = a.scratch(nbytes);
  MutBytes tmp{tmp_store};
  // The usual vrank rotation makes the root the tree head but folds wrapped
  // rank blocks out of order. Non-commutative ops with root != 0 instead run
  // the tree in natural comm-rank order toward rank 0 (every fold is then
  // acc (op) later-block) and forward the result to the root afterwards.
  const bool rotate = a.op.commutative() || a.root == 0;
  const int vrank = rotate ? (me - a.root + p) % p : me;
  auto actual = [&](int v) { return rotate ? (v + a.root) % p : v; };

  int step = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++step) {
    if (vrank & mask) {
      co_await r.send(c, actual(vrank - mask), a.tag_base + step, nbytes,
                      as_const(acc));
      break;
    }
    if (vrank + mask < p) {
      co_await r.recv(c, actual(vrank + mask), a.tag_base + step, nbytes, tmp);
      co_await r.reduce_compute(nbytes);
      a.op.apply(a.dt, a.count, acc, as_const(tmp));
    }
  }
  if (!rotate) {
    if (me == 0) {
      co_await r.send(c, a.root, a.tag_base + 60, nbytes, as_const(acc));
    } else if (am_root) {
      co_await r.recv(c, 0, a.tag_base + 60, nbytes, acc);
    }
  }
}

sim::CoTask<void> reduce_rsa_gather(ReduceArgs a) {
  a.check();
  // The ring reduce-scatter folds each block in rotation order, which cannot
  // preserve ascending comm-rank operand order. MPICH-style fallback.
  if (!a.op.commutative()) {
    co_await reduce_binomial(std::move(a));
    co_return;
  }
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t esize = simmpi::dtype_size(a.dt);
  const bool am_root = me == a.root;
  std::vector<std::byte> acc_store;
  MutBytes acc = co_await prepare_acc(a, am_root, acc_store);
  if (p == 1) co_return;
  const Part block0 = partition(a.count, p, 0);
  auto tmp_store = a.scratch(block0.count * esize);
  MutBytes tmp{tmp_store};

  // Ring reduce-scatter over `acc`.
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s < p - 1; ++s) {
    const Part give = partition(a.count, p, (me - s + p) % p);
    const Part take = partition(a.count, p, (me - s - 1 + 2 * p) % p);
    const std::size_t gbytes = give.count * esize;
    const std::size_t tbytes = take.count * esize;
    auto sf = r.isend(c, right, a.tag_base, gbytes,
                      sub(as_const(acc), give.offset * esize, gbytes));
    co_await r.recv(c, left, a.tag_base, tbytes, sub(tmp, 0, tbytes));
    co_await sf->wait();
    co_await r.reduce_compute(tbytes);
    a.op.apply(a.dt, take.count, sub(acc, take.offset * esize, tbytes),
               sub(as_const(tmp), 0, tbytes));
  }

  // Gather the fully reduced segments at the root. Rank me owns block
  // (me+1) mod p after the ring phase.
  const int my_block = (me + 1) % p;
  const Part mine = partition(a.count, p, my_block);
  if (am_root) {
    std::vector<std::shared_ptr<sim::Flag>> pending;
    for (int src = 0; src < p; ++src) {
      if (src == me) continue;
      const Part pb = partition(a.count, p, (src + 1) % p);
      auto h = r.irecv(c, src, a.tag_base + 1, pb.count * esize,
                       sub(a.recv, pb.offset * esize, pb.count * esize));
      pending.push_back(h.done);
    }
    // The root's own block may live in scratch (non-in-place path already
    // reduced into recv, so only the data copy is conceptually needed; the
    // time was charged by the ring phase).
    if (!acc.empty() && !a.recv.empty() && acc.data() != a.recv.data()) {
      std::memcpy(a.recv.data() + mine.offset * esize,
                  acc.data() + mine.offset * esize, mine.count * esize);
    }
    co_await sim::wait_all(std::move(pending));
  } else {
    co_await r.send(c, a.root, a.tag_base + 1, mine.count * esize,
                    sub(as_const(acc), mine.offset * esize,
                        mine.count * esize));
  }
}

sim::CoTask<void> reduce_single_leader(ReduceArgs a) {
  a.check();
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "hierarchical reduce runs on the world communicator");
  const int ppn = m.ppn();
  if (ppn == 1) {
    co_await reduce_binomial(std::move(a));
    co_return;
  }
  const Comm& c = *a.comm;
  const int root_world = c.world_rank(a.root);
  const int root_node = root_world / ppn;
  const int h = m.num_nodes();
  const std::size_t nbytes = a.bytes();
  const bool is_leader = r.local_rank() == 0;
  const bool am_root = r.world_rank() == root_world;

  const std::int64_t key = r.next_coll_key(c.context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    slot.windows.emplace_back(static_cast<std::size_t>(ppn - 1) * nbytes,
                              m.socket_of_local(0), m.with_data());
    slot.latches.emplace_back(r.engine(), ppn - 1);
    slot.initialized = true;
  }

  if (is_leader) {
    std::vector<std::byte> acc_store;
    // The leader accumulates into recv only when it is also the root.
    ReduceArgs la = a;
    MutBytes acc = co_await prepare_acc(la, am_root, acc_store);
    co_await slot.latches[0].wait();
    co_await r.compute(m.collection_cost(0, 0, ppn));
    co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * nbytes);
    if (slot.windows[0].has_data() && !acc.empty()) {
      for (int i = 0; i < ppn - 1; ++i) {
        a.op.apply(a.dt, a.count, acc,
                   slot.windows[0].data().subspan(
                       static_cast<std::size_t>(i) * nbytes, nbytes));
      }
    }
    if (h > 1) {
      ReduceArgs ia = a;
      ia.comm = &m.leader_comm(0, 1);
      ia.root = root_node;
      ia.send = {};
      ia.recv = acc;
      ia.inplace = true;
      ia.tag_base = static_cast<int>((key & 0x3ff)) * 2048;
      co_await reduce_binomial(std::move(ia));
    }
    if (r.node_id() == root_node && !am_root) {
      co_await r.send(c, a.root, a.tag_base + 7, nbytes, as_const(acc));
    }
  } else {
    // In-place input is in recv on EVERY rank (see prepare_acc), not just
    // the root; reading send here striped empty buffers in data mode.
    co_await r.shm_put(slot.windows[0],
                       static_cast<std::size_t>(r.local_rank() - 1) * nbytes,
                       nbytes, a.inplace ? as_const(a.recv) : a.send);
    co_await r.signal(slot.latches[0]);
    if (am_root) {
      co_await r.recv(c, c.rank_of_world(r.node_id() * ppn), a.tag_base + 7,
                      nbytes, a.recv);
    }
  }
  r.node().release_slot(key, ppn);
}

sim::CoTask<void> reduce_dpml(ReduceArgs a, DpmlParams params) {
  a.check();
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "DPML reduce runs on the world communicator");
  const int ppn = m.ppn();
  const int h = m.num_nodes();
  const int l = std::clamp(params.leaders, 1, ppn);
  const std::size_t esize = simmpi::dtype_size(a.dt);
  const Comm& c = *a.comm;
  const int root_world = c.world_rank(a.root);
  const int root_node = root_world / ppn;
  const bool am_root = r.world_rank() == root_world;

  if (ppn == 1) {
    co_await reduce_binomial(std::move(a));
    co_return;
  }

  const std::int64_t key = r.next_coll_key(c.context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    for (int j = 0; j < l; ++j) {
      const Part pj = partition(a.count, l, j);
      const std::size_t pbytes = pj.count * esize;
      const int owner = m.socket_of_local(m.leader_local_rank(j, l));
      slot.windows.emplace_back(static_cast<std::size_t>(ppn) * pbytes, owner,
                                m.with_data());
      slot.windows.emplace_back(pbytes, owner, m.with_data());
      slot.flags.emplace_back(r.engine());
    }
    slot.latches.emplace_back(r.engine(), ppn);
    slot.initialized = true;
  }
  sim::Latch& gathered = slot.latches[0];

  // Phase 1: everyone stripes its input into the leaders' windows. In-place
  // input is in recv on EVERY rank (see prepare_acc), not just the root.
  const ConstBytes input = a.inplace ? as_const(a.recv) : a.send;
  for (int j = 0; j < l; ++j) {
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    co_await r.shm_put(slot.windows[2 * j],
                       static_cast<std::size_t>(r.local_rank()) * pbytes,
                       pbytes, sub(input, pj.offset * esize, pbytes));
  }
  co_await r.signal(gathered);

  // Phases 2-3: leaders reduce locally, then a rooted inter-node reduce per
  // leader group toward the root node's leader.
  const int my_leader = m.leader_index_of_local(r.local_rank(), l);
  std::vector<std::byte> part_store;
  if (my_leader >= 0) {
    const int j = my_leader;
    const Part pj = partition(a.count, l, j);
    const std::size_t pbytes = pj.count * esize;
    ShmWindow& gather = slot.windows[2 * j];
    co_await gathered.wait();
    co_await r.compute(m.collection_cost(r.local_rank(), 0, ppn));
    part_store = a.scratch(pbytes);
    MutBytes part{part_store};
    if (gather.has_data() && pbytes > 0) {
      std::memcpy(part.data(), gather.data().data(), pbytes);
      for (int i = 1; i < ppn; ++i) {
        a.op.apply(a.dt, pj.count, part,
                   gather.data().subspan(static_cast<std::size_t>(i) * pbytes,
                                         pbytes));
      }
    }
    co_await r.reduce_compute(static_cast<std::size_t>(ppn - 1) * pbytes);
    if (h > 1) {
      ReduceArgs ia = a;
      ia.comm = &m.leader_comm(j, l);
      ia.root = root_node;  // leader comms are ordered by node id
      ia.count = pj.count;
      ia.send = {};
      ia.recv = part;
      ia.inplace = true;
      ia.tag_base = static_cast<int>((key & 0x3ff)) * 2048;
      co_await reduce_binomial(std::move(ia));
    }
    if (r.node_id() == root_node) {
      co_await r.shm_put(slot.windows[2 * j + 1], 0, pbytes, as_const(part));
      co_await r.signal(slot.flags[j]);
    }
  }

  // Phase 4: the root collects every partition from its node's windows.
  if (am_root) {
    for (int j = 0; j < l; ++j) {
      const Part pj = partition(a.count, l, j);
      const std::size_t pbytes = pj.count * esize;
      co_await slot.flags[j].wait();
      co_await r.shm_get(slot.windows[2 * j + 1], 0, pbytes,
                         sub(a.recv, pj.offset * esize, pbytes));
    }
  }
  r.node().release_slot(key, ppn);
}

// ---- Registry entries ----

namespace {

// The registry's shared CollArgs entry currency, adapted to ReduceArgs.
ReduceArgs to_reduce_args(const CollArgs& a) {
  ReduceArgs ra;
  ra.rank = a.rank;
  ra.comm = a.comm;
  ra.root = a.root;
  ra.count = a.count;
  ra.dt = a.dt;
  ra.op = a.op;
  ra.send = a.send;
  ra.recv = a.recv;
  ra.tag_base = a.tag_base;
  ra.inplace = a.inplace;
  return ra;
}

CollDescriptor reduce_desc(const char* name, ReduceAlgo algo, CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::reduce;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec& s) {
    DpmlParams p;
    p.leaders = s.leaders;
    p.pipeline_k = s.pipeline_k;
    p.inter = s.inter;
    return reduce(to_reduce_args(a), algo, p);
  };
  return d;
}

const CollRegistration reg_reduce_binomial{
    reduce_desc("binomial", ReduceAlgo::binomial, CollCaps{.tunable = true})};
const CollRegistration reg_reduce_rsa{reduce_desc(
    "rsa-gather", ReduceAlgo::rsa_gather, CollCaps{.tunable = true})};
const CollRegistration reg_reduce_single_leader{
    reduce_desc("single-leader", ReduceAlgo::single_leader,
                CollCaps{.world_only = true, .tunable = true})};
const CollRegistration reg_reduce_dpml{
    reduce_desc("dpml", ReduceAlgo::dpml,
                CollCaps{.uses_leaders = true,
                         .world_only = true,
                         .tunable = true})};
const CollRegistration reg_reduce_auto{
    reduce_desc("auto", ReduceAlgo::automatic, CollCaps{})};

}  // namespace

void link_reduce_collectives() {}

}  // namespace dpml::coll
