// SHArP-based allreduce designs (paper §4.3).
//
//  * node_leader: one leader per node gathers all local vectors through
//    shared memory, reduces them, joins the in-network aggregation, and
//    broadcasts the result locally. Half the node's processes pay the
//    cross-socket copy penalty in both the gather and broadcast phases —
//    the bottleneck the paper identifies.
//
//  * socket_leader: one leader per socket; local traffic stays inside each
//    socket, and all socket leaders (2·nodes ports on dual-socket Xeon)
//    join the SHArP group. Keeps the number of fabric ports small while
//    avoiding the socket interconnect.
//
// If the payload exceeds the fabric's aggregation limit the designs fall
// back to the host-based single-leader algorithm (as the runtime would).
#pragma once

#include "coll/coll.hpp"
#include "sharp/sharp.hpp"

namespace dpml::coll {

enum class SharpDesign { node_leader, socket_leader };

const char* sharp_design_name(SharpDesign d);

sim::CoTask<void> allreduce_sharp(CollArgs a, sharp::SharpFabric& fabric,
                                  SharpDesign design);

}  // namespace dpml::coll
