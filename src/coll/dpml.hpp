// Hierarchical allreduce designs (paper §4).
//
//  * allreduce_single_leader — the traditional one-leader-per-node scheme
//    MVAPICH2-style: shm gather to the node leader, leader-only inter-node
//    allreduce, shm broadcast. This is the design whose drawbacks (serial
//    (ppn-1)·n reduction, one inter-node stream per node) DPML removes.
//
//  * allreduce_dpml — Data Partitioning-based Multi-Leader (paper §4.1):
//    every rank splits its vector into `leaders` partitions and copies each
//    into the owning leader's shared-memory window (phase 1); leaders reduce
//    their partition across all local ranks in parallel (phase 2); each
//    leader runs a concurrent inter-node allreduce with its peers on other
//    nodes (phase 3); ranks copy the fully-reduced partitions back (phase 4).
//
//  * pipeline_k > 1 selects DPML-Pipelined (paper §4.2): phase 3 further
//    splits each leader's partition into k sub-partitions moved by
//    non-blocking allreduces + waitall, regaining message-rate concurrency
//    on fabrics whose large-message throughput does not scale (Omni-Path
//    Zone C).
//
// The data-partitioned phases are also exposed as standalone collectives:
// reduce_scatter_dpml is literally phases 1-3 (allreduce_dpml is the
// verified composition reduce-scatter + shared-memory allgather of every
// partition), and allgather_dpml is the communication dual (stripe the
// node's blocks across leaders, one concurrent inter-node allgather per
// leader group, shared-memory collection).
//
// All hierarchical designs require the collective to run on the machine's
// world communicator (leaders are per-node entities), like the paper's
// implementation inside MVAPICH2's shared-memory communicator structure.
#pragma once

#include "coll/coll.hpp"

namespace dpml::coll {

struct DpmlParams {
  int leaders = 1;       // clamped to ppn
  int pipeline_k = 1;    // >1 => DPML-Pipelined
  InterAlgo inter = InterAlgo::automatic;
};

sim::CoTask<void> allreduce_single_leader(CollArgs a,
                                          InterAlgo inter = InterAlgo::automatic);

sim::CoTask<void> allreduce_dpml(CollArgs a, DpmlParams params);

// Standalone DPML reduce-scatter: `a.count` is the per-rank block element
// count (send spans comm_size blocks, recv one block); in-place is not
// supported. Falls back to the flat order-aware dispatch when ppn == 1.
sim::CoTask<void> reduce_scatter_dpml(CollArgs a, DpmlParams params);

// Standalone DPML allgather: `a.count` is the per-rank block element count
// (recv spans comm_size blocks; in-place reads my block from recv). Falls
// back to the flat dispatch when ppn == 1.
sim::CoTask<void> allgather_dpml(CollArgs a, DpmlParams params);

}  // namespace dpml::coll
