// Remaining group collectives used as substrate and exposed publicly:
// gather, scatter, allgather, reduce_scatter, and barrier.
//
// These complete the collective surface an MPI-like runtime needs and serve
// as independently-tested building blocks (e.g. the Rabenseifner allreduce
// is reduce_scatter + allgather; the van de Geijn bcast is scatter +
// allgather).
#pragma once

#include "coll/coll.hpp"

namespace dpml::coll {

// ---- Gather / Scatter (binomial trees, equal block sizes) ----

struct GatherArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::size_t block_bytes = 0;  // per-rank contribution
  ConstBytes send{};            // my block
  MutBytes recv{};              // root only: p * block_bytes
  int tag_base = 0;

  void check() const;
};

sim::CoTask<void> gather_binomial(GatherArgs a);

struct ScatterArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::size_t block_bytes = 0;
  ConstBytes send{};  // root only: p * block_bytes
  MutBytes recv{};    // my block
  int tag_base = 0;

  void check() const;
};

sim::CoTask<void> scatter_binomial(ScatterArgs a);

// ---- Allgather ----

struct AllgatherArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::size_t block_bytes = 0;  // per-rank block
  ConstBytes send{};            // my block
  MutBytes recv{};              // p * block_bytes, my block also written
  int tag_base = 0;

  void check() const;
};

enum class AllgatherAlgo { ring, recursive_doubling, automatic };

sim::CoTask<void> allgather(AllgatherArgs a,
                            AllgatherAlgo algo = AllgatherAlgo::automatic);
sim::CoTask<void> allgather_ring(AllgatherArgs a);
// Recursive doubling; non-power-of-two sizes fall back to ring.
sim::CoTask<void> allgather_rd(AllgatherArgs a);

// ---- Reduce-scatter (equal block counts per rank) ----

struct ReduceScatterArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::size_t block_count = 0;  // elements each rank receives
  Dtype dt = Dtype::f32;
  Op op = simmpi::ReduceOp::sum;
  ConstBytes send{};  // p * block_count elements
  MutBytes recv{};    // block_count elements
  int tag_base = 0;

  std::size_t block_bytes() const {
    return block_count * simmpi::dtype_size(dt);
  }
  std::size_t total_bytes() const;
  void check() const;
};

// Ring reduce-scatter (bandwidth optimal; p-1 steps).
sim::CoTask<void> reduce_scatter_ring(ReduceScatterArgs a);

// ---- Barrier ----

struct BarrierArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int tag_base = 0;
};

enum class BarrierAlgo { dissemination, single_leader, automatic };

sim::CoTask<void> barrier(BarrierArgs a,
                          BarrierAlgo algo = BarrierAlgo::automatic);
// Dissemination barrier: ceil(lg p) rounds of 0-byte messages.
sim::CoTask<void> barrier_dissemination(BarrierArgs a);
// Hierarchical: intra-node latch, inter-node dissemination among leaders,
// intra-node release (world communicator only).
sim::CoTask<void> barrier_single_leader(BarrierArgs a);

}  // namespace dpml::coll
