// Group collectives: gather, scatter, allgather, reduce_scatter, barrier.
//
// These complete the collective surface an MPI-like runtime needs and serve
// as independently-tested building blocks (e.g. the Rabenseifner allreduce
// is reduce_scatter + allgather; the van de Geijn bcast is scatter +
// allgather). Each is also a first-class registry collective (CollKind) with
// its own algorithm roster; the DPML multi-leader variants of allgather and
// reduce_scatter live in dpml.cpp next to the allreduce they compose into.
#pragma once

#include "coll/coll.hpp"

namespace dpml::coll {

// ---- Gather / Scatter (equal block sizes) ----

enum class GatherAlgo { binomial, linear, automatic };
enum class ScatterAlgo { binomial, linear, automatic };

struct GatherArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::size_t block_bytes = 0;  // per-rank contribution
  ConstBytes send{};            // my block
  MutBytes recv{};              // root only: p * block_bytes
  int tag_base = 0;

  void check() const;
};

sim::CoTask<void> gather(GatherArgs a, GatherAlgo algo = GatherAlgo::automatic);
sim::CoTask<void> gather_binomial(GatherArgs a);
// Root posts p-1 direct receives; optimal for small communicators where the
// root link is the bottleneck anyway and forwarding only adds hops.
sim::CoTask<void> gather_linear(GatherArgs a);

struct ScatterArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::size_t block_bytes = 0;
  ConstBytes send{};  // root only: p * block_bytes
  MutBytes recv{};    // my block
  int tag_base = 0;

  void check() const;
};

sim::CoTask<void> scatter(ScatterArgs a,
                          ScatterAlgo algo = ScatterAlgo::automatic);
sim::CoTask<void> scatter_binomial(ScatterArgs a);
// Root sends p-1 blocks directly (non-blocking fan-out).
sim::CoTask<void> scatter_linear(ScatterArgs a);

// ---- Allgather ----

struct AllgatherArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::size_t block_bytes = 0;  // per-rank block
  ConstBytes send{};            // my block
  MutBytes recv{};              // p * block_bytes, my block also written
  int tag_base = 0;

  void check() const;
};

enum class AllgatherAlgo { ring, recursive_doubling, automatic };

sim::CoTask<void> allgather(AllgatherArgs a,
                            AllgatherAlgo algo = AllgatherAlgo::automatic);
sim::CoTask<void> allgather_ring(AllgatherArgs a);
// Recursive doubling; non-power-of-two sizes fall back to ring.
sim::CoTask<void> allgather_rd(AllgatherArgs a);

// ---- Reduce-scatter (equal block counts per rank) ----

enum class ReduceScatterAlgo { ring, reduce_then_scatter, automatic };

struct ReduceScatterArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::size_t block_count = 0;  // elements each rank receives
  Dtype dt = Dtype::f32;
  Op op = simmpi::ReduceOp::sum;
  ConstBytes send{};  // p * block_count elements
  MutBytes recv{};    // block_count elements
  int tag_base = 0;

  std::size_t block_bytes() const {
    return block_count * simmpi::dtype_size(dt);
  }
  std::size_t total_bytes() const;
  void check() const;
};

// Automatic routes non-commutative ops to reduce_then_scatter (the ring
// folds blocks in rotation order, which cannot honour ascending comm-rank
// operand order); commutative ops take the bandwidth-optimal ring.
sim::CoTask<void> reduce_scatter(
    ReduceScatterArgs a,
    ReduceScatterAlgo algo = ReduceScatterAlgo::automatic);
// Ring reduce-scatter (bandwidth optimal; p-1 steps). Commutative ops only.
sim::CoTask<void> reduce_scatter_ring(ReduceScatterArgs a);
// Binomial reduce of the full vector to comm rank 0 followed by a binomial
// scatter of the reduced blocks. Order-preserving, so it is the fallback
// for non-commutative ops (MPICH-style).
sim::CoTask<void> reduce_scatter_reduce_then_scatter(ReduceScatterArgs a);

// ---- Barrier ----

struct BarrierArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int tag_base = 0;
};

enum class BarrierAlgo { dissemination, single_leader, automatic };

sim::CoTask<void> barrier(BarrierArgs a,
                          BarrierAlgo algo = BarrierAlgo::automatic);
// Dissemination barrier: ceil(lg p) rounds of 0-byte messages.
sim::CoTask<void> barrier_dissemination(BarrierArgs a);
// Hierarchical: intra-node latch, inter-node dissemination among leaders,
// intra-node release (world communicator only).
sim::CoTask<void> barrier_single_leader(BarrierArgs a);

}  // namespace dpml::coll
