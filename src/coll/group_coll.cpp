#include "coll/group_coll.hpp"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "coll/reduce.hpp"
#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;

// ---------------------------------------------------------------------------
// Gather

void GatherArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "GatherArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK(send.empty() || send.size() == block_bytes);
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(recv.empty() || recv.size() == p * block_bytes);
}

sim::CoTask<void> gather(GatherArgs a, GatherAlgo algo) {
  if (algo == GatherAlgo::automatic) {
    // Small trees gain nothing from forwarding; the root link is the
    // bottleneck either way, and linear saves the intermediate hops.
    algo = a.comm->size() <= 4 ? GatherAlgo::linear : GatherAlgo::binomial;
  }
  switch (algo) {
    case GatherAlgo::binomial: return gather_binomial(std::move(a));
    case GatherAlgo::linear: return gather_linear(std::move(a));
    case GatherAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable gather algo");
  return {};
}

sim::CoTask<void> gather_linear(GatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  if (me == a.root) {
    std::vector<std::shared_ptr<sim::Flag>> pending;
    for (int src = 0; src < p; ++src) {
      if (src == me) continue;
      auto h = r.irecv(c, src, a.tag_base, a.block_bytes,
                       sub(a.recv,
                           static_cast<std::size_t>(src) * a.block_bytes,
                           a.recv.empty() ? 0 : a.block_bytes));
      pending.push_back(h.done);
    }
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(a.block_bytes, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data() + static_cast<std::size_t>(me) * a.block_bytes,
                  a.send.data(), a.block_bytes);
    }
    co_await sim::wait_all(std::move(pending));
  } else {
    co_await r.send(c, a.root, a.tag_base, a.block_bytes, a.send);
  }
}

sim::CoTask<void> gather_binomial(GatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const int vrank = (me - a.root + p) % p;
  auto actual = [&](int v) { return (v + a.root) % p; };

  // Each vrank accumulates blocks [vrank, vrank + extent) in vrank space
  // into a staging buffer, then forwards the run to its parent.
  std::vector<std::byte> stage;
  const bool with_data = r.machine().with_data();
  // Worst-case run length for my subtree.
  int extent = 1;
  {
    int mask = 1;
    while (mask < p && !(vrank & mask)) {
      extent = std::min(2 * mask, p - vrank);
      mask <<= 1;
    }
  }
  if (with_data) {
    stage.resize(static_cast<std::size_t>(extent) * a.block_bytes);
    if (!a.send.empty()) {
      std::memcpy(stage.data(), a.send.data(), a.block_bytes);
    }
  }
  MutBytes stageb{stage};

  int filled = 1;  // blocks currently held (starting with my own)
  int step = 0;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const std::size_t nbytes =
          static_cast<std::size_t>(filled) * a.block_bytes;
      co_await r.send(c, actual(vrank - mask), a.tag_base + step, nbytes,
                      sub(as_const(stageb), 0, with_data ? nbytes : 0));
      break;
    }
    const int src = vrank + mask;
    if (src < p) {
      const int incoming = std::min(mask, p - src);
      const std::size_t nbytes =
          static_cast<std::size_t>(incoming) * a.block_bytes;
      co_await r.recv(c, actual(src), a.tag_base + step, nbytes,
                      sub(stageb, static_cast<std::size_t>(filled) *
                                      a.block_bytes,
                          with_data ? nbytes : 0));
      filled += incoming;
    }
    mask <<= 1;
    ++step;
  }

  if (vrank == 0 && !a.recv.empty() && with_data) {
    // Unrotate from vrank space into comm-rank order.
    for (int v = 0; v < p; ++v) {
      const int rank_of_block = actual(v);
      std::memcpy(a.recv.data() +
                      static_cast<std::size_t>(rank_of_block) * a.block_bytes,
                  stage.data() + static_cast<std::size_t>(v) * a.block_bytes,
                  a.block_bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// Scatter

void ScatterArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "ScatterArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK(recv.empty() || recv.size() == block_bytes);
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(send.empty() || send.size() == p * block_bytes);
}

sim::CoTask<void> scatter(ScatterArgs a, ScatterAlgo algo) {
  if (algo == ScatterAlgo::automatic) {
    algo = a.comm->size() <= 4 ? ScatterAlgo::linear : ScatterAlgo::binomial;
  }
  switch (algo) {
    case ScatterAlgo::binomial: return scatter_binomial(std::move(a));
    case ScatterAlgo::linear: return scatter_linear(std::move(a));
    case ScatterAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable scatter algo");
  return {};
}

sim::CoTask<void> scatter_linear(ScatterArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  if (me == a.root) {
    std::vector<std::shared_ptr<sim::Flag>> pending;
    for (int dst = 0; dst < p; ++dst) {
      if (dst == me) continue;
      pending.push_back(
          r.isend(c, dst, a.tag_base, a.block_bytes,
                  sub(a.send, static_cast<std::size_t>(dst) * a.block_bytes,
                      a.send.empty() ? 0 : a.block_bytes)));
    }
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(a.block_bytes, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data(),
                  a.send.data() + static_cast<std::size_t>(me) * a.block_bytes,
                  a.block_bytes);
    }
    co_await sim::wait_all(std::move(pending));
  } else {
    co_await r.recv(c, a.root, a.tag_base, a.block_bytes, a.recv);
  }
}

sim::CoTask<void> scatter_binomial(ScatterArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const int vrank = (me - a.root + p) % p;
  auto actual = [&](int v) { return (v + a.root) % p; };
  const bool with_data = r.machine().with_data();

  // Staging holds blocks [vrank, vrank+run) in vrank space.
  std::vector<std::byte> stage;
  MutBytes stageb{};
  int run = 0;

  if (vrank == 0) {
    run = p;
    if (with_data && !a.send.empty()) {
      stage.resize(static_cast<std::size_t>(p) * a.block_bytes);
      for (int v = 0; v < p; ++v) {
        std::memcpy(stage.data() + static_cast<std::size_t>(v) * a.block_bytes,
                    a.send.data() +
                        static_cast<std::size_t>(actual(v)) * a.block_bytes,
                    a.block_bytes);
      }
      stageb = MutBytes{stage};
    }
  }

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      run = std::min(mask, p - vrank);
      if (with_data) {
        stage.resize(static_cast<std::size_t>(run) * a.block_bytes);
        stageb = MutBytes{stage};
      }
      co_await r.recv(c, actual(vrank - mask), a.tag_base,
                      static_cast<std::size_t>(run) * a.block_bytes, stageb);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p && mask < run) {
      const int nblocks = std::min(run - mask, std::min(mask, p - vrank - mask));
      const std::size_t nbytes =
          static_cast<std::size_t>(nblocks) * a.block_bytes;
      co_await r.send(c, actual(vrank + mask), a.tag_base, nbytes,
                      sub(as_const(stageb),
                          static_cast<std::size_t>(mask) * a.block_bytes,
                          with_data && !stageb.empty() ? nbytes : 0));
      run = mask;
    }
    mask >>= 1;
  }
  if (!a.recv.empty() && with_data && !stage.empty()) {
    std::memcpy(a.recv.data(), stage.data(), a.block_bytes);
  }
}

// ---------------------------------------------------------------------------
// Allgather

void AllgatherArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "AllgatherArgs missing rank/comm");
  DPML_CHECK(send.empty() || send.size() == block_bytes);
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(recv.empty() || recv.size() == p * block_bytes);
  if (rank->machine().with_data() && block_bytes > 0) {
    DPML_CHECK_MSG(!recv.empty(), "data-mode allgather requires recv buffer");
  }
}

sim::CoTask<void> allgather(AllgatherArgs a, AllgatherAlgo algo) {
  if (algo == AllgatherAlgo::automatic) {
    algo = a.block_bytes * static_cast<std::size_t>(a.comm->size()) <= 32 * 1024
               ? AllgatherAlgo::recursive_doubling
               : AllgatherAlgo::ring;
  }
  switch (algo) {
    case AllgatherAlgo::ring: return allgather_ring(std::move(a));
    case AllgatherAlgo::recursive_doubling: return allgather_rd(std::move(a));
    case AllgatherAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable allgather algo");
  return {};
}

namespace {

sim::CoTask<void> allgather_copy_own(const AllgatherArgs& a, int me) {
  const auto& host = a.rank->machine().config().host;
  co_await a.rank->engine().delay(
      host.copy_startup + sim::transfer_time(a.block_bytes, host.copy_bw));
  std::byte* own =
      a.recv.empty() ? nullptr
                     : a.recv.data() + static_cast<std::size_t>(me) *
                                           a.block_bytes;
  // In-place entry (send aliases recv's own block): the data is already home.
  if (!a.send.empty() && own != nullptr && a.send.data() != own) {
    std::memcpy(own, a.send.data(), a.block_bytes);
  }
}

}  // namespace

sim::CoTask<void> allgather_ring(AllgatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  co_await allgather_copy_own(a, me);
  if (p == 1) co_return;
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int give = (me - s + p) % p;
    const int take = (me - s - 1 + 2 * p) % p;
    auto sf = r.isend(c, right, a.tag_base, a.block_bytes,
                      sub(as_const(a.recv),
                          static_cast<std::size_t>(give) * a.block_bytes,
                          a.recv.empty() ? 0 : a.block_bytes));
    co_await r.recv(c, left, a.tag_base, a.block_bytes,
                    sub(a.recv, static_cast<std::size_t>(take) * a.block_bytes,
                        a.recv.empty() ? 0 : a.block_bytes));
    co_await sf->wait();
  }
}

sim::CoTask<void> allgather_rd(AllgatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  if ((p & (p - 1)) != 0) {
    // Non-power-of-two: fall back to the ring (documented behaviour).
    co_await allgather_ring(std::move(a));
    co_return;
  }
  co_await allgather_copy_own(a, me);
  if (p == 1) co_return;

  // At step k, I hold the blocks of my 2^k-aligned group and exchange the
  // whole run with the partner group.
  int step = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++step) {
    const int partner = me ^ mask;
    const int my_base = me & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    const std::size_t nbytes =
        static_cast<std::size_t>(mask) * a.block_bytes;
    auto sf = r.isend(c, partner, a.tag_base + 1 + step, nbytes,
                      sub(as_const(a.recv),
                          static_cast<std::size_t>(my_base) * a.block_bytes,
                          a.recv.empty() ? 0 : nbytes));
    co_await r.recv(c, partner, a.tag_base + 1 + step, nbytes,
                    sub(a.recv,
                        static_cast<std::size_t>(partner_base) * a.block_bytes,
                        a.recv.empty() ? 0 : nbytes));
    co_await sf->wait();
  }
}

// ---------------------------------------------------------------------------
// Reduce-scatter

std::size_t ReduceScatterArgs::total_bytes() const {
  return block_bytes() * static_cast<std::size_t>(comm->size());
}

void ReduceScatterArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "ReduceScatterArgs missing rank/comm");
  DPML_CHECK(send.empty() || send.size() == total_bytes());
  DPML_CHECK(recv.empty() || recv.size() == block_bytes());
}

sim::CoTask<void> reduce_scatter(ReduceScatterArgs a, ReduceScatterAlgo algo) {
  if (algo == ReduceScatterAlgo::automatic) {
    algo = a.op.commutative() ? ReduceScatterAlgo::ring
                              : ReduceScatterAlgo::reduce_then_scatter;
  }
  switch (algo) {
    case ReduceScatterAlgo::ring: return reduce_scatter_ring(std::move(a));
    case ReduceScatterAlgo::reduce_then_scatter:
      return reduce_scatter_reduce_then_scatter(std::move(a));
    case ReduceScatterAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable reduce_scatter algo");
  return {};
}

sim::CoTask<void> reduce_scatter_reduce_then_scatter(ReduceScatterArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t bbytes = a.block_bytes();

  if (p == 1) {
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(bbytes, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data(), a.send.data(), bbytes);
    }
    co_return;
  }

  // Rooted binomial reduce of the full vector to comm rank 0 — with root 0
  // the tree folds in natural comm-rank order, so non-commutative ops are
  // safe — then a binomial scatter of the reduced blocks. The scatter tag
  // space (+64) stays clear of the reduce's step tags.
  std::vector<std::byte> full;
  if (me == 0 && r.machine().with_data()) {
    full.resize(a.total_bytes());
  }
  ReduceArgs ra;
  ra.rank = a.rank;
  ra.comm = a.comm;
  ra.root = 0;
  ra.count = a.block_count * static_cast<std::size_t>(p);
  ra.dt = a.dt;
  ra.op = a.op;
  ra.send = a.send;
  ra.recv = MutBytes{full};
  ra.tag_base = a.tag_base;
  co_await reduce_binomial(std::move(ra));

  ScatterArgs sa;
  sa.rank = a.rank;
  sa.comm = a.comm;
  sa.root = 0;
  sa.block_bytes = bbytes;
  sa.send = ConstBytes{full};
  sa.recv = a.recv;
  sa.tag_base = a.tag_base + 64;
  co_await scatter_binomial(std::move(sa));
}

sim::CoTask<void> reduce_scatter_ring(ReduceScatterArgs a) {
  a.check();
  // The ring folds each block in rotation order, which cannot preserve
  // ascending comm-rank operand order. MPICH-style fallback.
  if (!a.op.commutative()) {
    co_await reduce_scatter_reduce_then_scatter(std::move(a));
    co_return;
  }
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t bbytes = a.block_bytes();
  const bool with_data = r.machine().with_data();

  if (p == 1) {
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(bbytes, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data(), a.send.data(), bbytes);
    }
    co_return;
  }

  // Work on a private copy of the input (the algorithm reduces in place).
  std::vector<std::byte> work;
  if (with_data) {
    work.assign(a.send.begin(), a.send.end());
  }
  MutBytes workb{work};
  const auto& host = r.machine().config().host;
  co_await r.engine().delay(host.copy_startup +
                            sim::transfer_time(a.total_bytes(), host.copy_bw));

  auto tmp_store = a.rank->machine().with_data()
                       ? std::vector<std::byte>(bbytes)
                       : std::vector<std::byte>{};
  MutBytes tmp{tmp_store};
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int give = (me - s + p) % p;
    const int take = (me - s - 1 + 2 * p) % p;
    auto sf = r.isend(c, right, a.tag_base, bbytes,
                      sub(as_const(workb),
                          static_cast<std::size_t>(give) * bbytes,
                          workb.empty() ? 0 : bbytes));
    co_await r.recv(c, left, a.tag_base, bbytes, tmp);
    co_await sf->wait();
    co_await r.reduce_compute(bbytes);
    a.op.apply(a.dt, a.block_count,
               sub(workb, static_cast<std::size_t>(take) * bbytes,
                   workb.empty() ? 0 : bbytes),
               as_const(tmp));
  }
  // After p-1 steps I hold the fully reduced block (me+1) mod p, which
  // belongs to my right neighbour; one final shift delivers block `me` to
  // rank `me` (keeps the MPI_Reduce_scatter_block block assignment).
  const int owned = (me + 1) % p;
  auto sf = r.isend(c, right, a.tag_base + 1, bbytes,
                    sub(as_const(workb),
                        static_cast<std::size_t>(owned) * bbytes,
                        workb.empty() ? 0 : bbytes));
  co_await r.recv(c, left, a.tag_base + 1, bbytes, a.recv);
  co_await sf->wait();
}

// ---------------------------------------------------------------------------
// Barrier

sim::CoTask<void> barrier(BarrierArgs a, BarrierAlgo algo) {
  DPML_CHECK(a.rank != nullptr && a.comm != nullptr);
  if (algo == BarrierAlgo::automatic) {
    const bool is_world =
        a.comm->context() == a.rank->machine().world().context();
    algo = is_world && a.rank->machine().ppn() > 1
               ? BarrierAlgo::single_leader
               : BarrierAlgo::dissemination;
  }
  switch (algo) {
    case BarrierAlgo::dissemination:
      return barrier_dissemination(std::move(a));
    case BarrierAlgo::single_leader:
      return barrier_single_leader(std::move(a));
    case BarrierAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable barrier algo");
  return {};
}

sim::CoTask<void> barrier_dissemination(BarrierArgs a) {
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  int step = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++step) {
    const int to = (me + dist) % p;
    const int from = (me - dist % p + p) % p;
    auto sf = r.isend(c, to, a.tag_base + step, 0);
    co_await r.recv(c, from, a.tag_base + step, 0);
    co_await sf->wait();
  }
}

sim::CoTask<void> barrier_single_leader(BarrierArgs a) {
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "hierarchical barrier runs on the world communicator");
  const int ppn = m.ppn();
  if (ppn == 1) {
    co_await barrier_dissemination(std::move(a));
    co_return;
  }
  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    slot.latches.emplace_back(r.engine(), ppn - 1);
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }
  if (r.local_rank() == 0) {
    co_await slot.latches[0].wait();
    if (m.num_nodes() > 1) {
      BarrierArgs la;
      la.rank = &r;
      la.comm = &m.leader_comm(0, 1);
      co_await barrier_dissemination(la);
    }
    co_await r.signal(slot.flags[0]);
  } else {
    co_await r.signal(slot.latches[0]);
    co_await slot.flags[0].wait();
    co_await r.compute(m.config().host.flag_latency);
  }
  r.node().release_slot(key, ppn);
}

// ---- Registry entries ----

namespace {

// The registry's shared CollArgs entry currency, adapted to the per-op
// argument structs. For every block-shaped kind, CollArgs::count is the
// per-block element count, so CollArgs::bytes() is one block.

GatherArgs to_gather_args(const CollArgs& a) {
  DPML_CHECK_MSG(!a.inplace, "gather does not take MPI_IN_PLACE here; pass "
                             "the root's contribution in send like every "
                             "other rank");
  GatherArgs g;
  g.rank = a.rank;
  g.comm = a.comm;
  g.root = a.root;
  g.block_bytes = a.bytes();
  g.send = a.send;
  g.recv = a.recv;
  g.tag_base = a.tag_base;
  return g;
}

ScatterArgs to_scatter_args(const CollArgs& a) {
  DPML_CHECK_MSG(!a.inplace, "scatter does not take MPI_IN_PLACE here; the "
                             "root receives its own block in recv like every "
                             "other rank");
  ScatterArgs s;
  s.rank = a.rank;
  s.comm = a.comm;
  s.root = a.root;
  s.block_bytes = a.bytes();
  s.send = a.send;
  s.recv = a.recv;
  s.tag_base = a.tag_base;
  return s;
}

AllgatherArgs to_allgather_args(const CollArgs& a) {
  AllgatherArgs g;
  g.rank = a.rank;
  g.comm = a.comm;
  g.block_bytes = a.bytes();
  g.recv = a.recv;
  g.tag_base = a.tag_base;
  if (a.inplace) {
    // MPI_IN_PLACE: my contribution already sits in recv's own block.
    const int me = a.comm->rank_of_world(a.rank->world_rank());
    if (me >= 0 && !a.recv.empty()) {
      g.send = sub(as_const(a.recv),
                   static_cast<std::size_t>(me) * g.block_bytes,
                   g.block_bytes);
    }
  } else {
    g.send = a.send;
  }
  return g;
}

ReduceScatterArgs to_reduce_scatter_args(const CollArgs& a) {
  DPML_CHECK_MSG(!a.inplace,
                 "reduce_scatter does not take MPI_IN_PLACE here; recv is "
                 "one block, send spans the p input blocks");
  ReduceScatterArgs rs;
  rs.rank = a.rank;
  rs.comm = a.comm;
  rs.block_count = a.count;
  rs.dt = a.dt;
  rs.op = a.op;
  rs.send = a.send;
  rs.recv = a.recv;
  rs.tag_base = a.tag_base;
  return rs;
}

BarrierArgs to_barrier_args(const CollArgs& a) {
  BarrierArgs b;
  b.rank = a.rank;
  b.comm = a.comm;
  b.tag_base = a.tag_base;
  return b;
}

CollDescriptor gather_desc(const char* name, GatherAlgo algo, CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::gather;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return gather(to_gather_args(a), algo);
  };
  return d;
}

CollDescriptor scatter_desc(const char* name, ScatterAlgo algo,
                            CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::scatter;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return scatter(to_scatter_args(a), algo);
  };
  return d;
}

CollDescriptor allgather_desc(const char* name, AllgatherAlgo algo,
                              CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::allgather;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return allgather(to_allgather_args(a), algo);
  };
  return d;
}

CollDescriptor reduce_scatter_desc(const char* name, ReduceScatterAlgo algo,
                                   CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::reduce_scatter;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return reduce_scatter(to_reduce_scatter_args(a), algo);
  };
  return d;
}

CollDescriptor barrier_desc(const char* name, BarrierAlgo algo,
                            CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::barrier;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return barrier(to_barrier_args(a), algo);
  };
  return d;
}

const CollRegistration reg_gather_binomial{
    gather_desc("binomial", GatherAlgo::binomial, CollCaps{.tunable = true})};
const CollRegistration reg_gather_linear{
    gather_desc("linear", GatherAlgo::linear, CollCaps{.tunable = true})};
const CollRegistration reg_gather_auto{
    gather_desc("auto", GatherAlgo::automatic, CollCaps{})};

const CollRegistration reg_scatter_binomial{scatter_desc(
    "binomial", ScatterAlgo::binomial, CollCaps{.tunable = true})};
const CollRegistration reg_scatter_linear{
    scatter_desc("linear", ScatterAlgo::linear, CollCaps{.tunable = true})};
const CollRegistration reg_scatter_auto{
    scatter_desc("auto", ScatterAlgo::automatic, CollCaps{})};

const CollRegistration reg_allgather_ring{
    allgather_desc("ring", AllgatherAlgo::ring, CollCaps{.tunable = true})};
const CollRegistration reg_allgather_rd{
    allgather_desc("rd", AllgatherAlgo::recursive_doubling,
                   CollCaps{.tunable = true})};
const CollRegistration reg_allgather_auto{
    allgather_desc("auto", AllgatherAlgo::automatic, CollCaps{})};

const CollRegistration reg_reduce_scatter_ring{reduce_scatter_desc(
    "ring", ReduceScatterAlgo::ring, CollCaps{.tunable = true})};
const CollRegistration reg_reduce_scatter_rts{reduce_scatter_desc(
    "reduce-then-scatter", ReduceScatterAlgo::reduce_then_scatter,
    CollCaps{.tunable = true})};
const CollRegistration reg_reduce_scatter_auto{reduce_scatter_desc(
    "auto", ReduceScatterAlgo::automatic, CollCaps{})};

const CollRegistration reg_barrier_dissemination{barrier_desc(
    "dissemination", BarrierAlgo::dissemination, CollCaps{.tunable = true})};
const CollRegistration reg_barrier_single_leader{
    barrier_desc("single-leader", BarrierAlgo::single_leader,
                 CollCaps{.world_only = true, .tunable = true})};
const CollRegistration reg_barrier_auto{
    barrier_desc("auto", BarrierAlgo::automatic, CollCaps{})};

}  // namespace

void link_group_collectives() {}

}  // namespace dpml::coll
