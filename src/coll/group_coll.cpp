#include "coll/group_coll.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;

// ---------------------------------------------------------------------------
// Gather

void GatherArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "GatherArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK(send.empty() || send.size() == block_bytes);
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(recv.empty() || recv.size() == p * block_bytes);
}

sim::CoTask<void> gather_binomial(GatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const int vrank = (me - a.root + p) % p;
  auto actual = [&](int v) { return (v + a.root) % p; };

  // Each vrank accumulates blocks [vrank, vrank + extent) in vrank space
  // into a staging buffer, then forwards the run to its parent.
  std::vector<std::byte> stage;
  const bool with_data = r.machine().with_data();
  // Worst-case run length for my subtree.
  int extent = 1;
  {
    int mask = 1;
    while (mask < p && !(vrank & mask)) {
      extent = std::min(2 * mask, p - vrank);
      mask <<= 1;
    }
  }
  if (with_data) {
    stage.resize(static_cast<std::size_t>(extent) * a.block_bytes);
    if (!a.send.empty()) {
      std::memcpy(stage.data(), a.send.data(), a.block_bytes);
    }
  }
  MutBytes stageb{stage};

  int filled = 1;  // blocks currently held (starting with my own)
  int step = 0;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const std::size_t nbytes =
          static_cast<std::size_t>(filled) * a.block_bytes;
      co_await r.send(c, actual(vrank - mask), a.tag_base + step, nbytes,
                      sub(as_const(stageb), 0, with_data ? nbytes : 0));
      break;
    }
    const int src = vrank + mask;
    if (src < p) {
      const int incoming = std::min(mask, p - src);
      const std::size_t nbytes =
          static_cast<std::size_t>(incoming) * a.block_bytes;
      co_await r.recv(c, actual(src), a.tag_base + step, nbytes,
                      sub(stageb, static_cast<std::size_t>(filled) *
                                      a.block_bytes,
                          with_data ? nbytes : 0));
      filled += incoming;
    }
    mask <<= 1;
    ++step;
  }

  if (vrank == 0 && !a.recv.empty() && with_data) {
    // Unrotate from vrank space into comm-rank order.
    for (int v = 0; v < p; ++v) {
      const int rank_of_block = actual(v);
      std::memcpy(a.recv.data() +
                      static_cast<std::size_t>(rank_of_block) * a.block_bytes,
                  stage.data() + static_cast<std::size_t>(v) * a.block_bytes,
                  a.block_bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// Scatter

void ScatterArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "ScatterArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK(recv.empty() || recv.size() == block_bytes);
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(send.empty() || send.size() == p * block_bytes);
}

sim::CoTask<void> scatter_binomial(ScatterArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const int vrank = (me - a.root + p) % p;
  auto actual = [&](int v) { return (v + a.root) % p; };
  const bool with_data = r.machine().with_data();

  // Staging holds blocks [vrank, vrank+run) in vrank space.
  std::vector<std::byte> stage;
  MutBytes stageb{};
  int run = 0;

  if (vrank == 0) {
    run = p;
    if (with_data && !a.send.empty()) {
      stage.resize(static_cast<std::size_t>(p) * a.block_bytes);
      for (int v = 0; v < p; ++v) {
        std::memcpy(stage.data() + static_cast<std::size_t>(v) * a.block_bytes,
                    a.send.data() +
                        static_cast<std::size_t>(actual(v)) * a.block_bytes,
                    a.block_bytes);
      }
      stageb = MutBytes{stage};
    }
  }

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      run = std::min(mask, p - vrank);
      if (with_data) {
        stage.resize(static_cast<std::size_t>(run) * a.block_bytes);
        stageb = MutBytes{stage};
      }
      co_await r.recv(c, actual(vrank - mask), a.tag_base,
                      static_cast<std::size_t>(run) * a.block_bytes, stageb);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p && mask < run) {
      const int nblocks = std::min(run - mask, std::min(mask, p - vrank - mask));
      const std::size_t nbytes =
          static_cast<std::size_t>(nblocks) * a.block_bytes;
      co_await r.send(c, actual(vrank + mask), a.tag_base, nbytes,
                      sub(as_const(stageb),
                          static_cast<std::size_t>(mask) * a.block_bytes,
                          with_data && !stageb.empty() ? nbytes : 0));
      run = mask;
    }
    mask >>= 1;
  }
  if (!a.recv.empty() && with_data && !stage.empty()) {
    std::memcpy(a.recv.data(), stage.data(), a.block_bytes);
  }
}

// ---------------------------------------------------------------------------
// Allgather

void AllgatherArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "AllgatherArgs missing rank/comm");
  DPML_CHECK(send.empty() || send.size() == block_bytes);
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(recv.empty() || recv.size() == p * block_bytes);
  if (rank->machine().with_data() && block_bytes > 0) {
    DPML_CHECK_MSG(!recv.empty(), "data-mode allgather requires recv buffer");
  }
}

sim::CoTask<void> allgather(AllgatherArgs a, AllgatherAlgo algo) {
  if (algo == AllgatherAlgo::automatic) {
    algo = a.block_bytes * static_cast<std::size_t>(a.comm->size()) <= 32 * 1024
               ? AllgatherAlgo::recursive_doubling
               : AllgatherAlgo::ring;
  }
  switch (algo) {
    case AllgatherAlgo::ring: return allgather_ring(std::move(a));
    case AllgatherAlgo::recursive_doubling: return allgather_rd(std::move(a));
    case AllgatherAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable allgather algo");
  return {};
}

namespace {

sim::CoTask<void> allgather_copy_own(const AllgatherArgs& a, int me) {
  const auto& host = a.rank->machine().config().host;
  co_await a.rank->engine().delay(
      host.copy_startup + sim::transfer_time(a.block_bytes, host.copy_bw));
  if (!a.send.empty() && !a.recv.empty()) {
    std::memcpy(a.recv.data() + static_cast<std::size_t>(me) * a.block_bytes,
                a.send.data(), a.block_bytes);
  }
}

}  // namespace

sim::CoTask<void> allgather_ring(AllgatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  co_await allgather_copy_own(a, me);
  if (p == 1) co_return;
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int give = (me - s + p) % p;
    const int take = (me - s - 1 + 2 * p) % p;
    auto sf = r.isend(c, right, a.tag_base, a.block_bytes,
                      sub(as_const(a.recv),
                          static_cast<std::size_t>(give) * a.block_bytes,
                          a.recv.empty() ? 0 : a.block_bytes));
    co_await r.recv(c, left, a.tag_base, a.block_bytes,
                    sub(a.recv, static_cast<std::size_t>(take) * a.block_bytes,
                        a.recv.empty() ? 0 : a.block_bytes));
    co_await sf->wait();
  }
}

sim::CoTask<void> allgather_rd(AllgatherArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  if ((p & (p - 1)) != 0) {
    // Non-power-of-two: fall back to the ring (documented behaviour).
    co_await allgather_ring(std::move(a));
    co_return;
  }
  co_await allgather_copy_own(a, me);
  if (p == 1) co_return;

  // At step k, I hold the blocks of my 2^k-aligned group and exchange the
  // whole run with the partner group.
  int step = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++step) {
    const int partner = me ^ mask;
    const int my_base = me & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    const std::size_t nbytes =
        static_cast<std::size_t>(mask) * a.block_bytes;
    auto sf = r.isend(c, partner, a.tag_base + 1 + step, nbytes,
                      sub(as_const(a.recv),
                          static_cast<std::size_t>(my_base) * a.block_bytes,
                          a.recv.empty() ? 0 : nbytes));
    co_await r.recv(c, partner, a.tag_base + 1 + step, nbytes,
                    sub(a.recv,
                        static_cast<std::size_t>(partner_base) * a.block_bytes,
                        a.recv.empty() ? 0 : nbytes));
    co_await sf->wait();
  }
}

// ---------------------------------------------------------------------------
// Reduce-scatter

std::size_t ReduceScatterArgs::total_bytes() const {
  return block_bytes() * static_cast<std::size_t>(comm->size());
}

void ReduceScatterArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "ReduceScatterArgs missing rank/comm");
  DPML_CHECK(send.empty() || send.size() == total_bytes());
  DPML_CHECK(recv.empty() || recv.size() == block_bytes());
  DPML_CHECK_MSG(op.commutative(),
                 "reduce_scatter_ring folds blocks in rotation order and "
                 "cannot honour ascending comm-rank order for "
                 "non-commutative ops");
}

sim::CoTask<void> reduce_scatter_ring(ReduceScatterArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t bbytes = a.block_bytes();
  const bool with_data = r.machine().with_data();

  if (p == 1) {
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(bbytes, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data(), a.send.data(), bbytes);
    }
    co_return;
  }

  // Work on a private copy of the input (the algorithm reduces in place).
  std::vector<std::byte> work;
  if (with_data) {
    work.assign(a.send.begin(), a.send.end());
  }
  MutBytes workb{work};
  const auto& host = r.machine().config().host;
  co_await r.engine().delay(host.copy_startup +
                            sim::transfer_time(a.total_bytes(), host.copy_bw));

  auto tmp_store = a.rank->machine().with_data()
                       ? std::vector<std::byte>(bbytes)
                       : std::vector<std::byte>{};
  MutBytes tmp{tmp_store};
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int give = (me - s + p) % p;
    const int take = (me - s - 1 + 2 * p) % p;
    auto sf = r.isend(c, right, a.tag_base, bbytes,
                      sub(as_const(workb),
                          static_cast<std::size_t>(give) * bbytes,
                          workb.empty() ? 0 : bbytes));
    co_await r.recv(c, left, a.tag_base, bbytes, tmp);
    co_await sf->wait();
    co_await r.reduce_compute(bbytes);
    a.op.apply(a.dt, a.block_count,
               sub(workb, static_cast<std::size_t>(take) * bbytes,
                   workb.empty() ? 0 : bbytes),
               as_const(tmp));
  }
  // After p-1 steps I hold the fully reduced block (me+1) mod p, which
  // belongs to my right neighbour; one final shift delivers block `me` to
  // rank `me` (keeps the MPI_Reduce_scatter_block block assignment).
  const int owned = (me + 1) % p;
  auto sf = r.isend(c, right, a.tag_base + 1, bbytes,
                    sub(as_const(workb),
                        static_cast<std::size_t>(owned) * bbytes,
                        workb.empty() ? 0 : bbytes));
  co_await r.recv(c, left, a.tag_base + 1, bbytes, a.recv);
  co_await sf->wait();
}

// ---------------------------------------------------------------------------
// Barrier

sim::CoTask<void> barrier(BarrierArgs a, BarrierAlgo algo) {
  DPML_CHECK(a.rank != nullptr && a.comm != nullptr);
  if (algo == BarrierAlgo::automatic) {
    const bool is_world =
        a.comm->context() == a.rank->machine().world().context();
    algo = is_world && a.rank->machine().ppn() > 1
               ? BarrierAlgo::single_leader
               : BarrierAlgo::dissemination;
  }
  switch (algo) {
    case BarrierAlgo::dissemination:
      return barrier_dissemination(std::move(a));
    case BarrierAlgo::single_leader:
      return barrier_single_leader(std::move(a));
    case BarrierAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable barrier algo");
  return {};
}

sim::CoTask<void> barrier_dissemination(BarrierArgs a) {
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  int step = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++step) {
    const int to = (me + dist) % p;
    const int from = (me - dist % p + p) % p;
    auto sf = r.isend(c, to, a.tag_base + step, 0);
    co_await r.recv(c, from, a.tag_base + step, 0);
    co_await sf->wait();
  }
}

sim::CoTask<void> barrier_single_leader(BarrierArgs a) {
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "hierarchical barrier runs on the world communicator");
  const int ppn = m.ppn();
  if (ppn == 1) {
    co_await barrier_dissemination(std::move(a));
    co_return;
  }
  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    slot.latches.emplace_back(r.engine(), ppn - 1);
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }
  if (r.local_rank() == 0) {
    co_await slot.latches[0].wait();
    if (m.num_nodes() > 1) {
      BarrierArgs la;
      la.rank = &r;
      la.comm = &m.leader_comm(0, 1);
      co_await barrier_dissemination(la);
    }
    co_await r.signal(slot.flags[0]);
  } else {
    co_await r.signal(slot.latches[0]);
    co_await slot.flags[0].wait();
    co_await r.compute(m.config().host.flag_latency);
  }
  r.node().release_slot(key, ppn);
}

}  // namespace dpml::coll
