#include "coll/bcast.hpp"

#include <utility>

#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;
using simmpi::ShmWindow;

void BcastArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr, "BcastArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK_MSG(buf.empty() || buf.size() == bytes, "bcast buffer size mismatch");
  if (rank->machine().with_data()) {
    DPML_CHECK_MSG(!buf.empty() || bytes == 0,
                   "data-mode bcast requires a buffer");
  }
}

const char* bcast_algo_name(BcastAlgo a) {
  switch (a) {
    case BcastAlgo::binomial: return "binomial";
    case BcastAlgo::scatter_allgather: return "scatter-allgather";
    case BcastAlgo::single_leader: return "single-leader";
    case BcastAlgo::automatic: return "auto";
  }
  return "?";
}

sim::CoTask<void> bcast(BcastArgs a, BcastAlgo algo) {
  if (algo == BcastAlgo::automatic) {
    algo = a.bytes <= 8 * 1024 ? BcastAlgo::binomial
                               : BcastAlgo::scatter_allgather;
  }
  switch (algo) {
    case BcastAlgo::binomial: return bcast_binomial(std::move(a));
    case BcastAlgo::scatter_allgather:
      return bcast_scatter_allgather(std::move(a));
    case BcastAlgo::single_leader: return bcast_single_leader(std::move(a));
    case BcastAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable bcast algo");
  return {};
}

sim::CoTask<void> bcast_binomial(BcastArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  if (p == 1) co_return;
  const int vrank = (me - a.root + p) % p;
  auto actual = [&](int v) { return (v + a.root) % p; };

  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      co_await r.recv(c, actual(vrank - mask), a.tag_base, a.bytes, a.buf);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      co_await r.send(c, actual(vrank + mask), a.tag_base, a.bytes,
                      as_const(a.buf));
    }
    mask >>= 1;
  }
}

sim::CoTask<void> bcast_scatter_allgather(BcastArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  if (p == 1) co_return;
  const int vrank = (me - a.root + p) % p;
  auto actual = [&](int v) { return (v + a.root) % p; };
  // Byte range of blocks [first, last).
  auto range_begin = [&](int block) {
    return partition(a.bytes, p, block).offset;
  };
  auto range_end = [&](int block) {
    const Part pb = partition(a.bytes, p, block);
    return pb.offset + pb.count;
  };

  // Binomial scatter: after this, vrank v holds block v.
  {
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int first = vrank;
        const int last = std::min(vrank + mask, p);
        const std::size_t lo = range_begin(first);
        const std::size_t hi = range_end(last - 1);
        co_await r.recv(c, actual(vrank - mask), a.tag_base + 1, hi - lo,
                        sub(a.buf, lo, hi - lo));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < p) {
        const int first = vrank + mask;
        const int last = std::min(vrank + 2 * mask, p);
        const std::size_t lo = range_begin(first);
        const std::size_t hi = range_end(last - 1);
        co_await r.send(c, actual(vrank + mask), a.tag_base + 1, hi - lo,
                        sub(as_const(a.buf), lo, hi - lo));
      }
      mask >>= 1;
    }
  }

  // Ring allgather of the p blocks (in vrank space).
  const int next = actual((vrank + 1) % p);
  const int prev = actual((vrank + p - 1) % p);
  for (int s = 0; s < p - 1; ++s) {
    const int give = (vrank - s + p) % p;
    const int take = (vrank - s - 1 + p) % p;
    const std::size_t glo = range_begin(give);
    const std::size_t gbytes = range_end(give) - glo;
    const std::size_t tlo = range_begin(take);
    const std::size_t tbytes = range_end(take) - tlo;
    auto sf = r.isend(c, next, a.tag_base + 2, gbytes,
                      sub(as_const(a.buf), glo, gbytes));
    co_await r.recv(c, prev, a.tag_base + 2, tbytes, sub(a.buf, tlo, tbytes));
    co_await sf->wait();
  }
}

sim::CoTask<void> bcast_single_leader(BcastArgs a) {
  a.check();
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "single-leader bcast runs on the world communicator");
  const int ppn = m.ppn();
  if (ppn == 1) {
    co_await bcast_binomial(std::move(a));
    co_return;
  }
  const Comm& c = *a.comm;
  const int root_node = c.world_rank(a.root) / ppn;
  const int root_local = c.world_rank(a.root) % ppn;
  const bool is_leader = r.local_rank() == 0;

  const std::int64_t key = r.next_coll_key(c.context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    slot.windows.emplace_back(a.bytes, m.socket_of_local(0), m.with_data());
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }

  // Get the payload to the root node's leader.
  if (r.world_rank() == c.world_rank(a.root) && root_local != 0) {
    co_await r.send(c, c.rank_of_world(root_node * ppn), a.tag_base + 3,
                    a.bytes, as_const(a.buf));
  }
  if (is_leader) {
    if (r.node_id() == root_node && root_local != 0) {
      co_await r.recv(c, a.root, a.tag_base + 3, a.bytes, a.buf);
    }
    // Inter-node binomial bcast among node leaders.
    BcastArgs la = a;
    la.comm = &m.leader_comm(0, 1);
    la.root = root_node;
    la.tag_base = static_cast<int>((key & 0x3ff)) * 2048;
    co_await bcast_binomial(la);
    co_await r.shm_put(slot.windows[0], 0, a.bytes, as_const(a.buf));
    co_await r.signal(slot.flags[0]);
  } else {
    co_await slot.flags[0].wait();
    if (r.world_rank() != c.world_rank(a.root)) {
      co_await r.shm_get(slot.windows[0], 0, a.bytes, a.buf);
    }
  }
  r.node().release_slot(key, ppn);
}

// ---- Registry entries ----

namespace {

// The registry's shared CollArgs entry currency, adapted to BcastArgs: the
// payload travels in `recv` (valid at root, filled elsewhere).
BcastArgs to_bcast_args(const CollArgs& a) {
  BcastArgs ba;
  ba.rank = a.rank;
  ba.comm = a.comm;
  ba.root = a.root;
  ba.bytes = a.bytes();
  ba.buf = a.recv;
  ba.tag_base = a.tag_base;
  return ba;
}

CollDescriptor bcast_desc(const char* name, BcastAlgo algo, CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::bcast;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return bcast(to_bcast_args(a), algo);
  };
  return d;
}

const CollRegistration reg_bcast_binomial{
    bcast_desc("binomial", BcastAlgo::binomial, CollCaps{.tunable = true})};
const CollRegistration reg_bcast_sag{
    bcast_desc("scatter-allgather", BcastAlgo::scatter_allgather,
               CollCaps{.tunable = true})};
const CollRegistration reg_bcast_single_leader{
    bcast_desc("single-leader", BcastAlgo::single_leader,
               CollCaps{.world_only = true, .tunable = true})};
const CollRegistration reg_bcast_auto{
    bcast_desc("auto", BcastAlgo::automatic, CollCaps{})};

}  // namespace

void link_bcast_collectives() {}

}  // namespace dpml::coll
