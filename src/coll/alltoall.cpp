#include "coll/alltoall.hpp"

#include <cstring>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "coll/registry.hpp"
#include "util/error.hpp"

namespace dpml::coll {

// ---------------------------------------------------------------------------
// Alltoall

void AlltoallArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "AlltoallArgs missing rank/comm");
  const auto p = static_cast<std::size_t>(comm->size());
  DPML_CHECK(send.empty() || send.size() == p * block_bytes);
  DPML_CHECK(recv.empty() || recv.size() == p * block_bytes);
}

sim::CoTask<void> alltoall(AlltoallArgs a, AlltoallAlgo algo) {
  if (algo == AlltoallAlgo::automatic) {
    algo = a.block_bytes <= 1024 ? AlltoallAlgo::bruck
                                 : AlltoallAlgo::pairwise;
  }
  switch (algo) {
    case AlltoallAlgo::bruck: return alltoall_bruck(std::move(a));
    case AlltoallAlgo::pairwise: return alltoall_pairwise(std::move(a));
    case AlltoallAlgo::automatic: break;
  }
  DPML_CHECK_MSG(false, "unreachable alltoall algo");
  return {};
}

sim::CoTask<void> alltoall_pairwise(AlltoallArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t bb = a.block_bytes;

  // Own block: local copy.
  {
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(bb, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data() + static_cast<std::size_t>(me) * bb,
                  a.send.data() + static_cast<std::size_t>(me) * bb, bb);
    }
  }
  // p-1 shifted exchanges.
  for (int s = 1; s < p; ++s) {
    const int dst = (me + s) % p;
    const int src = (me - s + p) % p;
    auto sf = r.isend(c, dst, a.tag_base + s, bb,
                      sub(a.send, static_cast<std::size_t>(dst) * bb,
                          a.send.empty() ? 0 : bb));
    co_await r.recv(c, src, a.tag_base + s, bb,
                    sub(a.recv, static_cast<std::size_t>(src) * bb,
                        a.recv.empty() ? 0 : bb));
    co_await sf->wait();
  }
}

sim::CoTask<void> alltoall_bruck(AlltoallArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t bb = a.block_bytes;
  const bool with_data = r.machine().with_data();
  const auto& host = r.machine().config().host;

  // Phase 1: upward rotation — tmp[i] = send block for rank (me + i) % p.
  std::vector<std::byte> tmp;
  if (with_data && !a.send.empty()) {
    tmp.resize(static_cast<std::size_t>(p) * bb);
    for (int i = 0; i < p; ++i) {
      const int blk = (me + i) % p;
      std::memcpy(tmp.data() + static_cast<std::size_t>(i) * bb,
                  a.send.data() + static_cast<std::size_t>(blk) * bb, bb);
    }
  }
  co_await r.engine().delay(
      host.copy_startup +
      sim::transfer_time(static_cast<std::size_t>(p) * bb, host.copy_bw));

  // Phase 2: lg(p) rounds; round k moves every block whose index has bit k.
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  int step = 0;
  for (int k = 1; k < p; k <<= 1, ++step) {
    std::vector<int> idx;
    for (int i = 0; i < p; ++i) {
      if (i & k) idx.push_back(i);
    }
    const std::size_t nbytes = idx.size() * bb;
    if (with_data && !tmp.empty()) {
      sbuf.resize(nbytes);
      rbuf.resize(nbytes);
      for (std::size_t j = 0; j < idx.size(); ++j) {
        std::memcpy(sbuf.data() + j * bb,
                    tmp.data() + static_cast<std::size_t>(idx[j]) * bb, bb);
      }
    }
    // Pack + (later) unpack cost.
    co_await r.engine().delay(sim::transfer_time(2 * nbytes, host.copy_bw));
    const int dst = (me + k) % p;
    const int src = (me - k + p) % p;
    auto sf = r.isend(c, dst, a.tag_base + step, nbytes,
                      with_data && !sbuf.empty()
                          ? ConstBytes{sbuf.data(), nbytes}
                          : ConstBytes{});
    co_await r.recv(c, src, a.tag_base + step, nbytes,
                    with_data && !rbuf.empty() ? MutBytes{rbuf.data(), nbytes}
                                               : MutBytes{});
    co_await sf->wait();
    if (with_data && !tmp.empty()) {
      for (std::size_t j = 0; j < idx.size(); ++j) {
        std::memcpy(tmp.data() + static_cast<std::size_t>(idx[j]) * bb,
                    rbuf.data() + j * bb, bb);
      }
    }
  }

  // Phase 3: downward rotation with inversion — the block now at position i
  // came from rank (me - i + p) % p.
  if (with_data && !tmp.empty() && !a.recv.empty()) {
    for (int i = 0; i < p; ++i) {
      const int src = (me - i + p) % p;
      std::memcpy(a.recv.data() + static_cast<std::size_t>(src) * bb,
                  tmp.data() + static_cast<std::size_t>(i) * bb, bb);
    }
  }
  co_await r.engine().delay(
      host.copy_startup +
      sim::transfer_time(static_cast<std::size_t>(p) * bb, host.copy_bw));
}

// ---------------------------------------------------------------------------
// v-variants

namespace {
std::size_t sum_of(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}
std::size_t prefix_of(const std::vector<std::size_t>& v, int r) {
  std::size_t off = 0;
  for (int i = 0; i < r; ++i) off += v[static_cast<std::size_t>(i)];
  return off;
}
}  // namespace

std::size_t GathervArgs::total_bytes() const { return sum_of(block_bytes); }
std::size_t GathervArgs::offset_of(int r) const {
  return prefix_of(block_bytes, r);
}

void GathervArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "GathervArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK_MSG(static_cast<int>(block_bytes.size()) == comm->size(),
                 "gatherv needs one block size per rank");
  const int me = comm->rank_of_world(rank->world_rank());
  if (me >= 0) {
    DPML_CHECK(send.empty() ||
               send.size() == block_bytes[static_cast<std::size_t>(me)]);
  }
  DPML_CHECK(recv.empty() || recv.size() == total_bytes());
}

sim::CoTask<void> gatherv(GathervArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t mine = a.block_bytes[static_cast<std::size_t>(me)];

  if (me == a.root) {
    // Own block.
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(mine, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data() + a.offset_of(me), a.send.data(), mine);
    }
    std::vector<std::shared_ptr<sim::Flag>> pending;
    for (int src = 0; src < p; ++src) {
      if (src == me) continue;
      const std::size_t bytes = a.block_bytes[static_cast<std::size_t>(src)];
      auto h = r.irecv(c, src, a.tag_base, bytes,
                       sub(a.recv, a.offset_of(src), a.recv.empty() ? 0 : bytes));
      pending.push_back(h.done);
    }
    co_await sim::wait_all(std::move(pending));
  } else {
    co_await r.send(c, a.root, a.tag_base, mine, a.send);
  }
}

std::size_t AllgathervArgs::total_bytes() const { return sum_of(block_bytes); }
std::size_t AllgathervArgs::offset_of(int r) const {
  return prefix_of(block_bytes, r);
}

void AllgathervArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "AllgathervArgs missing rank/comm");
  DPML_CHECK_MSG(static_cast<int>(block_bytes.size()) == comm->size(),
                 "allgatherv needs one block size per rank");
  const int me = comm->rank_of_world(rank->world_rank());
  if (me >= 0) {
    DPML_CHECK(send.empty() ||
               send.size() == block_bytes[static_cast<std::size_t>(me)]);
  }
  DPML_CHECK(recv.empty() || recv.size() == total_bytes());
}

sim::CoTask<void> allgatherv_ring(AllgathervArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  // Own block into place.
  {
    const std::size_t mine = a.block_bytes[static_cast<std::size_t>(me)];
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(mine, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data() + a.offset_of(me), a.send.data(), mine);
    }
  }
  if (p == 1) co_return;
  const int right = (me + 1) % p;
  const int left = (me + p - 1) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int give = (me - s + p) % p;
    const int take = (me - s - 1 + 2 * p) % p;
    const std::size_t gb = a.block_bytes[static_cast<std::size_t>(give)];
    const std::size_t tb = a.block_bytes[static_cast<std::size_t>(take)];
    auto sf = r.isend(c, right, a.tag_base, gb,
                      sub(as_const(a.recv), a.offset_of(give),
                          a.recv.empty() ? 0 : gb));
    co_await r.recv(c, left, a.tag_base, tb,
                    sub(a.recv, a.offset_of(take), a.recv.empty() ? 0 : tb));
    co_await sf->wait();
  }
}

std::size_t ScattervArgs::total_bytes() const { return sum_of(block_bytes); }
std::size_t ScattervArgs::offset_of(int r) const {
  return prefix_of(block_bytes, r);
}

void ScattervArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "ScattervArgs missing rank/comm");
  DPML_CHECK(root >= 0 && root < comm->size());
  DPML_CHECK_MSG(static_cast<int>(block_bytes.size()) == comm->size(),
                 "scatterv needs one block size per rank");
  const int me = comm->rank_of_world(rank->world_rank());
  if (me >= 0) {
    DPML_CHECK(recv.empty() ||
               recv.size() == block_bytes[static_cast<std::size_t>(me)]);
  }
  DPML_CHECK(send.empty() || send.size() == total_bytes());
}

sim::CoTask<void> scatterv(ScattervArgs a) {
  a.check();
  Rank& r = *a.rank;
  const Comm& c = *a.comm;
  const int me = c.rank_of_world(r.world_rank());
  if (me < 0) co_return;
  const int p = c.size();
  const std::size_t mine = a.block_bytes[static_cast<std::size_t>(me)];

  if (me == a.root) {
    std::vector<std::shared_ptr<sim::Flag>> pending;
    for (int dst = 0; dst < p; ++dst) {
      if (dst == me) continue;
      const std::size_t bytes = a.block_bytes[static_cast<std::size_t>(dst)];
      pending.push_back(r.isend(
          c, dst, a.tag_base, bytes,
          sub(a.send, a.offset_of(dst), a.send.empty() ? 0 : bytes)));
    }
    const auto& host = r.machine().config().host;
    co_await r.engine().delay(host.copy_startup +
                              sim::transfer_time(mine, host.copy_bw));
    if (!a.send.empty() && !a.recv.empty()) {
      std::memcpy(a.recv.data(), a.send.data() + a.offset_of(me), mine);
    }
    co_await sim::wait_all(std::move(pending));
  } else {
    co_await r.recv(c, a.root, a.tag_base, mine, a.recv);
  }
}

// ---- Registry entries ----

namespace {

// The registry's shared CollArgs entry currency, adapted to AlltoallArgs:
// `count` is the per-destination element count, so CollArgs::bytes() is the
// per-peer block and send/recv span p blocks.
AlltoallArgs to_alltoall_args(const CollArgs& a) {
  AlltoallArgs aa;
  aa.rank = a.rank;
  aa.comm = a.comm;
  aa.block_bytes = a.bytes();
  aa.send = a.send;
  aa.recv = a.recv;
  aa.tag_base = a.tag_base;
  return aa;
}

CollDescriptor alltoall_desc(const char* name, AlltoallAlgo algo,
                             CollCaps caps) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::alltoall;
  d.caps = caps;
  d.make = [algo](CollArgs a, const CollSpec&) {
    return alltoall(to_alltoall_args(a), algo);
  };
  return d;
}

const CollRegistration reg_alltoall_bruck{
    alltoall_desc("bruck", AlltoallAlgo::bruck, CollCaps{.tunable = true})};
const CollRegistration reg_alltoall_pairwise{alltoall_desc(
    "pairwise", AlltoallAlgo::pairwise, CollCaps{.tunable = true})};
const CollRegistration reg_alltoall_auto{
    alltoall_desc("auto", AlltoallAlgo::automatic, CollCaps{})};

}  // namespace

void link_alltoall_collectives() {}

}  // namespace dpml::coll
