// SHArP-accelerated barrier and broadcast (paper §8 future work: "explore
// the designs for other collectives with SHArP").
//
// Both use the node-leader structure: intra-node synchronization through
// shared memory, with the inter-node stage offloaded to the switch
// aggregation tree instead of host point-to-point rounds.
#pragma once

#include "coll/bcast.hpp"
#include "coll/group_coll.hpp"
#include "sharp/sharp.hpp"

namespace dpml::coll {

// Barrier: intra-node latch -> in-network barrier among node leaders ->
// intra-node release. World communicator only.
sim::CoTask<void> barrier_sharp(BarrierArgs a, sharp::SharpFabric& fabric);

// Broadcast: payload to the root's node leader -> in-network multicast to
// all node leaders -> shared-memory broadcast. Falls back to the host
// single-leader design when the payload exceeds the fabric limit.
sim::CoTask<void> bcast_sharp(BcastArgs a, sharp::SharpFabric& fabric);

}  // namespace dpml::coll
