// State-of-the-art library baselines (paper §6.4).
//
// The paper compares DPML against the algorithm each production library's
// auto-selection picks. We re-implement those selection stacks from the
// libraries' documented behaviour; see DESIGN.md for the substitution note.
//
//  * allreduce_mvapich2 — MVAPICH2-2.2-like: shared-memory single-leader
//    hierarchy for small/medium messages, flat reduce-scatter+allgather over
//    all ranks for large messages. The flat large-message path floods each
//    node's NIC with ppn concurrent streams, which is exactly the weakness
//    Figures 9/10 expose at scale.
//
//  * allreduce_intelmpi — Intel-MPI-2017-like: single-leader hierarchy for
//    small/medium; for large messages a node-striped two-level
//    reduce-scatter+allgather with a fixed 8-way stripe split. Strong
//    bandwidth behaviour (much better than the flat path at scale), but the
//    fixed, untuned stripe count loses to DPML's per-size leader selection
//    in both the medium (latency-dominated) and very-large (compute-bound)
//    regimes.
#pragma once

#include "coll/coll.hpp"

namespace dpml::coll {

sim::CoTask<void> allreduce_mvapich2(CollArgs a);
sim::CoTask<void> allreduce_intelmpi(CollArgs a);

// Selection thresholds (exposed for tests and benches).
inline constexpr std::size_t kMvapich2FlatThreshold = 16 * 1024;
inline constexpr std::size_t kIntelMpiStripeThreshold = 8 * 1024;

}  // namespace dpml::coll
