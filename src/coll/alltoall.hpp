// All-to-all and variable-count collectives.
//
// Completes the runtime's collective surface: alltoall (Bruck for small
// messages, pairwise-exchange for large) and the v-variants (allgatherv,
// gatherv, scatterv) with per-rank block sizes. These are substrate-grade
// operations (miniAMR redistributes blocks with alltoallv-like patterns)
// and exercise the transport with the densest traffic pattern there is.
#pragma once

#include "coll/coll.hpp"

namespace dpml::coll {

// ---- Alltoall (equal blocks) ----

struct AlltoallArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::size_t block_bytes = 0;  // bytes sent to each rank
  ConstBytes send{};            // p * block_bytes, block i -> rank i
  MutBytes recv{};              // p * block_bytes, block i <- rank i
  int tag_base = 0;

  void check() const;
};

enum class AlltoallAlgo { bruck, pairwise, automatic };

sim::CoTask<void> alltoall(AlltoallArgs a,
                           AlltoallAlgo algo = AlltoallAlgo::automatic);
// Bruck: ceil(lg p) rounds of aggregated blocks — latency-optimal.
sim::CoTask<void> alltoall_bruck(AlltoallArgs a);
// Pairwise exchange: p-1 rounds with XOR/shift partners — bandwidth-optimal.
sim::CoTask<void> alltoall_pairwise(AlltoallArgs a);

// ---- Variable-count gather/scatter/allgather ----

struct GathervArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::vector<std::size_t> block_bytes;  // size p: contribution of each rank
  ConstBytes send{};                     // my block (block_bytes[me])
  MutBytes recv{};                       // root: sum of block_bytes
  int tag_base = 0;

  std::size_t total_bytes() const;
  std::size_t offset_of(int r) const;  // byte offset of rank r's block
  void check() const;
};

// Direct gatherv: every rank sends its block to the root (the standard
// implementation for irregular counts).
sim::CoTask<void> gatherv(GathervArgs a);

struct AllgathervArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  std::vector<std::size_t> block_bytes;  // size p
  ConstBytes send{};
  MutBytes recv{};  // sum of block_bytes on every rank
  int tag_base = 0;

  std::size_t total_bytes() const;
  std::size_t offset_of(int r) const;
  void check() const;
};

// Ring allgatherv (p-1 neighbour steps with per-rank sizes).
sim::CoTask<void> allgatherv_ring(AllgathervArgs a);

struct ScattervArgs {
  Rank* rank = nullptr;
  const Comm* comm = nullptr;
  int root = 0;
  std::vector<std::size_t> block_bytes;  // size p
  ConstBytes send{};                     // root: sum of block_bytes
  MutBytes recv{};                       // my block
  int tag_base = 0;

  std::size_t total_bytes() const;
  std::size_t offset_of(int r) const;
  void check() const;
};

// Direct scatterv from the root.
sim::CoTask<void> scatterv(ScattervArgs a);

}  // namespace dpml::coll
