#include "coll/sharp_extra.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dpml::coll {

using simmpi::CollSlot;
using simmpi::Machine;

namespace {

std::vector<int> node_leaders(Machine& m) {
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(m.num_nodes()));
  for (int n = 0; n < m.num_nodes(); ++n) members.push_back(n * m.ppn());
  return members;
}

}  // namespace

sim::CoTask<void> barrier_sharp(BarrierArgs a, sharp::SharpFabric& fabric) {
  DPML_CHECK(a.rank != nullptr && a.comm != nullptr);
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "SHArP barrier runs on the world communicator");
  const int ppn = m.ppn();
  if (ppn == 1) {
    const sharp::Group& g = fabric.named_group("all_ranks", m.world().ranks());
    co_await fabric.barrier(r, g);
    co_return;
  }
  const std::int64_t key = r.next_coll_key(a.comm->context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    slot.latches.emplace_back(r.engine(), ppn - 1);
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }
  if (r.local_rank() == 0) {
    const sharp::Group& g = fabric.named_group("node_leaders", node_leaders(m));
    co_await slot.latches[0].wait();
    co_await fabric.barrier(r, g);
    co_await r.signal(slot.flags[0]);
  } else {
    co_await r.signal(slot.latches[0]);
    co_await slot.flags[0].wait();
    co_await r.compute(m.config().host.flag_latency);
  }
  r.node().release_slot(key, ppn);
}

sim::CoTask<void> bcast_sharp(BcastArgs a, sharp::SharpFabric& fabric) {
  a.check();
  Rank& r = *a.rank;
  Machine& m = r.machine();
  DPML_CHECK_MSG(a.comm->context() == m.world().context(),
                 "SHArP bcast runs on the world communicator");
  if (!fabric.supports(a.bytes)) {
    co_await bcast_single_leader(std::move(a));
    co_return;
  }
  const int ppn = m.ppn();
  const Comm& c = *a.comm;
  if (ppn == 1) {
    const sharp::Group& g = fabric.named_group("all_ranks", m.world().ranks());
    co_await fabric.bcast(r, g, c.world_rank(a.root), a.bytes, a.buf);
    co_return;
  }
  const int root_node = c.world_rank(a.root) / ppn;
  const int root_local = c.world_rank(a.root) % ppn;
  const bool is_leader = r.local_rank() == 0;

  const std::int64_t key = r.next_coll_key(c.context());
  CollSlot& slot = r.node().slot(key);
  if (!slot.initialized) {
    slot.windows.emplace_back(a.bytes, m.socket_of_local(0), m.with_data());
    slot.flags.emplace_back(r.engine());
    slot.initialized = true;
  }

  // Payload to the root node's leader if the root is not itself a leader.
  if (r.world_rank() == c.world_rank(a.root) && root_local != 0) {
    co_await r.send(c, c.rank_of_world(root_node * ppn),
                    static_cast<int>((key & 0x3ff)) * 2048 + 3, a.bytes,
                    as_const(a.buf));
  }
  if (is_leader) {
    if (r.node_id() == root_node && root_local != 0) {
      co_await r.recv(c, a.root, static_cast<int>((key & 0x3ff)) * 2048 + 3,
                      a.bytes, a.buf);
    }
    const sharp::Group& g = fabric.named_group("node_leaders", node_leaders(m));
    co_await fabric.bcast(r, g, root_node * ppn, a.bytes, a.buf);
    co_await r.shm_put(slot.windows[0], 0, a.bytes, as_const(a.buf));
    co_await r.signal(slot.flags[0]);
  } else {
    co_await slot.flags[0].wait();
    if (r.world_rank() != c.world_rank(a.root)) {
      co_await r.shm_get(slot.windows[0], 0, a.bytes, a.buf);
    }
  }
  r.node().release_slot(key, ppn);
}

}  // namespace dpml::coll
