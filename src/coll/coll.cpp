#include "coll/coll.hpp"

#include <cstring>

#include "util/error.hpp"

namespace dpml::coll {

std::vector<std::byte> CollArgs::scratch(std::size_t nbytes) const {
  DPML_CHECK(rank != nullptr);
  if (!rank->machine().with_data()) return {};
  return std::vector<std::byte>(nbytes);
}

void CollArgs::check() const {
  DPML_CHECK_MSG(rank != nullptr && comm != nullptr,
                 "CollArgs missing rank/comm");
  const std::size_t nbytes = bytes();
  DPML_CHECK_MSG(recv.empty() || recv.size() == nbytes,
                 "recv buffer size mismatch");
  if (inplace) {
    DPML_CHECK_MSG(send.empty(), "in-place collective must not pass sendbuf");
  } else {
    DPML_CHECK_MSG(send.empty() || send.size() == nbytes,
                   "send buffer size mismatch");
  }
  if (rank->machine().with_data()) {
    DPML_CHECK_MSG(!recv.empty() || nbytes == 0,
                   "data-mode collective requires a recv buffer");
    DPML_CHECK_MSG(inplace || !send.empty() || nbytes == 0,
                   "data-mode collective requires a send buffer");
  }
}

Part partition(std::size_t count, int parts, int index) {
  DPML_CHECK(parts >= 1);
  DPML_CHECK(index >= 0 && index < parts);
  const std::size_t base = count / static_cast<std::size_t>(parts);
  const std::size_t rem = count % static_cast<std::size_t>(parts);
  const auto idx = static_cast<std::size_t>(index);
  Part p;
  p.count = base + (idx < rem ? 1 : 0);
  p.offset = base * idx + (idx < rem ? idx : rem);
  return p;
}

const char* inter_algo_name(InterAlgo a) {
  switch (a) {
    case InterAlgo::recursive_doubling: return "rd";
    case InterAlgo::reduce_scatter_allgather: return "rsa";
    case InterAlgo::ring: return "ring";
    case InterAlgo::binomial: return "binomial";
    case InterAlgo::automatic: return "auto";
  }
  return "?";
}

sim::CoTask<void> copy_in(const CollArgs& a) {
  if (a.inplace) co_return;
  const auto& host = a.rank->machine().config().host;
  co_await a.rank->engine().delay(
      host.copy_startup + sim::transfer_time(a.bytes(), host.copy_bw));
  if (!a.send.empty() && !a.recv.empty()) {
    std::memcpy(a.recv.data(), a.send.data(), a.send.size());
  }
}

InterAlgo resolve_auto(std::size_t bytes, int comm_size) {
  if (comm_size <= 2) return InterAlgo::recursive_doubling;
  if (bytes <= 2048) return InterAlgo::recursive_doubling;
  return InterAlgo::reduce_scatter_allgather;
}

sim::CoTask<void> inter_allreduce(CollArgs a, InterAlgo algo) {
  if (algo == InterAlgo::automatic) {
    algo = resolve_auto(a.bytes(), a.comm->size());
  }
  switch (algo) {
    case InterAlgo::recursive_doubling:
      return allreduce_recursive_doubling(std::move(a));
    case InterAlgo::reduce_scatter_allgather:
      return allreduce_reduce_scatter_allgather(std::move(a));
    case InterAlgo::ring:
      return allreduce_ring(std::move(a));
    case InterAlgo::binomial:
      return allreduce_binomial(std::move(a));
    case InterAlgo::automatic:
      break;
  }
  DPML_CHECK_MSG(false, "unreachable inter algo");
}

}  // namespace dpml::coll
