#include "coll/baselines.hpp"

#include <utility>

#include "coll/dpml.hpp"
#include "coll/registry.hpp"

namespace dpml::coll {

sim::CoTask<void> allreduce_mvapich2(CollArgs a) {
  const std::size_t nbytes = a.bytes();
  if (nbytes <= kMvapich2FlatThreshold) {
    return allreduce_single_leader(std::move(a), InterAlgo::automatic);
  }
  return allreduce_reduce_scatter_allgather(std::move(a));
}

sim::CoTask<void> allreduce_intelmpi(CollArgs a) {
  const std::size_t nbytes = a.bytes();
  if (nbytes <= kIntelMpiStripeThreshold) {
    return allreduce_single_leader(std::move(a), InterAlgo::automatic);
  }
  DpmlParams p;
  // Fixed 8-way node striping regardless of message size or platform — the
  // untuned configuration DPML's per-size leader selection improves on.
  p.leaders = std::min(8, a.rank->machine().ppn());
  p.pipeline_k = 1;
  p.inter = InterAlgo::reduce_scatter_allgather;
  return allreduce_dpml(std::move(a), p);
}

// ---- Registry entries ----

namespace {

CollDescriptor library_desc(const char* name,
                            sim::CoTask<void> (*fn)(CollArgs)) {
  CollDescriptor d;
  d.name = name;
  d.kind = CollKind::allreduce;
  d.caps = CollCaps{.world_only = true};
  d.make = [fn](CollArgs a, const CollSpec&) { return fn(std::move(a)); };
  return d;
}

const CollRegistration reg_mvapich2{
    library_desc("mvapich2", allreduce_mvapich2)};
const CollRegistration reg_intelmpi{
    library_desc("intelmpi", allreduce_intelmpi)};

}  // namespace

void link_baseline_collectives() {}

}  // namespace dpml::coll
