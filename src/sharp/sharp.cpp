#include "sharp/sharp.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "fabric/fabric.hpp"
#include "util/error.hpp"

namespace dpml::sharp {

using sim::Time;
using sim::transfer_time;

SharpFabric::SharpFabric(simmpi::Machine& machine)
    : machine_(machine),
      model_([&] {
        DPML_CHECK_MSG(machine.config().has_sharp(),
                       "cluster '" + machine.config().name +
                           "' has no SHArP-capable fabric");
        return *machine.config().sharp;
      }()),
      op_slots_(machine.engine(), model_.max_outstanding_ops) {}

const Group& SharpFabric::create_group(std::vector<int> members) {
  DPML_CHECK_MSG(!members.empty(), "empty SHArP group");
  if (static_cast<int>(groups_.size()) >= model_.max_groups) {
    throw SharpError("SHArP group limit reached (" +
                     std::to_string(model_.max_groups) + ")");
  }
  for (int w : members) {
    DPML_CHECK(w >= 0 && w < machine_.world_size());
  }
  Group g;
  g.id = next_group_id_++;
  g.context = machine_.alloc_context();
  g.members = std::move(members);
  int lo_node = machine_.num_nodes();
  int hi_node = -1;
  for (int w : g.members) {
    const int n = machine_.rank(w).node_id();
    lo_node = std::min(lo_node, n);
    hi_node = std::max(hi_node, n);
  }
  g.levels = machine_.topology().aggregation_levels(lo_node, hi_node);
  auto [it, ok] = groups_.emplace(g.id, std::move(g));
  DPML_CHECK(ok);
  return it->second;
}

void SharpFabric::destroy_group(int id) {
  DPML_CHECK_MSG(groups_.erase(id) == 1, "destroying unknown SHArP group");
  for (auto it = named_.begin(); it != named_.end(); ++it) {
    if (it->second == id) {
      named_.erase(it);
      break;
    }
  }
}

const Group& SharpFabric::named_group(const std::string& name,
                                      const std::vector<int>& members) {
  auto it = named_.find(name);
  if (it != named_.end()) {
    const Group& g = groups_.at(it->second);
    DPML_CHECK_MSG(g.members == members,
                   "named SHArP group '" + name + "' member mismatch");
    return g;
  }
  const Group& g = create_group(members);
  named_.emplace(name, g.id);
  return g;
}

sim::CoTask<void> SharpFabric::grab_slot(OpState& op) {
  co_await op_slots_.acquire();
  op.slot_held.post();
}

SharpFabric::OpState& SharpFabric::op_state(std::int64_t key, int members) {
  auto it = ops_.find(key);
  if (it == ops_.end()) {
    it = ops_.emplace(key, std::make_unique<OpState>(machine_.engine(), members))
             .first;
  }
  return *it->second;
}

sim::CoTask<void> SharpFabric::allreduce(simmpi::Rank& r, const Group& g,
                                         std::size_t count, simmpi::Dtype dt,
                                         const simmpi::Op& op,
                                         simmpi::ConstBytes in,
                                         simmpi::MutBytes out) {
  const std::size_t bytes = count * simmpi::dtype_size(dt);
  if (!supports(bytes)) {
    throw SharpError("SHArP payload of " + std::to_string(bytes) +
                     " bytes exceeds max_payload " +
                     std::to_string(model_.max_payload));
  }
  DPML_CHECK_MSG(groups_.count(g.id) != 0, "operation on destroyed group");
  DPML_CHECK(in.empty() || in.size() == bytes);
  DPML_CHECK(out.empty() || out.size() == bytes);

  sim::Engine& eng = machine_.engine();
  const net::NicModel& nic = machine_.config().nic;
  const int members = static_cast<int>(g.members.size());
  const std::int64_t key = r.next_coll_key(g.context);
  OpState& st = op_state(key, members);

  // The whole operation occupies one of the fabric's outstanding-op slots
  // from first member arrival to aggregation finish.
  if (!st.slot_requested) {
    st.slot_requested = true;
    eng.spawn(grab_slot(st));
  }
  co_await st.slot_held.wait();

  // Upload my contribution to the leaf switch (standard NIC injection path;
  // one wire hop plus the leaf switch's ingress).
  co_await eng.delay(nic.o_send);
  const Time t0 = eng.now();
  const Time inj_done = t0 + transfer_time(bytes, nic.proc_bw);
  const Time occupancy =
      std::max<Time>(nic.per_msg_tx, transfer_time(bytes, nic.link_bw));
  const int my_hca = machine_.hca_of_local(r.local_rank());
  // Contribution materializes at the switch once the upload leg completes.
  std::vector<std::byte> payload(in.begin(), in.end());
  OpState* stp = &st;
  std::function<void()> contribute = [this, stp, count, dt, op,
                                      payload = std::move(payload)]() {
    stp->max_arrival = std::max(stp->max_arrival, machine_.engine().now());
    if (!payload.empty()) {
      if (!stp->acc_init) {
        stp->acc = payload;
        stp->acc_init = true;
      } else {
        op.apply(dt, count, simmpi::MutBytes{stp->acc},
                 simmpi::ConstBytes{payload});
      }
    }
    stp->arrivals.arrive();
  };
  fabric::FlowFabric* ff = machine_.flow_fabric();
  if (ff != nullptr) {
    // Flow-fabric upload: the TX engine charges its per-message cost, the
    // payload drains as a node->leaf flow sharing the uplink fairly, and
    // the contribution lands one wire+switch hop after the slower of the
    // injection pipe and the flow.
    const auto tx = r.node().tx(my_hca).acquire_grant(t0, nic.per_msg_tx);
    const int my_node = r.node_id();
    eng.schedule_call(tx.start, [this, ff, my_node, bytes, inj_done,
                               contribute = std::move(contribute)]() mutable {
      ff->start_uplink_flow(
          my_node, bytes, machine_.config().nic.link_bw,
          [this, inj_done,
           contribute = std::move(contribute)](Time flow_done) mutable {
            const net::NicModel& n = machine_.config().nic;
            const Time at_switch = std::max(inj_done, flow_done) +
                                   n.wire_latency + n.switch_latency;
            machine_.engine().schedule_call(at_switch, std::move(contribute));
          });
    });
  } else {
    const auto tx = r.node().tx(my_hca).acquire_grant(t0, occupancy);
    const Time at_switch = std::max(inj_done, tx.done) + nic.wire_latency +
                           nic.switch_latency;
    eng.schedule_call(at_switch, std::move(contribute));
  }
  co_await st.arrivals.wait();

  // All contributions are in the tree: aggregation proceeds level by level.
  if (!st.finish_computed) {
    st.finish_computed = true;
    const Time per_level =
        model_.level_overhead +
        static_cast<Time>(model_.agg_ns_per_byte * static_cast<double>(bytes) *
                          static_cast<double>(sim::kNanosecond));
    const Time inter_level =
        (g.levels - 1) * (nic.wire_latency + nic.switch_latency);
    st.finish = st.max_arrival + g.levels * per_level + inter_level;
    // The op slot frees once the tree has produced the result.
    eng.schedule_call(st.finish, [this]() { op_slots_.release(); });
  }

  // Multicast down: top switch -> my leaf -> my node, then normal RX path.
  const Time down_latency = (g.levels - 1) * (nic.wire_latency + nic.switch_latency) +
                            nic.wire_latency;
  auto delivered = std::make_shared<sim::Flag>(eng);
  const int my_node = r.node_id();
  if (ff != nullptr) {
    // Flow-fabric download: the result leaves the tree at st.finish as a
    // leaf->node flow; delivery adds the multicast path latency and the RX
    // per-message cost.
    eng.schedule_call(st.finish, [this, ff, my_node, my_hca, bytes, down_latency,
                                delivered]() {
      ff->start_downlink_flow(
          my_node, bytes, machine_.config().nic.link_bw,
          [this, my_node, my_hca, down_latency, delivered](Time flow_done) {
            machine_.engine().schedule_call(
                flow_done + down_latency, [this, my_node, my_hca, delivered]() {
                  const Time rx_done = machine_.node(my_node).rx(my_hca).acquire(
                      machine_.engine().now(), machine_.config().nic.per_msg_tx);
                  machine_.engine().schedule_call(rx_done,
                                                [delivered]() { delivered->post(); });
                });
          });
    });
  } else {
    const Time down_head = st.finish + down_latency;
    eng.schedule_call(down_head, [this, my_node, my_hca, occupancy, delivered]() {
      const Time rx_done = machine_.node(my_node).rx(my_hca).acquire(
          machine_.engine().now(), occupancy);
      machine_.engine().schedule_call(rx_done, [delivered]() { delivered->post(); });
    });
  }
  co_await delivered->wait();
  co_await eng.delay(nic.o_recv);
  if (!out.empty() && st.acc_init) {
    std::memcpy(out.data(), st.acc.data(), bytes);
  }

  if (++st.delivered == members) {
    ops_.erase(key);
  }
}

sim::CoTask<void> SharpFabric::barrier(simmpi::Rank& r, const Group& g) {
  co_await allreduce(r, g, 0, simmpi::Dtype::u8, simmpi::ReduceOp::bor, {},
                     {});
}

sim::CoTask<void> SharpFabric::bcast(simmpi::Rank& r, const Group& g,
                                     int root_world, std::size_t bytes,
                                     simmpi::MutBytes buf) {
  if (!supports(bytes)) {
    throw SharpError("SHArP bcast payload of " + std::to_string(bytes) +
                     " bytes exceeds max_payload");
  }
  DPML_CHECK_MSG(groups_.count(g.id) != 0, "operation on destroyed group");
  DPML_CHECK(buf.empty() || buf.size() == bytes);
  bool is_member = false;
  for (int w : g.members) is_member |= w == root_world;
  DPML_CHECK_MSG(is_member, "bcast root must be a group member");

  sim::Engine& eng = machine_.engine();
  const net::NicModel& nic = machine_.config().nic;
  const int members = static_cast<int>(g.members.size());
  const std::int64_t key = r.next_coll_key(g.context);
  OpState& st = op_state(key, members);
  if (!st.slot_requested) {
    st.slot_requested = true;
    eng.spawn(grab_slot(st));
  }
  co_await st.slot_held.wait();

  const Time occupancy =
      std::max<Time>(nic.per_msg_tx, transfer_time(bytes, nic.link_bw));
  const int my_hca = machine_.hca_of_local(r.local_rank());
  fabric::FlowFabric* ff = machine_.flow_fabric();
  if (r.world_rank() == root_world) {
    // Root uploads the payload to its leaf switch.
    co_await eng.delay(nic.o_send);
    const Time t0 = eng.now();
    const Time inj_done = t0 + transfer_time(bytes, nic.proc_bw);
    std::vector<std::byte> payload(buf.begin(), buf.end());
    OpState* stp = &st;
    std::function<void()> arrive = [this, stp,
                                    payload = std::move(payload)]() mutable {
      stp->max_arrival = std::max(stp->max_arrival, machine_.engine().now());
      if (!payload.empty()) {
        stp->acc = std::move(payload);
        stp->acc_init = true;
      }
      // The root's arrival opens the gate for everyone.
      stp->arrivals.arrive(static_cast<int>(stp->arrivals.pending()));
    };
    if (ff != nullptr) {
      const auto tx = r.node().tx(my_hca).acquire_grant(t0, nic.per_msg_tx);
      const int my_node = r.node_id();
      eng.schedule_call(tx.start, [this, ff, my_node, bytes, inj_done,
                                 arrive = std::move(arrive)]() mutable {
        ff->start_uplink_flow(
            my_node, bytes, machine_.config().nic.link_bw,
            [this, inj_done,
             arrive = std::move(arrive)](Time flow_done) mutable {
              const net::NicModel& n = machine_.config().nic;
              const Time at_switch = std::max(inj_done, flow_done) +
                                     n.wire_latency + n.switch_latency;
              machine_.engine().schedule_call(at_switch, std::move(arrive));
            });
      });
    } else {
      const auto tx = r.node().tx(my_hca).acquire_grant(t0, occupancy);
      const Time at_switch = std::max(inj_done, tx.done) + nic.wire_latency +
                             nic.switch_latency;
      eng.schedule_call(at_switch, std::move(arrive));
    }
  }
  co_await st.arrivals.wait();

  if (!st.finish_computed) {
    st.finish_computed = true;
    // Multicast needs only forwarding, no per-level aggregation compute.
    st.finish = st.max_arrival +
                (g.levels - 1) * (nic.wire_latency + nic.switch_latency);
    eng.schedule_call(st.finish, [this]() { op_slots_.release(); });
  }

  const Time down_latency = (g.levels - 1) * (nic.wire_latency +
                                              nic.switch_latency) +
                            nic.wire_latency;
  auto delivered = std::make_shared<sim::Flag>(eng);
  const int my_node = r.node_id();
  if (ff != nullptr) {
    eng.schedule_call(st.finish, [this, ff, my_node, my_hca, bytes, down_latency,
                                delivered]() {
      ff->start_downlink_flow(
          my_node, bytes, machine_.config().nic.link_bw,
          [this, my_node, my_hca, down_latency, delivered](Time flow_done) {
            machine_.engine().schedule_call(
                flow_done + down_latency, [this, my_node, my_hca, delivered]() {
                  const Time rx_done = machine_.node(my_node).rx(my_hca).acquire(
                      machine_.engine().now(), machine_.config().nic.per_msg_tx);
                  machine_.engine().schedule_call(rx_done,
                                                [delivered]() { delivered->post(); });
                });
          });
    });
  } else {
    const Time down_head = st.finish + down_latency;
    eng.schedule_call(down_head, [this, my_node, my_hca, occupancy, delivered]() {
      const Time rx_done = machine_.node(my_node).rx(my_hca).acquire(
          machine_.engine().now(), occupancy);
      machine_.engine().schedule_call(rx_done, [delivered]() { delivered->post(); });
    });
  }
  co_await delivered->wait();
  co_await eng.delay(nic.o_recv);
  if (r.world_rank() != root_world && !buf.empty() && st.acc_init) {
    std::memcpy(buf.data(), st.acc.data(), bytes);
  }
  if (++st.delivered == members) {
    ops_.erase(key);
  }
}

}  // namespace dpml::sharp
