// SHArP-like in-network aggregation substrate.
//
// Models the Scalable Hierarchical Aggregation Protocol (Graham et al.,
// COM-HPC'16) at the level the paper's designs depend on:
//   * a reduction tree of switch aggregation nodes above the member hosts
//     (1 level if all members share a leaf switch, 2 levels otherwise);
//   * per-operation per-level fixed cost plus a per-byte streaming cost
//     (switch ALUs are built for small latency-critical payloads, so the
//     per-byte cost exceeds host reduction cost — this produces the ~4KB
//     host/SHArP crossover of Figure 8);
//   * a bounded number of concurrently outstanding operations and a bounded
//     number of groups ("SHArP can support only a small number of concurrent
//     operations and SHArP communicators", paper §4.3) — the reason the
//     node-/socket-leader designs exist instead of one group per DPML leader;
//   * result multicast down the tree to every member.
//
// Real data flows through the aggregation in data mode, so SHArP-based
// allreduce results are bit-checkable like every other algorithm.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/models.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "simmpi/datatype.hpp"
#include "simmpi/machine.hpp"

namespace dpml::sharp {

// Thrown for fabric-level failures: group limit exceeded, payload too large.
class SharpError : public std::runtime_error {
 public:
  explicit SharpError(const std::string& what) : std::runtime_error(what) {}
};

struct Group {
  int id = -1;
  int context = 0;            // machine context used to sequence operations
  std::vector<int> members;   // world ranks, one logical port each
  int levels = 1;             // aggregation tree depth above the hosts
};

class SharpFabric {
 public:
  // The machine's cluster preset must have a SharpModel.
  explicit SharpFabric(simmpi::Machine& machine);

  const net::SharpModel& model() const { return model_; }
  simmpi::Machine& machine() { return machine_; }

  // Create an aggregation group over the given world ranks. Throws
  // SharpError once max_groups are live.
  const Group& create_group(std::vector<int> members);
  void destroy_group(int id);
  // Create-once lookup: the first call with `name` creates the group over
  // `members`; later calls return the cached group (members must match).
  const Group& named_group(const std::string& name,
                           const std::vector<int>& members);
  int groups_live() const { return static_cast<int>(groups_.size()); }

  // True if a payload of `bytes` can be aggregated in-network.
  bool supports(std::size_t bytes) const { return bytes <= model_.max_payload; }

  // Allreduce across the group; called by every member rank (SPMD).
  // `in`/`out` may be empty (metadata-only) or alias each other.
  sim::CoTask<void> allreduce(simmpi::Rank& r, const Group& g,
                              std::size_t count, simmpi::Dtype dt,
                              const simmpi::Op& op, simmpi::ConstBytes in,
                              simmpi::MutBytes out);

  // In-network barrier: a zero-payload aggregation + multicast (the paper's
  // §8 future work — SHArP for other collectives).
  sim::CoTask<void> barrier(simmpi::Rank& r, const Group& g);

  // In-network broadcast: the root member uploads `bytes`, the switch tree
  // multicasts to every member. `buf` is read at the root and written at
  // the other members.
  sim::CoTask<void> bcast(simmpi::Rank& r, const Group& g, int root_world,
                          std::size_t bytes, simmpi::MutBytes buf);

  int ops_in_flight() const {
    return model_.max_outstanding_ops - op_slots_.available();
  }

 private:
  struct OpState {
    OpState(sim::Engine& e, int members)
        : arrivals(e, members), slot_held(e) {}
    sim::Latch arrivals;
    sim::Flag slot_held;
    bool slot_requested = false;
    bool finish_computed = false;
    sim::Time max_arrival = 0;
    sim::Time finish = 0;
    std::vector<std::byte> acc;
    bool acc_init = false;
    int delivered = 0;
  };

  sim::CoTask<void> grab_slot(OpState& op);
  OpState& op_state(std::int64_t key, int members);

  simmpi::Machine& machine_;
  net::SharpModel model_;
  sim::Semaphore op_slots_;
  std::unordered_map<int, Group> groups_;
  std::unordered_map<std::string, int> named_;
  std::unordered_map<std::int64_t, std::unique_ptr<OpState>> ops_;
  int next_group_id_ = 0;
};

}  // namespace dpml::sharp
