// Multi-tenant fabric simulation: N concurrent collective jobs sharing one
// FlowFabric (docs/MODEL.md §11).
//
// The paper's testbed runs one job at a time; a production cluster does
// not. This subsystem launches several collective jobs — each with its own
// rank set, collective kind/algorithm, payload size, and seeded start-time
// stagger — inside a single Machine, so the max-min fair allocator
// arbitrates genuine cross-job link contention (and, for SHArP jobs, the
// shared fabric's op-slot semaphore arbitrates in-network aggregation
// contention). A seeded traffic-matrix generator can add deterministic
// point-to-point background flows, and link/switch failure events can take
// ECMP ways down and back up mid-run, rerouting live flows.
//
// Per-job observability: goodput, slowdown vs. a solo run of the same job
// on the same (otherwise idle) machine, stall time from intra-job arrival
// skew, and per-link byte attribution via the fabric's group accounting.
//
// Determinism: every run is a pure function of (cluster, jobs, options).
// The shared run and the per-job solo baselines fan out over the sweep
// executor into pre-sized slots, so results are byte-identical for any
// --jobs count, and single-job runs with tenancy features off stay
// bit-identical to plain measure_collective runs (locked by golden tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/adapt.hpp"
#include "coll/registry.hpp"
#include "fabric/fabric.hpp"
#include "net/cluster.hpp"
#include "perturb/spec.hpp"
#include "sim/dataplane.hpp"

namespace dpml::tenant {

// Node-to-job placement policy. `block` gives each job a contiguous node
// range (PR 9's only policy — under which disjoint jobs share no links on
// these topologies); `round_robin` deals nodes to jobs in rounds, and
// `random` assigns a seeded shuffle, both of which interleave jobs within
// leaves so their cross-leaf traffic genuinely contends on shared links.
enum class Placement { block, round_robin, random };

const char* placement_name(Placement p);
// Throws util::InvariantError listing the valid names.
Placement placement_by_name(const std::string& name);

// Background traffic matrix: which (src, dst) pairs the generator draws.
enum class Matrix { none, uniform, permutation, hotspot };

const char* matrix_name(Matrix m);

// Seeded background point-to-point traffic. Each used node runs an
// open-loop arrival chain: every `bytes / (load * link_bw)` seconds (with a
// seeded per-gap jitter factor in [0.5, 1.5)) it injects one `bytes`-sized
// fabric flow toward a matrix-chosen destination. `load` is therefore the
// average fraction of each node's edge bandwidth the background consumes.
struct TrafficSpec {
  Matrix matrix = Matrix::none;
  double load = 0.2;            // fraction of per-node edge bandwidth
  std::size_t bytes = 65536;    // per-flow payload
  double hot_frac = 0.5;        // hotspot: probability of targeting hot_node
  int hot_node = 0;             // hotspot: the popular destination
  int shift = 0;                // permutation: dst = src + shift (0 = seeded)
  std::uint64_t seed = 1;

  bool empty() const { return matrix == Matrix::none; }
  std::string to_string() const;

  // Grammar: "<matrix>[:k=v,k=v,...]", e.g.
  // "uniform:load=0.3,bytes=64K,seed=9" or "hotspot:hot_frac=0.8,hot_node=0"
  // or "permutation:shift=3". Empty text = none.
  static TrafficSpec parse(const std::string& text);
};

// Scheduled ECMP-way failures. leaf == -1 fails core switch `way` across
// every leaf (a core-switch failure); otherwise one leaf's way (a cable
// failure). recover_us == 0 means the way never comes back.
struct FailSpec {
  struct Event {
    int way = 0;
    int leaf = -1;
    double at_us = 0.0;
    double recover_us = 0.0;
  };
  std::vector<Event> events;

  bool empty() const { return events.empty(); }
  std::string to_string() const;

  // Grammar: ';'-separated clauses "way=W[,leaf=L][,at_us=T][,recover_us=T]",
  // e.g. "way=0,at_us=30,recover_us=150;way=1,leaf=0,at_us=60".
  static FailSpec parse(const std::string& text);
  // The bare `--fail-links` default: core switch 0 fails at 30us and
  // recovers at 150us.
  static FailSpec default_spec();
};

// One tenant job: a collective looping `iterations` times over its own
// block of nodes. `algo` must work on sub-communicators (the world_only
// hierarchical designs are rejected up front); `sharp` routes the job
// through the shared SharpFabric instead of host algorithms.
struct JobSpec {
  std::string name;
  coll::CollKind kind = coll::CollKind::allreduce;
  std::string algo = "ring";
  int leaders = 1;
  int nodes = 2;
  std::size_t bytes = 65536;
  int iterations = 4;
  bool sharp = false;
};

// A deterministic default job mix: `count` jobs cycling through
// sub-communicator-safe kinds/algorithms, block-placed over
// `nodes_available` nodes; on SHArP-capable clusters the second job is a
// small-payload in-network allreduce so tree contention is exercised.
std::vector<JobSpec> default_jobs(int count, const net::ClusterConfig& cfg,
                                  int nodes_available);

struct TenantOptions {
  std::uint64_t seed = 1;
  double stagger_max_us = 20.0;    // seeded per-job start offset in [0, max)
  TrafficSpec traffic;             // background flows (shared run only)
  FailSpec failures;               // way failures (shared run only)
  fabric::FabricLevel fabric = fabric::FabricLevel::links;
  sim::DataMode data_mode = sim::DataMode::payload;
  sim::SchedulerKind scheduler = sim::SchedulerKind::automatic;
  perturb::PerturbSpec perturb;
  bool solo_baseline = true;       // run each job alone for slowdown
  int jobs = 0;                    // host threads (0 = core::default_jobs())
  std::string trace_json;          // Chrome trace of the shared run
  Placement placement = Placement::block;
  // Congestion-aware re-planning (docs/MODEL.md §12): between iterations
  // each non-SHArP job's observed signals re-select (algorithm, leaders)
  // through `table`. Applies to the shared run only — solo baselines stay
  // the static reference. Requires fabric == links.
  bool adapt = false;
  adapt::AdaptiveTable table = adapt::AdaptiveTable::defaults();
};

struct JobStats {
  std::string name;
  std::string kind;
  std::string algo;
  int nodes = 0;
  int ranks = 0;
  std::size_t bytes = 0;
  int iterations = 0;
  double start_us = 0.0;           // staggered start (shared run)
  double end_us = 0.0;             // last rank's completion
  double makespan_us = 0.0;        // end - start
  double goodput_gbps = 0.0;       // bytes * iterations / makespan
  double solo_us = 0.0;            // same job alone (0 when disabled)
  double slowdown = 0.0;           // makespan / solo (0 when disabled)
  double stall_us = 0.0;           // summed early-arriver wait at barriers
  double link_share = 0.0;         // fraction of hottest-link bytes
  // Adaptive re-planning outcome (static plan echoed when adapt is off).
  std::string final_algo;          // plan after the last re-plan point
  int final_leaders = 0;
  int replans = 0;                 // times the plan actually changed
  int max_level = 0;               // worst contention level classified
};

struct TenantResult {
  std::vector<JobStats> jobs;
  double makespan_us = 0.0;        // whole shared run
  std::uint64_t events = 0;        // engine events of the shared run
  double max_link_util = 0.0;      // busiest link, time-averaged
  double peak_link_util = 0.0;     // allocator conservation witness
  std::uint64_t flows = 0;         // fabric flows launched (shared run)
  std::uint64_t bg_flows = 0;      // of which background
  std::string hot_link;            // busiest link's name
  double hot_link_bg_share = 0.0;  // background's byte share on it
  // Links whose delivered bytes came from >= 2 distinct jobs (background
  // excluded) — the witness that a placement actually shares links.
  int shared_links = 0;
  // When adapt is on: the input table with every observed (kind, level)
  // choice recorded — the persisted feedback loop (dpmlsim --adapt-table).
  std::string adapt_table;
};

// Run the tenant mix. `ppn` applies to every job. Validates shapes up
// front (node budget, sub-communicator-safe algorithms, SHArP payload
// limits, background/failure features requiring fabric == links) and
// throws util::InvariantError on violations.
TenantResult run_tenants(const net::ClusterConfig& cfg, int ppn,
                         const std::vector<JobSpec>& jobs,
                         const TenantOptions& opt = {});

}  // namespace dpml::tenant
