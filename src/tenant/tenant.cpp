// TenantSim: N concurrent collective jobs, background traffic, and failure
// events on one shared machine (docs/MODEL.md §11).
#include "tenant/tenant.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <memory>

#include "core/api.hpp"
#include "core/executor.hpp"
#include "sharp/sharp.hpp"
#include "sim/sync.hpp"
#include "simmpi/machine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpml::tenant {

namespace {

// Purpose constants for the repo-wide (seed, purpose, rank, op) derivation
// scheme (util/rng.hpp); perturb uses 1..3.
constexpr std::uint64_t kPurposeStagger = 17;
constexpr std::uint64_t kPurposeTraffic = 18;
constexpr std::uint64_t kPurposePlacement = 19;

// Open-loop background flow generator: one seeded arrival chain per source
// node, injecting matrix-chosen point-to-point flows until stopped. Lives
// on the stack across the (synchronous) Machine::run call.
class BgGen {
 public:
  BgGen(sim::Engine& engine, fabric::FlowFabric& ff, const TrafficSpec& spec,
        int nodes, int group, double rate_cap_gbps)
      : engine_(engine),
        ff_(ff),
        spec_(spec),
        nodes_(nodes),
        group_(group),
        rate_cap_gbps_(rate_cap_gbps),
        mean_gap_s_(static_cast<double>(spec.bytes) /
                    (spec.load * rate_cap_gbps * 1e9)) {
    const std::uint64_t purpose =
        util::SplitMix64(spec.seed, kPurposeTraffic).next_u64();
    rng_.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      rng_.emplace_back(purpose, static_cast<std::uint64_t>(n));
    }
    shift_ = spec.shift;
    if (spec.matrix == Matrix::permutation && shift_ == 0) {
      // One seeded shift shared by every source (a true permutation).
      shift_ = 1 + static_cast<int>(util::SplitMix64(purpose, 0xffffffffULL)
                                        .next_below(
                                            static_cast<std::uint64_t>(
                                                std::max(1, nodes - 1))));
    }
  }

  void start() {
    for (int src = 0; src < nodes_; ++src) schedule_next(src);
  }
  void stop() { stopped_ = true; }
  std::uint64_t flows() const { return flows_; }

 private:
  void schedule_next(int src) {
    const double jitter = 0.5 + rng_[static_cast<std::size_t>(src)]
                                    .next_double();
    const sim::Time at =
        engine_.now() + std::max<sim::Time>(
                            1, sim::from_seconds(mean_gap_s_ * jitter));
    engine_.schedule_call(at, [this, src]() {
      if (stopped_) return;
      inject(src);
      schedule_next(src);
    });
  }

  int pick_dst(int src) {
    util::SplitMix64& r = rng_[static_cast<std::size_t>(src)];
    switch (spec_.matrix) {
      case Matrix::permutation:
        return (src + shift_) % nodes_;
      case Matrix::hotspot: {
        const double u = r.next_double();
        const int hot = spec_.hot_node % nodes_;
        if (u < spec_.hot_frac && hot != src) return hot;
        break;
      }
      case Matrix::uniform:
      case Matrix::none:
        break;
    }
    // Uniform over the other nodes.
    int d = static_cast<int>(
        r.next_below(static_cast<std::uint64_t>(nodes_ - 1)));
    if (d >= src) ++d;
    return d;
  }

  void inject(int src) {
    const int dst = pick_dst(src);
    if (dst == src) return;  // degenerate permutation shift
    ++flows_;
    ff_.start_flow(src, dst, spec_.bytes, rate_cap_gbps_,
                   [](sim::Time) {}, group_);
  }

  sim::Engine& engine_;
  fabric::FlowFabric& ff_;
  TrafficSpec spec_;
  int nodes_;
  int group_;
  double rate_cap_gbps_;
  double mean_gap_s_;
  int shift_ = 0;
  bool stopped_ = false;
  std::uint64_t flows_ = 0;
  std::vector<util::SplitMix64> rng_;
};

// Per-iteration arrival aggregation for stall accounting: once every party
// has arrived, the iteration contributed parties*max - sum of waiting.
struct IterAgg {
  int count = 0;
  sim::Time sum = 0;
  sim::Time max = 0;
};

struct JobState {
  std::vector<IterAgg> iters;
  sim::Time start = 0;
  sim::Time end = 0;
  sim::Time stall = 0;
  int done_ranks = 0;
};

// Per-job adaptive re-planning state (shared run with adapt on only): the
// Replanner state machine plus the byte counters that turn the fabric's
// group accounting into per-window foreign-utilization signals.
struct AdaptJob {
  AdaptJob(const adapt::AdaptiveTable* table, coll::CollKind kind,
           adapt::Plan static_plan, std::size_t bytes)
      : rp(table, kind, std::move(static_plan), bytes) {}

  adapt::Replanner rp;
  std::vector<int> links;            // watched links (job edges + core ways)
  std::vector<double> foreign_prev;  // foreign bytes per link at window start
  sim::Time window_start = 0;
};

// Adaptive outcome of one job (echoed into JobStats / table recording).
struct JobAdaptOut {
  std::string final_algo;
  int final_leaders = 0;
  int replans = 0;
  int max_level = 0;
  // Last plan observed at each contention level (for table persistence).
  std::vector<int> obs_levels;
  std::vector<std::string> obs_algos;
  std::vector<int> obs_leaders;
};

// One simulation outcome (the shared run, or job `only_job` running solo).
struct RunOut {
  std::vector<double> start_us;
  std::vector<double> end_us;
  std::vector<double> stall_us;
  std::vector<double> link_share;
  double makespan_us = 0.0;
  std::uint64_t events = 0;
  double max_link_util = 0.0;
  double peak_link_util = 0.0;
  std::uint64_t flows = 0;
  std::uint64_t bg_flows = 0;
  std::string hot_link;
  double hot_link_bg_share = 0.0;
  int shared_links = 0;
  std::vector<JobAdaptOut> adapt;  // empty when adapt is off
};

// Node-to-job assignment under the placement policy: node_job[n] is the
// owning job (-1 for unused nodes) and job_nodes[j] lists each job's nodes
// in ascending node order (its rank order). A pure function of (jobs,
// placement, seed), so the shared run and every solo baseline agree.
struct PlacementMap {
  std::vector<int> node_job;
  std::vector<std::vector<int>> job_nodes;
  std::vector<int> node_index_in_job;  // rank-block index within the job
};

PlacementMap place_jobs(const std::vector<JobSpec>& jobs, int total_nodes,
                        Placement placement, std::uint64_t seed) {
  const int njobs = static_cast<int>(jobs.size());
  PlacementMap pm;
  pm.node_job.assign(static_cast<std::size_t>(total_nodes), -1);
  pm.job_nodes.resize(static_cast<std::size_t>(njobs));
  pm.node_index_in_job.assign(static_cast<std::size_t>(total_nodes), -1);
  switch (placement) {
    case Placement::block: {
      int base = 0;
      for (int j = 0; j < njobs; ++j) {
        for (int n = 0; n < jobs[static_cast<std::size_t>(j)].nodes; ++n) {
          pm.node_job[static_cast<std::size_t>(base + n)] = j;
        }
        base += jobs[static_cast<std::size_t>(j)].nodes;
      }
      break;
    }
    case Placement::round_robin: {
      // Deal nodes to jobs in rounds; a job drops out once it has its
      // quota, so uneven mixes still fill every node exactly once.
      std::vector<int> remaining(static_cast<std::size_t>(njobs));
      for (int j = 0; j < njobs; ++j) {
        remaining[static_cast<std::size_t>(j)] =
            jobs[static_cast<std::size_t>(j)].nodes;
      }
      int cursor = 0;
      for (int n = 0; n < total_nodes; ++n) {
        int tried = 0;
        while (remaining[static_cast<std::size_t>(cursor)] == 0 &&
               tried < njobs) {
          cursor = (cursor + 1) % njobs;
          ++tried;
        }
        pm.node_job[static_cast<std::size_t>(n)] = cursor;
        --remaining[static_cast<std::size_t>(cursor)];
        cursor = (cursor + 1) % njobs;
      }
      break;
    }
    case Placement::random: {
      // Seeded Fisher-Yates shuffle of the node ids, then block-assign over
      // the shuffled order.
      std::vector<int> perm(static_cast<std::size_t>(total_nodes));
      for (int n = 0; n < total_nodes; ++n) {
        perm[static_cast<std::size_t>(n)] = n;
      }
      util::SplitMix64 r(seed, kPurposePlacement);
      for (int n = total_nodes - 1; n > 0; --n) {
        const int k = static_cast<int>(
            r.next_below(static_cast<std::uint64_t>(n + 1)));
        std::swap(perm[static_cast<std::size_t>(n)],
                  perm[static_cast<std::size_t>(k)]);
      }
      int at = 0;
      for (int j = 0; j < njobs; ++j) {
        for (int n = 0; n < jobs[static_cast<std::size_t>(j)].nodes; ++n) {
          pm.node_job[static_cast<std::size_t>(perm[static_cast<std::size_t>(
              at++)])] = j;
        }
      }
      break;
    }
  }
  for (int n = 0; n < total_nodes; ++n) {
    const int j = pm.node_job[static_cast<std::size_t>(n)];
    if (j < 0) continue;
    pm.node_index_in_job[static_cast<std::size_t>(n)] =
        static_cast<int>(pm.job_nodes[static_cast<std::size_t>(j)].size());
    pm.job_nodes[static_cast<std::size_t>(j)].push_back(n);
  }
  return pm;
}

std::size_t job_count(const JobSpec& j) {
  // Element count for the collective call; alltoall interprets bytes as the
  // per-destination block, matching measure_collective's convention.
  return j.bytes / simmpi::dtype_size(simmpi::Dtype::f32);
}

// Everything the per-rank coroutine touches. Machine::run is synchronous,
// so the pointed-to locals of simulate() outlive every frame; the struct
// travels by shared_ptr so the lambda handed to run stays a plain function
// and no coroutine captures by reference.
struct RankCtx {
  const std::vector<JobSpec>* jobs = nullptr;
  const std::vector<int>* node_job = nullptr;
  const std::vector<sim::Time>* starts = nullptr;
  std::vector<JobState>* state = nullptr;
  std::deque<sim::Barrier>* barriers = nullptr;
  std::vector<const simmpi::Comm*>* comms = nullptr;
  std::vector<const sharp::Group*>* groups = nullptr;
  sharp::SharpFabric* sf = nullptr;
  sim::Engine* engine = nullptr;
  BgGen* bg = nullptr;
  fabric::FlowFabric* ff = nullptr;
  // Adaptive re-planning (shared run only; empty pointers when off).
  std::vector<std::unique_ptr<AdaptJob>>* adapt = nullptr;
  bool shared = true;
  int only_job = -1;
  int ppn = 1;
  int active_jobs = 0;
  int jobs_done = 0;

  AdaptJob* adapt_job(int j) const {
    if (adapt == nullptr) return nullptr;
    return (*adapt)[static_cast<std::size_t>(j)].get();
  }
};

// Foreign (other jobs + background) delivered bytes on `link`, from the
// fabric's per-(link, group) accounting.
double foreign_bytes(const fabric::FlowFabric& ff, int link, int job) {
  return ff.link_total_bytes(link) - ff.link_group_bytes(link, job);
}

// The deterministic re-plan point: runs in the LAST rank to arrive at an
// iteration barrier, before arrive_and_wait releases the peers, so every
// rank of the job reads the updated plan for this iteration. Quantizes the
// window's observed signals to a contention level and lets the Replanner
// re-select (algorithm, leaders) (docs/MODEL.md §12).
void replan_job(const RankCtx& c, int j, const IterAgg& agg, int parties,
                sim::Time now) {
  AdaptJob& aj = *c.adapt_job(j);
  const fabric::FlowFabric& ff = *c.ff;
  adapt::Signals s;
  const sim::Time win = now - aj.window_start;
  if (win > 0) {
    const double win_s = sim::to_us(win) * 1e-6;
    double worst = 0.0;
    for (std::size_t i = 0; i < aj.links.size(); ++i) {
      const int link = aj.links[i];
      const double delta = foreign_bytes(ff, link, j) - aj.foreign_prev[i];
      const double cap_bytes = ff.link_capacity_gbps(link) * 1e9 * win_s;
      if (cap_bytes > 0.0) worst = std::max(worst, delta / cap_bytes);
    }
    s.foreign_util = worst;
    const sim::Time stall =
        static_cast<sim::Time>(parties) * agg.max - agg.sum;
    s.stall_frac = static_cast<double>(stall) /
                   (static_cast<double>(parties) * static_cast<double>(win));
  }
  s.degraded = ff.down_ways() > 0;
  aj.rp.replan(s);
  aj.window_start = now;
  for (std::size_t i = 0; i < aj.links.size(); ++i) {
    aj.foreign_prev[i] = foreign_bytes(ff, aj.links[i], j);
  }
}

sim::CoTask<void> tenant_rank(simmpi::Rank& r, std::shared_ptr<RankCtx> c) {
  const int j = (*c->node_job)[static_cast<std::size_t>(r.node_id())];
  if (j < 0 || (!c->shared && j != c->only_job)) co_return;
  const JobSpec& spec = (*c->jobs)[static_cast<std::size_t>(j)];
  JobState& st = (*c->state)[static_cast<std::size_t>(j)];
  const int parties = spec.nodes * c->ppn;
  co_await c->engine->until((*c->starts)[static_cast<std::size_t>(j)]);
  st.start = (*c->starts)[static_cast<std::size_t>(j)];
  for (int it = 0; it < spec.iterations; ++it) {
    IterAgg& agg = st.iters[static_cast<std::size_t>(it)];
    const sim::Time now = c->engine->now();
    ++agg.count;
    agg.sum += now;
    agg.max = std::max(agg.max, now);
    if (agg.count == parties) {
      st.stall += static_cast<sim::Time>(parties) * agg.max - agg.sum;
      if (c->adapt_job(j) != nullptr) {
        replan_job(*c, j, agg, parties, now);
      }
    }
    co_await (*c->barriers)[static_cast<std::size_t>(j)].arrive_and_wait();
    if (spec.sharp) {
      co_await c->sf->allreduce(r, *(*c->groups)[static_cast<std::size_t>(j)],
                                job_count(spec), simmpi::Dtype::f32,
                                simmpi::ReduceOp::sum, {}, {});
    } else {
      coll::CollArgs args;
      args.rank = &r;
      args.comm = (*c->comms)[static_cast<std::size_t>(j)];
      args.count = job_count(spec);
      args.dt = simmpi::Dtype::f32;
      args.op = simmpi::ReduceOp::sum;
      coll::CollSpec cspec;
      const AdaptJob* aj = c->adapt_job(j);
      if (aj != nullptr) {
        // Every rank reads the plan the last arriver selected above (the
        // barrier orders the write before these reads).
        cspec.algo = aj->rp.plan().algo;
        cspec.leaders = aj->rp.plan().leaders;
      } else {
        cspec.algo = spec.algo;
        cspec.leaders = spec.leaders;
      }
      co_await core::run_collective(spec.kind, args, cspec);
    }
  }
  st.end = std::max(st.end, c->engine->now());
  if (++st.done_ranks == parties) {
    if (++c->jobs_done == c->active_jobs && c->bg) c->bg->stop();
  }
  co_return;
}

RunOut simulate(const net::ClusterConfig& cfg, int ppn,
                const std::vector<JobSpec>& jobs, const TenantOptions& opt,
                int only_job) {
  const int njobs = static_cast<int>(jobs.size());
  const bool shared = only_job < 0;
  int total_nodes = 0;
  for (const JobSpec& j : jobs) total_nodes += j.nodes;

  simmpi::RunOptions ro;
  ro.with_data = false;
  ro.seed = opt.seed;
  ro.perturb = opt.perturb;
  ro.fabric_level = opt.fabric;
  ro.data_mode = opt.data_mode;
  ro.scheduler = opt.scheduler;
  simmpi::Machine machine(cfg, total_nodes, ppn, ro);
  sim::Engine& engine = machine.engine();
  const bool tracing = shared && !opt.trace_json.empty();
  if (tracing) machine.enable_trace();

  // Placement policy decides which nodes each job owns; the mapping is the
  // same for the shared run and every solo baseline.
  const PlacementMap pm =
      place_jobs(jobs, total_nodes, opt.placement, opt.seed);
  const std::vector<int>& node_job = pm.node_job;

  fabric::FlowFabric* ff = machine.flow_fabric();
  if (shared && ff != nullptr) {
    // Groups 0..njobs-1 are the jobs; group njobs is background traffic.
    ff->enable_group_accounting(njobs + 1);
    for (int n = 0; n < total_nodes; ++n) {
      if (node_job[static_cast<std::size_t>(n)] >= 0) {
        ff->set_node_group(n, node_job[static_cast<std::size_t>(n)]);
      }
    }
  }

  // One SharpFabric shared by every SHArP job: op slots and group budget
  // genuinely contend across tenants.
  std::unique_ptr<sharp::SharpFabric> sf;
  std::vector<const sharp::Group*> groups(static_cast<std::size_t>(njobs),
                                          nullptr);
  std::vector<const simmpi::Comm*> comms(static_cast<std::size_t>(njobs),
                                         nullptr);
  std::deque<sim::Barrier> barriers;
  std::vector<JobState> state(static_cast<std::size_t>(njobs));
  for (int j = 0; j < njobs; ++j) {
    const JobSpec& spec = jobs[static_cast<std::size_t>(j)];
    const bool active = shared || j == only_job;
    std::vector<int> ranks;
    for (int n : pm.job_nodes[static_cast<std::size_t>(j)]) {
      for (int p = 0; p < ppn; ++p) {
        ranks.push_back(n * ppn + p);
      }
    }
    const int parties = static_cast<int>(ranks.size());
    barriers.emplace_back(engine, active ? parties : 1);
    state[static_cast<std::size_t>(j)].iters.resize(
        static_cast<std::size_t>(spec.iterations));
    if (!active) continue;
    if (spec.sharp) {
      if (!sf) sf = std::make_unique<sharp::SharpFabric>(machine);
      groups[static_cast<std::size_t>(j)] = &sf->create_group(ranks);
    } else {
      comms[static_cast<std::size_t>(j)] = &machine.make_comm(ranks);
    }
  }

  // Adaptive re-planning state (shared run only): per-job Replanner plus
  // the watched-link set — the job's edge links and the core ways of every
  // leaf hosting one of its nodes (the links its flows can cross).
  std::vector<std::unique_ptr<AdaptJob>> adapt_state;
  const bool adapting = shared && opt.adapt && ff != nullptr;
  if (adapting) {
    adapt_state.resize(static_cast<std::size_t>(njobs));
    const fabric::FabricTopo& topo = ff->topo();
    for (int j = 0; j < njobs; ++j) {
      const JobSpec& spec = jobs[static_cast<std::size_t>(j)];
      if (spec.sharp) continue;  // in-network jobs keep their fixed plan
      auto aj = std::make_unique<AdaptJob>(&opt.table, spec.kind,
                                           adapt::Plan{spec.algo, spec.leaders},
                                           spec.bytes);
      std::vector<char> leaf_seen(static_cast<std::size_t>(topo.leaves), 0);
      for (int n : pm.job_nodes[static_cast<std::size_t>(j)]) {
        aj->links.push_back(ff->uplink(n));
        aj->links.push_back(ff->downlink(n));
        leaf_seen[static_cast<std::size_t>(n / topo.nodes_per_leaf)] = 1;
      }
      for (int l = 0; l < topo.leaves; ++l) {
        if (leaf_seen[static_cast<std::size_t>(l)] == 0) continue;
        for (int w = 0; w < topo.ecmp_ways; ++w) {
          aj->links.push_back(ff->leaf_uplink(l, w));
          aj->links.push_back(ff->leaf_downlink(l, w));
        }
      }
      aj->foreign_prev.assign(aj->links.size(), 0.0);
      adapt_state[static_cast<std::size_t>(j)] = std::move(aj);
    }
  }

  // Seeded start stagger (shared run only; solo baselines start at 0 —
  // makespans are measured from each job's own start, so the stagger does
  // not bias the slowdown ratio).
  std::vector<sim::Time> starts(static_cast<std::size_t>(njobs), 0);
  if (shared && opt.stagger_max_us > 0.0) {
    const std::uint64_t purpose =
        util::SplitMix64(opt.seed, kPurposeStagger).next_u64();
    for (int j = 0; j < njobs; ++j) {
      util::SplitMix64 r(purpose, static_cast<std::uint64_t>(j));
      starts[static_cast<std::size_t>(j)] =
          sim::us(r.next_double() * opt.stagger_max_us);
    }
  }
  for (int j = 0; j < njobs; ++j) {
    if (adapting && adapt_state[static_cast<std::size_t>(j)] != nullptr) {
      // The first observation window opens at the job's own start.
      adapt_state[static_cast<std::size_t>(j)]->window_start =
          starts[static_cast<std::size_t>(j)];
    }
  }

  std::unique_ptr<BgGen> bg;
  if (shared && !opt.traffic.empty()) {
    DPML_CHECK(ff != nullptr);  // validated in run_tenants
    bg = std::make_unique<BgGen>(engine, *ff, opt.traffic, total_nodes, njobs,
                                 cfg.nic.link_bw);
    bg->start();
  }
  if (shared && !opt.failures.empty()) {
    DPML_CHECK(ff != nullptr);
    for (const FailSpec::Event& e : opt.failures.events) {
      engine.schedule_call(sim::us(e.at_us), [ff, e]() {
        ff->set_way_down(e.leaf, e.way, true);
      });
      if (e.recover_us > 0.0) {
        engine.schedule_call(sim::us(e.recover_us), [ff, e]() {
          ff->set_way_down(e.leaf, e.way, false);
        });
      }
    }
    if (adapting) {
      // Failure-triggered re-planning: a set_way_down observed mid-run
      // marks every adaptive job's plan stale, so the next iteration
      // barrier re-plans on the degraded (or recovered) fabric even when
      // the classified level did not move.
      ff->set_failure_listener([&adapt_state](int, int, bool) {
        for (auto& aj : adapt_state) {
          if (aj != nullptr) aj->rp.mark_stale();
        }
      });
    }
  }

  auto ctx = std::make_shared<RankCtx>();
  ctx->jobs = &jobs;
  ctx->node_job = &node_job;
  ctx->starts = &starts;
  ctx->state = &state;
  ctx->barriers = &barriers;
  ctx->comms = &comms;
  ctx->groups = &groups;
  ctx->sf = sf.get();
  ctx->engine = &engine;
  ctx->bg = bg.get();
  ctx->ff = ff;
  ctx->adapt = adapting ? &adapt_state : nullptr;
  ctx->shared = shared;
  ctx->only_job = only_job;
  ctx->ppn = ppn;
  for (int j = 0; j < njobs; ++j) {
    if (shared || j == only_job) ++ctx->active_jobs;
  }

  machine.run(
      [ctx](simmpi::Rank& r) { return tenant_rank(r, ctx); });

  const sim::Time endt = machine.now();
  RunOut out;
  out.events = machine.engine().events_processed();
  out.start_us.resize(static_cast<std::size_t>(njobs), 0.0);
  out.end_us.resize(static_cast<std::size_t>(njobs), 0.0);
  out.stall_us.resize(static_cast<std::size_t>(njobs), 0.0);
  out.link_share.resize(static_cast<std::size_t>(njobs), 0.0);
  double run_end = 0.0;
  for (int j = 0; j < njobs; ++j) {
    const JobState& st = state[static_cast<std::size_t>(j)];
    out.start_us[static_cast<std::size_t>(j)] = sim::to_us(st.start);
    out.end_us[static_cast<std::size_t>(j)] = sim::to_us(st.end);
    out.stall_us[static_cast<std::size_t>(j)] = sim::to_us(st.stall);
    run_end = std::max(run_end, sim::to_us(st.end));
  }
  out.makespan_us = run_end;
  if (ff != nullptr) {
    out.max_link_util = ff->max_avg_link_utilization(endt);
    out.peak_link_util = ff->peak_link_utilization();
    out.flows = ff->total_flows();
    out.bg_flows = bg ? bg->flows() : 0;
    if (shared) {
      int hot = 0;
      double hot_util = -1.0;
      for (int l = 0; l < ff->num_links(); ++l) {
        const double u = ff->link_avg_utilization(l, endt);
        if (u > hot_util) {
          hot_util = u;
          hot = l;
        }
      }
      out.hot_link = ff->link_name(hot);
      double total = 0.0;
      for (int g = 0; g <= njobs; ++g) total += ff->link_group_bytes(hot, g);
      if (total > 0.0) {
        for (int j = 0; j < njobs; ++j) {
          out.link_share[static_cast<std::size_t>(j)] =
              ff->link_group_bytes(hot, j) / total;
        }
        out.hot_link_bg_share = ff->link_group_bytes(hot, njobs) / total;
      }
      // Placement witness: links carrying bytes from >= 2 distinct jobs
      // (background excluded).
      for (int l = 0; l < ff->num_links(); ++l) {
        int owners = 0;
        for (int g = 0; g < njobs; ++g) {
          if (ff->link_group_bytes(l, g) > 0.0) ++owners;
        }
        if (owners >= 2) ++out.shared_links;
      }
    }
  }
  if (adapting) {
    out.adapt.resize(static_cast<std::size_t>(njobs));
    for (int j = 0; j < njobs; ++j) {
      JobAdaptOut& ao = out.adapt[static_cast<std::size_t>(j)];
      const AdaptJob* aj = adapt_state[static_cast<std::size_t>(j)].get();
      if (aj == nullptr) {
        ao.final_algo = "sharp";  // only SHArP jobs skip adaptation
        continue;
      }
      ao.final_algo = aj->rp.plan().algo;
      ao.final_leaders = aj->rp.plan().leaders;
      ao.replans = aj->rp.replans();
      ao.max_level = aj->rp.max_level();
      for (int level = 0; level < adapt::kLevels; ++level) {
        if (!aj->rp.observed(level)) continue;
        ao.obs_levels.push_back(level);
        ao.obs_algos.push_back(aj->rp.observed_plan(level).algo);
        ao.obs_leaders.push_back(aj->rp.observed_plan(level).leaders);
      }
    }
  }

  if (tracing) {
    // Relabel the rank lanes per job so the viewer groups tenants.
    for (int n = 0; n < total_nodes; ++n) {
      const int j = node_job[static_cast<std::size_t>(n)];
      if (j < 0) continue;
      for (int p = 0; p < ppn; ++p) {
        const int w = n * ppn + p;
        const int jr =
            pm.node_index_in_job[static_cast<std::size_t>(n)] * ppn + p;
        machine.tracer().set_thread_name(
            w, jobs[static_cast<std::size_t>(j)].name + " rank " +
                   std::to_string(jr) + " (node " + std::to_string(n) + ")");
      }
    }
    std::ofstream os(opt.trace_json);
    DPML_CHECK_MSG(os.good(), "cannot write trace file " + opt.trace_json);
    machine.tracer().write_chrome_json(os);
  }
  return out;
}

void validate(const net::ClusterConfig& cfg, int ppn,
              const std::vector<JobSpec>& jobs, const TenantOptions& opt) {
  DPML_CHECK_MSG(!jobs.empty(), "tenant mix needs at least one job");
  DPML_CHECK_MSG(ppn >= 1, "tenant ppn must be >= 1");
  int total_nodes = 0;
  for (const JobSpec& j : jobs) {
    DPML_CHECK_MSG(j.nodes >= 1, "job '" + j.name + "' needs >= 1 node");
    DPML_CHECK_MSG(j.iterations >= 1,
                   "job '" + j.name + "' needs >= 1 iteration");
    total_nodes += j.nodes;
  }
  DPML_CHECK_MSG(total_nodes <= cfg.total_nodes,
                 "tenant mix wants " + std::to_string(total_nodes) +
                     " nodes; cluster '" + cfg.name + "' has " +
                     std::to_string(cfg.total_nodes));
  for (const JobSpec& j : jobs) {
    if (j.sharp) {
      DPML_CHECK_MSG(cfg.sharp.has_value(),
                     "job '" + j.name + "' wants SHArP but cluster '" +
                         cfg.name + "' has no switch aggregation");
      DPML_CHECK_MSG(j.kind == coll::CollKind::allreduce,
                     "SHArP tenant jobs support allreduce only");
      DPML_CHECK_MSG(j.bytes <= cfg.sharp->max_payload,
                     "job '" + j.name + "' payload exceeds the SHArP limit");
      continue;
    }
    const coll::CollDescriptor& d =
        coll::CollRegistry::instance().at(j.kind, j.algo);
    DPML_CHECK_MSG(!d.caps.world_only,
                   "job '" + j.name + "': algorithm '" + j.algo +
                       "' is world-only (hierarchical designs assume they "
                       "own the machine); pick a flat algorithm");
    DPML_CHECK_MSG(!d.caps.needs_fabric,
                   "job '" + j.name + "': use sharp=true for in-network "
                       "aggregation jobs");
    DPML_CHECK_MSG(j.nodes * ppn >= d.caps.min_comm_size,
                   "job '" + j.name + "' is too small for '" + j.algo + "'");
    DPML_CHECK_MSG(j.bytes > 0 || j.kind == coll::CollKind::barrier,
                   "job '" + j.name + "' needs a payload");
  }
  const bool wants_fabric_features =
      !opt.traffic.empty() || !opt.failures.empty();
  DPML_CHECK_MSG(!wants_fabric_features ||
                     opt.fabric == fabric::FabricLevel::links,
                 "--bg-traffic and --fail-links need the flow fabric "
                 "(--fabric)");
  DPML_CHECK_MSG(!opt.adapt || opt.fabric == fabric::FabricLevel::links,
                 "--adapt consumes fabric congestion signals and needs the "
                 "flow fabric (--fabric)");
  if (opt.adapt) {
    // Every plan the table could hand a job must be runnable on that job's
    // sub-communicator; failing here beats an InvariantError deep inside a
    // re-planned iteration.
    for (const JobSpec& j : jobs) {
      if (j.sharp) continue;
      for (int level = 0; level < adapt::kLevels; ++level) {
        const adapt::AdaptiveTable::Entry* e =
            opt.table.select(j.kind, j.bytes, level);
        if (e == nullptr) continue;
        const coll::CollDescriptor& d =
            coll::CollRegistry::instance().at(j.kind, e->spec.algo);
        DPML_CHECK_MSG(!d.caps.world_only && !d.caps.needs_fabric,
                       "adaptive table entry '" + e->spec.algo + "' (level " +
                           std::to_string(level) +
                           ") is not sub-communicator-safe");
        DPML_CHECK_MSG(j.nodes * ppn >= d.caps.min_comm_size,
                       "job '" + j.name + "' is too small for adaptive "
                           "table entry '" + e->spec.algo + "'");
        DPML_CHECK_MSG(e->spec.leaders >= 1,
                       "adaptive table entry '" + e->spec.algo +
                           "' needs leaders >= 1");
      }
    }
  }
  if (!opt.traffic.empty()) {
    DPML_CHECK_MSG(total_nodes >= 2,
                   "background traffic needs at least two nodes");
    if (opt.traffic.matrix == Matrix::hotspot) {
      // The generator is open-loop: if the aggregate demand aimed at the
      // hot node exceeds its edge link, the backlog grows without bound and
      // co-located jobs starve — the run would never terminate.
      const double hot_demand = opt.traffic.load * opt.traffic.hot_frac *
                                static_cast<double>(total_nodes - 1);
      // Demand exactly at capacity is marginally stable (the open-loop
      // arrival rate equals the drain rate), so equality is accepted; only
      // strictly oversubscribed hot links diverge.
      DPML_CHECK_MSG(
          hot_demand <= 1.0,
          "hotspot background overloads the hot node's edge link: load * "
          "hot_frac * (nodes - 1) = " + std::to_string(hot_demand) +
              " > 1; lower load or hot_frac");
      DPML_CHECK_MSG(opt.traffic.hot_node < total_nodes,
                     "hotspot hot_node out of range");
    }
  }
  if (!opt.failures.empty()) {
    const fabric::FabricTopo topo = fabric::FabricTopo::derive(cfg,
                                                               total_nodes);
    DPML_CHECK_MSG(topo.ecmp_ways >= 2,
                   "cannot fail an ECMP way: the derived fabric has only "
                   "one way per leaf");
    for (const FailSpec::Event& e : opt.failures.events) {
      DPML_CHECK_MSG(e.way < topo.ecmp_ways,
                     "--fail-links way " + std::to_string(e.way) +
                         " out of range (fabric has " +
                         std::to_string(topo.ecmp_ways) + " ways)");
      DPML_CHECK_MSG(e.leaf < topo.leaves,
                     "--fail-links leaf " + std::to_string(e.leaf) +
                         " out of range (fabric has " +
                         std::to_string(topo.leaves) + " leaves)");
    }
  }
}

}  // namespace

TenantResult run_tenants(const net::ClusterConfig& cfg, int ppn,
                         const std::vector<JobSpec>& jobs,
                         const TenantOptions& opt) {
  validate(cfg, ppn, jobs, opt);
  const int njobs = static_cast<int>(jobs.size());

  // Slot 0 is the shared run; slots 1..njobs are the per-job solo
  // baselines. Each slot is an independent deterministic simulation, so the
  // executor fan-out is byte-identical for any host thread count.
  const std::size_t runs =
      opt.solo_baseline ? static_cast<std::size_t>(1 + njobs) : 1;
  core::Executor ex(opt.jobs);
  std::vector<RunOut> outs = ex.map<RunOut>(runs, [&](std::size_t i) {
    return simulate(cfg, ppn, jobs, opt, static_cast<int>(i) - 1);
  });

  const RunOut& sh = outs[0];
  TenantResult res;
  res.makespan_us = sh.makespan_us;
  res.events = sh.events;
  res.max_link_util = sh.max_link_util;
  res.peak_link_util = sh.peak_link_util;
  res.flows = sh.flows;
  res.bg_flows = sh.bg_flows;
  res.hot_link = sh.hot_link;
  res.hot_link_bg_share = sh.hot_link_bg_share;
  res.shared_links = sh.shared_links;
  for (int j = 0; j < njobs; ++j) {
    const JobSpec& spec = jobs[static_cast<std::size_t>(j)];
    JobStats s;
    s.name = spec.name;
    s.kind = coll::coll_kind_name(spec.kind);
    s.algo = spec.sharp ? "sharp" : spec.algo;
    s.nodes = spec.nodes;
    s.ranks = spec.nodes * ppn;
    s.bytes = spec.bytes;
    s.iterations = spec.iterations;
    s.start_us = sh.start_us[static_cast<std::size_t>(j)];
    s.end_us = sh.end_us[static_cast<std::size_t>(j)];
    s.makespan_us = s.end_us - s.start_us;
    if (s.makespan_us > 0.0) {
      s.goodput_gbps = static_cast<double>(spec.bytes) * spec.iterations /
                       (s.makespan_us * 1e-6) / 1e9;
    }
    s.stall_us = sh.stall_us[static_cast<std::size_t>(j)];
    s.link_share = sh.link_share[static_cast<std::size_t>(j)];
    if (!sh.adapt.empty()) {
      const JobAdaptOut& ao = sh.adapt[static_cast<std::size_t>(j)];
      s.final_algo = ao.final_algo;
      s.final_leaders = ao.final_leaders;
      s.replans = ao.replans;
      s.max_level = ao.max_level;
    } else {
      s.final_algo = s.algo;
      s.final_leaders = spec.sharp ? 0 : spec.leaders;
    }
    if (opt.solo_baseline) {
      const RunOut& solo = outs[static_cast<std::size_t>(1 + j)];
      s.solo_us = solo.end_us[static_cast<std::size_t>(j)] -
                  solo.start_us[static_cast<std::size_t>(j)];
      if (s.solo_us > 0.0) s.slowdown = s.makespan_us / s.solo_us;
    }
    res.jobs.push_back(std::move(s));
  }
  if (opt.adapt) {
    // The persisted feedback loop: fold every observed (kind, level) choice
    // back into the input table and hand the result to the caller
    // (dpmlsim --adapt-table writes it to disk).
    adapt::AdaptiveTable updated = opt.table;
    for (int j = 0; j < njobs; ++j) {
      if (sh.adapt.empty()) break;
      const JobAdaptOut& ao = sh.adapt[static_cast<std::size_t>(j)];
      const JobSpec& spec = jobs[static_cast<std::size_t>(j)];
      if (spec.sharp) continue;
      for (std::size_t i = 0; i < ao.obs_levels.size(); ++i) {
        coll::CollSpec cs;
        cs.algo = ao.obs_algos[i];
        cs.leaders = ao.obs_leaders[i];
        updated.record(spec.kind, ao.obs_levels[i], cs);
      }
    }
    res.adapt_table = updated.serialize();
  }
  return res;
}

}  // namespace dpml::tenant
