// Spec grammars for the tenant subsystem (--bg-traffic, --fail-links) and
// the deterministic default job mix.
#include "tenant/tenant.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/args.hpp"
#include "util/error.hpp"

namespace dpml::tenant {

namespace {

[[noreturn]] void bad_traffic(const std::string& what) {
  throw util::InvariantError("bad --bg-traffic spec: " + what);
}

[[noreturn]] void bad_fail(const std::string& what) {
  throw util::InvariantError("bad --fail-links spec: " + what);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

double parse_double(const std::string& key, const std::string& text,
                    void (*bad)(const std::string&)) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    bad("parameter '" + key + "' needs a number, got '" + text + "'");
  }
  return v;
}

long long parse_int(const std::string& key, const std::string& text,
                    void (*bad)(const std::string&)) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    bad("parameter '" + key + "' needs an integer, got '" + text + "'");
  }
  return v;
}

// "a=1,b=2" -> [(a,"1"), (b,"2")].
std::vector<std::pair<std::string, std::string>> params(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  if (trim(text).empty()) return out;
  for (const std::string& tok : split(text, ',')) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(trim(tok), "");
    } else {
      out.emplace_back(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
    }
  }
  return out;
}

}  // namespace

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::block:
      return "block";
    case Placement::round_robin:
      return "round-robin";
    case Placement::random:
      return "random";
  }
  return "?";
}

Placement placement_by_name(const std::string& name) {
  if (name == "block") return Placement::block;
  if (name == "round-robin" || name == "rr") return Placement::round_robin;
  if (name == "random") return Placement::random;
  throw util::InvariantError("unknown placement '" + name +
                             "'; valid: block, round-robin, random");
}

const char* matrix_name(Matrix m) {
  switch (m) {
    case Matrix::none:
      return "none";
    case Matrix::uniform:
      return "uniform";
    case Matrix::permutation:
      return "permutation";
    case Matrix::hotspot:
      return "hotspot";
  }
  return "?";
}

std::string TrafficSpec::to_string() const {
  if (empty()) return "";
  std::ostringstream os;
  os << matrix_name(matrix) << ":load=" << load << ",bytes=" << bytes;
  if (matrix == Matrix::hotspot) {
    os << ",hot_frac=" << hot_frac << ",hot_node=" << hot_node;
  }
  if (matrix == Matrix::permutation && shift != 0) os << ",shift=" << shift;
  os << ",seed=" << seed;
  return os.str();
}

TrafficSpec TrafficSpec::parse(const std::string& text) {
  TrafficSpec t;
  const std::string body = trim(text);
  if (body.empty()) return t;
  const std::size_t colon = body.find(':');
  const std::string kind = trim(body.substr(0, colon));
  const std::string rest =
      colon == std::string::npos ? "" : body.substr(colon + 1);
  if (kind == "uniform") {
    t.matrix = Matrix::uniform;
  } else if (kind == "permutation") {
    t.matrix = Matrix::permutation;
  } else if (kind == "hotspot") {
    t.matrix = Matrix::hotspot;
  } else if (kind == "none") {
    t.matrix = Matrix::none;
  } else {
    bad_traffic("unknown matrix '" + kind +
                "'; valid: uniform, permutation, hotspot, none");
  }
  for (const auto& [k, v] : params(rest)) {
    if (k == "load") {
      t.load = parse_double(k, v, bad_traffic);
    } else if (k == "bytes") {
      t.bytes = util::Args::parse_bytes(v);
    } else if (k == "hot_frac") {
      t.hot_frac = parse_double(k, v, bad_traffic);
    } else if (k == "hot_node") {
      t.hot_node = static_cast<int>(parse_int(k, v, bad_traffic));
    } else if (k == "shift") {
      t.shift = static_cast<int>(parse_int(k, v, bad_traffic));
    } else if (k == "seed") {
      t.seed = static_cast<std::uint64_t>(parse_int(k, v, bad_traffic));
    } else {
      bad_traffic("unknown parameter '" + k +
                  "'; valid: load, bytes, hot_frac, hot_node, shift, seed");
    }
  }
  if (t.load <= 0.0 || t.load > 1.0) bad_traffic("load must be in (0, 1]");
  if (t.bytes == 0) bad_traffic("bytes must be > 0");
  if (t.hot_frac < 0.0 || t.hot_frac > 1.0) {
    bad_traffic("hot_frac must be in [0, 1]");
  }
  if (t.hot_node < 0) bad_traffic("hot_node must be >= 0");
  return t;
}

std::string FailSpec::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ";";
    first = false;
    os << "way=" << e.way;
    if (e.leaf >= 0) os << ",leaf=" << e.leaf;
    os << ",at_us=" << e.at_us;
    if (e.recover_us > 0.0) os << ",recover_us=" << e.recover_us;
  }
  return os.str();
}

FailSpec FailSpec::parse(const std::string& text) {
  FailSpec f;
  const std::string body = trim(text);
  if (body.empty()) return f;
  for (const std::string& clause : split(body, ';')) {
    if (trim(clause).empty()) continue;
    Event e;
    bool have_way = false;
    for (const auto& [k, v] : params(clause)) {
      if (k == "way") {
        e.way = static_cast<int>(parse_int(k, v, bad_fail));
        have_way = true;
      } else if (k == "leaf") {
        e.leaf = static_cast<int>(parse_int(k, v, bad_fail));
      } else if (k == "at_us") {
        e.at_us = parse_double(k, v, bad_fail);
      } else if (k == "recover_us") {
        e.recover_us = parse_double(k, v, bad_fail);
      } else {
        bad_fail("unknown parameter '" + k +
                 "'; valid: way, leaf, at_us, recover_us");
      }
    }
    if (!have_way) bad_fail("every clause needs way=W");
    if (e.way < 0) bad_fail("way must be >= 0");
    if (e.leaf < -1) bad_fail("leaf must be >= 0 (or omitted for all)");
    if (e.at_us < 0.0) bad_fail("at_us must be >= 0");
    if (e.recover_us != 0.0 && e.recover_us <= e.at_us) {
      bad_fail("recover_us must be after at_us (or 0 = never)");
    }
    f.events.push_back(e);
  }
  return f;
}

FailSpec FailSpec::default_spec() {
  FailSpec f;
  Event e;
  e.way = 0;
  e.leaf = -1;  // whole core switch 0
  e.at_us = 30.0;
  e.recover_us = 150.0;
  f.events.push_back(e);
  return f;
}

std::vector<JobSpec> default_jobs(int count, const net::ClusterConfig& cfg,
                                  int nodes_available) {
  DPML_CHECK_MSG(count >= 1, "tenant job count must be >= 1");
  DPML_CHECK_MSG(nodes_available >= count,
                 "tenant mix needs at least one node per job");
  // Sub-communicator-safe patterns only: the world_only hierarchical
  // designs (dpml, single-leader, ...) assume they own the whole machine.
  struct Mix {
    coll::CollKind kind;
    const char* algo;
    std::size_t bytes;
  };
  static const Mix kMix[] = {
      {coll::CollKind::allreduce, "ring", 262144},
      {coll::CollKind::allreduce, "rsa", 65536},
      {coll::CollKind::alltoall, "auto", 16384},
      {coll::CollKind::allgather, "ring", 32768},
      {coll::CollKind::reduce_scatter, "ring", 131072},
      {coll::CollKind::bcast, "binomial", 65536},
  };
  constexpr int kMixSize = static_cast<int>(sizeof(kMix) / sizeof(kMix[0]));
  // Evenly split the node budget; earlier jobs absorb the remainder.
  std::vector<JobSpec> jobs;
  const int base = nodes_available / count;
  int extra = nodes_available % count;
  for (int j = 0; j < count; ++j) {
    const Mix& m = kMix[j % kMixSize];
    JobSpec s;
    s.name = "job" + std::to_string(j);
    s.kind = m.kind;
    s.algo = m.algo;
    s.bytes = m.bytes;
    s.nodes = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    s.iterations = 4;
    // On SHArP-capable clusters the second job exercises in-network
    // aggregation, so jobs contend for the shared op slots too.
    if (j == 1 && cfg.sharp.has_value()) {
      s.kind = coll::CollKind::allreduce;
      s.algo = "sharp";
      s.sharp = true;
      s.bytes = std::min<std::size_t>(cfg.sharp->max_payload, 2048);
    }
    jobs.push_back(std::move(s));
  }
  return jobs;
}

}  // namespace dpml::tenant
