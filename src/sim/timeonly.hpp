// Time-only data plane: payload-free extreme-scale simulation.
//
// Following the SMPI/SimGrid approach, a time-only run simulates every
// communication and synchronization event while eliding the data they move:
// messages carry only their MsgMeta (size, dtype, op-cost) record and the
// plane keeps one compact POD counter block per rank instead of live payload
// buffers. Because every charge in the transport is computed from metadata,
// simulated latencies are bit-identical to the payload plane for any
// algorithm that does not inspect payload bytes (CollCaps::needs_payload);
// tests/timeonly_test.cpp locks that parity for the whole registry.
//
// What is refused, up front and by construction:
//   * payload buffers (RunOptions::with_data) — there is nothing to verify
//   * simcheck (RunOptions::check_level)      — leases need real spans
//   * needs_payload algorithms                — rejected at dispatch
#pragma once

#include <cstdint>
#include <vector>

#include "sim/dataplane.hpp"

namespace dpml::sim {

// Per-rank state of a time-only run. POD on purpose: 32 bytes per rank is
// the entire per-rank footprint the plane adds, which is what lets 100k+
// rank sweeps fit where live payload buffers would not.
struct TimeOnlyRankState {
  std::uint64_t messages = 0;      // messages captured from this rank
  std::uint64_t bytes = 0;         // payload bytes elided
  std::uint64_t op_cost_total = 0; // summed per-message op-cost metadata (ps)
  std::uint64_t reserved = 0;      // keeps the record a 32-byte POD
};

class TimeOnlyPlane final : public DataPlane {
 public:
  explicit TimeOnlyPlane(int world_size);

  DataMode mode() const noexcept override { return DataMode::timeonly; }

  // Records `meta` into the sender's POD state and returns an empty payload.
  // Throws util::InvariantError if a payload byte reaches the plane.
  std::vector<std::byte> capture(const MsgMeta& meta, const std::byte* data,
                                 std::size_t size) override;

  // Nothing to recycle: a non-empty payload here is an invariant violation.
  void reclaim(std::vector<std::byte> payload) override;

  BufferPool* recycler() noexcept override { return nullptr; }

  std::uint64_t elided_bytes() const noexcept override { return total_bytes_; }
  std::uint64_t elided_messages() const noexcept { return total_messages_; }

  const TimeOnlyRankState& rank_state(int world_rank) const;
  int world_size() const noexcept { return static_cast<int>(ranks_.size()); }

 private:
  std::vector<TimeOnlyRankState> ranks_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace dpml::sim
