// Data planes: who owns payload bytes during a simulated run.
//
// The engine charges simulated time from message *metadata* (size, dtype,
// op-cost); payload bytes only matter to verification and to algorithms that
// inspect them. The DataPlane abstraction makes that split explicit: every
// in-flight payload buffer is captured from and reclaimed to exactly one
// plane object owned by the Machine.
//
//   PayloadPlane   the classic plane: outgoing payloads are copied into
//                  pooled buffers (sim/pool.hpp BufferPool) and recycled on
//                  delivery. Empty spans (metadata-only callers) cost
//                  nothing.
//   TimeOnlyPlane  (sim/timeonly.hpp) payload-free extreme-scale mode:
//                  messages carry only their MsgMeta record, per-rank state
//                  is a compact POD counter block instead of live buffers,
//                  and any payload byte reaching the plane is an invariant
//                  violation. Simulated time is bit-identical to the payload
//                  plane (locked by tests/timeonly_test.cpp golden parity).
//
// The planes are the only sanctioned owners of payload storage: dpmllint's
// `payload-plane` rule flags Engine::payload_pool() access outside them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dpml::sim {

enum class DataMode {
  payload,   // payload-carrying plane (default; verification possible)
  timeonly,  // payload-free plane (metadata-only, 100k+ rank sweeps)
};

const char* data_mode_name(DataMode mode);
// Throws util::InvariantError listing the valid names.
DataMode data_mode_by_name(const std::string& name);

// Everything a time-only message carries: the metadata the transport charges
// time from. Mirrors the fields of simmpi::Envelope that survive payload
// elision.
struct MsgMeta {
  int src = -1;           // sending world rank
  std::size_t bytes = 0;  // message size (drives every bandwidth term)
  int dtype = -1;         // simcheck dtype annotation (-1: unchecked)
  Time op_cost = 0;       // receiver-side per-message cost (o_recv / flag)
};

class DataPlane {
 public:
  virtual ~DataPlane() = default;

  virtual DataMode mode() const noexcept = 0;

  // Take ownership of the outgoing payload of the message described by
  // `meta`. The payload plane copies `data` into a pooled buffer; the
  // time-only plane records the metadata into its per-rank POD state and
  // returns an empty vector (a non-empty `data` is an invariant violation
  // there — payload bytes must never reach the time-only plane).
  virtual std::vector<std::byte> capture(const MsgMeta& meta,
                                         const std::byte* data,
                                         std::size_t size) = 0;

  // Return a delivered payload's storage to the plane (pool recycling).
  virtual void reclaim(std::vector<std::byte> payload) = 0;

  // Recycler handed to receive-side matchers so consumed payload buffers
  // flow back into the plane's pool (nullptr when the plane owns none).
  virtual BufferPool* recycler() noexcept = 0;

  // Payload bytes elided so far (0 on the payload plane); makes the memory
  // win of time-only mode visible in perf summaries.
  virtual std::uint64_t elided_bytes() const noexcept { return 0; }
};

// The classic payload-carrying plane: a thin owner over the engine's
// recycled buffer pool.
class PayloadPlane final : public DataPlane {
 public:
  explicit PayloadPlane(Engine& engine) : engine_(engine) {}

  DataMode mode() const noexcept override { return DataMode::payload; }

  std::vector<std::byte> capture(const MsgMeta& meta, const std::byte* data,
                                 std::size_t size) override;

  void reclaim(std::vector<std::byte> payload) override {
    engine_.payload_pool().release(std::move(payload));
  }

  BufferPool* recycler() noexcept override { return &engine_.payload_pool(); }

 private:
  Engine& engine_;
};

// Resolve the scheduler for a run: `automatic` picks the calendar queue for
// the time-only plane (event throughput is the whole point there) and the
// binary heap otherwise (bit-identical to the pre-calendar engine by
// construction; the orders are equal regardless — see engine.hpp).
SchedulerKind resolve_scheduler(SchedulerKind requested, DataMode mode);

}  // namespace dpml::sim
