// Per-engine slab allocation for simulation hot paths.
//
// The engine schedules millions of short-lived callback records and the
// transport copies payload bytes into per-message buffers; allocating each
// of those with operator new dominates the host-side profile of large
// sweeps. Two pools fix that:
//
//   SlabPool    fixed-size-chunk allocator with an intrusive free list.
//               Chunks come from slabs (large blocks carved on demand);
//               freed chunks go back on the free list, so steady-state
//               allocation is a pointer pop. Requests larger than the chunk
//               size fall back to operator new (counted as misses).
//
//   BufferPool  recycler for std::vector<std::byte> payload buffers,
//               bucketed by power-of-two capacity class. acquire() resizes
//               a recycled vector (no reallocation when the class matches);
//               release() returns the storage for the next message.
//
// Neither pool is thread-safe: each Engine owns its own instances, and one
// engine is only ever driven from one thread (the parallel sweep executor
// gives every job its own Machine/Engine). Accounting invariants — live
// counts, hit/miss totals, zero live allocations at teardown — are asserted
// in debug and locked by tests/sim_pool_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/error.hpp"

namespace dpml::sim {

// Allocation counters shared by both pools (and surfaced through
// Engine::perf() into MeasureResult / dpmlsim --perf).
struct PoolStats {
  std::uint64_t hits = 0;        // served from the free list / bucket
  std::uint64_t misses = 0;      // needed fresh memory (slab carve, oversize)
  std::uint64_t live = 0;        // currently outstanding allocations
  std::uint64_t peak_live = 0;   // high-water mark of `live`
  std::uint64_t bytes_reserved = 0;  // memory held by the pool itself

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
  void note_alloc(bool hit) {
    hit ? ++hits : ++misses;
    ++live;
    if (live > peak_live) peak_live = live;
  }
  void note_free() {
    DPML_CHECK_MSG(live > 0, "pool free without a matching allocation");
    --live;
  }
  void merge(const PoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    live += o.live;
    peak_live += o.peak_live;
    bytes_reserved += o.bytes_reserved;
  }
};

class SlabPool {
 public:
  explicit SlabPool(std::size_t chunk_size, std::size_t chunks_per_slab = 256)
      : chunk_size_(align_up(chunk_size)), chunks_per_slab_(chunks_per_slab) {
    DPML_CHECK(chunk_size_ >= sizeof(FreeChunk) && chunks_per_slab_ > 0);
  }
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() {
    // Every allocation must have been returned; a live chunk here would be
    // freed out from under its owner when the slabs are released.
    DPML_CHECK_MSG(stats_.live == 0,
                   "SlabPool destroyed with live allocations");
    for (std::byte* s : slabs_) ::operator delete[](s, std::align_val_t{kAlign});
  }

  std::size_t chunk_size() const { return chunk_size_; }
  const PoolStats& stats() const { return stats_; }

  void* allocate(std::size_t size) {
    if (size > chunk_size_) {
      stats_.note_alloc(/*hit=*/false);
      return ::operator new(size, std::align_val_t{kAlign});
    }
    if (free_ == nullptr) {
      carve_slab();
      stats_.note_alloc(/*hit=*/false);
    } else {
      stats_.note_alloc(/*hit=*/true);
    }
    FreeChunk* c = free_;
    free_ = c->next;
    return c;
  }

  void deallocate(void* p, std::size_t size) {
    if (p == nullptr) return;
    stats_.note_free();
    if (size > chunk_size_) {
      ::operator delete(p, std::align_val_t{kAlign});
      return;
    }
    auto* c = static_cast<FreeChunk*>(p);
    c->next = free_;
    free_ = c;
  }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static std::size_t align_up(std::size_t n) {
    return (n + kAlign - 1) / kAlign * kAlign;
  }

  struct FreeChunk {
    FreeChunk* next;
  };

  void carve_slab() {
    const std::size_t bytes = chunk_size_ * chunks_per_slab_;
    auto* slab = static_cast<std::byte*>(
        ::operator new[](bytes, std::align_val_t{kAlign}));
    slabs_.push_back(slab);
    stats_.bytes_reserved += bytes;
    // Push in reverse so the free list hands chunks out in address order.
    for (std::size_t i = chunks_per_slab_; i-- > 0;) {
      auto* c = reinterpret_cast<FreeChunk*>(slab + i * chunk_size_);
      c->next = free_;
      free_ = c;
    }
  }

  std::size_t chunk_size_;
  std::size_t chunks_per_slab_;
  FreeChunk* free_ = nullptr;
  std::vector<std::byte*> slabs_;
  PoolStats stats_;
};

// Power-of-two-bucketed recycler for payload byte buffers. The transport
// copies each in-flight message's bytes into an owned buffer; recycling the
// storage turns that per-message allocation into a bucket pop once the
// working set is warm.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  const PoolStats& stats() const { return stats_; }

  // A buffer of exactly `size` bytes (contents unspecified: callers
  // overwrite the full span). Capacity comes from the size-class bucket
  // when one is warm.
  std::vector<std::byte> acquire(std::size_t size) {
    std::vector<std::byte> buf;
    auto& bucket = buckets_[class_of(size)];
    if (!bucket.empty()) {
      buf = std::move(bucket.back());
      bucket.pop_back();
      stats_.bytes_reserved -= buf.capacity();
      stats_.note_alloc(/*hit=*/true);
    } else {
      buf.reserve(std::size_t{1} << class_of(size));
      stats_.note_alloc(/*hit=*/false);
    }
    buf.resize(size);
    return buf;
  }

  // Return a buffer's storage for reuse. Empty vectors are ignored (the
  // metadata-only path never owns payload storage).
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    stats_.note_free();
    buf.clear();
    stats_.bytes_reserved += buf.capacity();
    buckets_[class_of(buf.capacity())].push_back(std::move(buf));
  }

  // The transport releases buffers it got from acquire(); an empty span
  // from a metadata-only run never hit the pool, so the live count must
  // only drop for real storage.
  std::uint64_t live() const { return stats_.live; }

 private:
  static constexpr std::size_t kClasses = 32;  // up to 2^31 bytes
  static std::size_t class_of(std::size_t size) {
    std::size_t cls = 0;
    while ((std::size_t{1} << cls) < size && cls + 1 < kClasses) ++cls;
    return cls;
  }

  std::vector<std::vector<std::byte>> buckets_[kClasses];
  PoolStats stats_;
};

}  // namespace dpml::sim
