#include "sim/timeonly.hpp"

#include <cstring>

#include "util/error.hpp"

namespace dpml::sim {

const char* data_mode_name(DataMode mode) {
  switch (mode) {
    case DataMode::payload: return "payload";
    case DataMode::timeonly: return "timeonly";
  }
  return "?";
}

DataMode data_mode_by_name(const std::string& name) {
  if (name == "payload") return DataMode::payload;
  if (name == "timeonly" || name == "time-only") return DataMode::timeonly;
  DPML_CHECK_MSG(false, "unknown data mode '" + name +
                            "'; valid names: payload, timeonly");
  return DataMode::payload;
}

std::vector<std::byte> PayloadPlane::capture(const MsgMeta& meta,
                                             const std::byte* data,
                                             std::size_t size) {
  (void)meta;
  if (size == 0 || data == nullptr) return {};
  std::vector<std::byte> buf = engine_.payload_pool().acquire(size);
  std::memcpy(buf.data(), data, size);
  return buf;
}

SchedulerKind resolve_scheduler(SchedulerKind requested, DataMode mode) {
  if (requested != SchedulerKind::automatic) return requested;
  return mode == DataMode::timeonly ? SchedulerKind::calendar
                                    : SchedulerKind::binary_heap;
}

TimeOnlyPlane::TimeOnlyPlane(int world_size) {
  DPML_CHECK(world_size >= 1);
  ranks_.resize(static_cast<std::size_t>(world_size));
}

std::vector<std::byte> TimeOnlyPlane::capture(const MsgMeta& meta,
                                              const std::byte* data,
                                              std::size_t size) {
  DPML_CHECK_MSG(size == 0 && data == nullptr,
                 "payload bytes reached the time-only data plane; time-only "
                 "runs must pass metadata-only (empty) spans end to end");
  DPML_CHECK_MSG(meta.src >= 0 && meta.src < world_size(),
                 "time-only capture from unknown rank");
  TimeOnlyRankState& st = ranks_[static_cast<std::size_t>(meta.src)];
  st.messages += 1;
  st.bytes += meta.bytes;
  st.op_cost_total += static_cast<std::uint64_t>(meta.op_cost);
  total_messages_ += 1;
  total_bytes_ += meta.bytes;
  return {};
}

void TimeOnlyPlane::reclaim(std::vector<std::byte> payload) {
  DPML_CHECK_MSG(payload.empty(),
                 "payload buffer reclaimed on the time-only data plane");
}

const TimeOnlyRankState& TimeOnlyPlane::rank_state(int world_rank) const {
  DPML_CHECK(world_rank >= 0 && world_rank < world_size());
  return ranks_[static_cast<std::size_t>(world_rank)];
}

}  // namespace dpml::sim
