#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "sim/sync.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dpml::sim {

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::automatic: return "auto";
    case SchedulerKind::binary_heap: return "binary-heap";
    case SchedulerKind::calendar: return "calendar";
  }
  return "?";
}

SchedulerKind scheduler_kind_by_name(const std::string& name) {
  if (name == "auto" || name == "automatic") return SchedulerKind::automatic;
  if (name == "heap" || name == "binary-heap" || name == "binary_heap") {
    return SchedulerKind::binary_heap;
  }
  if (name == "calendar") return SchedulerKind::calendar;
  DPML_CHECK_MSG(false, "unknown scheduler '" + name +
                            "'; valid names: auto, binary-heap, calendar");
  return SchedulerKind::automatic;
}

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on Darwin, kilobytes elsewhere.
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
#else
  return 0;
#endif
}

void Engine::check_not_past(Time t) const {
  DPML_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
}

void Engine::push_event(Event ev) {
  // Calendar staging: only the near future (t < front_limit_) enters the
  // front heap; later events take an O(1) append into their year bucket or
  // the overflow. Everything below front_limit_ is already in the front
  // heap, so popping the front min is popping the global min.
  if (sched_ == SchedulerKind::calendar && ev.t >= front_limit_) {
    if (width_ > 0 &&
        ev.t < year_start_ + static_cast<Time>(kNumBuckets) * width_) {
      const auto idx = static_cast<std::size_t>((ev.t - year_start_) / width_);
      buckets_[idx].push_back(ev);
    } else {
      overflow_.push_back(ev);
    }
    ++staged_;
    note_queued();
    return;
  }
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), later);
  note_queued();
}

Engine::Event Engine::pop_event() {
  if (heap_.empty()) refill_front();
  if (oracle_ != nullptr) return pop_event_mc();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

// Oracle-attached pop. heap_[0] is the global (t, seq) minimum (the calendar
// invariant keeps every event with t < front_limit_ in the front heap, so
// all events sharing the minimum's timestamp are in heap_). If that minimum
// is a tagged message deliver, the enabled set at this instant is every
// same-t tagged deliver; the oracle may redirect which one fires first.
// Untagged events (coroutine resumes, timers, transport-internal hops) are
// never reordered — only message delivery order is a real-MPI degree of
// freedom.
Engine::Event Engine::pop_event_mc() {
  const auto top = mc_meta_.find(heap_.front().seq);
  if (top == mc_meta_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event ev = heap_.back();
    heap_.pop_back();
    return ev;
  }
  const Time t = heap_.front().t;
  // Collect same-instant tagged delivers in seq (= canonical) order.
  struct Cand {
    std::uint64_t seq;
    std::size_t idx;
    McChannel ch;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (heap_[i].t != t) continue;
    const auto it = mc_meta_.find(heap_[i].seq);
    if (it != mc_meta_.end()) cands.push_back({heap_[i].seq, i, it->second});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.seq < b.seq; });
  // Per-source FIFO dedupe within each (rank, ctx) channel: a second
  // message from the same source can never overtake the first, so only the
  // oldest per (rank, ctx, src) is an alternative at all. The canonical
  // event's (rank, ctx) partition is the choice point; eligible events in
  // other partitions land in disjoint Matcher queues and are independent
  // (they get their own pop turns), so a naive permutation explorer's
  // sibling branches over them are pruned here.
  std::vector<Cand> alts;
  std::uint64_t eligible = 0;
  std::vector<McChannel> seen;
  for (const Cand& c : cands) {
    bool dup = false;
    for (const McChannel& s : seen) {
      dup = dup || (s.rank == c.ch.rank && s.ctx == c.ch.ctx &&
                    s.src == c.ch.src);
    }
    if (dup) continue;
    seen.push_back(c.ch);
    ++eligible;
    if (c.ch.rank == cands.front().ch.rank &&
        c.ch.ctx == cands.front().ch.ctx) {
      alts.push_back(c);
    }
  }
  std::size_t pick = 0;
  if (alts.size() >= 2 &&
      oracle_->race_matters(alts.front().ch.rank, alts.front().ch.ctx)) {
    std::vector<ChoiceAlt> choice;
    choice.reserve(alts.size());
    for (const Cand& c : alts) {
      choice.push_back({c.ch.rank, c.ch.ctx, c.ch.tag, c.ch.src});
    }
    pick = oracle_->choose(ChoiceKind::pop, choice);
    DPML_CHECK_MSG(pick < alts.size(), "schedule oracle pop choice out of range");
    oracle_->note_pruned(eligible - alts.size());
  } else {
    // No observable race at this pop (single candidate in the canonical
    // channel, or no wildcard consumer there): all other enabled orders
    // are equivalent, so their sibling branches are pruned wholesale.
    oracle_->note_pruned(eligible - 1);
  }
  const std::size_t idx = alts[static_cast<std::size_t>(pick)].idx;
  mc_meta_.erase(alts[static_cast<std::size_t>(pick)].seq);
  Event ev = heap_[idx];
  // Remove an arbitrary heap element: swap the tail in and re-heapify. Mc
  // runs are tiny (np <= 5); this O(n) never touches the default path.
  heap_[idx] = heap_.back();
  heap_.pop_back();
  std::make_heap(heap_.begin(), heap_.end(), later);
  return ev;
}

// Move staged events into the front heap until it is non-empty: drain year
// buckets in order (each drained bucket advances front_limit_ past it), and
// when the year is spent, rebuild it from the overflow. Preconditions:
// heap_ empty, staged_ > 0.
void Engine::refill_front() {
  DPML_CHECK(staged_ > 0);
  for (;;) {
    if (width_ == 0) {
      rebuild_year();
      continue;
    }
    while (next_bucket_ < kNumBuckets && buckets_[next_bucket_].empty()) {
      ++next_bucket_;
    }
    if (next_bucket_ == kNumBuckets) {
      width_ = 0;  // year spent; everything staged is in overflow_
      continue;
    }
    std::vector<Event>& b = buckets_[next_bucket_];
    staged_ -= b.size();
    heap_.swap(b);  // b keeps heap_'s (empty) storage; capacity recycles
    std::make_heap(heap_.begin(), heap_.end(), later);
    ++next_bucket_;
    front_limit_ = year_start_ + static_cast<Time>(next_bucket_) * width_;
    if (next_bucket_ == kNumBuckets) width_ = 0;
    if (!heap_.empty()) return;
  }
}

// Lay a new year over the overflow events: year_start_ at their minimum
// time, bucket width the smallest power of two covering span/kNumBuckets.
// Deterministic by construction — a pure function of queued event times.
void Engine::rebuild_year() {
  DPML_CHECK(!overflow_.empty());
  Time lo = overflow_.front().t;
  Time hi = lo;
  for (const Event& ev : overflow_) {
    if (ev.t < lo) lo = ev.t;
    if (ev.t > hi) hi = ev.t;
  }
  year_start_ = lo;
  const Time span = hi - lo + 1;
  Time per_bucket = span / static_cast<Time>(kNumBuckets) + 1;
  width_ = 1;
  while (width_ < per_bucket) width_ <<= 1;
  next_bucket_ = 0;
  front_limit_ = year_start_;
  const Time year_end = year_start_ + static_cast<Time>(kNumBuckets) * width_;
  std::vector<Event> pending;
  pending.swap(overflow_);
  for (const Event& ev : pending) {
    if (ev.t < year_end) {
      buckets_[static_cast<std::size_t>((ev.t - year_start_) / width_)]
          .push_back(ev);
    } else {
      overflow_.push_back(ev);
    }
  }
}

Engine::Detached Engine::run_detached(CoTask<void> task,
                                      std::shared_ptr<Flag> done) {
  ++live_tasks_;
  try {
    co_await std::move(task);
  } catch (...) {
    record_error(std::current_exception());
  }
  --live_tasks_;
  if (done) done->post();
}

void Engine::spawn(CoTask<void> task) {
  run_detached(std::move(task), nullptr);
}

std::shared_ptr<Flag> Engine::spawn_sub(CoTask<void> task) {
  auto done = std::make_shared<Flag>(*this);
  run_detached(std::move(task), done);
  return done;
}

void Engine::record_error(std::exception_ptr e) {
  if (!error_) error_ = e;
}

void Engine::run() {
  while (!queue_empty()) {
    Event ev = pop_event();
    DPML_CHECK(ev.t >= now_);
    now_ = ev.t;
    ++events_processed_;
    if (ev.handle) {
      ev.handle.resume();
    } else if (ev.cb != nullptr) {
      ev.cb->invoke(ev.cb, *this);
    }
    if (error_) break;
  }
  if (error_) {
    auto e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
  if (live_tasks_ > 0) {
    throw util::DeadlockError(
        "simulation deadlock: event queue drained with " +
        std::to_string(live_tasks_) + " simulated process(es) still blocked");
  }
}

}  // namespace dpml::sim
