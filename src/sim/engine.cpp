#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "sim/sync.hpp"
#include "util/error.hpp"

namespace dpml::sim {

void Engine::check_not_past(Time t) const {
  DPML_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
}

void Engine::push_event(Event ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), later);
  if (heap_.size() > peak_live_events_) peak_live_events_ = heap_.size();
}

Engine::Event Engine::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void Engine::schedule_fn(Time t, std::function<void()> fn) {
  schedule_call(t, std::move(fn));
}

Engine::Detached Engine::run_detached(CoTask<void> task,
                                      std::shared_ptr<Flag> done) {
  ++live_tasks_;
  try {
    co_await std::move(task);
  } catch (...) {
    record_error(std::current_exception());
  }
  --live_tasks_;
  if (done) done->post();
}

void Engine::spawn(CoTask<void> task) {
  run_detached(std::move(task), nullptr);
}

std::shared_ptr<Flag> Engine::spawn_sub(CoTask<void> task) {
  auto done = std::make_shared<Flag>(*this);
  run_detached(std::move(task), done);
  return done;
}

void Engine::record_error(std::exception_ptr e) {
  if (!error_) error_ = e;
}

void Engine::run() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    DPML_CHECK(ev.t >= now_);
    now_ = ev.t;
    ++events_processed_;
    if (ev.handle) {
      ev.handle.resume();
    } else if (ev.cb != nullptr) {
      ev.cb->invoke(ev.cb, *this);
    }
    if (error_) break;
  }
  if (error_) {
    auto e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
  if (live_tasks_ > 0) {
    throw util::DeadlockError(
        "simulation deadlock: event queue drained with " +
        std::to_string(live_tasks_) + " simulated process(es) still blocked");
  }
}

}  // namespace dpml::sim
