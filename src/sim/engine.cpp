#include "sim/engine.hpp"

#include <utility>

#include "sim/sync.hpp"
#include "util/error.hpp"

namespace dpml::sim {

void Engine::schedule_at(Time t, std::coroutine_handle<> h) {
  DPML_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  queue_.push(Event{t, seq_++, h, {}});
}

void Engine::schedule_fn(Time t, std::function<void()> fn) {
  DPML_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  queue_.push(Event{t, seq_++, {}, std::move(fn)});
}

Engine::Detached Engine::run_detached(CoTask<void> task,
                                      std::shared_ptr<Flag> done) {
  ++live_tasks_;
  try {
    co_await std::move(task);
  } catch (...) {
    record_error(std::current_exception());
  }
  --live_tasks_;
  if (done) done->post();
}

void Engine::spawn(CoTask<void> task) {
  run_detached(std::move(task), nullptr);
}

std::shared_ptr<Flag> Engine::spawn_sub(CoTask<void> task) {
  auto done = std::make_shared<Flag>(*this);
  run_detached(std::move(task), done);
  return done;
}

void Engine::record_error(std::exception_ptr e) {
  if (!error_) error_ = e;
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    DPML_CHECK(ev.t >= now_);
    now_ = ev.t;
    ++events_processed_;
    if (ev.handle) {
      ev.handle.resume();
    } else if (ev.fn) {
      ev.fn();
    }
    if (error_) break;
  }
  if (error_) {
    auto e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
  if (live_tasks_ > 0) {
    throw util::DeadlockError(
        "simulation deadlock: event queue drained with " +
        std::to_string(live_tasks_) + " simulated process(es) still blocked");
  }
}

}  // namespace dpml::sim
