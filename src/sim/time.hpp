// Simulated time.
//
// Simulated time is a 64-bit signed count of picoseconds. Picosecond
// resolution keeps per-byte costs (fractions of a nanosecond) exact enough
// that event ordering is stable, while still representing ~106 days of
// simulated time — far beyond any experiment here.
#pragma once

#include <cstdint>

namespace dpml::sim {

using Time = std::int64_t;  // picoseconds

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time ns(double v) { return static_cast<Time>(v * kNanosecond); }
constexpr Time us(double v) { return static_cast<Time>(v * kMicrosecond); }
constexpr Time ms(double v) { return static_cast<Time>(v * kMillisecond); }

constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_us(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
constexpr double to_ns(Time t) {
  return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

// Time to move `bytes` at `gbps` gigabytes per second (decimal GB).
constexpr Time transfer_time(std::uint64_t bytes, double gbytes_per_sec) {
  if (gbytes_per_sec <= 0.0) return 0;
  return static_cast<Time>(static_cast<double>(bytes) /
                           (gbytes_per_sec * 1e9) *
                           static_cast<double>(kSecond));
}

}  // namespace dpml::sim
