// Schedule oracle: the explicit nondeterminism seam for model checking.
//
// The simulator is deterministic by construction — events pop in exact
// (t, seq) order and unexpected-queue matches scan in arrival order. Those
// two orders are *schedules*, not semantics: real MPI may deliver
// same-instant messages in any order and match an MPI_ANY_SOURCE receive
// against any queued source. A ScheduleOracle makes each such point an
// explicit choice the model checker (src/mc/) can redirect.
//
// Contract:
//  - alts[0] is always the canonical candidate (the one the default
//    deterministic schedule would take). An oracle that returns 0 from
//    every choose() call reproduces the default schedule bit-identically.
//  - With no oracle attached (the default everywhere), neither the engine
//    nor the Matcher ever builds a candidate list; all existing paths stay
//    byte-for-byte unchanged.
//  - choose() is called at deterministic points in a deterministic order,
//    so a recorded choice vector replays exactly (docs/CHECKING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpml::sim {

// Where a choice arises: `pop` redirects which same-instant tagged deliver
// event the engine pops first; `match` redirects which queued source an
// MPI_ANY_SOURCE receive matches.
enum class ChoiceKind : std::uint8_t { pop, match };

// The message-delivery channel an event or envelope belongs to. Matches on
// disjoint (rank, ctx) are independent (they touch different Matcher
// queues); within one channel, same-source messages are FIFO-ordered and
// never alternatives of each other.
struct McChannel {
  int rank = -1;  // destination world rank
  int ctx = 0;    // communicator context id
  int tag = -1;
  int src = -1;   // source world rank
};

// One eligible alternative at a choice point (same layout as McChannel,
// kept separate so the trace format can evolve independently).
struct ChoiceAlt {
  int rank = -1;
  int ctx = 0;
  int tag = -1;
  int src = -1;
};

class ScheduleOracle {
 public:
  virtual ~ScheduleOracle() = default;

  // Pick one of `alts` (never empty; alts[0] canonical). Must return an
  // index < alts.size().
  virtual std::size_t choose(ChoiceKind kind,
                             const std::vector<ChoiceAlt>& alts) = 0;

  // A wildcard receive (MPI_ANY_SOURCE / MPI_ANY_TAG) was posted on
  // (rank, ctx). Until a channel has seen one, delivery order into it is
  // unobservable (per-source FIFO + deterministic matching), so pop races
  // there need not be explored.
  virtual void note_wildcard_recv(int rank, int ctx) = 0;

  // Should same-instant delivery order into (rank, ctx) be explored?
  // Sound default: true. The explorer answers from the wildcard-channel
  // set accumulated by note_wildcard_recv over the whole exploration (the
  // canonical first schedule runs the full program, so every wildcard
  // channel is known before any branching happens).
  virtual bool race_matters(int rank, int ctx) = 0;

  // `n` sibling branches a naive order-explorer would have expanded here
  // were pruned as equivalent (independent channels, FIFO duplicates, or
  // channels with no wildcard consumer).
  virtual void note_pruned(std::uint64_t n) = 0;
};

}  // namespace dpml::sim
