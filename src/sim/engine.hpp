// Discrete-event simulation engine.
//
// The Engine owns the event queue and the global simulated clock. Simulated
// processes are CoTask coroutines spawned onto the engine; they advance the
// clock only by awaiting delay()/until() or synchronization primitives.
// Events scheduled for the same instant fire in schedule order (a strictly
// monotone sequence number breaks ties), so runs are bitwise deterministic.
//
// Hot path: an event is either a coroutine resume (a bare handle, no
// allocation) or a callback. Callbacks are type-erased records placed in a
// per-engine slab pool (sim/pool.hpp), so steady-state scheduling allocates
// nothing once the pool is warm. The pre-pool schedule_fn() shim is gone —
// schedule_call() is the only form (the dpmllint `schedule-fn` rule keeps
// it from coming back).
//
// Two schedulers sit behind SchedulerKind, both draining events in exactly
// the same strict (t, seq) total order — the choice can never change
// simulated results, only host throughput:
//
//   binary_heap  the classic open-coded binary heap over one reserved,
//                flat Event vector.
//   calendar     a calendar-queue hybrid for extreme-scale runs: a small
//                "front" binary heap serves the near future, a year of
//                fixed-width buckets (flat Event vectors whose capacity is
//                recycled across years, same cache-friendly layout) stages
//                the mid future with O(1) inserts, and an overflow vector
//                absorbs everything beyond the year. When the front drains,
//                the next non-empty bucket is heapified into it wholesale —
//                so same-instant bursts (a 100k-rank barrier release) cost
//                one O(n) heapify instead of degenerate bucket scans, and
//                strict (t, seq) order is preserved by the front heap's
//                comparator.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/oracle.hpp"
#include "sim/pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dpml::sim {

class Flag;

// Event-queue implementation choice. `automatic` is resolved by the layer
// that knows the run's data mode (sim::resolve_scheduler in dataplane.hpp);
// an Engine constructed with `automatic` directly uses the binary heap.
enum class SchedulerKind {
  automatic,
  binary_heap,
  calendar,
};

const char* scheduler_kind_name(SchedulerKind kind);
// Throws util::InvariantError listing the valid names. Accepts "auto",
// "heap"/"binary-heap"/"binary_heap", and "calendar".
SchedulerKind scheduler_kind_by_name(const std::string& name);

// Peak resident set size of this process in KB (getrusage; 0 where
// unsupported). Host-side only, like the wall-clock perf fields.
std::uint64_t peak_rss_kb();

// Host-side performance counters for one engine run (events/sec and the
// wall-clock fields are computed by the callers that own wall timing; the
// engine itself never reads a wall clock).
struct EnginePerf {
  std::uint64_t events = 0;           // events processed
  std::uint64_t peak_live_events = 0; // high-water mark of the front heap
  // High-water mark of the whole event backlog: front heap plus calendar
  // buckets plus overflow. Equal to peak_live_events under the binary heap.
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t peak_rss_kb = 0;      // process peak RSS (host-side, KB)
  PoolStats callback_pool;            // pooled callback records
  PoolStats payload_pool;             // recycled payload buffers
};

class Engine {
 public:
  explicit Engine(SchedulerKind sched = SchedulerKind::binary_heap)
      : sched_(sched == SchedulerKind::calendar ? SchedulerKind::calendar
                                                : SchedulerKind::binary_heap) {
    heap_.reserve(kInitialHeapReserve);
    if (sched_ == SchedulerKind::calendar) buckets_.resize(kNumBuckets);
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() {
    // Drop callback records still queued (a run abandoned by an error or a
    // machine torn down mid-simulation) without invoking them, wherever
    // they are staged.
    auto drop = [this](std::vector<Event>& evs) {
      for (Event& ev : evs) {
        if (ev.cb != nullptr) destroy_callback(ev.cb);
      }
      evs.clear();
    };
    drop(heap_);
    for (auto& b : buckets_) drop(b);
    drop(overflow_);
  }

  Time now() const { return now_; }
  SchedulerKind scheduler() const { return sched_; }

  // Schedule a coroutine resume / callback at absolute time `t` (>= now).
  void schedule_at(Time t, std::coroutine_handle<> h) {
    check_not_past(t);
    push_event(Event{t, seq_++, h, nullptr});
  }

  // Schedule an arbitrary callable at absolute time `t`. The callable is
  // moved into a pooled record: no heap allocation once the pool is warm.
  template <typename F>
  void schedule_call(Time t, F&& fn) {
    check_not_past(t);
    using Fn = std::decay_t<F>;
    void* mem = callback_pool_.allocate(sizeof(Callback<Fn>));
    auto* cb = ::new (mem) Callback<Fn>(std::forward<F>(fn));
    push_event(Event{t, seq_++, {}, cb});
  }

  // schedule_call with message-delivery metadata for model checking: when
  // an oracle is attached the event is recorded as a deliver on channel
  // `ch`, so same-instant pops can be redirected (sim/oracle.hpp). Without
  // an oracle this is exactly schedule_call.
  template <typename F>
  void schedule_call_mc(Time t, const McChannel& ch, F&& fn) {
    if (oracle_ != nullptr) mc_meta_.emplace(seq_, ch);
    schedule_call(t, std::forward<F>(fn));
  }

  // Attach a schedule oracle (model-checking mode). Null — the default —
  // keeps every pop canonical with zero candidate-list work.
  void set_oracle(ScheduleOracle* oracle) { oracle_ = oracle; }
  ScheduleOracle* oracle() const { return oracle_; }

  // Awaitable that resumes the caller after `d` picoseconds.
  // A non-positive delay resumes without suspension.
  auto delay(Time d) { return DelayAwaiter{*this, now_ + (d > 0 ? d : 0)}; }
  auto until(Time t) { return DelayAwaiter{*this, t}; }

  // Run `task` as a detached simulated process. The engine tracks liveness:
  // run() reports a deadlock if the queue drains while processes are blocked.
  void spawn(CoTask<void> task);

  // Run `task` as a sub-operation; the returned Flag posts on completion.
  // Used for non-blocking operations (isend/irecv/iallreduce).
  std::shared_ptr<Flag> spawn_sub(CoTask<void> task);

  // Process events until the queue is empty or a spawned task fails.
  // Rethrows the first task exception; throws util::DeadlockError if
  // processes remain blocked with no pending events.
  void run();

  std::uint64_t events_processed() const { return events_processed_; }
  int live_tasks() const { return live_tasks_; }

  // Pre-size the front event heap (e.g. for the expected number of
  // concurrently scheduled rank events) so early growth does not reallocate
  // mid-run.
  void reserve_events(std::size_t n) {
    if (n > heap_.capacity()) heap_.reserve(n);
  }

  // Recycled payload buffers for the payload data plane (see sim/pool.hpp;
  // access outside the plane is flagged by dpmllint's payload-plane rule).
  BufferPool& payload_pool() { return payload_pool_; }

  // Counters for perf reporting (dpmlsim --perf, MeasureResult::perf).
  EnginePerf perf() const {
    EnginePerf p;
    p.events = events_processed_;
    p.peak_live_events = peak_live_events_;
    p.peak_queue_depth = peak_queue_depth_;
    p.peak_rss_kb = sim::peak_rss_kb();
    p.callback_pool = callback_pool_.stats();
    p.payload_pool = payload_pool_.stats();
    return p;
  }

  // Record a task failure (used by the spawn wrapper; also available to
  // runtime components that detect fatal conditions outside a task).
  void record_error(std::exception_ptr e);

  struct DelayAwaiter {
    Engine& engine;
    Time at;
    bool await_ready() const noexcept { return at <= engine.now(); }
    void await_suspend(std::coroutine_handle<> h) { engine.schedule_at(at, h); }
    void await_resume() const noexcept {}
  };

 private:
  static constexpr std::size_t kInitialHeapReserve = 1024;
  // One calendar year: enough buckets that a year rebuild is rare, few
  // enough that scanning for the next non-empty bucket is trivial.
  static constexpr std::size_t kNumBuckets = 256;
  // Chunk size covering every in-tree schedule_call capture (the largest is
  // the transport's routed-delivery lambda: this + a handful of ints/Times +
  // a moved std::function continuation). Larger captures fall back to
  // operator new, counted as pool misses.
  static constexpr std::size_t kCallbackChunk = 192;

  // Type-erased pooled callback record. invoke() moves the callable out,
  // returns the record to the pool, then runs it — so a callback may throw
  // or schedule further events without holding pool memory.
  struct CallbackBase {
    void (*invoke)(CallbackBase*, Engine&);
    void (*dispose)(CallbackBase*, Engine&);
  };
  template <typename Fn>
  struct Callback : CallbackBase {
    explicit Callback(Fn f) : fn(std::move(f)) {
      invoke = [](CallbackBase* b, Engine& e) {
        auto* self = static_cast<Callback*>(b);
        Fn local = std::move(self->fn);
        self->~Callback();
        e.callback_pool_.deallocate(self, sizeof(Callback));
        local();
      };
      dispose = [](CallbackBase* b, Engine& e) {
        auto* self = static_cast<Callback*>(b);
        self->~Callback();
        e.callback_pool_.deallocate(self, sizeof(Callback));
      };
    }
    Fn fn;
  };

  void destroy_callback(CallbackBase* cb) { cb->dispose(cb, *this); }

  // Small-footprint event record: trivially movable, no allocation, stored
  // flat in reserved vectors (front heap, calendar buckets, overflow) so
  // scheduler traversals stay cache-friendly.
  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> handle;  // preferred: resume directly
    CallbackBase* cb;                // pooled callback otherwise
  };
  // Min-heap order: earliest (t, seq) first.
  static bool later(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }

  void check_not_past(Time t) const;
  void push_event(Event ev);
  Event pop_event();
  // Oracle-attached pop: may redirect which same-instant tagged deliver
  // event leaves the front heap first (engine.cpp).
  Event pop_event_mc();
  bool queue_empty() const { return heap_.empty() && staged_ == 0; }

  // Calendar internals (engine.cpp): refill the front heap from the next
  // non-empty bucket, rebuilding the year from overflow when it is spent.
  void refill_front();
  void rebuild_year();
  void note_queued() {
    const std::uint64_t depth =
        static_cast<std::uint64_t>(heap_.size()) + staged_;
    if (heap_.size() > peak_live_events_) peak_live_events_ = heap_.size();
    if (depth > peak_queue_depth_) peak_queue_depth_ = depth;
  }

  // Detached wrapper coroutine: owns the task, maintains the live count,
  // captures exceptions, posts the optional completion flag.
  struct Detached {
    struct promise_type {
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  Detached run_detached(CoTask<void> task, std::shared_ptr<Flag> done);

  SchedulerKind sched_;
  // Front heap: the only stage events are popped from. Under the binary
  // heap scheduler it is the whole queue.
  std::vector<Event> heap_;
  // Calendar stages (empty under the binary heap scheduler). Invariants:
  // heap_ holds every queued event with t < front_limit_; bucket i holds
  // events with t in [year_start_ + i*width_, year_start_ + (i+1)*width_)
  // for i >= next_bucket_; overflow_ holds events at or beyond the year end
  // (and everything, initially, until the first year is built).
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;
  Time year_start_ = 0;
  Time width_ = 0;  // 0: no active year
  Time front_limit_ = std::numeric_limits<Time>::min();
  std::size_t next_bucket_ = 0;
  std::uint64_t staged_ = 0;  // events in buckets_ + overflow_
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t peak_live_events_ = 0;
  std::uint64_t peak_queue_depth_ = 0;
  int live_tasks_ = 0;
  std::exception_ptr error_{};
  SlabPool callback_pool_{kCallbackChunk};
  BufferPool payload_pool_;
  // Model-checking seam: null on every default path. mc_meta_ maps the seq
  // of each still-queued tagged deliver event to its channel; entries are
  // erased when their event pops, so the map stays bounded by the backlog.
  ScheduleOracle* oracle_ = nullptr;
  std::map<std::uint64_t, McChannel> mc_meta_;
};

}  // namespace dpml::sim
