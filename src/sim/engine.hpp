// Discrete-event simulation engine.
//
// The Engine owns the event queue and the global simulated clock. Simulated
// processes are CoTask coroutines spawned onto the engine; they advance the
// clock only by awaiting delay()/until() or synchronization primitives.
// Events scheduled for the same instant fire in schedule order (a strictly
// monotone sequence number breaks ties), so runs are bitwise deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dpml::sim {

class Flag;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedule a coroutine resume / callback at absolute time `t` (>= now).
  void schedule_at(Time t, std::coroutine_handle<> h);
  void schedule_fn(Time t, std::function<void()> fn);

  // Awaitable that resumes the caller after `d` picoseconds.
  // A non-positive delay resumes without suspension.
  auto delay(Time d) { return DelayAwaiter{*this, now_ + (d > 0 ? d : 0)}; }
  auto until(Time t) { return DelayAwaiter{*this, t}; }

  // Run `task` as a detached simulated process. The engine tracks liveness:
  // run() reports a deadlock if the queue drains while processes are blocked.
  void spawn(CoTask<void> task);

  // Run `task` as a sub-operation; the returned Flag posts on completion.
  // Used for non-blocking operations (isend/irecv/iallreduce).
  std::shared_ptr<Flag> spawn_sub(CoTask<void> task);

  // Process events until the queue is empty or a spawned task fails.
  // Rethrows the first task exception; throws util::DeadlockError if
  // processes remain blocked with no pending events.
  void run();

  std::uint64_t events_processed() const { return events_processed_; }
  int live_tasks() const { return live_tasks_; }

  // Record a task failure (used by the spawn wrapper; also available to
  // runtime components that detect fatal conditions outside a task).
  void record_error(std::exception_ptr e);

  struct DelayAwaiter {
    Engine& engine;
    Time at;
    bool await_ready() const noexcept { return at <= engine.now(); }
    void await_suspend(std::coroutine_handle<> h) { engine.schedule_at(at, h); }
    void await_resume() const noexcept {}
  };

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> handle;      // preferred: resume directly
    std::function<void()> fn;            // fallback: arbitrary callback
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Detached wrapper coroutine: owns the task, maintains the live count,
  // captures exceptions, posts the optional completion flag.
  struct Detached {
    struct promise_type {
      Detached get_return_object() { return {}; }
      std::suspend_never initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() noexcept { std::terminate(); }
    };
  };
  Detached run_detached(CoTask<void> task, std::shared_ptr<Flag> done);

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  int live_tasks_ = 0;
  std::exception_ptr error_{};
};

}  // namespace dpml::sim
