#include "sim/sync.hpp"

#include <memory>
#include <utility>

namespace dpml::sim {

void Flag::post() {
  if (posted_) return;
  posted_ = true;
  // Resume waiters through the event queue (flat, deterministic order)
  // rather than nested direct resumption.
  for (auto h : waiters_) engine_.schedule_at(engine_.now(), h);
  waiters_.clear();
}

void Flag::reset() {
  DPML_CHECK_MSG(waiters_.empty(), "resetting a Flag with pending waiters");
  posted_ = false;
}

void Latch::arrive(int k) {
  DPML_CHECK(k >= 1);
  arrived_ += k;
  DPML_CHECK_MSG(arrived_ <= expect_, "Latch over-arrived");
  if (arrived_ == expect_) flag_.post();
}

void Latch::reset(int expect) {
  DPML_CHECK(expect >= 0);
  flag_.reset();
  expect_ = expect;
  arrived_ = 0;
  if (expect_ == 0) flag_.post();
}

bool Barrier::Awaiter::await_suspend(std::coroutine_handle<> h) {
  Barrier& b = barrier;
  ++b.arrived_;
  if (b.arrived_ == b.parties_) {
    b.release_all();
    return false;  // last arriver proceeds without suspending
  }
  b.waiters_.push_back(h);
  return true;
}

void Barrier::release_all() {
  for (auto h : waiters_) engine_.schedule_at(engine_.now(), h);
  waiters_.clear();
  arrived_ = 0;
  ++generation_;
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    // Permit is handed to the waiter; permits_ stays unchanged.
    engine_.schedule_at(engine_.now(), h);
  } else {
    ++permits_;
  }
}

CoTask<void> wait_all(std::vector<std::shared_ptr<Flag>> flags) {
  for (auto& f : flags) {
    DPML_CHECK(f != nullptr);
    co_await f->wait();
  }
}

}  // namespace dpml::sim
