// Synchronization primitives for simulated processes.
//
// All primitives are single-threaded (the engine is sequential); "blocking"
// means suspending the coroutine until another simulated process signals.
// Signal propagation is instantaneous in simulated time — physical signalling
// cost (e.g. a shared-memory flag write) is charged explicitly by the caller
// via Engine::delay with the hardware model's flag latency.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace dpml::sim {

// One-shot event: wait() suspends until post(); waits after post() complete
// immediately. reset() re-arms (only valid with no pending waiters).
class Flag {
 public:
  explicit Flag(Engine& engine) : engine_(engine) {}

  void post();
  bool posted() const { return posted_; }
  void reset();

  auto wait() { return Awaiter{*this}; }

 private:
  struct Awaiter {
    Flag& flag;
    bool await_ready() const noexcept { return flag.posted_; }
    void await_suspend(std::coroutine_handle<> h) {
      flag.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Engine& engine_;
  bool posted_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Count-down latch: wait() resumes once arrive() has been called `expect`
// times. Reusable via reset().
class Latch {
 public:
  Latch(Engine& engine, int expect) : flag_(engine), expect_(expect) {
    DPML_CHECK(expect >= 0);
    if (expect_ == 0) flag_.post();
  }

  void arrive(int k = 1);
  auto wait() { return flag_.wait(); }
  void reset(int expect);
  int pending() const { return expect_ - arrived_; }

 private:
  Flag flag_;
  int expect_;
  int arrived_ = 0;
};

// Cyclic barrier for `parties` simulated processes. The generation counter
// makes back-to-back barriers safe.
class Barrier {
 public:
  Barrier(Engine& engine, int parties) : engine_(engine), parties_(parties) {
    DPML_CHECK(parties >= 1);
  }

  auto arrive_and_wait() { return Awaiter{*this}; }
  std::uint64_t generation() const { return generation_; }

 private:
  struct Awaiter {
    Barrier& barrier;
    bool await_ready() const noexcept { return barrier.parties_ == 1; }
    bool await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  void release_all();

  Engine& engine_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO waiters. Models bounded hardware concurrency
// (e.g. the SHArP outstanding-operation limit).
class Semaphore {
 public:
  Semaphore(Engine& engine, int permits) : engine_(engine), permits_(permits) {
    DPML_CHECK(permits >= 0);
  }

  auto acquire() { return Awaiter{*this}; }
  void release();
  int available() const { return permits_; }
  int waiting() const { return static_cast<int>(waiters_.size()); }

 private:
  struct Awaiter {
    Semaphore& sem;
    // Fast path: take a permit immediately when one is free and nobody is
    // queued ahead of us (FIFO fairness).
    bool await_ready() noexcept {
      if (sem.permits_ > 0 && sem.waiters_.empty()) {
        --sem.permits_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    // Slow path: release() transferred its permit to us directly.
    void await_resume() const noexcept {}
  };

  Engine& engine_;
  int permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Await completion of a set of Flags (the waitall building block).
CoTask<void> wait_all(std::vector<std::shared_ptr<Flag>> flags);

}  // namespace dpml::sim
