// FIFO serialization resources.
//
// A FifoResource models a hardware unit that serves one item at a time in
// arrival order — a NIC TX/RX engine, the aggregate memory pipe of a node.
// Because service is non-preemptive FIFO, a grant can be computed in O(1):
// the resource just tracks when it next becomes free. Processes then sleep
// until their grant's completion time. Acquisition must happen at the
// current simulated instant (callers schedule an event at the arrival time),
// which preserves arrival ordering.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "util/error.hpp"

namespace dpml::sim {

class FifoResource {
 public:
  explicit FifoResource(std::string name = "resource")
      : name_(std::move(name)) {}

  struct Grant {
    Time start;
    Time done;
  };

  // Request `duration` of exclusive service starting no earlier than `at`.
  // `at` must be the current simulated time of the caller (monotone
  // non-decreasing across calls).
  Grant acquire_grant(Time at, Time duration) {
    DPML_CHECK(duration >= 0);
    DPML_CHECK_MSG(at >= last_arrival_,
                   "FifoResource '" + name_ + "' acquired out of order");
    last_arrival_ = at;
    const Time start = at > free_at_ ? at : free_at_;
    free_at_ = start + duration;
    busy_accum_ += duration;
    ++grants_;
    return Grant{start, free_at_};
  }

  // Convenience: completion time only.
  Time acquire(Time at, Time duration) { return acquire_grant(at, duration).done; }

  Time free_at() const { return free_at_; }
  Time busy_time() const { return busy_accum_; }
  std::uint64_t grants() const { return grants_; }
  const std::string& name() const { return name_; }

  void reset() {
    free_at_ = 0;
    last_arrival_ = 0;
    busy_accum_ = 0;
    grants_ = 0;
  }

 private:
  std::string name_;
  Time free_at_ = 0;
  Time last_arrival_ = 0;
  Time busy_accum_ = 0;
  std::uint64_t grants_ = 0;
};

}  // namespace dpml::sim
