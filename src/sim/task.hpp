// Coroutine task type for simulated processes.
//
// Every simulated activity (an MPI rank's program, a sub-operation such as a
// non-blocking send, a SHArP operation) is a CoTask coroutine. CoTasks are
// lazy: they start when first awaited (or when handed to Engine::spawn /
// Engine::spawn_sub). Completion uses symmetric transfer so deep call chains
// do not grow the native stack.
//
// Exceptions thrown inside a CoTask are captured and rethrown at the
// awaiter's co_await, so simulated-runtime failures surface naturally in
// tests and at Machine::run().
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace dpml::sim {

template <typename T>
class CoTask;

namespace detail {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};
  CoTask<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  CoTask<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] CoTask {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  CoTask() = default;
  explicit CoTask(Handle h) : h_(h) {}
  CoTask(CoTask&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  // Awaiter interface: awaiting a CoTask starts it and resumes the awaiter
  // when it completes (symmetric transfer in both directions).
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    DPML_CHECK_MSG(h_ && !h_.done(), "awaiting an empty or finished CoTask");
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    if constexpr (!std::is_void_v<T>) {
      return std::move(p.value);
    }
  }

  Handle release() { return std::exchange(h_, {}); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

namespace detail {
template <typename T>
CoTask<T> Promise<T>::get_return_object() {
  return CoTask<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}
inline CoTask<void> Promise<void>::get_return_object() {
  return CoTask<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}
}  // namespace detail

}  // namespace dpml::sim
