#include "simmpi/machine.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "sim/timeonly.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace dpml::simmpi {

using sim::Time;
using sim::transfer_time;

namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Scale a charge by a perturbation factor. The factor-1.0 early-out keeps
// clean paths integer-exact (no double round-trip) even when a Perturbation
// exists but the relevant injector is inactive for this rank.
Time scale_time(Time t, double factor) {
  if (factor == 1.0) return t;
  return static_cast<Time>(static_cast<double>(t) * factor);
}

}  // namespace

// ---------------------------------------------------------------------------
// Node

Node::Node(Machine& m, int id)
    : machine_(m), id_(id), mem_("node" + std::to_string(id) + ".mem") {
  const int hcas = std::max(1, m.config().node.hcas);
  for (int h = 0; h < hcas; ++h) {
    tx_.emplace_back("node" + std::to_string(id) + ".tx" + std::to_string(h));
    rx_.emplace_back("node" + std::to_string(id) + ".rx" + std::to_string(h));
  }
}

CollSlot& Node::slot(std::int64_t key) { return slots_[key]; }

void Node::release_slot(std::int64_t key, int parties) {
  auto it = slots_.find(key);
  DPML_CHECK_MSG(it != slots_.end(), "releasing unknown collective slot");
  if (++it->second.released == parties) slots_.erase(it);
}

// ---------------------------------------------------------------------------
// Rank

Rank::Rank(Machine& m, int world_rank)
    : machine_(&m), world_rank_(world_rank) {
  node_id_ = world_rank / m.ppn();
  local_rank_ = world_rank % m.ppn();
  socket_ = m.socket_of_local(local_rank_);
  matcher_.set_recycler(m.data_plane().recycler());
  if (m.options().oracle != nullptr) {
    matcher_.set_oracle(m.options().oracle, world_rank_);
  }
}

sim::Engine& Rank::engine() { return machine_->engine(); }
Node& Rank::node() { return machine_->node(node_id_); }

sim::CoTask<void> Rank::busy(Time t) {
  // Compute charges carry the per-rank jitter/straggler factor; everything
  // routed through compute() (application phases, leader collection costs)
  // is noise-bearing work.
  if (perturb::Perturbation* pt = machine_->perturbation()) {
    t = scale_time(t, pt->compute_factor(world_rank_));
  }
  co_await engine().delay(t);
}

Time Rank::reduce_cost(std::size_t bytes) const {
  return static_cast<Time>(static_cast<double>(bytes) *
                           machine_->config().host.reduce_ns_per_byte *
                           static_cast<double>(sim::kNanosecond));
}

sim::CoTask<void> Rank::reduce_compute(std::size_t bytes) {
  // A reduction streams its operands through the node's memory system, so
  // concurrent reducers (multiple DPML leaders, or a full node of flat-
  // algorithm ranks) share the aggregate memory pipe. This is the physical
  // effect that makes leader counts plateau (paper §6.2/§6.4: 16 leaders is
  // near-optimal; beyond that the node is memory-bound, not compute-bound).
  // Perturbation jitter scales the processor-side cost only; the shared
  // memory-pipe occupancy stays nominal (noise models core-local effects).
  machine_->stats_.reduce_bytes += bytes;
  Time proc_cost = reduce_cost(bytes);
  if (perturb::Perturbation* pt = machine_->perturbation()) {
    proc_cost = scale_time(proc_cost, pt->compute_factor(world_rank_));
  }
  const Time t0 = engine().now();
  const Time proc_done = t0 + proc_cost;
  const Time mem_done = node().mem().acquire(
      t0, transfer_time(bytes, machine_->config().host.mem_agg_bw));
  const Time done = std::max(proc_done, mem_done);
  machine_->trace("reduce", "compute", world_rank_, t0, done);
  co_await engine().until(done);
}

sim::CoTask<void> Rank::send(const Comm& comm, int dst, int tag,
                             std::size_t bytes, ConstBytes data) {
  return machine_->do_send(*this, comm.world_rank(dst), comm.context(), tag,
                           bytes, data);
}

sim::CoTask<RecvResult> Rank::recv(const Comm& comm, int src, int tag,
                                   std::size_t capacity, MutBytes out) {
  const int src_world = src == kAnySource ? kAnySource : comm.world_rank(src);
  return machine_->do_recv(*this, src_world, comm.context(), tag, capacity,
                           out);
}

std::shared_ptr<sim::Flag> Rank::isend(const Comm& comm, int dst, int tag,
                                       std::size_t bytes, ConstBytes data) {
  return engine().spawn_sub(send(comm, dst, tag, bytes, data));
}

namespace {
sim::CoTask<void> irecv_body(sim::CoTask<RecvResult> op,
                             std::shared_ptr<RecvResult> out) {
  *out = co_await std::move(op);
}
}  // namespace

RecvHandle Rank::irecv(const Comm& comm, int src, int tag,
                       std::size_t capacity, MutBytes out) {
  auto result = std::make_shared<RecvResult>();
  auto done = engine().spawn_sub(
      irecv_body(recv(comm, src, tag, capacity, out), result));
  return RecvHandle{std::move(done), std::move(result)};
}

sim::CoTask<RecvResult> Rank::sendrecv(const Comm& comm, int dst, int send_tag,
                                       std::size_t send_bytes, int src,
                                       int recv_tag,
                                       std::size_t recv_capacity,
                                       ConstBytes send_data,
                                       MutBytes recv_out) {
  auto sf = isend(comm, dst, send_tag, send_bytes, send_data);
  const RecvResult res =
      co_await recv(comm, src, recv_tag, recv_capacity, recv_out);
  co_await sf->wait();
  co_return res;
}

bool Rank::iprobe(const Comm& comm, int src, int tag, RecvResult* info) {
  const int src_world = src == kAnySource ? kAnySource : comm.world_rank(src);
  const Envelope* env = matcher_.peek(comm.context(), src_world, tag);
  if (env == nullptr) return false;
  if (info != nullptr) {
    info->bytes = env->bytes;
    info->src = env->src;
    info->tag = env->tag;
  }
  return true;
}

sim::CoTask<RecvResult> Rank::probe(const Comm& comm, int src, int tag) {
  RecvResult info;
  while (!iprobe(comm, src, tag, &info)) {
    sim::Flag arrived(engine());
    matcher_.watch_arrivals(&arrived);
    co_await arrived.wait();
  }
  co_return info;
}

sim::CoTask<void> Rank::shm_put(ShmWindow& w, std::size_t offset,
                                std::size_t bytes, ConstBytes src) {
  return machine_->do_shm_copy(*this, w, offset, bytes, src, {}, /*is_put=*/true);
}

sim::CoTask<void> Rank::shm_get(ShmWindow& w, std::size_t offset,
                                std::size_t bytes, MutBytes dst) {
  return machine_->do_shm_copy(*this, w, offset, bytes, {}, dst, /*is_put=*/false);
}

sim::CoTask<void> Rank::signal(sim::Flag& f) {
  co_await engine().delay(machine_->config().host.flag_latency);
  f.post();
}

sim::CoTask<void> Rank::signal(sim::Latch& l) {
  co_await engine().delay(machine_->config().host.flag_latency);
  l.arrive();
}

std::int64_t Rank::next_coll_key(int context) {
  const std::int64_t seq = coll_seq_[context]++;
  return (static_cast<std::int64_t>(context) << 32) | seq;
}

// ---------------------------------------------------------------------------
// Machine

Machine::Machine(net::ClusterConfig cfg, int nodes, int ppn, RunOptions opt)
    : cfg_(std::move(cfg)),
      opt_(opt),
      nodes_used_(nodes),
      ppn_(ppn),
      engine_(sim::resolve_scheduler(opt.scheduler, opt.data_mode)),
      topo_(nodes, cfg_.nodes_per_leaf) {
  DPML_CHECK_MSG(nodes >= 1, "need at least one node");
  DPML_CHECK_MSG(nodes <= cfg_.total_nodes,
                 "cluster '" + cfg_.name + "' has only " +
                     std::to_string(cfg_.total_nodes) + " nodes");
  DPML_CHECK_MSG(ppn >= 1 && ppn <= cfg_.max_ppn(),
                 "ppn out of range for cluster '" + cfg_.name + "'");
  if (opt_.data_mode == sim::DataMode::timeonly) {
    DPML_CHECK_MSG(!opt_.with_data,
                   "time-only runs cannot carry payload data: "
                   "RunOptions::with_data conflicts with "
                   "data_mode=timeonly; clear with_data (there are no "
                   "buffers to fill) or run data_mode=payload");
    DPML_CHECK_MSG(opt_.check_level == check::CheckLevel::off,
                   "time-only runs cannot be verified: "
                   "RunOptions::check_level=" +
                       std::string(check::check_level_name(opt_.check_level)) +
                       " conflicts with data_mode=timeonly (simcheck leases "
                       "need real payload spans); set check_level=off or run "
                       "data_mode=payload");
    data_plane_ =
        std::make_unique<sim::TimeOnlyPlane>(nodes * ppn);
  } else {
    data_plane_ = std::make_unique<sim::PayloadPlane>(engine_);
  }
  // Enforce the preset's declared fabric shape up front: deriving the link
  // plan validates nodes_per_leaf and oversubscription for every cluster,
  // whether or not the flow-level model is enabled for this run.
  (void)fabric::FabricTopo::derive(cfg_, nodes);
  // Pre-size the event heap for the expected in-flight event population
  // (every rank typically has a handful of outstanding events).
  engine_.reserve_events(static_cast<std::size_t>(nodes) *
                         static_cast<std::size_t>(ppn) * 8);
  if (opt_.oracle != nullptr) {
    DPML_CHECK_MSG(opt_.check_level != check::CheckLevel::off,
                   "a schedule oracle explores alternative message orders; "
                   "run it under simcheck (check_level=basic/strict) so a "
                   "bad schedule is reported rather than silently computed");
    engine_.set_oracle(opt_.oracle);
  }
  for (int i = 0; i < nodes; ++i) nodes_.emplace_back(*this, i);
  std::vector<int> world_ranks(static_cast<std::size_t>(nodes) * ppn);
  for (int i = 0; i < static_cast<int>(world_ranks.size()); ++i) {
    world_ranks[i] = i;
  }
  world_ = Comm(0, std::move(world_ranks));
  for (int w = 0; w < world_size(); ++w) ranks_.emplace_back(*this, w);
  if (!opt_.perturb.empty()) {
    perturb_ =
        std::make_unique<perturb::Perturbation>(opt_.perturb, world_size());
  }
  if (opt_.fabric_level == fabric::FabricLevel::links) {
    fabric_ = std::make_unique<fabric::FlowFabric>(engine_, cfg_, nodes);
    if (perturb_ != nullptr && perturb_->has_link_rules()) {
      // Link-degradation rules become per-link capacity scaling: node-scoped
      // rules choke that node's edge links, fully-wildcarded rules choke the
      // whole fabric, and rule windows trigger reallocation at their
      // boundaries. (Pairwise rules cap individual flows in fabric_send.)
      perturb::Perturbation* pt = perturb_.get();
      fabric_->set_capacity_scaler([this, pt](int link, sim::Time now) {
        double s = pt->fabric_global_scale(now);
        const int owner = fabric_->link_node(link);
        if (owner >= 0) s *= pt->fabric_node_scale(owner, now);
        return s;
      });
      fabric_->schedule_reallocations(pt->link_rule_boundaries());
    }
  } else if (cfg_.oversubscription > 1.0) {
    // LogGP path: the oversubscribed core is approximated by per-leaf FIFO
    // uplink/downlink pools (the flow fabric models it per-link instead).
    core_bw_ = cfg_.nic.link_bw * cfg_.nodes_per_leaf / cfg_.oversubscription;
    for (int leafidx = 0; leafidx < topo_.num_leaves(); ++leafidx) {
      leaf_up_.emplace_back("leaf" + std::to_string(leafidx) + ".up");
      leaf_down_.emplace_back("leaf" + std::to_string(leafidx) + ".down");
    }
  }
  if (opt_.check_level != check::CheckLevel::off) {
    checker_ = std::make_unique<check::Checker>(opt_.check_level,
                                                opt_.with_data, world_size());
  }
}

void Machine::enable_trace() {
  if (tracer_) return;
  tracer_ = std::make_unique<Tracer>();
  tracer_->set_process_name("cluster " + cfg_.name + " " +
                            std::to_string(nodes_used_) + "x" +
                            std::to_string(ppn_));
  for (int w = 0; w < world_size(); ++w) {
    tracer_->set_thread_name(
        w, "rank " + std::to_string(w) + " (node " +
               std::to_string(w / ppn_) + ")");
  }
  if (fabric_ != nullptr) {
    // One lane per fabric link, below the rank lanes; congestion intervals
    // (two or more flows sharing the link) show up as spans on that lane.
    const int base = world_size();
    for (int l = 0; l < fabric_->topo().num_links(); ++l) {
      tracer_->set_thread_name(base + l, "link " + fabric_->link_name(l));
    }
    fabric_->set_congestion_listener(
        [this, base](int link, Time from, Time until) {
          if (until > from) {
            tracer_->add("congested", "fabric", base + link, from, until);
          }
        });
  }
}

void Machine::route(int src_node, int dst_node, int dst_hca,
                    sim::Time tx_start, sim::Time occupancy,
                    std::size_t bytes, sim::Time extra_latency,
                    std::function<void(sim::Time)> complete) {
  const net::NicModel& nic = cfg_.nic;
  const bool same_leaf = topo_.leaf_of(src_node) == topo_.leaf_of(dst_node);
  if (same_leaf || leaf_up_.empty()) {
    const Time head = tx_start + topo_.path_latency(src_node, dst_node, nic) +
                      extra_latency;
    engine_.schedule_call(head, [this, dst_node, dst_hca, occupancy,
                               complete = std::move(complete)]() {
      const Time rx_done =
          node(dst_node).rx(dst_hca).acquire(engine_.now(), occupancy);
      complete(rx_done);
    });
    return;
  }
  // Cross-leaf: node -> leaf -> (uplink) core -> (downlink) leaf -> node.
  // The per-leaf uplink/downlink pools model the oversubscribed core.
  const Time hop = nic.wire_latency + nic.switch_latency;
  const Time occ_core = transfer_time(bytes, core_bw_);
  const int src_leaf = topo_.leaf_of(src_node);
  const int dst_leaf = topo_.leaf_of(dst_node);
  engine_.schedule_call(tx_start + hop + extra_latency,
                      [this, src_leaf, dst_leaf, dst_node, dst_hca, occupancy,
                       occ_core, hop, complete = std::move(complete)]() {
    const auto up = leaf_up_[static_cast<std::size_t>(src_leaf)].acquire_grant(
        engine_.now(), occ_core);
    engine_.schedule_call(up.start + hop, [this, dst_leaf, dst_node, dst_hca,
                                         occupancy, occ_core, hop,
                                         complete]() {
      const auto dn =
          leaf_down_[static_cast<std::size_t>(dst_leaf)].acquire_grant(
              engine_.now(), occ_core);
      // core -> destination leaf switch -> destination node.
      engine_.schedule_call(
          dn.start + cfg_.nic.switch_latency + cfg_.nic.wire_latency,
          [this, dst_node, dst_hca, occupancy, complete]() {
            const Time rx_done =
                node(dst_node).rx(dst_hca).acquire(engine_.now(), occupancy);
            complete(rx_done);
          });
    });
  });
}

void Machine::fabric_send(int src_node, int src_hca, int dst_node, int dst_hca,
                          sim::Time t0, std::size_t bytes,
                          sim::Time extra_latency,
                          std::function<void(sim::Time)> complete) {
  const net::NicModel& nic = cfg_.nic;
  // Pairwise link-degradation rules cap this flow's own rate; node-scoped
  // and global rules are applied as link-capacity scaling by the fabric.
  double pair_scale = 1.0;
  if (perturb_ != nullptr && perturb_->has_link_rules()) {
    pair_scale = perturb_->fabric_pair_scale(src_node, dst_node, engine_.now());
  }
  const double rate_cap = nic.link_bw * pair_scale;
  const Time path = topo_.path_latency(src_node, dst_node, nic) + extra_latency;
  // The NIC TX engine charges only its per-message cost: wire serialization
  // is the flow itself, draining at the max-min fair rate.
  const auto tx = node(src_node).tx(src_hca).acquire_grant(t0, nic.per_msg_tx);
  engine_.schedule_call(tx.start, [this, src_node, dst_node, dst_hca, bytes,
                                 rate_cap, path,
                                 complete = std::move(complete)]() {
    fabric_->start_flow(
        src_node, dst_node, bytes, rate_cap,
        [this, dst_node, dst_hca, path,
         complete = std::move(complete)](Time flow_done) {
          // Last byte off the wire; the head latency and the RX per-message
          // cost complete the delivery.
          engine_.schedule_call(flow_done + path,
                              [this, dst_node, dst_hca, complete]() {
                                const Time rx_done =
                                    node(dst_node).rx(dst_hca).acquire(
                                        engine_.now(), cfg_.nic.per_msg_tx);
                                complete(rx_done);
                              });
        });
  });
}

Rank& Machine::rank(int world_rank) {
  DPML_CHECK(world_rank >= 0 && world_rank < world_size());
  return ranks_[static_cast<std::size_t>(world_rank)];
}

Node& Machine::node(int id) {
  DPML_CHECK(id >= 0 && id < nodes_used_);
  return nodes_[static_cast<std::size_t>(id)];
}

int Machine::socket_of_local(int local_rank) const {
  DPML_CHECK(local_rank >= 0 && local_rank < ppn_);
  const int per_socket = ceil_div(ppn_, cfg_.node.sockets);
  return local_rank / per_socket;
}

int Machine::hca_of_local(int local_rank) const {
  const int hcas = std::max(1, cfg_.node.hcas);
  if (hcas == 1) return 0;
  // Map the rank's socket onto the rails (sockets >= hcas: group sockets;
  // hcas > sockets: spread local ranks round-robin within the socket).
  const int sockets = cfg_.node.sockets;
  if (hcas <= sockets) {
    return socket_of_local(local_rank) * hcas / sockets;
  }
  return local_rank % hcas;
}

sim::Time Machine::collection_cost(int leader_local, int lo_local,
                                   int hi_local) const {
  DPML_CHECK(lo_local >= 0 && hi_local <= ppn_);
  const int leader_socket = socket_of_local(leader_local);
  Time cost = 0;
  for (int i = lo_local; i < hi_local; ++i) {
    if (i == leader_local) continue;
    cost += socket_of_local(i) == leader_socket
                ? cfg_.host.gather_poll
                : cfg_.host.gather_poll_xsocket;
  }
  return cost;
}

int Machine::leader_local_rank(int leader_index, int num_leaders) const {
  DPML_CHECK(num_leaders >= 1 && num_leaders <= ppn_);
  DPML_CHECK(leader_index >= 0 && leader_index < num_leaders);
  // Spread leaders evenly across local ranks (and therefore across sockets,
  // since ranks are socket-major): leader j sits at floor(j * ppn / l).
  return static_cast<int>((static_cast<std::int64_t>(leader_index) * ppn_) /
                          num_leaders);
}

int Machine::leader_index_of_local(int lr, int num_leaders) const {
  const int j = static_cast<int>(
      (static_cast<std::int64_t>(lr) * num_leaders + ppn_ - 1) / ppn_);
  if (j < num_leaders && leader_local_rank(j, num_leaders) == lr) return j;
  return -1;
}

const Comm& Machine::leader_comm(int leader_index, int num_leaders) {
  const std::int64_t key =
      static_cast<std::int64_t>(num_leaders) * 4096 + leader_index;
  auto it = leader_comms_.find(key);
  if (it != leader_comms_.end()) return it->second;
  const int lr = leader_local_rank(leader_index, num_leaders);
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(nodes_used_));
  for (int n = 0; n < nodes_used_; ++n) members.push_back(n * ppn_ + lr);
  auto [ins, ok] =
      leader_comms_.emplace(key, Comm(alloc_context(), std::move(members)));
  DPML_CHECK(ok);
  return ins->second;
}

const Comm& Machine::split_comm(const Comm& parent,
                                const std::vector<int>& colors,
                                const std::vector<int>& keys, int my_color) {
  DPML_CHECK_MSG(static_cast<int>(colors.size()) == parent.size() &&
                     static_cast<int>(keys.size()) == parent.size(),
                 "split_comm needs one color and key per parent member");
  if (my_color < 0) return null_comm_;  // MPI_UNDEFINED
  // Cache key: every member of one logical split passes identical arrays,
  // so content-addressing yields the same Comm (and context) for all.
  std::string cache_key = std::to_string(parent.context()) + "|" +
                          std::to_string(my_color);
  for (std::size_t i = 0; i < colors.size(); ++i) {
    cache_key += "," + std::to_string(colors[i]) + ":" +
                 std::to_string(keys[i]);
  }
  auto it = split_cache_.find(cache_key);
  if (it != split_cache_.end()) return it->second;
  // Members of my color, ordered by (key, parent rank).
  std::vector<std::pair<int, int>> order;  // (key, parent rank)
  for (int pr = 0; pr < parent.size(); ++pr) {
    if (colors[static_cast<std::size_t>(pr)] == my_color) {
      order.emplace_back(keys[static_cast<std::size_t>(pr)], pr);
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<int> members;
  members.reserve(order.size());
  for (const auto& [key, pr] : order) {
    (void)key;
    members.push_back(parent.world_rank(pr));
  }
  auto [ins, ok] = split_cache_.emplace(
      cache_key, Comm(alloc_context(), std::move(members)));
  DPML_CHECK(ok);
  return ins->second;
}

const Comm& Machine::make_comm(std::vector<int> world_ranks) {
  for (int w : world_ranks) DPML_CHECK(w >= 0 && w < world_size());
  extra_comms_.emplace_back(alloc_context(), std::move(world_ranks));
  return extra_comms_.back();
}

double Machine::avg_tx_utilization() const {
  if (engine_.now() == 0) return 0.0;
  double acc = 0.0;
  double rails = 0.0;
  for (const Node& n : nodes_) {
    Node& nn = const_cast<Node&>(n);
    for (int h = 0; h < nn.num_hcas(); ++h) {
      acc += static_cast<double>(nn.tx(h).busy_time());
      rails += 1.0;
    }
  }
  return acc / (static_cast<double>(engine_.now()) * rails);
}

double Machine::avg_rx_utilization() const {
  if (engine_.now() == 0) return 0.0;
  double acc = 0.0;
  double rails = 0.0;
  for (const Node& n : nodes_) {
    Node& nn = const_cast<Node&>(n);
    for (int h = 0; h < nn.num_hcas(); ++h) {
      acc += static_cast<double>(nn.rx(h).busy_time());
      rails += 1.0;
    }
  }
  return acc / (static_cast<double>(engine_.now()) * rails);
}

void Machine::run(const std::function<sim::CoTask<void>(Rank&)>& main) {
  for (auto& r : ranks_) engine_.spawn(main(r));
  if (checker_ == nullptr) {
    engine_.run();
    if (fabric_ != nullptr) fabric_->finish(engine_.now());
    return;
  }
  // Checked run: intercept the engine's deadlock diagnosis so the checker
  // can augment it with a per-rank blocked-request report, then sweep every
  // endpoint for leaked requests and render the final verdict.
  bool deadlocked = false;
  std::string deadlock_what;
  try {
    engine_.run();
  } catch (const util::DeadlockError& e) {
    deadlocked = true;
    deadlock_what = e.what();
  }
  if (fabric_ != nullptr) fabric_->finish(engine_.now());
  for (auto& r : ranks_) {
    checker_->note_endpoint_state(r.world_rank(), r.matcher());
  }
  std::size_t slots = 0;
  for (const Node& n : nodes_) slots += n.live_slots();
  checker_->finalize(deadlocked, deadlock_what, slots,
                     tracer_ ? tracer_->open_count() : 0);
}

// ---------------------------------------------------------------------------
// Transport

std::vector<std::byte> Machine::capture_payload(int src_world,
                                                std::size_t bytes, int dtype,
                                                sim::Time op_cost,
                                                ConstBytes data) {
  sim::MsgMeta meta;
  meta.src = src_world;
  meta.bytes = bytes;
  meta.dtype = dtype;
  meta.op_cost = op_cost;
  return data_plane_->capture(meta, data.empty() ? nullptr : data.data(),
                              data.size());
}

namespace {
// Shared state between the rendezvous sender continuation and the match-time
// callback running on the receiver side.
struct RndvState {
  explicit RndvState(sim::Engine& e) : cts(e) {}
  sim::Flag cts;
  PostedRecv* pr = nullptr;
};
}  // namespace

sim::CoTask<void> Machine::do_send(Rank& sender, int dst_world, int ctx,
                                   int tag, std::size_t bytes,
                                   ConstBytes data) {
  DPML_CHECK_MSG(data.empty() || data.size() == bytes,
                 "send payload size mismatch");
  Rank& dst = rank(dst_world);
  const net::HostModel& host = cfg_.host;
  const net::NicModel& nic = cfg_.nic;
  const int src_world = sender.world_rank();

  // simcheck: validate the send against the current reduction dtype, hold a
  // read lease on the payload span for the duration of the blocking send
  // (MPI forbids touching the buffer until the send returns), and stamp the
  // dtype annotation that receivers check against. Host-side only: no
  // simulated time is charged.
  check::Checker* ck = checker_.get();
  check::BufferLease send_lease;
  int send_dtype = -1;
  if (ck != nullptr) {
    ck->on_send(src_world, dst_world, ctx, tag, bytes);
    send_lease = ck->acquire_read(src_world, data, "send", ctx, tag);
    send_dtype = ck->current_dtype(src_world);
  }

  // Every envelope delivery (shm, eager, rendezvous-RTS) funnels through
  // here; tagging it with its (rank, ctx, tag, src) channel lets a model-
  // checking oracle reorder same-instant deliveries (no-op when detached).
  auto deliver_at = [this, dst_world](Time t, Envelope env) {
    const sim::McChannel ch{dst_world, env.ctx, env.tag, env.src};
    engine_.schedule_call_mc(
        t, ch, [this, dst_world, env = std::move(env)]() mutable {
          rank(dst_world).matcher().deliver(std::move(env));
        });
  };

  // Perturbation modifiers. `chg` scales every host-side charge the sender
  // makes (straggler model); the clean value 1.0 leaves charges untouched
  // via scale_time's early-out.
  const double chg =
      perturb_ != nullptr ? perturb_->charge_scale(src_world) : 1.0;

  if (dst.node_id() == sender.node_id()) {
    // Intra-node: shared-memory transport (copy + flag).
    DPML_CHECK_MSG(dst_world != src_world, "self-send is not supported");
    const bool xsock = dst.socket() != sender.socket();
    const double bw = xsock ? host.copy_bw_xsocket : host.copy_bw;
    const Time t0 = engine_.now();
    const Time proc_cost = host.copy_startup +
                           (xsock ? host.xsocket_latency : 0) +
                           transfer_time(bytes, bw);
    const Time proc_done = t0 + scale_time(proc_cost, chg);
    const Time mem_done = node(sender.node_id())
                              .mem()
                              .acquire(t0, transfer_time(bytes, host.mem_agg_bw));
    const Time done = std::max(proc_done, mem_done);
    stats_.shm_messages += 1;
    stats_.shm_bytes += bytes;
    trace("shm-send", "shm", src_world, t0, done);
    Envelope env;
    env.ctx = ctx;
    env.src = src_world;
    env.tag = tag;
    env.bytes = bytes;
    env.data = capture_payload(src_world, bytes, send_dtype,
                               host.flag_latency, data);
    env.recv_cost = host.flag_latency;
    env.dtype = send_dtype;
    deliver_at(done + host.flag_latency, std::move(env));
    co_await engine_.until(done);
    co_return;
  }

  const int src_node = sender.node_id();
  const int dst_node = dst.node_id();
  const int src_hca = hca_of_local(sender.local_rank());
  const int dst_hca = hca_of_local(dst.local_rank());

  // Link-degradation rules are evaluated when the message enters the fabric
  // (time-windowed rules see the current simulated time): a bandwidth scale
  // on the wire occupancy and extra head latency on the path.
  const auto link_mods = [this, src_node, dst_node](double& bw_scale,
                                                    Time& extra) {
    bw_scale = 1.0;
    extra = 0;
    if (perturb_ != nullptr && perturb_->has_link_rules()) {
      bw_scale = perturb_->link_bw_scale(src_node, dst_node, engine_.now());
      extra = perturb_->link_extra_latency(src_node, dst_node, engine_.now());
    }
  };

  // Inter-node data movement is pipelined: the per-process injection pipe,
  // the node TX link, and the destination RX link each serialize the payload
  // once, but they overlap in time (cut-through), so a single uncontended
  // message pays the bottleneck stage only once. The sender's blocking call
  // returns when its own injection pipe has drained (buffer reusable).
  if (bytes < nic.rendezvous_threshold) {
    stats_.net_messages += 1;
    stats_.net_bytes += bytes;
    const Time o_send = scale_time(nic.o_send, chg);
    co_await engine_.delay(o_send);
    const Time t0 = engine_.now();
    const Time inj_done =
        t0 + scale_time(transfer_time(bytes, nic.proc_bw), chg);
    double lbw;
    Time extra;
    link_mods(lbw, extra);
    Envelope env;
    env.ctx = ctx;
    env.src = src_world;
    env.tag = tag;
    env.bytes = bytes;
    env.data = capture_payload(src_world, bytes, send_dtype, nic.o_recv, data);
    env.recv_cost = nic.o_recv;
    env.dtype = send_dtype;
    if (fabric_ != nullptr) {
      trace("net-send", "net", src_world, t0 - o_send, inj_done);
      fabric_send(src_node, src_hca, dst_node, dst_hca, t0, bytes, extra,
                  [deliver_at, env = std::move(env)](Time rx_done) mutable {
                    deliver_at(rx_done, std::move(env));
                  });
    } else {
      const Time occupancy = std::max<Time>(
          nic.per_msg_tx, transfer_time(bytes, nic.link_bw * lbw));
      const auto tx = node(src_node).tx(src_hca).acquire_grant(t0, occupancy);
      trace("net-send", "net", src_world, t0 - o_send,
            std::max(inj_done, tx.done));
      route(src_node, dst_node, dst_hca, tx.start, occupancy, bytes, extra,
            [deliver_at, env = std::move(env)](Time rx_done) mutable {
              deliver_at(rx_done, std::move(env));
            });
    }
    co_await engine_.until(inj_done);
    co_return;
  }

  // Rendezvous: RTS control message, wait for CTS, then move the payload.
  stats_.net_messages += 1;
  stats_.net_bytes += bytes;
  stats_.rndv_handshakes += 1;
  co_await engine_.delay(scale_time(nic.o_send, chg));
  auto state = std::make_shared<RndvState>(engine_);
  {
    const auto txg =
        node(src_node).tx(src_hca).acquire_grant(engine_.now(), nic.per_msg_tx);
    Envelope rts;
    rts.ctx = ctx;
    rts.src = src_world;
    rts.tag = tag;
    rts.bytes = bytes;
    rts.recv_cost = nic.o_recv;
    rts.rendezvous = true;
    rts.dtype = send_dtype;
    rts.on_match = [this, state, src_node, dst_node](PostedRecv& pr) {
      state->pr = &pr;
      // CTS control message back to the sender (receiver-side overhead plus
      // the return path, including any degraded-link extra latency).
      Time cts_extra = 0;
      if (perturb_ != nullptr && perturb_->has_link_rules()) {
        cts_extra =
            perturb_->link_extra_latency(dst_node, src_node, engine_.now());
      }
      const Time cts_arrive = engine_.now() + cfg_.nic.o_send +
                              topo_.path_latency(dst_node, src_node, cfg_.nic) +
                              cts_extra;
      engine_.schedule_call(cts_arrive, [state]() { state->cts.post(); });
    };
    double rts_lbw;
    Time rts_extra;
    link_mods(rts_lbw, rts_extra);
    route(src_node, dst_node, dst_hca, txg.start, nic.per_msg_tx, 0, rts_extra,
          [deliver_at, rts = std::move(rts)](Time rx_done) mutable {
            deliver_at(rx_done, std::move(rts));
          });
  }
  co_await state->cts.wait();

  co_await engine_.delay(scale_time(nic.o_send, chg));
  const Time t0 = engine_.now();
  const Time inj_done =
      t0 + scale_time(transfer_time(bytes, nic.proc_bw), chg);
  double lbw;
  Time extra;
  link_mods(lbw, extra);
  auto deliver_payload =
      [this, state,
       payload = capture_payload(src_world, bytes, send_dtype, nic.o_recv,
                                 data)](Time rx_done) mutable {
    engine_.schedule_call(rx_done, [this, state,
                                    payload = std::move(payload)]() mutable {
      PostedRecv& pr = *state->pr;
      if (!pr.truncated && !payload.empty() && !pr.out.empty()) {
        std::memcpy(pr.out.data(), payload.data(), payload.size());
      }
      data_plane_->reclaim(std::move(payload));
      pr.done->post();
    });
  };
  if (fabric_ != nullptr) {
    fabric_send(src_node, src_hca, dst_node, dst_hca, t0, bytes, extra,
                std::move(deliver_payload));
  } else {
    const Time occupancy = std::max<Time>(
        nic.per_msg_tx, transfer_time(bytes, nic.link_bw * lbw));
    const auto tx = node(src_node).tx(src_hca).acquire_grant(t0, occupancy);
    route(src_node, dst_node, dst_hca, tx.start, occupancy, bytes, extra,
          std::move(deliver_payload));
  }
  // Sender completes once its injection pipe drains.
  co_await engine_.until(inj_done);
}

sim::CoTask<RecvResult> Machine::do_recv(Rank& receiver, int src_world,
                                         int ctx, int tag,
                                         std::size_t capacity, MutBytes out) {
  DPML_CHECK_MSG(out.empty() || out.size() >= capacity,
                 "recv buffer smaller than stated capacity");
  // simcheck: hold a write lease on the destination span while the receive
  // is outstanding; any other live operation touching it is a violation.
  check::Checker* ck = checker_.get();
  check::BufferLease recv_lease;
  if (ck != nullptr && !out.empty()) {
    recv_lease = ck->acquire_write(receiver.world_rank(),
                                   out.first(std::min(capacity, out.size())),
                                   "recv", ctx, tag);
  }
  PostedRecv pr;
  pr.ctx = ctx;
  pr.src = src_world;
  pr.tag = tag;
  pr.capacity = capacity;
  pr.out = out;
  sim::Flag done(engine_);
  pr.done = &done;
  receiver.matcher().post_recv(&pr);
  co_await done.wait();
  Time recv_cost = pr.recv_cost;
  if (perturb_ != nullptr) {
    recv_cost =
        scale_time(recv_cost, perturb_->charge_scale(receiver.world_rank()));
  }
  co_await engine_.delay(recv_cost);
  if (pr.truncated) {
    throw util::MessageError(
        "message truncated: rank " + std::to_string(receiver.world_rank()) +
        " posted " + std::to_string(capacity) + " bytes for (ctx=" +
        std::to_string(ctx) + ", src=" + std::to_string(pr.recv_src) +
        ", tag=" + std::to_string(pr.recv_tag) + ") but " +
        std::to_string(pr.recv_bytes) + " arrived");
  }
  if (ck != nullptr) {
    ck->on_recv_complete(receiver.world_rank(), ctx, pr);
  }
  co_return RecvResult{pr.recv_bytes, pr.recv_src, pr.recv_tag};
}

sim::CoTask<void> Machine::do_shm_copy(Rank& r, ShmWindow& w,
                                       std::size_t offset, std::size_t bytes,
                                       ConstBytes src, MutBytes dst,
                                       bool is_put) {
  DPML_CHECK_MSG(offset + bytes <= w.size(), "window copy out of range");
  DPML_CHECK(src.empty() || src.size() == bytes);
  DPML_CHECK(dst.empty() || dst.size() == bytes);
  // simcheck: the user-side span is live for the duration of the copy.
  check::BufferLease shm_lease;
  if (checker_ != nullptr) {
    shm_lease = is_put ? checker_->acquire_read(r.world_rank(), src, "shm-put",
                                                0, 0)
                       : checker_->acquire_write(r.world_rank(), dst,
                                                 "shm-get", 0, 0);
  }
  const net::HostModel& host = cfg_.host;
  const bool xsock = r.socket() != w.owner_socket();
  const double bw = xsock ? host.copy_bw_xsocket : host.copy_bw;
  const Time t0 = engine_.now();
  Time proc_cost = host.copy_startup + (xsock ? host.xsocket_latency : 0) +
                   transfer_time(bytes, bw);
  if (perturb_ != nullptr) {
    proc_cost = scale_time(proc_cost, perturb_->charge_scale(r.world_rank()));
  }
  const Time proc_done = t0 + proc_cost;
  const Time mem_done =
      r.node().mem().acquire(t0, transfer_time(bytes, host.mem_agg_bw));
  stats_.window_copies += 1;
  stats_.shm_bytes += bytes;
  trace(is_put ? "shm-put" : "shm-get", "shm", r.world_rank(), t0,
        std::max(proc_done, mem_done));
  co_await engine_.until(std::max(proc_done, mem_done));
  if (w.has_data() && bytes > 0) {
    if (!src.empty()) {
      std::memcpy(w.data().data() + offset, src.data(), bytes);
    } else if (!dst.empty()) {
      std::memcpy(dst.data(), w.data().data() + offset, bytes);
    }
  }
}

}  // namespace dpml::simmpi
