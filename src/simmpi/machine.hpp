// The simulated machine: nodes, ranks, transport, shared memory.
//
// A Machine instantiates a cluster preset at a given (nodes, ppn) scale and
// provides the MPI-like runtime the collective algorithms are written
// against. Ranks are coroutine programs spawned with run(); simulated time
// advances only through the engine. Real payload bytes flow when
// RunOptions::with_data is set (the default); metadata-only runs charge
// identical simulated time without touching payload memory, which keeps
// 10,000-rank experiments within laptop memory.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "fabric/fabric.hpp"
#include "net/cluster.hpp"
#include "net/topology.hpp"
#include "perturb/perturb.hpp"
#include "sim/dataplane.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/datatype.hpp"
#include "simmpi/message.hpp"
#include "simmpi/stats.hpp"
#include "simmpi/trace.hpp"

namespace dpml::simmpi {

class Machine;
class Rank;

struct RunOptions {
  bool with_data = true;
  std::uint64_t seed = 1;
  // Deterministic machine perturbations (compute jitter, arrival skew, link
  // degradation, stragglers). An empty spec — the default — builds no
  // perturbation runtime at all: every charge path is bit-identical to a
  // machine constructed before this field existed.
  perturb::PerturbSpec perturb;
  // MPI-semantics verification (simcheck). `off` constructs no checker and
  // leaves every path byte-identical; `basic`/`strict` attach a
  // check::Checker whose hooks are pure host-side bookkeeping, so even
  // checked runs report identical simulated times.
  check::CheckLevel check_level = check::CheckLevel::off;
  // Fabric fidelity. `none` — the default — keeps the classic LogGP
  // transport bit-identical (golden tests); `links` routes every inter-node
  // payload through the flow-level max-min fair link model, enforcing the
  // cluster's nodes_per_leaf/oversubscription capacities.
  fabric::FabricLevel fabric_level = fabric::FabricLevel::none;
  // Data plane (sim/dataplane.hpp). `payload` owns real in-flight buffers;
  // `timeonly` elides them entirely — simulated time is bit-identical, but
  // with_data and check_level are rejected up front (nothing to verify).
  sim::DataMode data_mode = sim::DataMode::payload;
  // Event-queue implementation. `automatic` resolves to the calendar queue
  // for time-only runs and the binary heap otherwise; either choice drains
  // events in the same strict order, so results never depend on it.
  sim::SchedulerKind scheduler = sim::SchedulerKind::automatic;
  // Model-checking schedule oracle (sim/oracle.hpp), attached to the engine
  // and every rank's Matcher. Null — the default — keeps all scheduling
  // canonical; the explorer in src/mc/ supplies one to enumerate message
  // races (docs/CHECKING.md).
  sim::ScheduleOracle* oracle = nullptr;
};

struct RecvResult {
  std::size_t bytes = 0;
  int src = -1;
  int tag = -1;
};

// Handle for a non-blocking receive: completion flag plus result storage.
struct RecvHandle {
  std::shared_ptr<sim::Flag> done;
  std::shared_ptr<RecvResult> result;
};

// A shared-memory region owned by one socket of a node. Windows are the
// staging buffers of the hierarchical algorithms (DPML phase 1/4 targets).
class ShmWindow {
 public:
  ShmWindow(std::size_t bytes, int owner_socket, bool with_data)
      : size_(bytes), owner_socket_(owner_socket) {
    if (with_data) mem_.resize(bytes);
  }

  std::size_t size() const { return size_; }
  int owner_socket() const { return owner_socket_; }
  bool has_data() const { return !mem_.empty(); }
  MutBytes data() { return MutBytes{mem_.data(), mem_.size()}; }
  ConstBytes data() const { return ConstBytes{mem_.data(), mem_.size()}; }

 private:
  std::size_t size_;
  int owner_socket_;
  std::vector<std::byte> mem_;
};

// Per-node, per-collective-invocation shared state: windows, latches, flags.
// The first rank of the node to reach the collective initializes the slot
// (pure data setup, no simulated time); the last to release it frees it.
struct CollSlot {
  bool initialized = false;
  std::deque<ShmWindow> windows;
  std::deque<sim::Latch> latches;
  std::deque<sim::Flag> flags;
  int released = 0;
};

class Node {
 public:
  Node(Machine& m, int id);

  int id() const { return id_; }
  Machine& machine() { return machine_; }

  // Per-HCA (rail) NIC resources; single-HCA nodes have one of each.
  sim::FifoResource& tx(int hca = 0) { return tx_.at(static_cast<std::size_t>(hca)); }
  sim::FifoResource& rx(int hca = 0) { return rx_.at(static_cast<std::size_t>(hca)); }
  sim::FifoResource& mem() { return mem_; }
  int num_hcas() const { return static_cast<int>(tx_.size()); }

  // Shared collective state, keyed by (context << 32 | invocation seq).
  CollSlot& slot(std::int64_t key);
  // Called once per participating rank when done with the slot; the last of
  // `parties` callers erases it.
  void release_slot(std::int64_t key, int parties);
  std::size_t live_slots() const { return slots_.size(); }

 private:
  Machine& machine_;
  int id_;
  std::vector<sim::FifoResource> tx_;
  std::vector<sim::FifoResource> rx_;
  sim::FifoResource mem_;
  std::unordered_map<std::int64_t, CollSlot> slots_;
};

class Rank {
 public:
  Rank(Machine& m, int world_rank);

  Machine& machine() { return *machine_; }
  sim::Engine& engine();

  int world_rank() const { return world_rank_; }
  int node_id() const { return node_id_; }
  int local_rank() const { return local_rank_; }
  int socket() const { return socket_; }
  Node& node();

  // ---- Point-to-point ----
  // Destination/source are comm ranks within `comm`. Payload spans may be
  // empty (metadata-only). Blocking send returns when the local buffer is
  // reusable; blocking recv returns when the message has been delivered.
  sim::CoTask<void> send(const Comm& comm, int dst, int tag, std::size_t bytes,
                         ConstBytes data = {});
  sim::CoTask<RecvResult> recv(const Comm& comm, int src, int tag,
                               std::size_t capacity, MutBytes out = {});
  std::shared_ptr<sim::Flag> isend(const Comm& comm, int dst, int tag,
                                   std::size_t bytes, ConstBytes data = {});
  RecvHandle irecv(const Comm& comm, int src, int tag, std::size_t capacity,
                   MutBytes out = {});
  // Combined exchange (MPI_Sendrecv): non-blocking send + blocking recv.
  sim::CoTask<RecvResult> sendrecv(const Comm& comm, int dst, int send_tag,
                                   std::size_t send_bytes, int src,
                                   int recv_tag, std::size_t recv_capacity,
                                   ConstBytes send_data = {},
                                   MutBytes recv_out = {});

  // Non-blocking probe (MPI_Iprobe): true if a matching message is queued;
  // fills `info` without consuming the message.
  bool iprobe(const Comm& comm, int src, int tag, RecvResult* info = nullptr);
  // Blocking probe (MPI_Probe): waits until a matching message arrives.
  sim::CoTask<RecvResult> probe(const Comm& comm, int src, int tag);

  // ---- Compute ----
  sim::CoTask<void> compute(sim::Time t) { return busy(t); }
  // Charge the cost of combining `bytes` of reduction operands once.
  sim::CoTask<void> reduce_compute(std::size_t bytes);
  sim::Time reduce_cost(std::size_t bytes) const;

  // ---- Shared memory ----
  // Copy into / out of a node-shared window, charging copy costs (socket
  // aware) and the node memory pipe.
  sim::CoTask<void> shm_put(ShmWindow& w, std::size_t offset,
                            std::size_t bytes, ConstBytes src = {});
  sim::CoTask<void> shm_get(ShmWindow& w, std::size_t offset,
                            std::size_t bytes, MutBytes dst = {});
  // Signal a node-shared flag/latch, charging the shared-memory flag cost.
  sim::CoTask<void> signal(sim::Flag& f);
  sim::CoTask<void> signal(sim::Latch& l);

  // Per-(context) invocation counter used to key collective slots; every
  // rank of a node calls the same collective sequence on a context, so the
  // counter values agree across the node.
  std::int64_t next_coll_key(int context);

  Matcher& matcher() { return matcher_; }

 private:
  sim::CoTask<void> busy(sim::Time t);

  Machine* machine_;
  int world_rank_;
  int node_id_;
  int local_rank_;
  int socket_;
  Matcher matcher_;
  std::unordered_map<int, std::int64_t> coll_seq_;
};

class Machine {
 public:
  // Build a machine using the first `nodes` nodes of `cfg` with `ppn`
  // processes per node. Throws if the preset cannot host that shape.
  Machine(net::ClusterConfig cfg, int nodes, int ppn, RunOptions opt = {});

  sim::Engine& engine() { return engine_; }
  const net::ClusterConfig& config() const { return cfg_; }
  const net::FabricTopology& topology() const { return topo_; }
  const RunOptions& options() const { return opt_; }
  bool with_data() const { return opt_.with_data; }
  sim::DataMode data_mode() const { return opt_.data_mode; }
  // The plane owning in-flight payload storage (never null).
  sim::DataPlane& data_plane() { return *data_plane_; }

  int num_nodes() const { return nodes_used_; }
  int ppn() const { return ppn_; }
  int world_size() const { return nodes_used_ * ppn_; }

  Rank& rank(int world_rank);
  Node& node(int id);
  const Comm& world() const { return world_; }

  // Communicator of the j-th leader (of `num_leaders`) on every node.
  // Cached; contexts are unique per (num_leaders, j).
  const Comm& leader_comm(int leader_index, int num_leaders);

  // Arbitrary sub-communicator over the given world ranks (fresh context).
  const Comm& make_comm(std::vector<int> world_ranks);

  // MPI_Comm_split semantics over an existing communicator: members with
  // the same color form a new communicator, ordered by (key, old rank).
  // color < 0 (MPI_UNDEFINED) yields no membership. Deterministic: the
  // split for a given (parent, colors, keys) is computed once and cached by
  // call sequence, so every member receives the same Comm object.
  const Comm& split_comm(const Comm& parent,
                         const std::vector<int>& colors,
                         const std::vector<int>& keys, int my_color);

  int alloc_context() { return next_context_++; }

  // Socket hosting a given local rank (socket-major placement).
  int socket_of_local(int local_rank) const;

  // HCA (rail) a local rank injects through: rails are distributed across
  // sockets so that each socket uses its closest HCA (paper §4.3's
  // HCA-aware leader selection falls out of this mapping).
  int hca_of_local(int local_rank) const;

  // Leader-side cost of collecting contributions from locals [lo, hi)
  // (excluding the leader itself): per-contributor poll, socket aware.
  sim::Time collection_cost(int leader_local, int lo_local,
                            int hi_local) const;

  // Local rank index of leader j when using `num_leaders` leaders on a node
  // with this machine's ppn: leaders are spread across sockets the way the
  // paper's implementation does (socket-major round robin).
  int leader_local_rank(int leader_index, int num_leaders) const;
  // True if local rank `lr` is a leader under `num_leaders`.
  int leader_index_of_local(int lr, int num_leaders) const;

  // Spawn `main` for every rank and run the simulation to completion.
  void run(const std::function<sim::CoTask<void>(Rank&)>& main);

  // Wall-clock of the simulated run so far.
  sim::Time now() const { return engine_.now(); }

  // Aggregate communication counters for the run so far.
  const CommStats& comm_stats() const { return stats_; }

  // Per-collective attribution keyed "<kind>/<label>" (e.g.
  // "allreduce/dpml(l=8)"). Populated by core::run_collective while tracing
  // is enabled; empty otherwise.
  const std::map<std::string, CollectiveStats>& collective_stats() const {
    return coll_stats_;
  }
  void note_collective(const std::string& key, sim::Time elapsed) {
    if (!tracer_) return;
    CollectiveStats& cs = coll_stats_[key];
    cs.ops += 1;
    cs.rank_time += elapsed;
    if (fabric_ != nullptr) {
      cs.fabric_links = true;
      cs.oversubscription = cfg_.oversubscription;
      cs.max_link_util = std::max(
          cs.max_link_util, fabric_->max_avg_link_utilization(engine_.now()));
      cs.fabric_flows = fabric_->total_flows();
    }
  }

  // The perturbation runtime, or nullptr for a pristine machine. Charge
  // paths branch on this pointer; the null path is the exact pre-perturb
  // code.
  perturb::Perturbation* perturbation() const { return perturb_.get(); }

  // The semantics checker, or nullptr when RunOptions::check_level is off.
  check::Checker* checker() const { return checker_.get(); }

  // The flow-level fabric, or nullptr when RunOptions::fabric_level is
  // none (the classic LogGP transport path).
  fabric::FlowFabric* flow_fabric() const { return fabric_.get(); }

  // Per-collective arrival/exit imbalance, keyed like collective_stats().
  // Populated by core::run_collective while tracing or a perturbation is
  // active.
  const std::map<std::string, ImbalanceStats>& imbalance_stats() const {
    return imbalance_.stats();
  }
  void note_imbalance(const std::string& key, int parties, int rank,
                      sim::Time entry, sim::Time exit) {
    imbalance_.note(key, parties, rank, entry, exit);
  }

  // Optional tracing: enable before run(); spans accumulate in tracer().
  // Also labels the viewer lanes ("rank N (node X)") via tracer metadata.
  void enable_trace();
  bool tracing() const { return tracer_ != nullptr; }
  Tracer& tracer() { return *tracer_; }

  // Record a span (no-op unless tracing).
  void trace(const char* name, const char* category, int rank,
             sim::Time start, sim::Time end) {
    if (tracer_) tracer_->add(name, category, rank, start, end);
  }

  // Fraction of simulated time each NIC direction was busy, averaged over
  // nodes (0 when no time has elapsed).
  double avg_tx_utilization() const;
  double avg_rx_utilization() const;

 private:
  net::ClusterConfig cfg_;
  RunOptions opt_;
  int nodes_used_;
  int ppn_;
  sim::Engine engine_;
  std::unique_ptr<sim::DataPlane> data_plane_;
  net::FabricTopology topo_;
  std::deque<Node> nodes_;
  std::deque<Rank> ranks_;
  Comm world_;
  int next_context_ = 1;
  std::unordered_map<std::int64_t, Comm> leader_comms_;
  std::deque<Comm> extra_comms_;
  std::unordered_map<std::string, Comm> split_cache_;
  Comm null_comm_;
  CommStats stats_;
  std::map<std::string, CollectiveStats> coll_stats_;
  ImbalanceTracker imbalance_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<perturb::Perturbation> perturb_;
  std::unique_ptr<check::Checker> checker_;
  std::unique_ptr<fabric::FlowFabric> fabric_;

  // Per-leaf fat-tree uplink/downlink pools (empty when the core is
  // modelled as non-blocking, i.e. oversubscription == 1).
  std::deque<sim::FifoResource> leaf_up_;
  std::deque<sim::FifoResource> leaf_down_;
  double core_bw_ = 0.0;  // GB/s per leaf uplink pool

  friend class Rank;

  // Schedule the fabric traversal of a message whose head leaves the source
  // NIC at tx_start; `complete` runs with the RX completion time.
  // `extra_latency` is perturbation-injected path delay (0 when clean).
  void route(int src_node, int dst_node, int dst_hca, sim::Time tx_start,
             sim::Time occupancy, std::size_t bytes, sim::Time extra_latency,
             std::function<void(sim::Time)> complete);

  // Flow-fabric payload path (fabric_level == links): the NIC TX engine
  // charges only its per-message cost, the payload drains as a max-min fair
  // flow, and delivery adds path latency plus the RX per-message cost.
  // `complete` runs with the RX completion time.
  void fabric_send(int src_node, int src_hca, int dst_node, int dst_hca,
                   sim::Time t0, std::size_t bytes, sim::Time extra_latency,
                   std::function<void(sim::Time)> complete);

  // Hand an outgoing payload to the data plane: the payload plane copies it
  // into a pooled buffer, the time-only plane records the MsgMeta and
  // returns an empty vector.
  std::vector<std::byte> capture_payload(int src_world, std::size_t bytes,
                                         int dtype, sim::Time op_cost,
                                         ConstBytes data);

  // Transport implementation (machine.cpp).
  sim::CoTask<void> do_send(Rank& sender, int dst_world, int ctx, int tag,
                            std::size_t bytes, ConstBytes data);
  sim::CoTask<RecvResult> do_recv(Rank& receiver, int src_world, int ctx,
                                  int tag, std::size_t capacity, MutBytes out);
  sim::CoTask<void> do_shm_copy(Rank& r, ShmWindow& w, std::size_t offset,
                                std::size_t bytes, ConstBytes src, MutBytes dst,
                                bool is_put);
};

}  // namespace dpml::simmpi
