// Communicators.
//
// A Comm is an ordered group of world ranks plus a context id. The context
// id isolates message matching between communicators (as in MPI); the DPML
// algorithms run one inter-node allreduce per leader index concurrently,
// each on its own context.
#pragma once

#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace dpml::simmpi {

class Comm {
 public:
  Comm() = default;
  Comm(int context, std::vector<int> world_ranks)
      : context_(context), ranks_(std::move(world_ranks)) {
    for (int i = 0; i < static_cast<int>(ranks_.size()); ++i) {
      index_[ranks_[i]] = i;
    }
  }

  int context() const { return context_; }
  int size() const { return static_cast<int>(ranks_.size()); }

  // World rank of comm rank r.
  int world_rank(int r) const {
    DPML_CHECK(r >= 0 && r < size());
    return ranks_[r];
  }

  // Comm rank of a world rank; -1 if not a member.
  int rank_of_world(int w) const {
    auto it = index_.find(w);
    return it == index_.end() ? -1 : it->second;
  }

  bool contains(int w) const { return index_.count(w) != 0; }
  const std::vector<int>& ranks() const { return ranks_; }

 private:
  int context_ = 0;
  std::vector<int> ranks_;
  std::unordered_map<int, int> index_;
};

}  // namespace dpml::simmpi
