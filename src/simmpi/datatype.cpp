#include "simmpi/datatype.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace dpml::simmpi {

std::size_t dtype_size(Dtype dt) {
  switch (dt) {
    case Dtype::f32: return 4;
    case Dtype::f64: return 8;
    case Dtype::i32: return 4;
    case Dtype::i64: return 8;
    case Dtype::u8: return 1;
  }
  DPML_CHECK_MSG(false, "bad dtype");
  return 0;
}

const char* dtype_name(Dtype dt) {
  switch (dt) {
    case Dtype::f32: return "f32";
    case Dtype::f64: return "f64";
    case Dtype::i32: return "i32";
    case Dtype::i64: return "i64";
    case Dtype::u8: return "u8";
  }
  return "?";
}

const char* op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::sum: return "sum";
    case ReduceOp::prod: return "prod";
    case ReduceOp::min: return "min";
    case ReduceOp::max: return "max";
    case ReduceOp::band: return "band";
    case ReduceOp::bor: return "bor";
  }
  return "?";
}

namespace {

template <typename T>
void combine_typed(ReduceOp op, std::size_t count, std::byte* acc_raw,
                   const std::byte* in_raw) {
  // Elementwise combine through memcpy to respect aliasing rules.
  for (std::size_t i = 0; i < count; ++i) {
    T a;
    T b;
    std::memcpy(&a, acc_raw + i * sizeof(T), sizeof(T));
    std::memcpy(&b, in_raw + i * sizeof(T), sizeof(T));
    switch (op) {
      case ReduceOp::sum: a = a + b; break;
      case ReduceOp::prod: a = a * b; break;
      case ReduceOp::min: a = std::min(a, b); break;
      case ReduceOp::max: a = std::max(a, b); break;
      case ReduceOp::band:
        if constexpr (std::is_integral_v<T>) {
          a = a & b;
        } else {
          DPML_CHECK_MSG(false, "bitwise op on floating-point dtype");
        }
        break;
      case ReduceOp::bor:
        if constexpr (std::is_integral_v<T>) {
          a = a | b;
        } else {
          DPML_CHECK_MSG(false, "bitwise op on floating-point dtype");
        }
        break;
    }
    std::memcpy(acc_raw + i * sizeof(T), &a, sizeof(T));
  }
}

}  // namespace

void reduce_inplace(ReduceOp op, Dtype dt, std::size_t count, MutBytes acc,
                    ConstBytes in) {
  if (acc.empty() && in.empty()) return;  // metadata-only run
  const std::size_t bytes = count * dtype_size(dt);
  DPML_CHECK_MSG(acc.size() == bytes && in.size() == bytes,
                 "reduce_inplace span size mismatch");
  if (count == 0) return;
  switch (dt) {
    case Dtype::f32: combine_typed<float>(op, count, acc.data(), in.data()); break;
    case Dtype::f64: combine_typed<double>(op, count, acc.data(), in.data()); break;
    case Dtype::i32: combine_typed<std::int32_t>(op, count, acc.data(), in.data()); break;
    case Dtype::i64: combine_typed<std::int64_t>(op, count, acc.data(), in.data()); break;
    case Dtype::u8: combine_typed<std::uint8_t>(op, count, acc.data(), in.data()); break;
  }
}

void Op::apply(Dtype dt, std::size_t count, MutBytes acc, ConstBytes in) const {
  if (user_) {
    if (acc.empty() && in.empty()) return;
    user_(dt, count, acc, in);
    return;
  }
  reduce_inplace(builtin_, dt, count, acc, in);
}

void Op::apply_left(Dtype dt, std::size_t count, MutBytes acc,
                    ConstBytes in) const {
  if (commutative()) {
    apply(dt, count, acc, in);
    return;
  }
  if (acc.empty() && in.empty()) return;
  // tmp = in, tmp = tmp (op) acc, acc = tmp.
  std::vector<std::byte> tmp(in.begin(), in.end());
  user_(dt, count, MutBytes{tmp}, ConstBytes{acc.data(), acc.size()});
  DPML_CHECK(tmp.size() == acc.size());
  std::memcpy(acc.data(), tmp.data(), tmp.size());
}

std::string Op::name() const {
  return user_ ? "user" : op_name(builtin_);
}

}  // namespace dpml::simmpi
