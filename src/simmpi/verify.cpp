#include "simmpi/verify.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpml::simmpi {

namespace {

template <typename T>
void write_value(std::byte* dst, std::size_t i, T v) {
  std::memcpy(dst + i * sizeof(T), &v, sizeof(T));
}

}  // namespace

std::vector<std::byte> make_operand(Dtype dt, std::size_t count, int rank,
                                    ReduceOp op, std::uint64_t seed) {
  std::vector<std::byte> buf(count * dtype_size(dt));
  util::SplitMix64 rng(seed, static_cast<std::uint64_t>(rank));
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t h = rng.next_u64();
    std::int64_t v = 0;
    switch (op) {
      case ReduceOp::sum:
      case ReduceOp::min:
      case ReduceOp::max:
        v = static_cast<std::int64_t>(h % 17) - 8;
        break;
      case ReduceOp::prod:
        // Powers of two stay exact in floating point; keep products small.
        v = 1 + static_cast<std::int64_t>(h % 2);
        break;
      case ReduceOp::band:
      case ReduceOp::bor:
        v = static_cast<std::int64_t>(h % 256);
        break;
    }
    switch (dt) {
      case Dtype::f32: write_value<float>(buf.data(), i, static_cast<float>(v)); break;
      case Dtype::f64: write_value<double>(buf.data(), i, static_cast<double>(v)); break;
      case Dtype::i32: write_value<std::int32_t>(buf.data(), i, static_cast<std::int32_t>(v)); break;
      case Dtype::i64: write_value<std::int64_t>(buf.data(), i, v); break;
      case Dtype::u8:
        write_value<std::uint8_t>(buf.data(), i,
                                  static_cast<std::uint8_t>(v & 0x7f));
        break;
    }
  }
  return buf;
}

std::vector<std::byte> reference_allreduce(Dtype dt, std::size_t count,
                                           int nranks, ReduceOp op,
                                           std::uint64_t seed) {
  DPML_CHECK(nranks >= 1);
  std::vector<std::byte> acc = make_operand(dt, count, 0, op, seed);
  for (int r = 1; r < nranks; ++r) {
    const std::vector<std::byte> in = make_operand(dt, count, r, op, seed);
    reduce_inplace(op, dt, count, MutBytes{acc}, ConstBytes{in});
  }
  return acc;
}

}  // namespace dpml::simmpi
