// Message envelopes and tag matching.
//
// Each rank owns a Matcher with the usual MPI queues: unexpected messages
// and posted receives. Matching is by (context, source, tag) with wildcard
// support, in envelope arrival order — eager envelopes are delivered when
// the payload has fully arrived, rendezvous envelopes when the RTS control
// message arrives.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "sim/oracle.hpp"
#include "sim/pool.hpp"
#include "sim/sync.hpp"
#include "simmpi/datatype.hpp"

namespace dpml::simmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct PostedRecv;

struct Envelope {
  int ctx = 0;
  int src = 0;  // world rank of the sender
  int tag = 0;
  std::size_t bytes = 0;
  std::vector<std::byte> data;  // payload (empty in metadata-only runs)
  sim::Time recv_cost = 0;      // receiver-side overhead charged after match
  bool rendezvous = false;
  // simcheck annotation: the sender's reduction dtype at send time (a
  // simmpi::Dtype value), or -1 when unchecked / outside a reduction.
  int dtype = -1;
  // Rendezvous only: invoked at match time; sends CTS and schedules the
  // payload transfer, which eventually posts the receive's done flag.
  std::function<void(PostedRecv&)> on_match;
};

struct PostedRecv {
  int ctx = 0;
  int src = kAnySource;
  int tag = kAnyTag;
  std::size_t capacity = 0;
  MutBytes out{};
  sim::Flag* done = nullptr;
  // Filled at completion:
  std::size_t recv_bytes = 0;
  int recv_src = -1;
  int recv_tag = -1;
  sim::Time recv_cost = 0;
  bool truncated = false;
  int recv_dtype = -1;  // simcheck: the matched envelope's dtype annotation
};

class Matcher {
 public:
  // Post a receive; matches against the unexpected queue first.
  void post_recv(PostedRecv* pr);

  // Deliver an arriving envelope; matches against posted receives first.
  void deliver(Envelope env);

  std::size_t unexpected_count() const { return unexpected_.size(); }
  std::size_t posted_count() const { return posted_.size(); }

  // Probe support: first matching unexpected envelope, not consumed.
  const Envelope* peek(int ctx, int src, int tag) const;
  // One-shot notification on the next unexpected arrival (blocking probe).
  void watch_arrivals(sim::Flag* f) { watchers_.push_back(f); }

  // simcheck end-of-run inspection: leaked unexpected envelopes and
  // still-posted (never-matched) receives.
  const std::deque<Envelope>& unexpected() const { return unexpected_; }
  const std::deque<PostedRecv*>& posted() const { return posted_; }

  // Recycle consumed eager payload buffers through the engine's pool (set
  // by the owning Rank; unset matchers free buffers normally).
  void set_recycler(sim::BufferPool* pool) { recycle_ = pool; }

  // Model-checking seam (sim/oracle.hpp): wildcard posts report their
  // channel, and an MPI_ANY_SOURCE receive that could match several queued
  // sources becomes an explicit choice point. Null (the default) keeps the
  // canonical arrival-order scan byte-for-byte.
  void set_oracle(sim::ScheduleOracle* oracle, int world_rank) {
    oracle_ = oracle;
    mc_rank_ = world_rank;
  }

 private:
  static bool matches(const PostedRecv& pr, const Envelope& env) {
    return pr.ctx == env.ctx &&
           (pr.src == kAnySource || pr.src == env.src) &&
           (pr.tag == kAnyTag || pr.tag == env.tag);
  }

  // Complete `pr` with `env` (copy payload for eager, trigger rendezvous).
  void complete(PostedRecv& pr, Envelope& env);

  std::deque<Envelope> unexpected_;
  std::deque<PostedRecv*> posted_;
  std::vector<sim::Flag*> watchers_;
  sim::BufferPool* recycle_ = nullptr;
  sim::ScheduleOracle* oracle_ = nullptr;
  int mc_rank_ = -1;
};

}  // namespace dpml::simmpi
