// Execution tracing.
//
// When enabled on a Machine, the transport records a span for every charged
// activity (network messages, shared-memory copies, reductions, user-marked
// phases), attributed to the acting rank. Spans export to the Chrome trace
// event format (chrome://tracing, Perfetto) for visual inspection of
// algorithm phase structure — e.g. watching DPML's four phases overlap
// across leaders.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dpml::simmpi {

class Tracer {
 public:
  struct Span {
    std::string name;
    std::string category;
    int rank = 0;  // world rank (lane in the viewer)
    sim::Time start = 0;
    sim::Time end = 0;
  };

  void add(std::string name, std::string category, int rank, sim::Time start,
           sim::Time end) {
    if (end < start) end = start;
    spans_.push_back(Span{std::move(name), std::move(category), rank, start,
                          end});
  }

  // Open-span API: begin() pushes onto the rank's stack, end() pops the
  // innermost open span and commits it. simcheck's strict mode asserts
  // open_count() == 0 at finalize (every begin has an end).
  void begin(std::string name, std::string category, int rank,
             sim::Time start) {
    open_[rank].push_back(
        Span{std::move(name), std::move(category), rank, start, start});
  }
  // Returns false (and records nothing) when the rank has no open span.
  bool end(int rank, sim::Time end_time) {
    auto it = open_.find(rank);
    if (it == open_.end() || it->second.empty()) return false;
    Span s = std::move(it->second.back());
    it->second.pop_back();
    if (it->second.empty()) open_.erase(it);
    s.end = end_time < s.start ? s.start : end_time;
    spans_.push_back(std::move(s));
    return true;
  }
  std::size_t open_count() const {
    std::size_t n = 0;
    for (const auto& [rank, stack] : open_) n += stack.size();
    return n;
  }

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  void clear() { spans_.clear(); }

  // Viewer metadata: named lanes instead of bare pid/tid numbers. The
  // Machine labels every rank lane "rank N (node X)" when tracing is
  // enabled; both are emitted as Chrome 'M' (metadata) events.
  void set_process_name(std::string name) { process_name_ = std::move(name); }
  void set_thread_name(int tid, std::string name) {
    thread_names_[tid] = std::move(name);
  }
  const std::string& process_name() const { return process_name_; }
  const std::map<int, std::string>& thread_names() const {
    return thread_names_;
  }

  // Chrome trace event format: process_name/thread_name metadata events
  // followed by one complete ('X') event per span, with the world rank as
  // the thread id. Timestamps in microseconds.
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
  std::map<int, std::vector<Span>> open_;  // per-rank open-span stacks
  std::string process_name_;
  std::map<int, std::string> thread_names_;  // ordered: deterministic output
};

}  // namespace dpml::simmpi
