// Test-data generation and reference reductions.
//
// Operands are generated so that every supported reduction is *bit-exact*
// regardless of combination order: integer-valued floats with small
// magnitude (sums stay far below the mantissa limit; products are powers of
// two). This lets tests compare any algorithm's output byte-for-byte against
// a serial reference without floating-point tolerance games.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/datatype.hpp"

namespace dpml::simmpi {

// Deterministic operand for `rank`; values are chosen per-op so the global
// reduction is exactly representable (see file comment).
std::vector<std::byte> make_operand(Dtype dt, std::size_t count, int rank,
                                    ReduceOp op, std::uint64_t seed = 1);

// Serial reference: fold operands of ranks [0, nranks) in rank order.
std::vector<std::byte> reference_allreduce(Dtype dt, std::size_t count,
                                           int nranks, ReduceOp op,
                                           std::uint64_t seed = 1);

}  // namespace dpml::simmpi
