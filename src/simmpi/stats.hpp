// Per-run communication statistics.
//
// The Machine counts traffic as the transport charges it; benches and tests
// use the counters to reason about algorithm structure (e.g. recursive
// doubling sends ceil(lg p) messages per rank) and hardware pressure (NIC
// busy fraction under flat vs hierarchical designs — the §3 story in
// numbers).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "sim/time.hpp"

namespace dpml::simmpi {

// Per-(collective kind, algorithm label) attribution, populated by the
// core dispatcher while tracing is enabled. rank_time sums each
// participating rank's elapsed simulated time (ticks), so dividing by ops
// gives the average per-rank latency of that collective configuration.
struct CollectiveStats {
  std::uint64_t ops = 0;        // rank-level participations
  std::int64_t rank_time = 0;   // summed per-rank elapsed ticks
  // Fabric run metadata (fabric_level == links only): whether the flow-level
  // link model carried this collective's traffic, the cluster's declared
  // oversubscription factor, and the busiest link's time-averaged
  // utilization seen so far — benches emit these in their JSON output.
  bool fabric_links = false;
  double oversubscription = 1.0;
  double max_link_util = 0.0;
  std::uint64_t fabric_flows = 0;  // flows launched on the machine so far
};

// Per-(collective kind, algorithm label) arrival/departure imbalance, the
// measurement side of the perturbation subsystem: how unevenly ranks enter
// and leave a collective, and how much time early arrivers spend waiting
// for the last one. Populated by the core dispatcher whenever tracing or a
// perturbation is active; skews are per-op max - min over the participating
// ranks, aggregated across ops.
struct ImbalanceStats {
  std::uint64_t ops = 0;            // completed collective operations
  sim::Time entry_skew_total = 0;   // sum over ops of (max - min entry time)
  sim::Time entry_skew_max = 0;     // worst single-op entry skew
  sim::Time exit_skew_total = 0;    // sum over ops of (max - min exit time)
  sim::Time exit_skew_max = 0;      // worst single-op exit skew
  sim::Time wait_total = 0;         // sum over ranks of (max entry - entry)
};

// Groups per-rank entry/exit notes back into per-op records. A rank's n-th
// participation under a key is op n (SPMD: every participant calls the same
// collective sequence), so no global op id needs to be threaded through the
// algorithms; once `parties` ranks reported an op it folds into the
// aggregate ImbalanceStats for its key.
class ImbalanceTracker {
 public:
  void note(const std::string& key, int parties, int rank, sim::Time entry,
            sim::Time exit) {
    KeyState& ks = state_[key];
    const std::uint64_t op = ks.seq[rank]++;
    Open& o = ks.open[op];
    if (o.arrived == 0) {
      o.min_entry = o.max_entry = entry;
      o.min_exit = o.max_exit = exit;
    } else {
      o.min_entry = entry < o.min_entry ? entry : o.min_entry;
      o.max_entry = entry > o.max_entry ? entry : o.max_entry;
      o.min_exit = exit < o.min_exit ? exit : o.min_exit;
      o.max_exit = exit > o.max_exit ? exit : o.max_exit;
    }
    o.entry_sum += entry;
    if (++o.arrived < parties) return;
    ImbalanceStats& st = stats_[key];
    st.ops += 1;
    const sim::Time entry_skew = o.max_entry - o.min_entry;
    const sim::Time exit_skew = o.max_exit - o.min_exit;
    st.entry_skew_total += entry_skew;
    if (entry_skew > st.entry_skew_max) st.entry_skew_max = entry_skew;
    st.exit_skew_total += exit_skew;
    if (exit_skew > st.exit_skew_max) st.exit_skew_max = exit_skew;
    st.wait_total += parties * o.max_entry - o.entry_sum;
    ks.open.erase(op);
  }

  const std::map<std::string, ImbalanceStats>& stats() const { return stats_; }

 private:
  struct Open {
    int arrived = 0;
    sim::Time min_entry = 0, max_entry = 0;
    sim::Time min_exit = 0, max_exit = 0;
    sim::Time entry_sum = 0;
  };
  struct KeyState {
    std::unordered_map<int, std::uint64_t> seq;  // per-rank op counters
    std::map<std::uint64_t, Open> open;          // ops awaiting stragglers
  };
  std::map<std::string, ImbalanceStats> stats_;
  std::map<std::string, KeyState> state_;
};

struct CommStats {
  // Inter-node traffic.
  std::uint64_t net_messages = 0;     // payload messages handed to a NIC
  std::uint64_t net_bytes = 0;        // payload bytes over the fabric
  std::uint64_t rndv_handshakes = 0;  // rendezvous RTS/CTS exchanges
  // Intra-node traffic.
  std::uint64_t shm_messages = 0;  // intra-node p2p messages
  std::uint64_t shm_bytes = 0;     // p2p + window-copy bytes through shm
  std::uint64_t window_copies = 0;
  // Compute.
  std::uint64_t reduce_bytes = 0;  // operand bytes combined by host CPUs

  CommStats& operator+=(const CommStats& o) {
    net_messages += o.net_messages;
    net_bytes += o.net_bytes;
    rndv_handshakes += o.rndv_handshakes;
    shm_messages += o.shm_messages;
    shm_bytes += o.shm_bytes;
    window_copies += o.window_copies;
    reduce_bytes += o.reduce_bytes;
    return *this;
  }
};

}  // namespace dpml::simmpi
