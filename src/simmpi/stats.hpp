// Per-run communication statistics.
//
// The Machine counts traffic as the transport charges it; benches and tests
// use the counters to reason about algorithm structure (e.g. recursive
// doubling sends ceil(lg p) messages per rank) and hardware pressure (NIC
// busy fraction under flat vs hierarchical designs — the §3 story in
// numbers).
#pragma once

#include <cstdint>

namespace dpml::simmpi {

// Per-(collective kind, algorithm label) attribution, populated by the
// core dispatcher while tracing is enabled. rank_time sums each
// participating rank's elapsed simulated time (ticks), so dividing by ops
// gives the average per-rank latency of that collective configuration.
struct CollectiveStats {
  std::uint64_t ops = 0;        // rank-level participations
  std::int64_t rank_time = 0;   // summed per-rank elapsed ticks
};

struct CommStats {
  // Inter-node traffic.
  std::uint64_t net_messages = 0;     // payload messages handed to a NIC
  std::uint64_t net_bytes = 0;        // payload bytes over the fabric
  std::uint64_t rndv_handshakes = 0;  // rendezvous RTS/CTS exchanges
  // Intra-node traffic.
  std::uint64_t shm_messages = 0;  // intra-node p2p messages
  std::uint64_t shm_bytes = 0;     // p2p + window-copy bytes through shm
  std::uint64_t window_copies = 0;
  // Compute.
  std::uint64_t reduce_bytes = 0;  // operand bytes combined by host CPUs

  CommStats& operator+=(const CommStats& o) {
    net_messages += o.net_messages;
    net_bytes += o.net_bytes;
    rndv_handshakes += o.rndv_handshakes;
    shm_messages += o.shm_messages;
    shm_bytes += o.shm_bytes;
    window_copies += o.window_copies;
    reduce_bytes += o.reduce_bytes;
    return *this;
  }
};

}  // namespace dpml::simmpi
