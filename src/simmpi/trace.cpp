#include "simmpi/trace.hpp"

namespace dpml::simmpi {

namespace {
void write_escaped(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
}
}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  if (!process_name_.empty()) {
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
          "{\"name\":\"";
    write_escaped(os, process_name_);
    os << "\"}}";
    first = false;
  }
  for (const auto& [tid, name] : thread_names_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
  }
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    write_escaped(os, s.name);
    os << "\",\"cat\":\"";
    write_escaped(os, s.category);
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.rank
       << ",\"ts\":" << sim::to_us(s.start)
       << ",\"dur\":" << sim::to_us(s.end - s.start) << "}";
  }
  os << "\n]}\n";
}

}  // namespace dpml::simmpi
