#include "simmpi/message.hpp"

#include <cstring>

#include "util/error.hpp"

namespace dpml::simmpi {

void Matcher::complete(PostedRecv& pr, Envelope& env) {
  pr.recv_bytes = env.bytes;
  pr.recv_src = env.src;
  pr.recv_tag = env.tag;
  pr.recv_cost = env.recv_cost;
  pr.truncated = env.bytes > pr.capacity;
  pr.recv_dtype = env.dtype;
  if (env.rendezvous) {
    // Hand control to the sender-side continuation: it sends CTS, moves the
    // payload, and posts pr.done at delivery time.
    DPML_CHECK(env.on_match != nullptr);
    env.on_match(pr);
    return;
  }
  if (!pr.truncated && !env.data.empty() && !pr.out.empty()) {
    std::memcpy(pr.out.data(), env.data.data(), env.data.size());
  }
  // The payload buffer is consumed here; hand its storage back to the
  // engine's pool for the next message.
  if (recycle_ != nullptr) recycle_->release(std::move(env.data));
  DPML_CHECK(pr.done != nullptr);
  pr.done->post();
}

void Matcher::post_recv(PostedRecv* pr) {
  DPML_CHECK(pr != nullptr && pr->done != nullptr);
  if (oracle_ != nullptr) {
    if (pr->src == kAnySource || pr->tag == kAnyTag) {
      oracle_->note_wildcard_recv(mc_rank_, pr->ctx);
    }
    if (pr->src == kAnySource) {
      // Unexpected-queue choice point: the first matching envelope of each
      // distinct source is eligible (per-source FIFO order is preserved);
      // with two or more sources queued, the match is a real MPI race.
      std::vector<std::deque<Envelope>::iterator> firsts;
      for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
        if (!matches(*pr, *it)) continue;
        bool seen = false;
        for (const auto& f : firsts) seen = seen || f->src == it->src;
        if (!seen) firsts.push_back(it);
      }
      if (!firsts.empty()) {
        std::size_t pick = 0;
        if (firsts.size() >= 2) {
          std::vector<sim::ChoiceAlt> alts;
          alts.reserve(firsts.size());
          for (const auto& f : firsts) {
            alts.push_back({mc_rank_, f->ctx, f->tag, f->src});
          }
          pick = oracle_->choose(sim::ChoiceKind::match, alts);
          DPML_CHECK_MSG(pick < firsts.size(),
                         "schedule oracle match choice out of range");
        }
        auto it = firsts[pick];
        Envelope env = std::move(*it);
        unexpected_.erase(it);
        complete(*pr, env);
        return;
      }
      posted_.push_back(pr);
      return;
    }
  }
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(*pr, *it)) {
      Envelope env = std::move(*it);
      unexpected_.erase(it);
      complete(*pr, env);
      return;
    }
  }
  posted_.push_back(pr);
}

void Matcher::deliver(Envelope env) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(**it, env)) {
      PostedRecv* pr = *it;
      posted_.erase(it);
      complete(*pr, env);
      return;
    }
  }
  unexpected_.push_back(std::move(env));
  for (sim::Flag* f : watchers_) f->post();
  watchers_.clear();
}

const Envelope* Matcher::peek(int ctx, int src, int tag) const {
  PostedRecv probe;
  probe.ctx = ctx;
  probe.src = src;
  probe.tag = tag;
  for (const Envelope& env : unexpected_) {
    if (matches(probe, env)) return &env;
  }
  return nullptr;
}

}  // namespace dpml::simmpi
