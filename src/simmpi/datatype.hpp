// Reduction datatypes and operators.
//
// The simulated runtime moves real bytes, so reductions are verifiable
// bit-for-bit. A small fixed set of datatypes covers everything the paper's
// workloads use (MPI_FLOAT for the microbenchmarks, MPI_DOUBLE for HPCG
// DDOT, integers for miniAMR refinement flags), plus a user-defined-op hook.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace dpml::simmpi {

using ConstBytes = std::span<const std::byte>;
using MutBytes = std::span<std::byte>;

enum class Dtype : std::uint8_t { f32, f64, i32, i64, u8 };

std::size_t dtype_size(Dtype dt);
const char* dtype_name(Dtype dt);

enum class ReduceOp : std::uint8_t { sum, prod, min, max, band, bor };

const char* op_name(ReduceOp op);

// Elementwise acc = acc (op) in, over count elements of dtype dt.
// Both spans may be empty (metadata-only simulation) — then this is a no-op.
// If non-empty, both must hold exactly count * dtype_size(dt) bytes.
void reduce_inplace(ReduceOp op, Dtype dt, std::size_t count, MutBytes acc,
                    ConstBytes in);

// User-defined reduction: acc = f(acc, in) elementwise on raw bytes.
using UserOpFn =
    std::function<void(Dtype, std::size_t count, MutBytes acc, ConstBytes in)>;

// An operator handle: either a builtin ReduceOp or a user function.
// Builtin ops on band/bor over floating types throw.
//
// MPI semantics: every reduction op is assumed associative; user ops may
// additionally be declared non-commutative (MPI_Op_create's commute flag).
// For non-commutative ops the collectives must fold operands in ascending
// comm-rank order — algorithms that cannot preserve that order fall back to
// ones that can, exactly as real MPI libraries do.
class Op {
 public:
  Op(ReduceOp builtin) : builtin_(builtin) {}  // NOLINT: implicit by design
  explicit Op(UserOpFn fn, bool commutative = true)
      : user_(std::move(fn)), commutative_(commutative) {}

  bool is_user() const { return static_cast<bool>(user_); }
  ReduceOp builtin() const { return builtin_; }
  // All builtin ops are commutative; user ops declare it at construction.
  bool commutative() const { return !user_ || commutative_; }

  // acc = acc (op) in.
  void apply(Dtype dt, std::size_t count, MutBytes acc, ConstBytes in) const;
  // acc = in (op) acc — the mirrored application an algorithm needs when the
  // incoming operand covers ranks *preceding* the accumulator's in comm-rank
  // order. For commutative ops this is exactly apply(); for non-commutative
  // user ops it stages `in` into a temporary so the left/right roles are
  // preserved bit-for-bit.
  void apply_left(Dtype dt, std::size_t count, MutBytes acc,
                  ConstBytes in) const;
  std::string name() const;

 private:
  ReduceOp builtin_ = ReduceOp::sum;
  UserOpFn user_{};
  bool commutative_ = true;
};

}  // namespace dpml::simmpi
