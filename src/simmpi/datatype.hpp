// Reduction datatypes and operators.
//
// The simulated runtime moves real bytes, so reductions are verifiable
// bit-for-bit. A small fixed set of datatypes covers everything the paper's
// workloads use (MPI_FLOAT for the microbenchmarks, MPI_DOUBLE for HPCG
// DDOT, integers for miniAMR refinement flags), plus a user-defined-op hook.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace dpml::simmpi {

using ConstBytes = std::span<const std::byte>;
using MutBytes = std::span<std::byte>;

enum class Dtype : std::uint8_t { f32, f64, i32, i64, u8 };

std::size_t dtype_size(Dtype dt);
const char* dtype_name(Dtype dt);

enum class ReduceOp : std::uint8_t { sum, prod, min, max, band, bor };

const char* op_name(ReduceOp op);

// Elementwise acc = acc (op) in, over count elements of dtype dt.
// Both spans may be empty (metadata-only simulation) — then this is a no-op.
// If non-empty, both must hold exactly count * dtype_size(dt) bytes.
void reduce_inplace(ReduceOp op, Dtype dt, std::size_t count, MutBytes acc,
                    ConstBytes in);

// User-defined reduction: acc = f(acc, in) elementwise on raw bytes.
using UserOpFn =
    std::function<void(Dtype, std::size_t count, MutBytes acc, ConstBytes in)>;

// An operator handle: either a builtin ReduceOp or a user function.
// Builtin ops on band/bor over floating types throw.
class Op {
 public:
  Op(ReduceOp builtin) : builtin_(builtin) {}  // NOLINT: implicit by design
  explicit Op(UserOpFn fn) : user_(std::move(fn)) {}

  bool is_user() const { return static_cast<bool>(user_); }
  ReduceOp builtin() const { return builtin_; }

  void apply(Dtype dt, std::size_t count, MutBytes acc, ConstBytes in) const;
  std::string name() const;

 private:
  ReduceOp builtin_ = ReduceOp::sum;
  UserOpFn user_{};
};

}  // namespace dpml::simmpi
