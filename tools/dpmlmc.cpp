// dpmlmc — exhaustive message-interleaving verification.
//
// Runs every registered algorithm × collective kind at small rank counts
// under the DPOR-style schedule explorer (src/mc/): each non-equivalent
// message-matching order executes under simcheck strict with a
// non-commutative affine reduction, so a schedule-sensitive bug (wrong fold
// order, wait-cycle deadlock) surfaces as a replayable counterexample trace
// for `dpmlsim --mc-replay`. See docs/CHECKING.md for the state-space
// model, independence relation, and budgets.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "mc/explore.hpp"
#include "mc/probes.hpp"
#include "net/cluster.hpp"
#include "util/args.hpp"

namespace {

using dpml::coll::CollKind;
using dpml::coll::CollRegistry;

void usage() {
  std::printf(
      "dpmlmc — DPOR-style schedule exploration under simcheck strict\n"
      "\n"
      "usage: dpmlmc [options]\n"
      "  --np-min N      smallest rank count to explore (default 2)\n"
      "  --np-max N      largest rank count to explore (default 4)\n"
      "  --kind K        restrict to one collective kind\n"
      "  --algo A        restrict to one algorithm name\n"
      "  --count N       per-rank element count (default 16)\n"
      "  --dtype T       i32 or i64 (default i32)\n"
      "  --cluster NAME  cluster preset (default test)\n"
      "  --leaders N     CollSpec leaders (default 2)\n"
      "  --schedules N   per-config schedule budget (default 4096)\n"
      "  --ms N          per-config wall-clock budget, ms (default 10000)\n"
      "  --probe         include the mc-probe-* planted-bug algorithms\n"
      "                  (mc-probe-arrival MUST fail; finding its bug is the\n"
      "                  expected outcome)\n"
      "  --trace-dir D   where counterexample traces are written (default .)\n");
}

// Rank-count shapes that mix intra- and inter-node traffic where possible.
void shape_for(int np, int* nodes, int* ppn) {
  if (np % 2 == 0 && np >= 2) {
    *nodes = np / 2;
    *ppn = 2;
  } else {
    *nodes = np;
    *ppn = 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  dpml::util::Args args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }
  const int np_min = static_cast<int>(args.get_int("np-min", 2));
  const int np_max = static_cast<int>(args.get_int("np-max", 4));
  const std::string only_kind = args.get("kind", "");
  const std::string only_algo = args.get("algo", "");
  const std::string trace_dir = args.get("trace-dir", ".");
  {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) {
      std::fprintf(stderr, "dpmlmc: cannot create --trace-dir '%s': %s\n",
                   trace_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  const bool probe = args.get_bool("probe", false);

  dpml::mc::McConfig base;
  base.cluster = args.get("cluster", "test");
  base.count = static_cast<std::size_t>(args.get_int("count", 16));
  base.dt = args.get("dtype", "i32") == "i64" ? dpml::simmpi::Dtype::i64
                                              : dpml::simmpi::Dtype::i32;
  base.leaders = static_cast<int>(args.get_int("leaders", 2));

  dpml::mc::McBudget budget;
  budget.max_schedules =
      static_cast<std::uint64_t>(args.get_int("schedules", 4096));
  budget.max_millis = static_cast<std::uint64_t>(args.get_int("ms", 10000));

  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "dpmlmc: unknown flag --%s (see --help)\n",
                 key.c_str());
    return 2;
  }

  try {
    dpml::coll::ensure_builtin_collectives();
    if (probe) dpml::mc::ensure_probe_algorithms();
    const dpml::net::ClusterConfig cluster =
        dpml::net::cluster_by_name(base.cluster);

    int failures = 0;
    int configs = 0;
    std::uint64_t total_schedules = 0;
    std::uint64_t total_pruned = 0;
    std::uint64_t total_branches = 0;
    bool probe_bug_found = false;

    for (int np = np_min; np <= np_max; ++np) {
      for (const CollKind kind : dpml::coll::kAllCollKinds) {
        if (!only_kind.empty() &&
            only_kind != dpml::coll::coll_kind_name(kind)) {
          continue;
        }
        for (const auto* d : CollRegistry::instance().list(kind)) {
          if (!only_algo.empty() && only_algo != d->name) continue;
          const bool is_probe = d->name.rfind("mc-probe-", 0) == 0;
          if (is_probe && !probe) continue;
          if (np < d->caps.min_comm_size) continue;
          if (d->caps.needs_fabric && !cluster.has_sharp()) continue;

          dpml::mc::McConfig cfg = base;
          cfg.kind = kind;
          cfg.algo = d->name;
          shape_for(np, &cfg.nodes, &cfg.ppn);
          const bool rooted =
              kind == CollKind::reduce || kind == CollKind::bcast ||
              kind == CollKind::gather || kind == CollKind::scatter;
          cfg.root = rooted && np > 1 ? 1 : 0;

          ++configs;
          const dpml::mc::McOutcome out = dpml::mc::explore(cfg, budget);
          total_schedules += out.stats.schedules;
          total_pruned += out.stats.pruned;
          total_branches += out.stats.branches;

          const bool expect_fail = d->name == "mc-probe-arrival";
          char stats_buf[160];
          std::snprintf(stats_buf, sizeof(stats_buf),
                        "%llu schedules, %llu choice-points, %.1f%% pruned, "
                        "frontier %llu%s",
                        static_cast<unsigned long long>(out.stats.schedules),
                        static_cast<unsigned long long>(
                            out.stats.choice_points),
                        out.stats.pruned_pct(),
                        static_cast<unsigned long long>(
                            out.stats.max_frontier),
                        out.stats.budget_exhausted ? ", budget hit" : "");
          if (out.ok) {
            if (expect_fail) {
              std::printf("[FAIL] %s: planted bug NOT detected (%s)\n",
                          cfg.label().c_str(), stats_buf);
              ++failures;
            } else {
              std::printf("[ ok ] %s: %s\n", cfg.label().c_str(), stats_buf);
            }
            continue;
          }
          const std::string path = trace_dir + "/mc-" +
                                   dpml::coll::coll_kind_name(kind) + "-" +
                                   d->name + "-np" + std::to_string(np) +
                                   ".json";
          dpml::mc::save_trace(*out.counterexample, path);
          if (expect_fail) {
            probe_bug_found = true;
            std::printf(
                "[ ok ] %s: planted bug detected (%s; %s counterexample, "
                "%zu choices) -> %s\n",
                cfg.label().c_str(), stats_buf,
                out.counterexample->failure_type.c_str(),
                out.counterexample->choices.size(), path.c_str());
          } else {
            std::printf("[FAIL] %s: %s counterexample after %s -> %s\n",
                        cfg.label().c_str(),
                        out.counterexample->failure_type.c_str(), stats_buf,
                        path.c_str());
            ++failures;
          }
        }
      }
    }

    const double pct =
        total_pruned + total_branches > 0
            ? 100.0 * static_cast<double>(total_pruned) /
                  static_cast<double>(total_pruned + total_branches)
            : 0.0;
    std::printf(
        "%d config(s), %llu schedule(s) executed, %.1f%% of naive branches "
        "pruned, %d failure(s)\n",
        configs, static_cast<unsigned long long>(total_schedules), pct,
        failures);
    if (probe && !probe_bug_found) {
      std::fprintf(stderr,
                   "dpmlmc: --probe ran but mc-probe-arrival's planted bug "
                   "was never detected\n");
      return 1;
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpmlmc: %s\n", e.what());
    return 1;
  }
}
