#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dpml::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Replace the contents of comments and string/char literals with spaces so
// the rule scanners only ever see code. Newlines are preserved (line numbers
// stay valid); everything else inside a masked region becomes ' '.
std::string mask_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class St { code, line_comment, block_comment, str, chr, raw };
  St st = St::code;
  std::string raw_delim;  // ")delim" terminator of the active raw string
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::code:
        if (c == '/' && n == '/') {
          st = St::line_comment;
          out[i] = ' ';
        } else if (c == '/' && n == '*') {
          st = St::block_comment;
          out[i] = ' ';
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || !ident_char(in[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t open = in.find('(', i + 2);
          if (open == std::string::npos) break;  // malformed; give up
          raw_delim = ")" + in.substr(i + 2, open - (i + 2)) + "\"";
          for (std::size_t j = i; j <= open; ++j) {
            if (out[j] != '\n') out[j] = ' ';
          }
          i = open;
          st = St::raw;
        } else if (c == '"') {
          st = St::str;
        } else if (c == '\'' && !(i > 0 && ident_char(in[i - 1]))) {
          // Skip digit separators (1'000'000): a quote straight after an
          // identifier/digit character is not a char literal.
          st = St::chr;
        }
        break;
      case St::line_comment:
        if (c == '\n') {
          st = St::code;
        } else {
          out[i] = ' ';
        }
        break;
      case St::block_comment:
        if (c == '*' && n == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::str:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::chr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\0' && n != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::raw:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          st = St::code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

std::vector<std::size_t> line_starts(const std::string& s) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

// Suppression comments, parsed from the RAW text (they live in comments).
struct Suppressions {
  std::set<std::string> file_wide;
  std::map<int, std::set<std::string>> by_line;

  bool allows(const std::string& rule, int line) const {
    auto hit = [&](const std::set<std::string>& s) {
      return s.count("all") != 0 || s.count(rule) != 0;
    };
    if (hit(file_wide)) return true;
    for (int l : {line, line - 1}) {
      auto it = by_line.find(l);
      if (it != by_line.end() && hit(it->second)) return true;
    }
    return false;
  }
};

Suppressions parse_suppressions(const std::string& raw) {
  Suppressions sup;
  std::istringstream is(raw);
  std::string line;
  int ln = 0;
  while (std::getline(is, line)) {
    ++ln;
    std::size_t pos = 0;
    while ((pos = line.find("dpmllint:", pos)) != std::string::npos) {
      std::size_t p = pos + 9;
      while (p < line.size() && line[p] == ' ') ++p;
      bool file_wide = false;
      if (line.compare(p, 11, "allow-file(") == 0) {
        file_wide = true;
        p += 11;
      } else if (line.compare(p, 6, "allow(") == 0) {
        p += 6;
      } else {
        pos += 9;
        continue;
      }
      const std::size_t close = line.find(')', p);
      if (close != std::string::npos) {
        const std::string rule = line.substr(p, close - p);
        if (file_wide) {
          sup.file_wide.insert(rule);
        } else {
          sup.by_line[ln].insert(rule);
        }
      }
      pos = p;
    }
  }
  return sup;
}

// Position of the next identifier-boundary occurrence of `word` at or after
// `from` in `s`, or npos.
std::size_t find_token(const std::string& s, const std::string& word,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

bool contains_token(const std::string& s, const std::string& word) {
  return find_token(s, word, 0) != std::string::npos;
}

std::size_t skip_ws(const std::string& s, std::size_t p) {
  while (p < s.size() &&
         std::isspace(static_cast<unsigned char>(s[p])) != 0) {
    ++p;
  }
  return p;
}

// Index just past the delimiter that matches s[open] ('(' / '[' / '{' / '<'),
// or npos if unbalanced. Angle matching is heuristic (treats every '>' as a
// closer), which is fine for the declaration contexts we scan.
std::size_t match_close(const std::string& s, std::size_t open) {
  const char oc = s[open];
  const char cc = oc == '(' ? ')' : oc == '[' ? ']' : oc == '{' ? '}' : '>';
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == oc) {
      ++depth;
    } else if (s[i] == cc) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: raw-random / wall-clock
// ---------------------------------------------------------------------------

struct BannedToken {
  const char* token;
  bool needs_call;  // must be followed by '(' (function-style tokens only)
  const char* rule;
  const char* hint;
};

constexpr BannedToken kBanned[] = {
    {"rand", true, "raw-random", "use util::SplitMix64 (src/util/rng)"},
    {"srand", true, "raw-random", "use util::SplitMix64 (src/util/rng)"},
    {"drand48", true, "raw-random", "use util::SplitMix64 (src/util/rng)"},
    {"lrand48", true, "raw-random", "use util::SplitMix64 (src/util/rng)"},
    {"random_device", false, "raw-random",
     "nondeterministic seed source; derive streams from the run seed"},
    {"mt19937", false, "raw-random",
     "use util::SplitMix64 so (seed, stream) fully determines draws"},
    {"mt19937_64", false, "raw-random",
     "use util::SplitMix64 so (seed, stream) fully determines draws"},
    {"default_random_engine", false, "raw-random",
     "use util::SplitMix64 so (seed, stream) fully determines draws"},
    {"time", true, "wall-clock", "simulated code must use Engine::now()"},
    {"clock", true, "wall-clock", "simulated code must use Engine::now()"},
    {"gettimeofday", true, "wall-clock",
     "simulated code must use Engine::now()"},
    {"clock_gettime", true, "wall-clock",
     "simulated code must use Engine::now()"},
    {"system_clock", false, "wall-clock",
     "simulated code must use Engine::now()"},
    {"steady_clock", false, "wall-clock",
     "simulated code must use Engine::now()"},
    {"high_resolution_clock", false, "wall-clock",
     "simulated code must use Engine::now()"},
};

void scan_banned_tokens(const std::string& file, const std::string& masked,
                        const std::vector<std::size_t>& starts,
                        std::vector<Finding>& out) {
  // util/rng is the one sanctioned home for randomness primitives.
  const bool is_rng = file.find("util/rng") != std::string::npos;
  for (const BannedToken& b : kBanned) {
    if (is_rng && std::string(b.rule) == "raw-random") continue;
    std::size_t pos = 0;
    while ((pos = find_token(masked, b.token, pos)) != std::string::npos) {
      const std::size_t after = skip_ws(masked, pos + std::string(b.token).size());
      const bool is_call = after < masked.size() && masked[after] == '(';
      // Member access (obj.time(...)) is some other API, not libc.
      const bool member =
          pos > 0 && (masked[pos - 1] == '.' ||
                      (pos > 1 && masked[pos - 2] == '-' &&
                       masked[pos - 1] == '>'));
      if ((!b.needs_call || is_call) && !member) {
        out.push_back({file, line_of(starts, pos), b.rule,
                       std::string(b.token) + ": " + b.hint});
      }
      pos += std::string(b.token).size();
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------------

// Names declared in this file with an unordered container type, e.g.
//   std::unordered_map<int, Comm> leader_comms_;
std::set<std::string> unordered_decls(const std::string& masked) {
  std::set<std::string> names;
  for (const char* kw : {"unordered_map", "unordered_multimap",
                         "unordered_set", "unordered_multiset"}) {
    std::size_t pos = 0;
    while ((pos = find_token(masked, kw, pos)) != std::string::npos) {
      std::size_t p = skip_ws(masked, pos + std::string(kw).size());
      pos = p;
      if (p >= masked.size() || masked[p] != '<') continue;
      p = match_close(masked, p);
      if (p == std::string::npos) continue;
      p = skip_ws(masked, p);
      // Skip refs/pointers in "const unordered_map<...>& x".
      while (p < masked.size() && (masked[p] == '&' || masked[p] == '*')) {
        p = skip_ws(masked, p + 1);
      }
      std::size_t q = p;
      while (q < masked.size() && ident_char(masked[q])) ++q;
      if (q > p) names.insert(masked.substr(p, q - p));
    }
  }
  return names;
}

void scan_unordered_iteration(const std::string& file,
                              const std::string& masked,
                              const std::vector<std::size_t>& starts,
                              std::vector<Finding>& out) {
  const std::set<std::string> decls = unordered_decls(masked);
  if (decls.empty()) return;
  std::size_t pos = 0;
  while ((pos = find_token(masked, "for", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 3;
    std::size_t p = skip_ws(masked, pos);
    if (p >= masked.size() || masked[p] != '(') continue;
    const std::size_t close = match_close(masked, p);
    if (close == std::string::npos) continue;
    const std::string head = masked.substr(p + 1, close - p - 2);
    // Range-for: find a top-level ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::string range = head.substr(colon + 1);
    // Trim and unwrap "this->NAME" / "NAME".
    std::size_t b = 0, e = range.size();
    while (b < e && std::isspace(static_cast<unsigned char>(range[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(range[e - 1])) != 0) --e;
    range = range.substr(b, e - b);
    if (range.compare(0, 6, "this->") == 0) range = range.substr(6);
    const bool plain = !range.empty() &&
                       std::all_of(range.begin(), range.end(), ident_char);
    if (plain && decls.count(range) != 0) {
      out.push_back(
          {file, line_of(starts, start), "unordered-iteration",
           "range-for over unordered container '" + range +
               "': iteration order is implementation-defined and must not "
               "reach simulated-time decisions; use std::map or sort first"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: coro-ref-capture
// ---------------------------------------------------------------------------

// A '[' opens a lambda introducer when what precedes it cannot be an array
// subscript or attribute: after an identifier, ')' or ']' it is a subscript;
// '[[' is an attribute.
bool lambda_introducer_at(const std::string& s, std::size_t pos) {
  if (pos + 1 < s.size() && s[pos + 1] == '[') return false;  // [[attr]]
  if (pos > 0 && s[pos - 1] == '[') return false;
  std::size_t p = pos;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(s[p - 1])) != 0) {
    --p;
  }
  if (p == 0) return true;
  const char prev = s[p - 1];
  if (prev == ')' || prev == ']') return false;
  if (!ident_char(prev)) return true;
  // Identifier before '[': subscript, unless it is a keyword like return.
  std::size_t q = p;
  while (q > 0 && ident_char(s[q - 1])) --q;
  const std::string word = s.substr(q, p - q);
  return word == "return" || word == "co_return" || word == "co_await" ||
         word == "co_yield" || word == "case";
}

// True if the capture list text (between '[' and its ']') contains a
// by-reference capture: '&' at the start of a capture item.
bool has_ref_capture(const std::string& caps) {
  bool item_start = true;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const char c = caps[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (item_start && c == '&') return true;
    item_start = (c == ',');
  }
  return false;
}

void scan_coro_ref_capture(const std::string& file, const std::string& masked,
                           const std::vector<std::size_t>& starts,
                           std::vector<Finding>& out) {
  if (!contains_token(masked, "co_await") &&
      !contains_token(masked, "co_yield")) {
    return;
  }
  std::size_t pos = 0;
  while ((pos = masked.find('[', pos)) != std::string::npos) {
    const std::size_t open = pos;
    ++pos;
    if (!lambda_introducer_at(masked, open)) continue;
    const std::size_t caps_end = match_close(masked, open);
    if (caps_end == std::string::npos) continue;
    const std::string caps = masked.substr(open + 1, caps_end - open - 2);
    if (!has_ref_capture(caps)) continue;
    // Walk forward over (params), specifiers and the trailing return type to
    // the body's '{'. Bail at statement boundaries — then it was not a
    // lambda after all.
    std::size_t p = skip_ws(masked, caps_end);
    if (p < masked.size() && masked[p] == '(') {
      p = match_close(masked, p);
      if (p == std::string::npos) continue;
    }
    while (p < masked.size() && masked[p] != '{' && masked[p] != ';' &&
           masked[p] != ')' && masked[p] != ',') {
      ++p;
    }
    if (p >= masked.size() || masked[p] != '{') continue;
    const std::size_t body_end = match_close(masked, p);
    if (body_end == std::string::npos) continue;
    const std::string body = masked.substr(p, body_end - p);
    if (contains_token(body, "co_await") || contains_token(body, "co_yield")) {
      out.push_back(
          {file, line_of(starts, open), "coro-ref-capture",
           "lambda coroutine captures by reference; the frame suspends at "
           "co_await and can outlive every captured object — capture by "
           "value or pass state through parameters"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: await-temporary
// ---------------------------------------------------------------------------

// A braced-init-list argument inside a co_await full expression materialises
// a temporary that must live across the suspension. The toolchain this repo
// pins (gcc 12) miscompiles the destruction of such extra non-trivially-
// destructible temporaries: the frame slot is torn down early, reused for
// other locals, and torn down again when the full expression ends — observed
// as munmap_chunk()/bad-free at the end of the awaiting statement. Bind the
// value to a named local before the co_await instead. Empty `{}` braces are
// tolerated: they conventionally denote default spans and carry no state.
void scan_await_temporary(const std::string& file, const std::string& masked,
                          const std::vector<std::size_t>& starts,
                          std::vector<Finding>& out) {
  std::size_t pos = 0;
  while ((pos = find_token(masked, "co_await", pos)) != std::string::npos) {
    const std::size_t kw = pos;
    pos += 8;
    // Walk the awaited expression to its end: ';', or a ')' / '}' closing a
    // scope the co_await itself did not open.
    int depth = 0;
    for (std::size_t i = kw + 8; i < masked.size(); ++i) {
      const char c = masked[i];
      if (c == '(' || c == '[') {
        ++depth;
        continue;
      }
      if (c == ')' || c == ']') {
        if (depth == 0) break;
        --depth;
        continue;
      }
      if (c == ';' && depth == 0) break;
      if (c != '{') continue;
      if (depth == 0) break;  // a block, not an argument: statement over
      // An argument-position brace follows '(' or ','; anything else is a
      // lambda body or similar — skip over it wholesale (nested co_awaits
      // are found by their own keyword).
      std::size_t p = i;
      while (p > kw &&
             std::isspace(static_cast<unsigned char>(masked[p - 1])) != 0) {
        --p;
      }
      const char prev = masked[p - 1];
      const std::size_t close = match_close(masked, i);
      if (close == std::string::npos) break;
      if (prev == '(' || prev == ',') {
        bool nonempty = false;
        for (std::size_t q = i + 1; q + 1 < close; ++q) {
          if (std::isspace(static_cast<unsigned char>(masked[q])) == 0) {
            nonempty = true;
            break;
          }
        }
        if (nonempty) {
          out.push_back(
              {file, line_of(starts, i), "await-temporary",
               "braced temporary inside a co_await expression; gcc 12 "
               "double-destroys extra temporaries that live across the "
               "suspension — bind it to a named local before the co_await"});
        }
      }
      i = close - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: schedule-fn
// ---------------------------------------------------------------------------

// Engine::schedule_fn was a compatibility shim over the pooled
// schedule_call: every event it scheduled moved through a std::function,
// which heap-allocated on the engine hot path. The shim has been removed;
// the rule stays so the name cannot be reintroduced — use schedule_call
// (the callable is placed in the per-engine slab pool).
void scan_schedule_fn(const std::string& file, const std::string& masked,
                      const std::vector<std::size_t>& starts,
                      std::vector<Finding>& out) {
  std::size_t pos = 0;
  while ((pos = find_token(masked, "schedule_fn", pos)) != std::string::npos) {
    out.push_back(
        {file, line_of(starts, pos), "schedule-fn",
         "schedule_fn was a shim that heap-allocated a std::function per "
         "event and has been removed; use Engine::schedule_call (pooled)"});
    pos += std::string("schedule_fn").size();
  }
}

// ---------------------------------------------------------------------------
// Rule: match-order-assumption
// ---------------------------------------------------------------------------

// Under dpmlmc (src/mc/) the order in which same-timestamp messages land in
// a Matcher queue is a schedule choice, not a stable total order: code that
// indexes Matcher::unexpected()/posted() positionally, or orders events by
// their engine seq number, bakes in the canonical schedule and will be
// falsified by the explorer. The matcher and engine themselves (which own
// the queues and define the tie-break) are the sanctioned homes.
void scan_match_order_assumption(const std::string& file,
                                 const std::string& masked,
                                 const std::vector<std::size_t>& starts,
                                 std::vector<Finding>& out) {
  const bool is_home = file.find("sim/engine.") != std::string::npos ||
                       file.find("simmpi/message.") != std::string::npos;
  if (is_home) return;

  // Positional access into a Matcher queue accessor:
  //   m.unexpected()[0]  m.posted().front()  m.unexpected().at(i)  ...
  for (const char* queue : {"unexpected", "posted"}) {
    std::size_t pos = 0;
    while ((pos = find_token(masked, queue, pos)) != std::string::npos) {
      const std::size_t tok = pos;
      pos += std::string(queue).size();
      std::size_t p = skip_ws(masked, pos);
      if (p >= masked.size() || masked[p] != '(') continue;
      p = match_close(masked, p);
      if (p == std::string::npos) continue;
      p = skip_ws(masked, p);
      const bool subscript = p < masked.size() && masked[p] == '[';
      bool positional_member = false;
      if (!subscript && p < masked.size() && masked[p] == '.') {
        const std::size_t q = skip_ws(masked, p + 1);
        for (const char* m : {"front", "back", "at"}) {
          const std::size_t len = std::string(m).size();
          if (masked.compare(q, len, m) == 0 &&
              (q + len >= masked.size() || !ident_char(masked[q + len]))) {
            positional_member = true;
            break;
          }
        }
      }
      if (subscript || positional_member) {
        out.push_back(
            {file, line_of(starts, tok), "match-order-assumption",
             std::string(queue) +
                 "(): positional access into a Matcher queue assumes a "
                 "fixed arrival order; same-timestamp order is a schedule "
                 "choice explored by dpmlmc — match by (ctx, src, tag) "
                 "instead"});
      }
    }
  }

  // Ordering comparisons on an event's seq member (a.seq < b.seq, ...).
  // Equality lookups are fine: only relational operators assume the
  // tie-break order. `<<`/`>>` (streams, shifts) and `->` are not
  // comparisons.
  std::size_t pos = 0;
  while ((pos = find_token(masked, "seq", pos)) != std::string::npos) {
    const std::size_t tok = pos;
    pos += 3;
    const bool member =
        tok > 0 && (masked[tok - 1] == '.' ||
                    (tok > 1 && masked[tok - 2] == '-' &&
                     masked[tok - 1] == '>'));
    if (!member) continue;
    const std::size_t p = skip_ws(masked, tok + 3);
    if (p >= masked.size()) continue;
    const char c = masked[p];
    const char n = p + 1 < masked.size() ? masked[p + 1] : '\0';
    const bool relational =
        (c == '<' && n != '<') || (c == '>' && n != '>' && n != '\0');
    if (relational) {
      out.push_back(
          {file, line_of(starts, tok), "match-order-assumption",
           "ordering comparison on an event seq number outside the engine; "
           "seq is the canonical tie-break the schedule explorer varies — "
           "do not derive program behavior from it"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: payload-plane
// ---------------------------------------------------------------------------

// Payload buffers are owned by the data plane (sim/dataplane.hpp): transport
// and algorithm code must route captures/releases through DataPlane so the
// time-only plane can elide them. A direct Engine::payload_pool() call
// outside the plane implementations bypasses that seam and would silently
// reintroduce per-message payload storage on time-only runs. The engine/pool
// internals and the plane implementations themselves are the sanctioned
// homes for the call.
void scan_payload_plane(const std::string& file, const std::string& masked,
                        const std::vector<std::size_t>& starts,
                        std::vector<Finding>& out) {
  for (const char* home : {"sim/engine.", "sim/pool.", "sim/dataplane.",
                           "sim/timeonly."}) {
    if (file.find(home) != std::string::npos) return;
  }
  std::size_t pos = 0;
  while ((pos = find_token(masked, "payload_pool", pos)) !=
         std::string::npos) {
    const std::size_t after =
        skip_ws(masked, pos + std::string("payload_pool").size());
    if (after < masked.size() && masked[after] == '(') {
      out.push_back(
          {file, line_of(starts, pos), "payload-plane",
           "direct Engine::payload_pool() access outside the data plane; "
           "route payload capture/release through sim::DataPlane "
           "(Machine::capture_payload / DataPlane::reclaim) so time-only "
           "runs stay payload-free"});
    }
    pos += std::string("payload_pool").size();
  }
}

}  // namespace

std::vector<Finding> lint_source(const std::string& file,
                                 const std::string& content) {
  const std::string masked = mask_comments_and_strings(content);
  const std::vector<std::size_t> starts = line_starts(masked);
  const Suppressions sup = parse_suppressions(content);

  std::vector<Finding> found;
  scan_banned_tokens(file, masked, starts, found);
  scan_unordered_iteration(file, masked, starts, found);
  scan_coro_ref_capture(file, masked, starts, found);
  scan_await_temporary(file, masked, starts, found);
  scan_schedule_fn(file, masked, starts, found);
  scan_match_order_assumption(file, masked, starts, found);
  scan_payload_plane(file, masked, starts, found);

  std::vector<Finding> kept;
  for (Finding& f : found) {
    if (!sup.allows(f.rule, f.line)) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dpmllint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str());
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& ent : fs::recursive_directory_iterator(p)) {
        if (ent.is_regular_file() && want(ent.path())) {
          files.push_back(ent.path().string());
        }
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

void print_text(std::ostream& os, const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  os << "dpmllint: " << findings.size() << " finding(s)\n";
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void print_json(std::ostream& os, const std::vector<Finding>& findings) {
  os << "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "  {\"file\": ";
    json_escape(os, f.file);
    os << ", \"line\": " << f.line << ", \"rule\": ";
    json_escape(os, f.rule);
    os << ", \"message\": ";
    json_escape(os, f.message);
    os << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace dpml::lint
