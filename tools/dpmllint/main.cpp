// dpmllint driver.
//
//   dpmllint [--format=text|json] [--out FILE] PATH...
//
// PATHs may be files or directories (recursed for .hpp/.h/.cpp/.cc). Exit
// status: 0 clean, 1 findings, 2 usage or I/O error. See lint.hpp for the
// rule catalogue and docs/CHECKING.md for the workflow.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* prog) {
  std::cerr << "usage: " << prog << " [--format=text|json] [--out FILE] PATH...\n"
            << "Lints C++ sources for coroutine-lifetime and determinism\n"
            << "violations (rules: coro-ref-capture, raw-random, wall-clock,\n"
            << "unordered-iteration). Exits 0 when clean, 1 on findings.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string out_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage(argv[0]);
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dpmllint: unknown flag " << arg << "\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  std::vector<dpml::lint::Finding> findings;
  try {
    for (const std::string& f : dpml::lint::collect_sources(paths)) {
      auto fs = dpml::lint::lint_file(f);
      findings.insert(findings.end(), fs.begin(), fs.end());
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path);
    if (!out_file) {
      std::cerr << "dpmllint: cannot write " << out_path << "\n";
      return 2;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : out_file;
  if (format == "json") {
    dpml::lint::print_json(os, findings);
  } else {
    dpml::lint::print_text(os, findings);
  }
  return findings.empty() ? 0 : 1;
}
