// dpmllint — a token-level coroutine/determinism linter for the dpml tree.
//
// The simulator's correctness rests on two properties a C++ compiler cannot
// enforce:
//
//   1. Coroutine lifetime discipline. A coroutine frame outlives the
//      statement that created it, so a lambda coroutine that captures by
//      reference (or a plain coroutine that stashes a pointer/reference to a
//      caller's stack) dangles as soon as the creator resumes past the first
//      co_await. These bugs are timing-dependent and survive most tests.
//
//   2. Determinism. Every stochastic choice must flow through util/rng
//      (SplitMix64 keyed by (seed, purpose, rank, op)) and every quantity
//      that feeds simulated time must be reproducible. Raw rand()/
//      std::random_device/wall-clock reads, or iteration order of unordered
//      containers leaking into simulated-time decisions, silently break the
//      bit-reproducibility the golden tests lock in.
//
// dpmllint scans source text (comments and string literals masked out; no
// compiler needed, so it runs in every CI configuration) and reports
// violations of five rules:
//
//   coro-ref-capture    lambda with a by-reference capture whose body
//                       contains co_await/co_yield (the frame may outlive
//                       every captured object)
//   raw-random          rand()/srand()/random()/drand48()/std::random_device/
//                       std::mt19937 outside src/util/rng
//   wall-clock          time()/clock()/gettimeofday()/clock_gettime() or
//                       std::chrono::{system,steady,high_resolution}_clock
//                       reads (simulated code must use sim::Engine::now())
//   unordered-iteration range-for over a container declared as
//                       std::unordered_map/set in the same file (iteration
//                       order is implementation-defined; use std::map or an
//                       explicitly sorted view when order can reach
//                       simulated time)
//   await-temporary     non-empty braced-init-list argument inside a
//                       co_await expression; the temporary must live across
//                       the suspension and gcc 12 double-destroys it (frame
//                       slot reuse → bad free) — bind it to a named local
//                       before the co_await
//
// Suppressions (checked against the raw, unmasked line text):
//   // dpmllint: allow(<rule>)        on the finding's line or the line above
//   // dpmllint: allow-file(<rule>)   anywhere in the file
// `all` matches every rule. Suppression of a rule that never fires is
// harmless — the linter does not track unused allows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dpml::lint {

struct Finding {
  std::string file;   // path as given on the command line
  int line = 0;       // 1-based
  std::string rule;   // e.g. "coro-ref-capture"
  std::string message;
};

// Lint one translation unit's text. `file` is used only for labeling and for
// the raw-random exemption of util/rng itself.
std::vector<Finding> lint_source(const std::string& file,
                                 const std::string& content);

// Read `path` and lint it. Throws std::runtime_error if unreadable.
std::vector<Finding> lint_file(const std::string& path);

// Expand files/directories into the list of sources to lint (recursing into
// directories for .hpp/.h/.cpp/.cc), sorted for deterministic output.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

// "file:line: [rule] message" per finding, plus a trailing summary line.
void print_text(std::ostream& os, const std::vector<Finding>& findings);

// JSON array of {file, line, rule, message} objects (machine-readable CI
// artifact).
void print_json(std::ostream& os, const std::vector<Finding>& findings);

}  // namespace dpml::lint
