// dpmlsim — command-line driver for the simulated-cluster collective lab.
//
// Subcommands:
//   latency     measure one collective design over a size sweep (any of the
//               nine --collective kinds)
//   sweep       leader-count sweep table (Figures 4-7 style)
//   tune        empirical per-size tuning; prints a selection table
//   throughput  osu_mbw_mr relative-throughput table (Figure 1 style)
//   fit         fit the Section-5 model constants from the transport
//   hpcg        HPCG DDOT application kernel
//   miniamr     miniAMR refinement application kernel
//
// Common flags: --cluster A|B|C|D|test  --nodes N  --ppn P
// Examples:
//   dpmlsim latency --cluster B --nodes 16 --ppn 28 --algo dpml --leaders 8
//   dpmlsim sweep --cluster C --nodes 64 --ppn 28 --sizes 4:1M
//   dpmlsim tune --cluster A --nodes 8 --ppn 28
//   dpmlsim throughput --cluster C --pairs 8
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <iostream>
#include <string>

#include "apps/hpcg.hpp"
#include "apps/miniamr.hpp"
#include "apps/osu.hpp"
#include "apps/stencil.hpp"
#include "apps/dl.hpp"
#include "apps/replay.hpp"
#include "core/executor.hpp"
#include "core/selection.hpp"
#include "fabric/fabric.hpp"
#include "mc/explore.hpp"
#include "mc/probes.hpp"
#include "model/fit.hpp"
#include "adapt/adapt.hpp"
#include "perturb/spec.hpp"
#include "net/cluster.hpp"
#include "sim/dataplane.hpp"
#include "tenant/tenant.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace dpml;

int usage() {
  std::cout <<
      "usage: dpmlsim <latency|sweep|tune|throughput|pingpong|fit|hpcg|miniamr|stencil|dl|replay|verify> "
      "[--cluster X] [--nodes N] [--ppn P] ...\n"
      "  latency:    --collective KIND --algo NAME --leaders L --pipeline K "
      "--sizes LO:HI[:F] --data\n"
      "  sweep:      --sizes LO:HI[:F]\n"
      "  tune:       --collective KIND --sizes LO:HI[:F]\n"
      "  throughput: --pairs N --sizes LO:HI[:F] --intra\n"
      "  fit:        (no extra flags)\n"
      "  hpcg:       --iterations N --algo NAME\n"
      "  miniamr:    --steps N --blocks B --algo NAME\n"
      "  stencil:    --sweeps N --check-every K --algo NAME\n"
      "  dl:         --steps N --buckets B --bucket BYTES --overlap BOOL\n"
      "  replay:     --trace FILE --reps N --algo NAME\n"
      "  verify:     --nodes N --ppn P  (data-mode self-test, all kinds)\n"
      "common:       --cluster A|B|C|D|test --nodes N --ppn P --rails R\n"
      "              --collective allreduce|reduce|bcast|alltoall|allgather|\n"
      "                reduce_scatter|gather|scatter|barrier\n"
      "              --perturb SPEC  (e.g. \"jitter=lognormal:sigma=0.2;"
      "skew=uniform:max_us=50;seed=7\")\n"
      "              --reps N  (independent noise realizations per point)\n"
      "              --check[=basic|strict]  (simcheck MPI-semantics "
      "verification;\n"
      "                bare --check means basic: unmatched/leaked requests,\n"
      "                count/dtype mismatches, buffer overlap, deadlock "
      "report,\n"
      "                result verification vs a serial reference. strict "
      "adds\n"
      "                exact recv capacities, slot-leak and tracer "
      "span-balance\n"
      "                checks. See docs/CHECKING.md)\n"
      "              --fabric[=links]  (flow-level congested fabric: every\n"
      "                inter-node payload becomes a flow over explicit\n"
      "                node/leaf/core links with max-min fair sharing,\n"
      "                enforcing the cluster's oversubscription. See\n"
      "                docs/MODEL.md §7)\n"
      "              --jobs N  (parallel sweep executor: fan independent\n"
      "                repetitions/points across N host threads; results\n"
      "                are byte-identical to --jobs 1. Default: DPML_JOBS\n"
      "                or 1. See docs/MODEL.md §8)\n"
      "              --time-only  (payload-free data plane: messages carry\n"
      "                only size/dtype/op-cost metadata, per-rank state is a\n"
      "                compact POD record. Simulated times are bit-identical\n"
      "                to payload mode; --data and --check are rejected.\n"
      "                Scales to 100k+ ranks. See docs/MODEL.md §10)\n"
      "              --scheduler auto|binary-heap|calendar  (event-queue\n"
      "                implementation; auto picks calendar for --time-only.\n"
      "                Either drains events in the same order, so results\n"
      "                never depend on this flag)\n"
      "              --perf  (print host-side perf counters per point:\n"
      "                simulated events/sec, peak live events, queue depth,\n"
      "                peak RSS, pool hit rates, wall-ms per simulated-ms)\n"
      "              --perf-json FILE  (write the sweep's aggregate perf\n"
      "                counters as JSON, for trajectory diffs against the\n"
      "                checked-in BENCH_perf.json snapshot)\n"
      "              --tenants N  (multi-tenant fabric run: N concurrent\n"
      "                collective jobs block-placed over the cluster, one\n"
      "                shared max-min fabric arbitrating contention; reports\n"
      "                per-job goodput, slowdown vs solo, stall time, and\n"
      "                hot-link byte attribution. Implies --fabric unless\n"
      "                overridden. See docs/MODEL.md §11)\n"
      "              --bg-traffic [SPEC]  (seeded background flows, e.g.\n"
      "                \"uniform:load=0.3,bytes=64K\" or \"hotspot:"
      "hot_frac=0.8\"\n"
      "                or \"permutation:shift=3\"; bare flag means uniform\n"
      "                defaults. Tenant runs only)\n"
      "              --fail-links [SPEC]  (scheduled ECMP-way failures, e.g.\n"
      "                \"way=0,at_us=30,recover_us=150;way=1,leaf=0,"
      "at_us=60\";\n"
      "                bare flag fails core switch 0 at 30us, recovers at\n"
      "                150us. Live flows reroute deterministically)\n"
      "              --stagger-us X --tenant-iters N --trace-json FILE\n"
      "                (tenant start-offset bound, per-job iteration\n"
      "                override, Chrome trace of the shared run)\n"
      "              --placement block|round-robin|random  (tenant job-to-\n"
      "                node mapping; round-robin/random interleave jobs so\n"
      "                they share links even without oversubscription.\n"
      "                Default: block)\n"
      "              --adapt  (congestion-aware re-planning: between\n"
      "                iterations each tenant job re-selects (algorithm,\n"
      "                leaders) from a contention-keyed table driven by its\n"
      "                observed foreign-traffic/stall/failure signals.\n"
      "                Requires the link fabric. See docs/MODEL.md §12)\n"
      "              --adapt-table FILE  (load the adaptive selection table\n"
      "                from FILE if it exists, and write the run's updated\n"
      "                table back — the offline/online feedback loop)\n"
      "              --list-algorithms  (print the collective registry)\n"
      "              --list-clusters  (print presets with derived fabric\n"
      "                link counts and capacities)\n"
      "              --mc-replay FILE  (re-execute a dpmlmc counterexample\n"
      "                trace: replays the recorded message-matching choices\n"
      "                exactly and reports the schedule's strict-check\n"
      "                outcome. Exit 0: passed; 1: failed as recorded;\n"
      "                3: outcome diverged from the trace. See\n"
      "                docs/CHECKING.md)\n";
  return 2;
}

// --collective KIND (default allreduce).
core::CollKind collective_kind(const util::Args& args) {
  return coll::coll_kind_by_name(args.get("collective", "allreduce"));
}

int cmd_list_algorithms() {
  util::Table t({"collective", "algorithm", "capabilities"});
  for (core::CollKind kind : coll::kAllCollKinds) {
    for (const coll::CollDescriptor* d :
         coll::CollRegistry::instance().list(kind)) {
      std::string caps;
      auto flag = [&caps](const char* name) {
        if (!caps.empty()) caps += ",";
        caps += name;
      };
      if (d->caps.needs_fabric) flag("needs-fabric");
      if (d->caps.uses_leaders) flag("leaders");
      if (d->caps.supports_pipelining) flag("pipelining");
      if (d->caps.world_only) flag("world-only");
      if (d->caps.tunable) flag("tunable");
      if (d->caps.needs_payload) flag("needs-payload");
      if (d->caps.min_comm_size > 1) {
        flag(("min-comm=" + std::to_string(d->caps.min_comm_size)).c_str());
      }
      if (d->caps.max_tune_bytes !=
          std::numeric_limits<std::size_t>::max()) {
        flag(("tune<=" + std::to_string(d->caps.max_tune_bytes)).c_str());
      }
      if (caps.empty()) caps = "-";
      t.row()
          .cell(std::string(coll::coll_kind_name(kind)))
          .cell(d->name)
          .cell(caps);
    }
  }
  t.print(std::cout);
  return 0;
}

int cmd_list_clusters() {
  // Every preset (plus the unit-test config), with the fabric link plan its
  // nodes_per_leaf / oversubscription derive to — the enforced capacities
  // under --fabric.
  util::Table t({"cluster", "nodes", "ppn", "nodes/leaf", "oversub", "leaves",
                 "ecmp ways", "edge (GB/s)", "core way (GB/s)",
                 "leaf core (GB/s)", "links"});
  std::vector<net::ClusterConfig> cfgs = net::all_clusters();
  cfgs.push_back(net::test_cluster());
  for (const net::ClusterConfig& cfg : cfgs) {
    const auto topo = fabric::FabricTopo::derive(cfg, cfg.total_nodes);
    t.row()
        .cell(cfg.name)
        .cell(static_cast<long long>(cfg.total_nodes))
        .cell(static_cast<long long>(cfg.max_ppn()))
        .cell(static_cast<long long>(topo.nodes_per_leaf))
        .cell(cfg.oversubscription, 2)
        .cell(static_cast<long long>(topo.leaves))
        .cell(static_cast<long long>(topo.ecmp_ways))
        .cell(topo.node_link_gbps, 1)
        .cell(topo.core_way_gbps, 2)
        .cell(topo.leaf_core_gbps(), 1)
        .cell(static_cast<long long>(topo.num_links()));
  }
  t.print(std::cout);
  return 0;
}

// Aggregate host-side perf counters across a sweep, serializable as the
// JSON snapshot format diffed by CI (--perf-json, bench_patterns).
struct PerfAgg {
  std::uint64_t events = 0;
  std::uint64_t peak_live = 0;
  std::uint64_t peak_queue = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t elided_bytes = 0;
  double wall_ms = 0.0;
  double cb_hits = 0.0;
  double pl_hits = 0.0;
  int rows = 0;
  std::string data_mode = "payload";
  // Fabric metadata (--fabric runs): machine-diffable alongside the
  // human-readable max-link-util column.
  bool fabric = false;
  double max_link_util = 0.0;
  std::uint64_t fabric_flows = 0;

  void add(const core::MeasureResult& r) {
    events += r.perf.events;
    peak_live = std::max(peak_live, r.perf.peak_live_events);
    peak_queue = std::max(peak_queue, r.perf.peak_queue_depth);
    peak_rss_kb = std::max(peak_rss_kb, r.perf.peak_rss_kb);
    elided_bytes += r.perf.elided_bytes;
    wall_ms += r.perf.wall_ms;
    cb_hits += r.perf.callback_pool_hit_rate;
    pl_hits += r.perf.payload_pool_hit_rate;
    if (r.fabric_links) {
      fabric = true;
      max_link_util = std::max(max_link_util, r.max_link_util);
      fabric_flows += r.fabric_flows;
    }
    ++rows;
  }
  double events_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1e3) : 0.0;
  }
  double cb_hit_rate() const {
    return rows > 0 ? cb_hits / static_cast<double>(rows) : 0.0;
  }
  double pl_hit_rate() const {
    return rows > 0 ? pl_hits / static_cast<double>(rows) : 0.0;
  }

  bool write_json(const std::string& path, const std::string& tool) const {
    std::ofstream os(path);
    if (!os) return false;
    os << "{\n"
       << "  \"tool\": \"" << tool << "\",\n"
       << "  \"data_mode\": \"" << data_mode << "\",\n"
       << "  \"points\": " << rows << ",\n"
       << "  \"jobs\": " << core::default_jobs() << ",\n"
       << "  \"events\": " << events << ",\n"
       << "  \"events_per_sec\": " << static_cast<long long>(events_per_sec())
       << ",\n"
       << "  \"peak_live_events\": " << peak_live << ",\n"
       << "  \"peak_queue_depth\": " << peak_queue << ",\n"
       << "  \"peak_rss_kb\": " << peak_rss_kb << ",\n"
       << "  \"elided_bytes\": " << elided_bytes << ",\n"
       << "  \"callback_pool_hit_rate\": " << cb_hit_rate() << ",\n"
       << "  \"payload_pool_hit_rate\": " << pl_hit_rate() << ",\n";
    if (fabric) {
      os << "  \"fabric\": true,\n"
         << "  \"max_link_util\": " << max_link_util << ",\n"
         << "  \"fabric_flows\": " << fabric_flows << ",\n";
    }
    os << "  \"wall_ms\": " << wall_ms << "\n"
       << "}\n";
    return true;
  }
};

core::MeasureOptions measure_opts(const util::Args& args) {
  core::MeasureOptions opt;
  opt.iterations = static_cast<int>(args.get_int("iterations", 3));
  opt.warmup = static_cast<int>(args.get_int("warmup", 1));
  opt.with_data = args.get_bool("data", false);
  opt.repetitions = static_cast<int>(args.get_int("reps", 1));
  // Unknown injectors/parameters throw util::InvariantError naming every
  // valid one; main's catch turns that into the CLI error message.
  opt.perturb = perturb::PerturbSpec::parse(args.get("perturb", ""));
  if (args.has("check")) {
    const std::string level = args.get("check", "");
    // Bare "--check" parses as the boolean "true": treat it as basic.
    opt.check = (level.empty() || level == "true")
                    ? check::CheckLevel::basic
                    : check::check_level_by_name(level);
  }
  if (args.has("fabric")) {
    const std::string level = args.get("fabric", "");
    // Bare "--fabric" parses as the boolean "true": treat it as links.
    opt.fabric = (level.empty() || level == "true")
                     ? fabric::FabricLevel::links
                     : fabric::fabric_level_by_name(level);
  }
  if (args.get_bool("time-only", false)) {
    // Conflicts fail here with the offending flags and the remedy spelled
    // out, before any machine is built.
    DPML_CHECK_MSG(!opt.with_data,
                   "incompatible flags: --time-only --data. The time-only "
                   "data plane elides payload bytes, so there are no buffers "
                   "to fill or verify; drop --data (simulated times are "
                   "bit-identical) or drop --time-only");
    DPML_CHECK_MSG(opt.check == check::CheckLevel::off,
                   "incompatible flags: --time-only --check " +
                       std::string(check::check_level_name(opt.check)) +
                       ". simcheck verification needs real payload spans; "
                       "drop --check (simulated times are bit-identical) or "
                       "drop --time-only");
    opt.data_mode = sim::DataMode::timeonly;
  }
  if (args.has("scheduler")) {
    opt.scheduler = sim::scheduler_kind_by_name(args.get("scheduler", "auto"));
  }
  return opt;
}

int cmd_latency(const util::Args& args, const net::ClusterConfig& cfg,
                int nodes, int ppn) {
  const core::CollKind kind = collective_kind(args);
  core::CollSpec spec;
  spec.algo =
      args.get("algo", kind == core::CollKind::allreduce ? "dpml" : "auto");
  spec.leaders = static_cast<int>(args.get_int("leaders", 4));
  spec.pipeline_k = static_cast<int>(args.get_int("pipeline", 1));
  // Fail fast on unknown names (the error lists the registered ones).
  coll::CollRegistry::instance().at(kind, spec.algo);
  // --table FILE: dispatch through a tuned selection table instead.
  std::optional<core::SelectionTable> table;
  const std::string table_path = args.get("table");
  if (!table_path.empty()) {
    std::ifstream is(table_path);
    if (!is) {
      std::cerr << "cannot open selection table " << table_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    table = core::SelectionTable::parse(ss.str());
  }
  const auto sizes = util::Args::parse_size_range(args.get("sizes", "4:1M"));
  const core::MeasureOptions opt = measure_opts(args);
  // Under perturbations (or multi-repetition runs) the latency is a
  // distribution, so the table widens to median/p99 plus the measured
  // arrival imbalance.
  const bool perturbed = !opt.perturb.empty() || opt.repetitions > 1;
  const bool fabric_on = opt.fabric != fabric::FabricLevel::none;
  const bool perf_on = args.get_bool("perf", false);
  const std::string perf_json = args.get("perf-json");
  std::vector<std::string> header{"msg size", "design", "latency (us)"};
  if (perturbed) {
    header.insert(header.end(),
                  {"median (us)", "p99 (us)", "entry skew (us)", "wait (us)"});
  }
  if (fabric_on) header.push_back("max link util");
  if (perf_on) header.insert(header.end(), {"events", "Mev/s", "wall/sim"});
  header.push_back("verified");
  util::Table t(header);
  // Host-side perf aggregates across the whole size sweep (--perf and/or
  // --perf-json).
  PerfAgg agg;
  agg.data_mode = sim::data_mode_name(opt.data_mode);
  for (std::size_t bytes : sizes) {
    const core::CollSpec used = table ? table->select(kind, bytes) : spec;
    const auto r =
        core::measure_collective(kind, cfg, nodes, ppn, bytes, used, opt);
    t.row()
        .cell(util::format_bytes(bytes))
        .cell(used.label(kind))
        .cell(r.avg_us, 2);
    if (perturbed) {
      t.cell(r.median_us, 2)
          .cell(r.p99_us, 2)
          .cell(r.entry_skew_avg_us, 2)
          .cell(r.wait_avg_us, 2);
    }
    if (fabric_on) t.cell(r.max_link_util, 3);
    if (perf_on) {
      t.cell(static_cast<long long>(r.perf.events))
          .cell(r.perf.events_per_sec / 1e6, 2)
          .cell(r.perf.wall_ms_per_sim_ms, 2);
    }
    if (perf_on || !perf_json.empty()) agg.add(r);
    t.cell(std::string(r.verified ? "yes" : "NO"));
  }
  std::cout << coll::coll_kind_name(kind) << " "
            << (table ? std::string("table-driven") : spec.label(kind))
            << " on cluster " << cfg.name << ", " << nodes << "x" << ppn;
  if (!opt.perturb.empty()) {
    std::cout << "\nperturbed: " << opt.perturb.to_string() << " ("
              << opt.repetitions << " rep"
              << (opt.repetitions == 1 ? "" : "s") << ")";
  }
  std::cout << "\n";
  t.print(std::cout);
  if (perf_on && agg.rows > 0) {
    std::cout << "\n[perf] jobs=" << core::default_jobs() << ", " << agg.events
              << " simulated events in " << agg.wall_ms << " ms wall ("
              << agg.events_per_sec() / 1e6 << " Mev/s), peak live events "
              << agg.peak_live << ", peak queue depth " << agg.peak_queue
              << ", peak RSS " << agg.peak_rss_kb << " KB, pool hit rates cb="
              << agg.cb_hit_rate() << " payload=" << agg.pl_hit_rate();
    if (agg.elided_bytes > 0) {
      std::cout << ", elided " << util::format_bytes(agg.elided_bytes)
                << " of payload";
    }
    std::cout << "\n";
  }
  if (!perf_json.empty()) {
    if (!agg.write_json(perf_json, "dpmlsim latency")) {
      std::cerr << "cannot write perf json " << perf_json << "\n";
      return 1;
    }
    std::cout << "perf counters written to " << perf_json << "\n";
  }
  return 0;
}

int cmd_verify(const util::Args& args, const net::ClusterConfig& cfg) {
  // Self-test: run every registered algorithm of every collective kind in
  // data mode on a small shape and check results bit-for-bit against the
  // serial reference for that kind's semantics.
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const int ppn = std::min(static_cast<int>(args.get_int("ppn", 4)),
                           cfg.max_ppn());
  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 2;
  opt.warmup = 1;
  util::Table t({"collective", "algorithm", "256B", "17KB"});
  bool all_ok = true;
  for (core::CollKind kind : coll::kAllCollKinds) {
    for (const coll::CollDescriptor* d :
         coll::CollRegistry::instance().list(kind)) {
      if (d->caps.needs_fabric && !cfg.has_sharp()) continue;
      core::CollSpec spec;
      spec.algo = d->name;
      t.row()
          .cell(std::string(coll::coll_kind_name(kind)))
          .cell(d->name);
      for (std::size_t bytes : {256ul, 17408ul}) {
        const auto r =
            core::measure_collective(kind, cfg, nodes, ppn, bytes, spec, opt);
        all_ok &= r.verified;
        t.cell(std::string(r.verified ? "ok" : "FAIL"));
      }
    }
  }
  t.print(std::cout);
  std::cout << (all_ok ? "all designs verified bit-for-bit\n"
                       : "VERIFICATION FAILURES\n");
  return all_ok ? 0 : 1;
}

int cmd_sweep(const util::Args& args, const net::ClusterConfig& cfg,
              int nodes, int ppn) {
  const auto sizes = util::Args::parse_size_range(args.get("sizes", "4:1M"));
  std::vector<std::string> header{"msg size"};
  for (int l : {1, 2, 4, 8, 16}) header.push_back("l=" + std::to_string(l));
  util::Table t(header);
  for (std::size_t bytes : sizes) {
    t.row().cell(util::format_bytes(bytes));
    for (int l : {1, 2, 4, 8, 16}) {
      core::AllreduceSpec spec;
      spec.algo = core::Algorithm::dpml;
      spec.leaders = l;
      t.cell(core::measure_allreduce(cfg, nodes, ppn, bytes, spec,
                                     measure_opts(args))
                 .avg_us,
             2);
    }
  }
  std::cout << "DPML leader sweep, cluster " << cfg.name << ", " << nodes
            << "x" << ppn << " (latency us)\n";
  t.print(std::cout);
  return 0;
}

int cmd_tune(const util::Args& args, const net::ClusterConfig& cfg, int nodes,
             int ppn) {
  const auto sizes = util::Args::parse_size_range(args.get("sizes", "4:1M"));
  const auto table = core::SelectionTable::tune(
      collective_kind(args), cfg, nodes, ppn, sizes, measure_opts(args));
  const std::string out = args.get("out");
  if (!out.empty()) {
    std::ofstream os(out);
    os << table.serialize();
    std::cout << "selection table written to " << out << "\n";
  } else {
    std::cout << table.serialize();
  }
  return 0;
}

int cmd_pingpong(const util::Args& args, const net::ClusterConfig& cfg) {
  const bool intra = args.get_bool("intra", false);
  const auto sizes = util::Args::parse_size_range(args.get("sizes", "4:1M"));
  util::Table t({"msg size", "one-way latency"});
  for (std::size_t bytes : sizes) {
    t.row()
        .cell(util::format_bytes(bytes))
        .cell(util::format_seconds(apps::osu_latency(cfg, bytes, intra)));
  }
  std::cout << (intra ? "intra-node (same socket)" : "inter-node")
            << " pingpong, cluster " << cfg.name << "\n";
  t.print(std::cout);
  return 0;
}

int cmd_throughput(const util::Args& args, const net::ClusterConfig& cfg,
                   int /*nodes*/, int /*ppn*/) {
  const int pairs = static_cast<int>(args.get_int("pairs", 8));
  const bool intra = args.get_bool("intra", false);
  const auto sizes = util::Args::parse_size_range(args.get("sizes", "4:1M"));
  util::Table t({"msg size", "1 pair (MB/s)", "aggregate (MB/s)", "relative"});
  for (std::size_t bytes : sizes) {
    apps::MbwMrOptions one;
    one.pairs = 1;
    one.bytes = bytes;
    one.intra_node = intra;
    apps::MbwMrOptions many = one;
    many.pairs = pairs;
    const auto r1 = apps::osu_mbw_mr(cfg, one);
    const auto rn = apps::osu_mbw_mr(cfg, many);
    t.row()
        .cell(util::format_bytes(bytes))
        .cell(r1.mb_per_s, 1)
        .cell(rn.mb_per_s, 1)
        .cell(rn.mb_per_s / r1.mb_per_s, 2);
  }
  std::cout << (intra ? "intra-node" : "inter-node") << " throughput, "
            << pairs << " pairs, cluster " << cfg.name << "\n";
  t.print(std::cout);
  return 0;
}

int cmd_fit(const net::ClusterConfig& cfg) {
  const auto f = model::fit_from_simulation(cfg);
  util::Table t({"constant", "fitted", "meaning"});
  t.row().cell(std::string("a")).cell(util::format_seconds(f.a)).cell(
      std::string("inter-node startup"));
  t.row().cell(std::string("b")).cell(f.b * 1e9, 4).cell(
      std::string("inter-node ns/byte"));
  t.row().cell(std::string("a'")).cell(util::format_seconds(f.a2)).cell(
      std::string("shared-memory startup"));
  t.row().cell(std::string("b'")).cell(f.b2 * 1e9, 4).cell(
      std::string("shared-memory ns/byte"));
  t.row().cell(std::string("c")).cell(f.c * 1e9, 4).cell(
      std::string("reduction ns/byte"));
  if (cfg.oversubscription > 1.0 && cfg.total_nodes > cfg.nodes_per_leaf) {
    t.row()
        .cell(std::string("os"))
        .cell(model::fit_oversub_factor(cfg), 3)
        .cell(std::string("core oversubscription slowdown (--fabric)"));
  }
  std::cout << "Section-5 model constants fitted from the simulated "
            << "transport of cluster " << cfg.name << "\n";
  t.print(std::cout);
  return 0;
}

int cmd_hpcg(const util::Args& args, const net::ClusterConfig& cfg, int nodes,
             int ppn) {
  apps::HpcgOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  o.iterations = static_cast<int>(args.get_int("iterations", 25));
  o.spec.algo = core::algorithm_by_name(args.get("algo", "mvapich2"));
  const auto r = apps::run_hpcg(cfg, o);
  std::cout << "HPCG on cluster " << cfg.name << ", " << nodes * ppn
            << " ranks, " << o.iterations << " iterations with "
            << core::algorithm_name(o.spec.algo) << ":\n"
            << "  DDOT total:  " << util::format_seconds(r.ddot_s) << "\n"
            << "  per DDOT:    " << r.ddot_avg_us << " us\n"
            << "  CG loop:     " << util::format_seconds(r.total_s) << "\n";
  return 0;
}

int cmd_stencil(const util::Args& args, const net::ClusterConfig& cfg,
                int nodes, int ppn) {
  apps::StencilOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  o.sweeps = static_cast<int>(args.get_int("sweeps", 20));
  o.check_every = static_cast<int>(args.get_int("check-every", 4));
  o.spec.algo = core::algorithm_by_name(args.get("algo", "dpml-auto"));
  const auto r = apps::run_stencil(cfg, o);
  std::cout << "3D stencil on cluster " << cfg.name << ", grid " << r.grid[0]
            << "x" << r.grid[1] << "x" << r.grid[2] << ":\n"
            << "  total:      " << util::format_seconds(r.total_s) << "\n"
            << "  halo:       " << util::format_seconds(r.halo_s) << "\n"
            << "  allreduce:  " << util::format_seconds(r.allreduce_s)
            << " over " << r.residual_checks << " residual checks\n";
  return 0;
}

int cmd_dl(const util::Args& args, const net::ClusterConfig& cfg, int nodes,
           int ppn) {
  apps::DlOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  o.steps = static_cast<int>(args.get_int("steps", 4));
  o.buckets = static_cast<int>(args.get_int("buckets", 16));
  o.bucket_bytes = args.get_bytes("bucket", 4 << 20);
  o.overlap = args.get_bool("overlap", true);
  o.spec.algo = core::algorithm_by_name(args.get("algo", "dpml-auto"));
  const auto r = apps::run_dl_training(cfg, o);
  std::cout << "SGD on cluster " << cfg.name << " with "
            << core::algorithm_name(o.spec.algo)
            << (o.overlap ? " (overlapped)" : " (blocking)") << ":\n"
            << "  step time:     " << util::format_seconds(r.step_s) << "\n"
            << "  exposed comm:  " << util::format_seconds(r.exposed_comm_s)
            << "\n";
  return 0;
}

int cmd_replay(const util::Args& args, const net::ClusterConfig& cfg,
               int nodes, int ppn) {
  std::vector<apps::TraceOp> trace;
  const std::string path = args.get("trace");
  if (path.empty()) {
    trace = apps::parse_trace(apps::example_trace());
    std::cout << "(no --trace file given; replaying the built-in "
                 "production-like mix)\n";
  } else {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "cannot open trace file " << path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    trace = apps::parse_trace(ss.str());
  }
  apps::ReplayOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  o.repetitions = static_cast<int>(args.get_int("reps", 1));
  o.spec.algo = core::algorithm_by_name(args.get("algo", "dpml-auto"));
  const auto r = apps::replay_trace(cfg, trace, o);
  std::cout << "replayed " << r.ops << " collective ops on cluster "
            << cfg.name << " with " << core::algorithm_name(o.spec.algo)
            << ":\n  total: " << util::format_seconds(r.total_s)
            << "\n  in collectives: " << util::format_seconds(r.comm_s)
            << " (" << (r.comm_s / r.total_s) * 100.0 << "%)\n";
  return 0;
}

int cmd_miniamr(const util::Args& args, const net::ClusterConfig& cfg,
                int nodes, int ppn) {
  apps::MiniAmrOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  o.refine_steps = static_cast<int>(args.get_int("steps", 10));
  o.blocks_per_rank = static_cast<int>(args.get_int("blocks", 32));
  o.spec.algo = core::algorithm_by_name(args.get("algo", "dpml-auto"));
  const auto r = apps::run_miniamr(cfg, o);
  std::cout << "miniAMR on cluster " << cfg.name << ", " << nodes * ppn
            << " ranks, " << o.refine_steps << " steps with "
            << core::algorithm_name(o.spec.algo) << ":\n"
            << "  refinement total: " << util::format_seconds(r.refine_s)
            << "\n  per step:         " << r.per_step_us << " us\n"
            << "  final blocks:     " << r.final_blocks << "\n";
  return 0;
}

// --mc-replay FILE: re-execute one explored schedule from a dpmlmc
// counterexample trace (src/mc/). Distinct from the `replay` subcommand,
// Multi-tenant fabric run (docs/MODEL.md §11): N concurrent jobs on one
// shared flow fabric, with optional seeded background traffic and scheduled
// ECMP-way failures.
int cmd_tenants(const util::Args& args, const net::ClusterConfig& cfg,
                int nodes, int ppn) {
  const int njobs = static_cast<int>(args.get_int("tenants", 2));
  tenant::TenantOptions opt;
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opt.stagger_max_us = args.get_double("stagger-us", 20.0);
  opt.perturb = perturb::PerturbSpec::parse(args.get("perturb", ""));
  if (args.has("fabric")) {
    const std::string level = args.get("fabric", "");
    opt.fabric = (level.empty() || level == "true")
                     ? fabric::FabricLevel::links
                     : fabric::fabric_level_by_name(level);
  }
  if (args.get_bool("time-only", false)) {
    opt.data_mode = sim::DataMode::timeonly;
  }
  if (args.has("scheduler")) {
    opt.scheduler = sim::scheduler_kind_by_name(args.get("scheduler", "auto"));
  }
  if (args.has("bg-traffic")) {
    const std::string spec = args.get("bg-traffic", "");
    // Bare "--bg-traffic" parses as the boolean "true": uniform defaults.
    opt.traffic = (spec.empty() || spec == "true")
                      ? tenant::TrafficSpec::parse("uniform")
                      : tenant::TrafficSpec::parse(spec);
  }
  if (args.has("fail-links")) {
    const std::string spec = args.get("fail-links", "");
    opt.failures = (spec.empty() || spec == "true")
                       ? tenant::FailSpec::default_spec()
                       : tenant::FailSpec::parse(spec);
  }
  opt.trace_json = args.get("trace-json");
  if (args.has("placement")) {
    opt.placement = tenant::placement_by_name(args.get("placement", "block"));
  }
  opt.adapt = args.get_bool("adapt", false);
  const std::string adapt_table_path = args.get("adapt-table");
  if (!adapt_table_path.empty()) {
    opt.adapt = true;
    std::ifstream in(adapt_table_path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      opt.table = adapt::AdaptiveTable::parse(text.str());
    }
  }
  std::vector<tenant::JobSpec> jobs = tenant::default_jobs(njobs, cfg, nodes);
  if (args.has("tenant-iters")) {
    const int iters = static_cast<int>(args.get_int("tenant-iters", 4));
    for (tenant::JobSpec& j : jobs) j.iterations = iters;
  }
  const tenant::TenantResult r = tenant::run_tenants(cfg, ppn, jobs, opt);

  std::vector<std::string> cols = {
      "job", "kind", "algorithm", "nodes", "ranks", "bytes", "start (us)",
      "makespan (us)", "goodput (GB/s)", "solo (us)", "slowdown", "stall (us)",
      "hot-link share"};
  if (opt.adapt) {
    cols.push_back("final plan");
    cols.push_back("replans");
  }
  util::Table t(cols);
  for (const tenant::JobStats& j : r.jobs) {
    util::Table& row = t.row();
    row.cell(j.name)
        .cell(j.kind)
        .cell(j.algo)
        .cell(static_cast<long long>(j.nodes))
        .cell(static_cast<long long>(j.ranks))
        .cell(util::format_bytes(j.bytes))
        .cell(j.start_us, 2)
        .cell(j.makespan_us, 2)
        .cell(j.goodput_gbps, 3)
        .cell(j.solo_us, 2)
        .cell(j.slowdown, 3)
        .cell(j.stall_us, 2)
        .cell(j.link_share, 3);
    if (opt.adapt) {
      std::string plan = j.final_algo;
      if (j.final_leaders > 1) {
        plan += " x" + std::to_string(j.final_leaders);
      }
      row.cell(plan).cell(static_cast<long long>(j.replans));
    }
  }
  std::cout << njobs << " tenant job(s) on cluster " << cfg.name << ", "
            << nodes << " nodes x " << ppn << " ppn, placement "
            << tenant::placement_name(opt.placement)
            << (opt.adapt ? ", adaptive re-planning on" : "");
  if (!opt.traffic.empty()) {
    std::cout << "\nbackground: " << opt.traffic.to_string();
  }
  if (!opt.failures.empty()) {
    std::cout << "\nfailures: " << opt.failures.to_string();
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "shared run: makespan " << r.makespan_us << " us, " << r.events
            << " events, " << r.flows << " fabric flows (" << r.bg_flows
            << " background), max avg link util " << r.max_link_util
            << ", peak " << r.peak_link_util;
  if (!r.hot_link.empty()) {
    std::cout << ", hottest link " << r.hot_link << " (bg share "
              << r.hot_link_bg_share << ")";
  }
  std::cout << ", " << r.shared_links << " link(s) shared by >1 job\n";
  if (!adapt_table_path.empty() && !r.adapt_table.empty()) {
    std::ofstream os(adapt_table_path);
    if (!os) {
      std::cerr << "cannot write adapt table " << adapt_table_path << "\n";
      return 1;
    }
    os << r.adapt_table;
    std::cout << "adaptive selection table written to " << adapt_table_path
              << "\n";
  }
  const std::string perf_json = args.get("perf-json");
  if (!perf_json.empty()) {
    std::ofstream os(perf_json);
    if (!os) {
      std::cerr << "cannot write perf json " << perf_json << "\n";
      return 1;
    }
    os << "{\n"
       << "  \"tool\": \"dpmlsim tenants\",\n"
       << "  \"tenants\": " << njobs << ",\n"
       << "  \"placement\": \"" << tenant::placement_name(opt.placement)
       << "\",\n"
       << "  \"adapt\": " << (opt.adapt ? "true" : "false") << ",\n"
       << "  \"jobs\": " << core::default_jobs() << ",\n"
       << "  \"events\": " << r.events << ",\n"
       << "  \"makespan_us\": " << r.makespan_us << ",\n"
       << "  \"fabric\": "
       << (opt.fabric == fabric::FabricLevel::links ? "true" : "false")
       << ",\n"
       << "  \"max_link_util\": " << r.max_link_util << ",\n"
       << "  \"fabric_flows\": " << r.flows << ",\n"
       << "  \"bg_flows\": " << r.bg_flows << "\n"
       << "}\n";
    std::cout << "perf counters written to " << perf_json << "\n";
  }
  return 0;
}

// which replays an application communication trace.
int cmd_mc_replay(const std::string& path) {
  mc::ensure_probe_algorithms();
  const mc::Trace t = mc::load_trace(path);
  std::cout << "mc-replay: " << t.config.label() << ", "
            << t.choices.size() << " recorded choice(s), recorded outcome: "
            << (t.failure_type.empty() ? "pass" : t.failure_type) << "\n";
  const mc::Trace obs = mc::run_schedule(t);
  if (obs.failure_type.empty()) {
    std::cout << "schedule passed strict checking\n";
  } else {
    std::cout << "schedule failed (" << obs.failure_type << "):\n"
              << obs.failure_report << "\n";
    if (!obs.deadlock_json.empty()) {
      std::cout << "wait-cycle: " << obs.deadlock_json << "\n";
    }
  }
  if (obs.failure_type != t.failure_type) {
    std::cerr << "dpmlsim: replay outcome diverged from the trace (recorded "
              << (t.failure_type.empty() ? "pass" : t.failure_type)
              << ", observed "
              << (obs.failure_type.empty() ? "pass" : obs.failure_type)
              << ")\n";
    return 3;
  }
  return obs.failure_type.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args(argc, argv);
  // --jobs N sets the process-wide sweep-executor width: every measure()
  // call fans its repetitions (and sweeps their points) across N threads
  // while staying byte-identical to the serial order (docs/MODEL.md §8).
  if (args.has("jobs"))
    core::set_default_jobs(static_cast<int>(args.get_int("jobs", 1)));
  if (args.get_bool("list-algorithms", false)) return cmd_list_algorithms();
  if (args.get_bool("list-clusters", false)) return cmd_list_clusters();
  if (args.has("mc-replay")) {
    try {
      return cmd_mc_replay(args.get("mc-replay"));
    } catch (const std::exception& e) {
      std::cerr << "dpmlsim: " << e.what() << "\n";
      return 1;
    }
  }
  if (args.positional().empty() && !args.has("tenants")) return usage();
  try {
    net::ClusterConfig cfg = net::cluster_by_name(args.get("cluster", "B"));
    const int rails = static_cast<int>(args.get_int("rails", 1));
    if (rails > 1) cfg = net::with_rails(cfg, rails);
    const int nodes = static_cast<int>(args.get_int("nodes", 8));
    if (nodes > cfg.total_nodes) {
      // Extrapolated sweep: grow the preset to the requested node count
      // rather than failing (fig10-style extreme-scale curves).
      std::cerr << "note: cluster " << cfg.name << " has " << cfg.total_nodes
                << " nodes; extrapolating its node/NIC model to " << nodes
                << "\n";
      cfg = net::with_nodes(std::move(cfg), nodes);
    }
    const int ppn = static_cast<int>(args.get_int("ppn", cfg.max_ppn()));
    if (args.has("tenants")) return cmd_tenants(args, cfg, nodes, ppn);
    const std::string cmd = args.positional()[0];
    if (cmd == "latency") return cmd_latency(args, cfg, nodes, ppn);
    if (cmd == "sweep") return cmd_sweep(args, cfg, nodes, ppn);
    if (cmd == "tune") return cmd_tune(args, cfg, nodes, ppn);
    if (cmd == "throughput") return cmd_throughput(args, cfg, nodes, ppn);
    if (cmd == "pingpong") return cmd_pingpong(args, cfg);
    if (cmd == "fit") return cmd_fit(cfg);
    if (cmd == "hpcg") return cmd_hpcg(args, cfg, nodes, ppn);
    if (cmd == "miniamr") return cmd_miniamr(args, cfg, nodes, ppn);
    if (cmd == "stencil") return cmd_stencil(args, cfg, nodes, ppn);
    if (cmd == "dl") return cmd_dl(args, cfg, nodes, ppn);
    if (cmd == "replay") return cmd_replay(args, cfg, nodes, ppn);
    if (cmd == "verify") return cmd_verify(args, cfg);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "dpmlsim: " << e.what() << "\n";
    return 1;
  }
}
