// Auto-tuning example: reproduce the paper's §6.4 methodology — sweep DPML
// configurations per message size on a chosen platform and print the best
// configuration table (the kind of table an MPI library would ship as its
// tuned defaults for that system).
//
//   $ ./autotune [cluster] [nodes] [ppn]
//   $ ./autotune C 16 28
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/tuner.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;

  const std::string cluster = argc > 1 ? argv[1] : "C";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 16;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 28;
  const net::ClusterConfig cfg = net::cluster_by_name(cluster);

  std::cout << "Tuning MPI_Allreduce for cluster " << cfg.name << ", " << nodes
            << " nodes x " << ppn << " ppn"
            << (cfg.has_sharp() ? " (SHArP available)" : "") << "\n";

  util::Table table({"msg size", "best config", "latency (us)",
                     "runner-up", "runner-up (us)"});
  for (std::size_t bytes :
       {4ul, 64ul, 1024ul, 8192ul, 65536ul, 262144ul, 1048576ul}) {
    core::MeasureOptions opt;
    opt.iterations = 3;
    opt.warmup = 1;
    const auto r = core::tune_allreduce(cfg, nodes, ppn, bytes, opt);
    table.row()
        .cell(util::format_bytes(bytes))
        .cell(r.best.spec.label())
        .cell(r.best.avg_us, 2)
        .cell(r.all.size() > 1 ? r.all[1].spec.label() : "-")
        .cell(r.all.size() > 1 ? r.all[1].avg_us : 0.0, 2);
  }
  table.print(std::cout);

  std::cout << "\nSmall messages favour one leader (or SHArP offload on\n"
            << "SHArP-capable fabrics); large messages favour many leaders —\n"
            << "the per-size selection the paper's hybrid scheme applies.\n";
  return 0;
}
