// Quickstart: simulate a cluster, run one DPML allreduce with real data,
// verify the result, and compare a few designs.
//
//   $ ./quickstart [cluster] [nodes] [ppn] [bytes]
//   $ ./quickstart B 8 28 65536
//
// Walks through the three core pieces of the library:
//   1. net::ClusterConfig       — pick/shape a simulated platform
//   2. core::measure_allreduce  — run + time + verify a collective design
//   3. core::AllreduceSpec      — choose algorithms and DPML parameters
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;

  const std::string cluster = argc > 1 ? argv[1] : "B";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 28;
  const std::size_t bytes = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                     : 64 * 1024;

  const net::ClusterConfig cfg = net::cluster_by_name(cluster);
  std::cout << "Simulated platform: cluster " << cfg.name << " — " << nodes
            << " nodes x " << ppn << " ppn = " << nodes * ppn
            << " ranks, message " << util::format_bytes(bytes) << "B\n\n";

  // Run with real data flowing through the reduction so the result is
  // verified bit-for-bit against a serial reference.
  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 5;
  opt.warmup = 2;

  util::Table table({"design", "avg latency (us)", "verified"});
  for (int leaders : {1, 2, 4, 8, 16}) {
    core::AllreduceSpec spec;
    spec.algo = core::Algorithm::dpml;
    spec.leaders = leaders;
    const auto r = core::measure_allreduce(cfg, nodes, ppn, bytes, spec, opt);
    table.row()
        .cell(spec.label())
        .cell(r.avg_us, 2)
        .cell(std::string(r.verified ? "yes" : "NO"));
    if (!r.verified) return 1;
  }
  for (core::Algorithm algo :
       {core::Algorithm::mvapich2, core::Algorithm::intelmpi,
        core::Algorithm::recursive_doubling}) {
    core::AllreduceSpec spec;
    spec.algo = algo;
    const auto r = core::measure_allreduce(cfg, nodes, ppn, bytes, spec, opt);
    table.row()
        .cell(spec.label())
        .cell(r.avg_us, 2)
        .cell(std::string(r.verified ? "yes" : "NO"));
    if (!r.verified) return 1;
  }
  table.print(std::cout);

  std::cout << "\nAll designs produced bit-identical, verified results.\n"
            << "Note how more leaders help for medium/large messages — the\n"
            << "paper's Data Partitioning-based Multi-Leader effect.\n";
  return 0;
}
