// Research-platform example: write a brand-new collective directly against
// the simulated MPI runtime (coroutine ranks, point-to-point, shared-memory
// windows) and race it against the library's designs.
//
// The custom algorithm here is a "leader ring": one leader per node gathers
// locally, leaders run a ring allreduce, then broadcast locally. It reuses
// the library's single-leader building blocks but swaps the inter-node
// algorithm — exactly the kind of experiment the codebase is built for.
//
//   $ ./custom_collective [nodes] [ppn] [bytes]
#include <cstdlib>
#include <iostream>

#include "coll/dpml.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "simmpi/verify.hpp"
#include "util/table.hpp"

namespace {

using namespace dpml;

// Measure a hand-rolled collective: every rank runs `single_leader` with a
// ring inter-node phase. Returns (latency us, verified).
std::pair<double, bool> measure_leader_ring(const net::ClusterConfig& cfg,
                                            int nodes, int ppn,
                                            std::size_t bytes) {
  simmpi::Machine m(cfg, nodes, ppn, simmpi::RunOptions{true, 1});
  const std::size_t count = bytes / 4;
  const int world = m.world_size();

  std::vector<std::vector<std::byte>> in(static_cast<std::size_t>(world));
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(world));
  for (int w = 0; w < world; ++w) {
    in[w] = simmpi::make_operand(simmpi::Dtype::f32, count, w,
                                 simmpi::ReduceOp::sum);
    out[w].resize(bytes);
  }

  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = count;
    a.dt = simmpi::Dtype::f32;
    a.op = simmpi::ReduceOp::sum;
    a.send = simmpi::ConstBytes{in[static_cast<std::size_t>(r.world_rank())]};
    a.recv = simmpi::MutBytes{out[static_cast<std::size_t>(r.world_rank())]};
    // The custom part: hierarchical collective with a ring inter-node phase.
    co_await coll::allreduce_single_leader(a, coll::InterAlgo::ring);
  });

  const auto ref = simmpi::reference_allreduce(simmpi::Dtype::f32, count,
                                               world, simmpi::ReduceOp::sum);
  bool ok = true;
  for (int w = 0; w < world; ++w) ok &= out[static_cast<std::size_t>(w)] == ref;
  return {sim::to_us(m.now()), ok};
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int ppn = argc > 2 ? std::atoi(argv[2]) : 28;
  const std::size_t bytes = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : 256 * 1024;
  const auto cfg = net::cluster_b();

  std::cout << "Custom collective vs library designs on cluster B, " << nodes
            << "x" << ppn << ", " << util::format_bytes(bytes) << "B\n\n";

  util::Table table({"design", "latency (us)", "verified"});
  const auto [ring_us, ring_ok] = measure_leader_ring(cfg, nodes, ppn, bytes);
  table.row()
      .cell(std::string("custom leader-ring"))
      .cell(ring_us, 2)
      .cell(std::string(ring_ok ? "yes" : "NO"));

  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 1;
  opt.warmup = 0;
  for (core::Algorithm algo :
       {core::Algorithm::single_leader, core::Algorithm::dpml}) {
    core::AllreduceSpec spec;
    spec.algo = algo;
    spec.leaders = 8;
    const auto r = core::measure_allreduce(cfg, nodes, ppn, bytes, spec, opt);
    table.row()
        .cell(spec.label())
        .cell(r.avg_us, 2)
        .cell(std::string(r.verified ? "yes" : "NO"));
  }
  table.print(std::cout);
  std::cout << "\nDPML's partitioned multi-leader phase 3 beats both\n"
            << "single-leader variants by parallelising reduction compute\n"
            << "and inter-node transfers.\n";
  return ring_ok ? 0 : 1;
}
