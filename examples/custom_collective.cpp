// Research-platform example: plug a brand-new collective into the library's
// registry and race it against the built-in designs through the exact same
// dispatch, measurement, and verification stack.
//
// The custom algorithm here is a "leader ring": one leader per node gathers
// locally, leaders run a ring allreduce, then broadcast locally. It reuses
// the library's single-leader building blocks but swaps the inter-node
// algorithm — exactly the kind of experiment the codebase is built for. A
// static coll::CollRegistration makes it a first-class "allreduce"
// algorithm: measure_collective, selection tables, and dpmlsim
// --list-algorithms all see it with no further wiring.
//
//   $ ./custom_collective [nodes] [ppn] [bytes]
#include <cstdlib>
#include <iostream>

#include "coll/dpml.hpp"
#include "coll/registry.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

namespace {

using namespace dpml;

// The custom part: hierarchical collective with a ring inter-node phase,
// registered under its own name. After this line the algorithm is
// addressable as spec.algo = "leader-ring" anywhere a CollSpec goes.
const coll::CollRegistration leader_ring_registration{{
    "leader-ring",
    coll::CollKind::allreduce,
    coll::CollCaps{.world_only = true},
    [](coll::CollArgs a, const coll::CollSpec&) {
      return coll::allreduce_single_leader(std::move(a), coll::InterAlgo::ring);
    }}};

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int ppn = argc > 2 ? std::atoi(argv[2]) : 28;
  const std::size_t bytes = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : 256 * 1024;
  const auto cfg = net::cluster_b();

  std::cout << "Custom collective vs library designs on cluster B, " << nodes
            << "x" << ppn << ", " << util::format_bytes(bytes) << "B\n\n";

  core::MeasureOptions opt;
  opt.with_data = true;  // verify every design bit-for-bit while we race it
  opt.iterations = 1;
  opt.warmup = 0;

  util::Table table({"design", "latency (us)", "verified"});
  for (const char* algo : {"leader-ring", "single-leader", "dpml"}) {
    core::CollSpec spec;
    spec.algo = algo;
    spec.leaders = 8;
    const auto r = core::measure_collective(core::CollKind::allreduce, cfg,
                                            nodes, ppn, bytes, spec, opt);
    table.row()
        .cell(spec.label(core::CollKind::allreduce))
        .cell(r.avg_us, 2)
        .cell(std::string(r.verified ? "yes" : "NO"));
    if (!r.verified) {
      table.print(std::cout);
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nDPML's partitioned multi-leader phase 3 beats both\n"
            << "single-leader variants by parallelising reduction compute\n"
            << "and inter-node transfers.\n";
  return 0;
}
