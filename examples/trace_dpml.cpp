// Tracing example: run one DPML allreduce with execution tracing enabled
// and dump a Chrome-trace JSON (open in chrome://tracing or Perfetto) that
// shows the four DPML phases — per-rank partition copies, the parallel
// leader reductions, the concurrent inter-node exchanges, and the final
// broadcast copies.
//
//   $ ./trace_dpml [nodes] [ppn] [bytes] [out.json]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/api.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int ppn = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::size_t bytes = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : 256 * 1024;
  const std::string out = argc > 4 ? argv[4] : "dpml_trace.json";

  simmpi::RunOptions opt;
  opt.with_data = false;
  simmpi::Machine m(net::cluster_b(), nodes, ppn, opt);
  m.enable_trace();

  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    core::AllreduceSpec spec;
    spec.algo = core::Algorithm::dpml;
    spec.leaders = 4;
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = bytes / 4;
    a.inplace = true;
    co_await core::run_allreduce(a, spec);
  });

  std::ofstream os(out);
  m.tracer().write_chrome_json(os);
  std::cout << "DPML allreduce of " << util::format_bytes(bytes) << "B on "
            << nodes << "x" << ppn << " finished in "
            << util::format_seconds(sim::to_seconds(m.now())) << "\n"
            << m.tracer().size() << " spans written to " << out << "\n"
            << "stats: " << m.comm_stats().net_messages
            << " fabric messages, " << m.comm_stats().net_bytes
            << " fabric bytes, " << m.comm_stats().window_copies
            << " window copies, " << m.comm_stats().reduce_bytes
            << " reduced bytes\n";
  return 0;
}
