// Deep-learning gradient synchronization (the paper's intro motivation for
// medium/large-message allreduce): synchronous data-parallel SGD with
// bucketed gradient allreduce, overlapped with backprop.
//
//   $ ./dl_gradients [cluster] [nodes] [ppn]
//   $ ./dl_gradients D 16 64
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/dl.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const std::string cluster = argc > 1 ? argv[1] : "B";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 28;
  const auto cfg = net::cluster_by_name(cluster);

  std::cout << "Synchronous SGD on cluster " << cfg.name << ", " << nodes
            << "x" << ppn << " = " << nodes * ppn
            << " workers; 16 gradient buckets x 4MB\n\n";

  util::Table t({"MPI stack", "overlap", "step time", "exposed comm"});
  for (core::Algorithm algo :
       {core::Algorithm::mvapich2, core::Algorithm::intelmpi,
        core::Algorithm::dpml_auto}) {
    for (bool overlap : {false, true}) {
      apps::DlOptions o;
      o.nodes = nodes;
      o.ppn = ppn;
      o.spec.algo = algo;
      o.overlap = overlap;
      const auto r = apps::run_dl_training(cfg, o);
      t.row()
          .cell(std::string(core::algorithm_name(algo)))
          .cell(std::string(overlap ? "yes" : "no"))
          .cell(util::format_seconds(r.step_s))
          .cell(util::format_seconds(r.exposed_comm_s));
    }
  }
  t.print(std::cout);
  std::cout << "\nDPML cuts the exposed (non-hidden) communication per step;\n"
            << "non-blocking bucket allreduce hides most of the rest behind\n"
            << "backprop compute.\n";
  return 0;
}
