// miniAMR example (the paper's §6.6 application study): adaptive mesh
// refinement whose refinement phase is dominated by medium/large
// allreduces — the workload where DPML shines.
//
//   $ ./miniamr_refine [cluster] [nodes] [ppn] [steps]
//   $ ./miniamr_refine D 16 64 10
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/miniamr.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;

  const std::string cluster = argc > 1 ? argv[1] : "C";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 16;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 28;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 10;
  const auto cfg = net::cluster_by_name(cluster);

  std::cout << "miniAMR-like refinement on cluster " << cfg.name << ": "
            << nodes << " nodes x " << ppn << " ppn, " << steps
            << " refinement steps\n\n";

  util::Table table({"MPI stack", "refine total", "per-step (us)",
                     "final blocks"});
  double base = 0;
  double ours = 0;
  for (core::Algorithm algo :
       {core::Algorithm::mvapich2, core::Algorithm::intelmpi,
        core::Algorithm::dpml_auto}) {
    apps::MiniAmrOptions o;
    o.nodes = nodes;
    o.ppn = ppn;
    o.refine_steps = steps;
    o.blocks_per_rank = 32;
    o.spec.algo = algo;
    const auto r = apps::run_miniamr(cfg, o);
    if (algo == core::Algorithm::mvapich2) base = r.refine_s;
    if (algo == core::Algorithm::dpml_auto) ours = r.refine_s;
    table.row()
        .cell(std::string(core::algorithm_name(algo)))
        .cell(util::format_seconds(r.refine_s))
        .cell(r.per_step_us, 1)
        .cell(r.final_blocks);
  }
  table.print(std::cout);

  std::cout << "\nRefinement-time improvement of the proposed design vs the\n"
            << "MVAPICH2-like baseline: " << (1.0 - ours / base) * 100.0
            << "% (paper Figure 11(b,c): up to 40-60%)\n";
  return 0;
}
