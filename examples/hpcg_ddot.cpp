// HPCG DDOT example (the paper's §6.5 application study): run the CG
// kernel's dot-product phase under weak scaling on the SHArP-capable
// cluster A and compare reduction designs.
//
//   $ ./hpcg_ddot [nodes] [ppn] [iterations]
//   $ ./hpcg_ddot 8 28 25
#include <cstdlib>
#include <iostream>

#include "apps/hpcg.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int ppn = argc > 2 ? std::atoi(argv[2]) : 28;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 25;
  const auto cfg = net::cluster_a();

  std::cout << "HPCG-like CG kernel on cluster A: " << nodes << " nodes x "
            << ppn << " ppn = " << nodes * ppn << " ranks, " << iterations
            << " CG iterations (3 DDOTs each)\n\n";

  util::Table table({"reduction design", "DDOT total", "per-DDOT (us)",
                     "CG loop total"});
  double host_ddot = 0;
  for (core::Algorithm algo :
       {core::Algorithm::mvapich2, core::Algorithm::sharp_node_leader,
        core::Algorithm::sharp_socket_leader}) {
    apps::HpcgOptions o;
    o.nodes = nodes;
    o.ppn = ppn;
    o.iterations = iterations;
    o.spec.algo = algo;
    const auto r = apps::run_hpcg(cfg, o);
    if (algo == core::Algorithm::mvapich2) host_ddot = r.ddot_s;
    table.row()
        .cell(std::string(core::algorithm_name(algo)))
        .cell(util::format_seconds(r.ddot_s))
        .cell(r.ddot_avg_us, 2)
        .cell(util::format_seconds(r.total_s));
  }
  table.print(std::cout);

  apps::HpcgOptions o;
  o.nodes = nodes;
  o.ppn = ppn;
  o.iterations = iterations;
  o.spec.algo = core::Algorithm::sharp_socket_leader;
  const auto best = apps::run_hpcg(cfg, o);
  std::cout << "\nDDOT improvement with SHArP socket-leader: "
            << (1.0 - best.ddot_s / host_ddot) * 100.0
            << "% (paper Figure 11(a): up to 35%)\n";
  return 0;
}
