// Trace replay example: evaluate the collective designs on a production-like
// operation mix (Rabenseifner's profiling motivation — most MPI time in
// many small allreduces with periodic large ones) instead of a synthetic
// size sweep.
//
//   $ ./replay_mix [cluster] [nodes] [ppn] [trace-file]
//
// Without a trace file, the built-in mix is used. Trace format: see
// src/apps/replay.hpp.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/replay.hpp"
#include "net/cluster.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpml;
  const std::string cluster = argc > 1 ? argv[1] : "B";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 28;
  const auto cfg = net::cluster_by_name(cluster);

  std::vector<apps::TraceOp> trace;
  if (argc > 4) {
    std::ifstream is(argv[4]);
    if (!is) {
      std::cerr << "cannot open " << argv[4] << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    trace = apps::parse_trace(ss.str());
  } else {
    trace = apps::parse_trace(apps::example_trace());
  }

  std::cout << "Replaying " << trace.size() << " collective ops on cluster "
            << cfg.name << ", " << nodes << "x" << ppn << "\n\n";

  util::Table t({"MPI stack", "total", "in collectives", "collective %"});
  double base_comm = 0;
  for (core::Algorithm algo :
       {core::Algorithm::mvapich2, core::Algorithm::intelmpi,
        core::Algorithm::dpml_auto}) {
    apps::ReplayOptions o;
    o.nodes = nodes;
    o.ppn = ppn;
    o.spec.algo = algo;
    const auto r = apps::replay_trace(cfg, trace, o);
    if (algo == core::Algorithm::mvapich2) base_comm = r.comm_s;
    t.row()
        .cell(std::string(core::algorithm_name(algo)))
        .cell(util::format_seconds(r.total_s))
        .cell(util::format_seconds(r.comm_s))
        .cell(r.comm_s / r.total_s * 100.0, 1);
  }
  t.print(std::cout);
  std::cout << "\nCollective time saved by the proposed selection vs the\n"
               "MVAPICH2-like stack on this mix: "
            << (1.0 - [&] {
                 apps::ReplayOptions o;
                 o.nodes = nodes;
                 o.ppn = ppn;
                 o.spec.algo = core::Algorithm::dpml_auto;
                 return apps::replay_trace(cfg, trace, o).comm_s;
               }() / base_comm) * 100.0
            << "%\n";
  return 0;
}
