// Congestion-aware adaptive re-planning (src/adapt, docs/MODEL.md §12):
// signal quantization fixtures, the contention-keyed table grammar
// (parse/serialize round-trips, legacy-table migration, level fallback,
// record persistence), the Replanner state machine, and the tenant-layer
// integration contracts — the golden no-op lock (adaptive on a quiet fabric
// is bit-identical to static selection), the congestion flip (a hot link
// re-plans the job onto more ring channels and actually helps), failure-
// triggered re-planning, bit-identical adaptive runs across reruns and
// --jobs widths, and the placement-policy axis (round-robin/random name
// round-trips, seeded determinism, and the jobs-actually-share-links
// witness on preset D).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapt/adapt.hpp"
#include "core/selection.hpp"
#include "net/cluster.hpp"
#include "tenant/tenant.hpp"
#include "util/error.hpp"

namespace dpml {
namespace {

// ---------------------------------------------------------------------------
// Signal quantization: hand-computed fixtures.

TEST(AdaptClassifyTest, ThresholdsQuantizeTheStrongerSignal) {
  EXPECT_EQ(adapt::classify({0.0, 0.0, false}), 0);
  EXPECT_EQ(adapt::classify({0.049, 0.0, false}), 0);
  EXPECT_EQ(adapt::classify({0.05, 0.0, false}), 1);
  EXPECT_EQ(adapt::classify({0.0, 0.24, false}), 1);
  EXPECT_EQ(adapt::classify({0.25, 0.0, false}), 2);
  EXPECT_EQ(adapt::classify({0.1, 0.54, false}), 2);
  EXPECT_EQ(adapt::classify({0.55, 0.0, false}), 3);
  EXPECT_EQ(adapt::classify({1.0, 1.0, false}), 3);
}

TEST(AdaptClassifyTest, FailureBumpsTheLevelAndSaturates) {
  EXPECT_EQ(adapt::classify({0.0, 0.0, true}), 1);
  EXPECT_EQ(adapt::classify({0.3, 0.0, true}), 3);
  EXPECT_EQ(adapt::classify({0.9, 0.0, true}), 3);  // cap at kLevels - 1
}

// ---------------------------------------------------------------------------
// The contention-keyed table grammar.

TEST(AdaptTableTest, ParsesLevelsAndFallsBackLevelByLevel) {
  const adapt::AdaptiveTable t = adapt::AdaptiveTable::parse(
      "# comment\n"
      "<=1024 rd\n"
      "* ring\n"
      "@c2 * cring 4\n");
  const auto* small = t.select(coll::CollKind::allreduce, 512, 0);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(small->spec.algo, "rd");
  // Level 1 has no entries: falls back to level 0.
  const auto* fell = t.select(coll::CollKind::allreduce, 1 << 20, 1);
  ASSERT_NE(fell, nullptr);
  EXPECT_EQ(fell->spec.algo, "ring");
  // Level 2 is populated; level 3 falls back onto it.
  for (int level : {2, 3}) {
    const auto* hot = t.select(coll::CollKind::allreduce, 1 << 20, level);
    ASSERT_NE(hot, nullptr) << level;
    EXPECT_EQ(hot->spec.algo, "cring") << level;
    EXPECT_EQ(hot->spec.leaders, 4) << level;
  }
  // A kind with no entries at any level selects nothing.
  EXPECT_EQ(t.select(coll::CollKind::alltoall, 1024, 3), nullptr);
}

TEST(AdaptTableTest, SerializeRoundTripsAndLevelZeroStaysLegacy) {
  const adapt::AdaptiveTable t = adapt::AdaptiveTable::parse(
      "allreduce <=65536 rsa\n"
      "allreduce * ring\n"
      "allreduce @c3 * cring 8\n"
      "bcast * binomial\n");
  const std::string text = t.serialize();
  EXPECT_NE(text.find("@c3"), std::string::npos);
  const adapt::AdaptiveTable back = adapt::AdaptiveTable::parse(text);
  ASSERT_EQ(back.entries().size(), t.entries().size());
  for (std::size_t i = 0; i < t.entries().size(); ++i) {
    EXPECT_EQ(back.entries()[i].level, t.entries()[i].level) << i;
    EXPECT_EQ(back.entries()[i].max_bytes, t.entries()[i].max_bytes) << i;
    EXPECT_EQ(back.entries()[i].spec.algo, t.entries()[i].spec.algo) << i;
  }
  // A level-0-only table serializes in the legacy selection-table format —
  // and therefore parses as a legacy core::SelectionTable too.
  const adapt::AdaptiveTable flat =
      adapt::AdaptiveTable::parse("<=1024 rd\n* ring\n");
  const std::string legacy = flat.serialize();
  EXPECT_EQ(legacy.find("@c"), std::string::npos);
  const core::SelectionTable st = core::SelectionTable::parse(legacy);
  EXPECT_EQ(st.select(coll::CollKind::allreduce, 4096).algo, "ring");
}

TEST(AdaptTableTest, MigratesLegacySelectionTables) {
  // Every legacy selection table is a valid adaptive table: directly...
  const adapt::AdaptiveTable direct =
      adapt::AdaptiveTable::parse("<=16384 rd\n* ring\n");
  EXPECT_EQ(direct.entries().size(), 2u);
  for (const auto& e : direct.entries()) EXPECT_EQ(e.level, 0);
  // ...and via the typed migration.
  const core::SelectionTable legacy =
      core::SelectionTable::parse("<=16384 rd\n* ring\n");
  const adapt::AdaptiveTable migrated =
      adapt::AdaptiveTable::from_selection(legacy);
  ASSERT_EQ(migrated.entries().size(), 2u);
  EXPECT_EQ(migrated.entries()[0].spec.algo, "rd");
  EXPECT_EQ(migrated.entries()[1].spec.algo, "ring");
  for (const auto& e : migrated.entries()) EXPECT_EQ(e.level, 0);
}

TEST(AdaptTableTest, ValidatesShapeAndAlgorithms) {
  using adapt::AdaptiveTable;
  // Unregistered algorithm.
  EXPECT_THROW((void)AdaptiveTable::parse("* nosuch\n"), util::InvariantError);
  // Level out of range.
  EXPECT_THROW((void)AdaptiveTable::parse("@c9 * ring\n"),
               util::InvariantError);
  // Missing catch-all for a populated (kind, level).
  EXPECT_THROW((void)AdaptiveTable::parse("@c1 <=1024 ring\n"),
               util::InvariantError);
  // Thresholds must ascend within a (kind, level).
  EXPECT_THROW(
      (void)AdaptiveTable::parse("<=4096 rd\n<=1024 ring\n* ring\n"),
      util::InvariantError);
}

TEST(AdaptTableTest, RecordReplacesTheCatchAllAndIsStable) {
  adapt::AdaptiveTable t = adapt::AdaptiveTable::defaults();
  coll::CollSpec spec;
  spec.algo = "ring";
  spec.leaders = 1;
  // Level 0 has no default entry: record appends one (the migration of the
  // job's static plan into the table).
  t.record(coll::CollKind::allreduce, 0, spec);
  const auto* e0 = t.select(coll::CollKind::allreduce, 1 << 20, 0);
  ASSERT_NE(e0, nullptr);
  EXPECT_EQ(e0->spec.algo, "ring");
  // Recording what the table already selects is a no-op.
  const std::string before = t.serialize();
  t.record(coll::CollKind::allreduce, 0, spec);
  EXPECT_EQ(t.serialize(), before);
  // Recording a different plan replaces the catch-all in place.
  spec.algo = "cring";
  spec.leaders = 16;
  t.record(coll::CollKind::allreduce, 2, spec);
  const auto* e2 = t.select(coll::CollKind::allreduce, 1 << 20, 2);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->spec.leaders, 16);
  // The round-tripped table preserves the recorded entries.
  const adapt::AdaptiveTable back = adapt::AdaptiveTable::parse(t.serialize());
  EXPECT_EQ(back.select(coll::CollKind::allreduce, 1 << 20, 2)->spec.leaders,
            16);
}

// ---------------------------------------------------------------------------
// The Replanner state machine: hand-computed plan trajectory.

TEST(AdaptReplanTest, PlanFollowsTheLevelAndCountsChanges) {
  const adapt::AdaptiveTable t = adapt::AdaptiveTable::defaults();
  adapt::Replanner rp(&t, coll::CollKind::allreduce, {"ring", 1}, 262144);
  EXPECT_EQ(rp.plan().algo, "ring");
  // Quiet window: level 0, no default entry, static plan stays.
  EXPECT_EQ(rp.replan({0.0, 0.0, false}).algo, "ring");
  EXPECT_EQ(rp.replans(), 0);
  // Moderate contention: level 2 -> cring 4.
  const adapt::Plan& hot = rp.replan({0.3, 0.0, false});
  EXPECT_EQ(hot.algo, "cring");
  EXPECT_EQ(hot.leaders, 4);
  EXPECT_EQ(rp.level(), 2);
  EXPECT_EQ(rp.replans(), 1);
  // Same level again: no re-selection, no churn.
  EXPECT_EQ(rp.replan({0.35, 0.0, false}).leaders, 4);
  EXPECT_EQ(rp.replans(), 1);
  // Back to quiet: the static plan returns.
  EXPECT_EQ(rp.replan({0.0, 0.0, false}).algo, "ring");
  EXPECT_EQ(rp.replans(), 2);
  EXPECT_EQ(rp.max_level(), 2);
  // Persistence feed saw levels 0 and 2 only.
  EXPECT_TRUE(rp.observed(0));
  EXPECT_FALSE(rp.observed(1));
  EXPECT_TRUE(rp.observed(2));
  EXPECT_EQ(rp.observed_plan(2).leaders, 4);
  EXPECT_EQ(rp.observed_plan(0).algo, "ring");
}

TEST(AdaptReplanTest, StaleMarkForcesReselectionAtTheSameLevel) {
  const adapt::AdaptiveTable t = adapt::AdaptiveTable::defaults();
  adapt::Replanner rp(&t, coll::CollKind::allreduce, {"ring", 1}, 262144);
  // A failure event mid-run: the degraded signal classifies level 1 and the
  // stale mark guarantees re-selection even though the level was already 1.
  (void)rp.replan({0.1, 0.0, false});
  EXPECT_EQ(rp.level(), 1);
  rp.mark_stale();
  const adapt::Plan& p = rp.replan({0.1, 0.0, true});
  EXPECT_EQ(p.algo, "cring");
  EXPECT_EQ(rp.level(), 2);  // degraded bump
}

// ---------------------------------------------------------------------------
// Tenant integration.

void expect_same_run(const tenant::TenantResult& a,
                     const tenant::TenantResult& b) {
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_EQ(a.bg_flows, b.bg_flows);
  EXPECT_EQ(a.shared_links, b.shared_links);
  EXPECT_EQ(a.adapt_table, b.adapt_table);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].makespan_us, b.jobs[i].makespan_us) << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].stall_us, b.jobs[i].stall_us) << i;
    EXPECT_EQ(a.jobs[i].final_algo, b.jobs[i].final_algo) << i;
    EXPECT_EQ(a.jobs[i].final_leaders, b.jobs[i].final_leaders) << i;
    EXPECT_EQ(a.jobs[i].replans, b.jobs[i].replans) << i;
    EXPECT_EQ(a.jobs[i].max_level, b.jobs[i].max_level) << i;
  }
}

// The golden no-op lock: on a quiet fabric (no background traffic, no
// failures, block placement so the default mix shares no links) every
// window classifies level 0, the default table has no level-0 entries, and
// the adaptive run is bit-identical to static selection. The makespan is
// additionally locked to a constant so silent drift in either path shows.
TEST(AdaptGoldenTest, QuietFabricAdaptiveIsBitIdenticalToStatic) {
  const auto cfg = net::cluster_by_name("D");
  const auto jobs = tenant::default_jobs(2, cfg, 8);
  tenant::TenantOptions opt;
  opt.seed = 1;
  const tenant::TenantResult st = tenant::run_tenants(cfg, 2, jobs, opt);
  opt.adapt = true;
  const tenant::TenantResult ad = tenant::run_tenants(cfg, 2, jobs, opt);
  EXPECT_DOUBLE_EQ(st.makespan_us, ad.makespan_us);
  EXPECT_EQ(st.events, ad.events);
  EXPECT_EQ(st.flows, ad.flows);
  ASSERT_EQ(st.jobs.size(), ad.jobs.size());
  for (std::size_t i = 0; i < st.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(st.jobs[i].makespan_us, ad.jobs[i].makespan_us) << i;
    EXPECT_EQ(ad.jobs[i].replans, 0) << i;
    EXPECT_EQ(ad.jobs[i].max_level, 0) << i;
    EXPECT_EQ(ad.jobs[i].final_algo, jobs[i].algo) << i;
  }
  // Golden lock (captured at introduction of src/adapt).
  EXPECT_NEAR(ad.makespan_us, 2035.023329, 1e-4);
}

// The congestion flip: heavy background traffic pushes the job's observed
// signals past the thresholds, the plan flips to multi-channel cring, and
// the adaptive run finishes strictly faster than the static one.
TEST(AdaptReplanTest, HotLinkFlipsThePlanToMoreChannelsAndWins) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(1, cfg, 8);
  tenant::TenantOptions opt;
  opt.seed = 1;
  opt.traffic = tenant::TrafficSpec::parse("uniform:load=0.6");
  const tenant::TenantResult st = tenant::run_tenants(cfg, 2, jobs, opt);
  opt.adapt = true;
  const tenant::TenantResult ad = tenant::run_tenants(cfg, 2, jobs, opt);
  ASSERT_EQ(ad.jobs.size(), 1u);
  EXPECT_EQ(ad.jobs[0].final_algo, "cring");
  EXPECT_GT(ad.jobs[0].final_leaders, 1);
  EXPECT_GE(ad.jobs[0].replans, 1);
  EXPECT_GE(ad.jobs[0].max_level, 1);
  EXPECT_LT(ad.jobs[0].makespan_us, st.jobs[0].makespan_us);
  // The run's observations persist into the returned table: the static plan
  // at level 0 plus the congested plan at the observed level.
  const adapt::AdaptiveTable learned =
      adapt::AdaptiveTable::parse(ad.adapt_table);
  const auto* quiet = learned.select(coll::CollKind::allreduce, 262144, 0);
  ASSERT_NE(quiet, nullptr);
  EXPECT_EQ(quiet->spec.algo, "ring");
  const auto* hot = learned.select(coll::CollKind::allreduce, 262144,
                                   ad.jobs[0].max_level);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->spec.algo, "cring");
}

// Failure-triggered re-planning: no background traffic at all — the way
// failure alone marks plans stale and the degraded fabric re-plans.
TEST(AdaptReplanTest, WayFailureAloneTriggersReplanning) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(1, cfg, 8);
  tenant::TenantOptions opt;
  opt.seed = 1;
  opt.failures = tenant::FailSpec::parse("way=0,at_us=100");
  opt.adapt = true;
  const tenant::TenantResult r = tenant::run_tenants(cfg, 2, jobs, opt);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_GE(r.jobs[0].replans, 1);
  EXPECT_GE(r.jobs[0].max_level, 1);
  EXPECT_EQ(r.jobs[0].final_algo, "cring");
}

TEST(AdaptReplanTest, AdaptiveRunsAreBitIdenticalAcrossRerunsAndJobsWidths) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(3, cfg, 8);
  tenant::TenantOptions opt;
  opt.seed = 7;
  opt.adapt = true;
  opt.placement = tenant::Placement::round_robin;
  opt.traffic = tenant::TrafficSpec::parse("uniform:load=0.4,seed=3");
  opt.failures = tenant::FailSpec::default_spec();
  opt.jobs = 1;
  const tenant::TenantResult a = tenant::run_tenants(cfg, 2, jobs, opt);
  const tenant::TenantResult b = tenant::run_tenants(cfg, 2, jobs, opt);
  expect_same_run(a, b);
  opt.jobs = 4;
  const tenant::TenantResult wide = tenant::run_tenants(cfg, 2, jobs, opt);
  expect_same_run(a, wide);
  EXPECT_FALSE(a.adapt_table.empty());
}

// ---------------------------------------------------------------------------
// Placement policies.

TEST(AdaptPlacementTest, NamesRoundTrip) {
  for (tenant::Placement p :
       {tenant::Placement::block, tenant::Placement::round_robin,
        tenant::Placement::random}) {
    EXPECT_EQ(tenant::placement_by_name(tenant::placement_name(p)), p);
  }
  EXPECT_EQ(tenant::placement_by_name("rr"), tenant::Placement::round_robin);
  EXPECT_THROW((void)tenant::placement_by_name("spiral"),
               util::InvariantError);
}

TEST(AdaptPlacementTest, RandomPlacementIsSeededAndDeterministic) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(3, cfg, 8);
  tenant::TenantOptions opt;
  opt.seed = 11;
  opt.placement = tenant::Placement::random;
  const tenant::TenantResult a = tenant::run_tenants(cfg, 2, jobs, opt);
  const tenant::TenantResult b = tenant::run_tenants(cfg, 2, jobs, opt);
  expect_same_run(a, b);
  // A different seed is a different (valid) run; per-job invariants hold.
  opt.seed = 12;
  const tenant::TenantResult c = tenant::run_tenants(cfg, 2, jobs, opt);
  ASSERT_EQ(c.jobs.size(), jobs.size());
  for (const tenant::JobStats& j : c.jobs) {
    EXPECT_GT(j.makespan_us, 0.0);
    EXPECT_GT(j.solo_us, 0.0);
  }
}

// The placement witness on the paper's preset D (2-node leaves): block
// placement keeps the default 3-job mix's flows on mostly-disjoint links,
// while round-robin interleaving forces the jobs to share edge links.
TEST(AdaptPlacementTest, RoundRobinSharesLinksOnPresetD) {
  const auto cfg = net::cluster_by_name("D");
  const auto jobs = tenant::default_jobs(3, cfg, 8);
  tenant::TenantOptions opt;
  opt.seed = 1;
  opt.placement = tenant::Placement::round_robin;
  const tenant::TenantResult rr = tenant::run_tenants(cfg, 2, jobs, opt);
  EXPECT_GE(rr.shared_links, 1);
  opt.placement = tenant::Placement::block;
  const tenant::TenantResult blk = tenant::run_tenants(cfg, 2, jobs, opt);
  EXPECT_GT(rr.shared_links, blk.shared_links);
  opt.placement = tenant::Placement::random;
  const tenant::TenantResult rnd = tenant::run_tenants(cfg, 2, jobs, opt);
  EXPECT_GE(rnd.shared_links, 1);
}

// ---------------------------------------------------------------------------
// Validation.

TEST(AdaptValidateTest, AdaptRequiresTheLinkFabric) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(2, cfg, 8);
  tenant::TenantOptions opt;
  opt.adapt = true;
  opt.fabric = fabric::FabricLevel::none;
  EXPECT_THROW((void)tenant::run_tenants(cfg, 2, jobs, opt),
               util::InvariantError);
}

TEST(AdaptValidateTest, RejectsTablesWithUnusableEntries) {
  const auto cfg = net::test_cluster(8);
  const auto jobs = tenant::default_jobs(1, cfg, 8);
  tenant::TenantOptions opt;
  opt.adapt = true;
  // dpml is world-only: a tenant slice cannot run it, so a table that would
  // select it under contention is rejected up front, not at iteration 3.
  opt.table = adapt::AdaptiveTable::parse("@c1 * dpml 4\n");
  EXPECT_THROW((void)tenant::run_tenants(cfg, 2, jobs, opt),
               util::InvariantError);
}

}  // namespace
}  // namespace dpml
