// Randomized property tests: for seeded random (algorithm, shape, size,
// datatype, operator) combinations, every design must produce the exact
// serial-reference result, identical simulated time across repeats, and no
// leaked node-shared state. A second suite drives seeded random workloads
// (random dtype/op/count/in-place/leader-count) through the parallel sweep
// executor under check_level=strict and requires byte-identical digests for
// any jobs count (docs/MODEL.md §8).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include <cstring>

#include "check/check.hpp"
#include "coll/registry.hpp"
#include "core/executor.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "sharp/sharp.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/verify.hpp"
#include "tenant/tenant.hpp"
#include "util/rng.hpp"

namespace dpml::core {
namespace {

using simmpi::Dtype;
using simmpi::ReduceOp;

struct Scenario {
  Algorithm algo;
  int nodes;
  int ppn;
  std::size_t count;
  Dtype dt;
  ReduceOp op;
  int leaders;
  int pipeline_k;
};

Scenario random_scenario(std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  const Algorithm algos[] = {
      Algorithm::recursive_doubling, Algorithm::reduce_scatter_allgather,
      Algorithm::ring,               Algorithm::binomial,
      Algorithm::gather_bcast,       Algorithm::single_leader,
      Algorithm::dpml,               Algorithm::sharp_node_leader,
      Algorithm::sharp_socket_leader, Algorithm::mvapich2,
      Algorithm::intelmpi,           Algorithm::dpml_auto,
  };
  const Dtype dtypes[] = {Dtype::f32, Dtype::f64, Dtype::i32, Dtype::i64,
                          Dtype::u8};
  // Ops applicable to all dtypes above (prod kept exact by the operand
  // generator; bitwise restricted to integer dtypes below).
  Scenario s;
  s.algo = algos[rng.next_below(std::size(algos))];
  s.nodes = static_cast<int>(1 + rng.next_below(6));
  s.ppn = static_cast<int>(1 + rng.next_below(4));
  s.count = rng.next_below(1500);
  s.dt = dtypes[rng.next_below(std::size(dtypes))];
  switch (rng.next_below(5)) {
    case 0: s.op = ReduceOp::sum; break;
    case 1: s.op = ReduceOp::min; break;
    case 2: s.op = ReduceOp::max; break;
    case 3:
      s.op = ReduceOp::prod;
      s.count = rng.next_below(64);  // keep products representable
      break;
    default:
      s.op = (s.dt == Dtype::f32 || s.dt == Dtype::f64) ? ReduceOp::sum
                                                        : ReduceOp::bor;
      break;
  }
  s.leaders = static_cast<int>(1 + rng.next_below(16));
  s.pipeline_k = static_cast<int>(1 + rng.next_below(4));
  return s;
}

class RandomScenario : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScenario, ExactAndDeterministic) {
  const Scenario s = random_scenario(GetParam());
  AllreduceSpec spec;
  spec.algo = s.algo;
  spec.leaders = s.leaders;
  spec.pipeline_k = s.pipeline_k;
  MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.dt = s.dt;
  opt.op = s.op;
  opt.seed = GetParam();
  auto cfg = net::test_cluster(s.nodes);
  const auto a = measure_allreduce(cfg, s.nodes, s.ppn,
                                   s.count * simmpi::dtype_size(s.dt), spec,
                                   opt);
  EXPECT_TRUE(a.verified)
      << algorithm_name(s.algo) << " " << s.nodes << "x" << s.ppn << " n="
      << s.count << " " << simmpi::dtype_name(s.dt) << " "
      << simmpi::op_name(s.op) << " l=" << s.leaders << " k=" << s.pipeline_k;
  const auto b = measure_allreduce(cfg, s.nodes, s.ppn,
                                   s.count * simmpi::dtype_size(s.dt), spec,
                                   opt);
  EXPECT_EQ(a.avg_us, b.avg_us) << "nondeterministic simulated time";
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomScenario,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Randomized every-kind sweep: a seeded random (kind, algorithm, shape,
// dtype, op, root, leaders) draw for each of the nine registry kinds must
// verify against its per-kind serial reference under strict checking and
// repeat with identical simulated time and event count.

TEST(RandomKindProperty, EveryKindExactAndDeterministic) {
  const Dtype dtypes[] = {Dtype::f32, Dtype::f64, Dtype::i32, Dtype::i64,
                          Dtype::u8};
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    util::SplitMix64 rng(seed);
    const coll::CollKind kind = coll::kAllCollKinds[rng.next_below(
        std::size(coll::kAllCollKinds))];
    const auto algos = coll::CollRegistry::instance().names(kind);
    const std::string algo = algos[rng.next_below(algos.size())];
    const auto& d = coll::CollRegistry::instance().at(kind, algo);
    const int nodes = static_cast<int>(2 + rng.next_below(3));
    int ppn = static_cast<int>(1 + rng.next_below(4));
    while (nodes * ppn < d.caps.min_comm_size) ++ppn;
    const Dtype dt = dtypes[rng.next_below(std::size(dtypes))];
    const std::size_t count = 1 + rng.next_below(900);

    coll::CollSpec spec;
    spec.algo = algo;
    spec.leaders = static_cast<int>(1 + rng.next_below(6));
    MeasureOptions opt;
    opt.with_data = true;
    opt.iterations = 2;
    opt.warmup = 1;
    opt.dt = dt;
    switch (rng.next_below(3)) {
      case 0: opt.op = ReduceOp::sum; break;
      case 1: opt.op = ReduceOp::min; break;
      default: opt.op = ReduceOp::max; break;
    }
    opt.root = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(nodes * ppn)));
    opt.check = check::CheckLevel::strict;
    opt.seed = seed;

    const auto cfg = net::test_cluster(nodes);
    const std::string what = std::string(coll::coll_kind_name(kind)) + "/" +
                             algo + " " + std::to_string(nodes) + "x" +
                             std::to_string(ppn) + " n=" +
                             std::to_string(count) + " " +
                             simmpi::dtype_name(dt) + " root=" +
                             std::to_string(opt.root) + " l=" +
                             std::to_string(spec.leaders);
    const auto a = measure_collective(kind, cfg, nodes, ppn,
                                      count * simmpi::dtype_size(dt), spec,
                                      opt);
    EXPECT_TRUE(a.verified) << what;
    const auto b = measure_collective(kind, cfg, nodes, ppn,
                                      count * simmpi::dtype_size(dt), spec,
                                      opt);
    EXPECT_EQ(a.avg_us, b.avg_us) << what << " nondeterministic time";
    EXPECT_EQ(a.events, b.events) << what;
  }
}

// ---------------------------------------------------------------------------
// Random workloads through the sweep executor, under strict simcheck.
//
// Each workload is a pure function of its seed: it builds its own Machine
// (strict checking, real data), runs one random registered allreduce with a
// random dtype/op/count/in-place/leader-count draw, and digests the outcome
// (result-buffer hash, engine event count, final simulated time, exactness
// against the serial reference). The digest vector must be byte-identical
// whether the batch ran serially or fanned across executor workers.

struct Workload {
  std::string algo;
  int nodes;
  int ppn;
  std::size_t count;
  Dtype dt;
  ReduceOp op;
  bool inplace;
  int leaders;

  std::string describe() const {
    return algo + " " + std::to_string(nodes) + "x" + std::to_string(ppn) +
           " n=" + std::to_string(count) + " " + simmpi::dtype_name(dt) +
           " " + simmpi::op_name(op) + (inplace ? " inplace" : "") +
           " l=" + std::to_string(leaders);
  }
};

Workload random_workload(std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  const auto algos =
      coll::CollRegistry::instance().names(coll::CollKind::allreduce);
  const Dtype dtypes[] = {Dtype::f32, Dtype::f64, Dtype::i32, Dtype::i64,
                          Dtype::u8};
  Workload w;
  w.algo = algos[rng.next_below(algos.size())];
  w.nodes = static_cast<int>(2 + rng.next_below(3));
  w.ppn = static_cast<int>(1 + rng.next_below(4));
  const auto& d = coll::CollRegistry::instance().at(coll::CollKind::allreduce,
                                                    w.algo);
  while (w.nodes * w.ppn < d.caps.min_comm_size) ++w.ppn;
  w.count = 1 + rng.next_below(1200);
  w.dt = dtypes[rng.next_below(std::size(dtypes))];
  switch (rng.next_below(5)) {
    case 0: w.op = ReduceOp::sum; break;
    case 1: w.op = ReduceOp::min; break;
    case 2: w.op = ReduceOp::max; break;
    case 3:
      w.op = ReduceOp::prod;
      w.count = 1 + rng.next_below(63);  // keep products representable
      break;
    default:
      w.op = (w.dt == Dtype::f32 || w.dt == Dtype::f64) ? ReduceOp::sum
                                                        : ReduceOp::bor;
      break;
  }
  w.inplace = rng.next_below(2) == 1;
  w.leaders = static_cast<int>(1 + rng.next_below(8));
  return w;
}

struct WorkloadDigest {
  std::uint64_t data_hash = 0;
  std::uint64_t events = 0;
  sim::Time end_time = 0;
  bool exact = false;  // every rank's buffer equals the serial reference
};

std::uint64_t fnv1a(std::uint64_t h, const std::vector<std::byte>& bytes) {
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

WorkloadDigest run_workload(const Workload& w, std::uint64_t seed) {
  const net::ClusterConfig cfg = net::test_cluster(w.nodes);
  simmpi::RunOptions ropt;
  ropt.with_data = true;
  ropt.seed = seed;
  ropt.check_level = check::CheckLevel::strict;
  simmpi::Machine m(cfg, w.nodes, w.ppn, ropt);

  const auto& d = coll::CollRegistry::instance().at(coll::CollKind::allreduce,
                                                    w.algo);
  coll::CollSpec spec;
  spec.algo = w.algo;
  spec.leaders = w.leaders;
  std::optional<sharp::SharpFabric> fabric;
  if (d.caps.needs_fabric || w.algo == "dpml-auto") {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  const int world = w.nodes * w.ppn;
  const std::size_t esize = simmpi::dtype_size(w.dt);
  std::vector<std::vector<std::byte>> sendb(static_cast<std::size_t>(world));
  std::vector<std::vector<std::byte>> recvb(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    const auto i = static_cast<std::size_t>(r);
    auto operand = simmpi::make_operand(w.dt, w.count, r, w.op, seed);
    if (w.inplace) {
      recvb[i] = std::move(operand);  // recv holds the input (MPI_IN_PLACE)
    } else {
      sendb[i] = std::move(operand);
      recvb[i].resize(w.count * esize);
    }
  }

  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    const auto i = static_cast<std::size_t>(r.world_rank());
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = w.count;
    a.dt = w.dt;
    a.op = w.op;
    a.inplace = w.inplace;
    if (!w.inplace) a.send = sendb[i];
    a.recv = recvb[i];
    co_await core::run_collective(coll::CollKind::allreduce, a, spec);
  });

  const auto ref = simmpi::reference_allreduce(w.dt, w.count, world, w.op,
                                               seed);
  WorkloadDigest dg;
  dg.exact = true;
  dg.data_hash = 1469598103934665603ull;  // FNV offset basis
  for (int r = 0; r < world; ++r) {
    const auto& buf = recvb[static_cast<std::size_t>(r)];
    dg.exact = dg.exact && buf == ref;
    dg.data_hash = fnv1a(dg.data_hash, buf);
  }
  dg.events = m.engine().events_processed();
  dg.end_time = m.engine().now();
  return dg;
}

TEST(ExecutorProperty, RandomWorkloadsByteIdenticalAcrossJobCounts) {
  constexpr std::size_t kBatch = 24;
  const auto digest_all = [&](int jobs) {
    return Executor(jobs).map<WorkloadDigest>(kBatch, [](std::size_t i) {
      const std::uint64_t seed = 1000 + i;
      return run_workload(random_workload(seed), seed);
    });
  };
  const std::vector<WorkloadDigest> serial = digest_all(1);
  const std::vector<WorkloadDigest> wide = digest_all(4);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < kBatch; ++i) {
    const std::string what =
        "seed " + std::to_string(1000 + i) + ": " +
        random_workload(1000 + i).describe();
    EXPECT_TRUE(serial[i].exact) << what;
    EXPECT_EQ(serial[i].data_hash, wide[i].data_hash) << what;
    EXPECT_EQ(serial[i].events, wide[i].events) << what;
    EXPECT_EQ(serial[i].end_time, wide[i].end_time) << what;
    EXPECT_EQ(serial[i].exact, wide[i].exact) << what;
  }
}

// ---------------------------------------------------------------------------
// Randomized multi-tenant workloads (docs/MODEL.md §11-§12): seeded random
// (job mix, placement policy, background load, adaptive on/off)
// combinations must digest byte-identically across reruns and sweep-executor
// widths — the determinism contract extended over the tenant + adapt layers.

struct TenantWorkload {
  std::vector<tenant::JobSpec> jobs;
  tenant::TenantOptions opt;
  std::string desc;
};

TenantWorkload random_tenant_workload(std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  // Sub-communicator-safe patterns only (world_only designs cannot run on a
  // tenant slice).
  struct Pick {
    coll::CollKind kind;
    const char* algo;
  };
  static const Pick kPicks[] = {
      {coll::CollKind::allreduce, "ring"},
      {coll::CollKind::allreduce, "rsa"},
      {coll::CollKind::allreduce, "cring"},
      {coll::CollKind::allgather, "ring"},
      {coll::CollKind::reduce_scatter, "ring"},
      {coll::CollKind::bcast, "binomial"},
      {coll::CollKind::alltoall, "auto"},
  };
  static const tenant::Placement kPlacements[] = {
      tenant::Placement::block, tenant::Placement::round_robin,
      tenant::Placement::random};
  static const double kLoads[] = {0.0, 0.2, 0.4};

  TenantWorkload w;
  const int njobs = static_cast<int>(2 + rng.next_below(2));  // 2..3
  int budget = 8;
  for (int j = 0; j < njobs; ++j) {
    const Pick& p = kPicks[rng.next_below(std::size(kPicks))];
    tenant::JobSpec s;
    s.name = "j" + std::to_string(j);
    s.kind = p.kind;
    s.algo = p.algo;
    // Leave 2 nodes for every job still to be drawn.
    const int max_nodes = budget - 2 * (njobs - 1 - j);
    s.nodes = static_cast<int>(
        2 + rng.next_below(static_cast<std::uint64_t>(
                std::max(1, max_nodes - 1))));
    budget -= s.nodes;
    s.bytes = std::size_t{4096} << rng.next_below(4);  // 4K..32K
    s.leaders = p.algo == std::string("cring")
                    ? static_cast<int>(2 + rng.next_below(3))
                    : 1;
    s.iterations = 2;
    w.jobs.push_back(std::move(s));
  }
  w.opt.seed = seed;
  w.opt.placement = kPlacements[rng.next_below(std::size(kPlacements))];
  const double load = kLoads[rng.next_below(std::size(kLoads))];
  if (load > 0.0) {
    tenant::TrafficSpec t;
    t.matrix = tenant::Matrix::uniform;
    t.load = load;
    t.bytes = 32768;
    t.seed = seed;
    w.opt.traffic = t;
  }
  w.opt.adapt = rng.next_below(2) == 1;  // both modes covered across seeds
  w.desc = std::to_string(njobs) + " jobs, placement " +
           tenant::placement_name(w.opt.placement) + ", load " +
           std::to_string(load) + (w.opt.adapt ? ", adaptive" : ", static");
  return w;
}

std::uint64_t tenant_digest(const tenant::TenantResult& r) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_d = [&](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  const auto mix_s = [&](const std::string& s) {
    for (char c : s) mix(static_cast<std::uint64_t>(c));
  };
  mix_d(r.makespan_us);
  mix(r.events);
  mix(r.flows);
  mix(r.bg_flows);
  mix(static_cast<std::uint64_t>(r.shared_links));
  mix_s(r.hot_link);
  mix_s(r.adapt_table);
  for (const tenant::JobStats& j : r.jobs) {
    mix_d(j.start_us);
    mix_d(j.makespan_us);
    mix_d(j.solo_us);
    mix_d(j.stall_us);
    mix_s(j.final_algo);
    mix(static_cast<std::uint64_t>(j.final_leaders));
    mix(static_cast<std::uint64_t>(j.replans));
    mix(static_cast<std::uint64_t>(j.max_level));
  }
  return h;
}

TEST(AdaptTenantProperty, RandomMixesByteIdenticalAcrossRerunsAndWidths) {
  const net::ClusterConfig cfg = net::test_cluster(8);
  bool saw_adapt = false;
  bool saw_static = false;
  for (std::uint64_t seed = 2000; seed < 2012; ++seed) {
    TenantWorkload w = random_tenant_workload(seed);
    saw_adapt = saw_adapt || w.opt.adapt;
    saw_static = saw_static || !w.opt.adapt;
    const std::string what = "seed " + std::to_string(seed) + ": " + w.desc;
    w.opt.jobs = 1;
    const std::uint64_t serial =
        tenant_digest(tenant::run_tenants(cfg, 2, w.jobs, w.opt));
    const std::uint64_t rerun =
        tenant_digest(tenant::run_tenants(cfg, 2, w.jobs, w.opt));
    EXPECT_EQ(serial, rerun) << what;
    w.opt.jobs = 4;
    const std::uint64_t wide =
        tenant_digest(tenant::run_tenants(cfg, 2, w.jobs, w.opt));
    EXPECT_EQ(serial, wide) << what;
  }
  // The seeded draw must exercise both selection modes.
  EXPECT_TRUE(saw_adapt);
  EXPECT_TRUE(saw_static);
}

}  // namespace
}  // namespace dpml::core
