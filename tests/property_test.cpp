// Randomized property tests: for seeded random (algorithm, shape, size,
// datatype, operator) combinations, every design must produce the exact
// serial-reference result, identical simulated time across repeats, and no
// leaked node-shared state.
#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "util/rng.hpp"

namespace dpml::core {
namespace {

using simmpi::Dtype;
using simmpi::ReduceOp;

struct Scenario {
  Algorithm algo;
  int nodes;
  int ppn;
  std::size_t count;
  Dtype dt;
  ReduceOp op;
  int leaders;
  int pipeline_k;
};

Scenario random_scenario(std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  const Algorithm algos[] = {
      Algorithm::recursive_doubling, Algorithm::reduce_scatter_allgather,
      Algorithm::ring,               Algorithm::binomial,
      Algorithm::gather_bcast,       Algorithm::single_leader,
      Algorithm::dpml,               Algorithm::sharp_node_leader,
      Algorithm::sharp_socket_leader, Algorithm::mvapich2,
      Algorithm::intelmpi,           Algorithm::dpml_auto,
  };
  const Dtype dtypes[] = {Dtype::f32, Dtype::f64, Dtype::i32, Dtype::i64,
                          Dtype::u8};
  // Ops applicable to all dtypes above (prod kept exact by the operand
  // generator; bitwise restricted to integer dtypes below).
  Scenario s;
  s.algo = algos[rng.next_below(std::size(algos))];
  s.nodes = static_cast<int>(1 + rng.next_below(6));
  s.ppn = static_cast<int>(1 + rng.next_below(4));
  s.count = rng.next_below(1500);
  s.dt = dtypes[rng.next_below(std::size(dtypes))];
  switch (rng.next_below(5)) {
    case 0: s.op = ReduceOp::sum; break;
    case 1: s.op = ReduceOp::min; break;
    case 2: s.op = ReduceOp::max; break;
    case 3:
      s.op = ReduceOp::prod;
      s.count = rng.next_below(64);  // keep products representable
      break;
    default:
      s.op = (s.dt == Dtype::f32 || s.dt == Dtype::f64) ? ReduceOp::sum
                                                        : ReduceOp::bor;
      break;
  }
  s.leaders = static_cast<int>(1 + rng.next_below(16));
  s.pipeline_k = static_cast<int>(1 + rng.next_below(4));
  return s;
}

class RandomScenario : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScenario, ExactAndDeterministic) {
  const Scenario s = random_scenario(GetParam());
  AllreduceSpec spec;
  spec.algo = s.algo;
  spec.leaders = s.leaders;
  spec.pipeline_k = s.pipeline_k;
  MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.dt = s.dt;
  opt.op = s.op;
  opt.seed = GetParam();
  auto cfg = net::test_cluster(s.nodes);
  const auto a = measure_allreduce(cfg, s.nodes, s.ppn,
                                   s.count * simmpi::dtype_size(s.dt), spec,
                                   opt);
  EXPECT_TRUE(a.verified)
      << algorithm_name(s.algo) << " " << s.nodes << "x" << s.ppn << " n="
      << s.count << " " << simmpi::dtype_name(s.dt) << " "
      << simmpi::op_name(s.op) << " l=" << s.leaders << " k=" << s.pipeline_k;
  const auto b = measure_allreduce(cfg, s.nodes, s.ppn,
                                   s.count * simmpi::dtype_size(s.dt), spec,
                                   opt);
  EXPECT_EQ(a.avg_us, b.avg_us) << "nondeterministic simulated time";
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomScenario,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dpml::core
