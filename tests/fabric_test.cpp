// Flow-level fabric invariants: derived link plans enforce every preset's
// nodes_per_leaf/oversubscription, the max-min allocator matches
// hand-computed fair shares, ECMP hashing is deterministic, per-link rate
// conservation holds through whole collective runs, and the registry-wide
// strict-checked matrix stays bit-correct under --fabric. Also locks the
// calibration contract: at 1:1 the flow fabric tracks the LogGP transport
// within a few percent, and a thinner core monotonically slows cross-leaf
// allreduce.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "core/measure.hpp"
#include "fabric/fabric.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace dpml {
namespace {

using coll::CollKind;
using coll::CollRegistry;
using fabric::FabricLevel;
using fabric::FabricTopo;
using fabric::FlowFabric;

// ---------------------------------------------------------------------------
// Topology derivation: the enforced meaning of the ClusterConfig fields.

TEST(FabricTopoTest, TestClusterDerivesNonBlockingWays) {
  const auto cfg = net::test_cluster(8);
  const FabricTopo t = FabricTopo::derive(cfg, 8);
  EXPECT_EQ(t.nodes, 8);
  EXPECT_EQ(t.nodes_per_leaf, 4);
  EXPECT_EQ(t.leaves, 2);
  // 1:1 over 4-node leaves of 12 GB/s links: 4 ways at full edge speed.
  EXPECT_EQ(t.ecmp_ways, 4);
  EXPECT_DOUBLE_EQ(t.core_way_gbps, cfg.nic.link_bw);
  EXPECT_DOUBLE_EQ(t.leaf_core_gbps(), 4 * cfg.nic.link_bw);
  // 2 edges per node + up/down ways per leaf.
  EXPECT_EQ(t.num_links(), 2 * 8 + 2 * 2 * 4);
}

TEST(FabricTopoTest, ClusterDDerivesOversubscribedWays) {
  const auto cfg = net::cluster_d();  // npl=2, 11 GB/s links, 1.25:1
  const FabricTopo t = FabricTopo::derive(cfg, cfg.total_nodes);
  EXPECT_EQ(t.nodes_per_leaf, 2);
  // leaf core = 2 * 11 / 1.25 = 17.6 GB/s -> 2 ways of 8.8 GB/s each:
  // strictly thinner than the edge links they feed.
  EXPECT_EQ(t.ecmp_ways, 2);
  EXPECT_NEAR(t.core_way_gbps, 8.8, 1e-12);
  EXPECT_LT(t.core_way_gbps, cfg.nic.link_bw);
}

TEST(FabricTopoTest, OversubscriptionThinsTheWays) {
  auto cfg = net::test_cluster(8);
  cfg.oversubscription = 2.0;
  const FabricTopo t = FabricTopo::derive(cfg, 8);
  // leaf core halves to 24 GB/s: two full-speed ways instead of four.
  EXPECT_EQ(t.ecmp_ways, 2);
  EXPECT_DOUBLE_EQ(t.core_way_gbps, cfg.nic.link_bw);
  EXPECT_DOUBLE_EQ(t.leaf_core_gbps(), 2 * cfg.nic.link_bw);
}

TEST(FabricTopoTest, EveryPresetDerivesCleanly) {
  for (const auto& cfg : net::all_clusters()) {
    const FabricTopo t = FabricTopo::derive(cfg, cfg.total_nodes);
    EXPECT_GE(t.ecmp_ways, 1) << cfg.name;
    EXPECT_GT(t.core_way_gbps, 0.0) << cfg.name;
    EXPECT_LE(t.core_way_gbps, cfg.nic.link_bw + 1e-12) << cfg.name;
    // The carved ways reproduce the declared oversubscription exactly.
    EXPECT_NEAR(t.leaf_core_gbps(),
                cfg.nic.link_bw * cfg.nodes_per_leaf / cfg.oversubscription,
                1e-9)
        << cfg.name;
  }
}

TEST(FabricTopoTest, InvalidConfigsAreRejected) {
  auto cfg = net::test_cluster(4);
  cfg.oversubscription = 0.5;  // a core fatter than the edge demand is a typo
  EXPECT_THROW((void)FabricTopo::derive(cfg, 4), util::InvariantError);
  cfg = net::test_cluster(4);
  cfg.nodes_per_leaf = 0;
  EXPECT_THROW((void)FabricTopo::derive(cfg, 4), util::InvariantError);
}

TEST(FabricLevelTest, NamesRoundTrip) {
  EXPECT_STREQ(fabric::fabric_level_name(FabricLevel::none), "none");
  EXPECT_STREQ(fabric::fabric_level_name(FabricLevel::links), "links");
  EXPECT_EQ(fabric::fabric_level_by_name("links"), FabricLevel::links);
  EXPECT_EQ(fabric::fabric_level_by_name("none"), FabricLevel::none);
  EXPECT_THROW((void)fabric::fabric_level_by_name("wires"),
               util::InvariantError);
}

// ---------------------------------------------------------------------------
// ECMP hashing: stateless, deterministic, in range.

TEST(FabricEcmpTest, DeterministicAndInRange) {
  for (int ways : {1, 2, 4, 24}) {
    for (int s = 0; s < 8; ++s) {
      for (int d = 0; d < 8; ++d) {
        const int w = FlowFabric::ecmp_way(s, d, ways);
        EXPECT_GE(w, 0);
        EXPECT_LT(w, ways);
        EXPECT_EQ(w, FlowFabric::ecmp_way(s, d, ways));  // stateless
        if (ways == 1) {
          EXPECT_EQ(w, 0);
        }
      }
    }
  }
}

TEST(FabricEcmpTest, SpreadsPairsAcrossWays) {
  // Not a uniformity proof — just that the hash is not constant, so the
  // carved ways actually load-share.
  std::vector<int> hits(4, 0);
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s != d) ++hits[static_cast<std::size_t>(FlowFabric::ecmp_way(s, d, 4))];
    }
  }
  for (int w = 0; w < 4; ++w) EXPECT_GT(hits[static_cast<std::size_t>(w)], 0);
}

// ---------------------------------------------------------------------------
// Max-min fairness on hand-computable fixtures, driving FlowFabric directly.

TEST(FabricFairnessTest, TwoFlowsSplitASharedUplinkEvenly) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(4);  // one leaf: 0 -> 1 is 2 links
  FlowFabric ff(eng, cfg, 4);
  std::vector<sim::Time> done;
  double rate_a = 0.0;
  double rate_b = 0.0;
  eng.schedule_call(0, [&]() {
    // Two 2400 B flows 0 -> 1 share node0.up (12 GB/s): 6 GB/s each, and
    // 2400 B / 6 GB/s = 400 ns.
    const auto a = ff.start_flow(0, 1, 2400, cfg.nic.link_bw,
                                 [&](sim::Time t) { done.push_back(t); });
    const auto b = ff.start_flow(0, 1, 2400, cfg.nic.link_bw,
                                 [&](sim::Time t) { done.push_back(t); });
    rate_a = ff.flow_rate_gbps(a);
    rate_b = ff.flow_rate_gbps(b);
  });
  eng.run();
  EXPECT_NEAR(rate_a, 6.0, 1e-6);
  EXPECT_NEAR(rate_b, 6.0, 1e-6);
  ASSERT_EQ(done.size(), 2u);
  // The first completion lands exactly at the fair-share finish; the
  // survivor's rescheduled tail may land one tick later.
  const sim::Time expect = sim::Time{400} * sim::kNanosecond;
  EXPECT_EQ(done[0], expect);
  EXPECT_LE(done[1] - expect, 1);
  EXPECT_EQ(ff.active_flows(), 0);
  EXPECT_EQ(ff.total_flows(), 2u);
  // The shared uplink ran saturated and congested for the whole transfer.
  EXPECT_NEAR(ff.peak_link_utilization(), 1.0, 1e-6);
  EXPECT_GE(ff.link_congested_time(ff.uplink(0), eng.now()), expect);
}

TEST(FabricFairnessTest, CappedFlowFreezesAndLeavesTheRest) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(4);
  FlowFabric ff(eng, cfg, 4);
  double rate_capped = 0.0;
  double rate_free = 0.0;
  eng.schedule_call(0, [&]() {
    // Progressive filling, two rounds: the cap-3 flow freezes at 3 GB/s,
    // then the free flow takes the remaining 9 GB/s of the shared uplink.
    const auto free = ff.start_flow(0, 1, 1 << 20, 12.0, nullptr);
    const auto capped = ff.start_flow(0, 1, 1 << 20, 3.0, nullptr);
    rate_free = ff.flow_rate_gbps(free);
    rate_capped = ff.flow_rate_gbps(capped);
  });
  eng.run();
  EXPECT_NEAR(rate_capped, 3.0, 1e-6);
  EXPECT_NEAR(rate_free, 9.0, 1e-6);
}

TEST(FabricFairnessTest, ThreeFlowBottleneckMatchesHandComputation) {
  sim::Engine eng;
  auto cfg = net::test_cluster(8);
  cfg.nodes_per_leaf = 2;  // nodes {0,1} on leaf 0, {2,3} on leaf 1: 1:1 core
  FlowFabric ff(eng, cfg, 4);
  double r02 = 0.0;
  double r12 = 0.0;
  double r13 = 0.0;
  eng.schedule_call(0, [&]() {
    // Classic max-min fixture: flows 0->2 and 1->2 share node2.down
    // (bottleneck, 6 GB/s each); flow 1->3 then gets node1.up's remainder.
    const auto a = ff.start_flow(0, 2, 1 << 20, 12.0, nullptr);
    const auto b = ff.start_flow(1, 2, 1 << 20, 12.0, nullptr);
    const auto c = ff.start_flow(1, 3, 1 << 20, 12.0, nullptr);
    r02 = ff.flow_rate_gbps(a);
    r12 = ff.flow_rate_gbps(b);
    r13 = ff.flow_rate_gbps(c);
  });
  eng.run();
  EXPECT_NEAR(r02, 6.0, 1e-6);
  EXPECT_NEAR(r12, 6.0, 1e-6);
  // 1->3 is limited only by what 1->2 left on node1.up — unless both of
  // node 1's flows hash to the same (saturable) core way; either way the
  // allocation must be max-min consistent and conserve node1.up.
  EXPECT_GE(r13, 6.0 - 1e-6);
  EXPECT_LE(r12 + r13, 12.0 + 1e-6);
}

TEST(FabricFairnessTest, SingleLegFlowsUseOneEdgeLink) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(4);
  FlowFabric ff(eng, cfg, 4);
  std::vector<sim::Time> done;
  eng.schedule_call(0, [&]() {
    // 1200 B at a full 12 GB/s edge link: 100 ns, no sharing.
    ff.start_uplink_flow(0, 1200, 12.0,
                         [&](sim::Time t) { done.push_back(t); });
    ff.start_downlink_flow(1, 1200, 12.0,
                           [&](sim::Time t) { done.push_back(t); });
  });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], sim::Time{100} * sim::kNanosecond);
  // Every departure reschedules the survivors; a fully-drained survivor's
  // replacement event lands one tick later.
  EXPECT_LE(done[1] - sim::Time{100} * sim::kNanosecond, 1);
  // Disjoint links: neither congested nor shared.
  EXPECT_EQ(ff.link_congested_time(ff.uplink(0), eng.now()), 0);
  EXPECT_NEAR(ff.peak_link_utilization(), 1.0, 1e-6);
}

TEST(FabricFairnessTest, ZeroByteFlowsCompleteAtTheSameInstant) {
  sim::Engine eng;
  const auto cfg = net::test_cluster(4);
  FlowFabric ff(eng, cfg, 4);
  std::vector<sim::Time> done;
  eng.schedule_call(sim::Time{7}, [&]() {
    ff.start_flow(0, 1, 0, 12.0, [&](sim::Time t) { done.push_back(t); });
    EXPECT_EQ(ff.active_flows(), 0);  // control flows occupy no bandwidth
  });
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], sim::Time{7});
  EXPECT_EQ(ff.total_flows(), 1u);
}

TEST(FabricFairnessTest, CrossLeafFlowsTraverseFourLinksAndContendInCore) {
  sim::Engine eng;
  auto cfg = net::test_cluster(8);
  cfg.nodes_per_leaf = 2;
  cfg.oversubscription = 2.0;  // one 12 GB/s way per leaf
  FlowFabric ff(eng, cfg, 4);
  ASSERT_EQ(ff.topo().ecmp_ways, 1);
  double r0 = 0.0;
  double r1 = 0.0;
  eng.schedule_call(0, [&]() {
    // Distinct sources and destinations: the only shared resource is leaf
    // 0's single core uplink way, which max-min splits 6/6.
    const auto a = ff.start_flow(0, 2, 1 << 20, 12.0, nullptr);
    const auto b = ff.start_flow(1, 3, 1 << 20, 12.0, nullptr);
    r0 = ff.flow_rate_gbps(a);
    r1 = ff.flow_rate_gbps(b);
  });
  eng.run();
  EXPECT_NEAR(r0, 6.0, 1e-6);
  EXPECT_NEAR(r1, 6.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Whole-machine runs through the measurement harness.

core::MeasureOptions fabric_opt(FabricLevel level) {
  core::MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.fabric = level;
  return opt;
}

double dpml_latency(const net::ClusterConfig& cfg, std::size_t bytes,
                    const core::MeasureOptions& opt,
                    core::MeasureResult* out = nullptr) {
  coll::CollSpec spec;
  spec.algo = "dpml";
  spec.leaders = 2;
  const auto r = core::measure_collective(CollKind::allreduce, cfg, 4, 4,
                                          bytes, spec, opt);
  if (out != nullptr) *out = r;
  return r.avg_us;
}

TEST(FabricMachineTest, MetadataIsRecordedOnlyUnderFabric) {
  const auto cfg = net::test_cluster(4);
  core::MeasureResult off;
  dpml_latency(cfg, 65536, fabric_opt(FabricLevel::none), &off);
  EXPECT_FALSE(off.fabric_links);
  EXPECT_DOUBLE_EQ(off.max_link_util, 0.0);

  core::MeasureResult on;
  dpml_latency(cfg, 65536, fabric_opt(FabricLevel::links), &on);
  EXPECT_TRUE(on.fabric_links);
  EXPECT_DOUBLE_EQ(on.oversubscription, cfg.oversubscription);
  // Real traffic crossed the links, and the time-averaged utilization of
  // the busiest link can never exceed 1 (rate conservation; the allocator
  // additionally DPML_CHECKs instantaneous conservation on every recompute).
  EXPECT_GT(on.max_link_util, 0.0);
  EXPECT_LE(on.max_link_util, 1.0 + 1e-6);
}

TEST(FabricMachineTest, FabricRunsAreDeterministic) {
  const auto cfg = net::test_cluster(4);
  const double a = dpml_latency(cfg, 65536, fabric_opt(FabricLevel::links));
  const double b = dpml_latency(cfg, 65536, fabric_opt(FabricLevel::links));
  EXPECT_EQ(a, b);  // exact: same event order, same allocations
}

TEST(FabricMachineTest, NonBlockingFabricTracksLogGP) {
  // Calibration contract: on a 1:1 cluster the flows never contend, so the
  // flow fabric must reproduce the LogGP transport within a few percent
  // (same endpoint serialization, same path latencies).
  const auto cfg = net::test_cluster(4);
  for (std::size_t bytes : {2048ul, 65536ul}) {
    const double loggp =
        dpml_latency(cfg, bytes, fabric_opt(FabricLevel::none));
    const double flows =
        dpml_latency(cfg, bytes, fabric_opt(FabricLevel::links));
    EXPECT_NEAR(flows / loggp, 1.0, 0.05)
        << "bytes=" << bytes << " loggp=" << loggp << " flows=" << flows;
  }
}

TEST(FabricMachineTest, ThinnerCoreMonotonicallySlowsAllreduce) {
  // Edge-saturating NICs on 2-node leaves: the cross-leaf leader exchange
  // is exactly the demand an oversubscribed core cannot carry.
  auto cfg = net::test_cluster(4);
  cfg.nodes_per_leaf = 2;
  cfg.nic.proc_bw = cfg.nic.link_bw;
  std::vector<double> lat;
  for (double os : {1.0, 2.0, 4.0}) {
    cfg.oversubscription = os;
    lat.push_back(dpml_latency(cfg, 262144, fabric_opt(FabricLevel::links)));
  }
  EXPECT_GT(lat[1], lat[0]);
  EXPECT_GE(lat[2], lat[1]);
  EXPECT_GT(lat[2], lat[0]);
}

// ---------------------------------------------------------------------------
// Registry-wide matrix under --fabric with strict checking and real data:
// the flow model changes *when* bytes move, never *which* bytes move.

TEST(FabricMatrixTest, EveryAlgorithmStaysBitCorrectUnderFabric) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  constexpr int kNodes = 3;
  constexpr int kPpn = 4;
  const std::size_t sizes[] = {64, 8192};  // eager and rendezvous
  for (CollKind kind : coll::kAllCollKinds) {
    for (const coll::CollDescriptor* d : CollRegistry::instance().list(kind)) {
      if (kNodes * kPpn < d->caps.min_comm_size) continue;
      for (std::size_t bytes : sizes) {
        core::MeasureOptions opt;
        opt.iterations = 2;
        opt.warmup = 0;
        opt.with_data = true;
        opt.root = 1;
        opt.check = check::CheckLevel::strict;
        opt.fabric = FabricLevel::links;
        coll::CollSpec spec;
        spec.algo = d->name;
        spec.leaders = 2;
        const std::string what = std::string(coll::coll_kind_name(kind)) +
                                 "/" + d->name + " bytes=" +
                                 std::to_string(bytes);
        core::MeasureResult res;
        ASSERT_NO_THROW(res = core::measure_collective(kind, cfg, kNodes,
                                                       kPpn, bytes, spec,
                                                       opt))
            << what;
        EXPECT_TRUE(res.verified) << what;
        EXPECT_TRUE(res.fabric_links) << what;
      }
    }
  }
}

}  // namespace
}  // namespace dpml
