// Workload kernels: osu_mbw_mr, HPCG DDOT, miniAMR refinement.
#include <gtest/gtest.h>

#include "apps/hpcg.hpp"
#include "apps/miniamr.hpp"
#include "apps/osu.hpp"
#include "net/cluster.hpp"

namespace dpml::apps {
namespace {

TEST(OsuMbwMr, SinglePairBandwidthIsPositiveAndBounded) {
  auto cfg = net::cluster_b();
  MbwMrOptions o;
  o.pairs = 1;
  o.bytes = 64 * 1024;
  const auto r = osu_mbw_mr(cfg, o);
  EXPECT_GT(r.mb_per_s, 100.0);
  EXPECT_LT(r.mb_per_s, cfg.nic.link_bw * 1000.0);  // cannot exceed the link
}

TEST(OsuMbwMr, IntraNodeScalesWithPairs) {
  auto cfg = net::cluster_b();
  const double rel = relative_throughput(cfg, 8, 4096, /*intra_node=*/true);
  EXPECT_GT(rel, 5.0);  // Figure 1(a): close to #pairs
}

TEST(OsuMbwMr, InterNodeIbScalesAtAllSizes) {
  auto cfg = net::cluster_b();
  EXPECT_GT(relative_throughput(cfg, 4, 64, false), 3.0);
  EXPECT_GT(relative_throughput(cfg, 4, 256 * 1024, false), 3.0);
}

TEST(OsuMbwMr, InterNodeOpaHasZones) {
  auto cfg = net::cluster_c();
  EXPECT_GT(relative_throughput(cfg, 8, 64, false), 5.0);        // Zone A
  EXPECT_LT(relative_throughput(cfg, 8, 512 * 1024, false), 1.6);  // Zone C
}

TEST(OsuMbwMr, MessageRateReportedConsistently) {
  auto cfg = net::cluster_c();
  MbwMrOptions o;
  o.pairs = 2;
  o.bytes = 8;
  const auto r = osu_mbw_mr(cfg, o);
  EXPECT_NEAR(r.mb_per_s * 1e6, r.msg_per_s * 8.0, 1.0);
}

TEST(OsuLatency, PingpongLatenciesAreOrdered) {
  auto cfg = net::cluster_b();
  const double small = osu_latency(cfg, 8);
  const double large = osu_latency(cfg, 1 << 20);
  EXPECT_GT(small, 0.5e-6);   // ~1us MPI pingpong
  EXPECT_LT(small, 3e-6);
  EXPECT_GT(large, small * 10);  // bandwidth term dominates
  // Intra-node (same socket) is faster than crossing the fabric.
  EXPECT_LT(osu_latency(cfg, 8, /*intra_node=*/true), small);
}

TEST(OsuMbwMr, RejectsOverwideShapes) {
  auto cfg = net::test_cluster(2);  // 4 cores per node
  MbwMrOptions o;
  o.pairs = 8;
  o.intra_node = true;  // needs 16 cores
  EXPECT_THROW(osu_mbw_mr(cfg, o), util::InvariantError);
}

TEST(Hpcg, RunsAndTimesDdot) {
  auto cfg = net::cluster_a();
  HpcgOptions o;
  o.nodes = 2;
  o.ppn = 28;
  o.iterations = 5;
  o.spec.algo = core::Algorithm::mvapich2;
  const auto r = run_hpcg(cfg, o);
  EXPECT_EQ(r.ddots, 15);  // 3 per iteration
  EXPECT_GT(r.ddot_s, 0.0);
  EXPECT_GT(r.total_s, r.ddot_s);
}

TEST(Hpcg, SharpImprovesDdot) {
  auto cfg = net::cluster_a();
  HpcgOptions host;
  host.nodes = 2;
  host.ppn = 28;
  host.iterations = 5;
  host.spec.algo = core::Algorithm::mvapich2;
  HpcgOptions sharp = host;
  sharp.spec.algo = core::Algorithm::sharp_socket_leader;
  const auto a = run_hpcg(cfg, host);
  const auto b = run_hpcg(cfg, sharp);
  // Paper Figure 11(a): SHArP designs improve DDOT time.
  EXPECT_LT(b.ddot_s, a.ddot_s);
}

TEST(Hpcg, Deterministic) {
  auto cfg = net::cluster_a();
  HpcgOptions o;
  o.nodes = 2;
  o.ppn = 4;
  o.iterations = 3;
  o.spec.algo = core::Algorithm::dpml;
  const auto a = run_hpcg(cfg, o);
  const auto b = run_hpcg(cfg, o);
  EXPECT_EQ(a.ddot_s, b.ddot_s);
  EXPECT_EQ(a.total_s, b.total_s);
}

TEST(MiniAmr, RunsAndEvolvesBlocks) {
  auto cfg = net::cluster_c();
  MiniAmrOptions o;
  o.nodes = 2;
  o.ppn = 8;
  o.refine_steps = 10;
  o.spec.algo = core::Algorithm::mvapich2;
  const auto r = run_miniamr(cfg, o);
  EXPECT_GT(r.refine_s, 0.0);
  EXPECT_GT(r.total_s, r.refine_s * 0.5);
  EXPECT_GT(r.final_blocks, 0u);
}

TEST(MiniAmr, DpmlImprovesRefinementTime) {
  auto cfg = net::cluster_c();
  MiniAmrOptions base;
  base.nodes = 4;
  base.ppn = 28;
  base.refine_steps = 6;
  base.blocks_per_rank = 32;  // large refinement vectors
  base.spec.algo = core::Algorithm::mvapich2;
  MiniAmrOptions ours = base;
  ours.spec.algo = core::Algorithm::dpml_auto;
  const auto a = run_miniamr(cfg, base);
  const auto b = run_miniamr(cfg, ours);
  // Paper Figure 11(b): up to ~40% over MVAPICH2 on cluster C.
  EXPECT_LT(b.refine_s, a.refine_s);
}

TEST(MiniAmr, DeterministicAcrossRuns) {
  auto cfg = net::cluster_d();
  MiniAmrOptions o;
  o.nodes = 2;
  o.ppn = 16;
  o.refine_steps = 5;
  o.spec.algo = core::Algorithm::intelmpi;
  const auto a = run_miniamr(cfg, o);
  const auto b = run_miniamr(cfg, o);
  EXPECT_EQ(a.refine_s, b.refine_s);
  EXPECT_EQ(a.final_blocks, b.final_blocks);
}

}  // namespace
}  // namespace dpml::apps
