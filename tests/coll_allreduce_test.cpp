// Correctness of every allreduce design: parameterized sweeps verified
// bit-for-bit against the serial reference reduction (verify.hpp generates
// operands whose reductions are exact in any combination order).
#include <gtest/gtest.h>

#include <ostream>
#include <string>
#include <tuple>

#include "core/measure.hpp"
#include "net/cluster.hpp"

namespace dpml::core {
namespace {

using simmpi::Dtype;
using simmpi::ReduceOp;

const Algorithm kAllAlgos[] = {
    Algorithm::recursive_doubling,
    Algorithm::reduce_scatter_allgather,
    Algorithm::ring,
    Algorithm::binomial,
    Algorithm::gather_bcast,
    Algorithm::single_leader,
    Algorithm::dpml,
    Algorithm::sharp_node_leader,
    Algorithm::sharp_socket_leader,
    Algorithm::mvapich2,
    Algorithm::intelmpi,
    Algorithm::dpml_auto,
};

struct Shape {
  int nodes;
  int ppn;
};

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.nodes << "x" << s.ppn;
}

MeasureResult run_case(Algorithm algo, Shape shape, std::size_t count,
                       Dtype dt = Dtype::f32, ReduceOp op = ReduceOp::sum,
                       int leaders = 2, int pipeline_k = 1) {
  auto cfg = net::test_cluster(shape.nodes);
  AllreduceSpec spec;
  spec.algo = algo;
  spec.leaders = leaders;
  spec.pipeline_k = pipeline_k;
  MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.dt = dt;
  opt.op = op;
  return measure_allreduce(cfg, shape.nodes, shape.ppn,
                           count * simmpi::dtype_size(dt), spec, opt);
}

// ---------------------------------------------------------------------------
// Sweep 1: every algorithm on every shape (fixed medium message).

class AlgoShape
    : public ::testing::TestWithParam<std::tuple<Algorithm, Shape>> {};

TEST_P(AlgoShape, ProducesExactResult) {
  const auto [algo, shape] = GetParam();
  const auto res = run_case(algo, shape, 257);  // odd count: ragged partitions
  EXPECT_TRUE(res.verified) << algorithm_name(algo) << " on " << shape.nodes
                            << "x" << shape.ppn;
  EXPECT_GT(res.avg_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgoShape,
    ::testing::Combine(::testing::ValuesIn(kAllAlgos),
                       ::testing::Values(Shape{1, 4}, Shape{2, 1}, Shape{2, 4},
                                         Shape{3, 4}, Shape{5, 3},
                                         Shape{8, 2}, Shape{7, 1})),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, Shape>>& info) {
      std::string name = algorithm_name(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      const Shape shape = std::get<1>(info.param);
      return name + "_" + std::to_string(shape.nodes) + "x" +
             std::to_string(shape.ppn);
    });

// ---------------------------------------------------------------------------
// Sweep 2: message sizes from empty to multi-chunk on a fixed shape.

class AlgoCount
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::size_t>> {};

TEST_P(AlgoCount, ProducesExactResult) {
  const auto [algo, count] = GetParam();
  const auto res = run_case(algo, Shape{4, 4}, count);
  EXPECT_TRUE(res.verified)
      << algorithm_name(algo) << " count=" << count;
}

INSTANTIATE_TEST_SUITE_P(
    MessageSizes, AlgoCount,
    ::testing::Combine(::testing::ValuesIn(kAllAlgos),
                       ::testing::Values<std::size_t>(0, 1, 2, 7, 16, 63, 256,
                                                      1000, 4096)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, std::size_t>>&
           info) {
      std::string name = algorithm_name(std::get<0>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: datatypes and operators (reduction arithmetic paths).

class DtypeOp
    : public ::testing::TestWithParam<std::tuple<Dtype, ReduceOp>> {};

TEST_P(DtypeOp, AllDesignsAgree) {
  const auto [dt, op] = GetParam();
  for (Algorithm algo :
       {Algorithm::recursive_doubling, Algorithm::reduce_scatter_allgather,
        Algorithm::ring, Algorithm::dpml, Algorithm::sharp_socket_leader}) {
    const auto res = run_case(algo, Shape{4, 4}, 129, dt, op);
    EXPECT_TRUE(res.verified)
        << algorithm_name(algo) << " " << simmpi::dtype_name(dt) << " "
        << simmpi::op_name(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, DtypeOp,
    ::testing::Values(
        std::make_tuple(Dtype::f32, ReduceOp::sum),
        std::make_tuple(Dtype::f64, ReduceOp::sum),
        std::make_tuple(Dtype::i32, ReduceOp::sum),
        std::make_tuple(Dtype::i64, ReduceOp::sum),
        std::make_tuple(Dtype::u8, ReduceOp::sum),
        std::make_tuple(Dtype::f32, ReduceOp::max),
        std::make_tuple(Dtype::f64, ReduceOp::min),
        std::make_tuple(Dtype::i32, ReduceOp::min),
        std::make_tuple(Dtype::f32, ReduceOp::prod),
        std::make_tuple(Dtype::i64, ReduceOp::band),
        std::make_tuple(Dtype::i32, ReduceOp::bor)),
    [](const ::testing::TestParamInfo<std::tuple<Dtype, ReduceOp>>& info) {
      return std::string(simmpi::dtype_name(std::get<0>(info.param))) + "_" +
             simmpi::op_name(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 4: DPML leader counts and pipeline depths.

class DpmlConfig
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DpmlConfig, ProducesExactResult) {
  const auto [leaders, k] = GetParam();
  const auto res = run_case(Algorithm::dpml, Shape{4, 4}, 1023, Dtype::f32,
                            ReduceOp::sum, leaders, k);
  EXPECT_TRUE(res.verified) << "l=" << leaders << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    LeadersByPipeline, DpmlConfig,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 16),
                       ::testing::Values(1, 2, 3, 5, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "l" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism and timing sanity.

TEST(Measure, DeterministicAcrossRepeats) {
  const auto a = run_case(Algorithm::dpml, Shape{4, 4}, 500);
  const auto b = run_case(Algorithm::dpml, Shape{4, 4}, 500);
  EXPECT_EQ(a.avg_us, b.avg_us);
  EXPECT_EQ(a.events, b.events);
}

TEST(Measure, MetadataAndDataModesAgreeOnTime) {
  AllreduceSpec spec;
  spec.algo = Algorithm::dpml;
  spec.leaders = 2;
  auto cfg = net::test_cluster(4);
  MeasureOptions with;
  with.with_data = true;
  MeasureOptions without;
  without.with_data = false;
  const auto a = measure_allreduce(cfg, 4, 4, 4096, spec, with);
  const auto b = measure_allreduce(cfg, 4, 4, 4096, spec, without);
  EXPECT_EQ(a.avg_us, b.avg_us);
}

TEST(Measure, LatencyMonotoneInMessageSize) {
  auto cfg = net::test_cluster(4);
  for (Algorithm algo : {Algorithm::recursive_doubling, Algorithm::dpml,
                         Algorithm::mvapich2}) {
    AllreduceSpec spec;
    spec.algo = algo;
    double prev = 0.0;
    for (std::size_t bytes : {64u, 1024u, 16384u, 262144u}) {
      const auto r = measure_allreduce(cfg, 4, 4, bytes, spec);
      EXPECT_GE(r.avg_us, prev) << algorithm_name(algo) << " at " << bytes;
      prev = r.avg_us;
    }
  }
}

TEST(Measure, WarmupIterationsExcluded) {
  auto cfg = net::test_cluster(2);
  AllreduceSpec spec;
  spec.algo = Algorithm::recursive_doubling;
  MeasureOptions o1;
  o1.iterations = 3;
  o1.warmup = 0;
  MeasureOptions o2;
  o2.iterations = 3;
  o2.warmup = 4;
  const auto a = measure_allreduce(cfg, 2, 2, 1024, spec, o1);
  const auto b = measure_allreduce(cfg, 2, 2, 1024, spec, o2);
  // Steady-state average should be stable regardless of warmup count.
  EXPECT_NEAR(a.avg_us, b.avg_us, a.avg_us * 0.25);
}

TEST(Measure, RejectsMisalignedSize) {
  auto cfg = net::test_cluster(2);
  AllreduceSpec spec;
  spec.algo = Algorithm::recursive_doubling;
  MeasureOptions opt;
  opt.dt = simmpi::Dtype::f64;
  EXPECT_THROW(measure_allreduce(cfg, 2, 2, 12, spec, opt),
               util::InvariantError);
}

TEST(Measure, SharpOnFabriclessClusterThrows) {
  auto cfg = net::cluster_b();  // no SHArP
  AllreduceSpec spec;
  spec.algo = Algorithm::sharp_node_leader;
  EXPECT_THROW(measure_allreduce(cfg, 2, 2, 64, spec), util::InvariantError);
}

}  // namespace
}  // namespace dpml::core
