// Determinism lock for the parallel sweep executor (docs/MODEL.md §8).
//
// Part 1 exercises the Executor itself: every index runs exactly once into
// its own slot, nested sweeps degrade to serial, and failures are
// serial-equivalent (the lowest-index error propagates; jobs above the first
// failure are cancelled).
//
// Part 2 locks the measurement contract: for every registered algorithm of
// every collective kind — including perturbed multi-repetition runs, strict
// simcheck, and the flow-level fabric — MeasureResult is byte-identical for
// any jobs count, because each repetition's seed is derived explicitly
// (perturb.seed + rep) and committed into its own slot.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "coll/registry.hpp"
#include "core/executor.hpp"
#include "core/measure.hpp"
#include "fabric/fabric.hpp"
#include "net/cluster.hpp"
#include "perturb/spec.hpp"

namespace dpml {
namespace {

using coll::CollKind;
using coll::CollRegistry;
using coll::CollSpec;
using core::Executor;

// ---------------------------------------------------------------------------
// Executor unit tests.

TEST(Executor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> calls(kN);
  Executor(4).run(kN, [&](std::size_t i) { ++calls[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(calls[i].load(), 1) << i;
}

TEST(Executor, MapCommitsIntoSlotOrder) {
  const std::vector<std::size_t> out = Executor(4).map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Executor, JobsResolutionAndClamping) {
  core::set_default_jobs(3);
  EXPECT_EQ(core::default_jobs(), 3);
  EXPECT_EQ(Executor(0).jobs(), 3);   // 0 = the process default
  EXPECT_EQ(Executor(-7).jobs(), 1);  // below 1 clamps
  core::set_default_jobs(-2);
  EXPECT_EQ(core::default_jobs(), 1);
  core::set_default_jobs(1);
}

TEST(Executor, EmptyAndSingletonRuns) {
  int calls = 0;
  Executor(8).run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  Executor(8).run(1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Executor, SerialErrorStopsAtFailingIndex) {
  std::atomic<int> executed{0};
  try {
    Executor(1).run(64, [&](std::size_t i) {
      ++executed;
      if (i == 3) throw std::runtime_error("boom 3");
    });
    FAIL() << "expected the job error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  // The serial path is an ordinary loop: indexes 0..3 ran, nothing after.
  EXPECT_EQ(executed.load(), 4);
}

TEST(Executor, ParallelErrorIsLowestFailingIndex) {
  // Indexes are claimed monotonically, so index 5 always starts (and records
  // its error) even when 9 and 17 also fail on other workers.
  std::vector<std::atomic<int>> calls(32);
  try {
    Executor(4).run(32, [&](std::size_t i) {
      ++calls[i];
      if (i == 5 || i == 9 || i == 17)
        throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected the job error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");
  }
  // Serial-equivalence floor: everything below the first failure ran.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(calls[i].load(), 1) << i;
}

TEST(Executor, ParallelErrorCancelsTailJobs) {
  // Each surviving job takes ~1ms, so by the time a handful have finished
  // the index-2 failure is recorded and the remaining claims must bail out.
  constexpr std::size_t kN = 512;
  std::atomic<int> executed{0};
  EXPECT_THROW(Executor(4).run(kN,
                               [&](std::size_t i) {
                                 if (i == 2) throw std::runtime_error("stop");
                                 ++executed;
                                 std::this_thread::sleep_for(
                                     std::chrono::milliseconds(1));
                               }),
               std::runtime_error);
  EXPECT_LT(static_cast<std::size_t>(executed.load()), kN);
}

TEST(Executor, NestedExecutorRunsSerialOnWorkerThread) {
  EXPECT_FALSE(core::in_executor_worker());
  std::atomic<int> inner_total{0};
  Executor(2).run(2, [&](std::size_t) {
    EXPECT_TRUE(core::in_executor_worker());
    const std::thread::id outer = std::this_thread::get_id();
    // The nested sweep must run inline on this worker: same thread for
    // every inner index, no second fan-out.
    Executor(4).run(8, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), outer);
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 16);
  EXPECT_FALSE(core::in_executor_worker());
}

// ---------------------------------------------------------------------------
// Seed-derivation contract: repetition r of a measure() call runs with
// perturbation seed perturb.seed + r, independent of every other repetition.

core::MeasureOptions perturbed_opts(std::uint64_t seed, int reps) {
  core::MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.repetitions = reps;
  opt.perturb = perturb::PerturbSpec::parse("skew=uniform:max_us=25;seed=" +
                                            std::to_string(seed));
  return opt;
}

TEST(ExecutorSeeds, RepetitionSeedIsBasePlusRepIndex) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml;
  spec.leaders = 2;
  const auto both =
      core::measure_allreduce(cfg, 3, 4, 1024, spec, perturbed_opts(7, 2));
  const auto rep0 =
      core::measure_allreduce(cfg, 3, 4, 1024, spec, perturbed_opts(7, 1));
  const auto rep1 =
      core::measure_allreduce(cfg, 3, 4, 1024, spec, perturbed_opts(8, 1));
  // The two-repetition sweep is exactly the union of the two single runs
  // with explicitly shifted seeds: integer tallies add, extrema combine.
  EXPECT_EQ(both.events, rep0.events + rep1.events);
  EXPECT_EQ(both.imbalance_ops, rep0.imbalance_ops + rep1.imbalance_ops);
  EXPECT_EQ(both.best_us, std::min(rep0.best_us, rep1.best_us));
  EXPECT_EQ(both.worst_us, std::max(rep0.worst_us, rep1.worst_us));
  // And the noise realizations genuinely differ between the derived seeds.
  EXPECT_NE(rep0.avg_us, rep1.avg_us);
}

// ---------------------------------------------------------------------------
// Registry-wide byte-identity matrix: jobs=1 vs jobs=N.

// Every deterministic MeasureResult field. The wall-clock-derived perf
// fields (wall_ms, events_per_sec, wall_ms_per_sim_ms) and the resolved
// jobs count are the only legitimate differences between runs.
void expect_identical(const core::MeasureResult& a,
                      const core::MeasureResult& b, const std::string& what) {
  EXPECT_EQ(a.avg_us, b.avg_us) << what;
  EXPECT_EQ(a.best_us, b.best_us) << what;
  EXPECT_EQ(a.worst_us, b.worst_us) << what;
  EXPECT_EQ(a.median_us, b.median_us) << what;
  EXPECT_EQ(a.p99_us, b.p99_us) << what;
  EXPECT_EQ(a.verified, b.verified) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.imbalance_ops, b.imbalance_ops) << what;
  EXPECT_EQ(a.entry_skew_avg_us, b.entry_skew_avg_us) << what;
  EXPECT_EQ(a.exit_skew_avg_us, b.exit_skew_avg_us) << what;
  EXPECT_EQ(a.wait_avg_us, b.wait_avg_us) << what;
  EXPECT_EQ(a.fabric_links, b.fabric_links) << what;
  EXPECT_EQ(a.oversubscription, b.oversubscription) << what;
  EXPECT_EQ(a.max_link_util, b.max_link_util) << what;
  EXPECT_EQ(a.perf.events, b.perf.events) << what;
  EXPECT_EQ(a.perf.peak_live_events, b.perf.peak_live_events) << what;
  EXPECT_EQ(a.perf.callback_pool_hit_rate, b.perf.callback_pool_hit_rate)
      << what;
  EXPECT_EQ(a.perf.payload_pool_hit_rate, b.perf.payload_pool_hit_rate)
      << what;
  EXPECT_EQ(a.perf.sim_ms, b.perf.sim_ms) << what;
}

core::MeasureResult measure_with_jobs(CollKind kind,
                                      const net::ClusterConfig& cfg,
                                      const CollSpec& spec,
                                      core::MeasureOptions opt, int jobs) {
  opt.jobs = jobs;
  return core::measure_collective(kind, cfg, 3, 4, 768, spec, opt);
}

TEST(ExecutorMatrix, EveryAlgorithmByteIdenticalAcrossJobCounts) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  constexpr int kWorld = 3 * 4;
  core::MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.repetitions = 3;  // perturbed reps: the actual parallel axis
  opt.with_data = true;
  opt.check = check::CheckLevel::strict;
  opt.perturb = perturb::PerturbSpec::parse("skew=uniform:max_us=10;seed=5");
  for (CollKind kind : coll::kAllCollKinds) {
    for (const coll::CollDescriptor* d : CollRegistry::instance().list(kind)) {
      if (kWorld < d->caps.min_comm_size) continue;
      if (d->caps.needs_fabric && !cfg.has_sharp()) continue;
      CollSpec spec;
      spec.algo = d->name;
      spec.leaders = 2;
      const std::string what =
          std::string(coll::coll_kind_name(kind)) + "/" + d->name;
      const auto serial = measure_with_jobs(kind, cfg, spec, opt, 1);
      EXPECT_TRUE(serial.verified) << what;
      EXPECT_EQ(serial.perf.jobs, 1) << what;
      const auto wide = measure_with_jobs(kind, cfg, spec, opt, 4);
      EXPECT_EQ(wide.perf.jobs, 4) << what;
      expect_identical(serial, wide, what + " jobs=4");
      // An odd width exercises uneven work distribution too.
      expect_identical(serial, measure_with_jobs(kind, cfg, spec, opt, 3),
                       what + " jobs=3");
    }
  }
}

TEST(ExecutorMatrix, NewPatternDpmlVariantsByteIdenticalAcrossJobCounts) {
  // The multi-leader reduce_scatter/allgather variants with a leader count
  // that does not divide ppn (ragged partitions), plus the pure-arrival
  // barrier, all stay byte-identical across executor widths.
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  core::MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.repetitions = 3;
  opt.with_data = true;
  opt.check = check::CheckLevel::strict;
  opt.perturb = perturb::PerturbSpec::parse("skew=uniform:max_us=10;seed=9");
  for (CollKind kind : {CollKind::reduce_scatter, CollKind::allgather}) {
    CollSpec spec;
    spec.algo = "dpml";
    spec.leaders = 3;  // does not divide ppn=4
    const std::string what =
        std::string(coll::coll_kind_name(kind)) + "/dpml l=3";
    const auto serial = measure_with_jobs(kind, cfg, spec, opt, 1);
    EXPECT_TRUE(serial.verified) << what;
    expect_identical(serial, measure_with_jobs(kind, cfg, spec, opt, 4),
                     what + " jobs=4");
  }
  CollSpec bspec;
  bspec.algo = "dissemination";
  const auto serial = measure_with_jobs(CollKind::barrier, cfg, bspec, opt, 1);
  EXPECT_TRUE(serial.verified) << "barrier/dissemination";
  expect_identical(serial,
                   measure_with_jobs(CollKind::barrier, cfg, bspec, opt, 4),
                   "barrier/dissemination jobs=4");
}

TEST(ExecutorMatrix, FabricModeByteIdenticalAcrossJobCounts) {
  // The flow-level fabric adds max-min fair link sharing on top of the
  // engine; its utilization telemetry must also be jobs-invariant.
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  core::MeasureOptions opt;
  opt.iterations = 2;
  opt.warmup = 1;
  opt.repetitions = 4;
  opt.fabric = fabric::FabricLevel::links;
  opt.perturb = perturb::PerturbSpec::parse("skew=uniform:max_us=15;seed=21");
  CollSpec spec;
  spec.algo = "dpml";
  spec.leaders = 2;
  const auto serial =
      measure_with_jobs(CollKind::allreduce, cfg, spec, opt, 1);
  EXPECT_TRUE(serial.fabric_links);
  EXPECT_GT(serial.max_link_util, 0.0);
  expect_identical(serial,
                   measure_with_jobs(CollKind::allreduce, cfg, spec, opt, 4),
                   "allreduce/dpml fabric=links jobs=4");
}

TEST(ExecutorMatrix, JobsBeyondRepetitionsStillIdentical) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  CollSpec spec;
  spec.algo = "rd";
  const auto serial = measure_with_jobs(CollKind::allreduce, cfg, spec,
                                        perturbed_opts(3, 2), 1);
  // More workers than repetitions: the executor clamps to the job count.
  expect_identical(serial,
                   measure_with_jobs(CollKind::allreduce, cfg, spec,
                                     perturbed_opts(3, 2), 16),
                   "allreduce/rd jobs=16 reps=2");
}

}  // namespace
}  // namespace dpml
