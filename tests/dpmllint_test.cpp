// dpmllint: rule behaviour on inline snippets, the intentionally-broken
// fixtures under tests/lint_fixtures/, and the invariant the linter exists
// to keep — the entire src/ tree lints clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using dpml::lint::Finding;

int count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const Finding& f : fs) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::vector<Finding> lint(const std::string& src) {
  return dpml::lint::lint_source("snippet.cpp", src);
}

// ---------------------------------------------------------------------------
// Masking

TEST(LintMasking, CommentsAndStringsNeverFire) {
  EXPECT_TRUE(lint("// rand() in a comment\n").empty());
  EXPECT_TRUE(lint("/* std::random_device in a block\n   comment */\n").empty());
  EXPECT_TRUE(lint("const char* s = \"rand() time(nullptr)\";\n").empty());
  EXPECT_TRUE(lint("const char* s = R\"(rand() inside raw)\";\n").empty());
  EXPECT_TRUE(lint("const char* s = \"escaped \\\" rand() \";\n").empty());
}

TEST(LintMasking, LineNumbersSurviveMasking) {
  const auto fs = lint("int a;\n/* long\ncomment */\nint b = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-random");
  EXPECT_EQ(fs[0].line, 4);
}

// ---------------------------------------------------------------------------
// raw-random / wall-clock

TEST(LintRandom, IdentifierBoundariesRespected) {
  EXPECT_TRUE(lint("int x = operand(3);\n").empty());   // not rand(
  EXPECT_TRUE(lint("int strand(int);\n").empty());      // not rand(
  EXPECT_EQ(count_rule(lint("int x = rand();\n"), "raw-random"), 1);
  EXPECT_EQ(count_rule(lint("std::random_device rd;\n"), "raw-random"), 1);
  EXPECT_EQ(count_rule(lint("auto t = time(nullptr);\n"), "wall-clock"), 1);
  EXPECT_EQ(
      count_rule(lint("auto t = std::chrono::steady_clock::now();\n"),
                 "wall-clock"),
      1);
}

TEST(LintRandom, MemberCallsAreNotLibcCalls) {
  EXPECT_TRUE(lint("long x = timer.time(0);\n").empty());
  EXPECT_TRUE(lint("long x = obj->clock(1);\n").empty());
}

TEST(LintRandom, UtilRngIsExemptFromRawRandomOnly) {
  const std::string src = "std::mt19937 gen;\nauto t = time(nullptr);\n";
  const auto fs = dpml::lint::lint_source("src/util/rng.cpp", src);
  EXPECT_EQ(count_rule(fs, "raw-random"), 0);   // rng may own the primitives
  EXPECT_EQ(count_rule(fs, "wall-clock"), 1);   // but still no wall-clock
}

// ---------------------------------------------------------------------------
// unordered-iteration

TEST(LintUnordered, RangeForOverUnorderedMemberFires) {
  const std::string src =
      "std::unordered_map<int, long> seen_;\n"
      "long f() { long s = 0; for (const auto& [k, v] : seen_) s += v;\n"
      "  return s; }\n";
  const auto fs = lint(src);
  ASSERT_EQ(count_rule(fs, "unordered-iteration"), 1);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(LintUnordered, OrderedContainersAndUnknownRangesAreFine) {
  EXPECT_TRUE(
      lint("std::map<int, int> m_;\nvoid f() { for (auto& kv : m_) {} }\n")
          .empty());
  // A range expression the scanner cannot resolve is not guessed at.
  EXPECT_TRUE(
      lint("std::unordered_map<int, int> m_;\n"
           "void f() { for (auto& kv : sorted_view(m_)) {} }\n")
          .empty());
}

// ---------------------------------------------------------------------------
// coro-ref-capture

TEST(LintCoro, RefCaptureLambdaCoroutineFires) {
  const std::string src =
      "void f(Engine& e) {\n"
      "  int x = 1;\n"
      "  e.spawn([&]() -> Task { co_await x; });\n"
      "}\n";
  const auto fs = lint(src);
  ASSERT_EQ(count_rule(fs, "coro-ref-capture"), 1);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintCoro, ValueCapturesAndPlainLambdasAreFine) {
  EXPECT_TRUE(lint("e.spawn([x]() -> Task { co_await x; });\n").empty());
  EXPECT_TRUE(lint("e.call([&] { return x + 1; });\n").empty());
  // Subscripts and attributes are not lambda introducers.
  EXPECT_TRUE(lint("int y = arr[i]; co_await t;\n").empty());
  EXPECT_TRUE(lint("[[nodiscard]] int g(); co_await t;\n").empty());
}

TEST(LintCoro, NamedRefCaptureFires) {
  EXPECT_EQ(count_rule(lint("e.spawn([&x]() -> Task { co_await x; });\n"),
                       "coro-ref-capture"),
            1);
}

// ---------------------------------------------------------------------------
// await-temporary

TEST(LintAwaitTemp, BracedTemporaryInsideCoAwaitFires) {
  const auto fs =
      lint("co_await run_collective(kind, a, {\"rd\"});\n");
  ASSERT_EQ(count_rule(fs, "await-temporary"), 1);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(count_rule(lint("co_await f(1, {x, y});\n"), "await-temporary"),
            1);
}

TEST(LintAwaitTemp, EmptyBracesAndNamedLocalsAreFine) {
  // {} conventionally passes a default span and holds no state.
  EXPECT_TRUE(lint("co_await r.send(c, dst, tag, n, {});\n").empty());
  // The fixed idiom: bind first, then await.
  EXPECT_TRUE(
      lint("CollSpec s{\"rd\"};\nco_await run_collective(kind, a, s);\n")
          .empty());
  // Braces outside a co_await statement are untouched.
  EXPECT_TRUE(lint("auto v = f(1, {2, 3});\n").empty());
  // A lambda body inside the awaited call is not an argument brace.
  EXPECT_TRUE(lint("co_await with([&]() -> T { return g(); });\n").empty());
}

// ---------------------------------------------------------------------------
// schedule-fn

TEST(LintScheduleFn, RemovedShimNameFires) {
  const auto fs = lint("void f(Engine& e) { e.schedule_fn(t, cb); }\n");
  ASSERT_EQ(count_rule(fs, "schedule-fn"), 1);
  EXPECT_EQ(fs[0].line, 1);
  // The pooled replacement and boundary-sharing identifiers are fine.
  EXPECT_TRUE(lint("e.schedule_call(t, [] {});\n").empty());
  EXPECT_TRUE(lint("void reschedule_fnord();\n").empty());
}

TEST(LintScheduleFn, NoSanctionedHomeNowThatTheShimIsGone) {
  // The shim itself was deleted; reintroducing the name anywhere — engine
  // included — is a finding.
  const std::string src = "void Engine::schedule_fn(Time t, F fn) {}\n";
  EXPECT_EQ(count_rule(dpml::lint::lint_source("src/sim/engine.hpp", src),
                       "schedule-fn"),
            1);
  EXPECT_EQ(count_rule(dpml::lint::lint_source("src/sim/engine.cpp", src),
                       "schedule-fn"),
            1);
  EXPECT_EQ(count_rule(dpml::lint::lint_source("src/simmpi/machine.cpp", src),
                       "schedule-fn"),
            1);
}

TEST(LintScheduleFn, SuppressibleLikeEveryRule) {
  EXPECT_TRUE(
      lint("e.schedule_fn(t, cb);  // dpmllint: allow(schedule-fn)\n").empty());
}

// ---------------------------------------------------------------------------
// match-order-assumption

TEST(LintMatchOrder, PositionalQueueAccessFires) {
  const auto fs = lint("int s = m.unexpected()[0].src;\n");
  ASSERT_EQ(count_rule(fs, "match-order-assumption"), 1);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(count_rule(lint("auto& e = m.posted().front();\n"),
                       "match-order-assumption"),
            1);
  EXPECT_EQ(count_rule(lint("auto& e = m.unexpected().at(i);\n"),
                       "match-order-assumption"),
            1);
}

TEST(LintMatchOrder, SeqOrderingComparisonFires) {
  EXPECT_EQ(count_rule(lint("bool b = a.seq < c.seq;\n"),
                       "match-order-assumption"),
            1);
  EXPECT_EQ(count_rule(lint("bool b = a->seq >= c->seq;\n"),
                       "match-order-assumption"),
            1);
}

TEST(LintMatchOrder, LookupsCountsAndEqualityAreFine) {
  // Size queries, iteration-to-search, and equality make no order claim.
  EXPECT_TRUE(lint("auto n = m.unexpected().size();\n").empty());
  EXPECT_TRUE(
      lint("for (auto& e : m.unexpected()) { if (e.ctx == c) use(e); }\n")
          .empty());
  EXPECT_TRUE(lint("bool b = a.seq == c.seq;\n").empty());
  // seq as a plain counter, a subscript base, or streamed output is fine.
  EXPECT_TRUE(lint("ks.seq[rank]++;\n").empty());
  EXPECT_TRUE(lint("os << e.seq << '\\n';\n").empty());
  // A free variable named seq (no member access) is out of scope.
  EXPECT_TRUE(lint("int seq = 0; if (seq < n) ++seq;\n").empty());
}

TEST(LintMatchOrder, EngineAndMatcherAreTheSanctionedHomes) {
  const std::string src = "bool lt = a.seq < b.seq;\n";
  EXPECT_TRUE(dpml::lint::lint_source("src/sim/engine.cpp", src).empty());
  EXPECT_TRUE(dpml::lint::lint_source("src/simmpi/message.cpp", src).empty());
  EXPECT_EQ(count_rule(dpml::lint::lint_source("src/coll/flat.cpp", src),
                       "match-order-assumption"),
            1);
}

// ---------------------------------------------------------------------------
// payload-plane

TEST(LintPayloadPlane, DirectPoolCallFiresOutsideThePlane) {
  const auto fs =
      lint("void f(Engine& e) { e.payload_pool().acquire(64); }\n");
  ASSERT_EQ(count_rule(fs, "payload-plane"), 1);
  EXPECT_EQ(fs[0].line, 1);
  // A local merely *named* payload_pool is not a call into the engine.
  EXPECT_TRUE(lint("BufferPool payload_pool;\npayload_pool.merge(o);\n")
                  .empty());
  EXPECT_TRUE(lint("auto r = p.payload_pool_hit_rate;\n").empty());
}

TEST(LintPayloadPlane, EnginePoolAndPlaneFilesAreTheSanctionedHomes) {
  const std::string src = "BufferPool& Engine::payload_pool() { return p_; }\n";
  EXPECT_TRUE(dpml::lint::lint_source("src/sim/engine.hpp", src).empty());
  EXPECT_TRUE(dpml::lint::lint_source("src/sim/engine.cpp", src).empty());
  EXPECT_TRUE(dpml::lint::lint_source("src/sim/pool.hpp", src).empty());
  EXPECT_TRUE(dpml::lint::lint_source("src/sim/dataplane.hpp", src).empty());
  EXPECT_TRUE(dpml::lint::lint_source("src/sim/timeonly.cpp", src).empty());
  // "sim/" alone is not enough: simmpi transport code must go through the
  // DataPlane seam.
  EXPECT_EQ(
      count_rule(dpml::lint::lint_source("src/simmpi/machine.cpp", src),
                 "payload-plane"),
      1);
}

TEST(LintPayloadPlane, SuppressibleLikeEveryRule) {
  EXPECT_TRUE(
      lint("e.payload_pool();  // dpmllint: allow(payload-plane)\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(LintSuppress, SameLinePrevLineAndFileWide) {
  EXPECT_TRUE(lint("int x = rand();  // dpmllint: allow(raw-random)\n").empty());
  EXPECT_TRUE(
      lint("// dpmllint: allow(raw-random)\nint x = rand();\n").empty());
  EXPECT_TRUE(
      lint("// dpmllint: allow-file(raw-random)\nint f();\nint x = rand();\n")
          .empty());
  EXPECT_TRUE(lint("int x = rand();  // dpmllint: allow(all)\n").empty());
  // The wrong rule name does not suppress.
  EXPECT_EQ(
      count_rule(lint("int x = rand();  // dpmllint: allow(wall-clock)\n"),
                 "raw-random"),
      1);
}

// ---------------------------------------------------------------------------
// Output formats

TEST(LintOutput, JsonIsWellFormedAndNamesEveryField) {
  const auto fs = lint("int x = rand();\n");
  std::ostringstream os;
  dpml::lint::print_json(os, fs);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"file\": \"snippet.cpp\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"rule\": \"raw-random\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"line\": 1"), std::string::npos) << j;
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j[j.size() - 2], ']');
}

// ---------------------------------------------------------------------------
// Fixtures

const std::string kRoot = DPML_SOURCE_ROOT;

TEST(LintFixtures, DanglingCoroutineCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/dangling_coro.cc");
  EXPECT_EQ(count_rule(fs, "coro-ref-capture"), 2);  // [&] and [&counter]
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "coro-ref-capture");
}

TEST(LintFixtures, RawRandomAndWallClockCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/raw_random.cc");
  EXPECT_GE(count_rule(fs, "raw-random"), 4);
  EXPECT_GE(count_rule(fs, "wall-clock"), 2);
}

TEST(LintFixtures, UnorderedIterationCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/unordered_iter.cc");
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 2);
}

TEST(LintFixtures, AwaitTemporaryCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/await_temp.cc");
  EXPECT_EQ(count_rule(fs, "await-temporary"), 2);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "await-temporary");
}

TEST(LintFixtures, ScheduleFnShimCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/schedule_fn.cc");
  EXPECT_EQ(count_rule(fs, "schedule-fn"), 2);  // declaration + call site
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "schedule-fn");
}

TEST(LintFixtures, MatchOrderAssumptionCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/match_order.cc");
  EXPECT_EQ(count_rule(fs, "match-order-assumption"), 5);  // 3 queue + 2 seq
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "match-order-assumption");
}

TEST(LintFixtures, PayloadPlaneCaught) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/payload_plane.cc");
  EXPECT_EQ(count_rule(fs, "payload-plane"), 3);  // declaration + 2 calls
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "payload-plane");
}

TEST(LintFixtures, SuppressedFixtureIsClean) {
  const auto fs =
      dpml::lint::lint_file(kRoot + "/tests/lint_fixtures/suppressed.cc");
  EXPECT_TRUE(fs.empty()) << fs.size() << " finding(s), first: "
                          << (fs.empty() ? "" : fs[0].message);
}

// ---------------------------------------------------------------------------
// The tree invariant: src/ and the tools lint clean.

// The fabric subsystem is part of the linted tree (it leans on the exact
// idioms the linter polices: deterministic iteration, engine-time only).
TEST(LintTree, FabricSubsystemIsCovered) {
  const auto files = dpml::lint::collect_sources({kRoot + "/src/fabric"});
  ASSERT_GE(files.size(), 2u) << "src/fabric enumeration looks broken";
  for (const std::string& f : files) {
    const auto fs = dpml::lint::lint_file(f);
    for (const Finding& v : fs) {
      ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                    << v.message;
    }
  }
}

TEST(LintTree, AdaptSubsystemIsCovered) {
  // The adaptive re-planning layer sits between the deterministic engine
  // and the tenant feedback signals: a stray wall-clock or raw-random call
  // here would silently break the bit-identical replay contract.
  const auto files = dpml::lint::collect_sources({kRoot + "/src/adapt"});
  ASSERT_GE(files.size(), 2u) << "src/adapt enumeration looks broken";
  for (const std::string& f : files) {
    const auto fs = dpml::lint::lint_file(f);
    for (const Finding& v : fs) {
      ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                    << v.message;
    }
  }
}

TEST(LintTree, WholeSourceTreeIsClean) {
  const auto files = dpml::lint::collect_sources({kRoot + "/src"});
  ASSERT_GT(files.size(), 50u) << "source enumeration looks broken";
  for (const std::string& f : files) {
    const auto fs = dpml::lint::lint_file(f);
    for (const Finding& v : fs) {
      ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                    << v.message;
    }
  }
}

}  // namespace
