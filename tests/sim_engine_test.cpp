#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace dpml::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(Engine, SchedulesCallbacksInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_call(us(3.0), [&] { order.push_back(3); });
  e.schedule_call(us(1.0), [&] { order.push_back(1); });
  e.schedule_call(us(2.0), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), us(3.0));
}

TEST(Engine, TieBrokenBySubmissionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_call(us(5.0), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_call(us(1.0), [&] {
    EXPECT_THROW(e.schedule_call(0, [] {}), util::InvariantError);
  });
  e.run();
}

TEST(Engine, WrappedStdFunctionMatchesScheduleCallOrdering) {
  // std::function callables route through the same pooled schedule_call as
  // plain lambdas (the old schedule_fn shim is gone) and keep the exact
  // (t, seq) ordering semantics.
  Engine e;
  std::vector<int> order;
  std::function<void()> first = [&] { order.push_back(2); };
  std::function<void()> third = [&] { order.push_back(1); };
  e.schedule_call(us(2.0), std::move(first));
  e.schedule_call(us(2.0), [&] { order.push_back(3); });
  e.schedule_call(us(1.0), std::move(third));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

CoTask<void> delayer(Engine& e, Time d, int id, std::vector<int>& log) {
  co_await e.delay(d);
  log.push_back(id);
}

TEST(Engine, CoroutineDelayAdvancesClock) {
  Engine e;
  std::vector<int> log;
  e.spawn(delayer(e, us(2.0), 1, log));
  e.spawn(delayer(e, us(1.0), 2, log));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{2, 1}));
  EXPECT_EQ(e.now(), us(2.0));
  EXPECT_EQ(e.live_tasks(), 0);
}

CoTask<void> nested_child(Engine& e, std::vector<int>& log) {
  log.push_back(1);
  co_await e.delay(us(1.0));
  log.push_back(2);
}

CoTask<void> nested_parent(Engine& e, std::vector<int>& log) {
  log.push_back(0);
  co_await nested_child(e, log);
  log.push_back(3);
}

TEST(Engine, NestedCoTaskResumesParent) {
  Engine e;
  std::vector<int> log;
  e.spawn(nested_parent(e, log));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

CoTask<int> answer(Engine& e) {
  co_await e.delay(ns(10));
  co_return 42;
}

CoTask<void> asker(Engine& e, int& out) { out = co_await answer(e); }

TEST(Engine, CoTaskReturnsValue) {
  Engine e;
  int out = 0;
  e.spawn(asker(e, out));
  e.run();
  EXPECT_EQ(out, 42);
}

CoTask<void> thrower(Engine& e) {
  co_await e.delay(ns(5));
  throw std::runtime_error("boom");
}

TEST(Engine, TaskExceptionPropagatesFromRun) {
  Engine e;
  e.spawn(thrower(e));
  EXPECT_THROW(e.run(), std::runtime_error);
}

CoTask<void> catcher(Engine& e, bool& caught) {
  try {
    co_await thrower(e);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Engine, NestedExceptionCatchable) {
  Engine e;
  bool caught = false;
  e.spawn(catcher(e, caught));
  e.run();
  EXPECT_TRUE(caught);
}

CoTask<void> delayer_noop(Engine& e, Time d) { co_await e.delay(d); }

CoTask<void> spawner(Engine& e, int& done_count) {
  auto f1 = e.spawn_sub(delayer_noop(e, us(3.0)));
  auto f2 = e.spawn_sub(delayer_noop(e, us(1.0)));
  co_await f1->wait();
  co_await f2->wait();
  ++done_count;
}

TEST(Engine, SpawnSubCompletionFlags) {
  Engine e;
  int done = 0;
  e.spawn(spawner(e, done));
  e.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(e.now(), us(3.0));
}

TEST(Engine, ZeroDelayDoesNotSuspend) {
  Engine e;
  bool ran = false;
  e.spawn([](Engine& eng, bool& flag) -> CoTask<void> {
    co_await eng.delay(0);
    co_await eng.delay(-5);  // clamped
    flag = true;
  }(e, ran));
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(e.now(), 0);
}

TEST(Time, Conversions) {
  EXPECT_EQ(ns(1.0), 1000);
  EXPECT_EQ(us(1.0), 1000 * 1000);
  EXPECT_EQ(from_seconds(1e-6), us(1.0));
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_us(us(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ns(ns(7.0)), 7.0);
}

TEST(Time, TransferTime) {
  // 1000 bytes at 1 GB/s = 1 microsecond.
  EXPECT_EQ(transfer_time(1000, 1.0), us(1.0));
  // Zero bandwidth treated as instantaneous (guard path).
  EXPECT_EQ(transfer_time(1000, 0.0), 0);
}

TEST(Resource, FifoSerializesOverlappingRequests) {
  FifoResource r("nic");
  EXPECT_EQ(r.acquire(0, 100), 100);
  EXPECT_EQ(r.acquire(10, 100), 200);   // queued behind first
  EXPECT_EQ(r.acquire(500, 100), 600);  // idle gap
  EXPECT_EQ(r.busy_time(), 300);
  EXPECT_EQ(r.grants(), 3u);
}

TEST(Resource, RejectsOutOfOrderArrivals) {
  FifoResource r;
  r.acquire(100, 10);
  EXPECT_THROW(r.acquire(50, 10), util::InvariantError);
}

TEST(Resource, ResetClearsState) {
  FifoResource r;
  r.acquire(0, 100);
  r.reset();
  EXPECT_EQ(r.free_at(), 0);
  EXPECT_EQ(r.busy_time(), 0);
  EXPECT_EQ(r.acquire(0, 5), 5);
}

}  // namespace
}  // namespace dpml::sim
