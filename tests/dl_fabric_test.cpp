// DL gradient kernel + fat-tree core oversubscription.
#include <gtest/gtest.h>

#include "apps/dl.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"

namespace dpml {
namespace {

using simmpi::Machine;
using simmpi::Rank;

TEST(DlTraining, RunsAndReportsTimes) {
  auto cfg = net::cluster_b();
  apps::DlOptions o;
  o.nodes = 2;
  o.ppn = 8;
  o.steps = 2;
  o.buckets = 4;
  o.bucket_bytes = 1 << 20;
  o.spec.algo = core::Algorithm::dpml;
  const auto r = apps::run_dl_training(cfg, o);
  EXPECT_GT(r.step_s, 0.0);
  EXPECT_GT(r.total_s, r.step_s);
  EXPECT_GE(r.exposed_comm_s, 0.0);
}

TEST(DlTraining, OverlapHidesCommunication) {
  auto cfg = net::cluster_b();
  apps::DlOptions base;
  base.nodes = 4;
  base.ppn = 8;
  base.steps = 2;
  base.buckets = 8;
  base.bucket_bytes = 2 << 20;
  base.spec.algo = core::Algorithm::dpml;
  base.spec.leaders = 8;
  base.overlap = false;
  apps::DlOptions with = base;
  with.overlap = true;
  const auto blocking = apps::run_dl_training(cfg, base);
  const auto overlapped = apps::run_dl_training(cfg, with);
  EXPECT_LT(overlapped.step_s, blocking.step_s);
  EXPECT_LT(overlapped.exposed_comm_s, blocking.exposed_comm_s);
}

TEST(DlTraining, DpmlBeatsMvapichPerStep) {
  auto cfg = net::cluster_b();
  apps::DlOptions mva;
  mva.nodes = 4;
  mva.ppn = 28;
  mva.steps = 2;
  mva.buckets = 8;
  mva.spec.algo = core::Algorithm::mvapich2;
  apps::DlOptions dp = mva;
  dp.spec.algo = core::Algorithm::dpml_auto;
  EXPECT_LT(apps::run_dl_training(cfg, dp).step_s,
            apps::run_dl_training(cfg, mva).step_s);
}

TEST(DlTraining, Deterministic) {
  auto cfg = net::cluster_c();
  apps::DlOptions o;
  o.nodes = 2;
  o.ppn = 4;
  o.steps = 2;
  o.buckets = 3;
  o.bucket_bytes = 1 << 18;
  o.spec.algo = core::Algorithm::intelmpi;
  EXPECT_EQ(apps::run_dl_training(cfg, o).total_s,
            apps::run_dl_training(cfg, o).total_s);
}

// ---------------------------------------------------------------------------
// Fat-tree core oversubscription

// Aggregate cross-leaf throughput with many node pairs; with a heavily
// oversubscribed core it must cap at the uplink pool.
double cross_leaf_seconds(net::ClusterConfig cfg, double oversub) {
  cfg.oversubscription = oversub;
  simmpi::RunOptions opt;
  opt.with_data = false;
  // 8 nodes on leaf 0 all send to 8 nodes on leaf 1 (nodes_per_leaf = 24 on
  // cluster B, so shrink the leaf to force cross-leaf traffic).
  cfg.nodes_per_leaf = 8;
  Machine m(cfg, 16, 1, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    const std::size_t bytes = 512 * 1024;
    if (r.node_id() < 8) {
      for (int i = 0; i < 4; ++i) {
        co_await r.send(m.world(), r.node_id() + 8, i, bytes);
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        co_await r.recv(m.world(), r.node_id() - 8, i, bytes);
      }
    }
  });
  return sim::to_seconds(m.now());
}

TEST(Oversubscription, ThrottlesCrossLeafTraffic) {
  const double nonblocking = cross_leaf_seconds(net::cluster_b(), 1.0);
  // 4:1 oversubscription: uplink pool = 8*12/4 = 24 GB/s still exceeds the
  // ~20 GB/s of proc-bound demand (8 senders x 2.5 GB/s) -> no slowdown;
  // the core only binds when it actually becomes the bottleneck.
  const double oversub4 = cross_leaf_seconds(net::cluster_b(), 4.0);
  EXPECT_NEAR(oversub4, nonblocking, nonblocking * 0.05);
  // 16:1 -> 6 GB/s pool for 20 GB/s of demand: clearly throttled.
  const double oversub16 = cross_leaf_seconds(net::cluster_b(), 16.0);
  EXPECT_GT(oversub16, nonblocking * 2.0);
  // 64:1 -> 1.5 GB/s pool: throttled further still.
  const double oversub64 = cross_leaf_seconds(net::cluster_b(), 64.0);
  EXPECT_GT(oversub64, oversub16 * 2.0);
}

TEST(Oversubscription, SameLeafTrafficUnaffected) {
  auto run = [](double oversub) {
    auto cfg = net::cluster_b();
    cfg.oversubscription = oversub;
    simmpi::RunOptions opt;
    opt.with_data = false;
    Machine m(cfg, 4, 1, opt);  // 4 nodes share one 24-node leaf
    m.run([&](Rank& r) -> sim::CoTask<void> {
      if (r.node_id() == 0) {
        co_await r.send(m.world(), 1, 0, 256 * 1024);
      } else if (r.node_id() == 1) {
        co_await r.recv(m.world(), 0, 0, 256 * 1024);
      }
      co_return;
    });
    return m.now();
  };
  EXPECT_EQ(run(1.0), run(8.0));
}

TEST(Oversubscription, ClusterDPresetHasFiveFourthsCore) {
  EXPECT_NEAR(net::cluster_d().oversubscription, 1.25, 1e-12);
  EXPECT_EQ(net::cluster_b().oversubscription, 1.0);
}

TEST(Oversubscription, CollectivesRemainCorrect) {
  auto cfg = net::test_cluster(8);
  cfg.oversubscription = 2.0;
  cfg.nodes_per_leaf = 2;
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml;
  spec.leaders = 2;
  core::MeasureOptions opt;
  opt.with_data = true;
  opt.iterations = 2;
  opt.warmup = 0;
  const auto r = core::measure_allreduce(cfg, 8, 4, 4096, spec, opt);
  EXPECT_TRUE(r.verified);
}

}  // namespace
}  // namespace dpml
