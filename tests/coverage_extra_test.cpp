// Odds-and-ends coverage: logging levels, engine edges, HCA mapping
// corner cases, window data accessors, utilization accounting, op labels.
#include <gtest/gtest.h>

#include <sstream>

#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"
#include "util/log.hpp"

namespace dpml {
namespace {

using simmpi::Machine;
using simmpi::Rank;

TEST(Log, LevelGating) {
  const auto prev = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  DPML_DEBUG("suppressed");  // must not crash; below threshold
  DPML_ERROR("emitted to stderr");
  util::set_log_level(prev);
}

TEST(EngineEdge, ScheduleDuringEventKeepsOrdering) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule_call(sim::us(1.0), [&] {
    order.push_back(1);
    // Same-time event scheduled from within an event runs after it.
    e.schedule_call(e.now(), [&] { order.push_back(2); });
  });
  e.schedule_call(sim::us(2.0), [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineEdge, EventsProcessedCounts) {
  sim::Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_call(sim::us(i), [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(LatchEdge, MultiArrive) {
  sim::Engine e;
  sim::Latch l(e, 5);
  l.arrive(3);
  EXPECT_EQ(l.pending(), 2);
  l.arrive(2);
  bool done = false;
  e.spawn([](sim::Latch& latch, bool& flag) -> sim::CoTask<void> {
    co_await latch.wait();
    flag = true;
  }(l, done));
  e.run();
  EXPECT_TRUE(done);
}

TEST(HcaMapping, MoreRailsThanSockets) {
  // 4 rails on a 2-socket node: locals round-robin across rails.
  auto cfg = net::with_rails(net::cluster_b(), 4);
  Machine m(cfg, 1, 8);
  EXPECT_EQ(m.node(0).num_hcas(), 4);
  EXPECT_EQ(m.hca_of_local(0), 0);
  EXPECT_EQ(m.hca_of_local(1), 1);
  EXPECT_EQ(m.hca_of_local(5), 1);
}

TEST(ClusterNames, RailSuffixAndTestAlias) {
  EXPECT_EQ(net::with_rails(net::cluster_b(), 2).name, "B+rail2");
  EXPECT_EQ(net::cluster_by_name("t").name, "test");
}

TEST(Window, DataAccessors) {
  simmpi::ShmWindow with(16, 1, true);
  EXPECT_TRUE(with.has_data());
  EXPECT_EQ(with.data().size(), 16u);
  EXPECT_EQ(with.owner_socket(), 1);
  const simmpi::ShmWindow& cref = with;
  EXPECT_EQ(cref.data().size(), 16u);
  simmpi::ShmWindow without(16, 0, false);
  EXPECT_FALSE(without.has_data());
  EXPECT_EQ(without.size(), 16u);
}

TEST(Utilization, BoundedAndSymmetric) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  Machine m(net::cluster_b(), 2, 4, opt);
  m.run([&](Rank& r) -> sim::CoTask<void> {
    if (r.node_id() == 0) {
      co_await r.send(m.world(), 4 + r.local_rank(), 0, 256 * 1024);
    } else {
      co_await r.recv(m.world(), r.local_rank(), 0, 256 * 1024);
    }
    co_return;
  });
  const double tx = m.avg_tx_utilization();
  const double rx = m.avg_rx_utilization();
  EXPECT_GT(tx, 0.0);
  EXPECT_LE(tx, 1.0);
  // One-directional traffic: per-node averages match (node0 TX == node1 RX).
  EXPECT_NEAR(tx, rx, 1e-9);
}

TEST(OpLabel, UserOpNamed) {
  simmpi::Op user{simmpi::UserOpFn(
      [](simmpi::Dtype, std::size_t, simmpi::MutBytes, simmpi::ConstBytes) {})};
  EXPECT_EQ(user.name(), "user");
  EXPECT_TRUE(user.is_user());
}

TEST(SpecLabel, EncodesConfiguration) {
  core::AllreduceSpec s;
  s.algo = core::Algorithm::dpml;
  s.leaders = 8;
  s.pipeline_k = 4;
  EXPECT_EQ(s.label(), "dpml(l=8,k=4)");
  s.pipeline_k = 1;
  EXPECT_EQ(s.label(), "dpml(l=8)");
  s.algo = core::Algorithm::mvapich2;
  EXPECT_EQ(s.label(), "mvapich2");
  EXPECT_EQ(core::algorithm_by_name("sharp-socket-leader"),
            core::Algorithm::sharp_socket_leader);
  EXPECT_THROW(core::algorithm_by_name("nope"), util::InvariantError);
}

TEST(MeasureEdge, BestWorstBracketAverage) {
  core::AllreduceSpec spec;
  spec.algo = core::Algorithm::dpml;
  spec.leaders = 2;
  core::MeasureOptions opt;
  opt.iterations = 5;
  const auto r =
      core::measure_allreduce(net::test_cluster(2), 2, 4, 8192, spec, opt);
  EXPECT_LE(r.best_us, r.avg_us);
  EXPECT_GE(r.worst_us, r.avg_us);
}

}  // namespace
}  // namespace dpml
