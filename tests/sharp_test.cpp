// SHArP fabric substrate semantics and the paper's §4.3/§6.3 behaviours.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "sharp/sharp.hpp"
#include "simmpi/verify.hpp"

namespace dpml::sharp {
namespace {

using simmpi::Dtype;
using simmpi::Machine;
using simmpi::Rank;
using simmpi::ReduceOp;

TEST(SharpFabric, RequiresSharpCapableCluster) {
  Machine m(net::cluster_b(), 2, 2);  // cluster B has no SHArP
  EXPECT_THROW(SharpFabric f(m), util::InvariantError);
}

TEST(SharpFabric, GroupCreationAndLimits) {
  Machine m(net::test_cluster(4), 4, 2);  // test cluster: max_groups = 4
  SharpFabric f(m);
  std::vector<int> members{0, 2, 4, 6};
  const Group& g = f.create_group(members);
  EXPECT_EQ(g.members, members);
  EXPECT_EQ(f.groups_live(), 1);
  f.create_group({0, 2});
  f.create_group({0, 4});
  f.create_group({0, 6});
  EXPECT_THROW(f.create_group({2, 4}), SharpError);
  f.destroy_group(g.id);
  EXPECT_EQ(f.groups_live(), 3);
  f.create_group({2, 4});  // slot freed
  EXPECT_THROW(f.destroy_group(999), util::InvariantError);
}

TEST(SharpFabric, NamedGroupIsCachedAndChecked) {
  Machine m(net::test_cluster(4), 4, 2);
  SharpFabric f(m);
  const Group& a = f.named_group("leaders", {0, 2, 4});
  const Group& b = f.named_group("leaders", {0, 2, 4});
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(f.groups_live(), 1);
  EXPECT_THROW(f.named_group("leaders", {0, 2}), util::InvariantError);
}

TEST(SharpFabric, TreeDepthFollowsTopology) {
  // test_cluster: 4 nodes per leaf switch.
  Machine m(net::test_cluster(8), 8, 1);
  SharpFabric f(m);
  EXPECT_EQ(f.create_group({0, 1, 2, 3}).levels, 1);  // one leaf
  EXPECT_EQ(f.create_group({0, 7}).levels, 2);        // leaf + core
}

TEST(SharpFabric, PayloadLimitEnforced) {
  Machine m(net::test_cluster(2), 2, 1);
  SharpFabric f(m);
  EXPECT_TRUE(f.supports(1024));
  EXPECT_FALSE(f.supports(2u << 20));
  const Group& g = f.create_group({0, 1});
  EXPECT_THROW(
      m.run([&](Rank& r) -> sim::CoTask<void> {
        co_await f.allreduce(r, g, (2u << 20) / 4, Dtype::f32,
                             ReduceOp::sum, {}, {});
      }),
      SharpError);
}

TEST(SharpFabric, AggregatesDataExactly) {
  Machine m(net::test_cluster(4), 4, 1);
  SharpFabric f(m);
  const Group& g = f.create_group({0, 1, 2, 3});
  const std::size_t count = 33;
  std::vector<std::vector<std::byte>> in(4);
  std::vector<std::vector<std::byte>> out(4);
  for (int w = 0; w < 4; ++w) {
    in[w] = simmpi::make_operand(Dtype::f32, count, w, ReduceOp::sum);
    out[w].resize(count * 4);
  }
  m.run([&](Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    co_await f.allreduce(r, g, count, Dtype::f32, ReduceOp::sum,
                         simmpi::ConstBytes{in[w]}, simmpi::MutBytes{out[w]});
  });
  const auto ref = simmpi::reference_allreduce(Dtype::f32, count, 4,
                                               ReduceOp::sum);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(out[w], ref) << "rank " << w;
}

TEST(SharpFabric, BoundedConcurrencySerializesOps) {
  // test_cluster allows 2 outstanding ops. Run 4 disjoint pair-groups
  // concurrently and check the span exceeds ~2x a single op (serialized),
  // then compare against a fabric with a raised limit.
  auto run_with_limit = [](int limit) {
    auto cfg = net::test_cluster(8);
    cfg.sharp->max_outstanding_ops = limit;
    Machine m(cfg, 8, 1);
    SharpFabric f(m);
    std::vector<const Group*> gs;
    for (int i = 0; i < 4; ++i) {
      gs.push_back(&f.create_group({2 * i, 2 * i + 1}));
    }
    m.run([&](Rank& r) -> sim::CoTask<void> {
      const Group& g = *gs[static_cast<std::size_t>(r.world_rank() / 2)];
      co_await f.allreduce(r, g, 16, Dtype::f32, ReduceOp::sum, {}, {});
    });
    return m.now();
  };
  const sim::Time serialized = run_with_limit(1);
  const sim::Time parallel = run_with_limit(4);
  EXPECT_GT(serialized, parallel * 2);
}

TEST(SharpFabric, OperationOnDestroyedGroupRejected) {
  Machine m(net::test_cluster(2), 2, 1);
  SharpFabric f(m);
  const Group g = f.create_group({0, 1});  // copy, then destroy
  f.destroy_group(g.id);
  EXPECT_THROW(m.run([&](Rank& r) -> sim::CoTask<void> {
                 co_await f.allreduce(r, g, 4, Dtype::f32, ReduceOp::sum, {},
                                      {});
               }),
               util::InvariantError);
}

// ---------------------------------------------------------------------------
// Design-level behaviour (paper Figure 8).

double lat(const net::ClusterConfig& cfg, int nodes, int ppn,
           std::size_t bytes, core::Algorithm algo) {
  core::AllreduceSpec s;
  s.algo = algo;
  core::MeasureOptions opt;
  opt.iterations = 3;
  opt.warmup = 1;
  return core::measure_allreduce(cfg, nodes, ppn, bytes, s, opt).avg_us;
}

TEST(SharpDesigns, BeatHostBasedForSmallMessages) {
  auto cfg = net::cluster_a();
  const double host = lat(cfg, 16, 1, 16, core::Algorithm::mvapich2);
  const double sharp = lat(cfg, 16, 1, 16, core::Algorithm::sharp_node_leader);
  // Paper: up to 2.5x at ppn=1 for small messages.
  EXPECT_GT(host / sharp, 1.8);
  EXPECT_LT(host / sharp, 4.0);
}

TEST(SharpDesigns, HostBasedWinsAtFourKilobytes) {
  auto cfg = net::cluster_a();
  const double host = lat(cfg, 16, 1, 4096, core::Algorithm::mvapich2);
  const double sharp = lat(cfg, 16, 1, 4096, core::Algorithm::sharp_node_leader);
  // Paper: crossover between 2KB and 4KB.
  EXPECT_LT(host, sharp);
}

TEST(SharpDesigns, SocketLeaderBeatsNodeLeaderAtHighPpn) {
  auto cfg = net::cluster_a();
  const double node = lat(cfg, 16, 28, 256, core::Algorithm::sharp_node_leader);
  const double sock =
      lat(cfg, 16, 28, 256, core::Algorithm::sharp_socket_leader);
  // Paper §6.3: socket-leader avoids the cross-socket gather/broadcast.
  EXPECT_LT(sock, node);
}

TEST(SharpDesigns, DesignsCoincideAtOneProcessPerNode) {
  auto cfg = net::cluster_a();
  const double node = lat(cfg, 16, 1, 64, core::Algorithm::sharp_node_leader);
  const double sock =
      lat(cfg, 16, 1, 64, core::Algorithm::sharp_socket_leader);
  EXPECT_DOUBLE_EQ(node, sock);
}

TEST(SharpDesigns, OversizedPayloadFallsBackToHostPath) {
  auto cfg = net::cluster_a();
  cfg.sharp->max_payload = 1024;
  core::AllreduceSpec s;
  s.algo = core::Algorithm::sharp_socket_leader;
  core::MeasureOptions opt;
  opt.with_data = true;
  const auto r = core::measure_allreduce(cfg, 4, 4, 8192, s, opt);
  EXPECT_TRUE(r.verified);  // completed via the host-based fallback
}

}  // namespace
}  // namespace dpml::sharp
