// Calibration lock: exact simulated latencies for a matrix of
// (cluster, shape, design, size) configurations.
//
// The simulator is bitwise deterministic, so these values are stable across
// runs and machines. Their purpose is to catch *accidental* model drift —
// any change to the transport charging rules, the hardware constants, or an
// algorithm's communication structure shows up here immediately. When a
// change is intentional (recalibration, algorithm improvement), regenerate
// the table and update EXPERIMENTS.md in the same commit.
#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "net/cluster.hpp"

namespace dpml::core {
namespace {

struct Golden {
  const char* cluster;
  int nodes;
  int ppn;
  Algorithm algo;
  int leaders;
  std::size_t bytes;
  double expect_us;
};

TEST(Golden, SimulatedLatenciesAreLockedIn) {
  const Golden table[] = {
      {"B", 8, 28, Algorithm::dpml, 1, 65536ul, 496.212496},
      {"B", 8, 28, Algorithm::dpml, 16, 65536ul, 102.101742},
      {"B", 8, 28, Algorithm::dpml, 16, 524288ul, 784.875451},
      {"B", 8, 28, Algorithm::mvapich2, 1, 524288ul, 2480.560736},
      {"B", 8, 28, Algorithm::intelmpi, 1, 524288ul, 950.637556},
      {"B", 8, 28, Algorithm::recursive_doubling, 1, 4096ul, 39.544354},
      {"B", 8, 28, Algorithm::reduce_scatter_allgather, 1, 262144ul,
       1235.251043},
      {"C", 8, 28, Algorithm::dpml, 16, 524288ul, 792.003536},
      {"C", 8, 28, Algorithm::mvapich2, 1, 16384ul, 120.529706},
      {"A", 16, 28, Algorithm::sharp_node_leader, 1, 16ul, 5.672266},
      {"A", 16, 28, Algorithm::sharp_socket_leader, 1, 256ul, 4.296266},
      {"A", 16, 28, Algorithm::mvapich2, 1, 16ul, 8.233066},
      {"D", 16, 64, Algorithm::dpml, 16, 262144ul, 1804.907185},
      {"D", 16, 64, Algorithm::intelmpi, 1, 262144ul, 2444.634583},
      {"D", 16, 64, Algorithm::dpml_auto, 1, 1024ul, 62.726365},
      {"test", 4, 4, Algorithm::dpml, 2, 8192ul, 14.922930},
      {"test", 4, 4, Algorithm::ring, 1, 8192ul, 24.524656},
      {"test", 4, 4, Algorithm::binomial, 1, 1024ul, 8.687598},
      {"test", 4, 4, Algorithm::gather_bcast, 1, 1024ul, 9.957329},
      {"test", 4, 4, Algorithm::single_leader, 1, 4096ul, 12.813864},
  };
  for (const Golden& g : table) {
    AllreduceSpec spec;
    spec.algo = g.algo;
    spec.leaders = g.leaders;
    MeasureOptions opt;
    opt.iterations = 3;
    opt.warmup = 1;
    const auto r = measure_allreduce(net::cluster_by_name(g.cluster), g.nodes,
                                     g.ppn, g.bytes, spec, opt);
    // Sub-nanosecond tolerance: the value must be *identical* up to the
    // microsecond formatting used to record it.
    EXPECT_NEAR(r.avg_us, g.expect_us, 1e-4)
        << g.cluster << " " << g.nodes << "x" << g.ppn << " "
        << algorithm_name(g.algo) << " l=" << g.leaders << " " << g.bytes
        << "B";
  }
}

}  // namespace
}  // namespace dpml::core
