// sendrecv, probe/iprobe, comm splitting, and trace replay.
#include <gtest/gtest.h>

#include "apps/replay.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"

namespace dpml::simmpi {
namespace {

TEST(Sendrecv, ExchangesWithoutDeadlock) {
  // Symmetric large-message exchange: plain blocking send+recv would
  // deadlock under rendezvous; sendrecv must not.
  Machine m(net::test_cluster(2), 2, 1, RunOptions{false, 1});
  m.run([&](Rank& r) -> sim::CoTask<void> {
    const int peer = 1 - r.world_rank();
    const auto res = co_await r.sendrecv(m.world(), peer, 5, 64 * 1024, peer,
                                         5, 64 * 1024);
    EXPECT_EQ(res.bytes, 64u * 1024);
    EXPECT_EQ(res.src, peer);
  });
}

TEST(Probe, IprobeSeesOnlyUnconsumedMessages) {
  Machine m(net::test_cluster(2), 2, 1, RunOptions{false, 1});
  m.run([&](Rank& r) -> sim::CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.send(m.world(), 1, 3, 128);
    } else {
      EXPECT_FALSE(r.iprobe(m.world(), 0, 3));  // nothing arrived yet
      co_await r.compute(sim::us(100.0));
      RecvResult info;
      EXPECT_TRUE(r.iprobe(m.world(), 0, 3, &info));
      EXPECT_EQ(info.bytes, 128u);
      EXPECT_EQ(info.src, 0);
      co_await r.recv(m.world(), 0, 3, 128);
      EXPECT_FALSE(r.iprobe(m.world(), 0, 3));  // consumed
    }
    co_return;
  });
}

TEST(Probe, BlockingProbeWaitsForArrival) {
  Machine m(net::test_cluster(2), 2, 1, RunOptions{false, 1});
  sim::Time probed_at = 0;
  m.run([&](Rank& r) -> sim::CoTask<void> {
    if (r.world_rank() == 0) {
      co_await r.compute(sim::us(50.0));
      co_await r.send(m.world(), 1, 9, 77);
    } else {
      const auto info = co_await r.probe(m.world(), 0, 9);
      probed_at = r.engine().now();
      EXPECT_EQ(info.bytes, 77u);
      // Probe did not consume: the recv still completes.
      co_await r.recv(m.world(), 0, 9, 77);
    }
    co_return;
  });
  EXPECT_GT(probed_at, sim::us(50.0));
}

TEST(Probe, WildcardProbeReportsEnvelope) {
  Machine m(net::test_cluster(2), 2, 2, RunOptions{false, 1});
  m.run([&](Rank& r) -> sim::CoTask<void> {
    if (r.world_rank() == 1) {
      co_await r.send(m.world(), 3, 42, 8);
    } else if (r.world_rank() == 3) {
      const auto info = co_await r.probe(m.world(), kAnySource, kAnyTag);
      EXPECT_EQ(info.src, 1);
      EXPECT_EQ(info.tag, 42);
      co_await r.recv(m.world(), info.src, info.tag, info.bytes);
    }
    co_return;
  });
}

TEST(SplitComm, GroupsByColorOrdersByKey) {
  Machine m(net::test_cluster(2), 2, 2);  // world = 4 ranks
  const std::vector<int> colors{0, 1, 0, 1};
  const std::vector<int> keys{5, 0, 1, 1};
  const Comm& even = m.split_comm(m.world(), colors, keys, 0);
  const Comm& odd = m.split_comm(m.world(), colors, keys, 1);
  ASSERT_EQ(even.size(), 2);
  // color 0 members: world 0 (key 5), world 2 (key 1) -> ordered 2, 0.
  EXPECT_EQ(even.world_rank(0), 2);
  EXPECT_EQ(even.world_rank(1), 0);
  ASSERT_EQ(odd.size(), 2);
  EXPECT_EQ(odd.world_rank(0), 1);
  EXPECT_EQ(odd.world_rank(1), 3);
  EXPECT_NE(even.context(), odd.context());
  // Cached: same arguments give the same communicator object.
  EXPECT_EQ(&m.split_comm(m.world(), colors, keys, 0), &even);
}

TEST(SplitComm, UndefinedColorYieldsNullComm) {
  Machine m(net::test_cluster(2), 2, 1);
  const Comm& none = m.split_comm(m.world(), {0, -1}, {0, 0}, -1);
  EXPECT_EQ(none.size(), 0);
}

TEST(SplitComm, SplitCommIsUsableForCollectives) {
  Machine m(net::test_cluster(2), 2, 2, RunOptions{false, 1});
  const std::vector<int> colors{0, 1, 0, 1};
  const std::vector<int> keys{0, 0, 1, 1};
  m.run([&](Rank& r) -> sim::CoTask<void> {
    const int my_color = r.world_rank() % 2;
    const Comm& sub = m.split_comm(m.world(), colors, keys, my_color);
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &sub;
    a.count = 64;
    a.inplace = true;
    co_await coll::allreduce_recursive_doubling(a);
  });
  SUCCEED();
}

TEST(SplitComm, RejectsBadArraySizes) {
  Machine m(net::test_cluster(2), 2, 1);
  EXPECT_THROW(m.split_comm(m.world(), {0}, {0, 0}, 0), util::InvariantError);
}

}  // namespace
}  // namespace dpml::simmpi

namespace dpml::apps {
namespace {

TEST(Replay, ParsesTraceFormat) {
  const auto ops = parse_trace(
      "# comment\n"
      "allreduce 8 50\n"
      "reduce 1024\n"
      "bcast 4096 10.5\n"
      "barrier 3\n"
      "\n");
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].kind, TraceOp::Kind::allreduce);
  EXPECT_EQ(ops[0].bytes, 8u);
  EXPECT_DOUBLE_EQ(ops[0].compute_us, 50.0);
  EXPECT_EQ(ops[1].kind, TraceOp::Kind::reduce);
  EXPECT_DOUBLE_EQ(ops[1].compute_us, 0.0);
  EXPECT_EQ(ops[2].kind, TraceOp::Kind::bcast);
  EXPECT_DOUBLE_EQ(ops[2].compute_us, 10.5);
  EXPECT_EQ(ops[3].kind, TraceOp::Kind::barrier);
  EXPECT_THROW(parse_trace("frobnicate 8\n"), util::InvariantError);
  EXPECT_THROW(parse_trace("allreduce\n"), util::InvariantError);
}

TEST(Replay, ExampleTraceRunsUnderAllDesigns) {
  const auto trace = parse_trace(example_trace());
  auto cfg = net::cluster_b();
  ReplayOptions o;
  o.nodes = 2;
  o.ppn = 8;
  double prev = 0;
  for (core::Algorithm algo :
       {core::Algorithm::mvapich2, core::Algorithm::dpml_auto}) {
    o.spec.algo = algo;
    const auto r = replay_trace(cfg, trace, o);
    EXPECT_EQ(r.ops, static_cast<int>(trace.size()));
    EXPECT_GT(r.comm_s, 0.0);
    EXPECT_GT(r.total_s, r.comm_s);
    if (prev > 0) EXPECT_LT(r.comm_s, prev);  // dpml-auto beats mvapich2
    prev = r.comm_s;
  }
}

TEST(Replay, RepetitionsScaleTime) {
  const auto trace = parse_trace("allreduce 1024 10\n");
  auto cfg = net::cluster_c();
  ReplayOptions one;
  one.nodes = 2;
  one.ppn = 4;
  one.spec.algo = core::Algorithm::dpml;
  ReplayOptions ten = one;
  ten.repetitions = 10;
  const auto a = replay_trace(cfg, trace, one);
  const auto b = replay_trace(cfg, trace, ten);
  EXPECT_NEAR(b.total_s, a.total_s * 10, a.total_s * 2);
}

}  // namespace
}  // namespace dpml::apps
