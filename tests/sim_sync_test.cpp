#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"

namespace dpml::sim {
namespace {

CoTask<void> wait_flag(Flag& f, std::vector<int>& log, int id) {
  co_await f.wait();
  log.push_back(id);
}

CoTask<void> post_flag_at(Engine& e, Flag& f, Time t) {
  co_await e.delay(t);
  f.post();
}

TEST(Flag, WakesAllWaiters) {
  Engine e;
  Flag f(e);
  std::vector<int> log;
  e.spawn(wait_flag(f, log, 1));
  e.spawn(wait_flag(f, log, 2));
  e.spawn(post_flag_at(e, f, us(5.0)));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), us(5.0));
}

TEST(Flag, WaitAfterPostIsImmediate) {
  Engine e;
  Flag f(e);
  f.post();
  std::vector<int> log;
  e.spawn(wait_flag(f, log, 7));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{7}));
  EXPECT_EQ(e.now(), 0);
}

TEST(Flag, DoublePostIsIdempotent) {
  Engine e;
  Flag f(e);
  f.post();
  f.post();
  EXPECT_TRUE(f.posted());
}

TEST(Flag, ResetRearms) {
  Engine e;
  Flag f(e);
  f.post();
  f.reset();
  EXPECT_FALSE(f.posted());
}

TEST(Flag, NeverPostedDeadlocks) {
  Engine e;
  Flag f(e);
  std::vector<int> log;
  e.spawn(wait_flag(f, log, 1));
  EXPECT_THROW(e.run(), util::DeadlockError);
}

CoTask<void> latch_arriver(Engine& e, Latch& l, Time at) {
  co_await e.delay(at);
  l.arrive();
}

CoTask<void> latch_waiter(Latch& l, bool& done) {
  co_await l.wait();
  done = true;
}

TEST(Latch, ReleasesAfterAllArrivals) {
  Engine e;
  Latch l(e, 3);
  bool done = false;
  e.spawn(latch_waiter(l, done));
  for (int i = 1; i <= 3; ++i) e.spawn(latch_arriver(e, l, us(i)));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), us(3.0));
}

TEST(Latch, ZeroExpectIsOpen) {
  Engine e;
  Latch l(e, 0);
  bool done = false;
  e.spawn(latch_waiter(l, done));
  e.run();
  EXPECT_TRUE(done);
}

TEST(Latch, OverArrivalThrows) {
  Engine e;
  Latch l(e, 1);
  l.arrive();
  EXPECT_THROW(l.arrive(), util::InvariantError);
}

TEST(Latch, ResetReuses) {
  Engine e;
  Latch l(e, 2);
  l.arrive(2);
  l.reset(1);
  EXPECT_EQ(l.pending(), 1);
  bool done = false;
  e.spawn(latch_waiter(l, done));
  e.spawn(latch_arriver(e, l, us(1.0)));
  e.run();
  EXPECT_TRUE(done);
}

CoTask<void> barrier_worker(Engine& e, Barrier& b, int id, Time skew,
                            std::vector<std::pair<int, Time>>& log) {
  co_await e.delay(skew);
  co_await b.arrive_and_wait();
  log.emplace_back(id, e.now());
  co_await b.arrive_and_wait();
  log.emplace_back(id + 100, e.now());
}

TEST(Barrier, SynchronizesAndReuses) {
  Engine e;
  Barrier b(e, 3);
  std::vector<std::pair<int, Time>> log;
  e.spawn(barrier_worker(e, b, 0, us(1.0), log));
  e.spawn(barrier_worker(e, b, 1, us(5.0), log));
  e.spawn(barrier_worker(e, b, 2, us(3.0), log));
  e.run();
  ASSERT_EQ(log.size(), 6u);
  // First barrier releases everyone at the latest arrival (5us).
  for (int i = 0; i < 3; ++i) EXPECT_EQ(log[i].second, us(5.0));
  // Second barrier releases immediately after (no further delays).
  for (int i = 3; i < 6; ++i) EXPECT_EQ(log[i].second, us(5.0));
  EXPECT_EQ(b.generation(), 2u);
}

TEST(Barrier, SinglePartyPassesThrough) {
  Engine e;
  Barrier b(e, 1);
  bool done = false;
  e.spawn([](Barrier& bar, bool& flag) -> CoTask<void> {
    co_await bar.arrive_and_wait();
    flag = true;
  }(b, done));
  e.run();
  EXPECT_TRUE(done);
}

CoTask<void> sem_user(Engine& e, Semaphore& s, Time hold,
                      std::vector<Time>& starts) {
  co_await s.acquire();
  starts.push_back(e.now());
  co_await e.delay(hold);
  s.release();
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<Time> starts;
  for (int i = 0; i < 4; ++i) e.spawn(sem_user(e, s, us(10.0), starts));
  e.run();
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 0);
  EXPECT_EQ(starts[2], us(10.0));
  EXPECT_EQ(starts[3], us(10.0));
  EXPECT_EQ(s.available(), 2);
}

TEST(Semaphore, FifoOrderAmongWaiters) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<Time> starts;
  for (int i = 0; i < 3; ++i) e.spawn(sem_user(e, s, us(1.0), starts));
  e.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], us(1.0));
  EXPECT_EQ(starts[2], us(2.0));
}

CoTask<void> waitall_user(Engine& e, bool& done) {
  std::vector<std::shared_ptr<Flag>> flags;
  for (int i = 1; i <= 3; ++i) {
    flags.push_back(e.spawn_sub(
        [](Engine& eng, Time d) -> CoTask<void> { co_await eng.delay(d); }(
            e, us(static_cast<double>(i)))));
  }
  co_await wait_all(std::move(flags));
  done = true;
}

TEST(WaitAll, CompletesAtSlowest) {
  Engine e;
  bool done = false;
  e.spawn(waitall_user(e, done));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), us(3.0));
}

TEST(WaitAll, EmptySetCompletesImmediately) {
  Engine e;
  bool done = false;
  e.spawn([](bool& flag) -> CoTask<void> {
    co_await wait_all({});
    flag = true;
  }(done));
  e.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace dpml::sim
