// simcheck unit and integration tests: each checker rule is driven to fire
// (and to stay quiet on conforming behaviour), both against the Checker
// class directly and end-to-end through a checked Machine.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "coll/registry.hpp"
#include "core/api.hpp"
#include "net/cluster.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/verify.hpp"

namespace dpml {
namespace {

using check::Checker;
using check::CheckError;
using check::CheckLevel;
using check::CollOp;
using simmpi::Dtype;
using simmpi::Machine;
using simmpi::Rank;

bool has_rule(const CheckError& e, const std::string& rule) {
  for (const check::Violation& v : e.violations()) {
    if (v.rule == rule) return true;
  }
  return false;
}

// Expect `fn` to throw a CheckError whose violation list contains `rule`.
template <typename Fn>
void expect_violation(const std::string& rule, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected CheckError with rule " << rule;
  } catch (const CheckError& e) {
    EXPECT_TRUE(has_rule(e, rule))
        << "expected rule " << rule << " in report:\n"
        << e.what();
    EXPECT_NE(std::string(e.what()).find(rule), std::string::npos)
        << "report should name the rule: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// Levels

TEST(CheckLevels, NamesRoundTrip) {
  EXPECT_EQ(check::check_level_by_name("off"), CheckLevel::off);
  EXPECT_EQ(check::check_level_by_name("basic"), CheckLevel::basic);
  EXPECT_EQ(check::check_level_by_name("strict"), CheckLevel::strict);
  EXPECT_STREQ(check::check_level_name(CheckLevel::strict), "strict");
  EXPECT_THROW(check::check_level_by_name("paranoid"), util::InvariantError);
}

// ---------------------------------------------------------------------------
// Buffer overlap (fail fast)

TEST(CheckBuffers, OverlappingLiveWriteFailsFast) {
  Checker ck(CheckLevel::basic, /*with_data=*/true, /*world_size=*/2);
  std::vector<std::byte> buf(64);
  auto lease = ck.acquire_write(
      0, simmpi::MutBytes{buf.data(), 32}, "recv", /*ctx=*/0, /*tag=*/1);
  // A second writer over the same bytes is the MPI buffer-reuse error.
  expect_violation("buffer-overlap", [&] {
    (void)ck.acquire_write(0, simmpi::MutBytes{buf.data() + 16, 32}, "recv", 0,
                           2);
  });
}

TEST(CheckBuffers, ConcurrentReadersAndDisjointSpansAreFine) {
  Checker ck(CheckLevel::strict, true, 2);
  std::vector<std::byte> buf(64);
  const simmpi::ConstBytes whole{buf.data(), buf.size()};
  auto r1 = ck.acquire_read(0, whole, "send", 0, 1);
  auto r2 = ck.acquire_read(0, whole, "send", 0, 2);  // two readers: fine
  // Disjoint write next to them on another rank: fine.
  auto w = ck.acquire_write(1, simmpi::MutBytes{buf}, "recv", 0, 3);
  // Release the readers; a writer may now take rank 0's span.
  r1.release();
  r2.release();
  auto w2 = ck.acquire_write(0, simmpi::MutBytes{buf}, "recv", 0, 4);
  SUCCEED();
}

TEST(CheckBuffers, ReaderBlocksWriterWhileLive) {
  Checker ck(CheckLevel::basic, true, 1);
  std::vector<std::byte> buf(16);
  auto r = ck.acquire_read(0, simmpi::ConstBytes{buf}, "send", 0, 0);
  expect_violation("buffer-overlap", [&] {
    (void)ck.acquire_write(0, simmpi::MutBytes{buf}, "recv", 0, 1);
  });
}

// ---------------------------------------------------------------------------
// Count / dtype / capacity on p2p traffic inside a reduction

std::uint64_t open_reduction(Checker& ck, int world_rank, Dtype dt,
                             std::size_t count = 8, int parties = 2) {
  static const std::vector<std::byte> empty;
  return ck.begin_collective(CollOp::allreduce, world_rank, /*ctx=*/1, "rd",
                             parties, /*comm_rank=*/world_rank, /*root=*/0,
                             count, dt, simmpi::ReduceOp::sum,
                             simmpi::ConstBytes{});
}

TEST(CheckTraffic, SendCountMismatchInsideReduction) {
  Checker ck(CheckLevel::basic, false, 2);
  open_reduction(ck, 0, Dtype::f32);
  // 6 bytes is not a whole number of f32 elements.
  expect_violation("count-mismatch",
                   [&] { ck.on_send(0, 1, /*ctx=*/1, /*tag=*/7, 6); });
}

TEST(CheckTraffic, SendOutsideCollectiveIsUnconstrained) {
  Checker ck(CheckLevel::strict, false, 2);
  ck.on_send(0, 1, 0, 0, 6);  // no open reduction: any byte count is legal
  SUCCEED();
}

TEST(CheckTraffic, DtypeMismatchBetweenSenderAndReceiver) {
  Checker ck(CheckLevel::basic, false, 2);
  open_reduction(ck, 1, Dtype::f32);
  simmpi::PostedRecv pr;
  pr.capacity = pr.recv_bytes = 8;
  pr.recv_src = 0;
  pr.recv_tag = 7;
  pr.recv_dtype = static_cast<int>(Dtype::i64);  // sender was reducing i64
  expect_violation("dtype-mismatch", [&] { ck.on_recv_complete(1, 1, pr); });
}

TEST(CheckTraffic, RecvCountMismatchInsideReduction) {
  Checker ck(CheckLevel::basic, false, 2);
  open_reduction(ck, 1, Dtype::f64);
  simmpi::PostedRecv pr;
  pr.capacity = pr.recv_bytes = 12;  // not a whole number of f64
  pr.recv_src = 0;
  pr.recv_dtype = static_cast<int>(Dtype::f64);
  expect_violation("count-mismatch", [&] { ck.on_recv_complete(1, 1, pr); });
}

TEST(CheckTraffic, StrictRequiresExactCapacity) {
  simmpi::PostedRecv pr;
  pr.capacity = 16;
  pr.recv_bytes = 8;
  pr.recv_src = 0;
  Checker basic(CheckLevel::basic, false, 2);
  basic.on_recv_complete(0, 0, pr);  // basic: oversized posts are legal MPI
  Checker strict(CheckLevel::strict, false, 2);
  expect_violation("capacity-mismatch",
                   [&] { strict.on_recv_complete(0, 0, pr); });
}

// ---------------------------------------------------------------------------
// Collective records

TEST(CheckCollectives, ArgumentDivergenceAcrossRanks) {
  Checker ck(CheckLevel::basic, false, 2);
  ck.begin_collective(CollOp::allreduce, 0, 1, "rd", 2, 0, 0, /*count=*/8,
                      Dtype::f32, simmpi::ReduceOp::sum, {});
  expect_violation("collective-argument-mismatch", [&] {
    ck.begin_collective(CollOp::allreduce, 1, 1, "rd", 2, 1, 0, /*count=*/16,
                        Dtype::f32, simmpi::ReduceOp::sum, {});
  });
}

TEST(CheckCollectives, SameCommRankEnteringTwiceIsReentry) {
  Checker ck(CheckLevel::basic, false, 2);
  ck.begin_collective(CollOp::allreduce, 0, 1, "rd", 2, 0, 0, 8, Dtype::f32,
                      simmpi::ReduceOp::sum, {});
  // World rank 1 claims the same comm rank 0 of the same invocation.
  expect_violation("collective-reentry", [&] {
    ck.begin_collective(CollOp::allreduce, 1, 1, "rd", 2, 0, 0, 8, Dtype::f32,
                        simmpi::ReduceOp::sum, {});
  });
}

TEST(CheckCollectives, ResultMismatchAgainstSerialReference) {
  Checker ck(CheckLevel::basic, /*with_data=*/true, 2);
  const std::size_t count = 4;
  std::vector<float> in0{1, 2, 3, 4}, in1{10, 20, 30, 40};
  std::vector<float> wrong{11, 22, 33, 45};  // last element off by one
  auto bytes_of = [](std::vector<float>& v) {
    return simmpi::ConstBytes{reinterpret_cast<const std::byte*>(v.data()),
                              v.size() * sizeof(float)};
  };
  const auto t0 = ck.begin_collective(CollOp::allreduce, 0, 1, "rd", 2, 0, 0,
                                      count, Dtype::f32, simmpi::ReduceOp::sum,
                                      bytes_of(in0));
  const auto t1 = ck.begin_collective(CollOp::allreduce, 1, 1, "rd", 2, 1, 0,
                                      count, Dtype::f32, simmpi::ReduceOp::sum,
                                      bytes_of(in1));
  ck.end_collective(0, t0, bytes_of(wrong));
  try {
    ck.end_collective(1, t1, bytes_of(wrong));
    FAIL() << "expected result-mismatch";
  } catch (const CheckError& e) {
    EXPECT_TRUE(has_rule(e, "result-mismatch")) << e.what();
    // The report names the first bad element and both values.
    EXPECT_NE(std::string(e.what()).find("element 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("45"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("44"), std::string::npos) << e.what();
  }
}

TEST(CheckCollectives, CorrectResultPassesSilently) {
  Checker ck(CheckLevel::strict, true, 2);
  std::vector<float> in0{1, 2}, in1{10, 20}, sum{11, 22};
  auto bytes_of = [](std::vector<float>& v) {
    return simmpi::ConstBytes{reinterpret_cast<const std::byte*>(v.data()),
                              v.size() * sizeof(float)};
  };
  const auto t0 = ck.begin_collective(CollOp::allreduce, 0, 1, "rd", 2, 0, 0,
                                      2, Dtype::f32, simmpi::ReduceOp::sum,
                                      bytes_of(in0));
  const auto t1 = ck.begin_collective(CollOp::allreduce, 1, 1, "rd", 2, 1, 0,
                                      2, Dtype::f32, simmpi::ReduceOp::sum,
                                      bytes_of(in1));
  ck.end_collective(0, t0, bytes_of(sum));
  ck.end_collective(1, t1, bytes_of(sum));
  ck.finalize(false, "", 0, 0);  // no violations accumulated
}

TEST(CheckCollectives, UnbalancedCollectiveReportedAtFinalize) {
  Checker ck(CheckLevel::basic, false, 2);
  ck.begin_collective(CollOp::bcast, 0, 1, "binomial", 2, 0, 0, 8, Dtype::u8,
                      simmpi::ReduceOp::sum, {});
  try {
    ck.finalize(false, "", 0, 0);
    FAIL() << "expected unbalanced-collective";
  } catch (const CheckError& e) {
    EXPECT_TRUE(has_rule(e, "unbalanced-collective")) << e.what();
    const std::string what = e.what();
    EXPECT_NE(what.find("still inside: 0"), std::string::npos) << what;
    EXPECT_NE(what.find("never entered: 1"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Strict-only end-of-run leak checks

TEST(CheckFinalize, StrictFlagsOpenTraceSpans) {
  Checker strict(CheckLevel::strict, false, 1);
  expect_violation("unbalanced-trace-span",
                   [&] { strict.finalize(false, "", 0, 2); });
  Checker basic(CheckLevel::basic, false, 1);
  basic.finalize(false, "", 0, 2);  // basic tolerates open spans
}

TEST(CheckFinalize, StrictFlagsLeakedCollSlots) {
  Checker strict(CheckLevel::strict, false, 1);
  expect_violation("leaked-coll-slot",
                   [&] { strict.finalize(false, "", 3, 0); });
}

TEST(TracerSpans, OpenSpanApiBalances) {
  simmpi::Tracer t;
  EXPECT_EQ(t.open_count(), 0u);
  t.begin("phase", "coll", /*rank=*/0, /*start=*/10);
  t.begin("inner", "coll", 0, 20);
  t.begin("other", "coll", 1, 15);
  EXPECT_EQ(t.open_count(), 3u);
  EXPECT_TRUE(t.end(0, 30));  // pops "inner" (innermost for rank 0)
  EXPECT_TRUE(t.end(0, 40));
  EXPECT_TRUE(t.end(1, 25));
  EXPECT_EQ(t.open_count(), 0u);
  EXPECT_FALSE(t.end(0, 50));  // nothing open: reports imbalance
  ASSERT_EQ(t.spans().size(), 3u);
  EXPECT_EQ(t.spans()[0].name, "inner");
  EXPECT_EQ(t.spans()[0].end, 30);
}

// ---------------------------------------------------------------------------
// End-to-end through a checked Machine

simmpi::RunOptions checked(CheckLevel level) {
  simmpi::RunOptions opt;
  opt.with_data = false;
  opt.check_level = level;
  return opt;
}

TEST(CheckMachine, UnmatchedSendReportedAtFinalize) {
  Machine m(net::test_cluster(2), 2, 1, checked(CheckLevel::basic));
  expect_violation("unmatched-send", [&] {
    m.run([&](Rank& r) -> sim::CoTask<void> {
      if (r.world_rank() == 0) {
        co_await r.send(m.world(), 1, /*tag=*/5, /*bytes=*/64);
      }
      // rank 1 never posts the receive
    });
  });
}

TEST(CheckMachine, DeadlockAugmentedWithBlockedRequestReport) {
  Machine m(net::test_cluster(2), 2, 1, checked(CheckLevel::basic));
  try {
    m.run([&](Rank& r) -> sim::CoTask<void> {
      if (r.world_rank() == 0) {
        co_await r.recv(m.world(), 1, /*tag=*/3, /*capacity=*/64);
      }
    });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_TRUE(has_rule(e, "wait-cycle-deadlock")) << e.what();
    EXPECT_TRUE(has_rule(e, "blocked-recv")) << e.what();
    // The blocked-request report names what rank 0 was waiting for.
    const std::string what = e.what();
    EXPECT_NE(what.find("tag=3"), std::string::npos) << what;
  }
}

TEST(CheckMachine, CleanRunWithCheckerIsBitIdenticalInTime) {
  auto run_once = [&](CheckLevel level) {
    Machine m(net::test_cluster(2), 2, 2, checked(level));
    m.run([&](Rank& r) -> sim::CoTask<void> {
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = 1024;
      a.inplace = true;
      // Named spec, not a braced temporary: gcc 12 double-destroys extra
      // non-trivially-destructible temporaries in a co_await full
      // expression (dpmllint: await-temporary).
      const core::CollSpec spec{"rd"};
      co_await core::run_collective(coll::CollKind::allreduce, a, spec);
    });
    return m.now();
  };
  EXPECT_EQ(run_once(CheckLevel::off), run_once(CheckLevel::strict));
}

// An intentionally wrong algorithm: every rank just keeps its own input.
// Registered only in this test binary.
sim::CoTask<void> broken_allreduce(coll::CollArgs a) {
  if (!a.send.empty() && !a.recv.empty()) {
    std::memcpy(a.recv.data(), a.send.data(), a.bytes());
  }
  co_return;
}

const coll::CollRegistration reg_broken{{
    "broken-allreduce",
    coll::CollKind::allreduce,
    coll::CollCaps{},
    [](coll::CollArgs a, const coll::CollSpec&) {
      return broken_allreduce(std::move(a));
    }}};

TEST(CheckMachine, BrokenAlgorithmCaughtByResultVerification) {
  simmpi::RunOptions ropt;
  ropt.with_data = true;
  ropt.check_level = CheckLevel::strict;
  Machine m(net::test_cluster(2), 2, 2, ropt);
  const int world = m.world_size();
  const std::size_t count = 32;
  std::vector<std::vector<std::byte>> sendb(world), recvb(world);
  for (int w = 0; w < world; ++w) {
    sendb[static_cast<std::size_t>(w)] =
        simmpi::make_operand(Dtype::f32, count, w, simmpi::ReduceOp::sum, 1);
    recvb[static_cast<std::size_t>(w)].resize(count * sizeof(float));
  }
  expect_violation("result-mismatch", [&] {
    m.run([&](Rank& r) -> sim::CoTask<void> {
      const auto w = static_cast<std::size_t>(r.world_rank());
      coll::CollArgs a;
      a.rank = &r;
      a.comm = &m.world();
      a.count = count;
      a.dt = Dtype::f32;
      a.op = simmpi::ReduceOp::sum;
      a.send = sendb[w];
      a.recv = recvb[w];
      const core::CollSpec spec{"broken-allreduce"};
      co_await core::run_collective(coll::CollKind::allreduce, a, spec);
    });
  });
}

}  // namespace
}  // namespace dpml
