// Accounting-invariant lock for the engine slab/buffer pools (sim/pool.hpp)
// and the pooled schedule_call hot path. Runs under the ASan CI job, so a
// leaked callback record, a double free, or storage handed out twice shows
// up as a sanitizer failure on top of the counter assertions here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/pool.hpp"
#include "util/error.hpp"

namespace dpml::sim {
namespace {

// ---------------------------------------------------------------------------
// SlabPool.

TEST(SlabPool, SteadyStateAllocationHitsTheFreeList) {
  SlabPool pool(64, /*chunks_per_slab=*/8);
  std::vector<void*> live;
  for (int i = 0; i < 8; ++i) live.push_back(pool.allocate(64));
  // Only the allocation that carved the slab is a miss; the other seven pop
  // chunks the carve put on the free list.
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 7u);
  EXPECT_EQ(pool.stats().live, 8u);
  EXPECT_GE(pool.stats().bytes_reserved, 8u * 64u);
  for (void* p : live) pool.deallocate(p, 64);
  live.clear();
  // Warm pool: every further allocation is a free-list pop.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) live.push_back(pool.allocate(48));
    for (void* p : live) pool.deallocate(p, 48);
    live.clear();
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 807u);
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().peak_live, 8u);
}

TEST(SlabPool, DistinctChunksAndGrowthAcrossSlabs) {
  SlabPool pool(32, /*chunks_per_slab=*/4);
  std::vector<void*> live;
  for (int i = 0; i < 13; ++i) live.push_back(pool.allocate(32));
  // No chunk may be handed out twice while live.
  std::sort(live.begin(), live.end());
  EXPECT_EQ(std::adjacent_find(live.begin(), live.end()), live.end());
  EXPECT_EQ(pool.stats().peak_live, 13u);
  for (void* p : live) pool.deallocate(p, 32);
}

TEST(SlabPool, OversizeRequestsFallBackToOperatorNew) {
  SlabPool pool(64);
  void* big = pool.allocate(4096);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().live, 1u);
  // Oversize memory is not pooled: nothing was reserved for it.
  EXPECT_EQ(pool.stats().bytes_reserved, 0u);
  pool.deallocate(big, 4096);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(SlabPool, FreeWithoutAllocationIsAnInvariantError) {
  SlabPool pool(64);
  int dummy = 0;
  EXPECT_THROW(pool.deallocate(&dummy, 64), util::InvariantError);
}

TEST(SlabPoolDeathTest, DestructionWithLiveAllocationsAborts) {
  // A live chunk at destruction would be freed out from under its owner;
  // the destructor's DPML_CHECK throws, which terminates during unwind.
  EXPECT_DEATH(
      {
        SlabPool pool(64);
        (void)pool.allocate(64);
      },
      "live allocations");
}

// ---------------------------------------------------------------------------
// BufferPool.

TEST(BufferPool, RecyclesStorageWithinASizeClass) {
  BufferPool pool;
  std::vector<std::byte> a = pool.acquire(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(pool.stats().misses, 1u);
  const std::byte* storage = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.live(), 0u);
  // Same power-of-two class (65..128): the exact storage comes back.
  std::vector<std::byte> b = pool.acquire(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.release(std::move(b));
}

TEST(BufferPool, EmptyReleaseIsIgnored) {
  // Metadata-only runs release empty spans that never hit the pool; the
  // live count must not underflow.
  BufferPool pool;
  pool.release(std::vector<std::byte>{});
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, 0u);
}

TEST(BufferPool, BytesReservedTracksParkedStorageOnly) {
  BufferPool pool;
  auto buf = pool.acquire(1000);
  EXPECT_EQ(pool.stats().bytes_reserved, 0u);  // storage is out, not parked
  const std::size_t cap = buf.capacity();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.stats().bytes_reserved, cap);
  auto again = pool.acquire(1024);
  EXPECT_EQ(pool.stats().bytes_reserved, 0u);
  pool.release(std::move(again));
}

// ---------------------------------------------------------------------------
// Engine + pools: thousands of short runs through the pooled callback path.

TEST(EnginePool, ManyShortRunsReuseCallbackRecords) {
  Engine e;
  std::uint64_t fired = 0;
  for (int run = 0; run < 2000; ++run) {
    for (int i = 0; i < 5; ++i) {
      e.schedule_call(e.now() + (i + 1) * 10, [&fired] { ++fired; });
    }
    e.run();
  }
  EXPECT_EQ(fired, 10000u);
  const EnginePerf p = e.perf();
  EXPECT_EQ(p.events, 10000u);
  // The pool warms within the first run: at most the 5-deep working set of
  // records was ever carved fresh (one slab), everything else is a hit.
  EXPECT_EQ(p.callback_pool.live, 0u);
  EXPECT_LE(p.callback_pool.peak_live, 5u);
  EXPECT_EQ(p.callback_pool.hits + p.callback_pool.misses, 10000u);
  EXPECT_GT(p.callback_pool.hit_rate(), 0.97);
}

TEST(EnginePool, FreshEnginePerRunKeepsInvariants) {
  // The executor's jobs each build their own Machine/Engine; model that as
  // thousands of short-lived engines and check teardown leaves nothing live.
  for (int run = 0; run < 2000; ++run) {
    Engine e;
    int fired = 0;
    e.schedule_call(5, [&fired] { ++fired; });
    e.schedule_call(1, [&fired, &e] {
      ++fired;
      e.schedule_call(e.now() + 1, [&fired] { ++fired; });
    });
    e.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(e.perf().callback_pool.live, 0u);
    EXPECT_EQ(e.perf().payload_pool.live, 0u);
  }
}

TEST(EnginePool, QueuedCallbacksDisposedAtTeardown) {
  // An engine destroyed with scheduled-but-unfired callbacks must return
  // their records (and any captured resources) without invoking them.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    Engine e;
    e.schedule_call(100, [token] { ADD_FAILURE() << "must never fire"; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // capture keeps it alive in the queue
  }
  EXPECT_TRUE(watch.expired());  // teardown disposed the record
}

TEST(EnginePool, OversizeCaptureFallsBackSafely) {
  // A capture bigger than the slab chunk takes the operator-new path but
  // must obey the same accounting.
  Engine e;
  struct Big {
    std::byte blob[512];
  } big{};
  bool fired = false;
  e.schedule_call(1, [big, &fired] {
    (void)big;
    fired = true;
  });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.perf().callback_pool.live, 0u);
  EXPECT_GE(e.perf().callback_pool.misses, 1u);
}

TEST(EnginePool, StdFunctionCallablesStillPool) {
  // The old schedule_fn shim is gone: a caller holding a std::function
  // passes it straight to schedule_call, and the record still comes from
  // the pool.
  Engine e;
  int fired = 0;
  std::function<void()> cb = [&fired] { ++fired; };
  e.schedule_call(1, cb);
  e.schedule_call(2, std::move(cb));
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.perf().callback_pool.live, 0u);
}

TEST(EnginePool, ReserveEventsDoesNotDisturbCounters) {
  Engine e;
  e.reserve_events(4096);
  int fired = 0;
  for (int i = 0; i < 100; ++i) e.schedule_call(i + 1, [&fired] { ++fired; });
  const EnginePerf before = e.perf();
  EXPECT_EQ(before.callback_pool.live, 100u);
  e.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(e.perf().peak_live_events, 100u);
  EXPECT_EQ(e.perf().callback_pool.live, 0u);
}

// ---------------------------------------------------------------------------
// PoolStats arithmetic used by the measure-layer aggregation.

TEST(PoolStats, MergeAndHitRate) {
  PoolStats a;
  a.note_alloc(true);
  a.note_alloc(false);
  a.note_free();
  PoolStats b;
  b.note_alloc(true);
  b.note_alloc(true);
  EXPECT_EQ(a.hit_rate(), 0.5);
  EXPECT_EQ(PoolStats{}.hit_rate(), 0.0);  // no traffic: defined as zero
  a.merge(b);
  EXPECT_EQ(a.hits, 3u);
  EXPECT_EQ(a.misses, 1u);
  EXPECT_EQ(a.live, 3u);
  EXPECT_EQ(a.hit_rate(), 0.75);
}

}  // namespace
}  // namespace dpml::sim
