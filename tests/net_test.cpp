#include <gtest/gtest.h>

#include "net/cluster.hpp"
#include "net/topology.hpp"
#include "util/error.hpp"

namespace dpml::net {
namespace {

TEST(Cluster, PresetsMatchPaperShapes) {
  const auto a = cluster_a();
  EXPECT_EQ(a.total_nodes, 40);
  EXPECT_EQ(a.node.cores(), 28);
  EXPECT_TRUE(a.has_sharp());

  const auto b = cluster_b();
  EXPECT_EQ(b.total_nodes, 648);
  EXPECT_EQ(b.node.cores(), 28);
  EXPECT_FALSE(b.has_sharp());

  const auto c = cluster_c();
  EXPECT_EQ(c.total_nodes, 752);
  EXPECT_FALSE(c.has_sharp());

  const auto d = cluster_d();
  EXPECT_EQ(d.total_nodes, 508);
  EXPECT_EQ(d.node.sockets, 1);
  EXPECT_EQ(d.node.cores(), 68);
}

TEST(Cluster, IbVsOpaConcurrencyCharacter) {
  // The defining difference (paper §3): on IB one process cannot saturate
  // the link; on Omni-Path a single process gets close to link bandwidth.
  const auto ib = cluster_b().nic;
  const auto opa = cluster_c().nic;
  EXPECT_LT(ib.proc_bw, ib.link_bw / 3.0);
  EXPECT_GT(opa.proc_bw, opa.link_bw / 2.0);
}

TEST(Cluster, KnlIsSlowerPerCore) {
  const auto xeon = cluster_c();
  const auto knl = cluster_d();
  EXPECT_GT(knl.host.reduce_ns_per_byte, xeon.host.reduce_ns_per_byte);
  EXPECT_LT(knl.host.copy_bw, xeon.host.copy_bw);
  EXPECT_GT(knl.nic.o_send, xeon.nic.o_send);
}

TEST(Cluster, LookupByName) {
  EXPECT_EQ(cluster_by_name("A").name, "A");
  EXPECT_EQ(cluster_by_name("a").name, "A");
  EXPECT_EQ(cluster_by_name("cluster_d").name, "D");
  EXPECT_EQ(cluster_by_name("test").name, "test");
  EXPECT_THROW(cluster_by_name("zeta"), util::InvariantError);
  EXPECT_EQ(all_clusters().size(), 4u);
}

TEST(Topology, LeafAssignment) {
  FabricTopology t(10, 4);
  EXPECT_EQ(t.num_leaves(), 3);
  EXPECT_EQ(t.leaf_of(0), 0);
  EXPECT_EQ(t.leaf_of(3), 0);
  EXPECT_EQ(t.leaf_of(4), 1);
  EXPECT_EQ(t.leaf_of(9), 2);
}

TEST(Topology, LinkCounts) {
  FabricTopology t(10, 4);
  EXPECT_EQ(t.links_between(2, 2), 0);
  EXPECT_EQ(t.links_between(0, 3), 2);  // same leaf
  EXPECT_EQ(t.links_between(0, 4), 4);  // cross leaf
}

TEST(Topology, PathLatencyScalesWithHops) {
  FabricTopology t(8, 2);
  NicModel nic;
  nic.wire_latency = sim::ns(100);
  nic.switch_latency = sim::ns(50);
  EXPECT_EQ(t.path_latency(0, 0, nic), 0);
  EXPECT_EQ(t.path_latency(0, 1, nic), sim::ns(250));   // 2 wires + 1 switch
  EXPECT_EQ(t.path_latency(0, 7, nic), sim::ns(550));   // 4 wires + 3 switches
}

TEST(Topology, AggregationLevels) {
  FabricTopology t(8, 4);
  EXPECT_EQ(t.aggregation_levels(0, 3), 1);
  EXPECT_EQ(t.aggregation_levels(0, 7), 2);
}

TEST(Topology, BoundsChecked) {
  FabricTopology t(4, 2);
  EXPECT_THROW(t.leaf_of(4), util::InvariantError);
  EXPECT_THROW(t.leaf_of(-1), util::InvariantError);
}

}  // namespace
}  // namespace dpml::net
