// Shared test operator: an associative, NON-commutative user reduction.
//
// The implementation lives in src/mc/affine.hpp (the schedule explorer uses
// the same op, so there is exactly one definition of the affine-composition
// semantics); this header re-exports it under the historical test names.
#pragma once

#include "mc/affine.hpp"

namespace dpml::testing {

using mc::affine_combine;
using mc::affine_fold;
using mc::affine_op;
using mc::affine_operand;
using mc::affine_pack;
using mc::affine_reference;

}  // namespace dpml::testing
