// simcheck matrix: every registered algorithm of every collective kind runs
// under check_level=strict with real data, across multiple datatypes and
// message sizes spanning the rendezvous threshold — plus a non-commutative
// user-op sweep (fold order must be ascending comm-rank) and an MPI_IN_PLACE
// aliasing sweep. Any semantics violation surfaces as a CheckError; any
// wrong result fails both the checker and the reference comparison.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "coll/registry.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"
#include "sharp/sharp.hpp"
#include "simmpi/machine.hpp"
#include "simmpi/verify.hpp"
#include "test_ops.hpp"

namespace dpml {
namespace {

using coll::CollKind;
using coll::CollRegistry;
using coll::CollSpec;
using simmpi::Dtype;
using simmpi::Machine;
using simmpi::Rank;

constexpr int kNodes = 3;
constexpr int kPpn = 4;
constexpr int kWorld = kNodes * kPpn;

// ---------------------------------------------------------------------------
// Builtin-op matrix through the measurement harness (which already verifies
// every rank's buffer against the serial reference) with strict checking on.

TEST(CheckMatrix, EveryAlgorithmEveryKindStrictWithData) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  // 64 B stays eager; 8 KiB crosses the 4 KiB rendezvous threshold.
  const std::size_t sizes[] = {64, 8192};
  const Dtype dtypes[] = {Dtype::f32, Dtype::i64};
  for (CollKind kind : coll::kAllCollKinds) {
    for (const coll::CollDescriptor* d : CollRegistry::instance().list(kind)) {
      if (kWorld < d->caps.min_comm_size) continue;
      for (Dtype dt : dtypes) {
        for (std::size_t bytes : sizes) {
          core::MeasureOptions opt;
          opt.iterations = 2;  // second iteration re-enters the same slots
          opt.warmup = 0;
          opt.with_data = true;
          opt.dt = dt;
          opt.root = 1;  // rooted kinds: exercise a non-zero root
          opt.check = check::CheckLevel::strict;
          CollSpec spec;
          spec.algo = d->name;
          spec.leaders = 2;
          const std::string what = std::string(coll::coll_kind_name(kind)) +
                                   "/" + d->name + " dt=" +
                                   simmpi::dtype_name(dt) + " bytes=" +
                                   std::to_string(bytes);
          core::MeasureResult res;
          ASSERT_NO_THROW(res = core::measure_collective(kind, cfg, kNodes,
                                                         kPpn, bytes, spec,
                                                         opt))
              << what;
          EXPECT_TRUE(res.verified) << what;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Non-commutative user op: affine-map composition (see test_ops.hpp). The
// checker's serial reference folds in ascending comm-rank order, so any
// algorithm that reorders operands throws CheckError here; the test also
// compares every output against its own fold.

void run_affine(CollKind kind, const std::string& algo, Dtype dt,
                std::size_t count, int root) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  simmpi::RunOptions ropt;
  ropt.with_data = true;
  ropt.check_level = check::CheckLevel::strict;
  Machine m(cfg, kNodes, kPpn, ropt);

  const coll::CollDescriptor& d = CollRegistry::instance().at(kind, algo);
  CollSpec spec;
  spec.algo = algo;
  spec.leaders = 2;
  std::optional<sharp::SharpFabric> fabric;
  if (d.caps.needs_fabric || algo == "dpml-auto") {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  // reduce_scatter takes the per-block count; each rank contributes the
  // full count*world vector and keeps its own comm-rank-ordered block.
  const bool scatters = kind == CollKind::reduce_scatter;
  const std::size_t total = scatters ? count * kWorld : count;
  const std::size_t esize = simmpi::dtype_size(dt);
  std::vector<std::vector<std::byte>> sendb(kWorld), recvb(kWorld);
  for (int w = 0; w < kWorld; ++w) {
    sendb[static_cast<std::size_t>(w)] = testing::affine_operand(dt, total, w);
    recvb[static_cast<std::size_t>(w)].resize(count * esize);
  }

  m.run([&](Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = count;
    a.dt = dt;
    a.op = testing::affine_op();
    a.root = root;
    a.send = sendb[w];
    a.recv = recvb[w];
    co_await core::run_collective(kind, a, spec);
  });

  const std::vector<std::byte> ref = testing::affine_reference(dt, total,
                                                               kWorld);
  const std::string what = std::string(coll::coll_kind_name(kind)) + "/" +
                           algo + " dt=" + simmpi::dtype_name(dt) +
                           " count=" + std::to_string(count);
  if (kind == CollKind::allreduce) {
    for (int w = 0; w < kWorld; ++w) {
      EXPECT_EQ(recvb[static_cast<std::size_t>(w)], ref)
          << what << " rank " << w;
    }
  } else if (scatters) {
    for (int w = 0; w < kWorld; ++w) {
      const auto i = static_cast<std::size_t>(w);
      const std::vector<std::byte> block(
          ref.begin() + static_cast<std::ptrdiff_t>(i * count * esize),
          ref.begin() + static_cast<std::ptrdiff_t>((i + 1) * count * esize));
      EXPECT_EQ(recvb[i], block) << what << " rank " << w;
    }
  } else {
    EXPECT_EQ(recvb[static_cast<std::size_t>(root)], ref) << what;
  }
}

TEST(CheckMatrix, NonCommutativeOpFoldsInRankOrderEverywhere) {
  for (CollKind kind : {CollKind::allreduce, CollKind::reduce,
                        CollKind::reduce_scatter}) {
    const int root = kind == CollKind::reduce ? 2 : 0;
    for (const coll::CollDescriptor* d : CollRegistry::instance().list(kind)) {
      if (kWorld < d->caps.min_comm_size) continue;
      // Small/eager i32 and a >rendezvous i64 payload (1024 * 8 B = 8 KiB;
      // for reduce_scatter the per-block counts keep the same footprints).
      run_affine(kind, d->name, Dtype::i32, 16, root);
      run_affine(kind, d->name, Dtype::i64, 1024, root);
    }
  }
}

// The op really is non-commutative (the sweep above would be vacuous
// otherwise) and its fold matches Op::apply's left-accumulator convention.
TEST(CheckMatrix, AffineOpIsNonCommutativeAndAssociative) {
  const std::uint32_t a = testing::affine_pack<std::uint32_t>(3, 5);
  const std::uint32_t b = testing::affine_pack<std::uint32_t>(7, 11);
  const std::uint32_t c = testing::affine_pack<std::uint32_t>(9, 2);
  EXPECT_NE(testing::affine_combine(a, b), testing::affine_combine(b, a));
  EXPECT_EQ(
      testing::affine_combine(testing::affine_combine(a, b), c),
      testing::affine_combine(a, testing::affine_combine(b, c)));
  EXPECT_FALSE(testing::affine_op().commutative());
}

// ---------------------------------------------------------------------------
// MPI_IN_PLACE aliasing: recv holds the input on every rank (the repo-wide
// convention; see coll.hpp). Every allreduce and reduce algorithm must
// produce the reference result from aliased buffers, under strict checking.
// Allgather's in-place form stages each rank's contribution in its own
// comm-rank-ordered block of recv, matching MPI_IN_PLACE MPI_Allgather.

void run_inplace(CollKind kind, const std::string& algo, int root) {
  const net::ClusterConfig cfg = net::cluster_by_name("test");
  simmpi::RunOptions ropt;
  ropt.with_data = true;
  ropt.check_level = check::CheckLevel::strict;
  Machine m(cfg, kNodes, kPpn, ropt);

  const coll::CollDescriptor& d = CollRegistry::instance().at(kind, algo);
  CollSpec spec;
  spec.algo = algo;
  spec.leaders = 2;
  std::optional<sharp::SharpFabric> fabric;
  if (d.caps.needs_fabric || algo == "dpml-auto") {
    fabric.emplace(m);
    spec.fabric = &*fabric;
  }

  const Dtype dt = Dtype::f32;
  const std::size_t count = 512;  // 2 KiB
  const std::size_t esize = simmpi::dtype_size(dt);
  const bool gathers = kind == CollKind::allgather;
  std::vector<std::vector<std::byte>> recvb(kWorld);
  for (int w = 0; w < kWorld; ++w) {
    const auto i = static_cast<std::size_t>(w);
    const auto operand =
        simmpi::make_operand(dt, count, w, simmpi::ReduceOp::sum, /*seed=*/1);
    if (gathers) {
      recvb[i].resize(count * esize * kWorld);
      std::memcpy(recvb[i].data() + i * count * esize, operand.data(),
                  operand.size());
    } else {
      recvb[i] = operand;
    }
  }

  m.run([&](Rank& r) -> sim::CoTask<void> {
    const auto w = static_cast<std::size_t>(r.world_rank());
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = count;
    a.dt = dt;
    a.op = simmpi::ReduceOp::sum;
    a.root = root;
    a.inplace = true;
    a.recv = recvb[w];
    co_await core::run_collective(kind, a, spec);
  });

  const std::string what =
      std::string(coll::coll_kind_name(kind)) + "/" + algo + " in-place";
  if (gathers) {
    std::vector<std::byte> concat;
    for (int w = 0; w < kWorld; ++w) {
      const auto piece =
          simmpi::make_operand(dt, count, w, simmpi::ReduceOp::sum, 1);
      concat.insert(concat.end(), piece.begin(), piece.end());
    }
    for (int w = 0; w < kWorld; ++w) {
      EXPECT_EQ(recvb[static_cast<std::size_t>(w)], concat)
          << what << " rank " << w;
    }
    return;
  }
  const auto ref = simmpi::reference_allreduce(dt, count, kWorld,
                                               simmpi::ReduceOp::sum, 1);
  if (kind == CollKind::allreduce) {
    for (int w = 0; w < kWorld; ++w) {
      EXPECT_EQ(recvb[static_cast<std::size_t>(w)], ref)
          << what << " rank " << w;
    }
  } else {
    EXPECT_EQ(recvb[static_cast<std::size_t>(root)], ref) << what;
  }
}

TEST(CheckMatrix, InPlaceAliasingAcrossEveryReductionAlgorithm) {
  for (CollKind kind : {CollKind::allreduce, CollKind::reduce}) {
    const int root = kind == CollKind::reduce ? 1 : 0;
    for (const coll::CollDescriptor* d : CollRegistry::instance().list(kind)) {
      if (kWorld < d->caps.min_comm_size) continue;
      run_inplace(kind, d->name, root);
    }
  }
}

TEST(CheckMatrix, InPlaceAllgatherAcrossEveryAlgorithm) {
  for (const coll::CollDescriptor* d :
       CollRegistry::instance().list(CollKind::allgather)) {
    if (kWorld < d->caps.min_comm_size) continue;
    run_inplace(CollKind::allgather, d->name, /*root=*/0);
  }
}

}  // namespace
}  // namespace dpml
