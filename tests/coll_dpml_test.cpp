// DPML-specific behaviour: edge cases, phase structure, and the performance
// shapes the paper reports (leader scaling, pipelining, library baselines).
#include <gtest/gtest.h>

#include "coll/dpml.hpp"
#include "core/measure.hpp"
#include "net/cluster.hpp"

namespace dpml::core {
namespace {

double lat(const net::ClusterConfig& cfg, int nodes, int ppn,
           std::size_t bytes, const AllreduceSpec& spec) {
  MeasureOptions opt;
  opt.iterations = 3;
  opt.warmup = 1;
  return measure_allreduce(cfg, nodes, ppn, bytes, spec, opt).avg_us;
}

AllreduceSpec dpml_spec(int leaders, int k = 1) {
  AllreduceSpec s;
  s.algo = Algorithm::dpml;
  s.leaders = leaders;
  s.pipeline_k = k;
  return s;
}

// ---------------------------------------------------------------------------
// Edge cases

TEST(Dpml, LeaderCountClampsToPpn) {
  auto cfg = net::test_cluster(2);
  AllreduceSpec s = dpml_spec(64);  // ppn is only 4
  MeasureOptions opt;
  opt.with_data = true;
  const auto r = measure_allreduce(cfg, 2, 4, 1024, s, opt);
  EXPECT_TRUE(r.verified);
}

TEST(Dpml, SingleNodeSkipsInterPhase) {
  auto cfg = net::test_cluster(1);
  MeasureOptions opt;
  opt.with_data = true;
  const auto r = measure_allreduce(cfg, 1, 4, 4096, dpml_spec(2), opt);
  EXPECT_TRUE(r.verified);
}

TEST(Dpml, CountSmallerThanLeaders) {
  // 3 elements across 4 leaders: one partition is empty.
  auto cfg = net::test_cluster(2);
  MeasureOptions opt;
  opt.with_data = true;
  const auto r = measure_allreduce(cfg, 2, 4, 3 * 4, dpml_spec(4), opt);
  EXPECT_TRUE(r.verified);
}

TEST(Dpml, RejectsNonWorldComm) {
  simmpi::Machine m(net::test_cluster(2), 2, 2);
  const simmpi::Comm& sub = m.make_comm({0, 1});
  EXPECT_THROW(
      m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
        if (!sub.contains(r.world_rank())) co_return;
        coll::CollArgs a;
        a.rank = &r;
        a.comm = &sub;
        a.count = 4;
        a.inplace = true;
        co_await coll::allreduce_dpml(a, coll::DpmlParams{});
      }),
      util::InvariantError);
}

TEST(Dpml, RejectsBadPipelineDepth) {
  simmpi::Machine m(net::test_cluster(2), 2, 2);
  EXPECT_THROW(
      m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
        coll::CollArgs a;
        a.rank = &r;
        a.comm = &m.world();
        a.count = 4;
        a.inplace = true;
        coll::DpmlParams p;
        p.pipeline_k = 0;
        co_await coll::allreduce_dpml(a, p);
      }),
      util::InvariantError);
}

TEST(Dpml, NoLeakedCollectiveSlots) {
  simmpi::RunOptions ropt;
  ropt.with_data = false;
  simmpi::Machine m(net::test_cluster(2), 2, 4, ropt);
  m.run([&](simmpi::Rank& r) -> sim::CoTask<void> {
    coll::CollArgs a;
    a.rank = &r;
    a.comm = &m.world();
    a.count = 64;
    a.inplace = true;
    for (int i = 0; i < 3; ++i) {
      co_await coll::allreduce_dpml(a, coll::DpmlParams{2, 1,
                                    coll::InterAlgo::automatic});
    }
  });
  EXPECT_EQ(m.node(0).live_slots(), 0u);
  EXPECT_EQ(m.node(1).live_slots(), 0u);
}

TEST(Partition, RaggedBlocks) {
  using coll::partition;
  // 10 elements over 4 parts: 3,3,2,2.
  EXPECT_EQ(partition(10, 4, 0).count, 3u);
  EXPECT_EQ(partition(10, 4, 1).count, 3u);
  EXPECT_EQ(partition(10, 4, 2).count, 2u);
  EXPECT_EQ(partition(10, 4, 3).count, 2u);
  EXPECT_EQ(partition(10, 4, 0).offset, 0u);
  EXPECT_EQ(partition(10, 4, 1).offset, 3u);
  EXPECT_EQ(partition(10, 4, 2).offset, 6u);
  EXPECT_EQ(partition(10, 4, 3).offset, 8u);
  // Partitions tile the range exactly.
  std::size_t covered = 0;
  for (int j = 0; j < 7; ++j) covered += partition(23, 7, j).count;
  EXPECT_EQ(covered, 23u);
  // Degenerate cases.
  EXPECT_EQ(partition(0, 4, 2).count, 0u);
  EXPECT_EQ(partition(3, 8, 7).count, 0u);
  EXPECT_THROW(partition(8, 4, 4), util::InvariantError);
}

// ---------------------------------------------------------------------------
// Performance shapes (paper §6.2, §6.4) — realistic cluster presets,
// metadata-only for speed, modest node counts to keep tests quick.

TEST(DpmlPerf, MoreLeadersWinForLargeMessagesOnIB) {
  auto cfg = net::cluster_b();
  const double l1 = lat(cfg, 16, 28, 512 * 1024, dpml_spec(1));
  const double l16 = lat(cfg, 16, 28, 512 * 1024, dpml_spec(16));
  // Paper Figure 5: ~4.9x at 512KB with 16 leaders vs 1.
  EXPECT_GT(l1 / l16, 3.0);
  EXPECT_LT(l1 / l16, 8.0);
}

TEST(DpmlPerf, MoreLeadersWinForLargeMessagesOnOpa) {
  auto cfg = net::cluster_c();
  const double l1 = lat(cfg, 16, 28, 512 * 1024, dpml_spec(1));
  const double l16 = lat(cfg, 16, 28, 512 * 1024, dpml_spec(16));
  // Paper Figure 6: ~4.3x.
  EXPECT_GT(l1 / l16, 3.0);
}

TEST(DpmlPerf, ExtraLeadersDoNotHelpSmallMessages) {
  auto cfg = net::cluster_b();
  const double l1 = lat(cfg, 8, 28, 64, dpml_spec(1));
  const double l16 = lat(cfg, 8, 28, 64, dpml_spec(16));
  EXPECT_LE(l1, l16 * 1.05);  // 1 leader at least as good (paper §6.2)
}

TEST(DpmlPerf, BeatsMvapich2ForLargeMessages) {
  auto cfg = net::cluster_b();
  AllreduceSpec mv;
  mv.algo = Algorithm::mvapich2;
  const double base = lat(cfg, 16, 28, 512 * 1024, mv);
  const double ours = lat(cfg, 16, 28, 512 * 1024, dpml_spec(16));
  // Paper Figure 9(b): up to ~3x on cluster B.
  EXPECT_GT(base / ours, 2.0);
}

TEST(DpmlPerf, MatchesSingleLeaderWhenLIsOne) {
  auto cfg = net::cluster_b();
  AllreduceSpec sl;
  sl.algo = Algorithm::single_leader;
  const double a = lat(cfg, 4, 8, 32 * 1024, sl);
  const double b = lat(cfg, 4, 8, 32 * 1024, dpml_spec(1));
  // Same structure up to the leader's self-copy through shared memory.
  EXPECT_NEAR(a, b, a * 0.25);
}

TEST(DpmlPerf, PipeliningHelpsVeryLargeMessagesOnOpa) {
  auto cfg = net::cluster_c();
  const double k1 = lat(cfg, 16, 28, 4 * 1024 * 1024, dpml_spec(4, 1));
  const double k8 = lat(cfg, 16, 28, 4 * 1024 * 1024, dpml_spec(4, 8));
  // DPML-Pipelined overlaps per-chunk latency/compute across rd steps.
  EXPECT_LT(k8, k1);
}

TEST(DpmlPerf, IntelBaselineBetweenMvapichAndDpmlAtScale) {
  auto cfg = net::cluster_d();
  AllreduceSpec mv;
  mv.algo = Algorithm::mvapich2;
  AllreduceSpec im;
  im.algo = Algorithm::intelmpi;
  const double t_mv = lat(cfg, 32, 64, 512 * 1024, mv);
  const double t_im = lat(cfg, 32, 64, 512 * 1024, im);
  const double t_dp = lat(cfg, 32, 64, 512 * 1024, dpml_spec(16));
  // Paper Figure 9(d)/10: DPML < Intel < MVAPICH2 for large messages.
  EXPECT_LT(t_dp, t_im);
  EXPECT_LT(t_im, t_mv);
}

TEST(DpmlPerf, HierarchicalBeatsFlatAtFullSubscription) {
  auto cfg = net::cluster_b();
  AllreduceSpec flat;
  flat.algo = Algorithm::reduce_scatter_allgather;
  const double t_flat = lat(cfg, 8, 28, 256 * 1024, flat);
  const double t_dpml = lat(cfg, 8, 28, 256 * 1024, dpml_spec(8));
  // Flat algorithms flood each NIC with ppn concurrent streams (paper §3).
  EXPECT_LT(t_dpml, t_flat);
}

}  // namespace
}  // namespace dpml::core
