// Section-5 cost model: equation identities and agreement with the
// simulator in the regimes the model covers.
#include <gtest/gtest.h>

#include "core/measure.hpp"
#include "model/model.hpp"
#include "net/cluster.hpp"

namespace dpml::model {
namespace {

Params typical() {
  // Cluster-B-like constants.
  Params m;
  m.p = 28 * 16;
  m.h = 16;
  m.l = 4;
  m.n = 64 * 1024;
  m.a = 2e-6;
  m.b = 1.0 / 2.5e9;
  m.a2 = 150e-9;
  m.b2 = 1.0 / 5e9;
  m.c = 0.2e-9;
  return m;
}

TEST(Model, CeilLg) {
  EXPECT_EQ(ceil_lg(1), 0);
  EXPECT_EQ(ceil_lg(2), 1);
  EXPECT_EQ(ceil_lg(3), 2);
  EXPECT_EQ(ceil_lg(4), 2);
  EXPECT_EQ(ceil_lg(5), 3);
  EXPECT_EQ(ceil_lg(1024), 10);
  EXPECT_THROW(ceil_lg(0), util::InvariantError);
}

TEST(Model, Equation1MatchesClosedForm) {
  Params m = typical();
  const double expect = 9.0 * (m.a + m.n * m.b + m.n * m.c);  // lg(448)=9
  EXPECT_DOUBLE_EQ(t_recursive_doubling(m), expect);
}

TEST(Model, Equation2And6AreSymmetric) {
  Params m = typical();
  EXPECT_DOUBLE_EQ(t_copy(m), t_bcast(m));
  EXPECT_DOUBLE_EQ(t_copy(m), m.l * (m.a2 + m.b2 * m.n / m.l));
}

TEST(Model, Equation3ComputeSharesAcrossLeaders) {
  Params m = typical();
  const double l1 = [&] {
    Params q = m;
    q.l = 1;
    return t_comp(q);
  }();
  const double l4 = t_comp(m);
  // (ppn/l - 1) n c: 27nc vs 6nc.
  EXPECT_DOUBLE_EQ(l1, 27.0 * m.n * m.c);
  EXPECT_DOUBLE_EQ(l4, 6.0 * m.n * m.c);
}

TEST(Model, Equation5AddsOnlyStartupOverhead) {
  Params m = typical();
  m.k = 4;
  const double base = t_comm(m);
  const double piped = t_comm_pipelined(m);
  EXPECT_DOUBLE_EQ(piped - base, ceil_lg(m.h) * m.a * (m.k - 1));
}

TEST(Model, Equation7IsSumOfPhases) {
  Params m = typical();
  EXPECT_DOUBLE_EQ(t_dpml(m),
                   t_copy(m) + t_comp(m) + t_comm(m) + t_bcast(m));
  m.k = 3;
  EXPECT_DOUBLE_EQ(t_dpml(m), t_copy(m) + t_comp(m) + t_comm_pipelined(m) +
                                  t_bcast(m));
}

TEST(Model, SingleNodeHasNoCommPhase) {
  Params m = typical();
  m.h = 1;
  m.p = 28;
  EXPECT_DOUBLE_EQ(t_comm(m), 0.0);
  EXPECT_DOUBLE_EQ(t_comm_pipelined(m), 0.0);
}

TEST(Model, PredictsLeaderBenefitForLargeMessages) {
  // §5.3: increasing leaders reduces latency for large n.
  auto cfg = net::cluster_b();
  const std::size_t bytes = 512 * 1024;
  const double l1 = t_dpml(from_cluster(cfg, 16, 28, 1, bytes));
  const double l16 = t_dpml(from_cluster(cfg, 16, 28, 16, bytes));
  EXPECT_GT(l1 / l16, 3.0);
}

TEST(Model, PredictsNoLeaderBenefitForTinyMessages) {
  auto cfg = net::cluster_b();
  const double l1 = t_dpml(from_cluster(cfg, 16, 28, 1, 16));
  const double l16 = t_dpml(from_cluster(cfg, 16, 28, 16, 16));
  EXPECT_LE(l1, l16);
}

TEST(Model, FewerStepsThanFlatRecursiveDoubling) {
  // §5.3: communication steps drop from lg p to lg h.
  auto cfg = net::cluster_b();
  const auto m = from_cluster(cfg, 64, 28, 16, 256 * 1024);
  EXPECT_LT(t_dpml(m), t_recursive_doubling(m));
}

// Model vs simulator: the model ignores contention (NIC sharing among
// leaders, the node memory pipe in phase 2), so the simulator reads higher
// as the leader count grows. Require agreement within a factor of 2 in the
// light-contention regimes and 2.5 at 16 leaders.
TEST(Model, AgreesWithSimulatorWithinSmallFactor) {
  auto cfg = net::cluster_b();
  for (int l : {1, 4, 16}) {
    for (std::size_t bytes : {64ul * 1024, 512ul * 1024}) {
      const double predicted = t_dpml(from_cluster(cfg, 16, 28, l, bytes));
      core::AllreduceSpec s;
      s.algo = core::Algorithm::dpml;
      s.leaders = l;
      s.inter = coll::InterAlgo::recursive_doubling;  // Eq (4) assumes rd
      core::MeasureOptions opt;
      opt.iterations = 3;
      opt.warmup = 1;
      const double simulated =
          core::measure_allreduce(cfg, 16, 28, bytes, s, opt).avg_us * 1e-6;
      const double factor = l >= 16 ? 2.5 : 2.0;
      EXPECT_LT(simulated, predicted * factor)
          << "l=" << l << " bytes=" << bytes;
      EXPECT_GT(simulated, predicted * 0.5)
          << "l=" << l << " bytes=" << bytes;
    }
  }
}

}  // namespace
}  // namespace dpml::model
